package mem

import "dramless/internal/sim"

// Run describes a constant-stride sequence of equal-size accesses - the
// device-side view of a coalesced workload batch. Timing follows the
// PE's per-op recurrence: each access starts Gap after the previous one
// completed (the compute stretch between memory ops), occupies at least
// Issue (the load/store issue slot), and the stretch from access start
// to completion beyond the issue point is memory stall.
type Run struct {
	Addr   uint64       // first access address
	Stride int64        // address delta between consecutive accesses
	Size   int          // bytes per access
	Count  int          // number of accesses
	Gap    sim.Duration // local-time gap before each access
	Issue  sim.Duration // minimum occupancy per access

	// OnOp, when non-nil, observes every completed access of the run:
	// start is the access's issue time (its Gap compute stretch ends at
	// start) and end is when the issuer may proceed (the later of
	// completion and the issue slot). Every Batcher implementation must
	// invoke it per access with exactly the times the scalar reference
	// loop would produce — it is how the PE's latency/utilization
	// instruments see through the batched fast paths.
	OnOp func(start, end sim.Time)
}

// RunResult reports (possibly partial) execution of a Run.
type RunResult struct {
	Done  int          // accesses completed (<= Run.Count)
	Now   sim.Time     // local time after the last completed access
	Stall sim.Duration // summed per-access stall beyond Gap
}

// BatchReader is the batched read fast path. ReadRun executes leading
// accesses of r starting at now; dst (len >= r.Size) receives the bytes
// of the last completed access. Implementations must be byte- and
// timing-equivalent to ReadRunLoop over the completed prefix, but may
// stop early (Done < Count) at a device-specific boundary - a cache
// stops when the next access would leave its private hierarchy - and the
// caller resumes the remainder through the scalar path.
type BatchReader interface {
	ReadRun(now sim.Time, r Run, dst []byte) (RunResult, error)
}

// BatchWriter is the batched write fast path: every access stores the
// same src bytes (len >= r.Size) at its own address. Equivalence and
// partial-completion semantics mirror BatchReader.
type BatchWriter interface {
	WriteRun(now sim.Time, r Run, src []byte) (RunResult, error)
}

// Batcher bundles both batch directions.
type Batcher interface {
	BatchReader
	BatchWriter
}

// BatchOf returns a batch view of d: d itself when it implements both
// fast paths natively, else a wrapper that executes runs as the plain
// per-access loop, so every Device keeps working behind one call shape.
func BatchOf(d Device) Batcher {
	if b, ok := d.(Batcher); ok {
		return b
	}
	return loopBatcher{d}
}

type loopBatcher struct{ d Device }

func (l loopBatcher) ReadRun(now sim.Time, r Run, dst []byte) (RunResult, error) {
	return ReadRunLoop(l.d, now, r, dst)
}

func (l loopBatcher) WriteRun(now sim.Time, r Run, src []byte) (RunResult, error) {
	return WriteRunLoop(l.d, now, r, src)
}

// ReadRunLoop executes r against d one access at a time - the reference
// semantics every BatchReader must match on the prefix it completes.
func ReadRunLoop(d Device, now sim.Time, r Run, dst []byte) (RunResult, error) {
	res := RunResult{Now: now}
	addr := r.Addr
	for res.Done < r.Count {
		start := res.Now + r.Gap
		done, err := ReadIntoOf(d, start, addr, dst[:r.Size])
		if err != nil {
			return res, err
		}
		advance(&res, start, done, r.Issue)
		if r.OnOp != nil {
			r.OnOp(start, res.Now)
		}
		addr = uint64(int64(addr) + r.Stride)
	}
	return res, nil
}

// WriteRunLoop is ReadRunLoop for stores.
func WriteRunLoop(d Device, now sim.Time, r Run, src []byte) (RunResult, error) {
	res := RunResult{Now: now}
	addr := r.Addr
	for res.Done < r.Count {
		start := res.Now + r.Gap
		done, err := d.Write(start, addr, src[:r.Size])
		if err != nil {
			return res, err
		}
		advance(&res, start, done, r.Issue)
		if r.OnOp != nil {
			r.OnOp(start, res.Now)
		}
		addr = uint64(int64(addr) + r.Stride)
	}
	return res, nil
}

// advance applies one completed access to res: the access ends at the
// later of its completion and its issue slot, and everything past the
// start is stall.
func advance(res *RunResult, start, done sim.Time, issue sim.Duration) {
	if done < start {
		done = start
	}
	end := sim.Max(done, start+issue)
	res.Stall += end - start
	res.Now = end
	res.Done++
}

// runBounds validates the whole run's address range once so per-access
// iterations can skip their range checks.
func runBounds(what string, size uint64, r Run) error {
	addr := r.Addr
	for i := 0; i < r.Count; i++ {
		if err := CheckRange(what, size, addr, r.Size); err != nil {
			return err
		}
		addr = uint64(int64(addr) + r.Stride)
	}
	return nil
}

var _ Batcher = (*Flat)(nil)

// ReadRun implements BatchReader. Flat has no protocol state beyond the
// bus, so the fast path charges each access's bus time but copies bytes
// only for the last access - the only one visible in dst.
func (f *Flat) ReadRun(now sim.Time, r Run, dst []byte) (RunResult, error) {
	if err := runBounds(f.name, f.size, r); err != nil {
		return RunResult{Now: now}, err
	}
	res := RunResult{Now: now}
	for res.Done < r.Count {
		start := res.Now + r.Gap
		done := f.bus.Transfer(start+f.latency, int64(r.Size))
		f.reads++
		f.bytesOut += int64(r.Size)
		advance(&res, start, done, r.Issue)
		if r.OnOp != nil {
			r.OnOp(start, res.Now)
		}
	}
	if r.Count > 0 {
		f.store.ReadInto(uint64(int64(r.Addr)+int64(r.Count-1)*r.Stride), dst[:r.Size])
	}
	return res, nil
}

// WriteRun implements BatchWriter; every store must land (addresses
// differ), so only the range checks are hoisted.
func (f *Flat) WriteRun(now sim.Time, r Run, src []byte) (RunResult, error) {
	if err := runBounds(f.name, f.size, r); err != nil {
		return RunResult{Now: now}, err
	}
	res := RunResult{Now: now}
	addr := r.Addr
	for res.Done < r.Count {
		start := res.Now + r.Gap
		done := f.bus.Transfer(start+f.latency, int64(r.Size))
		f.store.Write(addr, src[:r.Size])
		f.writes++
		f.bytesIn += int64(r.Size)
		advance(&res, start, done, r.Issue)
		if r.OnOp != nil {
			r.OnOp(start, res.Now)
		}
		addr = uint64(int64(addr) + r.Stride)
	}
	return res, nil
}
