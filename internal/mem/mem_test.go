package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"dramless/internal/sim"
)

func TestFlatTiming(t *testing.T) {
	f := NewFlat("m", 1<<20, sim.Nanoseconds(100), 1e9)
	// 1000 bytes at 1 GB/s = 1 us wire + 100 ns latency.
	done, err := f.Write(0, 0, make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if done < sim.Microseconds(1) || done > sim.Microseconds(1.2) {
		t.Fatalf("write done at %v, want ~1.1us", done)
	}
	// Concurrent ops serialize on the bus.
	d2, _ := f.Write(0, 2048, make([]byte, 1000))
	if d2 <= done {
		t.Fatal("bus did not serialize")
	}
}

func TestFlatRoundTripAndTraffic(t *testing.T) {
	f := NewFlat("m", 1<<20, sim.Nanoseconds(1), 1e9)
	payload := []byte("flat memory payload")
	if _, err := f.Write(0, 777, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(0, 777, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip failed")
	}
	r, w, in, out := f.Traffic()
	if r != 1 || w != 1 || in != int64(len(payload)) || out != int64(len(payload)) {
		t.Fatalf("traffic = %d %d %d %d", r, w, in, out)
	}
}

func TestFlatBounds(t *testing.T) {
	f := NewFlat("m", 1024, 0, 1e9)
	if _, _, err := f.Read(0, 1024, 1); err == nil {
		t.Error("read past end accepted")
	}
	if _, err := f.Write(0, 1020, make([]byte, 8)); err == nil {
		t.Error("write past end accepted")
	}
	if _, _, err := f.Read(0, 0, 0); err == nil {
		t.Error("zero read accepted")
	}
}

func TestCheckRangeMessages(t *testing.T) {
	if err := CheckRange("dev", 100, 50, 10); err != nil {
		t.Fatalf("valid range rejected: %v", err)
	}
	if err := CheckRange("dev", 100, 95, 10); err == nil {
		t.Fatal("overflow accepted")
	}
	if err := CheckRange("dev", 100, 0, -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestSparseZeroFill(t *testing.T) {
	s := NewSparse()
	got := s.Read(123456, 64)
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched sparse memory not zero")
		}
	}
	if s.Pages() != 0 {
		t.Fatal("read materialized pages")
	}
	s.Write(4090, []byte{1, 2, 3, 4, 5, 6, 7, 8}) // crosses a page boundary
	if s.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", s.Pages())
	}
	got = s.Read(4090, 8)
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("cross-page round trip failed")
	}
}

func TestDrainOf(t *testing.T) {
	f := NewFlat("m", 1024, 0, 1e9) // no Drainer
	if got := DrainOf(f, 42); got != 42 {
		t.Fatalf("fallback drain = %v", got)
	}
}

// Property: Sparse matches a plain byte slice for arbitrary writes.
func TestSparseEquivalenceProperty(t *testing.T) {
	s := NewSparse()
	shadow := make([]byte, 1<<16)
	f := func(off uint16, data []byte) bool {
		if len(data) > 1000 {
			data = data[:1000]
		}
		addr := uint64(off) % uint64(len(shadow)-1000)
		s.Write(addr, data)
		copy(shadow[addr:], data)
		return bytes.Equal(s.Read(addr, len(data)+32), shadow[addr:addr+uint64(len(data))+32])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
