// Package mem defines the timed memory-device interface every storage
// layer in dramless implements: the PRAM subsystem, caches, flash SSDs,
// DRAM buffers and the host-attached storage paths. Having one interface
// lets the accelerator model swap Table I's backends freely and lets
// functional tests verify bytes end to end through any stack.
package mem

import (
	"fmt"

	"dramless/internal/sim"
)

// Device is a byte-addressable storage layer with simulated timing.
// Implementations are functional (reads return previously written bytes)
// and timed (operations reserve the hardware resources they occupy and
// return their completion time).
type Device interface {
	// Read fetches n bytes at addr starting no earlier than at.
	Read(at sim.Time, addr uint64, n int) (data []byte, done sim.Time, err error)
	// Write stores data at addr starting no earlier than at. Completion
	// semantics are device-specific (posted writes return acceptance).
	Write(at sim.Time, addr uint64, data []byte) (done sim.Time, err error)
	// Size returns the addressable capacity in bytes.
	Size() uint64
}

// ReaderInto is the allocation-free read path: devices that implement it
// fetch len(dst) bytes at addr directly into a caller-provided buffer.
// The contract (DESIGN.md §8):
//
//   - dst is owned by the caller; the device must not retain it past the
//     call and must fill exactly len(dst) bytes on success;
//   - dst must not alias device-internal storage (cache lines, stream
//     buffers, page frames) — implementations copy out of their own
//     state into dst;
//   - timing is identical to Read: ReadInto(at, addr, make([]byte, n))
//     and Read(at, addr, n) complete at the same simulated time and move
//     the device's timing state identically.
type ReaderInto interface {
	ReadInto(at sim.Time, addr uint64, dst []byte) (done sim.Time, err error)
}

// ReadIntoOf reads len(dst) bytes at addr into dst, using d's ReadInto
// fast path when implemented and falling back to Read plus a copy. It is
// the call sites' one-liner for the zero-allocation datapath.
func ReadIntoOf(d Device, at sim.Time, addr uint64, dst []byte) (sim.Time, error) {
	if ri, ok := d.(ReaderInto); ok {
		return ri.ReadInto(at, addr, dst)
	}
	data, done, err := d.Read(at, addr, len(dst))
	if err != nil {
		return 0, err
	}
	copy(dst, data)
	return done, nil
}

// Drainer is implemented by devices with posted work (PRAM programs,
// flash programs, firmware queues); Drain returns when everything
// in flight has retired.
type Drainer interface {
	Drain() sim.Time
}

// DrainOf returns d.Drain() when available, else fallback.
func DrainOf(d Device, fallback sim.Time) sim.Time {
	if dr, ok := d.(Drainer); ok {
		return sim.Max(dr.Drain(), fallback)
	}
	return fallback
}

// CheckRange validates [addr, addr+n) against size; shared by
// implementations so error text stays uniform.
func CheckRange(what string, size, addr uint64, n int) error {
	if n <= 0 {
		return fmt.Errorf("%s: non-positive access size %d", what, n)
	}
	// Guard against addr+n wrapping around uint64 for addresses near the
	// top of the space: compare against the remaining room instead.
	if addr > size || uint64(n) > size-addr {
		return fmt.Errorf("%s: access [%#x,+%#x) outside %#x bytes", what, addr, uint64(n), size)
	}
	return nil
}

// Flat is a perfectly uniform memory: fixed latency, fixed bandwidth,
// backed by a sparse page store. It models the idealized in-accelerator
// DRAM of Figure 1's "ideal" system and the 1 GB DRAM buffers of the
// SSD and PAGE-buffer configurations.
type Flat struct {
	name    string
	size    uint64
	latency sim.Duration
	bus     *sim.Pipe
	store   *Sparse

	reads, writes     int64
	bytesIn, bytesOut int64
}

// NewFlat returns a flat memory of the given size, per-access latency and
// sustained bandwidth (bytes/second).
func NewFlat(name string, size uint64, latency sim.Duration, bytesPerSec float64) *Flat {
	return &Flat{
		name:    name,
		size:    size,
		latency: latency,
		bus:     sim.NewPipe(name+".bus", bytesPerSec, 0),
		store:   NewSparse(),
	}
}

// Size implements Device.
func (f *Flat) Size() uint64 { return f.size }

// Read implements Device.
func (f *Flat) Read(at sim.Time, addr uint64, n int) ([]byte, sim.Time, error) {
	if n <= 0 {
		return nil, 0, CheckRange(f.name, f.size, addr, n)
	}
	out := make([]byte, n)
	done, err := f.ReadInto(at, addr, out)
	if err != nil {
		return nil, 0, err
	}
	return out, done, nil
}

// ReadInto implements ReaderInto: the timed read without the fresh
// buffer.
func (f *Flat) ReadInto(at sim.Time, addr uint64, dst []byte) (sim.Time, error) {
	if err := CheckRange(f.name, f.size, addr, len(dst)); err != nil {
		return 0, err
	}
	done := f.bus.Transfer(at+f.latency, int64(len(dst)))
	f.reads++
	f.bytesOut += int64(len(dst))
	f.store.ReadInto(addr, dst)
	return done, nil
}

var _ ReaderInto = (*Flat)(nil)

// Write implements Device.
func (f *Flat) Write(at sim.Time, addr uint64, data []byte) (sim.Time, error) {
	if err := CheckRange(f.name, f.size, addr, len(data)); err != nil {
		return 0, err
	}
	done := f.bus.Transfer(at+f.latency, int64(len(data)))
	f.store.Write(addr, data)
	f.writes++
	f.bytesIn += int64(len(data))
	return done, nil
}

// Traffic returns (reads, writes, bytesWritten, bytesRead).
func (f *Flat) Traffic() (reads, writes, bytesIn, bytesOut int64) {
	return f.reads, f.writes, f.bytesIn, f.bytesOut
}

// Sparse is a page-granular sparse byte store used as the functional
// backing of large simulated memories; untouched space reads as zero.
type Sparse struct {
	pages map[uint64][]byte
}

const sparsePage = 4096

// NewSparse returns an empty store.
func NewSparse() *Sparse { return &Sparse{pages: map[uint64][]byte{}} }

// Read returns n bytes at addr (zeroes where never written).
func (s *Sparse) Read(addr uint64, n int) []byte {
	out := make([]byte, n)
	s.ReadInto(addr, out)
	return out
}

// ReadInto fills dst with the bytes at addr (zeroes where never
// written) without allocating.
func (s *Sparse) ReadInto(addr uint64, dst []byte) {
	n := len(dst)
	for off := 0; off < n; {
		pg := (addr + uint64(off)) / sparsePage
		po := int((addr + uint64(off)) % sparsePage)
		take := sparsePage - po
		if take > n-off {
			take = n - off
		}
		if p, ok := s.pages[pg]; ok {
			copy(dst[off:off+take], p[po:])
		} else {
			zeroFill(dst[off : off+take])
		}
		off += take
	}
}

// zeroFill clears b (dst may be a reused scratch buffer holding stale
// bytes, unlike the fresh buffers Read hands out).
func zeroFill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Write stores data at addr.
func (s *Sparse) Write(addr uint64, data []byte) {
	for off := 0; off < len(data); {
		pg := (addr + uint64(off)) / sparsePage
		po := int((addr + uint64(off)) % sparsePage)
		take := sparsePage - po
		if take > len(data)-off {
			take = len(data) - off
		}
		p, ok := s.pages[pg]
		if !ok {
			p = newPage()
			s.pages[pg] = p
		}
		copy(p[po:], data[off:off+take])
		off += take
	}
}

// Pages returns how many pages have been materialized.
func (s *Sparse) Pages() int { return len(s.pages) }
