package mem_test

// Steady-state allocation regression tests (ISSUE 2 acceptance
// criteria): the cache-hit read path must allocate nothing, and the
// Flat-memory path at most one buffer per Read (zero via ReadInto).
// These pins keep the zero-allocation datapath from regressing silently.

import (
	"testing"

	"dramless/internal/cache"
	"dramless/internal/mem"
	"dramless/internal/sim"
)

func TestCacheHitReadIntoAllocationFree(t *testing.T) {
	flat := mem.NewFlat("lower", 1<<20, 100*sim.Nanosecond, 12.8e9)
	c := cache.MustNew(cache.L1Data(), flat)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := c.Write(0, 4096, payload); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	// Warm: the first read fills the line from below.
	if _, err := c.ReadInto(sim.Microsecond, 4096, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.ReadInto(sim.Microsecond, 4096, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit ReadInto allocates %.1f objects per call, want 0", allocs)
	}
}

// TestCacheReadRunAllocationFree pins the coalesced fast path: servicing
// a whole run of resident lines through one ReadRun call must allocate
// nothing, like the scalar hit path it folds.
func TestCacheReadRunAllocationFree(t *testing.T) {
	flat := mem.NewFlat("lower", 1<<20, 100*sim.Nanosecond, 12.8e9)
	c := cache.MustNew(cache.L1Data(), flat)
	run := mem.Run{Addr: 4096, Stride: 32, Size: 32, Count: 64, Gap: 10 * sim.Nanosecond, Issue: sim.Nanosecond}
	dst := make([]byte, 32)
	// Warm scalar: misses over a non-Cache lower level stop a run, so
	// fill the lines one access at a time first.
	for i := 0; i < run.Count; i++ {
		addr := uint64(int64(run.Addr) + int64(i)*run.Stride)
		if _, err := c.ReadInto(0, addr, dst); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		res, err := c.ReadRun(sim.Microsecond, run, dst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Done != run.Count {
			t.Fatalf("resident run completed %d/%d accesses", res.Done, run.Count)
		}
	})
	if allocs != 0 {
		t.Fatalf("resident-run ReadRun allocates %.1f objects per call, want 0", allocs)
	}
}

// TestCacheWriteRunAllocationFree is the store-side pin.
func TestCacheWriteRunAllocationFree(t *testing.T) {
	flat := mem.NewFlat("lower", 1<<20, 100*sim.Nanosecond, 12.8e9)
	c := cache.MustNew(cache.L1Data(), flat)
	run := mem.Run{Addr: 8192, Stride: 32, Size: 32, Count: 64, Gap: 10 * sim.Nanosecond, Issue: sim.Nanosecond}
	src := make([]byte, 32)
	for i := range src {
		src[i] = byte(i + 1)
	}
	for i := 0; i < run.Count; i++ {
		addr := uint64(int64(run.Addr) + int64(i)*run.Stride)
		if _, err := c.Write(0, addr, src); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		res, err := c.WriteRun(sim.Microsecond, run, src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Done != run.Count {
			t.Fatalf("resident run completed %d/%d accesses", res.Done, run.Count)
		}
	})
	if allocs != 0 {
		t.Fatalf("resident-run WriteRun allocates %.1f objects per call, want 0", allocs)
	}
}

func TestFlatReadAllocationBound(t *testing.T) {
	flat := mem.NewFlat("flat", 1<<20, 100*sim.Nanosecond, 12.8e9)
	if _, err := flat.Write(0, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := flat.ReadInto(0, 512, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Flat.ReadInto allocates %.1f objects per call, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if _, _, err := flat.Read(0, 512, 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Flat.Read allocates %.1f objects per call, want <= 1", allocs)
	}
}
