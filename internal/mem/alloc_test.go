package mem_test

// Steady-state allocation regression tests (ISSUE 2 acceptance
// criteria): the cache-hit read path must allocate nothing, and the
// Flat-memory path at most one buffer per Read (zero via ReadInto).
// These pins keep the zero-allocation datapath from regressing silently.

import (
	"testing"

	"dramless/internal/cache"
	"dramless/internal/mem"
	"dramless/internal/sim"
)

func TestCacheHitReadIntoAllocationFree(t *testing.T) {
	flat := mem.NewFlat("lower", 1<<20, 100*sim.Nanosecond, 12.8e9)
	c := cache.MustNew(cache.L1Data(), flat)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := c.Write(0, 4096, payload); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	// Warm: the first read fills the line from below.
	if _, err := c.ReadInto(sim.Microsecond, 4096, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.ReadInto(sim.Microsecond, 4096, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit ReadInto allocates %.1f objects per call, want 0", allocs)
	}
}

func TestFlatReadAllocationBound(t *testing.T) {
	flat := mem.NewFlat("flat", 1<<20, 100*sim.Nanosecond, 12.8e9)
	if _, err := flat.Write(0, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := flat.ReadInto(0, 512, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Flat.ReadInto allocates %.1f objects per call, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if _, _, err := flat.Read(0, 512, 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Flat.Read allocates %.1f objects per call, want <= 1", allocs)
	}
}
