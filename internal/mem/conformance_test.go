package mem_test

// ReadInto conformance: for every device in the simulated datapath,
// ReadInto must return exactly the bytes Read returns AND complete at
// exactly the same simulated time, access for access (DESIGN.md §8).
// Read and ReadInto both advance shared timing state (buses, buffer
// pairs, caches), so each flavour runs against its own identically-built
// instance and the two sequences are compared in lockstep.

import (
	"bytes"
	"testing"

	"dramless/internal/cache"
	"dramless/internal/flash"
	"dramless/internal/mem"
	"dramless/internal/memctrl"
	"dramless/internal/sim"
	"dramless/internal/ssd"
)

type conformanceCase struct {
	name string
	// build returns a fresh device and the first time traffic may start;
	// successive calls must return indistinguishable instances.
	build func(t *testing.T) (mem.Device, sim.Time)
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{"Flat", func(t *testing.T) (mem.Device, sim.Time) {
			return mem.NewFlat("flat", 1<<20, 100*sim.Nanosecond, 12.8e9), 0
		}},
		{"CacheStack", func(t *testing.T) (mem.Device, sim.Time) {
			flat := mem.NewFlat("lower", 1<<20, 100*sim.Nanosecond, 12.8e9)
			l2 := cache.MustNew(cache.L2(), flat)
			return cache.MustNew(cache.L1Data(), l2), 0
		}},
		{"Subsystem", func(t *testing.T) (mem.Device, sim.Time) {
			cfg := memctrl.DefaultConfig(memctrl.Final)
			cfg.Geometry.RowsPerModule = 1 << 16
			sub, err := memctrl.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ready, err := sub.Boot(0)
			if err != nil {
				t.Fatal(err)
			}
			return sub, ready
		}},
		{"SSD", func(t *testing.T) (mem.Device, sim.Time) {
			return ssd.MustNew(ssd.DefaultConfig(flash.SLC(), 1<<20)), 0
		}},
	}
}

func TestReadIntoConformance(t *testing.T) {
	// The access sequence mixes written and never-written ranges,
	// repeats (cache/buffer hits), and unaligned spans crossing line,
	// row and page boundaries.
	accesses := []struct {
		addr uint64
		n    int
	}{
		{64, 32}, {64, 32}, {96, 300}, {0, 256},
		{500, 128}, {64, 512}, {40, 8}, {1 << 15, 64},
	}
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			devA, readyA := tc.build(t)
			devB, readyB := tc.build(t)
			if readyA != readyB {
				t.Fatalf("builds not identical: ready %v vs %v", readyA, readyB)
			}
			ri, ok := devB.(mem.ReaderInto)
			if !ok {
				t.Fatalf("%T does not implement mem.ReaderInto", devB)
			}

			pattern := make([]byte, 512)
			for i := range pattern {
				pattern[i] = byte(i*13 + 7)
			}
			tA, err := devA.Write(readyA, 64, pattern)
			if err != nil {
				t.Fatal(err)
			}
			tB, err := devB.Write(readyB, 64, pattern)
			if err != nil {
				t.Fatal(err)
			}
			if tA != tB {
				t.Fatalf("population writes diverge: %v vs %v", tA, tB)
			}

			for i, ac := range accesses {
				want, doneA, err := devA.Read(tA, ac.addr, ac.n)
				if err != nil {
					t.Fatalf("access %d: Read: %v", i, err)
				}
				got := make([]byte, ac.n)
				for j := range got {
					got[j] = 0xAA // stale scratch: flushes out missing zero-fill
				}
				doneB, err := ri.ReadInto(tB, ac.addr, got)
				if err != nil {
					t.Fatalf("access %d: ReadInto: %v", i, err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("access %d [%#x,+%d): bytes diverge", i, ac.addr, ac.n)
				}
				if doneA != doneB {
					t.Fatalf("access %d [%#x,+%d): Read done %v, ReadInto done %v",
						i, ac.addr, ac.n, doneA, doneB)
				}
				tA, tB = doneA, doneB
			}
		})
	}
}

// TestReadIntoOfFallback pins the helper's behaviour for devices without
// the fast path: Read plus copy, same bytes, same completion time.
func TestReadIntoOfFallback(t *testing.T) {
	a := mem.NewFlat("a", 1<<16, 10*sim.Nanosecond, 1e9)
	b := mem.NewFlat("b", 1<<16, 10*sim.Nanosecond, 1e9)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := a.Write(0, 128, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(0, 128, payload); err != nil {
		t.Fatal(err)
	}
	want, wantDone, err := a.Read(sim.Microsecond, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 8)
	gotDone, err := mem.ReadIntoOf(plainDevice{b}, sim.Microsecond, 128, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, dst) || wantDone != gotDone {
		t.Fatalf("fallback diverges: %v/%v vs %v/%v", want, wantDone, dst, gotDone)
	}
}

// plainDevice hides Flat's ReadInto so ReadIntoOf exercises the fallback.
type plainDevice struct{ d mem.Device }

func (p plainDevice) Read(at sim.Time, addr uint64, n int) ([]byte, sim.Time, error) {
	return p.d.Read(at, addr, n)
}
func (p plainDevice) Write(at sim.Time, addr uint64, data []byte) (sim.Time, error) {
	return p.d.Write(at, addr, data)
}
func (p plainDevice) Size() uint64 { return p.d.Size() }

// TestCheckRangeOverflow pins the uint64 wraparound fix: a size that
// would make addr+n wrap past zero must still be rejected.
func TestCheckRangeOverflow(t *testing.T) {
	size := uint64(1 << 20)
	if err := mem.CheckRange("dev", size, ^uint64(0)-16, 64); err == nil {
		t.Fatal("wrapping access accepted")
	}
	if err := mem.CheckRange("dev", size, size-64, 64); err != nil {
		t.Fatalf("valid tail access rejected: %v", err)
	}
	if err := mem.CheckRange("dev", size, size-64, 65); err == nil {
		t.Fatal("one-past-the-end access accepted")
	}
	if err := mem.CheckRange("dev", size, 0, 0); err == nil {
		t.Fatal("zero-size access accepted")
	}
}
