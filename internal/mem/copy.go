package mem

import "sync"

// CopyFrom clones src's bus timeline, traffic totals and page store into
// f. Both memories must share size/latency/bandwidth configuration.
func (f *Flat) CopyFrom(src *Flat) {
	f.bus.CopyFrom(src.bus)
	f.store.CopyFrom(src.store)
	f.reads = src.reads
	f.writes = src.writes
	f.bytesIn = src.bytesIn
	f.bytesOut = src.bytesOut
}

// Release returns the page store to the package pool. Call only once the
// memory's contents are no longer needed.
func (f *Flat) Release() { f.store.Release() }

// pagePool recycles sparse page frames across simulation runs, so each
// experiment cell's staging traffic does not re-allocate the page
// population the previous cell just dropped. Pooled pages hold stale
// bytes; newPage zeroes on acquisition (untouched space must read as
// zero), CopyFrom overwrites whole pages and skips the clear.
var pagePool struct {
	mu   sync.Mutex
	free [][]byte
}

func pooledPage() []byte {
	pagePool.mu.Lock()
	defer pagePool.mu.Unlock()
	n := len(pagePool.free)
	if n == 0 {
		return nil
	}
	p := pagePool.free[n-1]
	pagePool.free[n-1] = nil
	pagePool.free = pagePool.free[:n-1]
	return p
}

// newPage returns a zeroed page frame.
func newPage() []byte {
	if p := pooledPage(); p != nil {
		zeroFill(p)
		return p
	}
	return make([]byte, sparsePage)
}

// Release returns every materialized page to the pool and empties the
// store.
func (s *Sparse) Release() {
	if len(s.pages) == 0 {
		return
	}
	pagePool.mu.Lock()
	for pg, p := range s.pages {
		pagePool.free = append(pagePool.free, p)
		delete(s.pages, pg)
	}
	pagePool.mu.Unlock()
}

// CopyFrom replaces s's contents with a deep copy of src's pages, so
// later writes to either store never alias the other.
func (s *Sparse) CopyFrom(src *Sparse) {
	s.Release()
	if s.pages == nil {
		s.pages = make(map[uint64][]byte, len(src.pages))
	}
	for pg, data := range src.pages {
		p := pooledPage()
		if p == nil {
			p = make([]byte, sparsePage)
		}
		copy(p, data)
		s.pages[pg] = p
	}
}
