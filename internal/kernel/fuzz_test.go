package kernel

import (
	"bytes"
	"testing"
)

// FuzzUnpack hammers the image parser with arbitrary bytes: it must never
// panic or over-read, and anything it accepts must re-pack/unpack
// consistently (the server trusts unpacked images for code loading).
func FuzzUnpack(f *testing.F) {
	good, _ := Pack(sample())
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("DLK1"))
	f.Add(append(append([]byte{}, good[:20]...), 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := Pack(img)
		if err != nil {
			t.Fatalf("accepted image does not re-pack: %v", err)
		}
		again, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("re-packed image does not parse: %v", err)
		}
		if len(again.Apps) != len(img.Apps) || !bytes.Equal(again.Shared, img.Shared) {
			t.Fatal("pack/unpack not idempotent")
		}
		for i := range img.Apps {
			if again.Apps[i].BootAddr != img.Apps[i].BootAddr ||
				!bytes.Equal(again.Apps[i].Code, img.Apps[i].Code) {
				t.Fatalf("app %d drifted through repack", i)
			}
		}
	})
}
