// Package kernel implements the DRAM-less programming and offload model
// (Section IV, Figures 8-10): kernel images packed on the host with
// packData/pushData, shipped over PCIe into a designated image space in
// PRAM, unpacked by the server PE (unpackData), and dispatched to agents
// by storing each agent's boot address and cycling it through the
// power/sleep controller.
package kernel

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

// Magic marks a packed kernel image.
var Magic = [4]byte{'D', 'L', 'K', '1'}

// App is one application kernel within an image.
type App struct {
	// BootAddr is the accelerator-memory address the code segment must
	// be loaded to; agents boot from it ("updating PE's magic address
	// with kernel's boot entry address").
	BootAddr uint64
	// Code is the kernel binary.
	Code []byte
}

// Image is the unpacked form: per-app code segments plus the shared
// common code of Figure 10's metadata.
type Image struct {
	// SharedAddr is where the shared segment loads.
	SharedAddr uint64
	// Shared is code common to all apps (runtime, math library).
	Shared []byte
	// Apps are the per-agent kernels.
	Apps []App
}

// Validate reports structural errors.
func (img *Image) Validate() error {
	if len(img.Apps) == 0 {
		return fmt.Errorf("kernel: image with no apps")
	}
	for i, a := range img.Apps {
		if len(a.Code) == 0 {
			return fmt.Errorf("kernel: app %d has no code", i)
		}
	}
	return nil
}

// Pack serializes the image (the host-side packData interface). Layout:
//
//	magic[4] | numApps u16 | sharedAddr u64 | sharedLen u32
//	| apps: {bootAddr u64, codeLen u32} x numApps
//	| shared bytes | app code bytes...
func Pack(img *Image) ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if len(img.Apps) > 0xFFFF {
		return nil, fmt.Errorf("kernel: %d apps exceed the 16-bit header field", len(img.Apps))
	}
	var buf bytes.Buffer
	buf.Write(Magic[:])
	bin := binary.LittleEndian
	var tmp [8]byte
	bin.PutUint16(tmp[:2], uint16(len(img.Apps)))
	buf.Write(tmp[:2])
	bin.PutUint64(tmp[:], img.SharedAddr)
	buf.Write(tmp[:8])
	bin.PutUint32(tmp[:4], uint32(len(img.Shared)))
	buf.Write(tmp[:4])
	for _, a := range img.Apps {
		bin.PutUint64(tmp[:], a.BootAddr)
		buf.Write(tmp[:8])
		bin.PutUint32(tmp[:4], uint32(len(a.Code)))
		buf.Write(tmp[:4])
	}
	buf.Write(img.Shared)
	for _, a := range img.Apps {
		buf.Write(a.Code)
	}
	return buf.Bytes(), nil
}

// Unpack parses a packed image (the server-side unpackData interface).
func Unpack(data []byte) (*Image, error) {
	if len(data) < 18 || !bytes.Equal(data[:4], Magic[:]) {
		return nil, fmt.Errorf("kernel: bad image magic")
	}
	bin := binary.LittleEndian
	n := int(bin.Uint16(data[4:6]))
	img := &Image{SharedAddr: bin.Uint64(data[6:14])}
	sharedLen := int(bin.Uint32(data[14:18]))
	off := 18
	type hdr struct {
		boot uint64
		size int
	}
	hdrs := make([]hdr, n)
	for i := 0; i < n; i++ {
		if off+12 > len(data) {
			return nil, fmt.Errorf("kernel: truncated app header %d", i)
		}
		hdrs[i] = hdr{boot: bin.Uint64(data[off : off+8]), size: int(bin.Uint32(data[off+8 : off+12]))}
		off += 12
	}
	if off+sharedLen > len(data) {
		return nil, fmt.Errorf("kernel: truncated shared segment")
	}
	img.Shared = append([]byte(nil), data[off:off+sharedLen]...)
	off += sharedLen
	for i := 0; i < n; i++ {
		if off+hdrs[i].size > len(data) {
			return nil, fmt.Errorf("kernel: truncated code for app %d", i)
		}
		img.Apps = append(img.Apps, App{
			BootAddr: hdrs[i].boot,
			Code:     append([]byte(nil), data[off:off+hdrs[i].size]...),
		})
		off += hdrs[i].size
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// Pusher delivers bytes from the host into accelerator memory; the system
// package implements it over PCIe + the server path. A plain function
// type keeps this package free of interconnect dependencies.
type Pusher func(at sim.Time, dst uint64, data []byte) (sim.Time, error)

// Offload performs the full Figure 9b flow against an accelerator memory:
//
//  1. pushData ships the packed image to imageAddr (a designated image
//     space in PRAM),
//  2. the server reads it back and unpacks it,
//  3. each app's code segment (and the shared segment) is loaded to its
//     target address via server-issued memory writes.
//
// It returns the parsed image, the per-app boot addresses ready for PSC
// launch, and the completion time.
func Offload(at sim.Time, img *Image, imageAddr uint64, push Pusher, acc mem.Device) (*Image, sim.Time, error) {
	packed, err := Pack(img)
	if err != nil {
		return nil, 0, err
	}
	// (1) host -> accelerator image space.
	now, err := push(at, imageAddr, packed)
	if err != nil {
		return nil, 0, err
	}
	// (2) server reads the image back from PRAM and parses it.
	raw, now, err := acc.Read(now, imageAddr, len(packed))
	if err != nil {
		return nil, 0, err
	}
	parsed, err := Unpack(raw)
	if err != nil {
		return nil, 0, err
	}
	// (3) load segments to their target addresses.
	if len(parsed.Shared) > 0 {
		if now, err = acc.Write(now, parsed.SharedAddr, parsed.Shared); err != nil {
			return nil, 0, err
		}
	}
	for _, a := range parsed.Apps {
		if now, err = acc.Write(now, a.BootAddr, a.Code); err != nil {
			return nil, 0, err
		}
	}
	return parsed, now, nil
}
