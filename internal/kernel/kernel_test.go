package kernel

import (
	"bytes"
	"testing"
	"testing/quick"

	"dramless/internal/mem"
	"dramless/internal/memctrl"
	"dramless/internal/sim"
)

func sample() *Image {
	return &Image{
		SharedAddr: 0x10000,
		Shared:     bytes.Repeat([]byte{0xEE}, 300),
		Apps: []App{
			{BootAddr: 0x20000, Code: bytes.Repeat([]byte{1, 2, 3}, 100)},
			{BootAddr: 0x30000, Code: bytes.Repeat([]byte{4, 5}, 64)},
		},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	img := sample()
	packed, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if got.SharedAddr != img.SharedAddr || !bytes.Equal(got.Shared, img.Shared) {
		t.Fatal("shared segment mismatch")
	}
	if len(got.Apps) != 2 {
		t.Fatalf("apps = %d", len(got.Apps))
	}
	for i := range img.Apps {
		if got.Apps[i].BootAddr != img.Apps[i].BootAddr || !bytes.Equal(got.Apps[i].Code, img.Apps[i].Code) {
			t.Fatalf("app %d mismatch", i)
		}
	}
}

func TestUnpackRejectsCorruptImages(t *testing.T) {
	packed, _ := Pack(sample())
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), packed[4:]...),
		"truncated": packed[:20],
		"cut code":  packed[:len(packed)-5],
	}
	for name, data := range cases {
		if _, err := Unpack(data); err == nil {
			t.Errorf("%s image accepted", name)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Pack(&Image{}); err == nil {
		t.Error("empty image packed")
	}
	if _, err := Pack(&Image{Apps: []App{{BootAddr: 1}}}); err == nil {
		t.Error("app with no code packed")
	}
}

func TestOffloadLoadsSegmentsIntoPRAM(t *testing.T) {
	cfg := memctrl.DefaultConfig(memctrl.Final)
	cfg.Geometry.RowsPerModule = 1 << 16
	sub := memctrl.MustNew(cfg)

	img := sample()
	var pushed int64
	push := func(at sim.Time, dst uint64, data []byte) (sim.Time, error) {
		pushed += int64(len(data))
		return sub.Write(at, dst, data)
	}
	parsed, done, err := Offload(0, img, 0x1000, push, sub)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 || pushed == 0 {
		t.Fatal("offload made no progress")
	}
	settle := sub.Drain()
	// The code segments must now be readable at their boot addresses.
	for i, a := range parsed.Apps {
		got, _, err := sub.Read(settle, a.BootAddr, len(a.Code))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, img.Apps[i].Code) {
			t.Fatalf("app %d code not loaded", i)
		}
	}
	shared, _, err := sub.Read(settle, img.SharedAddr, len(img.Shared))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shared, img.Shared) {
		t.Fatal("shared segment not loaded")
	}
}

func TestOffloadOnFlatMemory(t *testing.T) {
	m := mem.NewFlat("m", 1<<20, sim.Nanoseconds(100), 1e9)
	img := sample()
	push := func(at sim.Time, dst uint64, data []byte) (sim.Time, error) {
		return m.Write(at, dst, data)
	}
	if _, _, err := Offload(0, img, 0, push, m); err != nil {
		t.Fatal(err)
	}
}

// Property: pack/unpack round-trips arbitrary images.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(shared []byte, boot1, boot2 uint32, code1, code2 []byte) bool {
		if len(code1) == 0 {
			code1 = []byte{1}
		}
		if len(code2) == 0 {
			code2 = []byte{2}
		}
		img := &Image{
			SharedAddr: 64,
			Shared:     shared,
			Apps: []App{
				{BootAddr: uint64(boot1), Code: code1},
				{BootAddr: uint64(boot2), Code: code2},
			},
		}
		packed, err := Pack(img)
		if err != nil {
			return false
		}
		got, err := Unpack(packed)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Shared, shared) &&
			got.Apps[0].BootAddr == uint64(boot1) &&
			bytes.Equal(got.Apps[0].Code, code1) &&
			bytes.Equal(got.Apps[1].Code, code2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
