// Package cache implements the set-associative write-back caches of the
// accelerator's PEs (64 KB L1 and 512 KB L2 in the TMS320C6678-like
// platform the paper evaluates). Caches are functional and timed: they
// store real line data, and misses propagate to the lower mem.Device with
// full timing, so a whole PE -> L1 -> L2 -> PRAM stack moves real bytes
// with realistic latency.
package cache

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"dramless/internal/mem"
	"dramless/internal/obs"
	"dramless/internal/sim"
)

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency sim.Duration
	// Obs attaches per-access hit/miss latency histograms
	// ("cache.l1.hit_ps", ...; the level is the Name's prefix before the
	// first dot, lowercased). Nil disables recording at one pointer
	// check per access.
	Obs *obs.Observer
}

// histLevel returns the instrument level slug of the cache ("l1", "l2").
func (c Config) histLevel() string {
	name := c.Name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		name = name[:i]
	}
	return strings.ToLower(name)
}

// L1Data returns the paper platform's 64 KB 2-way L1 with 64 B lines
// (1 ns hit at the 1 GHz core clock).
func L1Data() Config {
	return Config{Name: "L1", SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitLatency: sim.Nanoseconds(1)}
}

// L2 returns the platform's 512 KB 4-way L2 with 128 B lines (~5 ns hit).
// The paper's server-side MCU issues 512 B requests per channel by
// leveraging this cache.
func L2() Config {
	return Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 128, Ways: 4, HitLatency: sim.Nanoseconds(5)}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache %s: size/line/ways must be positive", c.Name)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
	BytesBelow int64 // bytes moved to/from the lower level

	// Service-time accounts in picoseconds of simulated time,
	// accumulated always-on at the same sites as the hit/miss latency
	// histograms (blame attribution, DESIGN.md §15). HitPS is exclusive
	// to this level; MissPS includes the lower level's service time.
	HitPS  int64
	MissPS int64
}

// HitRate returns hits / accesses (0 when idle).
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// CountersInto writes the snapshot into the registry under prefix (e.g.
// "accel.pe0.l1."), including a hit-rate gauge once the cache saw
// traffic.
func (s Stats) CountersInto(c *obs.Counters, prefix string) {
	c.Add(prefix+"hits", s.Hits)
	c.Add(prefix+"misses", s.Misses)
	c.Add(prefix+"evictions", s.Evictions)
	c.Add(prefix+"writebacks", s.Writebacks)
	c.Add(prefix+"bytes_below", s.BytesBelow)
	if s.Hits+s.Misses > 0 {
		c.SetGauge(prefix+"hit_rate", s.HitRate())
	}
}

type line struct {
	valid, dirty bool
	tag          uint64
	data         []byte
	lastUse      int64
}

// Cache is one set-associative write-back, write-allocate cache level in
// front of a lower mem.Device.
type Cache struct {
	cfg     Config
	errName string // "cache <name>", precomputed so range checks don't allocate
	lower   mem.Device
	sets    [][]line
	slab    []byte // one backing array for every line's data
	store   *storage
	tick    int64
	stats   Stats

	// Address-decomposition constants: line size and set count are
	// validated powers of two, so index/lineBase run on shifts and masks
	// instead of hardware division (index sits on every access path).
	lineShift uint
	setShift  uint
	lineMask  uint64
	setMask   uint64

	// Per-access latency instruments, resolved once at construction
	// (nil when observation is off; the nil handles no-op).
	hHit  *obs.Histogram
	hMiss *obs.Histogram
}

// storage is a cache's construction-time storage, recycled across
// instances via Release: the experiment engine rebuilds every PE's L1/L2
// for each system x kernel cell, and allocating (and zeroing, and
// GC-scanning) megabytes of line arrays per cell dominated the suite's
// wall clock once the datapath itself stopped allocating.
type storage struct {
	slab  []byte
	lines []line
	sets  [][]line

	// AccessPrivate's per-set probe scratch: epoch-stamped touch/miss
	// marks, giving the multi-line classifier one O(1) membership test
	// per touched line instead of a quadratic same-set rescan. The
	// epoch lives with the arrays and only ever grows, so recycled
	// storage never carries a stale stamp that matches a live probe.
	probeEpoch uint64
	probeTouch []uint64
	probeMiss  []uint64
}

// storagePools recycles storage per cache shape (size, line, ways), so a
// Get always fits exactly.
var storagePools sync.Map // [3]int -> *sync.Pool

func storagePool(cfg Config) *sync.Pool {
	key := [3]int{cfg.SizeBytes, cfg.LineBytes, cfg.Ways}
	if p, ok := storagePools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := storagePools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

var (
	_ mem.Device     = (*Cache)(nil)
	_ mem.ReaderInto = (*Cache)(nil)
)

// New builds a cache over lower. All line storage comes from one slab
// allocation (3 allocations per cache instead of sets*ways+2): the
// experiment engine rebuilds every PE's L1/L2 for each system x kernel
// cell, which made per-way line buffers the single largest allocation
// source of the suite.
func New(cfg Config, lower mem.Device) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lower == nil {
		return nil, fmt.Errorf("cache %s: nil lower level", cfg.Name)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	pool := storagePool(cfg)
	st, _ := pool.Get().(*storage)
	if st == nil {
		st = &storage{
			slab:       make([]byte, cfg.SizeBytes),
			lines:      make([]line, nsets*cfg.Ways),
			sets:       make([][]line, nsets),
			probeTouch: make([]uint64, nsets),
			probeMiss:  make([]uint64, nsets),
		}
	}
	c := &Cache{
		cfg:       cfg,
		errName:   "cache " + cfg.Name,
		lower:     lower,
		sets:      st.sets,
		slab:      st.slab,
		store:     st,
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineBytes))),
		lineMask:  uint64(cfg.LineBytes) - 1,
		setShift:  uint(bits.TrailingZeros64(uint64(nsets))),
		setMask:   uint64(nsets) - 1,
	}
	if hs := cfg.Obs.Histograms(); hs != nil {
		lvl := cfg.histLevel()
		c.hHit = hs.Get("cache." + lvl + ".hit_ps")
		c.hMiss = hs.Get("cache." + lvl + ".miss_ps")
	}
	for i := range c.sets {
		ways := st.lines[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		for w := range ways {
			base := (i*cfg.Ways + w) * cfg.LineBytes
			// Full line reset: recycled storage carries stale tags and
			// valid bits (stale slab bytes are unobservable - every line
			// is refilled from below before its first copy-out).
			ways[w] = line{data: c.slab[base : base+cfg.LineBytes : base+cfg.LineBytes]}
		}
		c.sets[i] = ways
	}
	return c, nil
}

// Release returns the cache's line storage to the construction pool. The
// cache must not be used afterwards; callers that rebuild cache
// hierarchies per run (the accelerator) call it once stats have been
// snapshotted.
func (c *Cache) Release() {
	if c.store == nil {
		return
	}
	storagePool(c.cfg).Put(c.store)
	c.store, c.sets, c.slab = nil, nil, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, lower mem.Device) *Cache {
	c, err := New(cfg, lower)
	if err != nil {
		panic(err)
	}
	return c
}

// Size implements mem.Device: the cache is transparent, exposing the
// lower device's space.
func (c *Cache) Size() uint64 { return c.lower.Size() }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set int, tag uint64, off int) {
	lineAddr := addr >> c.lineShift
	return int(lineAddr & c.setMask), lineAddr >> c.setShift, int(addr & c.lineMask)
}

func (c *Cache) lineBase(set int, tag uint64) uint64 {
	return (tag<<c.setShift | uint64(set)) << c.lineShift
}

// lookup returns the way holding (set, tag) or -1.
func (c *Cache) lookup(set int, tag uint64) int {
	ways := c.sets[set]
	for w := range ways {
		ln := &ways[w]
		if ln.valid && ln.tag == tag {
			return w
		}
	}
	return -1
}

// victim returns the LRU way of the set, preferring invalid ways.
func (c *Cache) victim(set int) int {
	best, bestUse := 0, int64(1<<62)
	for w := range c.sets[set] {
		if !c.sets[set][w].valid {
			return w
		}
		if c.sets[set][w].lastUse < bestUse {
			best, bestUse = w, c.sets[set][w].lastUse
		}
	}
	return best
}

// fill ensures (set, tag) is resident, returning its way and the time the
// line is ready. Misses fetch from below, evicting (and writing back) the
// LRU victim first.
func (c *Cache) fill(at sim.Time, set int, tag uint64) (int, sim.Time, error) {
	if w := c.lookup(set, tag); w >= 0 {
		c.stats.Hits++
		c.stats.HitPS += int64(c.cfg.HitLatency)
		if c.hHit != nil {
			c.hHit.Record(int64(c.cfg.HitLatency))
		}
		return w, at + c.cfg.HitLatency, nil
	}
	c.stats.Misses++
	w := c.victim(set)
	ln := &c.sets[set][w]
	t := at + c.cfg.HitLatency // tag check before going below
	if ln.valid {
		c.stats.Evictions++
		if ln.dirty {
			c.stats.Writebacks++
			c.stats.BytesBelow += int64(c.cfg.LineBytes)
			done, err := c.lower.Write(t, c.lineBase(set, ln.tag), ln.data)
			if err != nil {
				return 0, 0, fmt.Errorf("cache %s: writeback: %w", c.cfg.Name, err)
			}
			t = done
		}
	}
	base := c.lineBase(set, tag)
	// Fetch straight into the line's slab storage; invalidate first so an
	// error below cannot leave a half-filled line looking resident.
	ln.valid, ln.dirty = false, false
	done, err := mem.ReadIntoOf(c.lower, t, base, ln.data)
	if err != nil {
		return 0, 0, fmt.Errorf("cache %s: fill: %w", c.cfg.Name, err)
	}
	c.stats.BytesBelow += int64(c.cfg.LineBytes)
	ln.valid, ln.dirty, ln.tag = true, false, tag
	c.stats.MissPS += int64(done - at)
	if c.hMiss != nil {
		c.hMiss.Record(int64(done - at))
	}
	return w, done, nil
}

// Read implements mem.Device.
func (c *Cache) Read(at sim.Time, addr uint64, n int) ([]byte, sim.Time, error) {
	if n <= 0 {
		return nil, 0, mem.CheckRange(c.errName, c.Size(), addr, n)
	}
	out := make([]byte, n)
	done, err := c.ReadInto(at, addr, out)
	if err != nil {
		return nil, 0, err
	}
	return out, done, nil
}

// ReadInto implements mem.ReaderInto. On resident lines it is the
// steady-state PE load path and performs zero allocations (pinned by
// TestCacheHitReadIntoAllocationFree in internal/mem).
func (c *Cache) ReadInto(at sim.Time, addr uint64, dst []byte) (sim.Time, error) {
	n := len(dst)
	if err := mem.CheckRange(c.errName, c.Size(), addr, n); err != nil {
		return 0, err
	}
	done := at
	for off := 0; off < n; {
		set, tag, lo := c.index(addr + uint64(off))
		take := c.cfg.LineBytes - lo
		if take > n-off {
			take = n - off
		}
		w, d, err := c.fill(at, set, tag)
		if err != nil {
			return 0, err
		}
		c.tick++
		c.sets[set][w].lastUse = c.tick
		copy(dst[off:], c.sets[set][w].data[lo:lo+take])
		done = sim.Max(done, d)
		off += take
	}
	return done, nil
}

// Write implements mem.Device (write-allocate, write-back).
func (c *Cache) Write(at sim.Time, addr uint64, data []byte) (sim.Time, error) {
	if err := mem.CheckRange(c.errName, c.Size(), addr, len(data)); err != nil {
		return 0, err
	}
	done := at
	for off := 0; off < len(data); {
		set, tag, lo := c.index(addr + uint64(off))
		take := c.cfg.LineBytes - lo
		if take > len(data)-off {
			take = len(data) - off
		}
		w, d, err := c.fill(at, set, tag)
		if err != nil {
			return 0, err
		}
		c.tick++
		ln := &c.sets[set][w]
		ln.lastUse = c.tick
		copy(ln.data[lo:], data[off:off+take])
		ln.dirty = true
		done = sim.Max(done, d)
		off += take
	}
	return done, nil
}

// Flush writes every dirty line back to the lower level and invalidates
// the cache; the accelerator does this when a kernel completes so results
// are persistent in PRAM.
func (c *Cache) Flush(at sim.Time) (done sim.Time, err error) {
	done = at
	for set := range c.sets {
		for w := range c.sets[set] {
			ln := &c.sets[set][w]
			if ln.valid && ln.dirty {
				c.stats.Writebacks++
				c.stats.BytesBelow += int64(c.cfg.LineBytes)
				d, err := c.lower.Write(done, c.lineBase(set, ln.tag), ln.data)
				if err != nil {
					return 0, err
				}
				done = d
			}
			ln.valid, ln.dirty = false, false
		}
	}
	return done, nil
}

// Drain implements mem.Drainer by delegating to the lower level.
func (c *Cache) Drain() sim.Time { return mem.DrainOf(c.lower, 0) }

var _ mem.Batcher = (*Cache)(nil)

// wouldHit reports whether [addr, addr+n) is resident within a single
// line right now, without touching LRU state or counters.
func (c *Cache) wouldHit(addr uint64, n int) bool {
	set, tag, off := c.index(addr)
	if off+n > c.cfg.LineBytes {
		return false
	}
	return c.lookup(set, tag) >= 0
}

// AccessPrivate reports whether a whole access of n bytes at addr —
// including one spanning multiple lines, which the run-folding fast
// paths refuse — would be serviced entirely by this cache and a lower
// private *Cache: every touched line is either resident here or a
// privateMiss. It is a pure probe (no stats, LRU or residency changes),
// used by the lane executor to classify a fold-stopping access as
// lane-private (executable inside a tail) versus shared (a head the
// coordinator must dispatch).
//
// Multi-line spans walk an epoch-stamped per-set scratch (O(1) per
// line) instead of rescanning earlier lines. The set rule is exactly as
// tight as eviction requires: any number of resident lines may share a
// set — hits never evict and never touch the lower level — but a miss
// sharing a set with any other touched line reports false, because its
// fill evicts (invalidating an expected hit) and the other line's LRU
// bump invalidates the victim the miss probe inspected. A non-Cache
// lower level still fails the miss arm, so a true result remains exact:
// the access cannot reach shared state.
func (c *Cache) AccessPrivate(addr uint64, n int) bool {
	if n <= 0 {
		return true
	}
	first := addr >> c.lineShift
	last := (addr + uint64(n) - 1) >> c.lineShift
	if first == last {
		set := int(first & c.setMask)
		tag := first >> c.setShift
		return c.lookup(set, tag) >= 0 || c.privateMiss(set, tag)
	}
	st := c.store
	st.probeEpoch++
	ep := st.probeEpoch
	for la := first; la <= last; la++ {
		set := int(la & c.setMask)
		tag := la >> c.setShift
		if c.lookup(set, tag) >= 0 {
			if st.probeMiss[set] == ep {
				return false // an earlier miss's fill could evict this hit
			}
			st.probeTouch[set] = ep
			continue
		}
		if st.probeTouch[set] == ep {
			return false // this miss's fill could evict an earlier line
		}
		st.probeTouch[set] = ep
		st.probeMiss[set] = ep
		if !c.privateMiss(set, tag) {
			return false
		}
	}
	return true
}

// RebindHists re-resolves the per-access hit/miss latency instruments
// against hs, replacing the set resolved from Config.Obs at
// construction (nil detaches them). The lane executor uses this to give
// each lane's caches a private shadow set while tails run concurrently;
// the shadows merge back into the main set afterwards.
func (c *Cache) RebindHists(hs *obs.HistogramSet) {
	if hs == nil {
		c.hHit, c.hMiss = nil, nil
		return
	}
	lvl := c.cfg.histLevel()
	c.hHit = hs.Get("cache." + lvl + ".hit_ps")
	c.hMiss = hs.Get("cache." + lvl + ".miss_ps")
}

// privateMiss reports whether a miss on (set, tag) would be serviced
// entirely by a lower private *Cache: both the fill and any dirty
// victim's writeback hit there. The probe is exact - hit-path execution
// in the lower cache never evicts, so residency observed here still
// holds when the miss runs - and conservatively false when the lower
// level is not a Cache (it may be a shared path whose call order across
// cores matters).
func (c *Cache) privateMiss(set int, tag uint64) bool {
	lower, ok := c.lower.(*Cache)
	if !ok {
		return false
	}
	if ln := &c.sets[set][c.victim(set)]; ln.valid && ln.dirty {
		if !lower.wouldHit(c.lineBase(set, ln.tag), c.cfg.LineBytes) {
			return false
		}
	}
	return lower.wouldHit(c.lineBase(set, tag), c.cfg.LineBytes)
}

// ReadRun implements mem.BatchReader: it services leading accesses of r
// while each one stays private - a single-line hit here, or a miss whose
// fill and writeback both hit in a lower private cache (privateMiss) -
// and stops before the first access that would reach a shared lower
// level, leaving it for the caller's scalar path. Stats, LRU state and
// timing advance exactly as the per-op loop would; the only shortcut is
// that hit accesses defer their copy-out, since dst only exposes the
// last completed access's bytes.
func (c *Cache) ReadRun(now sim.Time, r mem.Run, dst []byte) (mem.RunResult, error) {
	res := mem.RunResult{Now: now}
	addr := r.Addr
	var pend []byte // line bytes of the last hit, copy-out deferred
	// Same-line memo: runs whose stride is below the line size hit the
	// line they just resolved; skip the way scan. Hits never move lines,
	// so the memo stays exact until the next miss.
	memoW, memoSet, memoTag := -1, 0, uint64(0)
	for res.Done < r.Count {
		set, tag, lo := c.index(addr)
		if lo+r.Size > c.cfg.LineBytes {
			break
		}
		start := res.Now + r.Gap
		var done sim.Time
		w := memoW
		if w < 0 || set != memoSet || tag != memoTag {
			w = c.lookup(set, tag)
		}
		if w >= 0 {
			memoW, memoSet, memoTag = w, set, tag
			// Hit fast path: same stats/LRU/instrument effects as fill's
			// hit arm.
			c.stats.Hits++
			c.stats.HitPS += int64(c.cfg.HitLatency)
			if c.hHit != nil {
				c.hHit.Record(int64(c.cfg.HitLatency))
			}
			c.tick++
			ln := &c.sets[set][w]
			ln.lastUse = c.tick
			pend = ln.data[lo : lo+r.Size]
			done = start + c.cfg.HitLatency
		} else {
			if !c.privateMiss(set, tag) {
				break
			}
			memoW = -1 // the fill below may evict any way
			// A fill may overwrite the pending line's slab storage
			// (eviction reuses it); settle the deferred copy first.
			if pend != nil {
				copy(dst[:r.Size], pend)
				pend = nil
			}
			var err error
			done, err = c.ReadInto(start, addr, dst[:r.Size])
			if err != nil {
				return res, err
			}
		}
		if done < start {
			done = start
		}
		end := sim.Max(done, start+r.Issue)
		res.Stall += end - start
		res.Now = end
		res.Done++
		if r.OnOp != nil {
			r.OnOp(start, end)
		}
		addr = uint64(int64(addr) + r.Stride)
	}
	if pend != nil {
		copy(dst[:r.Size], pend)
	}
	return res, nil
}

// WriteRun implements mem.BatchWriter with the same private-prefix
// semantics as ReadRun (write-allocate shares the fill path); every
// store's bytes must land in its line, so nothing is deferred.
func (c *Cache) WriteRun(now sim.Time, r mem.Run, src []byte) (mem.RunResult, error) {
	res := mem.RunResult{Now: now}
	addr := r.Addr
	memoW, memoSet, memoTag := -1, 0, uint64(0) // same-line memo, as in ReadRun
	for res.Done < r.Count {
		set, tag, lo := c.index(addr)
		if lo+r.Size > c.cfg.LineBytes {
			break
		}
		start := res.Now + r.Gap
		var done sim.Time
		w := memoW
		if w < 0 || set != memoSet || tag != memoTag {
			w = c.lookup(set, tag)
		}
		if w >= 0 {
			memoW, memoSet, memoTag = w, set, tag
			c.stats.Hits++
			c.stats.HitPS += int64(c.cfg.HitLatency)
			if c.hHit != nil {
				c.hHit.Record(int64(c.cfg.HitLatency))
			}
			c.tick++
			ln := &c.sets[set][w]
			ln.lastUse = c.tick
			copy(ln.data[lo:lo+r.Size], src[:r.Size])
			ln.dirty = true
			done = start + c.cfg.HitLatency
		} else {
			if !c.privateMiss(set, tag) {
				break
			}
			memoW = -1 // the fill below may evict any way
			var err error
			done, err = c.Write(start, addr, src[:r.Size])
			if err != nil {
				return res, err
			}
		}
		if done < start {
			done = start
		}
		end := sim.Max(done, start+r.Issue)
		res.Stall += end - start
		res.Now = end
		res.Done++
		if r.OnOp != nil {
			r.OnOp(start, end)
		}
		addr = uint64(int64(addr) + r.Stride)
	}
	return res, nil
}
