package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

func flat() *mem.Flat {
	// 1 MiB lower memory, 100 ns latency, 1 GB/s.
	return mem.NewFlat("lower", 1<<20, sim.Nanoseconds(100), 1e9)
}

func small(t *testing.T, lower mem.Device) *Cache {
	t.Helper()
	cfg := Config{Name: "T", SizeBytes: 4096, LineBytes: 64, Ways: 2, HitLatency: sim.Nanoseconds(1)}
	c, err := New(cfg, lower)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := L1Data().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := L2().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "a", SizeBytes: 0, LineBytes: 64, Ways: 2},
		{Name: "b", SizeBytes: 4096, LineBytes: 48, Ways: 2},
		{Name: "c", SizeBytes: 4000, LineBytes: 64, Ways: 2},
		{Name: "d", SizeBytes: 64 * 2 * 3, LineBytes: 64, Ways: 2}, // 3 sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s accepted", cfg.Name)
		}
	}
	if _, err := New(L1Data(), nil); err == nil {
		t.Error("nil lower accepted")
	}
}

func TestReadMissThenHit(t *testing.T) {
	c := small(t, flat())
	_, d1, err := c.Read(0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d1 < sim.Nanoseconds(100) {
		t.Fatalf("miss completed in %v, faster than lower latency", d1)
	}
	start := d1
	_, d2, err := c.Read(start, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2 - start; got != sim.Nanoseconds(1) {
		t.Fatalf("hit latency = %v, want 1ns", got)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWriteBackOnEviction(t *testing.T) {
	lower := flat()
	c := small(t, lower)
	// Dirty a line, then evict it by touching two more lines in the same
	// set (2 ways). Set stride = 4096/2 = 2048... sets = 4096/(64*2)=32,
	// so addresses 0, 32*64=2048, 4096 share set 0.
	if _, err := c.Write(0, 0, bytes.Repeat([]byte{0xAA}, 64)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(0, 2048, 8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(0, 4096, 8); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", s.Writebacks)
	}
	// The lower level must now hold the dirty data.
	data, _, err := lower.Read(0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0xAA || data[63] != 0xAA {
		t.Fatalf("lower data = %x...", data[:4])
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := small(t, flat())
	// Fill both ways of set 0 (addrs 0 and 2048), touch 0 again so 2048
	// is LRU, then map in 4096: 2048 must be evicted, 0 must survive as
	// a hit.
	c.Read(0, 0, 4)
	c.Read(0, 2048, 4)
	c.Read(0, 0, 4)
	c.Read(0, 4096, 4)
	before := c.Stats().Hits
	c.Read(0, 0, 4)
	if c.Stats().Hits != before+1 {
		t.Fatal("LRU evicted the recently used line")
	}
}

func TestFlushWritesDirtyLines(t *testing.T) {
	lower := flat()
	c := small(t, lower)
	payload := bytes.Repeat([]byte{0x5C}, 64)
	if _, err := c.Write(0, 128, payload); err != nil {
		t.Fatal(err)
	}
	done, err := c.Flush(sim.Microseconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if done <= sim.Microseconds(1) {
		t.Fatal("flush of dirty data took no time")
	}
	data, _, _ := lower.Read(done, 128, 64)
	if !bytes.Equal(data, payload) {
		t.Fatal("flush did not reach lower level")
	}
	// After flush everything is invalid: next read misses.
	m := c.Stats().Misses
	c.Read(done, 128, 4)
	if c.Stats().Misses != m+1 {
		t.Fatal("read after flush did not miss")
	}
}

func TestPartialLineWriteMerges(t *testing.T) {
	lower := flat()
	if _, err := lower.Write(0, 0, bytes.Repeat([]byte{0x11}, 64)); err != nil {
		t.Fatal(err)
	}
	c := small(t, lower)
	if _, err := c.Write(0, 4, []byte{0xFF, 0xFE}); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Read(0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x11, 0x11, 0x11, 0x11, 0xFF, 0xFE, 0x11, 0x11}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x, want %x", got, want)
	}
}

func TestCrossLineAccess(t *testing.T) {
	c := small(t, flat())
	payload := bytes.Repeat([]byte{7}, 100) // spans two 64 B lines
	if _, err := c.Write(0, 60, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Read(0, 60, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-line round trip failed")
	}
}

func TestStackedCaches(t *testing.T) {
	lower := flat()
	l2 := MustNew(L2(), lower)
	l1 := MustNew(L1Data(), l2)
	payload := []byte("through two levels")
	if _, err := l1.Write(0, 777, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := l1.Read(0, 777, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stacked round trip failed")
	}
	if l2.Stats().Misses == 0 {
		t.Fatal("L2 never accessed")
	}
	// Flush both levels; the data must land in the flat memory.
	d, err := l1.Flush(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Flush(d); err != nil {
		t.Fatal(err)
	}
	data, _, _ := lower.Read(0, 777, len(payload))
	if !bytes.Equal(data, payload) {
		t.Fatal("flush chain did not reach memory")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("idle hit rate not 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	c := small(t, flat())
	if _, _, err := c.Read(0, c.Size(), 1); err == nil {
		t.Error("read past end accepted")
	}
	if _, err := c.Write(0, c.Size()-1, []byte{1, 2}); err == nil {
		t.Error("write past end accepted")
	}
}

// Property: cache+lower always equals a shadow buffer under random
// read/write/flush sequences.
func TestCacheCoherenceProperty(t *testing.T) {
	lower := flat()
	c := small(t, lower)
	shadow := make([]byte, 1<<16)
	now := sim.Time(0)
	f := func(off uint16, n uint8, fill byte, action uint8) bool {
		addr := uint64(off)
		size := int(n)%128 + 1
		if addr+uint64(size) > uint64(len(shadow)) {
			size = len(shadow) - int(addr)
		}
		switch action % 5 {
		case 0, 1: // write
			data := bytes.Repeat([]byte{fill}, size)
			done, err := c.Write(now, addr, data)
			if err != nil {
				return false
			}
			copy(shadow[addr:], data)
			now = done
		case 2: // flush
			done, err := c.Flush(now)
			if err != nil {
				return false
			}
			now = done
		default: // read
			got, done, err := c.Read(now, addr, size)
			if err != nil {
				return false
			}
			now = done
			if !bytes.Equal(got, shadow[addr:addr+uint64(size)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
