package cache

import (
	"testing"
	"testing/quick"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

// l2t is a private mid-level for the AccessPrivate probes: big enough
// that warming it never evicts what the table below expects resident.
func l2t(t *testing.T, lower mem.Device) *Cache {
	t.Helper()
	cfg := Config{Name: "L2T", SizeBytes: 1 << 16, LineBytes: 64, Ways: 4, HitLatency: sim.Nanoseconds(4)}
	c, err := New(cfg, lower)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAccessPrivateSpans pins the classifier on the spanning-access edge
// cases around the per-set occupancy probe. The small test geometry has
// 32 sets of 2 ways x 64 B lines, so a 2112 B access (33 lines) wraps
// the set space: lines 0 and 32 alias in set 0. The probe must allow any
// number of resident (hit) lines to share a set — hits never evict and
// never touch the lower level — while rejecting any miss that shares a
// set with another touched line, in either order, because the miss's
// fill evicts. Misses are private only above a lower *Cache holding the
// fill line (and any dirty victim); over a non-Cache lower every miss
// is shared.
func TestAccessPrivateSpans(t *testing.T) {
	const stride = 2048 // set 0 aliases: line 0, line 32
	cases := []struct {
		name string
		prep func(t *testing.T) *Cache
		addr uint64
		n    int
		want bool
	}{
		{"zero length", func(t *testing.T) *Cache {
			return small(t, flat())
		}, 123, 0, true},
		{"single-line hit", func(t *testing.T) *Cache {
			c := small(t, flat())
			c.Read(0, 0, 8)
			return c
		}, 0, 64, true},
		{"single-line miss over shared lower", func(t *testing.T) *Cache {
			return small(t, flat())
		}, 64, 8, false},
		{"single-line private miss", func(t *testing.T) *Cache {
			l2 := l2t(t, flat())
			l2.Read(0, 64, 1)
			return small(t, l2)
		}, 64, 8, true},
		{"two-line span, both hits", func(t *testing.T) *Cache {
			c := small(t, flat())
			c.Read(0, 0, 128)
			return c
		}, 0, 128, true},
		{"two-line span, second line miss over shared lower", func(t *testing.T) *Cache {
			c := small(t, flat())
			c.Read(0, 0, 64)
			return c
		}, 0, 128, false},
		// The loosened rule: a set-wrapping span whose aliasing lines are
		// all resident is private (the blanket same-set rejection this
		// probe replaced called it shared).
		{"set-wrapping span, all hits incl. two in set 0", func(t *testing.T) *Cache {
			c := small(t, flat())
			c.Read(0, 0, stride+64)
			return c
		}, 0, stride + 64, true},
		{"miss after hit in the same set", func(t *testing.T) *Cache {
			l2 := l2t(t, flat())
			l2.Read(0, 0, stride+64)
			l1 := small(t, l2)
			l1.Read(0, 0, 1) // line 0 resident in L1; line 32 only in L2
			return l1
		}, 0, stride + 64, false},
		{"hit after miss in the same set", func(t *testing.T) *Cache {
			l2 := l2t(t, flat())
			l2.Read(0, 0, stride+64)
			l1 := small(t, l2)
			l1.Read(0, stride, 1) // line 32 resident in L1; line 0 only in L2
			return l1
		}, 0, stride + 64, false},
		{"two misses in the same set", func(t *testing.T) *Cache {
			l2 := l2t(t, flat())
			l2.Read(0, 0, stride+64)
			return small(t, l2)
		}, 0, stride + 64, false},
		{"full set-space span of private misses", func(t *testing.T) *Cache {
			l2 := l2t(t, flat())
			l2.Read(0, 0, stride)
			return small(t, l2)
		}, 0, stride, true},
		{"span of misses over shared lower", func(t *testing.T) *Cache {
			return small(t, flat())
		}, 0, stride, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.prep(t)
			before := c.Stats()
			if got := c.AccessPrivate(tc.addr, tc.n); got != tc.want {
				t.Fatalf("AccessPrivate(%d, %d) = %v, want %v", tc.addr, tc.n, got, tc.want)
			}
			// Probe twice: the epoch scratch must not leak state between
			// probes.
			if got := c.AccessPrivate(tc.addr, tc.n); got != tc.want {
				t.Fatalf("second AccessPrivate(%d, %d) != first", tc.addr, tc.n)
			}
			if c.Stats() != before {
				t.Fatalf("probe moved stats: %+v -> %+v", before, c.Stats())
			}
		})
	}
}

// sharedProbe wraps the shared lowest level and counts every operation
// that reaches it. It deliberately implements only mem.Device — no
// ReaderInto, no Batcher — so no fast path can slip an access past the
// counter.
type sharedProbe struct {
	inner *mem.Flat
	ops   int
}

func (s *sharedProbe) Read(at sim.Time, addr uint64, n int) ([]byte, sim.Time, error) {
	s.ops++
	return s.inner.Read(at, addr, n)
}

func (s *sharedProbe) Write(at sim.Time, addr uint64, data []byte) (sim.Time, error) {
	s.ops++
	return s.inner.Write(at, addr, data)
}

func (s *sharedProbe) Size() uint64 { return s.inner.Size() }

// TestAccessPrivateOracle is the classifier's soundness oracle: under
// random warming, whenever AccessPrivate says true for an access, the
// probe itself must be pure (no stats movement in either level) and
// executing the access must leave the shared level untouched — zero
// operations reach it, so its bytes, traffic counters and timing state
// are identical to not having executed the access at all.
func TestAccessPrivateOracle(t *testing.T) {
	f := func(warm [12]uint16, ops uint16, off uint16, n uint8, wr bool) bool {
		shared := &sharedProbe{inner: flat()}
		l2 := l2t(t, shared)
		l1 := small(t, l2)
		now := sim.Time(0)
		for i, v := range warm {
			addr := uint64(v) % (1<<14 - 256)
			size := int(v)%200 + 1
			var err error
			if ops&(1<<i) != 0 {
				now, err = l1.Write(now, addr, make([]byte, size))
			} else {
				_, now, err = l1.Read(now, addr, size)
			}
			if err != nil {
				return false
			}
		}

		addr := uint64(off) % (1<<14 - 256)
		size := int(n) + 1
		l1b, l2b := l1.Stats(), l2.Stats()
		opsBefore := shared.ops
		private := l1.AccessPrivate(addr, size)
		if l1.Stats() != l1b || l2.Stats() != l2b || shared.ops != opsBefore {
			return false // the probe itself must be pure
		}
		if !private {
			return true // conservative answers are always allowed
		}
		r1, w1, bi1, bo1 := shared.inner.Traffic()
		var err error
		if wr {
			_, err = l1.Write(now, addr, make([]byte, size))
		} else {
			_, _, err = l1.Read(now, addr, size)
		}
		if err != nil {
			return false
		}
		r2, w2, bi2, bo2 := shared.inner.Traffic()
		return shared.ops == opsBefore && r1 == r2 && w1 == w2 && bi1 == bi2 && bo1 == bo2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
