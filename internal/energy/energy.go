// Package energy implements the power and energy accounting behind the
// paper's efficiency results (Figures 1, 17, 20, 21): per-operation
// energies for the memories and media, busy-time power for processors and
// links, and a time-series recorder for the power/energy plots.
//
// Absolute joules depend on constants no simulation can fully pin down;
// what the experiments rely on is their relative order of magnitude
// (host stack power >> accelerator power, flash page ops >> PRAM row
// ops), which these defaults respect and document.
package energy

import (
	"fmt"

	"dramless/internal/sim"
	"dramless/internal/stats"
)

// Params holds the energy model constants.
type Params struct {
	// Processing elements (TMS320C6678-class: ~10 W for 8 cores).
	PEActiveWatts float64 // one PE executing
	PEIdleWatts   float64 // one PE clock-gated / sleeping (PSC)

	// Caches and crossbar, charged per byte moved.
	CachePerByteJ float64

	// PRAM device energies per operation.
	PRAMActivateJ   float64 // sense one 256-bit row into an RDB
	PRAMBurstJ      float64 // one 32 B burst on the DQ bus
	PRAMProgramJ    float64 // SET-dominated fresh/erased program of a row
	PRAMOverwriteJ  float64 // RESET+SET overwrite of a row
	PRAMEraseJ      float64 // 60 ms bulk erase
	PRAMIdleWattsGB float64 // negligible standby (non-volatile): ~0

	// Flash media energies per operation.
	FlashReadPageJ    float64
	FlashProgramPageJ float64
	FlashEraseBlockJ  float64

	// DRAM (host DRAM and the 1 GB internal buffers).
	DRAMPerByteJ      float64
	DRAMBackgroundWGB float64 // refresh + standby watts per GB

	// Interconnect.
	PCIePerByteJ float64

	// Host CPU running storage-stack software.
	HostActiveWatts float64

	// Embedded firmware cores (3x 500 MHz ARM).
	FirmwareWatts float64
}

// Default returns the documented model constants.
func Default() Params {
	return Params{
		PEActiveWatts: 1.25,
		PEIdleWatts:   0.15,

		CachePerByteJ: 30e-12,

		PRAMActivateJ:   4e-9,  // ~15 pJ/bit sensing
		PRAMBurstJ:      1e-9,  // DQ toggling per 32 B
		PRAMProgramJ:    15e-9, // ~50 pJ/bit SET train
		PRAMOverwriteJ:  28e-9, // RESET+SET
		PRAMEraseJ:      4e-6,  // long bulk pulse
		PRAMIdleWattsGB: 0,

		FlashReadPageJ:    10e-6,
		FlashProgramPageJ: 60e-6,
		FlashEraseBlockJ:  1.2e-3,

		DRAMPerByteJ:      120e-12,
		DRAMBackgroundWGB: 0.35,

		PCIePerByteJ: 40e-12,

		HostActiveWatts: 35,
		FirmwareWatts:   1.2,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.PEActiveWatts <= 0 || p.PEIdleWatts < 0 || p.HostActiveWatts <= 0 {
		return fmt.Errorf("energy: processor powers must be positive: %+v", p)
	}
	if p.PRAMProgramJ <= 0 || p.FlashProgramPageJ <= 0 {
		return fmt.Errorf("energy: media energies must be positive")
	}
	return nil
}

// Component names used in breakdowns, matching the Figure 17 stack.
const (
	CompHost     = "host-sw"     // host CPU cycles in the storage stack
	CompHostDRAM = "host-dram"   // host DRAM copies
	CompPCIe     = "pcie"        // link energy
	CompSSD      = "ssd"         // external SSD media + firmware
	CompCore     = "accel-core"  // PE active + idle energy
	CompCache    = "cache-noc"   // on-chip data movement
	CompDRAM     = "accel-dram"  // internal DRAM buffer (1 GB)
	CompPRAM     = "pram"        // PRAM subsystem
	CompFlash    = "accel-flash" // embedded flash of Integrated-*
	CompFirmware = "firmware"    // embedded firmware cores
)

// Account accumulates energy by component and optionally samples power
// over time for the Figure 20/21 plots.
type Account struct {
	params Params
	byComp *stats.Breakdown
	series *stats.Series // joules per bucket; nil unless enabled
}

// NewAccount returns an account using params.
func NewAccount(params Params) *Account {
	return &Account{params: params, byComp: stats.NewBreakdown()}
}

// EnableSeries turns on power sampling with the given bucket interval.
func (a *Account) EnableSeries(interval sim.Duration) {
	a.series = stats.NewSeries(interval)
}

// Params returns the model constants.
func (a *Account) Params() Params { return a.params }

// Add charges joules to a component with no time attribution.
func (a *Account) Add(component string, joules float64) {
	a.byComp.Add(component, joules)
}

// AddSpan charges joules to a component spread uniformly over [t0, t1),
// feeding both the breakdown and the power series.
func (a *Account) AddSpan(component string, joules float64, t0, t1 sim.Time) {
	a.byComp.Add(component, joules)
	if a.series != nil {
		if t1 <= t0 {
			a.series.Accumulate(t0, joules)
		} else {
			a.series.Spread(t0, t1, joules)
		}
	}
}

// AddPower charges power watts over [t0, t1).
func (a *Account) AddPower(component string, watts float64, t0, t1 sim.Time) {
	if t1 <= t0 {
		return
	}
	a.AddSpan(component, watts*(t1-t0).Seconds(), t0, t1)
}

// Breakdown returns the per-component totals.
func (a *Account) Breakdown() *stats.Breakdown { return a.byComp }

// Total returns total joules.
func (a *Account) Total() float64 { return a.byComp.Total() }

// PowerSeries returns the sampled series (watts per bucket) or nil.
func (a *Account) PowerSeries() []float64 {
	if a.series == nil {
		return nil
	}
	return a.series.Rate()
}

// EnergySeries returns cumulative joules per bucket or nil.
func (a *Account) EnergySeries() []float64 {
	if a.series == nil {
		return nil
	}
	return a.series.Cumulative()
}

// SeriesInterval returns the sampling interval (0 when disabled).
func (a *Account) SeriesInterval() sim.Duration {
	if a.series == nil {
		return 0
	}
	return a.series.Interval
}
