package energy

import (
	"math"
	"testing"

	"dramless/internal/sim"
)

func TestDefaultsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	p := Default()
	// Order-of-magnitude invariants the experiments rely on.
	if p.FlashProgramPageJ <= p.PRAMProgramJ {
		t.Error("flash page program should cost far more than a PRAM row program")
	}
	if p.HostActiveWatts <= 8*p.PEActiveWatts {
		t.Error("host CPU power should exceed the whole accelerator's core power")
	}
	if p.PRAMOverwriteJ <= p.PRAMProgramJ {
		t.Error("overwrite (RESET+SET) must cost more than a fresh program")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := Default()
	p.PEActiveWatts = 0
	if err := p.Validate(); err == nil {
		t.Error("zero PE power accepted")
	}
	p = Default()
	p.PRAMProgramJ = 0
	if err := p.Validate(); err == nil {
		t.Error("zero program energy accepted")
	}
}

func TestAccountBreakdown(t *testing.T) {
	a := NewAccount(Default())
	a.Add(CompPRAM, 2)
	a.Add(CompCore, 3)
	a.Add(CompPRAM, 1)
	if got := a.Breakdown().Get(CompPRAM); got != 3 {
		t.Fatalf("pram = %v", got)
	}
	if a.Total() != 6 {
		t.Fatalf("total = %v", a.Total())
	}
}

func TestAddPower(t *testing.T) {
	a := NewAccount(Default())
	a.AddPower(CompHost, 35, 0, sim.Second)
	if got := a.Total(); math.Abs(got-35) > 1e-9 {
		t.Fatalf("1s at 35W = %v J", got)
	}
	// Zero-length span charges nothing.
	a.AddPower(CompHost, 35, 5, 5)
	if got := a.Total(); math.Abs(got-35) > 1e-9 {
		t.Fatalf("zero span charged energy: %v", got)
	}
}

func TestPowerSeries(t *testing.T) {
	a := NewAccount(Default())
	if a.PowerSeries() != nil || a.EnergySeries() != nil {
		t.Fatal("series present before enabling")
	}
	a.EnableSeries(sim.Microsecond)
	a.AddPower(CompCore, 2, 0, 2*sim.Microsecond) // 2 W for 2 us
	ps := a.PowerSeries()
	if len(ps) != 2 {
		t.Fatalf("series length = %d", len(ps))
	}
	if math.Abs(ps[0]-2) > 1e-6 || math.Abs(ps[1]-2) > 1e-6 {
		t.Fatalf("power = %v, want [2 2]", ps)
	}
	es := a.EnergySeries()
	if math.Abs(es[1]-4e-6) > 1e-12 {
		t.Fatalf("cumulative energy = %v, want 4uJ", es[1])
	}
	if a.SeriesInterval() != sim.Microsecond {
		t.Fatal("interval wrong")
	}
}

func TestAddSpanInstantaneous(t *testing.T) {
	a := NewAccount(Default())
	a.EnableSeries(sim.Microsecond)
	a.AddSpan(CompPRAM, 5e-9, 3*sim.Microsecond, 3*sim.Microsecond)
	if got := a.Breakdown().Get(CompPRAM); got != 5e-9 {
		t.Fatalf("instantaneous span lost energy: %v", got)
	}
}
