package ssd

import (
	"dramless/internal/mem"
	"dramless/internal/sim"
)

var _ mem.Batcher = (*SSD)(nil)

// ReadRun implements mem.BatchReader. The device completes the whole
// run; each access still enters through the firmware/buffer state
// machine (buffer hits, fetches and evictions are per-page decisions),
// so execution is per access with the run's timing recurrence applied
// around it.
func (s *SSD) ReadRun(now sim.Time, r mem.Run, dst []byte) (mem.RunResult, error) {
	return mem.ReadRunLoop(s, now, r, dst)
}

// WriteRun implements mem.BatchWriter (see ReadRun).
func (s *SSD) WriteRun(now sim.Time, r mem.Run, src []byte) (mem.RunResult, error) {
	return mem.WriteRunLoop(s, now, r, src)
}

var _ mem.Batcher = (*FirmwareManaged)(nil)

// ReadRun implements mem.BatchReader for the firmware-dispatched
// subsystem: every request pays its firmware entry, so runs execute per
// access.
func (f *FirmwareManaged) ReadRun(now sim.Time, r mem.Run, dst []byte) (mem.RunResult, error) {
	return mem.ReadRunLoop(f, now, r, dst)
}

// WriteRun implements mem.BatchWriter (see ReadRun).
func (f *FirmwareManaged) WriteRun(now sim.Time, r mem.Run, src []byte) (mem.RunResult, error) {
	return mem.WriteRunLoop(f, now, r, src)
}
