package ssd

import (
	"fmt"

	"dramless/internal/flash"
	"dramless/internal/sim"
)

// ftl is a page-mapped flash translation layer with greedy garbage
// collection. Logical pages map to physical pages; writes always go to a
// fresh physical page and invalidate the old mapping; when free pages run
// low, the block with the fewest valid pages is compacted and erased.
type ftl struct {
	arr *flash.Array

	l2p       map[uint64]uint64 // logical -> physical page
	p2l       map[uint64]uint64 // physical -> logical (for GC relocation)
	freeHead  uint64            // next never-used physical page
	freeQueue []uint64          // recycled physical pages
	validIn   map[uint64]int    // block -> live page count
	writtenIn map[uint64]int    // block -> pages programmed since last erase
	written   map[uint64]bool   // physical pages holding stale or live data

	logicalPages uint64
	gcRuns       int64
	gcMoves      int64

	// scratch is the GC relocation page buffer (ProgramPage copies it
	// into the array store, so one buffer serves every move).
	scratch []byte
}

func newFTL(arr *flash.Array, logicalPages uint64) (*ftl, error) {
	if logicalPages >= arr.Pages() {
		return nil, fmt.Errorf("ssd: %d logical pages need over-provisioning beyond %d physical",
			logicalPages, arr.Pages())
	}
	return &ftl{
		arr:          arr,
		l2p:          map[uint64]uint64{},
		p2l:          map[uint64]uint64{},
		validIn:      map[uint64]int{},
		writtenIn:    map[uint64]int{},
		written:      map[uint64]bool{},
		logicalPages: logicalPages,
	}, nil
}

func (f *ftl) blockOf(ppage uint64) uint64 {
	return ppage / uint64(f.arr.Profile().PagesPerBlock)
}

// freePages reports how many physical pages are still allocatable.
func (f *ftl) freePages() uint64 {
	return f.arr.Pages() - f.freeHead + uint64(len(f.freeQueue))
}

// allocate returns a fresh physical page, running GC when needed.
func (f *ftl) allocate(at sim.Time) (uint64, sim.Time, error) {
	if f.freePages() <= uint64(f.arr.Profile().PagesPerBlock) {
		done, err := f.collect(at)
		if err != nil {
			return 0, 0, err
		}
		at = done
	}
	if len(f.freeQueue) > 0 {
		p := f.freeQueue[0]
		f.freeQueue = f.freeQueue[1:]
		return p, at, nil
	}
	if f.freeHead >= f.arr.Pages() {
		return 0, 0, fmt.Errorf("ssd: flash array exhausted (%d pages)", f.arr.Pages())
	}
	p := f.freeHead
	f.freeHead++
	return p, at, nil
}

// collect compacts the block with the fewest valid pages.
func (f *ftl) collect(at sim.Time) (sim.Time, error) {
	ppb := uint64(f.arr.Profile().PagesPerBlock)
	bestBlock, bestValid := uint64(0), int(ppb)+1
	limit := f.freeHead / ppb
	for b := uint64(0); b < limit; b++ {
		// Only fully-written blocks are GC candidates: a block with
		// unprogrammed or recycled pages still has allocatable space,
		// and erasing it would hand the same page out twice.
		if f.writtenIn[b] != int(ppb) {
			continue
		}
		if v := f.validIn[b]; v < bestValid {
			bestBlock, bestValid = b, v
		}
	}
	if bestValid > int(ppb) {
		return 0, fmt.Errorf("ssd: no garbage-collectable block")
	}
	f.gcRuns++
	done := at
	// Relocate live pages.
	for p := bestBlock * ppb; p < (bestBlock+1)*ppb; p++ {
		lpn, live := f.p2l[p]
		if !live {
			continue
		}
		if f.scratch == nil {
			f.scratch = make([]byte, f.arr.Profile().PageBytes)
		}
		rDone, err := f.arr.ReadPageInto(done, p, f.scratch)
		if err != nil {
			return 0, err
		}
		// Relocation target must not trigger recursive GC: use freeQueue
		// or freeHead directly.
		var np uint64
		if len(f.freeQueue) > 0 {
			np = f.freeQueue[0]
			f.freeQueue = f.freeQueue[1:]
		} else if f.freeHead < f.arr.Pages() {
			np = f.freeHead
			f.freeHead++
		} else {
			return 0, fmt.Errorf("ssd: GC has nowhere to relocate")
		}
		wDone, err := f.arr.ProgramPage(rDone, np, f.scratch)
		if err != nil {
			return 0, err
		}
		f.retarget(lpn, p, np)
		f.gcMoves++
		done = wDone
	}
	eDone, err := f.arr.EraseBlock(done, bestBlock*ppb)
	if err != nil {
		return 0, err
	}
	for p := bestBlock * ppb; p < (bestBlock+1)*ppb; p++ {
		delete(f.p2l, p)
		delete(f.written, p)
		f.freeQueue = append(f.freeQueue, p)
	}
	f.validIn[bestBlock] = 0
	f.writtenIn[bestBlock] = 0
	return eDone, nil
}

func (f *ftl) retarget(lpn, oldP, newP uint64) {
	f.l2p[lpn] = newP
	delete(f.p2l, oldP)
	f.p2l[newP] = lpn
	f.validIn[f.blockOf(oldP)]--
	f.validIn[f.blockOf(newP)]++
	f.writtenIn[f.blockOf(newP)]++
	f.written[newP] = true
}

// read returns the physical page holding lpn, or ok=false when the page
// was never written.
func (f *ftl) read(lpn uint64) (ppage uint64, ok bool) {
	p, ok := f.l2p[lpn]
	return p, ok
}

// write programs data as the new version of lpn.
func (f *ftl) write(at sim.Time, lpn uint64, data []byte) (sim.Time, error) {
	if lpn >= f.logicalPages {
		return 0, fmt.Errorf("ssd: logical page %d outside %d", lpn, f.logicalPages)
	}
	np, ready, err := f.allocate(at)
	if err != nil {
		return 0, err
	}
	done, err := f.arr.ProgramPage(ready, np, data)
	if err != nil {
		return 0, err
	}
	if old, ok := f.l2p[lpn]; ok {
		delete(f.p2l, old)
		f.validIn[f.blockOf(old)]--
	}
	f.l2p[lpn] = np
	f.p2l[np] = lpn
	f.validIn[f.blockOf(np)]++
	f.writtenIn[f.blockOf(np)]++
	f.written[np] = true
	return done, nil
}
