package ssd

import (
	"fmt"

	"dramless/internal/flash"
	"dramless/internal/mem"
	"dramless/internal/obs"
	"dramless/internal/sim"
)

// Config describes one SSD build.
type Config struct {
	// Media is the storage medium (flash.SLC/MLC/TLC or flash.PRAMMedia).
	Media flash.Profile
	// CapacityBytes is the logical capacity.
	CapacityBytes uint64
	// OverProvision is the extra physical space fraction for the FTL.
	OverProvision float64
	// BufferBytes is the internal DRAM buffer (1 GB in every Table I
	// configuration that has one).
	BufferBytes uint64
	// Firmware is the embedded controller.
	Firmware FirmwareConfig
	// Integrated selects the access model. False (NVMe-attached SSD):
	// every request traverses the firmware. True (the paper's
	// Integrated-SLC/MLC/TLC and PAGE-buffer accelerators): the PEs
	// load/store the internal DRAM buffer directly and firmware is paid
	// only when a page must be staged in or flushed out.
	Integrated bool
	// DRAMBandwidth is the internal buffer's sustained bandwidth
	// (bytes/second) seen by direct accesses in integrated mode.
	DRAMBandwidth float64
	// Obs attaches the observability layer: per-operation latency
	// histograms. Nil disables observation at zero cost.
	Obs *obs.Observer
}

// DefaultConfig returns a Table I SSD: the given media, 1 GB internal
// DRAM, 12.5% over-provisioning, 3x500 MHz firmware.
func DefaultConfig(media flash.Profile, capacity uint64) Config {
	return Config{
		Media:         media,
		CapacityBytes: capacity,
		OverProvision: 0.125,
		BufferBytes:   1 << 30,
		Firmware:      DefaultFirmware(),
		DRAMBandwidth: 12.8e9,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Media.Validate(); err != nil {
		return err
	}
	if err := c.Firmware.Validate(); err != nil {
		return err
	}
	if c.CapacityBytes == 0 || c.CapacityBytes%uint64(c.Media.PageBytes) != 0 {
		return fmt.Errorf("ssd: capacity %d must be a positive page multiple", c.CapacityBytes)
	}
	if c.OverProvision <= 0 {
		return fmt.Errorf("ssd: over-provisioning must be positive")
	}
	if c.BufferBytes < uint64(c.Media.PageBytes) {
		return fmt.Errorf("ssd: buffer smaller than one page")
	}
	return nil
}

// Stats counts SSD-level activity.
type Stats struct {
	Reads        int64
	Writes       int64
	BufferHits   int64
	BufferMisses int64
	Fills        int64 // page fetches into the buffer (read misses + RMW)
	Flushes      int64 // dirty page programs
	GCRuns       int64
	GCMoves      int64

	// Service-time accounts in picoseconds of simulated time,
	// accumulated always-on at the same sites as the latency histograms
	// (blame attribution, DESIGN.md §15): request-level read/write
	// service time and FTL page-program time (evictions and flushes).
	ReadPS    int64
	WritePS   int64
	ProgramPS int64
}

// bufEntry is one cached page.
type bufEntry struct {
	data  []byte
	dirty bool
	tick  int64
}

// SSD is a page-granule storage device: a flash (or PRAM) array behind a
// page-mapped FTL, an internal DRAM buffer and embedded firmware. It
// implements mem.Device; sub-page accesses cost whole-page internal
// operations, which is the behaviour the paper's integrated accelerators
// suffer from ("still need to access the flash in a page granularity").
type SSD struct {
	cfg Config
	arr *flash.Array
	ftl *ftl
	fw  *Firmware

	buf      map[uint64]*bufEntry
	bufCap   int
	tick     int64
	dramPipe *sim.Pipe
	dramBusy sim.Duration // DRAM buffer occupancy (energy accounting)

	// Buffer entries and their page data come bufSlabPages at a time from
	// slabs and are recycled on eviction, so the buffer churns between the
	// same frames instead of allocating one page per miss.
	freeEnts []*bufEntry
	entSlab  []bufEntry
	dataSlab []byte

	// Latency instruments, resolved once at construction; nil when
	// observation is off (the nil Histogram no-ops).
	hRead    *obs.Histogram
	hWrite   *obs.Histogram
	hProgram *obs.Histogram

	stats Stats
}

// bufSlabPages is how many buffer entries each slab allocation carries.
const bufSlabPages = 64

var (
	_ mem.Device     = (*SSD)(nil)
	_ mem.ReaderInto = (*SSD)(nil)
)

// New builds an SSD from cfg.
func New(cfg Config) (*SSD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	logical := cfg.CapacityBytes / uint64(cfg.Media.PageBytes)
	ppb := uint64(cfg.Media.PagesPerBlock)
	physical := uint64(float64(logical)*(1+cfg.OverProvision)) + 2*ppb
	physical = (physical + ppb - 1) / ppb * ppb // whole blocks
	arr, err := flash.NewArray(cfg.Media, physical)
	if err != nil {
		return nil, err
	}
	f, err := newFTL(arr, logical)
	if err != nil {
		return nil, err
	}
	fw, err := NewFirmware(cfg.Firmware)
	if err != nil {
		return nil, err
	}
	bw := cfg.DRAMBandwidth
	if bw <= 0 {
		bw = 12.8e9
	}
	s := &SSD{
		cfg:      cfg,
		arr:      arr,
		ftl:      f,
		fw:       fw,
		buf:      map[uint64]*bufEntry{},
		bufCap:   int(cfg.BufferBytes / uint64(cfg.Media.PageBytes)),
		dramPipe: sim.NewPipe("ssd.dram", bw, 50*sim.Nanosecond),
	}
	if hs := cfg.Obs.Histograms(); hs != nil {
		s.hRead = hs.Get(obs.HistSSDRead)
		s.hWrite = hs.Get(obs.HistSSDWrite)
		s.hProgram = hs.Get(obs.HistSSDFTLProgram)
	}
	return s, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *SSD {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Size implements mem.Device.
func (s *SSD) Size() uint64 { return s.cfg.CapacityBytes }

// Stats returns a snapshot including FTL GC activity.
func (s *SSD) Stats() Stats {
	out := s.stats
	out.GCRuns = s.ftl.gcRuns
	out.GCMoves = s.ftl.gcMoves
	return out
}

// ArrayStats exposes the medium counters for the energy model.
func (s *SSD) ArrayStats() flash.Stats { return s.arr.Stats() }

// CountersInto writes the SSD's activity into the registry under prefix
// (e.g. "ssd.ext."): request and buffer counters plus the FTL's
// firmware-request and garbage-collection work.
func (s *SSD) CountersInto(c *obs.Counters, prefix string) {
	if c == nil {
		return
	}
	st := s.Stats()
	c.Add(prefix+"reads", st.Reads)
	c.Add(prefix+"writes", st.Writes)
	c.Add(prefix+"buffer_hits", st.BufferHits)
	c.Add(prefix+"buffer_misses", st.BufferMisses)
	c.Add(prefix+"fills", st.Fills)
	c.Add(prefix+"flushes", st.Flushes)
	c.Add(prefix+"ftl.gc_runs", st.GCRuns)
	c.Add(prefix+"ftl.gc_moves", st.GCMoves)
	c.Add(prefix+"fw_requests", s.fw.Requests())
	c.Add(prefix+"fw_busy_ps", int64(s.fw.BusyTime()))
	c.Add(prefix+"dram_bytes", s.DRAMBytes())
}

// FirmwareBusy returns cumulative firmware-core time (energy model).
func (s *SSD) FirmwareBusy() sim.Duration { return s.fw.BusyTime() }

// DRAMBusy returns cumulative internal-DRAM occupancy (energy model).
func (s *SSD) DRAMBusy() sim.Duration { return s.dramBusy }

// DRAMBytes returns payload bytes moved through the internal DRAM.
func (s *SSD) DRAMBytes() int64 { return s.dramPipe.BytesMoved() }

// Config returns the build configuration.
func (s *SSD) Config() Config { return s.cfg }

// dramAccess charges one buffer access of n bytes through the internal
// DRAM's bandwidth pipe and returns its completion.
func (s *SSD) dramAccess(at sim.Time, n int) sim.Time {
	s.dramBusy += s.dramPipe.TransferTime(int64(n))
	return s.dramPipe.Transfer(at, int64(n))
}

// enter charges the per-request cost: the firmware path for an
// NVMe-attached device, nothing for an integrated one (PEs reach the
// buffer directly; firmware runs only on page staging).
func (s *SSD) enter(at sim.Time) sim.Time {
	if s.cfg.Integrated {
		return at
	}
	return s.fw.Process(at)
}

// stage charges the firmware cost of a page staging decision in
// integrated mode (already covered by enter() otherwise).
func (s *SSD) stage(at sim.Time) sim.Time {
	if s.cfg.Integrated {
		return s.fw.Process(at)
	}
	return at
}

// newEntry returns a recycled or slab-carved buffer entry. e.data holds
// arbitrary stale bytes: callers either fill the whole page or zero it.
func (s *SSD) newEntry() *bufEntry {
	if n := len(s.freeEnts); n > 0 {
		e := s.freeEnts[n-1]
		s.freeEnts = s.freeEnts[:n-1]
		e.dirty = false
		return e
	}
	pb := s.cfg.Media.PageBytes
	if e := pooledEntry(pb); e != nil {
		e.dirty = false
		return e
	}
	if len(s.entSlab) == 0 {
		s.entSlab = make([]bufEntry, bufSlabPages)
		s.dataSlab = make([]byte, bufSlabPages*pb)
	}
	e := &s.entSlab[0]
	s.entSlab = s.entSlab[1:]
	e.data = s.dataSlab[:pb:pb]
	s.dataSlab = s.dataSlab[pb:]
	return e
}

func (s *SSD) recycle(e *bufEntry) { s.freeEnts = append(s.freeEnts, e) }

// evictIfFull makes room in the buffer, programming a dirty victim.
func (s *SSD) evictIfFull(at sim.Time) (sim.Time, error) {
	if len(s.buf) < s.bufCap {
		return at, nil
	}
	var victim uint64
	oldest := int64(1<<62 - 1)
	for lpn, e := range s.buf {
		if e.tick < oldest {
			victim, oldest = lpn, e.tick
		}
	}
	e := s.buf[victim]
	delete(s.buf, victim)
	if e.dirty {
		s.stats.Flushes++
		done, err := s.ftl.write(at, victim, e.data)
		if err == nil {
			s.stats.ProgramPS += int64(done - at)
			s.hProgram.Record(int64(done - at))
		}
		s.recycle(e) // ftl.write copied the page into the array store
		return done, err
	}
	s.recycle(e)
	return at, nil
}

// fetch brings lpn into the buffer (RMW fill on misses) and returns its
// entry plus the time the caller's accessBytes are through the DRAM.
func (s *SSD) fetch(at sim.Time, lpn uint64, accessBytes int) (*bufEntry, sim.Time, error) {
	if e, ok := s.buf[lpn]; ok {
		s.stats.BufferHits++
		s.tick++
		e.tick = s.tick
		return e, s.dramAccess(at, accessBytes), nil
	}
	s.stats.BufferMisses++
	at = s.stage(at)
	at, err := s.evictIfFull(at)
	if err != nil {
		return nil, 0, err
	}
	e := s.newEntry()
	if ppage, ok := s.ftl.read(lpn); ok {
		s.stats.Fills++
		done, err := s.arr.ReadPageInto(at, ppage, e.data)
		if err != nil {
			s.recycle(e)
			return nil, 0, err
		}
		at = done
	} else {
		// Never-written page: reads as zero (the frame may be recycled).
		for i := range e.data {
			e.data[i] = 0
		}
	}
	s.tick++
	e.tick = s.tick
	s.buf[lpn] = e
	return e, s.dramAccess(at, accessBytes), nil
}

// Read implements mem.Device.
func (s *SSD) Read(at sim.Time, addr uint64, n int) ([]byte, sim.Time, error) {
	if n <= 0 {
		return nil, 0, mem.CheckRange("ssd", s.Size(), addr, n)
	}
	out := make([]byte, n)
	done, err := s.ReadInto(at, addr, out)
	if err != nil {
		return nil, 0, err
	}
	return out, done, nil
}

// ReadInto implements mem.ReaderInto: buffer-resident pages are served
// without allocating.
func (s *SSD) ReadInto(at sim.Time, addr uint64, dst []byte) (sim.Time, error) {
	n := len(dst)
	if err := mem.CheckRange("ssd", s.Size(), addr, n); err != nil {
		return 0, err
	}
	start := s.enter(at)
	done := start
	pb := uint64(s.cfg.Media.PageBytes)
	for off := 0; off < n; {
		a := addr + uint64(off)
		lpn, po := a/pb, int(a%pb)
		take := int(pb) - po
		if take > n-off {
			take = n - off
		}
		e, d, err := s.fetch(start, lpn, take)
		if err != nil {
			return 0, err
		}
		copy(dst[off:], e.data[po:po+take])
		done = sim.Max(done, d)
		off += take
	}
	s.stats.Reads++
	s.stats.ReadPS += int64(done - at)
	s.hRead.Record(int64(done - at))
	return done, nil
}

// Write implements mem.Device: pages are modified in the buffer
// (fetching them first when partially covered) and programmed to the
// medium on eviction or Flush.
func (s *SSD) Write(at sim.Time, addr uint64, data []byte) (sim.Time, error) {
	if err := mem.CheckRange("ssd", s.Size(), addr, len(data)); err != nil {
		return 0, err
	}
	start := s.enter(at)
	done := start
	pb := uint64(s.cfg.Media.PageBytes)
	for off := 0; off < len(data); {
		a := addr + uint64(off)
		lpn, po := a/pb, int(a%pb)
		take := int(pb) - po
		if take > len(data)-off {
			take = len(data) - off
		}
		var e *bufEntry
		var d sim.Time
		var err error
		if po == 0 && take == int(pb) {
			// Full-page overwrite: no fill needed.
			if cur, ok := s.buf[lpn]; ok {
				s.stats.BufferHits++
				e, d = cur, s.dramAccess(start, take)
			} else {
				s.stats.BufferMisses++
				start2, err := s.evictIfFull(s.stage(start))
				if err != nil {
					return 0, err
				}
				s.tick++
				e = s.newEntry() // fully overwritten below (po == 0, take == pb)
				e.tick = s.tick
				s.buf[lpn] = e
				d = s.dramAccess(start2, take)
			}
		} else {
			e, d, err = s.fetch(start, lpn, take)
			if err != nil {
				return 0, err
			}
		}
		s.tick++
		e.tick = s.tick
		copy(e.data[po:], data[off:off+take])
		e.dirty = true
		done = sim.Max(done, d)
		off += take
	}
	s.stats.Writes++
	s.stats.WritePS += int64(done - at)
	s.hWrite.Record(int64(done - at))
	return done, nil
}

// Flush programs every dirty buffered page and returns when the medium
// has them all.
func (s *SSD) Flush(at sim.Time) (sim.Time, error) {
	done := at
	// Deterministic order: iterate lpns ascending.
	lpns := make([]uint64, 0, len(s.buf))
	for lpn, e := range s.buf {
		if e.dirty {
			lpns = append(lpns, lpn)
		}
	}
	// Small slice; insertion sort keeps us dependency-free.
	for i := 1; i < len(lpns); i++ {
		for j := i; j > 0 && lpns[j] < lpns[j-1]; j-- {
			lpns[j], lpns[j-1] = lpns[j-1], lpns[j]
		}
	}
	for _, lpn := range lpns {
		e := s.buf[lpn]
		d, err := s.ftl.write(at, lpn, e.data)
		if err != nil {
			return 0, err
		}
		s.stats.ProgramPS += int64(d - at)
		s.hProgram.Record(int64(d - at))
		e.dirty = false
		s.stats.Flushes++
		done = sim.Max(done, d)
	}
	return sim.Max(done, s.arr.Drain()), nil
}

// Drain implements mem.Drainer (array settle; dirty buffer pages remain
// cached - call Flush for persistence).
func (s *SSD) Drain() sim.Time { return s.arr.Drain() }

// DropCaches evicts every clean page from the internal DRAM buffer, the
// cold-cache state of a freshly powered device. Experiments call it after
// initializing data so measured runs pay real media latency. Dirty pages
// are kept (flush first for a fully cold start); the number of dropped
// pages is returned.
func (s *SSD) DropCaches() int {
	dropped := 0
	for lpn, e := range s.buf {
		if !e.dirty {
			delete(s.buf, lpn)
			s.recycle(e)
			dropped++
		}
	}
	return dropped
}
