package ssd

import "sync"

// entPool recycles buffer entries (struct + page frame) across
// simulation runs, keyed by page size. Pooled entries hold stale data;
// newEntry's callers either fill the whole page or zero it, exactly as
// with locally recycled entries.
var entPool = struct {
	mu     sync.Mutex
	bySize map[int][]*bufEntry
}{bySize: map[int][]*bufEntry{}}

func pooledEntry(pb int) *bufEntry {
	entPool.mu.Lock()
	defer entPool.mu.Unlock()
	list := entPool.bySize[pb]
	n := len(list)
	if n == 0 {
		return nil
	}
	e := list[n-1]
	list[n-1] = nil
	entPool.bySize[pb] = list[:n-1]
	return e
}

// Release returns the buffer's entries and the array's page frames to
// their package pools. Call only once the device's contents are no
// longer needed.
func (s *SSD) Release() {
	pb := s.cfg.Media.PageBytes
	entPool.mu.Lock()
	list := entPool.bySize[pb]
	for lpn, e := range s.buf {
		list = append(list, e)
		delete(s.buf, lpn)
	}
	list = append(list, s.freeEnts...)
	entPool.bySize[pb] = list
	entPool.mu.Unlock()
	s.freeEnts = s.freeEnts[:0]
	s.arr.Release()
}

// CopyFrom clones src's buffer contents, FTL mappings, firmware and
// array state into s. Both SSDs must have been built from the same
// Config (histogram handles resolve at construction against each side's
// own observer, so they are deliberately not copied). Buffer entries are
// drawn from s's own slab pool, so the two devices never alias pages.
func (s *SSD) CopyFrom(src *SSD) {
	for lpn, e := range s.buf {
		s.recycle(e)
		delete(s.buf, lpn)
	}
	for lpn, e := range src.buf {
		ne := s.newEntry()
		copy(ne.data, e.data)
		ne.dirty = e.dirty
		ne.tick = e.tick
		s.buf[lpn] = ne
	}
	s.tick = src.tick
	s.dramPipe.CopyFrom(src.dramPipe)
	s.dramBusy = src.dramBusy
	s.stats = src.stats
	s.arr.CopyFrom(src.arr)
	s.ftl.CopyFrom(src.ftl)
	s.fw.CopyFrom(src.fw)
}

// CopyFrom clones src's mapping tables, free-space accounting and GC
// totals into f. The GC scratch buffer is reusable working memory, not
// state, and stays as-is.
func (f *ftl) CopyFrom(src *ftl) {
	f.l2p = copyMap(src.l2p)
	f.p2l = copyMap(src.p2l)
	f.validIn = copyMap(src.validIn)
	f.writtenIn = copyMap(src.writtenIn)
	f.written = copyMap(src.written)
	f.freeHead = src.freeHead
	f.freeQueue = append(f.freeQueue[:0], src.freeQueue...)
	f.gcRuns = src.gcRuns
	f.gcMoves = src.gcMoves
}

func copyMap[K comparable, V any](src map[K]V) map[K]V {
	dst := make(map[K]V, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// CopyFrom clones src's core timelines and request total into f.
func (f *Firmware) CopyFrom(src *Firmware) {
	f.cores.CopyFrom(src.cores)
	f.reqs = src.reqs
}

// CopyFrom clones the firmware-complex state into f. The wrapped device
// is owned (and separately forked) by the caller.
func (f *FirmwareManaged) CopyFrom(src *FirmwareManaged) {
	f.fw.CopyFrom(src.fw)
}
