package ssd

import (
	"bytes"
	"testing"
	"testing/quick"

	"dramless/internal/flash"
	"dramless/internal/mem"
	"dramless/internal/sim"
)

// tiny returns an SSD small enough to exercise GC: 64 pages logical,
// 4-page blocks, small buffer.
func tiny(t *testing.T, bufPages int) *SSD {
	t.Helper()
	media := flash.SLC()
	media.PageBytes = 512
	media.PagesPerBlock = 4
	media.Dies = 2
	cfg := Config{
		Media:         media,
		CapacityBytes: 64 * 512,
		OverProvision: 0.25,
		BufferBytes:   uint64(bufPages * 512),
		Firmware:      DefaultFirmware(),
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMediaProfiles(t *testing.T) {
	for _, p := range []flash.Profile{flash.SLC(), flash.MLC(), flash.TLC(), flash.PRAMMedia()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if flash.SLC().PageRead() != sim.Microseconds(25) {
		t.Error("SLC read != 25us")
	}
	if flash.MLC().PageProgram() != sim.Microseconds(800) {
		t.Error("MLC program != 800us")
	}
	if flash.TLC().PageProgram() != sim.Microseconds(1250) {
		t.Error("TLC program != 1250us")
	}
	// PRAM media: page read = 64 x 256 B chunks x 100 ns = 6.4 us, well
	// below any flash page read.
	pm := flash.PRAMMedia()
	if got := pm.PageRead(); got != sim.Microseconds(6.4) {
		t.Errorf("PRAM media page read = %v, want 6.4us", got)
	}
	if pm.PageRead() >= flash.SLC().PageRead() {
		t.Error("PRAM media reads must beat flash")
	}
	// Bulk writes serialize: 64 x 18 us - worse than MLC's 800 us page
	// program, matching the paper's finding that PRAM SSDs lose on bulk
	// writes.
	if got := pm.PageProgram(); got <= flash.MLC().PageProgram() {
		t.Errorf("PRAM media page program = %v, want > MLC %v", got, flash.MLC().PageProgram())
	}
}

func TestSSDRoundTrip(t *testing.T) {
	s := tiny(t, 8)
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 700) // crosses pages
	if _, err := s.Write(0, 100, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Read(sim.Microseconds(10), 100, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestBufferHitFastMissSlow(t *testing.T) {
	s := tiny(t, 8)
	// Write once (lands in buffer), flush so the medium holds it, then a
	// fresh SSD read misses and pays the page read.
	if _, err := s.Write(0, 0, bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatal(err)
	}
	start := sim.Milliseconds(10)
	_, d1, err := s.Read(start, 0, 16) // buffer hit
	if err != nil {
		t.Fatal(err)
	}
	hit := d1 - start
	if hit > sim.Microseconds(5) {
		t.Fatalf("buffer hit took %v, want ~firmware+DRAM", hit)
	}
	if s.Stats().BufferHits == 0 {
		t.Fatal("no buffer hit recorded")
	}
}

func TestReadMissPaysPageRead(t *testing.T) {
	s := tiny(t, 2)
	if _, err := s.Write(0, 0, bytes.Repeat([]byte{7}, 512)); err != nil {
		t.Fatal(err)
	}
	d, err := s.Flush(sim.Milliseconds(1))
	if err != nil {
		t.Fatal(err)
	}
	// Evict page 0 by touching two other pages (buffer holds 2).
	s.Read(d, 512, 16)
	s.Read(d, 1024, 16)
	start := sim.Milliseconds(100)
	got, d2, err := s.Read(start, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatal("data lost across eviction")
	}
	if lat := d2 - start; lat < sim.Microseconds(25) {
		t.Fatalf("miss latency %v, want >= 25us page read", lat)
	}
}

func TestSubPageWriteCausesRMWFill(t *testing.T) {
	s := tiny(t, 4)
	// Persist a page, evict it, then a 16 B write must fetch the whole
	// page first (read-modify-write) - the paper's page-granularity tax.
	if _, err := s.Write(0, 0, bytes.Repeat([]byte{3}, 512)); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Flush(sim.Milliseconds(1))
	s.Read(d, 512, 1)
	s.Read(d, 1024, 1)
	s.Read(d, 1536, 1)
	s.Read(d, 2048, 1)
	fills := s.Stats().Fills
	if _, err := s.Write(sim.Milliseconds(50), 8, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Fills != fills+1 {
		t.Fatal("sub-page write did not fill the page")
	}
	got, _, _ := s.Read(sim.Milliseconds(60), 0, 16)
	want := append(bytes.Repeat([]byte{3}, 8), 9, 9, 3, 3, 3, 3, 3, 3)
	if !bytes.Equal(got, want) {
		t.Fatalf("RMW merge wrong: %v", got)
	}
}

func TestGarbageCollectionRelocatesLiveData(t *testing.T) {
	s := tiny(t, 2)
	// Hammer a few logical pages far beyond physical capacity so GC must
	// run, then verify all live data survives.
	live := map[uint64][]byte{}
	now := sim.Time(0)
	for i := 0; i < 300; i++ {
		lpn := uint64(i % 6)
		data := bytes.Repeat([]byte{byte(i)}, 512)
		if _, err := s.Write(now, lpn*512, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		d, err := s.Flush(now)
		if err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
		live[lpn] = data
		now = d
	}
	if s.Stats().GCRuns == 0 {
		t.Fatal("GC never ran despite 50x overwrite pressure")
	}
	for lpn, want := range live {
		got, _, err := s.Read(now, lpn*512, 512)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lpn %d corrupted after GC", lpn)
		}
	}
}

func TestFirmwareSerializesRequests(t *testing.T) {
	fw, err := NewFirmware(DefaultFirmware())
	if err != nil {
		t.Fatal(err)
	}
	per := DefaultFirmware().PerRequest()
	if per != sim.Microseconds(2) {
		t.Fatalf("firmware per-request = %v, want 2us", per)
	}
	// 4 requests at once on 3 cores: the fourth queues.
	var last sim.Time
	for i := 0; i < 4; i++ {
		last = fw.Process(0)
	}
	if last != 2*per {
		t.Fatalf("fourth request done at %v, want %v", last, 2*per)
	}
}

func TestFirmwareManagedAddsLatency(t *testing.T) {
	inner := mem.NewFlat("pram", 1<<20, sim.Nanoseconds(100), 1.6e9)
	fm, err := NewFirmwareManaged(DefaultFirmware(), inner)
	if err != nil {
		t.Fatal(err)
	}
	_, done, err := fm.Read(0, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	// 2 us firmware + ~100 ns device: firmware dominates, which is
	// Figure 7's entire point.
	if done < sim.Microseconds(2) {
		t.Fatalf("firmware-managed read %v, want >= 2us", done)
	}
	fresh := mem.NewFlat("pram2", 1<<20, sim.Nanoseconds(100), 1.6e9)
	_, rawDone, _ := fresh.Read(0, 0, 32)
	if rawDone >= done {
		t.Fatal("firmware wrapper added no cost")
	}
}

func TestNORInterface(t *testing.T) {
	n := flash.NewNOR(1 << 20)
	payload := []byte("byte addressable but 16-bit serialized")
	if _, err := n.Write(0, 5, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := n.Read(n.Drain(), 5, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("NOR round trip failed")
	}
	// 32 B read = 16 words x 10 ns = 160 ns serialized (~200 MB/s; the
	// per-access latency sits ~3x above the 3x nm PRAM's bus share).
	start := n.Drain()
	_, d, _ := n.Read(start, 0, 32)
	if got := d - start; got != sim.Nanoseconds(160) {
		t.Fatalf("NOR 32B read = %v, want 160ns", got)
	}
	// 32 B write = 16 words x 120 ns = 1.92 us (~17 MB/s, two orders
	// below flash page bandwidth per Section VI).
	start = n.Drain()
	d, _ = n.Write(start, 0, bytes.Repeat([]byte{1}, 32))
	if got := d - start; got != sim.Nanoseconds(1920) {
		t.Fatalf("NOR 32B write = %v, want 1.92us", got)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(flash.SLC(), 1<<30)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.CapacityBytes = 1000 // not page multiple
	if err := cfg.Validate(); err == nil {
		t.Error("bad capacity accepted")
	}
	cfg = DefaultConfig(flash.SLC(), 1<<30)
	cfg.OverProvision = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero over-provisioning accepted")
	}
	fw := DefaultFirmware()
	fw.Cores = 0
	if err := fw.Validate(); err == nil {
		t.Error("zero firmware cores accepted")
	}
}

func TestIntegratedModeSkipsFirmwareOnHits(t *testing.T) {
	media := flash.SLC()
	media.PageBytes = 512
	media.PagesPerBlock = 4
	cfg := Config{
		Media: media, CapacityBytes: 64 * 512, OverProvision: 0.25,
		BufferBytes: 8 * 512, Firmware: DefaultFirmware(),
		Integrated: true, DRAMBandwidth: 12.8e9,
	}
	s := MustNew(cfg)
	if _, err := s.Write(0, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	fwBefore := s.fw.Requests()
	start := sim.Milliseconds(1)
	_, done, err := s.Read(start, 0, 64) // buffer hit: direct DRAM access
	if err != nil {
		t.Fatal(err)
	}
	if s.fw.Requests() != fwBefore {
		t.Fatal("integrated buffer hit invoked firmware")
	}
	if lat := done - start; lat > sim.Microseconds(1) {
		t.Fatalf("integrated hit latency %v, want sub-microsecond DRAM access", lat)
	}
	// A miss must stage through firmware.
	s.Flush(start)
	for i := 1; i <= 8; i++ { // evict page 0
		s.Read(sim.Milliseconds(10), uint64(i*512), 1)
	}
	fwBefore = s.fw.Requests()
	if _, _, err := s.Read(sim.Milliseconds(50), 0, 64); err != nil {
		t.Fatal(err)
	}
	if s.fw.Requests() == fwBefore {
		t.Fatal("integrated page staging skipped firmware")
	}
}

// Property: SSD matches a shadow buffer under random writes, reads and
// flushes, despite buffering, eviction and GC.
func TestSSDFunctionalProperty(t *testing.T) {
	s := tiny(t, 3)
	shadow := make([]byte, 64*512)
	now := sim.Time(0)
	f := func(off uint16, n uint8, fill byte, action uint8) bool {
		addr := uint64(off) % uint64(len(shadow)-300)
		size := int(n)%300 + 1
		switch action % 4 {
		case 0, 1:
			data := bytes.Repeat([]byte{fill}, size)
			done, err := s.Write(now, addr, data)
			if err != nil {
				return false
			}
			copy(shadow[addr:], data)
			now = done
		case 2:
			done, err := s.Flush(now)
			if err != nil {
				return false
			}
			now = done
		default:
			got, done, err := s.Read(now, addr, size)
			if err != nil {
				return false
			}
			now = done
			return bytes.Equal(got, shadow[addr:addr+uint64(size)])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
