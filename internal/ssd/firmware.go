// Package ssd builds the solid-state storage devices of Table I: flash
// SSDs (SLC/MLC/TLC) with a page-mapped FTL, a 1 GB internal DRAM buffer
// and a 3-core embedded firmware; the Optane-like PRAM SSD; and the
// standalone firmware wrapper used by the "DRAM-less (firmware)"
// configuration, which shows why the paper replaces firmware with
// hardware automation (Figure 7).
package ssd

import (
	"fmt"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

// FirmwareConfig describes the embedded controller that runs the storage
// firmware: "a 3-core 500 MHz embedded ARM CPU, similar to the
// controllers of commercial SSDs".
type FirmwareConfig struct {
	Cores   int
	ClockHz float64
	// RequestCycles is the firmware path length per I/O request: command
	// decode, mapping lookup, scheduling, completion. 1000 cycles at
	// 500 MHz = 2 us, which dwarfs a 100 ns PRAM access - the root cause
	// of Figure 7's up-to-80% degradation.
	RequestCycles int64
}

// DefaultFirmware returns the paper's firmware controller.
func DefaultFirmware() FirmwareConfig {
	return FirmwareConfig{Cores: 3, ClockHz: 500e6, RequestCycles: 1000}
}

// Validate reports configuration errors.
func (c FirmwareConfig) Validate() error {
	if c.Cores <= 0 || c.ClockHz <= 0 || c.RequestCycles <= 0 {
		return fmt.Errorf("ssd: firmware config must be positive: %+v", c)
	}
	return nil
}

// PerRequest returns the firmware execution time of one request.
func (c FirmwareConfig) PerRequest() sim.Duration {
	return sim.NewClock(c.ClockHz).Cycles(c.RequestCycles)
}

// Firmware models the embedded cores executing storage firmware. Every
// request occupies one core for the firmware path length before the
// hardware below even starts.
type Firmware struct {
	cfg   FirmwareConfig
	cores *sim.Pool
	reqs  int64
}

// NewFirmware returns an idle firmware complex.
func NewFirmware(cfg FirmwareConfig) (*Firmware, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Firmware{cfg: cfg, cores: sim.NewPool("fw.cores", cfg.Cores)}, nil
}

// Process runs the firmware path for one request arriving at `at` and
// returns when a core has finished it.
func (f *Firmware) Process(at sim.Time) sim.Time {
	f.reqs++
	return f.cores.AcquireUntil(at, f.cfg.PerRequest())
}

// Requests returns how many requests the firmware has processed.
func (f *Firmware) Requests() int64 { return f.reqs }

// BusyTime returns cumulative core-busy time (for the energy model).
func (f *Firmware) BusyTime() sim.Duration { return f.cores.BusyTime() }

// Config returns the firmware configuration.
func (f *Firmware) Config() FirmwareConfig { return f.cfg }

// FirmwareManaged wraps any mem.Device so that every read and write first
// pays the firmware processing cost on the embedded cores, and requests
// are serialized through the firmware's dispatch queue. This is the
// "DRAM-less (firmware)" configuration: the same PRAM subsystem, but
// managed by traditional SSD firmware instead of hardware automation.
type FirmwareManaged struct {
	fw    *Firmware
	inner mem.Device
}

var _ mem.Device = (*FirmwareManaged)(nil)

// NewFirmwareManaged wraps inner behind firmware cfg.
func NewFirmwareManaged(cfg FirmwareConfig, inner mem.Device) (*FirmwareManaged, error) {
	fw, err := NewFirmware(cfg)
	if err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("ssd: firmware wrapper needs a device")
	}
	return &FirmwareManaged{fw: fw, inner: inner}, nil
}

// Size implements mem.Device.
func (f *FirmwareManaged) Size() uint64 { return f.inner.Size() }

// Read implements mem.Device.
func (f *FirmwareManaged) Read(at sim.Time, addr uint64, n int) ([]byte, sim.Time, error) {
	start := f.fw.Process(at)
	return f.inner.Read(start, addr, n)
}

// ReadInto implements mem.ReaderInto by charging the firmware cost and
// passing the caller's buffer down to the inner device.
func (f *FirmwareManaged) ReadInto(at sim.Time, addr uint64, dst []byte) (sim.Time, error) {
	start := f.fw.Process(at)
	return mem.ReadIntoOf(f.inner, start, addr, dst)
}

var _ mem.ReaderInto = (*FirmwareManaged)(nil)

// Write implements mem.Device.
func (f *FirmwareManaged) Write(at sim.Time, addr uint64, data []byte) (sim.Time, error) {
	start := f.fw.Process(at)
	return f.inner.Write(start, addr, data)
}

// Drain implements mem.Drainer.
func (f *FirmwareManaged) Drain() sim.Time {
	return mem.DrainOf(f.inner, f.fw.cores.FreeAt())
}

// Firmware exposes the embedded cores for energy accounting.
func (f *FirmwareManaged) Firmware() *Firmware { return f.fw }
