// Package pe models one processing element of the accelerator: an
// 8-functional-unit VLIW core (2x .M multiply, .L logic, .S shift/branch,
// .D load-store - Figure 6b) running at 1 GHz, executing a kernel's
// operation stream against its private cache hierarchy. The model tracks
// instructions retired, compute versus memory-stall time, and feeds the
// IPC and power time series of Figures 18-21.
package pe

import (
	"fmt"

	"dramless/internal/mem"
	"dramless/internal/obs"
	"dramless/internal/sim"
	"dramless/internal/stats"
	"dramless/internal/workload"
)

// Config describes the core.
type Config struct {
	// ClockHz is the core clock (1 GHz embedded cores in the paper's
	// platform).
	ClockHz float64
	// FuncUnits is the issue width (8: two each of .M/.L/.S/.D).
	FuncUnits int
	// EffectiveIPC is the sustained instructions per cycle on
	// compute-bound stretches; DSP intrinsics keep the paper's optimized
	// kernels near half the peak issue width.
	EffectiveIPC float64
	// DSPIntrinsics models the paper's kernel optimization: "embedding
	// DSP-intrinsic that activates two .M units, such as multi-way
	// floating-point multiply/add". Without them the multiply units sit
	// idle and sustained IPC halves.
	DSPIntrinsics bool
	// Unbatched disables the run-coalescing front-end and executes the op
	// stream strictly one op per Step. The batched path is byte- and
	// timing-equivalent (the equivalence tests assert it); this switch
	// exists as the reference baseline and an escape hatch.
	Unbatched bool
}

// Default returns the TMS320C6678-like core with the paper's
// DSP-intrinsic-optimized kernels.
func Default() Config {
	return Config{ClockHz: 1e9, FuncUnits: 8, EffectiveIPC: 4, DSPIntrinsics: true}
}

// effectiveIPC returns the sustained issue rate under the configuration.
func (c Config) effectiveIPC() float64 {
	if c.DSPIntrinsics {
		return c.EffectiveIPC
	}
	return c.EffectiveIPC / 2 // .M units idle without the intrinsics
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ClockHz <= 0 || c.FuncUnits <= 0 || c.EffectiveIPC <= 0 {
		return fmt.Errorf("pe: invalid config %+v", c)
	}
	if c.EffectiveIPC > float64(c.FuncUnits) {
		return fmt.Errorf("pe: effective IPC %.1f exceeds %d functional units", c.EffectiveIPC, c.FuncUnits)
	}
	return nil
}

// Span reports one busy/stalled interval to an observer (energy model).
type Span struct {
	Active bool // true: executing; false: stalled on memory
	T0, T1 sim.Time
}

// PE is one processing element mid-run.
type PE struct {
	ID  int
	cfg Config

	memory  mem.Device
	batcher mem.Batcher // non-nil when memory has a batched fast path
	stream  workload.Stream
	batches workload.BatchStream // non-nil unless cfg.Unbatched

	clock  sim.Clock
	issue  sim.Duration // one issue slot at the core clock
	ipcEff float64

	// One-entry durOf memo: a stream has very few distinct compute
	// stretches (the kernel's per-chunk count), and the float division
	// per op showed up in suite profiles.
	memoCompute int64
	memoDur     sim.Duration

	batch workload.Batch // current coalesced run
	bpos  int            // ops of the run already executed

	now     sim.Time
	instrs  int64
	compute sim.Duration
	stall   sim.Duration
	done    bool

	ipc      *stats.Series // instructions per bucket, nil unless sampled
	onSpan   func(Span)
	storeBuf []byte // reusable nonzero store payload
	loadBuf  []byte // reusable load destination (loaded bytes are discarded)

	// Windowed busy/stall instruments (obs.Series handles shared across
	// the accelerator's PEs). Unlike OnSpan/SampleIPC, they do NOT
	// disable run folding: the scalar path records per-op spans, and the
	// batched paths record the identical intervals — contiguous
	// closed-form spans for compute-only runs, per-access mem.Run.OnOp
	// callbacks for memory runs — so the per-window sums match the
	// unbatched execution exactly.
	busyS  *obs.Series
	stallS *obs.Series
	onOp   func(start, end sim.Time) // run-path recorder (uses curGap)
	curGap sim.Duration              // Gap of the run being executed

	// classify reports whether an access would be serviced entirely by
	// the core-private cache hierarchy (cache.AccessPrivate), letting
	// TailRun absorb fold-stopping private heads inline — including
	// line-spanning accesses the run fast paths refuse, which the
	// classifier probes per set with an epoch-stamped occupancy scratch.
	// Nil (unbatched builds, or a memory without the probe) parks at
	// every fold stop.
	classify func(addr uint64, n int) bool
}

// privateClassifier is the optional probe a memory device exposes for
// lane-mode head classification.
type privateClassifier interface {
	AccessPrivate(addr uint64, n int) bool
}

// New returns a PE executing stream against memory, starting at `start`.
func New(id int, cfg Config, memory mem.Device, stream workload.Stream, start sim.Time) (*PE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if memory == nil || stream == nil {
		return nil, fmt.Errorf("pe %d: nil memory or stream", id)
	}
	p := &PE{
		ID: id, cfg: cfg, memory: memory, stream: stream, now: start,
		clock:       sim.NewClock(cfg.ClockHz),
		ipcEff:      cfg.effectiveIPC(),
		memoCompute: -1,
	}
	p.issue = p.clock.Cycles(1)
	if !cfg.Unbatched {
		p.batches = workload.Coalesce(stream)
		p.batcher, _ = memory.(mem.Batcher)
		if pc, ok := memory.(privateClassifier); ok {
			p.classify = pc.AccessPrivate
		}
	}
	return p, nil
}

// SampleIPC enables instruction sampling with the given bucket interval.
func (p *PE) SampleIPC(interval sim.Duration) { p.ipc = stats.NewSeries(interval) }

// OnSpan registers a busy/stall interval observer.
func (p *PE) OnSpan(fn func(Span)) { p.onSpan = fn }

// ObserveSeries attaches windowed busy (compute) and stall
// (memory-wait) time accumulation, typically the accelerator-wide
// shared series. Either handle may be nil.
func (p *PE) ObserveSeries(busy, stall *obs.Series) {
	if busy == nil && stall == nil {
		return
	}
	p.busyS, p.stallS = busy, stall
	p.onOp = func(start, end sim.Time) {
		if p.curGap > 0 {
			p.busyS.AddSpan(start-p.curGap, start)
		}
		p.stallS.AddSpan(start, end)
	}
}

// Now returns the PE's local time.
func (p *PE) Now() sim.Time { return p.now }

// Done reports stream exhaustion.
func (p *PE) Done() bool { return p.done }

// Instructions returns instructions retired so far.
func (p *PE) Instructions() int64 { return p.instrs }

// ComputeTime returns cumulative execution time.
func (p *PE) ComputeTime() sim.Duration { return p.compute }

// StallTime returns cumulative memory-stall time.
func (p *PE) StallTime() sim.Duration { return p.stall }

// IPCSeries returns the sampled instruction series or nil.
func (p *PE) IPCSeries() *stats.Series { return p.ipc }

// durOf returns the execution time of a compute stretch.
func (p *PE) durOf(compute int64) sim.Duration {
	if compute == p.memoCompute {
		return p.memoDur
	}
	cycles := int64(float64(compute)/p.ipcEff + 0.5)
	if cycles < 1 {
		cycles = 1
	}
	p.memoCompute, p.memoDur = compute, p.clock.Cycles(cycles)
	return p.memoDur
}

// Step executes the next operation and, on the batched front-end, folds
// the rest of the current coalesced run into the same call while it
// stays on the memory device's private fast path. It reports false once
// the stream is exhausted.
//
// Folding preserves the multi-core interleaving contract of the event
// engine: only the first op of a call may touch shared state (its start
// time equals the event time, exactly as in the scalar path); every
// subsequent op executes only while the device bounds it to core-private
// state (cache ReadRun/WriteRun), so its global execution order cannot
// matter. When the run's next access would leave the private path, Step
// returns with the PE's clock at that access's start time and the caller
// reschedules - the access then runs scalar, in its own event, at the
// same simulated time as in the unbatched execution.
func (p *PE) Step() (bool, error) {
	if p.done {
		return false, nil
	}
	if p.batches == nil {
		op, ok := p.stream.Next()
		if !ok {
			p.done = true
			return false, nil
		}
		return true, p.exec(op)
	}
	executed := false
	for {
		if p.bpos >= p.batch.Count {
			b, ok := p.batches.NextBatch()
			if !ok {
				p.done = true
				return executed, nil
			}
			p.batch, p.bpos = b, 0
		}
		rest := p.batch.Count - p.bpos
		op := p.batch.At(p.bpos)
		if !executed {
			if err := p.exec(op); err != nil {
				return false, err
			}
			p.bpos++
			executed = true
			continue
		}
		// Sampled runs never fold: per-op spans and IPC buckets must match
		// the scalar path bucket for bucket.
		if p.ipc != nil || p.onSpan != nil {
			return true, nil
		}
		if op.Size == 0 {
			// Compute-only run: closed form, exact in integer picoseconds.
			if op.Compute > 0 {
				dur := p.durOf(op.Compute)
				if p.busyS != nil {
					// One contiguous span; window sums equal the per-op
					// spans of the scalar path exactly (integer split).
					p.busyS.AddSpan(p.now, p.now+sim.Duration(rest)*dur)
				}
				p.now += sim.Duration(rest) * dur
				p.compute += sim.Duration(rest) * dur
				p.instrs += int64(rest) * op.Compute
			}
			p.bpos = p.batch.Count
			continue
		}
		if p.batcher == nil {
			return true, nil
		}
		run := mem.Run{
			Addr:   op.Addr,
			Stride: p.batch.Stride,
			Size:   op.Size,
			Count:  rest,
			Issue:  p.issue,
			OnOp:   p.onOp,
		}
		if op.Compute > 0 {
			run.Gap = p.durOf(op.Compute)
		}
		p.curGap = run.Gap
		var res mem.RunResult
		var err error
		if op.Write {
			res, err = p.batcher.WriteRun(p.now, run, p.payload(op.Size))
		} else {
			if len(p.loadBuf) < op.Size {
				p.loadBuf = make([]byte, op.Size)
			}
			res, err = p.batcher.ReadRun(p.now, run, p.loadBuf[:op.Size])
		}
		if err != nil {
			return false, fmt.Errorf("pe %d: %w", p.ID, err)
		}
		if res.Done > 0 {
			p.now = res.Now
			p.compute += sim.Duration(res.Done) * run.Gap
			p.stall += res.Stall
			p.instrs += int64(res.Done) * (op.Compute + 1)
			p.bpos += res.Done
		}
		if p.bpos < p.batch.Count {
			// The next access leaves the private fast path: yield so it
			// executes in its own event at the correct global time.
			return true, nil
		}
	}
}

// StepHead implements the head half of sim.LaneModel: it executes
// exactly the next operation of the stream — the one whose start time
// equals the dispatch time and which may touch shared state — and
// reports false once the stream is exhausted. A StepHead followed by
// TailRun covers the same work as one legacy Step, except that TailRun
// additionally absorbs provably private follow-on heads.
func (p *PE) StepHead() (bool, error) {
	if p.done {
		return false, nil
	}
	if p.batches == nil {
		op, ok := p.stream.Next()
		if !ok {
			p.done = true
			return false, nil
		}
		return true, p.exec(op)
	}
	if p.bpos >= p.batch.Count {
		b, ok := p.batches.NextBatch()
		if !ok {
			p.done = true
			return false, nil
		}
		p.batch, p.bpos = b, 0
	}
	if err := p.exec(p.batch.At(p.bpos)); err != nil {
		return false, err
	}
	p.bpos++
	return true, nil
}

// TailRun implements the tail half of sim.LaneModel: it mirrors Step's
// fold loop (identical state evolution, op for op), and where the fold
// stops on an access the private classifier clears — a line-crossing
// access still serviced entirely by this core's caches — it executes
// that head inline and keeps folding, counting one extra event per
// absorbed head. It parks (returns) only at a genuinely shared access,
// which the coordinator then dispatches via StepHead in global time
// order. publish, when non-nil, receives the core's advancing clock as
// the executor's frontier.
func (p *PE) TailRun(publish func(sim.Time)) (int64, error) {
	if p.done || p.batches == nil {
		return 0, nil
	}
	var extra int64
	for {
		if publish != nil {
			publish(p.now)
		}
		if p.bpos >= p.batch.Count {
			b, ok := p.batches.NextBatch()
			if !ok {
				p.done = true
				return extra, nil
			}
			p.batch, p.bpos = b, 0
		}
		rest := p.batch.Count - p.bpos
		op := p.batch.At(p.bpos)
		// Sampled runs never fold (see Step); lane mode is gated off for
		// them, but keep the contract identical regardless.
		if p.ipc != nil || p.onSpan != nil {
			return extra, nil
		}
		if op.Size == 0 {
			if op.Compute > 0 {
				dur := p.durOf(op.Compute)
				if p.busyS != nil {
					p.busyS.AddSpan(p.now, p.now+sim.Duration(rest)*dur)
				}
				p.now += sim.Duration(rest) * dur
				p.compute += sim.Duration(rest) * dur
				p.instrs += int64(rest) * op.Compute
			}
			p.bpos = p.batch.Count
			continue
		}
		if p.batcher == nil {
			return extra, nil
		}
		run := mem.Run{
			Addr:   op.Addr,
			Stride: p.batch.Stride,
			Size:   op.Size,
			Count:  rest,
			Issue:  p.issue,
			OnOp:   p.onOp,
		}
		if op.Compute > 0 {
			run.Gap = p.durOf(op.Compute)
		}
		p.curGap = run.Gap
		var res mem.RunResult
		var err error
		if op.Write {
			res, err = p.batcher.WriteRun(p.now, run, p.payload(op.Size))
		} else {
			if len(p.loadBuf) < op.Size {
				p.loadBuf = make([]byte, op.Size)
			}
			res, err = p.batcher.ReadRun(p.now, run, p.loadBuf[:op.Size])
		}
		if err != nil {
			return extra, fmt.Errorf("pe %d: %w", p.ID, err)
		}
		if res.Done > 0 {
			p.now = res.Now
			p.compute += sim.Duration(res.Done) * run.Gap
			p.stall += res.Stall
			p.instrs += int64(res.Done) * (op.Compute + 1)
			p.bpos += res.Done
		}
		if p.bpos < p.batch.Count {
			// The fold stopped. A private stop (all touched lines served
			// by this core's L1/L2) executes inline as its own event —
			// its timing and state effects cannot depend on other lanes.
			// A shared stop parks the lane for coordinated dispatch.
			stop := p.batch.At(p.bpos)
			if p.classify == nil || !p.classify(stop.Addr, stop.Size) {
				return extra, nil
			}
			if err := p.exec(stop); err != nil {
				return extra, err
			}
			p.bpos++
			extra++
		}
	}
}

// exec runs one op through the scalar path.
func (p *PE) exec(op workload.Op) error {
	if op.Compute > 0 {
		dur := p.durOf(op.Compute)
		p.emit(Span{Active: true, T0: p.now, T1: p.now + dur})
		if p.ipc != nil {
			p.ipc.Spread(p.now, p.now+dur, float64(op.Compute))
		}
		if p.busyS != nil {
			p.busyS.AddSpan(p.now, p.now+dur)
		}
		p.now += dur
		p.compute += dur
		p.instrs += op.Compute
	}

	if op.Size > 0 {
		var done sim.Time
		var err error
		if op.Write {
			// Stores carry a nonzero synthetic payload: all-zero data
			// would be RESET-only (or free) under the PRAM cell model and
			// underprice every program.
			done, err = p.memory.Write(p.now, op.Addr, p.payload(op.Size))
		} else {
			// The model discards loaded bytes (the kernel's arithmetic is
			// abstracted by op.Compute), so loads reuse one scratch buffer.
			if len(p.loadBuf) < op.Size {
				p.loadBuf = make([]byte, op.Size)
			}
			done, err = mem.ReadIntoOf(p.memory, p.now, op.Addr, p.loadBuf[:op.Size])
		}
		if err != nil {
			return fmt.Errorf("pe %d: %w", p.ID, err)
		}
		if done < p.now {
			done = p.now
		}
		// One issue slot for the load/store itself; the rest of the
		// access time is stall.
		stallEnd := sim.Max(done, p.now+p.issue)
		p.emit(Span{Active: false, T0: p.now, T1: stallEnd})
		if p.ipc != nil {
			p.ipc.Accumulate(p.now, 1)
		}
		if p.stallS != nil {
			p.stallS.AddSpan(p.now, stallEnd)
		}
		p.stall += stallEnd - p.now
		p.now = stallEnd
		p.instrs++
	}
	return nil
}

// payload returns a reusable nonzero store buffer of n bytes.
func (p *PE) payload(n int) []byte {
	if len(p.storeBuf) < n {
		p.storeBuf = make([]byte, n)
		for i := range p.storeBuf {
			p.storeBuf[i] = byte(i*37 + 11 + p.ID)
		}
	}
	return p.storeBuf[:n]
}

func (p *PE) emit(s Span) {
	if p.onSpan != nil && s.T1 > s.T0 {
		p.onSpan(s)
	}
}

// Run steps the PE to completion (single-PE convenience; multi-PE runs
// interleave Steps in time order via the accel package).
func (p *PE) Run() error {
	for {
		ok, err := p.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}
