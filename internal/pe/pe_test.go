package pe

import (
	"testing"

	"dramless/internal/mem"
	"dramless/internal/sim"
	"dramless/internal/workload"
)

// opsStream replays a fixed op list.
type opsStream struct {
	ops []workload.Op
	i   int
}

func (s *opsStream) Next() (workload.Op, bool) {
	if s.i >= len(s.ops) {
		return workload.Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

func fastMem() mem.Device {
	return mem.NewFlat("m", 1<<20, sim.Nanoseconds(100), 10e9)
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.ClockHz = 0
	if err := c.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	c = Default()
	c.EffectiveIPC = 100
	if err := c.Validate(); err == nil {
		t.Error("IPC above issue width accepted")
	}
	if _, err := New(0, Default(), nil, &opsStream{}, 0); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := New(0, Default(), fastMem(), nil, 0); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestComputeTiming(t *testing.T) {
	// 400 instructions at 4 IPC and 1 GHz = 100 cycles = 100 ns.
	p, err := New(0, Default(), fastMem(), &opsStream{ops: []workload.Op{{Compute: 400}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Now(); got != sim.Nanoseconds(100) {
		t.Fatalf("compute time = %v, want 100ns", got)
	}
	if p.Instructions() != 400 {
		t.Fatalf("instrs = %d", p.Instructions())
	}
	if p.StallTime() != 0 {
		t.Fatalf("pure compute recorded stall %v", p.StallTime())
	}
}

func TestMemoryStallAccounting(t *testing.T) {
	stream := &opsStream{ops: []workload.Op{
		{Compute: 40, Addr: 0, Size: 32},
		{Compute: 40, Addr: 4096, Size: 32, Write: true},
	}}
	p, err := New(1, Default(), fastMem(), stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// Each op: 10 ns compute + >= 100 ns memory.
	if p.ComputeTime() != sim.Nanoseconds(20) {
		t.Fatalf("compute = %v, want 20ns", p.ComputeTime())
	}
	if p.StallTime() < sim.Nanoseconds(200) {
		t.Fatalf("stall = %v, want >= 200ns", p.StallTime())
	}
	// 80 compute + 2 load/store instructions.
	if p.Instructions() != 82 {
		t.Fatalf("instrs = %d, want 82", p.Instructions())
	}
}

func TestStartTimeRespected(t *testing.T) {
	p, _ := New(0, Default(), fastMem(), &opsStream{ops: []workload.Op{{Compute: 4}}}, sim.Microseconds(5))
	p.Run()
	if p.Now() <= sim.Microseconds(5) {
		t.Fatal("PE ran before its boot time")
	}
}

func TestIPCSeriesMassMatchesInstructions(t *testing.T) {
	stream := &opsStream{}
	for i := 0; i < 50; i++ {
		stream.ops = append(stream.ops, workload.Op{Compute: 100, Addr: uint64(i * 64), Size: 32})
	}
	p, _ := New(0, Default(), fastMem(), stream, 0)
	p.SampleIPC(sim.Microsecond)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	got := p.IPCSeries().Total()
	want := float64(p.Instructions())
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("series mass %v vs instructions %v", got, want)
	}
}

func TestSpanObserver(t *testing.T) {
	stream := &opsStream{ops: []workload.Op{
		{Compute: 400},
		{Addr: 0, Size: 32},
	}}
	p, _ := New(0, Default(), fastMem(), stream, 0)
	var active, stalled int
	var covered sim.Duration
	p.OnSpan(func(s Span) {
		if s.T1 <= s.T0 {
			t.Fatalf("empty span %+v", s)
		}
		covered += s.T1 - s.T0
		if s.Active {
			active++
		} else {
			stalled++
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if active != 1 || stalled != 1 {
		t.Fatalf("spans = %d active, %d stalled", active, stalled)
	}
	if covered != p.ComputeTime()+p.StallTime() {
		t.Fatalf("span coverage %v vs accounted %v", covered, p.ComputeTime()+p.StallTime())
	}
}

func TestStepAfterDone(t *testing.T) {
	p, _ := New(0, Default(), fastMem(), &opsStream{}, 0)
	ok, err := p.Step()
	if err != nil || ok {
		t.Fatal("empty stream should finish immediately")
	}
	if !p.Done() {
		t.Fatal("not done")
	}
	ok, _ = p.Step()
	if ok {
		t.Fatal("step after done made progress")
	}
}

func TestMemoryErrorPropagates(t *testing.T) {
	small := mem.NewFlat("tiny", 64, sim.Nanoseconds(1), 1e9)
	p, _ := New(3, Default(), small, &opsStream{ops: []workload.Op{{Addr: 1000, Size: 32}}}, 0)
	if err := p.Run(); err == nil {
		t.Fatal("out-of-range access did not error")
	}
}

func TestKernelStreamRunsOnPE(t *testing.T) {
	k := workload.MustByName("trisolv")
	params := workload.Params{Scale: 16 << 10, Agents: 2}
	stream := workload.MustStream(k, params, 0)
	p, _ := New(0, Default(), fastMem(), stream, 0)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Instructions() == 0 || p.Now() == 0 {
		t.Fatal("kernel stream made no progress")
	}
}

func TestDSPIntrinsicsDoubleComputeRate(t *testing.T) {
	run := func(dsp bool) sim.Time {
		cfg := Default()
		cfg.DSPIntrinsics = dsp
		p, err := New(0, cfg, fastMem(), &opsStream{ops: []workload.Op{{Compute: 4000}}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Now()
	}
	with, without := run(true), run(false)
	if without != 2*with {
		t.Fatalf("without intrinsics %v, want 2x the optimized %v", without, with)
	}
}
