package sim

import (
	"container/heap"
	"fmt"
)

// Resource is a single-server timeline: a piece of hardware that can do
// exactly one thing at a time (a command bus, a PRAM partition's sense
// circuit, a DMA engine). Callers reserve a span starting no earlier than
// a requested time; the resource serializes overlapping requests in call
// order, which matches an in-order hardware queue.
//
// Resource timelines are the workhorse of the dramless timing models: they
// let a trace-driven simulation account precisely for contention without
// simulating every bus cycle.
type Resource struct {
	name     string
	nextFree Time
	busy     Duration // total occupied time, for utilization accounting
	uses     int64
}

// NewResource returns an idle resource. The name is used in diagnostics.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for dur starting at or after earliest and
// returns the actual start time.
func (r *Resource) Acquire(earliest Time, dur Duration) (start Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative duration %v on %s", dur, r.name))
	}
	start = Max(earliest, r.nextFree)
	r.nextFree = start + dur
	r.busy += dur
	r.uses++
	return start
}

// AcquireUntil reserves the resource from max(earliest, free) for dur and
// returns when the reservation ends.
func (r *Resource) AcquireUntil(earliest Time, dur Duration) (end Time) {
	return r.Acquire(earliest, dur) + dur
}

// FreeAt returns the earliest time a new reservation could begin.
func (r *Resource) FreeAt() Time { return r.nextFree }

// BusyTime returns the cumulative reserved time.
func (r *Resource) BusyTime() Duration { return r.busy }

// Uses returns the number of reservations made.
func (r *Resource) Uses() int64 { return r.uses }

// Utilization returns busy time divided by horizon (0 when horizon <= 0).
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busy) / float64(horizon)
}

// Reset returns the resource to idle at time zero, clearing statistics.
func (r *Resource) Reset() { r.nextFree, r.busy, r.uses = 0, 0, 0 }

// Pool is a k-server timeline: k identical units (firmware cores, flash
// planes, DMA channels) that serve requests in arrival order, each request
// occupying one unit. It generalizes Resource to k > 1.
type Pool struct {
	name string
	free timeHeap // earliest-free time of each unit
	busy Duration
	uses int64
}

type timeHeap []Time

func (h timeHeap) Len() int           { return len(h) }
func (h timeHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x any)        { *h = append(*h, x.(Time)) }
func (h *timeHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h timeHeap) peek() Time         { return h[0] }
func (h *timeHeap) replaceTop(t Time) { (*h)[0] = t; heap.Fix(h, 0) }

// NewPool returns a pool of k idle units.
func NewPool(name string, k int) *Pool {
	if k <= 0 {
		panic(fmt.Sprintf("sim: pool %q needs at least one unit, got %d", name, k))
	}
	return &Pool{name: name, free: make(timeHeap, k)}
}

// Name returns the diagnostic name.
func (p *Pool) Name() string { return p.name }

// Units returns the number of servers in the pool.
func (p *Pool) Units() int { return len(p.free) }

// Acquire reserves one unit for dur starting at or after earliest, using
// the unit that frees soonest, and returns the actual start time.
func (p *Pool) Acquire(earliest Time, dur Duration) (start Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative duration %v on %s", dur, p.name))
	}
	start = Max(earliest, p.free.peek())
	p.free.replaceTop(start + dur)
	p.busy += dur
	p.uses++
	return start
}

// AcquireUntil reserves one unit and returns when the reservation ends.
func (p *Pool) AcquireUntil(earliest Time, dur Duration) (end Time) {
	return p.Acquire(earliest, dur) + dur
}

// FreeAt returns the earliest time any unit becomes available.
func (p *Pool) FreeAt() Time { return p.free.peek() }

// BusyTime returns cumulative reserved time summed over units.
func (p *Pool) BusyTime() Duration { return p.busy }

// Uses returns the number of reservations made.
func (p *Pool) Uses() int64 { return p.uses }

// Utilization returns mean per-unit utilization over horizon.
func (p *Pool) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(p.busy) / (float64(horizon) * float64(len(p.free)))
}

// Reset returns every unit to idle at time zero, clearing statistics.
func (p *Pool) Reset() {
	for i := range p.free {
		p.free[i] = 0
	}
	p.busy, p.uses = 0, 0
}

// Pipe models a bandwidth-limited transfer channel (a PCIe link, a DDR
// data bus, a memcpy engine). Transfers serialize and each occupies the
// pipe for size/bandwidth plus a fixed per-transfer latency.
type Pipe struct {
	res         *Resource
	bytesPerSec float64
	latency     Duration
	moved       int64
}

// NewPipe returns a pipe with the given sustained bandwidth (bytes/second)
// and fixed per-transfer latency (protocol and flight time).
func NewPipe(name string, bytesPerSec float64, latency Duration) *Pipe {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: pipe %q needs positive bandwidth", name))
	}
	return &Pipe{res: NewResource(name), bytesPerSec: bytesPerSec, latency: latency}
}

// TransferTime returns how long moving n bytes occupies the pipe,
// excluding queueing and the fixed latency.
func (p *Pipe) TransferTime(n int64) Duration {
	return Duration(float64(n) / p.bytesPerSec * float64(Second))
}

// Transfer moves n bytes starting no earlier than earliest and returns the
// time the last byte arrives. The pipe is occupied only for the wire time;
// the fixed latency is pure delay and does not block later transfers.
func (p *Pipe) Transfer(earliest Time, n int64) (done Time) {
	start := p.res.Acquire(earliest, p.TransferTime(n))
	p.moved += n
	return start + p.TransferTime(n) + p.latency
}

// Name returns the diagnostic name.
func (p *Pipe) Name() string { return p.res.Name() }

// Latency returns the fixed per-transfer latency.
func (p *Pipe) Latency() Duration { return p.latency }

// Bandwidth returns the configured bandwidth in bytes per second.
func (p *Pipe) Bandwidth() float64 { return p.bytesPerSec }

// BytesMoved returns the total payload moved through the pipe.
func (p *Pipe) BytesMoved() int64 { return p.moved }

// BusyTime returns cumulative wire-occupied time.
func (p *Pipe) BusyTime() Duration { return p.res.BusyTime() }

// FreeAt returns when the wire next becomes free.
func (p *Pipe) FreeAt() Time { return p.res.FreeAt() }

// Reset returns the pipe to idle at time zero, clearing statistics.
func (p *Pipe) Reset() { p.res.Reset(); p.moved = 0 }
