package sim

import (
	"testing"
	"testing/quick"
)

func TestClockConversions(t *testing.T) {
	c := NewClock(400e6) // 400 MHz -> 2.5 ns period
	if got, want := c.Period(), Nanoseconds(2.5); got != want {
		t.Fatalf("period = %v, want %v", got, want)
	}
	if got := c.Cycles(6); got != Nanoseconds(15) {
		t.Fatalf("6 cycles = %v, want 15ns", got)
	}
	if got := c.CyclesAt(Nanoseconds(15)); got != 6 {
		t.Fatalf("cycles in 15ns = %d, want 6", got)
	}
	if hz := c.Hz(); hz < 399e6 || hz > 401e6 {
		t.Fatalf("Hz = %v, want ~400e6", hz)
	}
}

func TestClockPanicsOnZeroFrequency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{Nanoseconds(2.5), "2.5ns"},
		{Microseconds(10), "10us"},
		{Milliseconds(60), "60ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(Time) { order = append(order, 3) })
	e.Schedule(10, func(Time) { order = append(order, 1) })
	e.Schedule(10, func(Time) { order = append(order, 2) }) // same time: schedule order
	end := e.Run()
	if end != 30 {
		t.Fatalf("end = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("dispatch order = %v, want [1 2 3]", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(5, func(now Time) {
		e.After(7, func(now Time) { fired = append(fired, now) })
	})
	e.Run()
	if len(fired) != 1 || fired[0] != 12 {
		t.Fatalf("nested event fired at %v, want [12]", fired)
	}
	if e.Processed() != 2 {
		t.Fatalf("processed = %d, want 2", e.Processed())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10, func(Time) { ran = true })
	if !e.Cancel(ev) {
		t.Fatal("cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("second cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

// TestEngineCancelStaleHandle pins the generation counter: once an
// event has run (or been cancelled) and its object recycled for a new
// event, Cancel through the old handle must be a detected no-op — the
// new event stays scheduled and still fires.
func TestEngineCancelStaleHandle(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(10, func(Time) {})
	if !e.Step() {
		t.Fatal("step did not dispatch the first event")
	}
	ran := false
	fresh := e.Schedule(20, func(Time) { ran = true })
	if fresh.ev != stale.ev {
		t.Fatal("free list did not recycle the event object (test premise broken)")
	}
	if e.Cancel(stale) {
		t.Fatal("stale handle cancelled the recycled event")
	}
	e.Run()
	if !ran {
		t.Fatal("recycled event did not fire after stale Cancel")
	}

	// Same hazard through the Cancel path: cancel, recycle, stale cancel.
	h := e.Schedule(30, func(Time) {})
	if !e.Cancel(h) {
		t.Fatal("cancel of pending event failed")
	}
	ran2 := false
	h2 := e.Schedule(40, func(Time) { ran2 = true })
	if h2.ev != h.ev {
		t.Fatal("free list did not recycle the cancelled object (test premise broken)")
	}
	if e.Cancel(h) {
		t.Fatal("stale handle (via Cancel) removed the recycled event")
	}
	e.Run()
	if !ran2 {
		t.Fatal("recycled event did not fire")
	}
}

// TestEngineCancelThenScheduleReuse pins free-list reuse through the
// Cancel path: a cancelled event's object serves the next Schedule (the
// recycled counter moves) and the replacement dispatches normally.
func TestEngineCancelThenScheduleReuse(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(10, func(Time) { t.Error("cancelled event ran") })
	if !e.Cancel(h) {
		t.Fatal("cancel failed")
	}
	before := e.Recycled()
	var at Time
	e.Schedule(15, func(now Time) { at = now })
	if e.Recycled() != before+1 {
		t.Fatalf("recycled = %d, want %d (cancelled object not reused)", e.Recycled(), before+1)
	}
	if end := e.Run(); end != 15 || at != 15 {
		t.Fatalf("end = %v, fired at %v, want both 15", end, at)
	}
}

// TestEngineRunUntilExactDeadline pins the tie rule: events scheduled
// exactly at the deadline dispatch within RunUntil (At <= deadline),
// and events one tick later do not.
func TestEngineRunUntilExactDeadline(t *testing.T) {
	e := NewEngine()
	var ran []Time
	note := func(now Time) { ran = append(ran, now) }
	e.Schedule(10, note)
	e.Schedule(20, note) // exactly at the deadline: runs
	e.Schedule(20, note) // tie at the deadline: also runs, schedule order
	e.Schedule(21, note) // one tick past: stays queued
	if end := e.RunUntil(20); end != 20 {
		t.Fatalf("RunUntil returned %v, want 20", end)
	}
	if len(ran) != 3 || ran[1] != 20 || ran[2] != 20 {
		t.Fatalf("ran %v, want [10 20 20]", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want the post-deadline event", e.Pending())
	}
	e.Run()
	if len(ran) != 4 || ran[3] != 21 {
		t.Fatalf("post-deadline event: ran %v, want trailing 21", ran)
	}
}

// TestEngineSameTimeSeqDeterminism pins the same-time tie-break across
// free-list reuse and nested scheduling: events at one instant dispatch
// in schedule order even when their Event objects were recycled in a
// different order than they are scheduled.
func TestEngineSameTimeSeqDeterminism(t *testing.T) {
	e := NewEngine()
	// Seed and drain a few events so later Schedules pull recycled
	// objects from the free list in LIFO order.
	for i := 0; i < 4; i++ {
		e.Schedule(Time(i), func(Time) {})
	}
	e.Run()

	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Schedule(100, func(Time) {
			order = append(order, i)
			// Nested same-time events queue behind every already-pending
			// event at this instant.
			e.Schedule(100, func(Time) { order = append(order, 10+i) })
		})
	}
	e.Run()
	want := []int{0, 1, 2, 3, 10, 11, 12, 13}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.Schedule(at, func(now Time) { ran = append(ran, now) })
	}
	e.RunUntil(20)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want events at 5 and 15 only", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	e.Run()
	if len(ran) != 3 {
		t.Fatalf("remaining event did not run: %v", ran)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(Time) {})
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("bus")
	s1 := r.Acquire(0, 10)
	s2 := r.Acquire(0, 10) // contends: must wait for first
	s3 := r.Acquire(50, 5) // idle gap: starts at requested time
	if s1 != 0 || s2 != 10 || s3 != 50 {
		t.Fatalf("starts = %v %v %v, want 0 10 50", s1, s2, s3)
	}
	if r.BusyTime() != 25 {
		t.Fatalf("busy = %v, want 25", r.BusyTime())
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses())
	}
	if got := r.Utilization(100); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
}

func TestPoolParallelism(t *testing.T) {
	p := NewPool("cores", 3)
	// Three requests at time 0 run in parallel; the fourth waits.
	var starts []Time
	for i := 0; i < 4; i++ {
		starts = append(starts, p.Acquire(0, 100))
	}
	if starts[0] != 0 || starts[1] != 0 || starts[2] != 0 {
		t.Fatalf("first three starts = %v, want all 0", starts[:3])
	}
	if starts[3] != 100 {
		t.Fatalf("fourth start = %v, want 100", starts[3])
	}
}

func TestPoolPicksSoonestFreeUnit(t *testing.T) {
	p := NewPool("planes", 2)
	p.Acquire(0, 100) // unit A busy until 100
	p.Acquire(0, 10)  // unit B busy until 10
	if s := p.Acquire(0, 5); s != 10 {
		t.Fatalf("third request started at %v, want 10 (soonest-free unit)", s)
	}
}

func TestPipeBandwidthAndLatency(t *testing.T) {
	// 1 GB/s, 1 us fixed latency: 1000 bytes -> 1 us wire + 1 us latency.
	p := NewPipe("pcie", 1e9, Microseconds(1))
	done := p.Transfer(0, 1000)
	if want := Microseconds(2); done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
	// Second transfer queues behind the wire time but not the latency.
	done2 := p.Transfer(0, 1000)
	if want := Microseconds(3); done2 != want {
		t.Fatalf("done2 = %v, want %v", done2, want)
	}
	if p.BytesMoved() != 2000 {
		t.Fatalf("moved = %d, want 2000", p.BytesMoved())
	}
}

// Property: a resource never starts a reservation before the requested
// time nor before the previous reservation ends, regardless of request
// pattern.
func TestResourceCausalityProperty(t *testing.T) {
	f := func(reqs []struct {
		Earliest uint16
		Dur      uint8
	}) bool {
		r := NewResource("x")
		var prevEnd Time
		for _, q := range reqs {
			e, d := Time(q.Earliest), Duration(q.Dur)
			s := r.Acquire(e, d)
			if s < e || s < prevEnd {
				return false
			}
			prevEnd = s + d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pool busy time equals the sum of requested durations and no
// more than Units reservations ever overlap.
func TestPoolConservationProperty(t *testing.T) {
	f := func(durs []uint8, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		p := NewPool("x", k)
		var sum Duration
		type span struct{ s, e Time }
		var spans []span
		for _, d := range durs {
			dur := Duration(d)
			s := p.Acquire(0, dur)
			spans = append(spans, span{s, s + dur})
			sum += dur
		}
		if p.BusyTime() != sum {
			return false
		}
		// Check overlap bound at every span start.
		for _, a := range spans {
			overlap := 0
			for _, b := range spans {
				if b.s <= a.s && a.s < b.e {
					overlap++
				}
			}
			// a zero-length span at a.s may not count itself
			if overlap > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEventPoolSteadyStateAllocationFree pins the event free list: a
// schedule/dispatch cycle at steady state reuses recycled Event objects
// and allocates nothing.
func TestEventPoolSteadyStateAllocationFree(t *testing.T) {
	eng := NewEngine()
	fired := 0
	tick := func(now Time) { fired++ }
	// Warm the free list and the heap slice's capacity.
	for i := 0; i < 16; i++ {
		eng.Schedule(eng.Now(), tick)
		eng.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		eng.Schedule(eng.Now(), tick)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule/step cycle allocates %.1f objects, want 0", allocs)
	}
	if fired < 16 {
		t.Fatalf("events did not fire (fired=%d)", fired)
	}
}
