package sim

import (
	"testing"
	"testing/quick"
)

func TestClockConversions(t *testing.T) {
	c := NewClock(400e6) // 400 MHz -> 2.5 ns period
	if got, want := c.Period(), Nanoseconds(2.5); got != want {
		t.Fatalf("period = %v, want %v", got, want)
	}
	if got := c.Cycles(6); got != Nanoseconds(15) {
		t.Fatalf("6 cycles = %v, want 15ns", got)
	}
	if got := c.CyclesAt(Nanoseconds(15)); got != 6 {
		t.Fatalf("cycles in 15ns = %d, want 6", got)
	}
	if hz := c.Hz(); hz < 399e6 || hz > 401e6 {
		t.Fatalf("Hz = %v, want ~400e6", hz)
	}
}

func TestClockPanicsOnZeroFrequency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{Nanoseconds(2.5), "2.5ns"},
		{Microseconds(10), "10us"},
		{Milliseconds(60), "60ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(Time) { order = append(order, 3) })
	e.Schedule(10, func(Time) { order = append(order, 1) })
	e.Schedule(10, func(Time) { order = append(order, 2) }) // same time: schedule order
	end := e.Run()
	if end != 30 {
		t.Fatalf("end = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("dispatch order = %v, want [1 2 3]", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(5, func(now Time) {
		e.After(7, func(now Time) { fired = append(fired, now) })
	})
	e.Run()
	if len(fired) != 1 || fired[0] != 12 {
		t.Fatalf("nested event fired at %v, want [12]", fired)
	}
	if e.Processed() != 2 {
		t.Fatalf("processed = %d, want 2", e.Processed())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10, func(Time) { ran = true })
	if !e.Cancel(ev) {
		t.Fatal("cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("second cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.Schedule(at, func(now Time) { ran = append(ran, now) })
	}
	e.RunUntil(20)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want events at 5 and 15 only", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	e.Run()
	if len(ran) != 3 {
		t.Fatalf("remaining event did not run: %v", ran)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(Time) {})
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("bus")
	s1 := r.Acquire(0, 10)
	s2 := r.Acquire(0, 10) // contends: must wait for first
	s3 := r.Acquire(50, 5) // idle gap: starts at requested time
	if s1 != 0 || s2 != 10 || s3 != 50 {
		t.Fatalf("starts = %v %v %v, want 0 10 50", s1, s2, s3)
	}
	if r.BusyTime() != 25 {
		t.Fatalf("busy = %v, want 25", r.BusyTime())
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses())
	}
	if got := r.Utilization(100); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
}

func TestPoolParallelism(t *testing.T) {
	p := NewPool("cores", 3)
	// Three requests at time 0 run in parallel; the fourth waits.
	var starts []Time
	for i := 0; i < 4; i++ {
		starts = append(starts, p.Acquire(0, 100))
	}
	if starts[0] != 0 || starts[1] != 0 || starts[2] != 0 {
		t.Fatalf("first three starts = %v, want all 0", starts[:3])
	}
	if starts[3] != 100 {
		t.Fatalf("fourth start = %v, want 100", starts[3])
	}
}

func TestPoolPicksSoonestFreeUnit(t *testing.T) {
	p := NewPool("planes", 2)
	p.Acquire(0, 100) // unit A busy until 100
	p.Acquire(0, 10)  // unit B busy until 10
	if s := p.Acquire(0, 5); s != 10 {
		t.Fatalf("third request started at %v, want 10 (soonest-free unit)", s)
	}
}

func TestPipeBandwidthAndLatency(t *testing.T) {
	// 1 GB/s, 1 us fixed latency: 1000 bytes -> 1 us wire + 1 us latency.
	p := NewPipe("pcie", 1e9, Microseconds(1))
	done := p.Transfer(0, 1000)
	if want := Microseconds(2); done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
	// Second transfer queues behind the wire time but not the latency.
	done2 := p.Transfer(0, 1000)
	if want := Microseconds(3); done2 != want {
		t.Fatalf("done2 = %v, want %v", done2, want)
	}
	if p.BytesMoved() != 2000 {
		t.Fatalf("moved = %d, want 2000", p.BytesMoved())
	}
}

// Property: a resource never starts a reservation before the requested
// time nor before the previous reservation ends, regardless of request
// pattern.
func TestResourceCausalityProperty(t *testing.T) {
	f := func(reqs []struct {
		Earliest uint16
		Dur      uint8
	}) bool {
		r := NewResource("x")
		var prevEnd Time
		for _, q := range reqs {
			e, d := Time(q.Earliest), Duration(q.Dur)
			s := r.Acquire(e, d)
			if s < e || s < prevEnd {
				return false
			}
			prevEnd = s + d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pool busy time equals the sum of requested durations and no
// more than Units reservations ever overlap.
func TestPoolConservationProperty(t *testing.T) {
	f := func(durs []uint8, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		p := NewPool("x", k)
		var sum Duration
		type span struct{ s, e Time }
		var spans []span
		for _, d := range durs {
			dur := Duration(d)
			s := p.Acquire(0, dur)
			spans = append(spans, span{s, s + dur})
			sum += dur
		}
		if p.BusyTime() != sum {
			return false
		}
		// Check overlap bound at every span start.
		for _, a := range spans {
			overlap := 0
			for _, b := range spans {
				if b.s <= a.s && a.s < b.e {
					overlap++
				}
			}
			// a zero-length span at a.s may not count itself
			if overlap > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEventPoolSteadyStateAllocationFree pins the event free list: a
// schedule/dispatch cycle at steady state reuses recycled Event objects
// and allocates nothing.
func TestEventPoolSteadyStateAllocationFree(t *testing.T) {
	eng := NewEngine()
	fired := 0
	tick := func(now Time) { fired++ }
	// Warm the free list and the heap slice's capacity.
	for i := 0; i < 16; i++ {
		eng.Schedule(eng.Now(), tick)
		eng.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		eng.Schedule(eng.Now(), tick)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule/step cycle allocates %.1f objects, want 0", allocs)
	}
	if fired < 16 {
		t.Fatalf("events did not fire (fired=%d)", fired)
	}
}
