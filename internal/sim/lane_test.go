package sim

import (
	"errors"
	"testing"
)

// fakeOp is one operation of a synthetic lane: it advances the lane's
// clock by dt; shared ops must execute as heads (coordinator-serial),
// private ops may be absorbed by a tail.
type fakeOp struct {
	dt     Duration
	shared bool
}

// dispatchLog records every StepHead call as (lane, time). Heads run
// only on the coordinator goroutine, so plain appends model the shared
// state lanes coordinate over; byte-equal logs across worker counts is
// exactly the determinism contract.
type dispatchLog struct {
	lanes []int
	times []Time
}

type fakeLane struct {
	id      int
	now     Time
	ops     []fakeOp
	pos     int
	log     *dispatchLog
	headErr int // error on the Nth StepHead (0 = never)
	tailErr int // error after absorbing N ops in one TailRun (0 = never)
	heads   int
}

func (l *fakeLane) Now() Time { return l.now }

func (l *fakeLane) StepHead() (bool, error) {
	l.log.lanes = append(l.log.lanes, l.id)
	l.log.times = append(l.log.times, l.now)
	if l.pos >= len(l.ops) {
		return false, nil
	}
	l.heads++
	if l.headErr > 0 && l.heads == l.headErr {
		return false, errors.New("head boom")
	}
	l.now += l.ops[l.pos].dt
	l.pos++
	return true, nil
}

func (l *fakeLane) TailRun(publish func(Time)) (int64, error) {
	var extra int64
	for l.pos < len(l.ops) && !l.ops[l.pos].shared {
		l.now += l.ops[l.pos].dt
		l.pos++
		extra++
		if publish != nil {
			publish(l.now)
		}
		if l.tailErr > 0 && extra == int64(l.tailErr) {
			return extra, errors.New("tail boom")
		}
	}
	return extra, nil
}

// makeLanes builds n deterministic lanes of opsEach ops from a small
// LCG (about one op in three is shared).
func makeLanes(n, opsEach int, log *dispatchLog) ([]LaneModel, int) {
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	lanes := make([]LaneModel, n)
	total := 0
	for i := 0; i < n; i++ {
		ops := make([]fakeOp, opsEach)
		for j := range ops {
			r := next()
			ops[j] = fakeOp{dt: Duration(r%50 + 1), shared: r%3 == 0}
		}
		lanes[i] = &fakeLane{id: i, ops: ops, log: log}
		total += opsEach
	}
	return lanes, total
}

func TestRunLanesSerialInvariants(t *testing.T) {
	log := &dispatchLog{}
	lanes, total := makeLanes(5, 200, log)
	st, err := RunLanes(lanes, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Every op is dispatched or absorbed, plus one exhausted dispatch
	// per lane — the legacy loop's count.
	if want := int64(total + len(lanes)); st.Events != want {
		t.Fatalf("events = %d, want %d", st.Events, want)
	}
	var sum int64
	for _, n := range st.LaneEvents {
		sum += n
	}
	if sum != st.Events {
		t.Fatalf("lane events sum to %d, want %d", sum, st.Events)
	}
	// Dispatch times are non-decreasing: each dispatched head is the
	// global minimum pending head.
	for i := 1; i < len(log.times); i++ {
		if log.times[i] < log.times[i-1] {
			t.Fatalf("dispatch %d at %v after %v: order not monotonic", i, log.times[i], log.times[i-1])
		}
	}
	if st.Windows <= 0 || st.Workers != 1 {
		t.Fatalf("stats = %+v, want positive windows and workers=1", st)
	}
	// Folded is the tail-absorbed share: everything that was not a
	// coordinator dispatch. Heads dispatched = dispatch-log length.
	if want := st.Events - int64(len(log.lanes)); st.Folded != want {
		t.Fatalf("folded = %d, want %d (events %d - %d dispatches)", st.Folded, want, st.Events, len(log.lanes))
	}
	var parked int64
	for _, n := range st.LaneParkedWindows {
		parked += n
	}
	if len(st.LaneParkedWindows) != len(lanes) || parked <= 0 {
		t.Fatalf("lane parked windows = %v, want %d positive entries", st.LaneParkedWindows, len(lanes))
	}
}

// TestRunLanesParallelMatchesSerial is the executor's determinism gate:
// the head dispatch sequence and every deterministic statistic must be
// identical at any worker count, across repeated runs.
func TestRunLanesParallelMatchesSerial(t *testing.T) {
	refLog := &dispatchLog{}
	refLanes, _ := makeLanes(6, 300, refLog)
	ref, err := RunLanes(refLanes, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 6, 32} {
		for rep := 0; rep < 3; rep++ {
			log := &dispatchLog{}
			lanes, _ := makeLanes(6, 300, log)
			st, err := RunLanes(lanes, workers, 40)
			if err != nil {
				t.Fatal(err)
			}
			if st.Events != ref.Events || st.Folded != ref.Folded ||
				st.Windows != ref.Windows || st.BarrierStalls != ref.BarrierStalls {
				t.Fatalf("workers=%d rep=%d: stats %+v, want %+v", workers, rep, st, ref)
			}
			for i := range ref.LaneEvents {
				if st.LaneEvents[i] != ref.LaneEvents[i] {
					t.Fatalf("workers=%d: lane %d events = %d, want %d", workers, i, st.LaneEvents[i], ref.LaneEvents[i])
				}
				if st.LaneParkedWindows[i] != ref.LaneParkedWindows[i] {
					t.Fatalf("workers=%d: lane %d parked windows = %d, want %d", workers, i, st.LaneParkedWindows[i], ref.LaneParkedWindows[i])
				}
			}
			if len(log.lanes) != len(refLog.lanes) {
				t.Fatalf("workers=%d: %d dispatches, want %d", workers, len(log.lanes), len(refLog.lanes))
			}
			for i := range refLog.lanes {
				if log.lanes[i] != refLog.lanes[i] || log.times[i] != refLog.times[i] {
					t.Fatalf("workers=%d rep=%d: dispatch %d = (lane %d, %v), want (lane %d, %v)",
						workers, rep, i, log.lanes[i], log.times[i], refLog.lanes[i], refLog.times[i])
				}
			}
			if wantW := min(workers, 6); st.Workers != wantW {
				t.Fatalf("workers = %d, want clamped %d", st.Workers, wantW)
			}
		}
	}
}

func TestRunLanesErrorPropagation(t *testing.T) {
	for _, workers := range []int{1, 3} {
		log := &dispatchLog{}
		lanes, _ := makeLanes(4, 50, log)
		lanes[2].(*fakeLane).headErr = 5
		if _, err := RunLanes(lanes, workers, 40); err == nil || err.Error() != "head boom" {
			t.Fatalf("workers=%d: head error = %v, want head boom", workers, err)
		}

		log = &dispatchLog{}
		lanes, _ = makeLanes(4, 50, log)
		lanes[1].(*fakeLane).tailErr = 2
		if _, err := RunLanes(lanes, workers, 40); err == nil || err.Error() != "tail boom" {
			t.Fatalf("workers=%d: tail error = %v, want tail boom", workers, err)
		}
	}
}

func TestRunLanesEmpty(t *testing.T) {
	st, err := RunLanes(nil, 4, 40)
	if err != nil || st.Events != 0 {
		t.Fatalf("empty run: %+v, %v", st, err)
	}
}
