package sim

// CopyFrom makes r's timeline state identical to src's. The diagnostic
// name is construction-time identity and is not copied: checkpoint forks
// build a fresh component graph and then clone the mutable state into it,
// so both sides already carry the same names.
func (r *Resource) CopyFrom(src *Resource) {
	r.nextFree = src.nextFree
	r.busy = src.busy
	r.uses = src.uses
}

// CopyFrom makes p's per-unit timelines identical to src's. Both pools
// must have been built with the same unit count.
func (p *Pool) CopyFrom(src *Pool) {
	if len(p.free) != len(src.free) {
		panic("sim: pool fork unit-count mismatch")
	}
	copy(p.free, src.free)
	p.busy = src.busy
	p.uses = src.uses
}

// CopyFrom makes p's wire occupancy and transfer totals identical to
// src's. Bandwidth and latency are construction-time configuration and
// must already match.
func (p *Pipe) CopyFrom(src *Pipe) {
	p.res.CopyFrom(src.res)
	p.moved = src.moved
}
