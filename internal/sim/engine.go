package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a fixed simulated time.
type Event struct {
	At Time
	Fn func(now Time)

	seq int64  // tie-breaker: events at the same time run in schedule order
	idx int    // heap index
	gen uint64 // incremented every time the object is freed for reuse
}

// Handle identifies one scheduled event for Cancel. It pairs the event
// object with the generation it was scheduled under, so a handle held
// past dispatch (or past its own Cancel) is detectably stale even after
// the free list has reused the object for a different event.
type Handle struct {
	ev  *Event
	gen uint64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulation kernel. Components
// schedule callbacks; Run dispatches them in (time, schedule-order).
// Engine is not safe for concurrent use: the whole simulation runs on one
// goroutine, which is what makes it deterministic.
type Engine struct {
	now      Time
	queue    eventHeap
	nextID   int64
	ran      int64
	recycled int64 // Schedule calls served from the free list

	// free is the event free-list: dispatched and cancelled events are
	// recycled by the next Schedule, so a steady-state simulation stops
	// allocating Event objects. Each recycle bumps the object's
	// generation, so a Handle held past dispatch or cancellation no
	// longer matches and Cancel on it is a detected no-op instead of
	// silently removing whatever event reused the object.
	free []*Event
}

// NewEngine returns an engine with the simulated clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have been dispatched so far.
func (e *Engine) Processed() int64 { return e.ran }

// Recycled returns how many Schedule calls reused a free-list Event
// instead of allocating — the observability counter that watches the PR 2
// zero-allocation event pool staying effective.
func (e *Engine) Recycled() int64 { return e.recycled }

// Pending returns how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at the absolute time at. Scheduling in the past is a
// programming error in a causal simulation, so it panics.
func (e *Engine) Schedule(at Time, fn func(now Time)) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		ev.At, ev.Fn, ev.seq = at, fn, e.nextID
		e.recycled++
	} else {
		ev = &Event{At: at, Fn: fn, seq: e.nextID}
	}
	e.nextID++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After runs fn after delay d.
func (e *Engine) After(d Duration, fn func(now Time)) Handle {
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-run or
// already-cancelled event — including through a handle whose object the
// free list has since reused for a different event — is a no-op and
// reports false.
func (e *Engine) Cancel(h Handle) bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen ||
		ev.idx < 0 || ev.idx >= len(e.queue) || e.queue[ev.idx] != ev {
		return false
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
	ev.Fn = nil
	ev.gen++
	e.free = append(e.free, ev)
	return true
}

// Step dispatches the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.idx = -1
	e.now = ev.At
	e.ran++
	fn := ev.Fn
	// Recycle before dispatch so fn's own Schedule call reuses the
	// object (the common self-rescheduling pattern allocates nothing);
	// the generation bump invalidates any handle still pointing here.
	ev.Fn = nil
	ev.gen++
	e.free = append(e.free, ev)
	fn(e.now)
	return true
}

// Run dispatches events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil dispatches events with At <= deadline, then sets the clock to
// deadline if the simulation had not already passed it.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Advance moves the clock forward by d without running events scheduled in
// that window; it is intended for test setup, not for model code.
func (e *Engine) Advance(d Duration) { e.now += d }
