// Package sim provides the discrete-event simulation substrate used by
// every timing model in this repository: a picosecond clock, an event
// queue, and resource timelines that serialize access to shared hardware
// structures (buses, memory partitions, firmware cores, DMA engines).
//
// All models in dramless are deterministic: given the same configuration
// and workload they produce bit-identical schedules, which keeps the
// experiment harness reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated point in time, measured in integer picoseconds from
// the start of the simulation. Picosecond resolution lets us express the
// LPDDR2-NVM strobe parameters (tDQSS = 0.75 ns) exactly while an int64
// still covers more than 100 days of simulated time.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Nanoseconds returns a duration of n nanoseconds.
func Nanoseconds(n float64) Duration { return Duration(n * float64(Nanosecond)) }

// Microseconds returns a duration of n microseconds.
func Microseconds(n float64) Duration { return Duration(n * float64(Microsecond)) }

// Milliseconds returns a duration of n milliseconds.
func Milliseconds(n float64) Duration { return Duration(n * float64(Millisecond)) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos reports t as floating-point nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Std converts t to a time.Duration (nanosecond resolution, rounding down).
func (t Time) Std() time.Duration { return time.Duration(t/Nanosecond) * time.Nanosecond }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanos())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Clock converts between cycle counts and simulated time for a component
// running at a fixed frequency.
type Clock struct {
	period Duration // picoseconds per cycle
}

// NewClock returns a clock with the given frequency in hertz.
// NewClock panics if hz is not positive, since a zero-frequency component
// is always a configuration error.
func NewClock(hz float64) Clock {
	if hz <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock frequency %v", hz))
	}
	return Clock{period: Duration(float64(Second) / hz)}
}

// NewClockPeriod returns a clock with the given period.
func NewClockPeriod(period Duration) Clock {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock period %v", period))
	}
	return Clock{period: period}
}

// Period returns the duration of one cycle.
func (c Clock) Period() Duration { return c.period }

// Hz returns the clock frequency in hertz.
func (c Clock) Hz() float64 { return float64(Second) / float64(c.period) }

// Cycles returns the duration of n cycles.
func (c Clock) Cycles(n int64) Duration { return Duration(n) * c.period }

// CyclesAt returns how many full cycles fit in d.
func (c Clock) CyclesAt(d Duration) int64 { return int64(d / c.period) }
