// Lane executor: per-resource event lanes under a conservative windowed
// coordinator.
//
// The legacy multi-core interleave (accel.runAll) is one serial loop
// that repeatedly steps the model with the smallest local clock. The
// lane executor splits each model's step into a *head* — the one
// operation that may touch shared state, dispatched serially by the
// coordinator in exactly the legacy (time, lane) order — and a *tail*
// that provably touches only lane-private state and therefore may run
// on the lane's own goroutine while other lanes' heads dispatch.
//
// Determinism does not rest on a fixed barrier cadence: the coordinator
// dispatches a parked head only when no in-flight tail can still park
// at an earlier (time, lane) key, using each running lane's published
// frontier (a monotonic lower bound on its park time). A dispatched
// head is therefore always the global minimum pending head — the same
// head the legacy loop would pick — so the dispatch sequence, and with
// it every shared-resource arrival order, is byte-identical to the
// serial engine regardless of goroutine timing. The horizon parameter
// only feeds the deterministic window/stall statistics; safety never
// depends on it.
package sim

import "sync/atomic"

// LaneModel is one per-resource event lane (a PE core in the
// accelerator). The executor owns the calling discipline: StepHead runs
// only on the coordinator goroutine, TailRun runs on at most one
// goroutine at a time per lane, and the two never overlap for the same
// lane.
type LaneModel interface {
	// Now returns the lane's local clock. It is read by the coordinator
	// only while the lane is parked (no TailRun in flight).
	Now() Time
	// StepHead executes the lane's next head operation — the one that
	// may touch shared state — and reports false once the lane is
	// exhausted. It is always invoked serially, in global (Now, lane)
	// order.
	StepHead() (bool, error)
	// TailRun advances the lane past its head while execution provably
	// stays on lane-private state, returning how many additional head
	// boundaries it absorbed inline (each one an event the legacy loop
	// would have dispatched separately). publish, when non-nil, must be
	// called with non-decreasing local times as the lane advances; the
	// published value is a lower bound on the lane's eventual park time.
	TailRun(publish func(Time)) (int64, error)
}

// LaneStats summarizes one RunLanes execution. All fields except
// Workers are deterministic functions of the simulation alone — equal
// across worker counts — so they are safe to export as counters.
type LaneStats struct {
	// Events counts dispatched events: one per head (including each
	// lane's final exhausted dispatch) plus one per head absorbed
	// inline by a tail. It equals the legacy loop's dispatch count.
	Events int64
	// LaneEvents is the per-lane share of Events.
	LaneEvents []int64
	// Folded counts the heads absorbed inline by tails — the share of
	// Events that never cost a coordinator dispatch. Folded/Events is
	// the fold-coverage ratio the private-access classifier drives up.
	Folded int64
	// Windows counts distinct lookahead-horizon buckets the
	// (non-decreasing) dispatch-time sequence visited.
	Windows int64
	// BarrierStalls counts cross-lane head handoffs within one horizon
	// — dispatches a fixed-barrier executor would have serialized on.
	BarrierStalls int64
	// LaneParkedWindows[i] counts the distinct horizon buckets in which
	// lane i parked and took a coordinated head dispatch — the windows
	// the lane could not cross on fold coverage alone.
	LaneParkedWindows []int64
	// Workers is the effective tail-goroutine bound (1 = serial).
	Workers int
}

// dispatchMeter derives the window/stall statistics from the dispatch
// sequence. Both are functions of (lane, time) pairs that are identical
// at every worker count, so the derived counters are too.
type dispatchMeter struct {
	horizon  Duration
	started  bool
	bucket   int64
	lastLane int
	lastT    Time
	windows  int64
	stalls   int64
	// Per-lane parked-window accounting: the bucket of each lane's
	// previous dispatch (laneSeen gates the first), counted into
	// laneParked on every new bucket the lane parks in.
	laneBucket []int64
	laneSeen   []bool
	laneParked []int64
}

func newDispatchMeter(horizon Duration, lanes int) dispatchMeter {
	return dispatchMeter{
		horizon:    horizon,
		laneBucket: make([]int64, lanes),
		laneSeen:   make([]bool, lanes),
		laneParked: make([]int64, lanes),
	}
}

func (m *dispatchMeter) note(lane int, t Time) {
	if m.horizon <= 0 {
		return
	}
	b := int64(t) / int64(m.horizon)
	if !m.laneSeen[lane] || m.laneBucket[lane] != b {
		m.laneSeen[lane] = true
		m.laneBucket[lane] = b
		m.laneParked[lane]++
	}
	if !m.started {
		m.started = true
		m.windows = 1
		m.bucket, m.lastLane, m.lastT = b, lane, t
		return
	}
	if b != m.bucket {
		m.windows++
		m.bucket = b
	}
	if lane != m.lastLane && t-m.lastT < m.horizon {
		m.stalls++
	}
	m.lastLane, m.lastT = lane, t
}

// RunLanes drives the lanes to exhaustion. workers bounds concurrent
// TailRun goroutines (clamped to the lane count; <= 1 selects the
// fully serial mode, which still beats a plain step loop because tails
// absorb private head boundaries without a scheduler round trip).
// horizon is the minimum cross-lane communication latency; it shapes
// only the Windows/BarrierStalls statistics. Results are byte-identical
// at every workers value.
func RunLanes(lanes []LaneModel, workers int, horizon Duration) (LaneStats, error) {
	if len(lanes) == 0 {
		return LaneStats{Workers: 1}, nil
	}
	if workers > len(lanes) {
		workers = len(lanes)
	}
	if workers <= 1 {
		return runLanesSerial(lanes, horizon)
	}
	return runLanesParallel(lanes, workers, horizon)
}

// runLanesSerial is the single-goroutine mode: the legacy min-scan
// dispatch order with tails executed inline.
func runLanesSerial(lanes []LaneModel, horizon Duration) (LaneStats, error) {
	st := LaneStats{Workers: 1, LaneEvents: make([]int64, len(lanes))}
	m := newDispatchMeter(horizon, len(lanes))
	active := make([]int, len(lanes))
	for i := range lanes {
		active[i] = i
	}
	for len(active) > 0 {
		best := 0
		for i := 1; i < len(active); i++ {
			a, b := active[i], active[best]
			if lanes[a].Now() < lanes[b].Now() ||
				(lanes[a].Now() == lanes[b].Now() && a < b) {
				best = i
			}
		}
		id := active[best]
		m.note(id, lanes[id].Now())
		st.Events++
		st.LaneEvents[id]++
		ok, err := lanes[id].StepHead()
		if err != nil {
			return st, err
		}
		if !ok {
			active[best] = active[len(active)-1]
			active = active[:len(active)-1]
			continue
		}
		extra, err := lanes[id].TailRun(nil)
		st.Events += extra
		st.Folded += extra
		st.LaneEvents[id] += extra
		if err != nil {
			return st, err
		}
	}
	st.Windows, st.BarrierStalls = m.windows, m.stalls
	st.LaneParkedWindows = m.laneParked
	return st, nil
}

// lane states of the parallel coordinator.
const (
	laneParked  = iota // no tail in flight; Now() is its next head time
	laneRunning        // a TailRun is in flight on the lane's worker
	laneDone           // StepHead reported exhaustion
)

func runLanesParallel(lanes []LaneModel, workers int, horizon Duration) (LaneStats, error) {
	n := len(lanes)
	st := LaneStats{Workers: workers, LaneEvents: make([]int64, n)}
	m := newDispatchMeter(horizon, n)

	type parkMsg struct {
		lane  int
		extra int64
		err   error
	}
	// frontier[i] is lane i's published local time while running: a
	// monotonic lower bound on where its tail will park. Atomic because
	// the coordinator polls it mid-tail; a stale read is still a valid
	// (smaller) bound, so no further synchronization is needed.
	frontier := make([]atomic.Int64, n)
	work := make([]chan struct{}, n)
	park := make(chan parkMsg, n)
	for i := range lanes {
		work[i] = make(chan struct{}, 1)
		go func(i int) {
			publish := func(t Time) { frontier[i].Store(int64(t)) }
			for range work[i] {
				extra, err := lanes[i].TailRun(publish)
				park <- parkMsg{lane: i, extra: extra, err: err}
			}
		}(i)
	}
	defer func() {
		for i := range work {
			close(work[i])
		}
	}()

	absorb := func(msg parkMsg) {
		st.Events += msg.extra
		st.Folded += msg.extra
		st.LaneEvents[msg.lane] += msg.extra
	}

	state := make([]int, n)
	remaining, inflight := n, 0
	var firstErr error
	for remaining > 0 && firstErr == nil {
		// Earliest parked head by (time, lane).
		best, bt := -1, Time(0)
		for i, s := range state {
			if s != laneParked {
				continue
			}
			if t := lanes[i].Now(); best < 0 || t < bt || (t == bt && i < best) {
				best, bt = i, t
			}
		}
		// Safe to dispatch iff no in-flight tail can still park at a
		// smaller (time, lane) key: then (bt, best) is the global
		// minimum pending head, exactly what the serial loop dispatches.
		safe := best >= 0 && inflight < workers
		if safe {
			for i, s := range state {
				if s != laneRunning {
					continue
				}
				if f := Time(frontier[i].Load()); f < bt || (f == bt && i < best) {
					safe = false
					break
				}
			}
		}
		if !safe {
			// A tail is always in flight here, and tails always park.
			msg := <-park
			inflight--
			state[msg.lane] = laneParked
			absorb(msg)
			firstErr = msg.err
			continue
		}
		m.note(best, bt)
		st.Events++
		st.LaneEvents[best]++
		ok, err := lanes[best].StepHead()
		if err != nil {
			firstErr = err
			break
		}
		if !ok {
			state[best] = laneDone
			remaining--
			continue
		}
		frontier[best].Store(int64(lanes[best].Now()))
		state[best] = laneRunning
		inflight++
		work[best] <- struct{}{}
	}
	// Drain in-flight tails so every absorbed event is counted and no
	// worker is left sending while channels close.
	for inflight > 0 {
		msg := <-park
		inflight--
		state[msg.lane] = laneParked
		absorb(msg)
		if firstErr == nil {
			firstErr = msg.err
		}
	}
	st.Windows, st.BarrierStalls = m.windows, m.stalls
	st.LaneParkedWindows = m.laneParked
	return st, firstErr
}
