package lpddr

import "fmt"

// Op is the operation class of an LPDDR2-NVM command.
type Op uint8

// Command opcodes. The FPGA command generator disassembles every memory
// request into a sequence of these (Section V-B of the paper).
const (
	// OpNop is an idle bus cycle.
	OpNop Op = iota
	// OpPreactive selects a RAB with the 2-bit BA field and stores the
	// upper row address into it (first addressing phase).
	OpPreactive
	// OpActivate delivers the lower row address; the device composes the
	// full row address from the selected RAB and senses the row into the
	// paired RDB (second addressing phase).
	OpActivate
	// OpRead delivers a column address and pulls a data burst out of the
	// selected RDB (third addressing phase, read flavour).
	OpRead
	// OpWrite delivers a column address and pushes a data burst toward
	// the overlay window / program buffer (third addressing phase, write
	// flavour). LPDDR2-NVM devices reject writes that target raw array
	// addresses; only overlay-window ranges are writable.
	OpWrite
	// OpMRW is a mode-register write used by the initializer for boot-up:
	// auto-initialization enable, on-die impedance calibration, burst
	// length and overlay window base address setup.
	OpMRW
	// OpMRR is a mode-register read (status polling during boot).
	OpMRR

	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpNop:
		return "NOP"
	case OpPreactive:
		return "PREACTIVE"
	case OpActivate:
		return "ACTIVATE"
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpMRW:
		return "MRW"
	case OpMRR:
		return "MRR"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Command is one decoded LPDDR2-NVM command.
type Command struct {
	Op Op
	// BA selects one of up to four RAB/RDB pairs (2-bit field).
	BA uint8
	// Addr is the op-dependent address payload: upper row address for
	// PREACTIVE, lower row address for ACTIVATE, column address for
	// READ/WRITE, register number for MRW/MRR. At most 14 bits.
	Addr uint32
}

// Packet is the 20-bit DDR signal packet the PRAM PHY ships per command:
// operation type in the top 4 bits, row-buffer address in 2 bits, and a
// 14-bit address field (the paper's 2~4-bit op, 2-bit buffer address and
// 7~15-bit target address, realized with fixed field widths).
type Packet uint32

const (
	packetBits = 20
	opShift    = 16
	opMask     = 0xF
	baShift    = 14
	baMask     = 0x3
	addrMask   = 0x3FFF // 14 bits
)

// Encode packs a command into its signal packet. It returns an error when
// a field does not fit, which would silently corrupt the command on a real
// bus - exactly the bug class the checker exists to catch.
func Encode(c Command) (Packet, error) {
	if c.Op >= numOps {
		return 0, fmt.Errorf("lpddr: unknown opcode %d", c.Op)
	}
	if c.BA > baMask {
		return 0, fmt.Errorf("lpddr: BA %d exceeds 2-bit field", c.BA)
	}
	if c.Addr > addrMask {
		return 0, fmt.Errorf("lpddr: address %#x exceeds 14-bit field for %v", c.Addr, c.Op)
	}
	return Packet(uint32(c.Op)<<opShift | uint32(c.BA)<<baShift | c.Addr), nil
}

// MustEncode is Encode for commands known to be in range; it panics on
// error and is intended for tests and table construction.
func MustEncode(c Command) Packet {
	p, err := Encode(c)
	if err != nil {
		panic(err)
	}
	return p
}

// Decode unpacks a signal packet.
func Decode(p Packet) (Command, error) {
	if uint32(p) >= 1<<packetBits {
		return Command{}, fmt.Errorf("lpddr: packet %#x exceeds 20 bits", uint32(p))
	}
	c := Command{
		Op:   Op(uint32(p) >> opShift & opMask),
		BA:   uint8(uint32(p) >> baShift & baMask),
		Addr: uint32(p) & addrMask,
	}
	if c.Op >= numOps {
		return Command{}, fmt.Errorf("lpddr: packet %#x has unknown opcode %d", uint32(p), c.Op)
	}
	return c, nil
}

// String implements fmt.Stringer.
func (c Command) String() string {
	switch c.Op {
	case OpNop:
		return "NOP"
	case OpMRW, OpMRR:
		return fmt.Sprintf("%v reg=%#x", c.Op, c.Addr)
	default:
		return fmt.Sprintf("%v ba=%d addr=%#x", c.Op, c.BA, c.Addr)
	}
}
