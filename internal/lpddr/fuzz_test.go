package lpddr

import "testing"

// FuzzDecode hammers the packet decoder: no input may panic, and every
// successfully decoded command must re-encode to the same packet.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(MustEncode(Command{Op: OpPreactive, BA: 2, Addr: 0x1FFF})))
	f.Add(uint32(MustEncode(Command{Op: OpWrite, BA: 1, Addr: 0x3FFF})))
	f.Add(uint32(1<<20 - 1))
	f.Add(uint32(1 << 20))
	f.Fuzz(func(t *testing.T, raw uint32) {
		c, err := Decode(Packet(raw))
		if err != nil {
			return
		}
		p, err := Encode(c)
		if err != nil {
			t.Fatalf("decoded command %v does not re-encode: %v", c, err)
		}
		if uint32(p) != raw {
			t.Fatalf("round trip %#x -> %v -> %#x", raw, c, uint32(p))
		}
	})
}

// FuzzTracker feeds arbitrary command streams: the protocol checker must
// never panic and never report an activated pair it did not see activate.
func FuzzTracker(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0})
	f.Add([]byte{3, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		tr := NewTracker(4)
		for i := 0; i+1 < len(stream); i += 2 {
			c := Command{Op: Op(stream[i] % uint8(numOps)), BA: stream[i+1] % 4}
			err := tr.Observe(c)
			switch c.Op {
			case OpActivate:
				if err == nil && !tr.Loaded(c.BA) {
					t.Fatal("activate accepted without a loaded RAB")
				}
			case OpRead, OpWrite:
				if err == nil && !tr.Activated(c.BA) {
					t.Fatal("data phase accepted without activation")
				}
			}
		}
	})
}
