// Package lpddr models the LPDDR2-NVM memory interface protocol
// (JESD209-2B) that the DRAM-less PRAM subsystem speaks: the three-phase
// addressing command set (pre-active, activate, read/write), the 20-bit
// double-data-rate signal packets the FPGA command generator emits, and
// the interface timing parameters characterized in Table II of the paper.
package lpddr

import (
	"fmt"

	"dramless/internal/sim"
)

// Params holds the characterized LPDDR2-NVM interface timing of the 3x nm
// multi-partition PRAM engineering samples (Table II of the paper) plus
// the device-level program/erase behaviour discussed in Sections II and V.
//
// Interface latencies expressed in cycles are relative to TCK (400 MHz
// interface clock, 2.5 ns). tDQSCK and tDQSS are specified as ranges in
// the standard; the model uses the deterministic midpoint so simulations
// are reproducible.
type Params struct {
	// Interface clock period (tCK). 2.5 ns at 400 MHz.
	TCK sim.Duration

	// RLCycles is the read latency in cycles between a read-phase command
	// and the first data strobe (RL = 6).
	RLCycles int
	// WLCycles is the write latency in cycles between a write-phase
	// command and the first write data (WL = 3).
	WLCycles int
	// TRPCycles is the pre-active time in cycles: how long the target RAB
	// takes to latch an upper row address (tRP = 3, the LPDDR2-NVM
	// analogue of the row-precharge time).
	TRPCycles int
	// TRCD is the activate time: composing the full row address from the
	// RAB contents plus the lower row address, decoding it, and sensing
	// the 256-bit row into the RDB (tRCD = 80 ns).
	TRCD sim.Duration
	// TDQSCK is the data strobe output access time (2.5-5.5 ns range;
	// midpoint 4 ns used).
	TDQSCK sim.Duration
	// TDQSS is the write strobe alignment time (0.75-1.25 ns range;
	// midpoint 1 ns used).
	TDQSS sim.Duration
	// TWRA is the write recovery time after a program-buffer burst
	// (tWRA = 15 ns).
	TWRA sim.Duration
	// BurstLen is the data burst length in 16-bit beats per read/write
	// phase command: BL4, BL8 or BL16 -> tBURST of 4/8/16 half-cycles...
	// The device transfers two beats per clock (DDR), so a BL16 burst
	// occupies 8 interface clocks.
	BurstLen int

	// NumRAB is the number of row address buffer / row data buffer pairs
	// per PRAM module (4).
	NumRAB int
	// RDBBytes is the capacity of one row data buffer: the 256-bit row
	// width of the multi-partition bank (32 B).
	RDBBytes int
	// Partitions is the number of array partitions per bank (16).
	Partitions int
	// Channels and Packages describe the subsystem topology: 2 channels,
	// each with 16 PRAM packages (Table II).
	Channels int
	Packages int

	// CellProgram is the time the PRAM array needs to program a fresh
	// (pristine) word: a SET-dominated pulse train (~10 us).
	CellProgram sim.Duration
	// CellOverwriteExtra is the additional RESET sequence an overwrite of
	// already-programmed cells requires (~8 us, for the paper's
	// "overwrites require extra 8 us", i.e. 18 us total).
	CellOverwriteExtra sim.Duration
	// CellSetOnly is the program time when the target cells were
	// selectively erased (all-zero, pristine) in advance, so only SET
	// pulses are needed. The paper reports 44-55% overwrite latency
	// reduction; SET-only programming of an erased word costs the fresh
	// program time (10 us vs 18 us = 44% reduction).
	CellSetOnly sim.Duration
	// CellErase is the latency of a bulk erase operation, measured at
	// ~60 ms on the engineering samples - 3000x an overwrite - which is
	// why DRAM-less never erases on the data path and uses selective
	// erasing instead.
	CellErase sim.Duration
}

// Default returns the Table II parameter set for the 3x nm multi-partition
// PRAM used throughout the paper.
func Default() Params {
	return Params{
		TCK:       sim.Nanoseconds(2.5),
		RLCycles:  6,
		WLCycles:  3,
		TRPCycles: 3,
		TRCD:      sim.Nanoseconds(80),
		TDQSCK:    sim.Nanoseconds(4), // 2.5-5.5 ns range midpoint
		TDQSS:     sim.Nanoseconds(1), // 0.75-1.25 ns range midpoint
		TWRA:      sim.Nanoseconds(15),
		BurstLen:  16,

		NumRAB:     4,
		RDBBytes:   32,
		Partitions: 16,
		Channels:   2,
		Packages:   16,

		CellProgram:        sim.Microseconds(10),
		CellOverwriteExtra: sim.Microseconds(8),
		CellSetOnly:        sim.Microseconds(10),
		CellErase:          sim.Milliseconds(60),
	}
}

// Validate reports a descriptive error for parameter combinations the
// model cannot represent.
func (p Params) Validate() error {
	switch {
	case p.TCK <= 0:
		return fmt.Errorf("lpddr: TCK must be positive, got %v", p.TCK)
	case p.RLCycles <= 0 || p.WLCycles <= 0 || p.TRPCycles <= 0:
		return fmt.Errorf("lpddr: RL/WL/tRP cycles must be positive (got %d/%d/%d)",
			p.RLCycles, p.WLCycles, p.TRPCycles)
	case p.TRCD <= 0:
		return fmt.Errorf("lpddr: tRCD must be positive, got %v", p.TRCD)
	case p.BurstLen != 4 && p.BurstLen != 8 && p.BurstLen != 16:
		return fmt.Errorf("lpddr: burst length must be 4, 8 or 16, got %d", p.BurstLen)
	case p.NumRAB <= 0 || p.NumRAB > 4:
		return fmt.Errorf("lpddr: NumRAB must be 1..4 (2-bit BA field), got %d", p.NumRAB)
	case p.RDBBytes <= 0:
		return fmt.Errorf("lpddr: RDBBytes must be positive, got %d", p.RDBBytes)
	case p.Partitions <= 0:
		return fmt.Errorf("lpddr: Partitions must be positive, got %d", p.Partitions)
	case p.Channels <= 0 || p.Packages <= 0:
		return fmt.Errorf("lpddr: topology must be positive (channels=%d packages=%d)",
			p.Channels, p.Packages)
	case p.CellProgram <= 0 || p.CellErase <= 0:
		return fmt.Errorf("lpddr: cell program/erase times must be positive")
	}
	return nil
}

// Derived timing ------------------------------------------------------

// TRP returns the pre-active phase time.
func (p Params) TRP() sim.Duration { return sim.Duration(p.TRPCycles) * p.TCK }

// RL returns the read latency as a duration.
func (p Params) RL() sim.Duration { return sim.Duration(p.RLCycles) * p.TCK }

// WL returns the write latency as a duration.
func (p Params) WL() sim.Duration { return sim.Duration(p.WLCycles) * p.TCK }

// TBurst returns the time one data burst occupies the 16-bit DDR bus:
// BurstLen beats at two beats per clock.
func (p Params) TBurst() sim.Duration {
	return sim.Duration(p.BurstLen/2) * p.TCK
}

// BurstBytes returns the payload of one burst: BurstLen beats x 2 bytes
// per beat on the x16 interface.
func (p Params) BurstBytes() int { return p.BurstLen * 2 }

// BurstsPerRow returns how many read/write-phase bursts a full RDB
// transfer takes.
func (p Params) BurstsPerRow() int {
	n := p.RDBBytes / p.BurstBytes()
	if n < 1 {
		n = 1
	}
	return n
}

// ReadPreamble returns RL + tDQSCK: command to first read data.
func (p Params) ReadPreamble() sim.Duration { return p.RL() + p.TDQSCK }

// WritePreamble returns WL + tDQSS: command to first write data.
func (p Params) WritePreamble() sim.Duration { return p.WL() + p.TDQSS }

// RowReadLatency returns the uncontended latency of a full three-phase
// row read: pre-active + activate + read preamble + one burst. This is
// the paper's ~100 ns end-to-end PRAM read.
func (p Params) RowReadLatency() sim.Duration {
	return p.TRP() + p.TRCD + p.ReadPreamble() + p.TBurst()
}

// ProgramTime returns the array program time for a write, which depends
// on the state of the target cells:
//
//	fresh (never programmed)      -> CellProgram
//	overwrite (programmed cells)  -> CellProgram + CellOverwriteExtra
//	erased (selectively pre-RESET)-> CellSetOnly
func (p Params) ProgramTime(state CellState) sim.Duration {
	switch state {
	case CellFresh:
		return p.CellProgram
	case CellProgrammed:
		return p.CellProgram + p.CellOverwriteExtra
	case CellErased:
		return p.CellSetOnly
	default:
		panic(fmt.Sprintf("lpddr: unknown cell state %d", state))
	}
}

// CellState describes the condition of a program unit (word) before a
// write, which determines program latency (Section V, selective erasing).
type CellState int

const (
	// CellFresh cells have never been programmed since manufacture.
	CellFresh CellState = iota
	// CellProgrammed cells hold data; an overwrite needs RESET then SET.
	CellProgrammed
	// CellErased cells were selectively erased (programmed all-zero), so
	// a write needs only the SET pulses.
	CellErased
)

// String implements fmt.Stringer.
func (s CellState) String() string {
	switch s {
	case CellFresh:
		return "fresh"
	case CellProgrammed:
		return "programmed"
	case CellErased:
		return "erased"
	default:
		return fmt.Sprintf("CellState(%d)", int(s))
	}
}
