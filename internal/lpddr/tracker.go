package lpddr

import "fmt"

// Tracker validates that a stream of commands obeys the three-phase
// addressing protocol. The PRAM module embeds one so that any controller
// bug that would mis-program a real device fails loudly in simulation.
//
// Legal ordering per RAB/RDB pair:
//
//	PREACTIVE(ba)          - always legal; loads the RAB
//	ACTIVATE(ba)           - requires the RAB to hold an upper row address
//	READ/WRITE(ba)         - requires the pair to have completed activation
//	MRW/MRR                - always legal (device configuration)
//
// The "phase skipping" optimization of the DRAM-less controller is legal
// precisely because a RAB/RDB pair retains its state across requests: a
// later ACTIVATE may reuse a previously loaded RAB, and a later READ may
// reuse a previously activated RDB.
type Tracker struct {
	numRAB    int
	rabLoaded []bool // RAB holds an upper row address
	activated []bool // RDB holds a sensed row
	history   []Command
	keepHist  bool
}

// NewTracker returns a tracker for a device with numRAB buffer pairs.
func NewTracker(numRAB int) *Tracker {
	if numRAB <= 0 || numRAB > 4 {
		panic(fmt.Sprintf("lpddr: tracker needs 1..4 RABs, got %d", numRAB))
	}
	return &Tracker{
		numRAB:    numRAB,
		rabLoaded: make([]bool, numRAB),
		activated: make([]bool, numRAB),
	}
}

// KeepHistory records every observed command for test inspection.
func (t *Tracker) KeepHistory(on bool) { t.keepHist = on }

// History returns the recorded command stream (empty unless KeepHistory).
func (t *Tracker) History() []Command { return t.history }

// Observe checks one command against the protocol state and updates it.
func (t *Tracker) Observe(c Command) error {
	if t.keepHist {
		t.history = append(t.history, c)
	}
	switch c.Op {
	case OpNop, OpMRW, OpMRR:
		return nil
	}
	if int(c.BA) >= t.numRAB {
		return fmt.Errorf("lpddr: %v targets BA %d but device has %d RAB pairs", c.Op, c.BA, t.numRAB)
	}
	switch c.Op {
	case OpPreactive:
		t.rabLoaded[c.BA] = true
		// Loading a new upper row address invalidates the stale
		// activation paired with this RAB.
		t.activated[c.BA] = false
	case OpActivate:
		if !t.rabLoaded[c.BA] {
			return fmt.Errorf("lpddr: ACTIVATE on BA %d without a prior PREACTIVE", c.BA)
		}
		t.activated[c.BA] = true
	case OpRead, OpWrite:
		if !t.activated[c.BA] {
			return fmt.Errorf("lpddr: %v on BA %d without an activated row", c.Op, c.BA)
		}
	default:
		return fmt.Errorf("lpddr: unknown opcode %d", c.Op)
	}
	return nil
}

// Activated reports whether buffer pair ba holds a sensed row.
func (t *Tracker) Activated(ba uint8) bool {
	return int(ba) < t.numRAB && t.activated[ba]
}

// Loaded reports whether RAB ba holds an upper row address.
func (t *Tracker) Loaded(ba uint8) bool {
	return int(ba) < t.numRAB && t.rabLoaded[ba]
}

// Reset clears all protocol state (device power cycle).
func (t *Tracker) Reset() {
	for i := range t.rabLoaded {
		t.rabLoaded[i] = false
		t.activated[i] = false
	}
	t.history = t.history[:0]
}
