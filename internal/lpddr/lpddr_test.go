package lpddr

import (
	"strings"
	"testing"
	"testing/quick"

	"dramless/internal/sim"
)

func TestDefaultParamsMatchTable2(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.TCK != sim.Nanoseconds(2.5) {
		t.Errorf("tCK = %v, want 2.5ns", p.TCK)
	}
	if p.RLCycles != 6 || p.WLCycles != 3 || p.TRPCycles != 3 {
		t.Errorf("RL/WL/tRP = %d/%d/%d, want 6/3/3", p.RLCycles, p.WLCycles, p.TRPCycles)
	}
	if p.TRCD != sim.Nanoseconds(80) {
		t.Errorf("tRCD = %v, want 80ns", p.TRCD)
	}
	if p.NumRAB != 4 || p.RDBBytes != 32 || p.Partitions != 16 {
		t.Errorf("RAB/RDB/partitions = %d/%d/%d, want 4/32/16", p.NumRAB, p.RDBBytes, p.Partitions)
	}
	if p.Channels != 2 || p.Packages != 16 {
		t.Errorf("channels/packages = %d/%d, want 2/16", p.Channels, p.Packages)
	}
}

func TestDerivedTiming(t *testing.T) {
	p := Default()
	if got := p.TRP(); got != sim.Nanoseconds(7.5) {
		t.Errorf("tRP = %v, want 7.5ns", got)
	}
	if got := p.RL(); got != sim.Nanoseconds(15) {
		t.Errorf("RL = %v, want 15ns", got)
	}
	if got := p.TBurst(); got != sim.Nanoseconds(20) {
		t.Errorf("tBURST = %v, want 20ns (BL16 at 2.5ns DDR)", got)
	}
	if got := p.BurstBytes(); got != 32 {
		t.Errorf("burst bytes = %d, want 32", got)
	}
	if got := p.BurstsPerRow(); got != 1 {
		t.Errorf("bursts per row = %d, want 1", got)
	}
	// The paper reports ~100 ns end-to-end read including three-phase
	// addressing; the derived value must land near that.
	lat := p.RowReadLatency()
	if lat < sim.Nanoseconds(100) || lat > sim.Nanoseconds(150) {
		t.Errorf("row read latency = %v, want ~100-150ns", lat)
	}
}

func TestProgramTimeByCellState(t *testing.T) {
	p := Default()
	fresh := p.ProgramTime(CellFresh)
	over := p.ProgramTime(CellProgrammed)
	erased := p.ProgramTime(CellErased)
	if fresh != sim.Microseconds(10) {
		t.Errorf("fresh program = %v, want 10us", fresh)
	}
	if over != sim.Microseconds(18) {
		t.Errorf("overwrite = %v, want 18us", over)
	}
	// Selective erasing claim: overwrite latency drops by 44% (18us -> 10us).
	reduction := 1 - float64(erased)/float64(over)
	if reduction < 0.40 || reduction > 0.60 {
		t.Errorf("selective-erase reduction = %.0f%%, want 44-55%%", reduction*100)
	}
}

func TestParamsValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.TCK = 0 },
		func(p *Params) { p.RLCycles = 0 },
		func(p *Params) { p.TRCD = -1 },
		func(p *Params) { p.BurstLen = 5 },
		func(p *Params) { p.NumRAB = 9 },
		func(p *Params) { p.RDBBytes = 0 },
		func(p *Params) { p.Partitions = 0 },
		func(p *Params) { p.Channels = 0 },
		func(p *Params) { p.CellProgram = 0 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	cmds := []Command{
		{Op: OpPreactive, BA: 2, Addr: 0x1FFF},
		{Op: OpActivate, BA: 0, Addr: 0x7F},
		{Op: OpRead, BA: 3, Addr: 0},
		{Op: OpWrite, BA: 1, Addr: 0x3FFF},
		{Op: OpMRW, Addr: 0x10},
		{Op: OpNop},
	}
	for _, c := range cmds {
		p, err := Encode(c)
		if err != nil {
			t.Fatalf("encode %v: %v", c, err)
		}
		if uint32(p) >= 1<<20 {
			t.Fatalf("packet for %v exceeds 20 bits: %#x", c, uint32(p))
		}
		got, err := Decode(p)
		if err != nil {
			t.Fatalf("decode %v: %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip %v -> %v", c, got)
		}
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	if _, err := Encode(Command{Op: OpRead, BA: 4}); err == nil {
		t.Error("BA overflow accepted")
	}
	if _, err := Encode(Command{Op: OpRead, Addr: 1 << 14}); err == nil {
		t.Error("addr overflow accepted")
	}
	if _, err := Encode(Command{Op: numOps}); err == nil {
		t.Error("bad opcode accepted")
	}
}

func TestDecodeRejectsWidePacket(t *testing.T) {
	if _, err := Decode(Packet(1 << 20)); err == nil {
		t.Error("21-bit packet accepted")
	}
}

// Property: every in-range command round-trips through the 20-bit packet.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(op uint8, ba uint8, addr uint32) bool {
		c := Command{Op: Op(op % uint8(numOps)), BA: ba % 4, Addr: addr & addrMask}
		p, err := Encode(c)
		if err != nil {
			return false
		}
		got, err := Decode(p)
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerEnforcesThreePhaseOrder(t *testing.T) {
	tr := NewTracker(4)
	// READ before any activation must fail.
	if err := tr.Observe(Command{Op: OpRead, BA: 0}); err == nil {
		t.Fatal("READ without activation accepted")
	}
	// ACTIVATE before PREACTIVE must fail.
	if err := tr.Observe(Command{Op: OpActivate, BA: 1}); err == nil {
		t.Fatal("ACTIVATE without PREACTIVE accepted")
	}
	// Correct sequence passes.
	for _, c := range []Command{
		{Op: OpPreactive, BA: 1, Addr: 0x12},
		{Op: OpActivate, BA: 1, Addr: 0x3},
		{Op: OpRead, BA: 1, Addr: 0},
		{Op: OpRead, BA: 1, Addr: 8}, // phase skipping: reuse activation
	} {
		if err := tr.Observe(c); err != nil {
			t.Fatalf("legal command %v rejected: %v", c, err)
		}
	}
	if !tr.Activated(1) || !tr.Loaded(1) {
		t.Fatal("tracker state not updated")
	}
}

func TestTrackerPreactiveInvalidatesActivation(t *testing.T) {
	tr := NewTracker(2)
	seq := []Command{
		{Op: OpPreactive, BA: 0},
		{Op: OpActivate, BA: 0},
		{Op: OpPreactive, BA: 0}, // new upper row address: old RDB pairing stale
	}
	for _, c := range seq {
		if err := tr.Observe(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Observe(Command{Op: OpRead, BA: 0}); err == nil {
		t.Fatal("READ after re-PREACTIVE accepted without new ACTIVATE")
	}
}

func TestTrackerRejectsOutOfRangeBA(t *testing.T) {
	tr := NewTracker(2)
	err := tr.Observe(Command{Op: OpPreactive, BA: 3})
	if err == nil || !strings.Contains(err.Error(), "BA 3") {
		t.Fatalf("out-of-range BA not rejected: %v", err)
	}
}

func TestTrackerHistoryAndReset(t *testing.T) {
	tr := NewTracker(4)
	tr.KeepHistory(true)
	_ = tr.Observe(Command{Op: OpPreactive, BA: 0})
	_ = tr.Observe(Command{Op: OpActivate, BA: 0})
	if len(tr.History()) != 2 {
		t.Fatalf("history = %d entries, want 2", len(tr.History()))
	}
	tr.Reset()
	if len(tr.History()) != 0 || tr.Loaded(0) || tr.Activated(0) {
		t.Fatal("reset did not clear state")
	}
}

func TestStringFormats(t *testing.T) {
	c := Command{Op: OpPreactive, BA: 2, Addr: 0x55}
	if s := c.String(); !strings.Contains(s, "PREACTIVE") || !strings.Contains(s, "ba=2") {
		t.Errorf("command string = %q", s)
	}
	if s := (Command{Op: OpMRW, Addr: 1}).String(); !strings.Contains(s, "MRW") {
		t.Errorf("MRW string = %q", s)
	}
	if CellErased.String() != "erased" || CellFresh.String() != "fresh" || CellProgrammed.String() != "programmed" {
		t.Error("cell state strings wrong")
	}
}
