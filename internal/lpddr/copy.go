package lpddr

// CopyFrom clones src's protocol state into t. Command history is a
// debugging aid, not simulated state, and stays fresh.
func (t *Tracker) CopyFrom(src *Tracker) {
	copy(t.rabLoaded, src.rabLoaded)
	copy(t.activated, src.activated)
}
