// Package hostsw models the host-side software stack whose overheads
// motivate DRAM-less (Figures 1 and 5a): system calls, user/kernel mode
// switches, the filesystem and block layer, interrupt handling, memory
// copies through host DRAM, and object deserialization. The conventional
// accelerated systems pay these costs on every byte moved between the
// SSD and the accelerator; DRAM-less pays them only to deliver a kernel
// image.
package hostsw

import (
	"fmt"

	"dramless/internal/sim"
)

// Costs parametrizes the host software path. The defaults are
// representative of a tuned Linux NVMe stack on the paper's testbed era
// hardware; the experiment shapes depend on their order of magnitude,
// not their exact values.
type Costs struct {
	// Syscall is one user->kernel->user round trip.
	Syscall sim.Duration
	// ContextSwitch is a blocking-I/O reschedule.
	ContextSwitch sim.Duration
	// Interrupt is the device-completion IRQ plus softirq work.
	Interrupt sim.Duration
	// FSPerOp is the filesystem + block layer + driver submission work
	// per I/O request.
	FSPerOp sim.Duration
	// IOBytes is the request granularity of buffered file I/O.
	IOBytes int
	// MemcpyBytesPerSec is host-DRAM copy bandwidth (one core).
	MemcpyBytesPerSec float64
	// DeserializeBytesPerSec is the rate of turning file bytes into
	// in-memory objects the accelerator can consume (Figure 5a's
	// "deserialize" step).
	DeserializeBytesPerSec float64
}

// DefaultCosts returns the model defaults.
func DefaultCosts() Costs {
	return Costs{
		Syscall:                sim.Microseconds(1.5),
		ContextSwitch:          sim.Microseconds(3),
		Interrupt:              sim.Microseconds(1),
		FSPerOp:                sim.Microseconds(4),
		IOBytes:                128 << 10,
		MemcpyBytesPerSec:      10e9,
		DeserializeBytesPerSec: 2e9,
	}
}

// Validate reports configuration errors.
func (c Costs) Validate() error {
	if c.Syscall < 0 || c.ContextSwitch < 0 || c.Interrupt < 0 || c.FSPerOp < 0 {
		return fmt.Errorf("hostsw: negative cost in %+v", c)
	}
	if c.IOBytes <= 0 || c.MemcpyBytesPerSec <= 0 || c.DeserializeBytesPerSec <= 0 {
		return fmt.Errorf("hostsw: non-positive rate in %+v", c)
	}
	return nil
}

// Host models the host CPU executing the storage stack. A single
// timeline serializes stack work (the paper's observation that "SSD
// accesses consume most CPU cycles" is this resource saturating).
type Host struct {
	costs Costs
	cpu   *sim.Resource
	mem   *sim.Pipe

	syscalls    int64
	iops        int64
	bytesCopied int64
}

// New returns a host with the given cost model.
func New(costs Costs) (*Host, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	return &Host{
		costs: costs,
		cpu:   sim.NewResource("host.cpu"),
		mem:   sim.NewPipe("host.dram", costs.MemcpyBytesPerSec, 0),
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(costs Costs) *Host {
	h, err := New(costs)
	if err != nil {
		panic(err)
	}
	return h
}

// Costs returns the cost model.
func (h *Host) Costs() Costs { return h.costs }

// CPUBusy returns cumulative host CPU time consumed by stack work; the
// energy model charges host power for it.
func (h *Host) CPUBusy() sim.Duration { return h.cpu.BusyTime() }

// Stats returns (syscalls, I/O requests, bytes copied).
func (h *Host) Stats() (syscalls, iops, bytesCopied int64) {
	return h.syscalls, h.iops, h.bytesCopied
}

// IOOps returns how many I/O requests n bytes of buffered file I/O issue.
func (h *Host) IOOps(n int64) int64 {
	ops := (n + int64(h.costs.IOBytes) - 1) / int64(h.costs.IOBytes)
	if ops < 1 {
		ops = 1
	}
	return ops
}

// FileIO charges the software path of moving n bytes between a file and a
// user buffer: per-request syscall + filesystem/block work + completion
// interrupt + context switch, plus the kernel->user copy. The device time
// itself is the caller's business (it knows which SSD is attached); this
// returns when the CPU-side work for submission s done and the total
// per-request overhead the caller should interleave with device time.
func (h *Host) FileIO(at sim.Time, n int64) (done sim.Time, perOp sim.Duration, ops int64) {
	ops = h.IOOps(n)
	perOp = h.costs.Syscall + h.costs.FSPerOp + h.costs.Interrupt + h.costs.ContextSwitch
	done = h.cpu.AcquireUntil(at, sim.Duration(ops)*perOp)
	done = h.mem.Transfer(done, n) // kernel buffer -> user pages
	h.syscalls += ops
	h.iops += ops
	h.bytesCopied += n
	return done, perOp, ops
}

// Memcpy charges one host-DRAM copy of n bytes (e.g. staging a pinned
// DMA buffer).
func (h *Host) Memcpy(at sim.Time, n int64) sim.Time {
	h.bytesCopied += n
	start := h.cpu.Acquire(at, h.mem.TransferTime(n))
	return h.mem.Transfer(start, n)
}

// Deserialize charges turning n file bytes into accelerator-ready
// objects.
func (h *Host) Deserialize(at sim.Time, n int64) sim.Time {
	d := sim.Duration(float64(n) / h.costs.DeserializeBytesPerSec * float64(sim.Second))
	return h.cpu.AcquireUntil(at, d)
}

// Submit charges one asynchronous command submission (a doorbell write
// plus driver work, no data movement): how a host kicks a P2P DMA or
// offloads a kernel.
func (h *Host) Submit(at sim.Time) sim.Time {
	h.syscalls++
	return h.cpu.AcquireUntil(at, h.costs.Syscall+h.costs.FSPerOp/2)
}

// Completion charges handling one completion interrupt.
func (h *Host) Completion(at sim.Time) sim.Time {
	return h.cpu.AcquireUntil(at, h.costs.Interrupt+h.costs.ContextSwitch)
}
