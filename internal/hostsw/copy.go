package hostsw

// CopyFrom clones src's CPU/DRAM timelines and I/O totals into h. Both
// hosts must share the same cost model; checkpoint forks construct a
// fresh host and then copy the mutable state across.
func (h *Host) CopyFrom(src *Host) {
	h.cpu.CopyFrom(src.cpu)
	h.mem.CopyFrom(src.mem)
	h.syscalls = src.syscalls
	h.iops = src.iops
	h.bytesCopied = src.bytesCopied
}
