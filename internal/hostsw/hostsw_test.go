package hostsw

import (
	"testing"

	"dramless/internal/sim"
)

func TestFileIOChargesPerRequestCosts(t *testing.T) {
	h := MustNew(DefaultCosts())
	n := int64(1 << 20) // 8 requests at 128 KiB
	done, perOp, ops := h.FileIO(0, n)
	if ops != 8 {
		t.Fatalf("ops = %d, want 8", ops)
	}
	wantPerOp := sim.Microseconds(1.5 + 4 + 1 + 3)
	if perOp != wantPerOp {
		t.Fatalf("perOp = %v, want %v", perOp, wantPerOp)
	}
	// 8 x 9.5us stack + 1 MiB / 10 GB/s ~ 104.9 us copy.
	if done < sim.Microseconds(170) || done > sim.Microseconds(200) {
		t.Fatalf("FileIO(1MiB) = %v, want ~180us", done)
	}
	if h.CPUBusy() == 0 {
		t.Fatal("no CPU time recorded")
	}
}

func TestSmallIOStillPaysOneRequest(t *testing.T) {
	h := MustNew(DefaultCosts())
	_, _, ops := h.FileIO(0, 100)
	if ops != 1 {
		t.Fatalf("ops = %d, want 1", ops)
	}
}

func TestHostCPUSerializes(t *testing.T) {
	h := MustNew(DefaultCosts())
	d1 := h.Deserialize(0, 1<<20)
	d2 := h.Deserialize(0, 1<<20)
	if d2 <= d1 {
		t.Fatal("deserialize calls did not serialize on the host CPU")
	}
}

func TestMemcpyBandwidth(t *testing.T) {
	h := MustNew(DefaultCosts())
	done := h.Memcpy(0, 10<<20) // 10 MiB at 10 GB/s ~ 1.05 ms
	if done < sim.Milliseconds(1) || done > sim.Milliseconds(1.2) {
		t.Fatalf("memcpy(10MiB) = %v, want ~1.05ms", done)
	}
}

func TestSubmitCheaperThanFileIO(t *testing.T) {
	h := MustNew(DefaultCosts())
	sub := h.Submit(0)
	h2 := MustNew(DefaultCosts())
	fio, _, _ := h2.FileIO(0, 1<<20)
	if sub >= fio {
		t.Fatalf("submit (%v) not cheaper than file I/O (%v)", sub, fio)
	}
}

func TestCompletionCost(t *testing.T) {
	h := MustNew(DefaultCosts())
	done := h.Completion(0)
	if want := sim.Microseconds(4); done != want {
		t.Fatalf("completion = %v, want %v", done, want)
	}
}

func TestCostsValidation(t *testing.T) {
	c := DefaultCosts()
	c.IOBytes = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero IO size accepted")
	}
	c = DefaultCosts()
	c.Syscall = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative syscall cost accepted")
	}
}
