package flash

import (
	"dramless/internal/mem"
	"dramless/internal/sim"
)

// NOR models the 9x nm parallel PRAM with a serial-peripheral NOR flash
// interface used by the paper's "NOR-intf" configuration: byte-addressable
// like the 3x nm parts, but every access serializes into 16-bit low-level
// memory operations with legacy latencies ("its legacy read and write are
// slower than our new PRAM by 3x and 10x"). There is no DRAM, no
// firmware and no erase on the data path.
type NOR struct {
	size  uint64
	bus   *sim.Resource
	store *mem.Sparse

	readChunk  sim.Duration
	writeChunk sim.Duration
	chunk      int

	reads, writes int64
	bytesRead     int64
	bytesWritten  int64
}

var _ mem.Device = (*NOR)(nil)

// NewNOR returns a NOR-interface PRAM of the given capacity. The default
// latencies give ~200 MB/s serialized reads (2x below flash page-level
// bandwidth, 3x the per-access latency of the 3x nm PRAM at 32 B grain)
// and ~17 MB/s writes (two orders below flash page bandwidth and ~10x
// below the DRAM-less subsystem's parallel writes) - the ratios Section
// VI reports for NOR-intf.
func NewNOR(size uint64) *NOR {
	return &NOR{
		size:       size,
		bus:        sim.NewResource("nor.bus"),
		store:      mem.NewSparse(),
		chunk:      2, // 16-bit operations
		readChunk:  sim.Nanoseconds(10),
		writeChunk: sim.Nanoseconds(120),
	}
}

// Size implements mem.Device.
func (n *NOR) Size() uint64 { return n.size }

// Read implements mem.Device: ceil(n/2) serialized 16-bit reads.
func (n *NOR) Read(at sim.Time, addr uint64, sz int) ([]byte, sim.Time, error) {
	if err := mem.CheckRange("nor", n.size, addr, sz); err != nil {
		return nil, 0, err
	}
	words := (sz + n.chunk - 1) / n.chunk
	done := n.bus.AcquireUntil(at, sim.Duration(words)*n.readChunk)
	n.reads++
	n.bytesRead += int64(sz)
	return n.store.Read(addr, sz), done, nil
}

// Write implements mem.Device: ceil(n/2) serialized 16-bit programs.
func (n *NOR) Write(at sim.Time, addr uint64, data []byte) (sim.Time, error) {
	if err := mem.CheckRange("nor", n.size, addr, len(data)); err != nil {
		return 0, err
	}
	words := (len(data) + n.chunk - 1) / n.chunk
	done := n.bus.AcquireUntil(at, sim.Duration(words)*n.writeChunk)
	n.store.Write(addr, data)
	n.writes++
	n.bytesWritten += int64(len(data))
	return done, nil
}

// Drain implements mem.Drainer.
func (n *NOR) Drain() sim.Time { return n.bus.FreeAt() }

// Traffic returns (reads, writes, bytesRead, bytesWritten).
func (n *NOR) Traffic() (reads, writes, bytesRead, bytesWritten int64) {
	return n.reads, n.writes, n.bytesRead, n.bytesWritten
}
