package flash

import (
	"bytes"
	"testing"
	"testing/quick"

	"dramless/internal/sim"
)

func smallArray(t *testing.T) *Array {
	t.Helper()
	p := SLC()
	p.PageBytes = 1024
	p.PagesPerBlock = 4
	p.Dies = 2
	a, err := NewArray(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{Name: "a", PageBytes: 0, PagesPerBlock: 4, Dies: 1, ChannelBW: 1, ReadPage: 1, ProgramPage: 1},
		{Name: "b", PageBytes: 16, PagesPerBlock: 4, Dies: 0, ChannelBW: 1, ReadPage: 1, ProgramPage: 1},
		{Name: "c", PageBytes: 16, PagesPerBlock: 4, Dies: 1, ChannelBW: 0, ReadPage: 1, ProgramPage: 1},
		{Name: "d", PageBytes: 16, PagesPerBlock: 4, Dies: 1, ChannelBW: 1},                // no page latencies
		{Name: "e", PageBytes: 16, PagesPerBlock: 4, Dies: 1, ChannelBW: 1, ChunkBytes: 4}, // no chunk latencies
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %s accepted", p.Name)
		}
	}
	if _, err := NewArray(SLC(), 0); err == nil {
		t.Error("zero-page array accepted")
	}
}

func TestArrayProgramRead(t *testing.T) {
	a := smallArray(t)
	data := bytes.Repeat([]byte{0xC3}, 1024)
	done, err := a.ProgramPage(0, 5, data)
	if err != nil {
		t.Fatal(err)
	}
	if done < sim.Microseconds(300) {
		t.Fatalf("program done at %v, want >= 300us SLC program", done)
	}
	got, _, err := a.ReadPage(done, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page round trip failed")
	}
	st := a.Stats()
	if st.PagePrograms != 1 || st.PageReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArrayDieParallelism(t *testing.T) {
	a := smallArray(t)
	// Pages 0 and 1 stripe onto different dies: their senses overlap and
	// only the channel serializes the transfers.
	_, d0, _ := a.ReadPage(0, 0)
	_, d1, _ := a.ReadPage(0, 1)
	// Serial senses would be >= 2x the 25 us page read.
	if d1-d0 >= sim.Microseconds(25) {
		t.Fatalf("dies serialized: %v then %v", d0, d1)
	}
	// Same die (pages 0 and 2) must serialize the sense.
	b := smallArray(t)
	_, e0, _ := b.ReadPage(0, 0)
	_, e2, _ := b.ReadPage(0, 2)
	if e2-e0 < sim.Microseconds(25) {
		t.Fatalf("same-die reads overlapped: %v then %v", e0, e2)
	}
}

func TestEraseBlockClearsPages(t *testing.T) {
	a := smallArray(t)
	for pg := uint64(4); pg < 8; pg++ { // block 1
		if _, err := a.ProgramPage(0, pg, bytes.Repeat([]byte{9}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	done, err := a.EraseBlock(sim.Milliseconds(10), 5)
	if err != nil {
		t.Fatal(err)
	}
	if done < sim.Milliseconds(10)+sim.Microseconds(2000) {
		t.Fatalf("erase done at %v, want >= 2ms SLC erase", done)
	}
	got, _, _ := a.ReadPage(done, 5)
	for _, b := range got {
		if b != 0 {
			t.Fatal("erased page still holds data")
		}
	}
	// Neighbouring block untouched? Program page 0 (block 0) first.
	b2 := smallArray(t)
	b2.ProgramPage(0, 0, bytes.Repeat([]byte{7}, 1024))
	b2.EraseBlock(sim.Milliseconds(10), 5)
	got, _, _ = b2.ReadPage(sim.Milliseconds(100), 0)
	if got[0] != 7 {
		t.Fatal("erase leaked into another block")
	}
}

func TestArrayBoundsChecked(t *testing.T) {
	a := smallArray(t)
	if _, _, err := a.ReadPage(0, 64); err == nil {
		t.Error("read past array accepted")
	}
	if _, err := a.ProgramPage(0, 64, nil); err == nil {
		t.Error("program past array accepted")
	}
	if _, err := a.ProgramPage(0, 0, make([]byte, 2048)); err == nil {
		t.Error("oversized program accepted")
	}
	if _, err := a.EraseBlock(0, 99); err == nil {
		t.Error("erase past array accepted")
	}
}

func TestChunkedMediaTiming(t *testing.T) {
	p := PRAMMedia()
	// 16 KiB / 256 B = 64 chunks.
	if got, want := p.PageRead(), 64*sim.Nanoseconds(100); got != want {
		t.Fatalf("chunked page read = %v, want %v", got, want)
	}
	if got, want := p.PageProgram(), 64*sim.Microseconds(18); got != want {
		t.Fatalf("chunked page program = %v, want %v", got, want)
	}
}

func TestPageBufferProfileSanity(t *testing.T) {
	p := PageBufferPRAM()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Dies != 1 {
		t.Fatal("PAGE-buffer page ops must not overlap (whole-subsystem ops)")
	}
	if p.EraseBlock != 0 {
		t.Fatal("PRAM page interface needs no erase")
	}
	if p.PageRead() >= SLC().PageRead() {
		t.Fatal("PAGE-buffer reads must beat flash")
	}
}

func TestNORDrainAndTraffic(t *testing.T) {
	n := NewNOR(1 << 16)
	if _, err := n.Write(0, 0, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	if n.Drain() <= 0 {
		t.Fatal("drain at zero after a write")
	}
	r, w, rb, wb := n.Traffic()
	if r != 0 || w != 1 || rb != 0 || wb != 64 {
		t.Fatalf("traffic = %d %d %d %d", r, w, rb, wb)
	}
	if _, _, err := n.Read(0, 1<<16, 1); err == nil {
		t.Error("out-of-range NOR read accepted")
	}
}

// Property: array pages behave as independent 1 KiB cells under random
// program/erase sequences.
func TestArrayFunctionalProperty(t *testing.T) {
	a := smallArray(t)
	shadow := map[uint64][]byte{}
	now := sim.Time(0)
	f := func(pgSel uint8, fill byte, erase bool) bool {
		pg := uint64(pgSel) % 64
		if erase {
			done, err := a.EraseBlock(now, pg)
			if err != nil {
				return false
			}
			now = done
			base := pg - pg%4
			for p := base; p < base+4; p++ {
				delete(shadow, p)
			}
		} else {
			data := bytes.Repeat([]byte{fill}, 1024)
			done, err := a.ProgramPage(now, pg, data)
			if err != nil {
				return false
			}
			now = done
			shadow[pg] = data
		}
		got, done, err := a.ReadPage(now, pg)
		if err != nil {
			return false
		}
		now = done
		want, ok := shadow[pg]
		if !ok {
			want = make([]byte, 1024)
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
