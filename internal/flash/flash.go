// Package flash models the NAND arrays used by the Table I baselines:
// SLC/MLC/TLC dies with page-granule reads and programs, block erases,
// per-die parallelism, and a shared channel bus. A generalized profile
// also covers the byte-serial PRAM media of Optane-like SSDs and the
// parallel NOR-interface PRAM, so the ssd package can build every storage
// configuration the paper compares.
package flash

import (
	"fmt"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

// Profile characterizes one storage medium (Table I latencies).
type Profile struct {
	Name          string
	PageBytes     int
	PagesPerBlock int
	Dies          int          // independently operating dies/planes
	ReadPage      sim.Duration // whole-page sense time
	ProgramPage   sim.Duration // whole-page program time
	EraseBlock    sim.Duration // 0 when the medium needs no erase
	ChannelBW     float64      // bytes/second of the shared data channel

	// ChunkBytes > 0 marks media that serve a page as serialized
	// byte-granular chunks instead of one monolithic array op (the PRAM
	// media of Optane-like SSDs): page time = ceil(page/chunk) x chunk
	// latency on the die.
	ChunkBytes int
	ReadChunk  sim.Duration
	WriteChunk sim.Duration
}

// SLC returns the Micron SLC NAND profile of Integrated-SLC
// (read 25 us, program 300 us, erase 2000 us).
func SLC() Profile {
	return Profile{Name: "SLC", PageBytes: 16 << 10, PagesPerBlock: 256, Dies: 8,
		ReadPage: sim.Microseconds(25), ProgramPage: sim.Microseconds(300),
		EraseBlock: sim.Microseconds(2000), ChannelBW: 400e6}
}

// MLC returns the MLC NAND profile of Hetero and Integrated-MLC
// (read 50 us, program 800 us, erase 3500 us).
func MLC() Profile {
	return Profile{Name: "MLC", PageBytes: 16 << 10, PagesPerBlock: 256, Dies: 8,
		ReadPage: sim.Microseconds(50), ProgramPage: sim.Microseconds(800),
		EraseBlock: sim.Microseconds(3500), ChannelBW: 400e6}
}

// TLC returns the TLC NAND profile of Integrated-TLC
// (read 80 us, program 1250 us, erase 2274 us).
func TLC() Profile {
	return Profile{Name: "TLC", PageBytes: 16 << 10, PagesPerBlock: 256, Dies: 8,
		ReadPage: sim.Microseconds(80), ProgramPage: sim.Microseconds(1250),
		EraseBlock: sim.Microseconds(2274), ChannelBW: 400e6}
}

// PRAMMedia returns the Optane-like PRAM storage media of Hetero-PRAM:
// multi-partition internals serve 256 B units in ~100 ns, so a 16 KiB
// page read costs ~6.4 us (far below flash's 25-80 us), while page
// writes serialize into 18 us unit programs (~1.15 ms/page, above even
// MLC's 800 us) - which is exactly why the paper finds PRAM SSDs win on
// reads but lose to flash on bulk writes.
func PRAMMedia() Profile {
	return Profile{Name: "PRAM-SSD", PageBytes: 16 << 10, PagesPerBlock: 256, Dies: 8,
		ChannelBW:  1600e6,
		ChunkBytes: 256, ReadChunk: sim.Nanoseconds(100), WriteChunk: sim.Microseconds(18)}
}

// PageBufferPRAM returns the media profile of the paper's "PAGE-buffer"
// configuration: the same 3x nm multi-partition PRAM as DRAM-less, but
// reached through a page-based interface with an internal DRAM. A page
// stripes over the 32 modules (512 B = 16 rows each): sensing takes
// ~1.7 us in parallel, the transfer rides the same two LPDDR2-NVM
// channels as DRAM-less (so the effective stream cannot exceed them),
// and a page program serializes 16 row programs per module with partial
// partition overlap and no selective erasing (~80 us). No erase needed.
func PageBufferPRAM() Profile {
	// Dies=1: a page op already spans every module of the subsystem, so
	// page operations cannot overlap each other.
	return Profile{Name: "PAGE-buffer", PageBytes: 16 << 10, PagesPerBlock: 256, Dies: 1,
		ReadPage: sim.Microseconds(1.7), ProgramPage: sim.Microseconds(80),
		EraseBlock: 0, ChannelBW: 1600e6}
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	switch {
	case p.PageBytes <= 0 || p.PagesPerBlock <= 0 || p.Dies <= 0:
		return fmt.Errorf("flash %s: geometry must be positive", p.Name)
	case p.ChannelBW <= 0:
		return fmt.Errorf("flash %s: channel bandwidth must be positive", p.Name)
	case p.ChunkBytes == 0 && (p.ReadPage <= 0 || p.ProgramPage <= 0):
		return fmt.Errorf("flash %s: page latencies must be positive", p.Name)
	case p.ChunkBytes > 0 && (p.ReadChunk <= 0 || p.WriteChunk <= 0):
		return fmt.Errorf("flash %s: chunk latencies must be positive", p.Name)
	}
	return nil
}

// PageRead returns the die-occupancy time of reading one page.
func (p Profile) PageRead() sim.Duration {
	if p.ChunkBytes > 0 {
		return sim.Duration(chunks(p.PageBytes, p.ChunkBytes)) * p.ReadChunk
	}
	return p.ReadPage
}

// PageProgram returns the die-occupancy time of programming one page.
func (p Profile) PageProgram() sim.Duration {
	if p.ChunkBytes > 0 {
		return sim.Duration(chunks(p.PageBytes, p.ChunkBytes)) * p.WriteChunk
	}
	return p.ProgramPage
}

func chunks(total, chunk int) int { return (total + chunk - 1) / chunk }

// Stats counts array activity for the energy model.
type Stats struct {
	PageReads    int64
	PagePrograms int64
	BlockErases  int64
	BytesMoved   int64
}

// Array is a timed, functional multi-die storage array addressed by
// physical page number. Pages stripe across dies on their low bits.
type Array struct {
	prof  Profile
	pages uint64
	dies  []*sim.Resource
	chan_ *sim.Pipe
	store map[uint64][]byte
	stats Stats

	// Page frames come framePages at a time from one slab and are
	// recycled when EraseBlock drops them, so first-touch programs and
	// GC churn do not allocate one page each.
	frames    []byte
	freePages [][]byte
}

// framePages is how many page frames each slab allocation carries.
const framePages = 64

// NewArray builds an array holding totalPages physical pages.
func NewArray(prof Profile, totalPages uint64) (*Array, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if totalPages == 0 {
		return nil, fmt.Errorf("flash %s: need at least one page", prof.Name)
	}
	a := &Array{
		prof:  prof,
		pages: totalPages,
		chan_: sim.NewPipe(prof.Name+".chan", prof.ChannelBW, sim.Microseconds(1)),
		store: map[uint64][]byte{},
	}
	for i := 0; i < prof.Dies; i++ {
		a.dies = append(a.dies, sim.NewResource(fmt.Sprintf("%s.die%d", prof.Name, i)))
	}
	return a, nil
}

// Profile returns the medium profile.
func (a *Array) Profile() Profile { return a.prof }

// Pages returns the physical page count.
func (a *Array) Pages() uint64 { return a.pages }

// Stats returns an activity snapshot.
func (a *Array) Stats() Stats { return a.stats }

func (a *Array) die(page uint64) *sim.Resource { return a.dies[page%uint64(a.prof.Dies)] }

// newFrame returns a zeroed page frame (recycled or carved from the
// slab). Frames must read as zero: ProgramPage may copy fewer than
// PageBytes into one, and unwritten tails are architecturally erased.
func (a *Array) newFrame() []byte {
	if f := a.rawFrame(); f != nil {
		for i := range f {
			f[i] = 0
		}
		return f
	}
	pb := a.prof.PageBytes
	if len(a.frames) < pb {
		a.frames = make([]byte, framePages*pb)
	}
	f := a.frames[:pb:pb]
	a.frames = a.frames[pb:]
	return f
}

// rawFrame returns a recycled frame with stale contents, or nil when
// both the local recycle list and the package pool are empty. Callers
// that overwrite the whole frame (CopyFrom) use it directly; newFrame
// zeroes it.
func (a *Array) rawFrame() []byte {
	if n := len(a.freePages); n > 0 {
		f := a.freePages[n-1]
		a.freePages = a.freePages[:n-1]
		return f
	}
	return pooledFrame(a.prof.PageBytes)
}

func (a *Array) check(page uint64) error {
	if page >= a.pages {
		return fmt.Errorf("flash %s: page %d outside array (%d pages)", a.prof.Name, page, a.pages)
	}
	return nil
}

// ReadPage senses one physical page and moves it over the channel.
func (a *Array) ReadPage(at sim.Time, page uint64) (data []byte, done sim.Time, err error) {
	data = make([]byte, a.prof.PageBytes)
	done, err = a.ReadPageInto(at, page, data)
	if err != nil {
		return nil, 0, err
	}
	return data, done, nil
}

// ReadPageInto is ReadPage into a caller-provided whole-page buffer
// (never-programmed pages read as zero, so dst may hold stale bytes).
func (a *Array) ReadPageInto(at sim.Time, page uint64, dst []byte) (done sim.Time, err error) {
	if err := a.check(page); err != nil {
		return 0, err
	}
	if len(dst) != a.prof.PageBytes {
		return 0, fmt.Errorf("flash %s: %d-byte buffer for a %d-byte page", a.prof.Name, len(dst), a.prof.PageBytes)
	}
	senseEnd := a.die(page).AcquireUntil(at, a.prof.PageRead())
	done = a.chan_.Transfer(senseEnd, int64(a.prof.PageBytes))
	if p, ok := a.store[page]; ok {
		copy(dst, p)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	a.stats.PageReads++
	a.stats.BytesMoved += int64(a.prof.PageBytes)
	return done, nil
}

// ProgramPage writes one physical page; the channel transfer precedes the
// die program, and the returned time is full persistence (flash programs
// must complete before the page is readable).
func (a *Array) ProgramPage(at sim.Time, page uint64, data []byte) (done sim.Time, err error) {
	if err := a.check(page); err != nil {
		return 0, err
	}
	if len(data) > a.prof.PageBytes {
		return 0, fmt.Errorf("flash %s: %d bytes exceed the %d-byte page", a.prof.Name, len(data), a.prof.PageBytes)
	}
	xferDone := a.chan_.Transfer(at, int64(a.prof.PageBytes))
	done = a.die(page).AcquireUntil(xferDone, a.prof.PageProgram())
	p, ok := a.store[page]
	if !ok {
		p = a.newFrame()
		a.store[page] = p
	}
	copy(p, data)
	a.stats.PagePrograms++
	a.stats.BytesMoved += int64(a.prof.PageBytes)
	return done, nil
}

// EraseBlock erases the block containing page (no-op duration for media
// without erase).
func (a *Array) EraseBlock(at sim.Time, page uint64) (done sim.Time, err error) {
	if err := a.check(page); err != nil {
		return 0, err
	}
	base := page - page%uint64(a.prof.PagesPerBlock)
	done = a.die(page).AcquireUntil(at, a.prof.EraseBlock)
	for p := base; p < base+uint64(a.prof.PagesPerBlock) && p < a.pages; p++ {
		if f, ok := a.store[p]; ok {
			a.freePages = append(a.freePages, f)
			delete(a.store, p)
		}
	}
	a.stats.BlockErases++
	return done, nil
}

// Drain returns when all dies are idle.
func (a *Array) Drain() sim.Time {
	var t sim.Time
	for _, d := range a.dies {
		t = sim.Max(t, d.FreeAt())
	}
	return sim.Max(t, a.chan_.FreeAt())
}

var _ mem.Drainer = (*Array)(nil)
