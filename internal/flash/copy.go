package flash

import "sync"

// framePool recycles page frames across simulation runs, keyed by page
// size (media profiles differ). Pooled frames hold stale bytes; newFrame
// zeroes on acquisition, CopyFrom overwrites whole frames and skips the
// clear.
var framePool = struct {
	mu     sync.Mutex
	bySize map[int][][]byte
}{bySize: map[int][][]byte{}}

func pooledFrame(pb int) []byte {
	framePool.mu.Lock()
	defer framePool.mu.Unlock()
	list := framePool.bySize[pb]
	n := len(list)
	if n == 0 {
		return nil
	}
	f := list[n-1]
	list[n-1] = nil
	framePool.bySize[pb] = list[:n-1]
	return f
}

// Release returns every stored and recycled page frame to the package
// pool and empties the store. Call only once the array's contents are no
// longer needed.
func (a *Array) Release() {
	pb := a.prof.PageBytes
	framePool.mu.Lock()
	list := framePool.bySize[pb]
	for page, f := range a.store {
		list = append(list, f)
		delete(a.store, page)
	}
	list = append(list, a.freePages...)
	framePool.bySize[pb] = list
	framePool.mu.Unlock()
	a.freePages = a.freePages[:0]
}

// CopyFrom clones src's timelines, activity stats and page contents into
// a. Both arrays must share the same profile and page count. Page frames
// are drawn from a's own slab/recycle pool, so the two arrays never
// alias storage; the pools themselves are allocation scaffolding, not
// simulated state, and are left as-is.
func (a *Array) CopyFrom(src *Array) {
	for i := range a.dies {
		a.dies[i].CopyFrom(src.dies[i])
	}
	a.chan_.CopyFrom(src.chan_)
	a.stats = src.stats
	for page, f := range a.store {
		a.freePages = append(a.freePages, f)
		delete(a.store, page)
	}
	for page, data := range src.store {
		f := a.rawFrame()
		if f == nil {
			f = a.newFrame()
		}
		copy(f, data)
		a.store[page] = f
	}
}

// Release returns the NOR contents' pages to the mem package pool.
func (n *NOR) Release() { n.store.Release() }

// CopyFrom clones src's bus timeline, traffic totals and contents into n.
func (n *NOR) CopyFrom(src *NOR) {
	n.bus.CopyFrom(src.bus)
	n.store.CopyFrom(src.store)
	n.reads = src.reads
	n.writes = src.writes
	n.bytesRead = src.bytesRead
	n.bytesWritten = src.bytesWritten
}
