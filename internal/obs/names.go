package obs

import "strings"

// Instrument name catalog. Every counter, histogram and series name the
// simulator emits is declared here (with per-instance indices
// normalized: ch0/ch1 -> chN, pe0..pe7 -> peN), and a test in
// internal/system asserts the live registries stay inside the catalog —
// a typo'd key registers as drift instead of silently forking a new
// instrument.

// Histogram instruments (_ps suffix: picosecond samples).
const (
	// memctrl per-access service latency, split by direction and
	// outcome: RDB hit (both addressing phases skipped), RAB hit
	// (pre-active skipped), full three-phase access, and reads that
	// paused an in-flight program (write pausing).
	HistMemReadRDBHit = "memctrl.read.rdb_hit_ps"
	HistMemReadRABHit = "memctrl.read.rab_hit_ps"
	HistMemReadFull   = "memctrl.read.full_ps"
	HistMemReadPaused = "memctrl.read.paused_ps"
	HistMemWriteFull  = "memctrl.write.full_row_ps"
	HistMemWriteRMW   = "memctrl.write.rmw_ps"

	// Cache hit/miss service latency per level.
	HistCacheL1Hit  = "cache.l1.hit_ps"
	HistCacheL1Miss = "cache.l1.miss_ps"
	HistCacheL2Hit  = "cache.l2.hit_ps"
	HistCacheL2Miss = "cache.l2.miss_ps"

	// Accelerator: per-agent kernel runtime (compute+stall), cache
	// flush time, and job-queue wait under the RunJobs scheduler.
	HistAccelKernel  = "accel.kernel_ps"
	HistAccelFlush   = "accel.flush_ps"
	HistAccelJobWait = "accel.job_wait_ps"

	// SSD request service latency and FTL page-program latency.
	HistSSDRead       = "ssd.read_ps"
	HistSSDWrite      = "ssd.write_ps"
	HistSSDFTLProgram = "ssd.ftl.program_ps"

	// End-to-end phase walls, one sample per system run.
	HistSystemLoad   = "system.load_ps"
	HistSystemKernel = "system.kernel_ps"
	HistSystemStore  = "system.store_ps"
)

// Series instruments (per-simulated-time-window accumulations).
const (
	// Bandwidth in/out of the PRAM subsystem (bytes per window, stamped
	// at access completion).
	SeriesMemBytesRead    = "memctrl.bytes_read"
	SeriesMemBytesWritten = "memctrl.bytes_written"
	// Read-outcome counts per window; rdb_hits/reads is the windowed
	// RDB hit rate.
	SeriesMemReads   = "memctrl.reads"
	SeriesMemRDBHits = "memctrl.rdb_hits"
	SeriesMemRABHits = "memctrl.rab_hits"
	// Picoseconds of program stretch injected by write pausing.
	SeriesMemWritePause = "memctrl.write_pause_ps"
	// Aggregate PE busy (compute) and memory-stall picoseconds per
	// window; busy/(busy+stall) is the windowed busy fraction.
	SeriesPEBusy  = "accel.pe_busy_ps"
	SeriesPEStall = "accel.pe_stall_ps"
)

// catalog holds every legal normalized instrument name.
var catalog = map[string]bool{}

func catalogAll(names ...string) {
	for _, n := range names {
		catalog[n] = true
	}
}

func init() {
	// Histograms and series.
	catalogAll(
		HistMemReadRDBHit, HistMemReadRABHit, HistMemReadFull, HistMemReadPaused,
		HistMemWriteFull, HistMemWriteRMW,
		HistCacheL1Hit, HistCacheL1Miss, HistCacheL2Hit, HistCacheL2Miss,
		HistAccelKernel, HistAccelFlush, HistAccelJobWait,
		HistSSDRead, HistSSDWrite, HistSSDFTLProgram,
		HistSystemLoad, HistSystemKernel, HistSystemStore,
		SeriesMemBytesRead, SeriesMemBytesWritten,
		SeriesMemReads, SeriesMemRDBHits, SeriesMemRABHits, SeriesMemWritePause,
		SeriesPEBusy, SeriesPEStall,
	)
	// Counter registry names (DESIGN.md §9 catalog), normalized.
	catalogAll(
		"memctrl.chN.reads", "memctrl.chN.writes", "memctrl.chN.rab_hits",
		"memctrl.chN.rdb_hits", "memctrl.chN.full_accesses", "memctrl.chN.prefetches",
		"memctrl.chN.interleave_overlaps", "memctrl.chN.pre_erased_rows",
		"memctrl.chN.partition_overlap_won", "memctrl.chN.pause_preempted_reads",
		"memctrl.chN.bytes_read", "memctrl.chN.bytes_written",
		"memctrl.reads", "memctrl.writes", "memctrl.rab_hits", "memctrl.rdb_hits",
		"memctrl.full_accesses", "memctrl.prefetches", "memctrl.interleave_overlaps",
		"memctrl.pre_erased_rows", "memctrl.partition_overlap_won",
		"memctrl.pause_preempted_reads", "memctrl.bytes_read", "memctrl.bytes_written",
		"memctrl.rab_hit_rate", "memctrl.rdb_hit_rate", "memctrl.bus_busy_ps",
		"memctrl.wear.gap_moves", "memctrl.wear.max_wear",
		"pram.preactives", "pram.activates", "pram.window_activates",
		"pram.read_bursts", "pram.write_bursts", "pram.programs", "pram.erases",
		"pram.program_time_ps", "pram.write_pauses",
		"accel.peN.instructions", "accel.peN.busy_ps", "accel.peN.stall_ps",
		"accel.peN.l1.hits", "accel.peN.l1.misses", "accel.peN.l1.evictions",
		"accel.peN.l1.writebacks", "accel.peN.l1.bytes_below", "accel.peN.l1.hit_rate",
		"accel.peN.l2.hits", "accel.peN.l2.misses", "accel.peN.l2.evictions",
		"accel.peN.l2.writebacks", "accel.peN.l2.bytes_below", "accel.peN.l2.hit_rate",
		"accel.instructions", "accel.busy_ps", "accel.stall_ps",
		"accel.psc.boots", "accel.psc.transitions", "accel.job_queue_wait_ps",
		"accel.mcu_busy_ps", "accel.events_dispatched", "accel.events_recycled",
		"sim.events_dispatched", "sim.events_recycled",
		"sim.lane.peN.events", "sim.lane.peN.parked_windows",
		"sim.lane.windows", "sim.lane.barrier_stalls",
		"sim.lane.folded_events", "sim.lane.fold_ratio",
		"sim.lane.jobs.events", "sim.lane.jobs.folded_events",
		"sim.lane.jobs.windows", "sim.lane.jobs.barrier_stalls",
		"sim.lane.load.events", "sim.lane.load.folded_events",
		"sim.lane.load.windows", "sim.lane.load.parked_windows",
		"sim.lane.store.events", "sim.lane.store.folded_events",
		"sim.lane.store.windows", "sim.lane.store.parked_windows",
		"pcie.accel.dmas", "pcie.accel.bytes", "pcie.accel.busy_ps",
		"pcie.ssd.dmas", "pcie.ssd.bytes", "pcie.ssd.busy_ps",
		"dram.reads", "dram.writes", "dram.bytes_read", "dram.bytes_written",
		"system.prefix_forks", "system.prefix_cold_runs",
	)
	for _, p := range []string{"ssd.ext.", "ssd.int."} {
		catalogAll(
			p+"reads", p+"writes", p+"buffer_hits", p+"buffer_misses",
			p+"fills", p+"flushes", p+"ftl.gc_runs", p+"ftl.gc_moves",
			p+"fw_requests", p+"fw_busy_ps", p+"dram_bytes",
		)
	}
	// Blame accounts (DESIGN.md §15): phase/component/cause. Every phase
	// can carry any device cause (the kernel's stall share is subdivided
	// over the same device list); the pe/cache/job-queue causes are
	// kernel-phase only, and raw/ holds unscaled component accounts that
	// cannot join the exclusive tree.
	for _, ph := range []string{"load/", "kernel/", "store/"} {
		catalogAll(
			ph+"unattributed", ph+"host/cpu",
			ph+"pcie.accel/dma", ph+"pcie.ssd/dma",
			ph+"ssd.ext/read", ph+"ssd.ext/write", ph+"ssd.ext/ftl_program",
			ph+"ssd.int/read", ph+"ssd.int/write", ph+"ssd.int/ftl_program",
			ph+"memctrl.chN/rdb_hit", ph+"memctrl.chN/rab_hit",
			ph+"memctrl.chN/full_read", ph+"memctrl.chN/paused_read",
			ph+"memctrl.chN/write_full", ph+"memctrl.chN/write_rmw",
			ph+"memctrl.wear/gap_move",
		)
	}
	catalogAll(
		"kernel/pe/compute", "kernel/pe/stall",
		"kernel/cache.l1/hit", "kernel/cache.l2/hit",
		"kernel/accel/job_queue_wait",
		"raw/cache.l1/miss", "raw/cache.l2/miss",
	)
}

// NormalizeName collapses per-instance indices in an instrument name:
// dotted segments of the form ch<digits> or pe<digits> become chN / peN,
// so one catalog entry covers every channel and PE. Blame account names
// nest components with "/" (phase/component/cause); each part is
// normalized independently.
func NormalizeName(name string) string {
	if strings.Contains(name, "/") {
		parts := strings.Split(name, "/")
		changed := false
		for i, p := range parts {
			if n := NormalizeName(p); n != p {
				parts[i] = n
				changed = true
			}
		}
		if !changed {
			return name
		}
		return strings.Join(parts, "/")
	}
	segs := strings.Split(name, ".")
	changed := false
	for i, s := range segs {
		for _, stem := range [...]string{"ch", "pe"} {
			if len(s) > len(stem) && strings.HasPrefix(s, stem) && allDigits(s[len(stem):]) {
				segs[i] = stem + "N"
				changed = true
			}
		}
	}
	if !changed {
		return name
	}
	return strings.Join(segs, ".")
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// Cataloged reports whether name (after index normalization) is a
// declared instrument.
func Cataloged(name string) bool { return catalog[NormalizeName(name)] }

// CatalogSize returns how many normalized names the catalog declares
// (test hook).
func CatalogSize() int { return len(catalog) }
