package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"dramless/internal/sim"
)

// TraceEvent is one completed simulated-time span. Proc groups spans
// into a Chrome trace "process" row (a subsystem: "pram.ch0", "accel");
// Track is the "thread" within it (a package or PE: "pkg2", "pe5").
type TraceEvent struct {
	Proc  string
	Track string
	Name  string
	Start sim.Time
	End   sim.Time
}

// Tracer records simulated-time spans. The zero value of *Tracer (nil)
// is the disabled tracer: Span returns immediately, so instrumented
// model code needs no enabled-check of its own. Enabled tracers append
// in call order, which under the single-goroutine event engine is the
// deterministic dispatch order.
type Tracer struct {
	events []TraceEvent
}

// NewTracer returns an enabled span recorder.
func NewTracer() *Tracer {
	return &Tracer{events: make([]TraceEvent, 0, 1024)}
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records one completed span. Nil-safe; spans with end <= start are
// dropped (zero-width spans render as noise in the Chrome viewer).
func (t *Tracer) Span(proc, track, name string, start, end sim.Time) {
	if t == nil || end <= start {
		return
	}
	t.events = append(t.events, TraceEvent{Proc: proc, Track: track, Name: name, Start: start, End: end})
}

// Len returns the number of recorded spans (0 for the nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded spans in recording order. The slice is
// shared; callers must not mutate it.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// Reset drops all recorded spans, keeping capacity.
func (t *Tracer) Reset() {
	if t != nil {
		t.events = t.events[:0]
	}
}

// tsMicros converts a sim.Time (picoseconds) to the microsecond float
// timestamps the Chrome trace format expects. Formatted with %.6f it
// preserves picosecond resolution exactly, keeping exports byte-identical
// across runs.
func tsMicros(t sim.Time) float64 {
	return float64(t) / 1e6
}

// WriteChromeJSON exports the recorded spans in the Chrome trace event
// format (load in chrome://tracing or https://ui.perfetto.dev). Each
// distinct Proc becomes a process with a stable pid in first-seen order,
// each (Proc, Track) a thread within it; spans emit as "X" complete
// events with ts/dur in microseconds of simulated time.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: tracing is disabled (nil tracer)")
	}
	bw := bufio.NewWriter(w)

	type trackKey struct{ proc, track string }
	pids := map[string]int{}
	var procs []string
	tids := map[trackKey]int{}
	var tracks []trackKey
	for _, e := range t.events {
		if _, ok := pids[e.Proc]; !ok {
			pids[e.Proc] = len(procs) + 1
			procs = append(procs, e.Proc)
		}
		k := trackKey{e.Proc, e.Track}
		if _, ok := tids[k]; !ok {
			tids[k] = 0 // assigned per-process below
			tracks = append(tracks, k)
		}
	}
	// Number threads within each process in first-seen order.
	perProc := map[string]int{}
	for _, k := range tracks {
		perProc[k.proc]++
		tids[k] = perProc[k.proc]
	}

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n")
		fmt.Fprintf(bw, format, args...)
	}
	for _, p := range procs {
		emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%q}}`, pids[p], p)
	}
	// Sort metadata by (pid, tid) so the export is stable even if track
	// first-use order ever differs from span order.
	sort.SliceStable(tracks, func(i, j int) bool {
		if pids[tracks[i].proc] != pids[tracks[j].proc] {
			return pids[tracks[i].proc] < pids[tracks[j].proc]
		}
		return tids[tracks[i]] < tids[tracks[j]]
	})
	for _, k := range tracks {
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`, pids[k.proc], tids[k], k.track)
	}
	for _, e := range t.events {
		emit(`{"ph":"X","pid":%d,"tid":%d,"name":%q,"ts":%.6f,"dur":%.6f}`,
			pids[e.Proc], tids[trackKey{e.Proc, e.Track}], e.Name,
			tsMicros(e.Start), tsMicros(e.End-e.Start))
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
