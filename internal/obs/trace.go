package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"dramless/internal/sim"
)

// TraceEvent is one completed simulated-time span. Proc groups spans
// into a Chrome trace "process" row (a subsystem: "pram.ch0", "accel");
// Track is the "thread" within it (a package or PE: "pkg2", "pe5").
type TraceEvent struct {
	Proc  string
	Track string
	Name  string
	Start sim.Time
	End   sim.Time
}

// FlowEdge is one causal handoff between two tracks: work finished on
// (FromProc, FromTrack) at time At and continued on (ToProc, ToTrack).
// Components record these at the points they already hand work off
// (phase boundaries, kernel->flush transitions); the Chrome export
// renders them as flow arrows ("s"/"f" events) connecting the spans.
type FlowEdge struct {
	Name      string
	FromProc  string
	FromTrack string
	ToProc    string
	ToTrack   string
	At        sim.Time
}

// Tracer records simulated-time spans. The zero value of *Tracer (nil)
// is the disabled tracer: Span returns immediately, so instrumented
// model code needs no enabled-check of its own. Enabled tracers append
// in call order, which under the single-goroutine event engine is the
// deterministic dispatch order.
type Tracer struct {
	events []TraceEvent
	flows  []FlowEdge
}

// NewTracer returns an enabled span recorder.
func NewTracer() *Tracer {
	return &Tracer{events: make([]TraceEvent, 0, 1024)}
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records one completed span. Nil-safe; spans with end <= start are
// dropped (zero-width spans render as noise in the Chrome viewer).
func (t *Tracer) Span(proc, track, name string, start, end sim.Time) {
	if t == nil || end <= start {
		return
	}
	t.events = append(t.events, TraceEvent{Proc: proc, Track: track, Name: name, Start: start, End: end})
}

// Len returns the number of recorded spans (0 for the nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded spans in recording order. The slice is
// shared; callers must not mutate it.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// Flow records one causal handoff edge. Nil-safe.
func (t *Tracer) Flow(name, fromProc, fromTrack, toProc, toTrack string, at sim.Time) {
	if t == nil {
		return
	}
	t.flows = append(t.flows, FlowEdge{
		Name: name, FromProc: fromProc, FromTrack: fromTrack,
		ToProc: toProc, ToTrack: toTrack, At: at,
	})
}

// Flows returns the recorded handoff edges in recording order. The
// slice is shared; callers must not mutate it.
func (t *Tracer) Flows() []FlowEdge {
	if t == nil {
		return nil
	}
	return t.flows
}

// Reset drops all recorded spans and flows, keeping capacity.
func (t *Tracer) Reset() {
	if t != nil {
		t.events = t.events[:0]
		t.flows = t.flows[:0]
	}
}

// PathSeg is one segment of a critical path: the span that was the
// latest-started work covering this stretch of simulated time, or an
// idle gap (empty Proc) where no recorded span was active.
type PathSeg struct {
	Proc  string
	Track string
	Name  string
	Start sim.Time
	End   sim.Time
}

// Dur returns the segment's width.
func (s PathSeg) Dur() sim.Duration { return sim.Duration(s.End - s.Start) }

// CriticalPath extracts the blocking chain over [start, end] from the
// recorded span forest: every instant is attributed to the
// latest-started recorded span active there (ties to the later-recorded
// span, so nested work beats its enclosing span), and stretches no span
// covers become idle segments. Adjacent stretches with the same
// attribution merge, and the result tiles [start, end] exactly —
// segment durations always sum to end-start — in ascending time order.
// Nil-safe (nil tracer returns one idle segment).
func (t *Tracer) CriticalPath(start, end sim.Time) []PathSeg {
	if end <= start {
		return nil
	}
	if t == nil || len(t.events) == 0 {
		return []PathSeg{{Start: start, End: end}}
	}
	// Elementary boundaries: every span edge inside the window. Between
	// two consecutive boundaries the set of active spans is constant.
	bounds := make([]sim.Time, 0, 2*len(t.events)+2)
	bounds = append(bounds, start)
	for _, e := range t.events {
		if e.Start > start && e.Start < end {
			bounds = append(bounds, e.Start)
		}
		if e.End > start && e.End < end {
			bounds = append(bounds, e.End)
		}
	}
	bounds = append(bounds, end)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	// Sweep the boundaries with a lazy-deletion max-heap ordered by
	// (Start, recording index): the heap top is the latest-started span
	// still active over the current elementary interval.
	order := make([]int, len(t.events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return t.events[order[a]].Start < t.events[order[b]].Start
	})
	later := func(a, b int) bool { // span a started later than span b
		if t.events[a].Start != t.events[b].Start {
			return t.events[a].Start > t.events[b].Start
		}
		return a > b
	}
	var heap []int
	push := func(idx int) {
		heap = append(heap, idx)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !later(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() {
		n := len(heap) - 1
		heap[0] = heap[n]
		heap = heap[:n]
		for i := 0; ; {
			big, l, r := i, 2*i+1, 2*i+2
			if l < n && later(heap[l], heap[big]) {
				big = l
			}
			if r < n && later(heap[r], heap[big]) {
				big = r
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}

	var segs []PathSeg
	next := 0     // next span (by ascending Start) not yet pushed
	curAttr := -2 // attribution of the open segment (-1 idle, -2 none)
	for bi := 0; bi+1 < len(uniq); bi++ {
		t0, t1 := uniq[bi], uniq[bi+1]
		for next < len(order) && t.events[order[next]].Start <= t0 {
			push(order[next])
			next++
		}
		for len(heap) > 0 && t.events[heap[0]].End <= t0 {
			pop()
		}
		attr := -1
		if len(heap) > 0 {
			attr = heap[0]
		}
		if attr == curAttr {
			segs[len(segs)-1].End = t1
			continue
		}
		seg := PathSeg{Start: t0, End: t1}
		if attr >= 0 {
			e := t.events[attr]
			seg.Proc, seg.Track, seg.Name = e.Proc, e.Track, e.Name
		}
		segs = append(segs, seg)
		curAttr = attr
	}
	return segs
}

// tsMicros converts a sim.Time (picoseconds) to the microsecond float
// timestamps the Chrome trace format expects. Formatted with %.6f it
// preserves picosecond resolution exactly, keeping exports byte-identical
// across runs.
func tsMicros(t sim.Time) float64 {
	return float64(t) / 1e6
}

// WriteChromeJSON exports the recorded spans in the Chrome trace event
// format (load in chrome://tracing or https://ui.perfetto.dev). Each
// distinct Proc becomes a process with a stable pid in first-seen order,
// each (Proc, Track) a thread within it; spans emit as "X" complete
// events with ts/dur in microseconds of simulated time.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: tracing is disabled (nil tracer)")
	}
	bw := bufio.NewWriter(w)

	type trackKey struct{ proc, track string }
	pids := map[string]int{}
	var procs []string
	tids := map[trackKey]int{}
	var tracks []trackKey
	note := func(proc, track string) {
		if _, ok := pids[proc]; !ok {
			pids[proc] = len(procs) + 1
			procs = append(procs, proc)
		}
		k := trackKey{proc, track}
		if _, ok := tids[k]; !ok {
			tids[k] = 0 // assigned per-process below
			tracks = append(tracks, k)
		}
	}
	for _, e := range t.events {
		note(e.Proc, e.Track)
	}
	for _, f := range t.flows {
		note(f.FromProc, f.FromTrack)
		note(f.ToProc, f.ToTrack)
	}
	// Number threads within each process in first-seen order.
	perProc := map[string]int{}
	for _, k := range tracks {
		perProc[k.proc]++
		tids[k] = perProc[k.proc]
	}

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n")
		fmt.Fprintf(bw, format, args...)
	}
	for _, p := range procs {
		emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%q}}`, pids[p], p)
	}
	// Sort metadata by (pid, tid) so the export is stable even if track
	// first-use order ever differs from span order.
	sort.SliceStable(tracks, func(i, j int) bool {
		if pids[tracks[i].proc] != pids[tracks[j].proc] {
			return pids[tracks[i].proc] < pids[tracks[j].proc]
		}
		return tids[tracks[i]] < tids[tracks[j]]
	})
	for _, k := range tracks {
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`, pids[k.proc], tids[k], k.track)
	}
	for _, e := range t.events {
		emit(`{"ph":"X","pid":%d,"tid":%d,"name":%q,"ts":%.6f,"dur":%.6f}`,
			pids[e.Proc], tids[trackKey{e.Proc, e.Track}], e.Name,
			tsMicros(e.Start), tsMicros(e.End-e.Start))
	}
	// Causal handoffs render as flow arrows: an "s" event on the
	// producing track paired with a binding-point "f" on the consuming
	// one, sharing an id in recording order.
	for i, f := range t.flows {
		emit(`{"ph":"s","pid":%d,"tid":%d,"name":%q,"cat":"flow","id":%d,"ts":%.6f}`,
			pids[f.FromProc], tids[trackKey{f.FromProc, f.FromTrack}], f.Name, i+1, tsMicros(f.At))
		emit(`{"ph":"f","bp":"e","pid":%d,"tid":%d,"name":%q,"cat":"flow","id":%d,"ts":%.6f}`,
			pids[f.ToProc], tids[trackKey{f.ToProc, f.ToTrack}], f.Name, i+1, tsMicros(f.At))
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
