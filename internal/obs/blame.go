package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// Blame is a hierarchical exact-integer simulated-time account: an
// ordered registry of named picosecond totals whose names are
// slash-separated levels (phase/component/cause, e.g.
// "kernel/memctrl.ch0/pause_behind_program"). It follows the same
// contract as Counters: registration order is deterministic because
// every producer adds accounts in fixed code order, Add on a nil
// receiver is a no-op (the disabled handle model code holds when
// observation is off), and the JSON export is byte-deterministic.
//
// The system layer maintains the exactness invariant: for every phase
// P, the sum of all "P/..." accounts equals the phase wall to the
// picosecond (see internal/system/blame.go and DESIGN.md §15).
type Blame struct {
	idx  map[string]int
	list []BlameEntry
}

// BlameEntry is one account: a full slash-separated name and its
// picosecond total.
type BlameEntry struct {
	Name string `json:"name"`
	PS   int64  `json:"ps"`
}

// NewBlame returns an empty account set.
func NewBlame() *Blame { return &Blame{} }

// Add accumulates ps into the named account, registering it on first
// use. Nil-safe.
func (b *Blame) Add(name string, ps int64) {
	if b == nil {
		return
	}
	if i, ok := b.idx[name]; ok {
		b.list[i].PS += ps
		return
	}
	if b.idx == nil {
		b.idx = make(map[string]int)
	}
	b.idx[name] = len(b.list)
	b.list = append(b.list, BlameEntry{Name: name, PS: ps})
}

// Get returns the named account's total (0 when absent). Nil-safe.
func (b *Blame) Get(name string) int64 {
	if b == nil {
		return 0
	}
	if i, ok := b.idx[name]; ok {
		return b.list[i].PS
	}
	return 0
}

// Len returns how many accounts are registered.
func (b *Blame) Len() int {
	if b == nil {
		return 0
	}
	return len(b.list)
}

// Entries returns the accounts in registration order. The slice is
// shared; callers must not mutate it.
func (b *Blame) Entries() []BlameEntry {
	if b == nil {
		return nil
	}
	return b.list
}

// Sum totals every account whose name starts with prefix (use
// "load/" for one phase's accounts). Nil-safe.
func (b *Blame) Sum(prefix string) int64 {
	if b == nil {
		return 0
	}
	var sum int64
	for _, e := range b.list {
		if strings.HasPrefix(e.Name, prefix) {
			sum += e.PS
		}
	}
	return sum
}

// Merge accumulates other's accounts into b, registering new names at
// the tail in other's order. Nil-safe on both sides.
func (b *Blame) Merge(other *Blame) {
	if b == nil || other == nil {
		return
	}
	for _, e := range other.list {
		b.Add(e.Name, e.PS)
	}
}

// Equal reports whether both sets hold the same accounts in the same
// order with identical totals.
func (b *Blame) Equal(other *Blame) bool {
	if b.Len() != other.Len() {
		return false
	}
	for i, e := range b.Entries() {
		if other.list[i] != e {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first few account
// differences (for test failure messages); empty when Equal.
func (b *Blame) Diff(other *Blame) string {
	if b.Equal(other) {
		return ""
	}
	if b.Len() != other.Len() {
		return fmt.Sprintf("  %d accounts != %d\n", b.Len(), other.Len())
	}
	out := ""
	diffs := 0
	for i, e := range b.Entries() {
		o := other.list[i]
		if e != o && diffs < 8 {
			out += fmt.Sprintf("  position %d: %s=%d != %s=%d\n", i, e.Name, e.PS, o.Name, o.PS)
			diffs++
		}
	}
	return out
}

// MarshalJSON renders the accounts as an ordered array. The export is
// byte-deterministic: order is registration order and every field is
// integer.
func (b *Blame) MarshalJSON() ([]byte, error) {
	out := b.Entries()
	if out == nil {
		out = []BlameEntry{}
	}
	return json.Marshal(out)
}

// WriteJSON writes the accounts as indented JSON (ReadBlameJSON parses
// it back).
func (b *Blame) WriteJSON(w io.Writer) error {
	out := b.Entries()
	if out == nil {
		out = []BlameEntry{}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadBlameJSON parses a WriteJSON/MarshalJSON export back into a
// Blame (the blame subcommand's file and diff modes work from exported
// files, not live runs).
func ReadBlameJSON(r io.Reader) (*Blame, error) {
	var in []BlameEntry
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("obs: parsing blame export: %w", err)
	}
	b := NewBlame()
	for _, e := range in {
		b.Add(e.Name, e.PS)
	}
	return b, nil
}

// TopShares returns the n largest accounts under prefix by total,
// largest first (ties by registration order), each with its share of
// the prefix sum in parts per thousand.
func (b *Blame) TopShares(prefix string, n int) []BlameShare {
	if b == nil {
		return nil
	}
	total := b.Sum(prefix)
	var out []BlameShare
	for _, e := range b.Entries() {
		if strings.HasPrefix(e.Name, prefix) && e.PS != 0 {
			s := BlameShare{Name: e.Name, PS: e.PS}
			if total > 0 {
				s.Permille = e.PS * 1000 / total
			}
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].PS > out[j].PS })
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// BlameShare is one ranked account: its total and share of the ranked
// scope in parts per thousand.
type BlameShare struct {
	Name     string
	PS       int64
	Permille int64
}

// Exact-integer apportionment ----------------------------------------

// MulDiv returns floor(a*b/div) and the remainder a*b mod div using
// 128-bit intermediate arithmetic. All inputs must be non-negative and
// the quotient must fit int64 (guaranteed when a <= div and b < 2^63,
// the blame scaler's usage: the scaled share never exceeds the wall).
func MulDiv(a, b, div int64) (q, r int64) {
	if div <= 0 || a == 0 || b == 0 {
		return 0, 0
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	qq, rr := bits.Div64(hi, lo, uint64(div))
	return int64(qq), int64(rr)
}

// Apportion splits total exactly over the given non-negative weights:
// each share is floor(w_i*total/sum(w)) plus at most one unit from the
// largest-remainder distribution, ties broken by lower index. The
// returned shares always sum to total exactly; a nil result means the
// weights sum to zero (nothing to attribute).
func Apportion(total int64, weights []int64) []int64 {
	var wsum int64
	for _, w := range weights {
		wsum += w
	}
	if wsum <= 0 || total <= 0 {
		return nil
	}
	shares := make([]int64, len(weights))
	rems := make([]int64, len(weights))
	var given int64
	for i, w := range weights {
		shares[i], rems[i] = MulDiv(w, total, wsum)
		given += shares[i]
	}
	// Distribute the floor slack to the largest remainders; slack is
	// < len(weights), so one pass over a sorted index list suffices.
	slack := total - given
	if slack > 0 {
		order := make([]int, len(weights))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, c int) bool { return rems[order[a]] > rems[order[c]] })
		for k := int64(0); k < slack; k++ {
			shares[order[k%int64(len(order))]]++
		}
	}
	return shares
}

// WriteTree renders the accounts as an indented two-space tree grouped
// by slash level, each line with the account's duration in picoseconds
// and its share of the root level. fmtPS formats a picosecond total
// for display (nil prints raw integers).
func (b *Blame) WriteTree(w io.Writer, fmtPS func(int64) string) error {
	if fmtPS == nil {
		fmtPS = func(ps int64) string { return fmt.Sprintf("%dps", ps) }
	}
	type node struct {
		name     string
		ps       int64
		children []*node
		index    map[string]*node
	}
	root := &node{index: map[string]*node{}}
	for _, e := range b.Entries() {
		parts := strings.Split(e.Name, "/")
		cur := root
		for _, p := range parts {
			child, ok := cur.index[p]
			if !ok {
				child = &node{name: p, index: map[string]*node{}}
				cur.index[p] = child
				cur.children = append(cur.children, child)
			}
			cur = child
		}
		cur.ps += e.PS
	}
	var sum func(n *node) int64
	sum = func(n *node) int64 {
		if len(n.children) == 0 {
			return n.ps
		}
		var s int64
		for _, c := range n.children {
			s += sum(c)
		}
		n.ps = s
		return s
	}
	sum(root)
	var write func(n *node, depth int, total int64) error
	write = func(n *node, depth int, total int64) error {
		if depth >= 0 {
			pct := ""
			if total > 0 {
				pct = fmt.Sprintf(" %5.1f%%", 100*float64(n.ps)/float64(total))
			}
			if _, err := fmt.Fprintf(w, "%s%-*s %12s%s\n",
				strings.Repeat("  ", depth), 28-2*depth, n.name, fmtPS(n.ps), pct); err != nil {
				return err
			}
		}
		for _, c := range n.children {
			if err := write(c, depth+1, total); err != nil {
				return err
			}
		}
		return nil
	}
	for _, top := range root.children {
		if err := write(top, 0, top.ps); err != nil {
			return err
		}
	}
	return nil
}
