// Package obs is the observability layer of the simulator: a
// deterministic Counters registry (typed counters and gauges, named per
// subsystem) and a Tracer that records simulated-time spans and exports
// them as Chrome chrome://tracing JSON.
//
// The layer is zero-overhead when disabled. Every recording entry point
// is nil-safe — calling Span on a nil *Tracer or reading a nil *Observer
// returns immediately — so model code threads observer handles
// unconditionally and pays one predictable nil check on the hot path
// when observation is off (pinned by TestNilObserverAllocationFree).
//
// Determinism: counters are collected from single-goroutine simulation
// state in fixed code order, and spans are recorded in dispatch order of
// the (deterministic) event engine, so identical runs produce identical
// counter sets and byte-identical trace exports.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dramless/internal/sim"
)

// Kind distinguishes the typed registry entries.
type Kind uint8

const (
	// KindCounter is a monotonically accumulated int64 (events, bytes,
	// picoseconds of busy time).
	KindCounter Kind = iota
	// KindGauge is a point-in-time float64 (hit rates, utilizations).
	KindGauge
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Entry is one named registry value.
type Entry struct {
	Name  string
	Kind  Kind
	Int   int64   // counter value (KindCounter)
	Float float64 // gauge value (KindGauge)
}

// Counters is an ordered registry of named counters and gauges. The zero
// value is ready to use. Names are dotted per-subsystem paths
// ("memctrl.ch0.rdb_hits", "accel.pe3.busy_ps"); entries keep their
// registration order, which is deterministic because every collector
// walks its components in fixed code order.
type Counters struct {
	idx  map[string]int
	list []Entry
}

// slot returns the entry index for name, creating it with the given kind.
func (c *Counters) slot(name string, kind Kind) int {
	if i, ok := c.idx[name]; ok {
		return i
	}
	if c.idx == nil {
		c.idx = make(map[string]int)
	}
	c.idx[name] = len(c.list)
	c.list = append(c.list, Entry{Name: name, Kind: kind})
	return len(c.list) - 1
}

// Add accumulates delta into the named counter, registering it on first
// use. Nil-safe.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.list[c.slot(name, KindCounter)].Int += delta
}

// SetGauge sets the named gauge, registering it on first use. Nil-safe.
func (c *Counters) SetGauge(name string, v float64) {
	if c == nil {
		return
	}
	c.list[c.slot(name, KindGauge)].Float = v
}

// Get returns the named counter's value (0 when absent).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	if i, ok := c.idx[name]; ok {
		return c.list[i].Int
	}
	return 0
}

// Gauge returns the named gauge's value (0 when absent).
func (c *Counters) Gauge(name string) float64 {
	if c == nil {
		return 0
	}
	if i, ok := c.idx[name]; ok {
		return c.list[i].Float
	}
	return 0
}

// Has reports whether name is registered.
func (c *Counters) Has(name string) bool {
	if c == nil {
		return false
	}
	_, ok := c.idx[name]
	return ok
}

// Len returns how many entries are registered.
func (c *Counters) Len() int {
	if c == nil {
		return 0
	}
	return len(c.list)
}

// Entries returns the registry in registration order. The slice is
// shared; callers must not mutate it.
func (c *Counters) Entries() []Entry {
	if c == nil {
		return nil
	}
	return c.list
}

// Names returns every registered name in registration order.
func (c *Counters) Names() []string {
	if c == nil {
		return nil
	}
	out := make([]string, len(c.list))
	for i, e := range c.list {
		out[i] = e.Name
	}
	return out
}

// Merge accumulates other into c: counters add, gauges overwrite. New
// names register at the tail in other's order.
func (c *Counters) Merge(other *Counters) {
	if c == nil || other == nil {
		return
	}
	for _, e := range other.list {
		switch e.Kind {
		case KindCounter:
			c.Add(e.Name, e.Int)
		case KindGauge:
			c.SetGauge(e.Name, e.Float)
		}
	}
}

// Equal reports whether both registries hold the same entries in the
// same order with identical values. Gauges compare exactly: the
// determinism guarantee is bit-identical floats, not approximate ones.
func (c *Counters) Equal(other *Counters) bool {
	if c.Len() != other.Len() {
		return false
	}
	if c == nil || other == nil {
		return true // both empty
	}
	for i, e := range c.list {
		o := other.list[i]
		if e != o {
			return false
		}
	}
	return true
}

// kind returns the named entry's kind (KindCounter when absent).
func (c *Counters) kind(name string) Kind {
	if c == nil {
		return KindCounter
	}
	if i, ok := c.idx[name]; ok {
		return c.list[i].Kind
	}
	return KindCounter
}

// Diff returns a human-readable description of the first few differences
// between two registries (for test failure messages); empty when Equal.
// Names are reported in sorted order so the output is deterministic
// regardless of registration order; kind mismatches (a gauge in one
// registry, a counter in the other) and pure registration-order skew —
// which Equal rejects even when every value matches — are both reported.
func (c *Counters) Diff(other *Counters) string {
	var sb strings.Builder
	names := map[string]bool{}
	for _, n := range c.Names() {
		names[n] = true
	}
	for _, n := range other.Names() {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	diffs := 0
	for _, n := range ordered {
		if diffs >= 8 {
			fmt.Fprintf(&sb, "  ...\n")
			break
		}
		switch {
		case !c.Has(n):
			fmt.Fprintf(&sb, "  %s: missing left\n", n)
			diffs++
		case !other.Has(n):
			fmt.Fprintf(&sb, "  %s: missing right\n", n)
			diffs++
		case c.kind(n) != other.kind(n):
			fmt.Fprintf(&sb, "  %s: %s != %s\n", n, c.kind(n), other.kind(n))
			diffs++
		case c.Get(n) != other.Get(n) || c.Gauge(n) != other.Gauge(n):
			fmt.Fprintf(&sb, "  %s: %d/%g != %d/%g\n", n, c.Get(n), c.Gauge(n), other.Get(n), other.Gauge(n))
			diffs++
		}
	}
	if diffs == 0 && !c.Equal(other) {
		for i, e := range c.Entries() {
			if i >= other.Len() {
				break
			}
			if o := other.Entries()[i]; e.Name != o.Name {
				fmt.Fprintf(&sb, "  position %d: %q != %q (registration order differs)\n", i, e.Name, o.Name)
				break
			}
		}
	}
	return sb.String()
}

// WriteTo renders the registry as an aligned text table in registration
// order.
func (c *Counters) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range c.Entries() {
		var n int
		var err error
		switch e.Kind {
		case KindGauge:
			n, err = fmt.Fprintf(w, "%-40s %14.4f\n", e.Name, e.Float)
		default:
			n, err = fmt.Fprintf(w, "%-40s %14d\n", e.Name, e.Int)
		}
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// MarshalJSON renders the registry as an ordered array of entries.
func (c *Counters) MarshalJSON() ([]byte, error) {
	type jsonEntry struct {
		Name  string   `json:"name"`
		Kind  string   `json:"kind"`
		Value *int64   `json:"value,omitempty"`
		Gauge *float64 `json:"gauge,omitempty"`
	}
	out := make([]jsonEntry, 0, c.Len())
	for _, e := range c.Entries() {
		je := jsonEntry{Name: e.Name, Kind: e.Kind.String()}
		switch e.Kind {
		case KindGauge:
			g := e.Float
			je.Gauge = &g
		default:
			v := e.Int
			je.Value = &v
		}
		out = append(out, je)
	}
	return json.Marshal(out)
}

// Observer is the handle model code threads through the stack: a
// Counters registry that accumulates across observed runs and an
// optional Tracer for the simulated-time timeline. A nil *Observer is
// the disabled state — every accessor returns the corresponding nil
// handle and recording becomes a no-op.
//
// An Observer is not safe for concurrent use: attach it to runs that
// execute one at a time (the parallel experiment engine never attaches
// observers to its pooled simulations).
type Observer struct {
	counters Counters
	tracer   *Tracer
	hists    HistogramSet
	series   *SeriesSet
	blame    Blame
}

// Option customizes New.
type Option func(*Observer)

// WithTracing enables simulated-time span recording (Chrome trace
// export). Without it the Observer only accumulates counters.
func WithTracing() Option {
	return func(o *Observer) { o.tracer = NewTracer() }
}

// WithSeriesWindow sets the simulated-time window the Observer's series
// accumulate over (DefaultSeriesWindow otherwise). It must precede any
// recording: handles resolve their window at registration.
func WithSeriesWindow(window sim.Duration) Option {
	return func(o *Observer) { o.series = NewSeriesSet(window) }
}

// New builds an Observer.
func New(opts ...Option) *Observer {
	o := &Observer{}
	for _, fn := range opts {
		fn(o)
	}
	if o.series == nil {
		o.series = NewSeriesSet(DefaultSeriesWindow)
	}
	return o
}

// Tracer returns the span recorder, nil when tracing is disabled or o is
// nil. The nil result is itself safe to record against.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Counters returns the accumulated registry (nil when o is nil; the nil
// registry is safe to read).
func (o *Observer) Counters() *Counters {
	if o == nil {
		return nil
	}
	return &o.counters
}

// Record merges one run's counter snapshot into the Observer's registry.
// Nil-safe on both sides.
func (o *Observer) Record(c *Counters) {
	if o == nil {
		return
	}
	o.counters.Merge(c)
}

// Blame returns the accumulated time-blame account set (nil when o is
// nil; the nil set is safe to read and record against).
func (o *Observer) Blame() *Blame {
	if o == nil {
		return nil
	}
	return &o.blame
}

// RecordBlame merges one run's blame accounts into the Observer's set.
// Nil-safe on both sides.
func (o *Observer) RecordBlame(b *Blame) {
	if o == nil {
		return
	}
	o.blame.Merge(b)
}

// Histograms returns the Observer's latency-histogram registry, nil
// when o is nil. The nil set hands out nil (safely recordable)
// histogram handles, so instrument sites resolve unconditionally.
func (o *Observer) Histograms() *HistogramSet {
	if o == nil {
		return nil
	}
	return &o.hists
}

// Series returns the Observer's windowed time-series registry, nil when
// o is nil (the nil set hands out nil handles).
func (o *Observer) Series() *SeriesSet {
	if o == nil {
		return nil
	}
	return o.series
}

// WriteTrace exports the recorded timeline as Chrome trace JSON. It
// errors when tracing was not enabled.
func (o *Observer) WriteTrace(w io.Writer) error {
	t := o.Tracer()
	if t == nil {
		return fmt.Errorf("obs: observer has no tracer (build it with WithTracing)")
	}
	return t.WriteChromeJSON(w)
}
