package obs

import "testing"

// TestCountersDiffGaugeOnly pins Diff's output for gauge-only
// registries: deterministic sorted-name ordering, gauge values rendered,
// and kind mismatches reported — the failure-message path the
// equivalence tests lean on.
func TestCountersDiffGaugeOnly(t *testing.T) {
	var a, b Counters
	// Register in opposite orders; Diff must still report in sorted
	// name order, independent of registration order.
	a.SetGauge("z.rate", 0.5)
	a.SetGauge("m.rate", 0.25)
	a.SetGauge("a.rate", 1.0)
	b.SetGauge("a.rate", 1.0)
	b.SetGauge("m.rate", 0.75)
	b.SetGauge("z.rate", 0.125)

	want := "  m.rate: 0/0.25 != 0/0.75\n" +
		"  z.rate: 0/0.5 != 0/0.125\n"
	if got := a.Diff(&b); got != want {
		t.Errorf("gauge-only Diff:\n%q\nwant:\n%q", got, want)
	}
	// Deterministic: repeated calls are byte-identical (the name set is
	// map-backed internally; the sort must hide that).
	for i := 0; i < 4; i++ {
		if got := a.Diff(&b); got != want {
			t.Fatalf("Diff is not deterministic, call %d: %q", i, got)
		}
	}
}

func TestCountersDiffKindAndOrder(t *testing.T) {
	// Same name, same zero values, different kinds: Equal is false and
	// Diff must say why.
	var a, b Counters
	a.SetGauge("x", 0)
	b.Add("x", 0)
	if a.Equal(&b) {
		t.Fatal("gauge and counter of the same name must not be Equal")
	}
	if got, want := a.Diff(&b), "  x: gauge != counter\n"; got != want {
		t.Errorf("kind mismatch Diff = %q, want %q", got, want)
	}

	// Identical values in different registration order: Equal is false,
	// so Diff must be non-empty (order skew is a real difference).
	var c, d Counters
	c.SetGauge("first", 1)
	c.SetGauge("second", 2)
	d.SetGauge("second", 2)
	d.SetGauge("first", 1)
	if c.Equal(&d) {
		t.Fatal("registration order is part of Equal")
	}
	if got := c.Diff(&d); got == "" {
		t.Error("Diff must report registration-order skew when Equal is false")
	} else if got != "  position 0: \"first\" != \"second\" (registration order differs)\n" {
		t.Errorf("order-skew Diff = %q", got)
	}

	// Equal registries diff empty.
	var e, f Counters
	e.Add("n", 3)
	f.Add("n", 3)
	if got := e.Diff(&f); got != "" {
		t.Errorf("equal registries must Diff empty, got %q", got)
	}
}
