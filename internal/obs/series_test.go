package obs

import (
	"bytes"
	"strings"
	"testing"

	"dramless/internal/sim"
)

func TestSeriesAddWindows(t *testing.T) {
	set := NewSeriesSet(100)
	s := set.Get("bytes")
	s.Add(0, 5)
	s.Add(99, 5)  // same window
	s.Add(100, 7) // next window
	s.Add(350, 1) // skips window 2
	s.Add(-10, 2) // clamps to window 0
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	want := []int64{12, 7, 0, 1}
	for i, w := range want {
		if got := s.At(i); got != w {
			t.Errorf("window %d = %d, want %d", i, got, w)
		}
	}
	if s.At(99) != 0 || s.At(-1) != 0 {
		t.Error("out-of-range At must read 0")
	}
}

// TestSeriesAddSpanDecomposition pins the property the batched datapath
// relies on: splitting an interval at arbitrary points accumulates
// exactly the same window values as adding it whole.
func TestSeriesAddSpanDecomposition(t *testing.T) {
	whole := NewSeriesSet(100).Get("w")
	split := NewSeriesSet(100).Get("w")

	whole.AddSpan(37, 912)
	for _, cut := range [][2]sim.Time{{37, 40}, {40, 199}, {199, 200}, {200, 650}, {650, 912}} {
		split.AddSpan(cut[0], cut[1])
	}
	if !whole.Equal(split) {
		t.Errorf("decomposed AddSpan differs: whole %v split %v", whole.vals, split.vals)
	}
	// Sum of window contributions equals the span length.
	var sum int64
	for i := 0; i < whole.Len(); i++ {
		sum += whole.At(i)
	}
	if sum != 912-37 {
		t.Errorf("span picoseconds = %d, want %d", sum, 912-37)
	}
	// Window-aligned and empty spans.
	aligned := NewSeriesSet(100).Get("w")
	aligned.AddSpan(200, 400)
	if aligned.At(1) != 0 || aligned.At(2) != 100 || aligned.At(3) != 100 {
		t.Errorf("aligned span landed wrong: %v", aligned.vals)
	}
	aligned.AddSpan(500, 500)
	aligned.AddSpan(500, 400)
	if aligned.Len() != 4 {
		t.Error("empty/inverted spans must not extend the series")
	}
}

func TestSeriesMergeEqual(t *testing.T) {
	a := NewSeriesSet(100)
	b := NewSeriesSet(100)
	a.Get("x").Add(0, 3)
	b.Get("x").Add(0, 3)
	// Trailing zeros are insignificant for Equal.
	b.Get("x").Add(500, 0)
	if !a.Equal(b) {
		t.Errorf("trailing zero windows must not break Equal:\n%s", a.Diff(b))
	}
	b.Get("x").Add(500, 1)
	if a.Equal(b) || a.Diff(b) == "" {
		t.Error("differing windows must fail Equal with a non-empty Diff")
	}
	a.Merge(b)
	if got := a.Get("x").At(0); got != 6 {
		t.Errorf("merged window 0 = %d, want 6", got)
	}
	if got := a.Get("x").At(5); got != 1 {
		t.Errorf("merged window 5 = %d, want 1", got)
	}

	// Mismatched windows are different instruments: Merge must not mix.
	c := NewSeriesSet(999)
	c.Get("x").Add(0, 100)
	a.Merge(c)
	if got := a.Get("x").At(0); got != 6 {
		t.Errorf("mismatched-window merge leaked values: window 0 = %d", got)
	}

	// Nil handles record and compare safely.
	var ns *Series
	ns.Add(0, 1)
	ns.AddSpan(0, 100)
	if ns.Len() != 0 || !ns.Equal((*Series)(nil)) {
		t.Error("nil series must stay empty and equal nil")
	}
}

func TestSeriesSetExport(t *testing.T) {
	set := NewSeriesSet(100)
	set.Get("b.second").Add(0, 1)
	set.Get("a.first").Add(250, 4)

	var csv bytes.Buffer
	if err := set.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "window_start_ps,b.second,a.first\n" +
		"0,1,0\n100,0,0\n200,0,4\n"
	if csv.String() != want {
		t.Errorf("CSV export:\n%q\nwant:\n%q", csv.String(), want)
	}

	var j1, j2 bytes.Buffer
	if err := set.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := set.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("repeated JSON exports differ")
	}
	if !strings.Contains(j1.String(), `"window_ps": 100`) {
		t.Errorf("JSON export missing window: %s", j1.String())
	}
}

// TestSeriesRecordAllocationFree pins steady-state Add/AddSpan at zero
// allocations once the run's time range has been touched.
func TestSeriesRecordAllocationFree(t *testing.T) {
	s := NewSeriesSet(100).Get("pin")
	s.Add(10_000, 1) // touch the range once; growth is amortized append
	allocs := testing.AllocsPerRun(200, func() {
		s.Add(5_000, 2)
		s.AddSpan(1_000, 2_000)
	})
	if allocs != 0 {
		t.Fatalf("steady-state series record allocates %.1f objects per call, want 0", allocs)
	}
	var ns *Series
	allocs = testing.AllocsPerRun(200, func() {
		ns.Add(1, 1)
		ns.AddSpan(0, 10)
	})
	if allocs != 0 {
		t.Fatalf("nil series record allocates %.1f objects per call, want 0", allocs)
	}
}
