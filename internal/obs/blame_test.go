package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestBlameNilSafe(t *testing.T) {
	var b *Blame
	b.Add("load/host/cpu", 10) // must not panic
	if b.Get("load/host/cpu") != 0 || b.Len() != 0 || b.Sum("load/") != 0 {
		t.Fatal("nil Blame must read as empty")
	}
	if b.Entries() != nil || b.TopShares("load/", 3) != nil {
		t.Fatal("nil Blame must enumerate as empty")
	}
	b.Merge(NewBlame()) // no-op, no panic
}

func TestBlameAddGetSum(t *testing.T) {
	b := NewBlame()
	b.Add("load/host/cpu", 10)
	b.Add("load/pcie.accel/dma", 30)
	b.Add("kernel/pe/compute", 100)
	b.Add("load/host/cpu", 5)
	if got := b.Get("load/host/cpu"); got != 15 {
		t.Fatalf("Get = %d, want 15", got)
	}
	if got := b.Sum("load/"); got != 45 {
		t.Fatalf("Sum(load/) = %d, want 45", got)
	}
	if got := b.Sum("kernel/"); got != 100 {
		t.Fatalf("Sum(kernel/) = %d, want 100", got)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (re-add must not re-register)", b.Len())
	}
	// Registration order is first-use order.
	names := []string{}
	for _, e := range b.Entries() {
		names = append(names, e.Name)
	}
	want := "load/host/cpu,load/pcie.accel/dma,kernel/pe/compute"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestBlameMergeEqualDiff(t *testing.T) {
	a := NewBlame()
	a.Add("load/host/cpu", 10)
	a.Add("kernel/pe/compute", 20)
	b := NewBlame()
	b.Add("load/host/cpu", 1)
	b.Add("kernel/pe/compute", 2)
	a.Merge(b)
	if a.Get("load/host/cpu") != 11 || a.Get("kernel/pe/compute") != 22 {
		t.Fatalf("merge totals wrong: %v", a.Entries())
	}
	c := NewBlame()
	c.Add("load/host/cpu", 11)
	c.Add("kernel/pe/compute", 22)
	if !a.Equal(c) || a.Diff(c) != "" {
		t.Fatalf("expected equal, diff:\n%s", a.Diff(c))
	}
	c.Add("store/unattributed", 1)
	if a.Equal(c) || a.Diff(c) == "" {
		t.Fatal("length mismatch must not compare equal")
	}
	d := NewBlame()
	d.Add("load/host/cpu", 11)
	d.Add("kernel/pe/compute", 23)
	if a.Equal(d) || !strings.Contains(a.Diff(d), "kernel/pe/compute") {
		t.Fatalf("value mismatch must show in Diff, got:\n%s", a.Diff(d))
	}
}

func TestBlameJSONRoundTrip(t *testing.T) {
	b := NewBlame()
	b.Add("load/host/cpu", 12345)
	b.Add("kernel/memctrl.ch0/rdb_hit", 999999999999)
	b.Add("store/unattributed", 7)
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlameJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(got) {
		t.Fatalf("round trip diverged:\n%s", b.Diff(got))
	}
	// Export is byte-deterministic.
	var b1, b2 bytes.Buffer
	if err := b.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("JSON export not byte-deterministic")
	}
	// Empty set exports a valid (empty) array.
	var eb bytes.Buffer
	if err := NewBlame().WriteJSON(&eb); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlameJSON(&eb); err != nil {
		t.Fatalf("empty export must parse: %v", err)
	}
}

func TestMulDiv(t *testing.T) {
	cases := []struct{ a, b, div, q, r int64 }{
		{0, 5, 3, 0, 0},
		{5, 0, 3, 0, 0},
		{5, 3, 0, 0, 0},
		{7, 3, 5, 4, 1}, // 21/5
		{1 << 40, 1 << 22, 1, 1 << 62, 0},
		{3_000_000_000_000, 2_500_000_000_000, 5_000_000_000_000, 1_500_000_000_000, 0},
	}
	for _, c := range cases {
		q, r := MulDiv(c.a, c.b, c.div)
		if q != c.q || r != c.r {
			t.Errorf("MulDiv(%d,%d,%d) = %d,%d want %d,%d", c.a, c.b, c.div, q, r, c.q, c.r)
		}
	}
	// 128-bit intermediate: a*b overflows int64 but the quotient fits.
	a, b, div := int64(1)<<62, int64(1000), int64(1)<<32
	q, _ := MulDiv(a, b, div)
	want := int64(1) << 30 * 1000
	if q != want {
		t.Fatalf("128-bit MulDiv = %d, want %d", q, want)
	}
}

func TestApportionExact(t *testing.T) {
	cases := []struct {
		total   int64
		weights []int64
	}{
		{100, []int64{1, 1, 1}},
		{7, []int64{3, 3, 3}},
		{1, []int64{5, 7}},
		{999_999_999_999, []int64{1, 2, 3, 4, 5, 6, 7}},
		{1 << 50, []int64{1 << 40, 1, 1 << 20}},
		{17, []int64{0, 5, 0, 5}},
	}
	for _, c := range cases {
		shares := Apportion(c.total, c.weights)
		if shares == nil {
			t.Fatalf("Apportion(%d, %v) = nil", c.total, c.weights)
		}
		var sum int64
		for i, s := range shares {
			if s < 0 {
				t.Fatalf("negative share %d in %v", s, shares)
			}
			if c.weights[i] == 0 && s != 0 {
				t.Fatalf("zero weight got share %d in %v", s, shares)
			}
			sum += s
		}
		if sum != c.total {
			t.Fatalf("Apportion(%d, %v) sums to %d", c.total, c.weights, sum)
		}
	}
	if Apportion(100, nil) != nil || Apportion(100, []int64{0, 0}) != nil || Apportion(0, []int64{1}) != nil {
		t.Fatal("degenerate apportionments must return nil")
	}
	// Deterministic: same inputs, same shares (ties to lower index).
	w := []int64{3, 3, 3}
	a := Apportion(7, w)
	b := Apportion(7, w)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic apportionment: %v vs %v", a, b)
		}
	}
	if a[0] != 3 || a[1] != 2 || a[2] != 2 {
		t.Fatalf("tie-break must favor lower index, got %v", a)
	}
}

func TestBlameTopShares(t *testing.T) {
	b := NewBlame()
	b.Add("kernel/pe/compute", 700)
	b.Add("kernel/cache.l1/hit", 200)
	b.Add("kernel/cache.l2/hit", 100)
	b.Add("load/host/cpu", 999)
	top := b.TopShares("kernel/", 2)
	if len(top) != 2 || top[0].Name != "kernel/pe/compute" || top[1].Name != "kernel/cache.l1/hit" {
		t.Fatalf("TopShares = %+v", top)
	}
	if top[0].Permille != 700 {
		t.Fatalf("permille = %d, want 700", top[0].Permille)
	}
}

func TestBlameWriteTree(t *testing.T) {
	b := NewBlame()
	b.Add("load/host/cpu", 30)
	b.Add("load/pcie.accel/dma", 70)
	b.Add("kernel/pe/compute", 100)
	var buf bytes.Buffer
	if err := b.WriteTree(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"load", "host", "cpu", "pcie.accel", "kernel", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
	// Interior sums: the load node shows 100ps (30+70).
	if !strings.Contains(out, "100ps") {
		t.Fatalf("interior node must sum children:\n%s", out)
	}
}

func TestBlameNamesCataloged(t *testing.T) {
	// The account names the system layer emits must normalize into the
	// catalog (channel indices collapse inside slash parts).
	for _, n := range []string{
		"load/host/cpu", "load/memctrl.ch3/rdb_hit", "kernel/memctrl.ch0/write_rmw",
		"kernel/pe/compute", "kernel/cache.l1/hit", "store/unattributed",
		"kernel/accel/job_queue_wait", "raw/cache.l2/miss",
	} {
		if !Cataloged(n) {
			t.Errorf("blame account %q not cataloged (normalized %q)", n, NormalizeName(n))
		}
	}
	if NormalizeName("kernel/memctrl.ch12/rab_hit") != "kernel/memctrl.chN/rab_hit" {
		t.Fatalf("slash-aware normalization broken: %q", NormalizeName("kernel/memctrl.ch12/rab_hit"))
	}
}
