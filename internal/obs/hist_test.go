package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestHistBucketGeometry pins the log-linear bucket map: buckets
// partition the non-negative int64 range (every value lands in exactly
// the bucket whose bounds contain it), bounds are monotone, and relative
// width is bounded by 1/histSubs above the linear range.
func TestHistBucketGeometry(t *testing.T) {
	samples := []int64{0, 1, 2, 31, 32, 33, 63, 64, 65, 127, 128, 1 << 20,
		(1 << 20) + 1, 1<<62 - 1, 1 << 62, math.MaxInt64}
	for _, v := range samples {
		i := histBucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucket(%d) = %d out of range [0,%d)", v, i, histBuckets)
		}
		low, high := histBucketBounds(i)
		// The last bucket clamps its bound to MaxInt64 and is inclusive.
		if v < low || (v >= high && high != math.MaxInt64) {
			t.Errorf("value %d landed in bucket %d [%d,%d)", v, i, low, high)
		}
	}
	// Bounds tile the axis: bucket i's high is bucket i+1's low.
	for i := 0; i < histBuckets-1; i++ {
		_, high := histBucketBounds(i)
		low, _ := histBucketBounds(i + 1)
		if high != low {
			t.Fatalf("buckets %d/%d do not tile: high %d != low %d", i, i+1, high, low)
		}
	}
	// Relative width <= 1/histSubs beyond the linear range.
	for _, i := range []int{2 * histSubs, 10 * histSubs, histBuckets - 1} {
		low, high := histBucketBounds(i)
		if low > 0 && float64(high-low)/float64(low) > 1.0/float64(histSubs)+1e-9 {
			t.Errorf("bucket %d [%d,%d): relative width %.4f too coarse",
				i, low, high, float64(high-low)/float64(low))
		}
	}
	if histBucketOf(math.MaxInt64) != histBuckets-1 {
		t.Errorf("MaxInt64 must land in the last bucket, got %d of %d",
			histBucketOf(math.MaxInt64), histBuckets)
	}
}

func TestHistogramRecordAndStats(t *testing.T) {
	var set HistogramSet
	h := set.Get("t.lat_ps")
	for _, v := range []int64{100, 200, 300, 400, 1000} {
		h.Record(v)
	}
	h.Record(-5) // clamps to 0
	if h.Count() != 6 || h.Sum() != 2000 || h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("stats = count %d sum %d min %d max %d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if got := h.Percentile(100); got != 1000 {
		t.Errorf("p100 = %d, want the max", got)
	}
	if got := h.Percentile(0); got != 0 {
		t.Errorf("p0 = %d, want the min", got)
	}
	// p50 selects rank ceil(0.5*6) = 3, the 3rd-smallest sample (200);
	// the result is that bucket's upper edge, so allow bounded error.
	p50 := h.Percentile(50)
	if p50 < 200 || p50 > 200+200/histSubs {
		t.Errorf("p50 = %d, want ~200 within bucket error", p50)
	}
	if m := h.Mean(); m != 2000.0/6 {
		t.Errorf("mean = %g", m)
	}
}

func TestHistogramMergeEqualDiff(t *testing.T) {
	var sa, sb HistogramSet
	a, b := sa.Get("x"), sb.Get("x")
	a.Record(10)
	a.Record(1 << 30)
	b.Record(10)
	b.Record(1 << 30)
	if !a.Equal(b) {
		t.Fatalf("identical histograms must be Equal:\n%s", a.Diff(b))
	}
	b.Record(99)
	if a.Equal(b) {
		t.Fatal("differing histograms must not be Equal")
	}
	if d := a.Diff(b); d == "" || !strings.Contains(d, "count") {
		t.Errorf("Diff must describe the difference, got %q", d)
	}
	a.Merge(b)
	if a.Count() != 5 || a.Min() != 10 || a.Max() != 1<<30 {
		t.Errorf("merged: count %d min %d max %d", a.Count(), a.Min(), a.Max())
	}

	// Nil handles are recordable and comparable.
	var nh *Histogram
	nh.Record(1)
	if nh.Count() != 0 || nh.Percentile(99) != 0 || nh.Buckets() != nil {
		t.Error("nil histogram must read as empty")
	}
	nh.Merge(a)
	if !nh.Equal((*Histogram)(nil)) {
		t.Error("two empty histograms must be Equal")
	}
}

// TestHistogramExportRoundTrip pins that WriteJSON → ReadHistogramsJSON
// reconstructs the exact distribution, and that exports are
// byte-deterministic.
func TestHistogramExportRoundTrip(t *testing.T) {
	var set HistogramSet
	h := set.Get("b.second") // registration order, not lexical
	g := set.Get("a.first")
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * i)
		g.Record(i)
	}
	set.Get("empty")

	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHistogramsJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(back) {
		t.Fatalf("round trip lost data:\n%s", set.Diff(back))
	}
	if names := back.Names(); names[0] != "b.second" || names[1] != "a.first" {
		t.Errorf("round trip must preserve registration order, got %v", names)
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		if a, b := h.Percentile(p), back.Lookup("b.second").Percentile(p); a != b {
			t.Errorf("p%g differs after round trip: %d != %d", p, a, b)
		}
	}

	var again bytes.Buffer
	if err := set.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("repeated JSON exports differ")
	}

	var csv bytes.Buffer
	if err := set.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "name,low,high,count,cum" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "b.second,") {
		t.Errorf("CSV must follow registration order, first row %q", lines[1])
	}
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, ",1000") {
		t.Errorf("cumulative column must reach the count, last row %q", last)
	}
}

// TestHistogramRecordAllocationFree pins Record at zero allocations for
// both live and nil handles — the condition that lets every hot path
// record unconditionally.
func TestHistogramRecordAllocationFree(t *testing.T) {
	var set HistogramSet
	h := set.Get("pin")
	h.Record(123) // warm: registration already happened in Get
	allocs := testing.AllocsPerRun(200, func() {
		h.Record(42)
		h.Record(1 << 40)
	})
	if allocs != 0 {
		t.Fatalf("live Record allocates %.1f objects per call, want 0", allocs)
	}
	var nh *Histogram
	allocs = testing.AllocsPerRun(200, func() { nh.Record(42) })
	if allocs != 0 {
		t.Fatalf("nil Record allocates %.1f objects per call, want 0", allocs)
	}
}
