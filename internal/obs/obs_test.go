package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dramless/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCountersRegistry(t *testing.T) {
	var c Counters
	c.Add("memctrl.reads", 3)
	c.Add("memctrl.writes", 1)
	c.Add("memctrl.reads", 2)
	c.SetGauge("memctrl.rdb_hit_rate", 0.75)

	if got := c.Get("memctrl.reads"); got != 5 {
		t.Errorf("reads = %d, want 5", got)
	}
	if got := c.Get("memctrl.absent"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
	if got := c.Gauge("memctrl.rdb_hit_rate"); got != 0.75 {
		t.Errorf("gauge = %g, want 0.75", got)
	}
	wantNames := []string{"memctrl.reads", "memctrl.writes", "memctrl.rdb_hit_rate"}
	if got := c.Names(); len(got) != len(wantNames) {
		t.Fatalf("Names() = %v, want %v", got, wantNames)
	} else {
		for i := range wantNames {
			if got[i] != wantNames[i] {
				t.Errorf("Names()[%d] = %q, want %q (registration order must be preserved)", i, got[i], wantNames[i])
			}
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len() = %d, want 3", c.Len())
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Add("x", 1)
	c.SetGauge("y", 2)
	c.Merge(&Counters{})
	if c.Get("x") != 0 || c.Gauge("y") != 0 || c.Len() != 0 || c.Has("x") {
		t.Error("nil Counters must read as empty")
	}
	if c.Names() != nil || c.Entries() != nil {
		t.Error("nil Counters must enumerate as empty")
	}
}

func TestCountersMergeEqualDiff(t *testing.T) {
	var a, b Counters
	a.Add("n", 2)
	a.SetGauge("g", 0.5)
	b.Add("n", 3)
	b.Add("extra", 1)
	b.SetGauge("g", 0.25)

	a.Merge(&b)
	if got := a.Get("n"); got != 5 {
		t.Errorf("merged counter = %d, want 5 (counters add)", got)
	}
	if got := a.Gauge("g"); got != 0.25 {
		t.Errorf("merged gauge = %g, want 0.25 (gauges overwrite)", got)
	}
	if got := a.Get("extra"); got != 1 {
		t.Errorf("new name = %d, want 1", got)
	}

	var c, d Counters
	c.Add("n", 1)
	d.Add("n", 1)
	if !c.Equal(&d) {
		t.Error("identical registries must compare Equal")
	}
	d.Add("n", 1)
	if c.Equal(&d) {
		t.Error("differing values must not compare Equal")
	}
	if diff := c.Diff(&d); !strings.Contains(diff, "n:") {
		t.Errorf("Diff() = %q, want mention of n", diff)
	}
}

func TestCountersJSONOrdered(t *testing.T) {
	var c Counters
	c.Add("z.second", 1)
	c.Add("a.first", 2) // lexically before but registered after
	c.SetGauge("m.rate", 0.5)
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if iz, ia := strings.Index(s, "z.second"), strings.Index(s, "a.first"); iz < 0 || ia < 0 || iz > ia {
		t.Errorf("JSON must preserve registration order, got %s", s)
	}
	if !strings.Contains(s, `"kind":"gauge"`) || !strings.Contains(s, `"gauge":0.5`) {
		t.Errorf("gauge entry missing from %s", s)
	}
}

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	if o.Tracer() != nil {
		t.Error("nil Observer must yield nil Tracer")
	}
	if o.Counters() != nil {
		t.Error("nil Observer must yield nil Counters")
	}
	o.Record(&Counters{}) // must not panic
	o.Tracer().Span("p", "t", "n", 0, sim.Time(10))
}

func TestObserverRecordAccumulates(t *testing.T) {
	o := New()
	if o.Tracer() != nil {
		t.Error("tracing must be off unless requested")
	}
	var run Counters
	run.Add("sim.events", 10)
	o.Record(&run)
	o.Record(&run)
	if got := o.Counters().Get("sim.events"); got != 20 {
		t.Errorf("accumulated = %d, want 20", got)
	}

	traced := New(WithTracing())
	if traced.Tracer() == nil {
		t.Fatal("WithTracing must enable the tracer")
	}
	var sb strings.Builder
	if err := o.WriteTrace(&sb); err == nil {
		t.Error("WriteTrace without tracing must error")
	}
}

func TestTracerSpanFiltering(t *testing.T) {
	tr := NewTracer()
	tr.Span("p", "t", "ok", sim.Time(100), sim.Time(200))
	tr.Span("p", "t", "zero", sim.Time(100), sim.Time(100))
	tr.Span("p", "t", "backwards", sim.Time(200), sim.Time(100))
	if tr.Len() != 1 {
		t.Fatalf("recorded %d spans, want 1 (zero/negative width dropped)", tr.Len())
	}
	if e := tr.Events()[0]; e.Name != "ok" {
		t.Errorf("kept span = %q, want ok", e.Name)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Error("Reset must drop spans")
	}
}

// TestChromeTraceGolden pins the exact export bytes for a small trace
// (determinism guarantee: identical runs produce byte-identical traces)
// and checks the output is valid JSON in the Chrome trace shape.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	tr.Span("pram.ch0", "pkg0", "read", sim.Time(1_000), sim.Time(61_000))
	tr.Span("pram.ch0", "pkg1", "read", sim.Time(21_000), sim.Time(81_000))
	tr.Span("pram.ch0", "pkg0", "program", sim.Time(90_000), sim.Time(1_090_000))
	tr.Span("accel", "pe0", "kernel", sim.Time(0), sim.Time(2_000_000))
	tr.Span("system", "run", "load", sim.Time(0), sim.Time(500_000))

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %g", e.Name, e.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if complete != 5 {
		t.Errorf("%d X events, want 5", complete)
	}
	// 3 processes + 4 distinct (proc, track) pairs.
	if meta != 7 {
		t.Errorf("%d M events, want 7", meta)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run go test ./internal/obs -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden file\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	// Re-export must be byte-identical.
	var again bytes.Buffer
	if err := tr.WriteChromeJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("repeated exports of the same trace differ")
	}
}

// TestNilObserverAllocationFree pins the disabled-observer hot paths at
// zero allocations: threading a nil Observer/Tracer/Counters through
// instrumented code must cost nothing (ISSUE 3 acceptance criterion;
// companion to the PR 2 datapath pins in internal/mem).
func TestNilObserverAllocationFree(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(200, func() {
		tr := o.Tracer()
		tr.Span("pram.ch0", "pkg0", "read", 0, sim.Time(100))
		o.Counters().Add("memctrl.reads", 1)
		o.Record(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-observer path allocates %.1f objects per call, want 0", allocs)
	}
}
