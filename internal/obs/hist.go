package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// Histogram geometry: log-linear (HDR-style) buckets over non-negative
// int64 picosecond samples. Each power-of-two octave is divided into
// 2^histSubBits equal-width sub-buckets, so relative error is bounded by
// 1/2^histSubBits (~3%) at every magnitude while the bucket count stays
// fixed — the counts array is preallocated once and Record is a shift,
// an add and two compares (zero allocations, pinned).
const (
	histSubBits = 5
	histSubs    = 1 << histSubBits // sub-buckets per octave
	// histBuckets covers every non-negative int64: the maximum sample
	// 2^63-1 lands in bucket (63-histSubBits-1)*histSubs + (histSubs*2-1).
	histBuckets = (63-histSubBits)*histSubs + histSubs
)

// histBucketOf maps a non-negative sample to its bucket index.
func histBucketOf(v int64) int {
	shift := bits.Len64(uint64(v)) - histSubBits - 1
	if shift < 0 {
		shift = 0
	}
	return shift<<histSubBits + int(uint64(v)>>uint(shift))
}

// histBucketBounds returns bucket i's value range [low, high). The last
// bucket's true upper bound is 2^63, which int64 cannot hold; it clamps
// to MaxInt64, so that one bucket is [low, MaxInt64] inclusive.
func histBucketBounds(i int) (low, high int64) {
	if i < 2*histSubs {
		return int64(i), int64(i) + 1
	}
	s := uint(i/histSubs - 1)
	low = int64(i-int(s)*histSubs) << s
	high = low + int64(1)<<s
	if high < low {
		high = math.MaxInt64
	}
	return low, high
}

// Histogram is a fixed-geometry latency distribution: int64 samples
// (picoseconds by convention) in log-linear buckets. The zero value is
// NOT ready to use — obtain instances from a HistogramSet, which
// preallocates the bucket array so recording never allocates. All
// methods are nil-safe; a nil *Histogram is the disabled handle model
// code holds when observation is off.
type Histogram struct {
	name   string
	counts []int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

func newHistogram(name string) *Histogram {
	return &Histogram{name: name, counts: make([]int64, histBuckets), min: math.MaxInt64}
}

// Name returns the instrument name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Record adds one sample. Negative samples clamp to zero (latencies are
// non-negative by construction; clamping keeps a model bug from
// corrupting the geometry). Nil-safe and allocation-free.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histBucketOf(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns how many samples were recorded.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the summed sample values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Percentile returns the value at or below which p percent of the
// samples lie: the inclusive upper edge of the bucket holding the
// sample of rank ceil(p/100*n), clamped to the observed min/max so
// exact extremes survive the bucketing. Returns 0 on an empty
// histogram.
func (h *Histogram) Percentile(p float64) int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			_, high := histBucketBounds(i)
			v := high - 1
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket: Count samples in [Low, High).
type Bucket struct {
	Low   int64
	High  int64
	Count int64
}

// Buckets returns the non-empty buckets in ascending value order (the
// data behind a CDF rendering). Nil-safe; allocates the result.
func (h *Histogram) Buckets() []Bucket {
	if h == nil || h.n == 0 {
		return nil
	}
	out := make([]Bucket, 0, 16)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		low, high := histBucketBounds(i)
		out = append(out, Bucket{Low: low, High: high, Count: c})
	}
	return out
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Merge accumulates other into h. Nil-safe on both sides.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Equal reports whether both histograms hold identical distributions.
func (h *Histogram) Equal(other *Histogram) bool {
	if h.Count() == 0 && other.Count() == 0 {
		return true
	}
	if h == nil || other == nil {
		return false
	}
	if h.n != other.n || h.sum != other.sum || h.min != other.min || h.max != other.max {
		return false
	}
	for i, c := range h.counts {
		if c != other.counts[i] {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first few bucket
// differences (for test failure messages); empty when Equal.
func (h *Histogram) Diff(other *Histogram) string {
	if h.Equal(other) {
		return ""
	}
	out := ""
	if h.Count() != other.Count() || h.Sum() != other.Sum() {
		out += fmt.Sprintf("  count %d/%d sum %d/%d min %d/%d max %d/%d\n",
			h.Count(), other.Count(), h.Sum(), other.Sum(), h.Min(), other.Min(), h.Max(), other.Max())
	}
	diffs := 0
	for i := 0; i < histBuckets && diffs < 8; i++ {
		var a, b int64
		if h != nil {
			a = h.counts[i]
		}
		if other != nil {
			b = other.counts[i]
		}
		if a != b {
			low, high := histBucketBounds(i)
			out += fmt.Sprintf("  bucket %d [%d,%d): %d != %d\n", i, low, high, a, b)
			diffs++
		}
	}
	return out
}

// histBucketJSON is one non-empty bucket in the JSON export.
type histBucketJSON struct {
	Bucket int   `json:"bucket"`
	Low    int64 `json:"low"`
	High   int64 `json:"high"`
	Count  int64 `json:"count"`
}

// histJSON is one histogram in the JSON export. Only non-empty buckets
// are listed; the fixed geometry reconstructs the rest on import.
type histJSON struct {
	Name    string           `json:"name"`
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Buckets []histBucketJSON `json:"buckets"`
}

func (h *Histogram) toJSON() histJSON {
	out := histJSON{Name: h.Name(), Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max()}
	if h == nil {
		return out
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		low, high := histBucketBounds(i)
		out.Buckets = append(out.Buckets, histBucketJSON{Bucket: i, Low: low, High: high, Count: c})
	}
	return out
}

// HistogramSet is an ordered registry of named histograms: Get returns a
// stable handle, creating (and preallocating) the histogram on first
// use, so instrument sites resolve their handle once at construction and
// record without lookups. Registration order is deterministic because
// every instrumented component resolves its handles in fixed code order.
type HistogramSet struct {
	idx  map[string]int
	list []*Histogram
}

// Get returns the named histogram, registering it on first use. A nil
// set returns a nil (safely recordable) handle.
func (s *HistogramSet) Get(name string) *Histogram {
	if s == nil {
		return nil
	}
	if i, ok := s.idx[name]; ok {
		return s.list[i]
	}
	if s.idx == nil {
		s.idx = make(map[string]int)
	}
	h := newHistogram(name)
	s.idx[name] = len(s.list)
	s.list = append(s.list, h)
	return h
}

// Lookup returns the named histogram without registering it.
func (s *HistogramSet) Lookup(name string) *Histogram {
	if s == nil {
		return nil
	}
	if i, ok := s.idx[name]; ok {
		return s.list[i]
	}
	return nil
}

// Len returns how many histograms are registered.
func (s *HistogramSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.list)
}

// Names returns every registered name in registration order.
func (s *HistogramSet) Names() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.list))
	for i, h := range s.list {
		out[i] = h.name
	}
	return out
}

// All returns the histograms in registration order. The slice is shared;
// callers must not mutate it.
func (s *HistogramSet) All() []*Histogram {
	if s == nil {
		return nil
	}
	return s.list
}

// Merge accumulates other's histograms into s, registering new names at
// the tail in other's order.
func (s *HistogramSet) Merge(other *HistogramSet) {
	if s == nil || other == nil {
		return
	}
	for _, h := range other.list {
		s.Get(h.name).Merge(h)
	}
}

// Equal reports whether both sets hold the same histograms in the same
// order with identical distributions.
func (s *HistogramSet) Equal(other *HistogramSet) bool {
	if s.Len() != other.Len() {
		return false
	}
	for i, h := range s.All() {
		o := other.list[i]
		if h.name != o.name || !h.Equal(o) {
			return false
		}
	}
	return true
}

// Diff returns a description of the first differences between two sets;
// empty when Equal.
func (s *HistogramSet) Diff(other *HistogramSet) string {
	if s.Len() != other.Len() {
		return fmt.Sprintf("  %d histograms != %d\n", s.Len(), other.Len())
	}
	for i, h := range s.All() {
		o := other.list[i]
		if h.name != o.name {
			return fmt.Sprintf("  position %d: %q != %q\n", i, h.name, o.name)
		}
		if d := h.Diff(o); d != "" {
			return h.name + ":\n" + d
		}
	}
	return ""
}

// MarshalJSON renders the set as an ordered array of histograms with
// sparse bucket lists. The export is byte-deterministic: order is
// registration order and every field is integer.
func (s *HistogramSet) MarshalJSON() ([]byte, error) {
	out := make([]histJSON, 0, s.Len())
	for _, h := range s.All() {
		out = append(out, h.toJSON())
	}
	return json.Marshal(out)
}

// WriteJSON writes the set as indented JSON (the `-hist file.json`
// format; ReadHistogramsJSON parses it back).
func (s *HistogramSet) WriteJSON(w io.Writer) error {
	out := make([]histJSON, 0, s.Len())
	for _, h := range s.All() {
		out = append(out, h.toJSON())
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV writes one row per non-empty bucket:
// name,low,high,count,cum — the cumulative column makes the file a
// ready-to-plot CDF per instrument.
func (s *HistogramSet) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "name,low,high,count,cum\n"); err != nil {
		return err
	}
	for _, h := range s.All() {
		var cum int64
		for i, c := range h.counts {
			if c == 0 {
				continue
			}
			cum += c
			low, high := histBucketBounds(i)
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d\n", h.name, low, high, c, cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadHistogramsJSON parses a WriteJSON export back into a set (the
// report and compare tools work from exported files, not live runs).
func ReadHistogramsJSON(r io.Reader) (*HistogramSet, error) {
	var in []histJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("obs: parsing histogram export: %w", err)
	}
	s := &HistogramSet{}
	for _, hj := range in {
		h := s.Get(hj.Name)
		h.n, h.sum = hj.Count, hj.Sum
		if hj.Count > 0 {
			h.min, h.max = hj.Min, hj.Max
		}
		for _, b := range hj.Buckets {
			if b.Bucket < 0 || b.Bucket >= histBuckets {
				return nil, fmt.Errorf("obs: histogram %q: bucket %d out of range", hj.Name, b.Bucket)
			}
			h.counts[b.Bucket] = b.Count
		}
	}
	return s, nil
}
