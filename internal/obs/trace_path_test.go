package obs

import (
	"bytes"
	"strings"
	"testing"

	"dramless/internal/sim"
)

func TestFlowNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Flow("x", "a", "t", "b", "t", 10) // must not panic
	if tr.Flows() != nil {
		t.Fatal("nil tracer must report no flows")
	}
}

func TestFlowRecordingAndReset(t *testing.T) {
	tr := NewTracer()
	tr.Flow("dispatch", "system", "run", "accel", "pe0", 100)
	tr.Flow("drain", "accel", "pe0", "system", "run", 200)
	fs := tr.Flows()
	if len(fs) != 2 || fs[0].Name != "dispatch" || fs[1].At != 200 {
		t.Fatalf("flows = %+v", fs)
	}
	tr.Reset()
	if len(tr.Flows()) != 0 || tr.Len() != 0 {
		t.Fatal("Reset must drop flows")
	}
}

// pathTotal sums segment durations.
func pathTotal(segs []PathSeg) sim.Duration {
	var d sim.Duration
	for _, s := range segs {
		d += s.Dur()
	}
	return d
}

func TestCriticalPathTilesExactly(t *testing.T) {
	tr := NewTracer()
	// Two overlapping reads, a later program, and an enclosing kernel.
	tr.Span("pram.ch0", "pkg0", "read", 1_000, 61_000)
	tr.Span("pram.ch0", "pkg1", "read", 21_000, 81_000)
	tr.Span("pram.ch0", "pkg0", "program", 90_000, 1_090_000)
	tr.Span("accel", "pe0", "kernel", 0, 2_000_000)
	start, end := sim.Time(0), sim.Time(2_000_000)
	segs := tr.CriticalPath(start, end)
	if got := pathTotal(segs); got != sim.Duration(end-start) {
		t.Fatalf("path sums to %d, want %d", got, end-start)
	}
	// Ascending, gap-free tiling.
	cur := start
	for i, s := range segs {
		if s.Start != cur || s.End <= s.Start {
			t.Fatalf("segment %d [%d,%d) does not tile from %d: %+v", i, s.Start, s.End, cur, segs)
		}
		cur = s.End
	}
	if cur != end {
		t.Fatalf("tiling ends at %d, want %d", cur, end)
	}
	// The latest-started covering span wins: the tail of the window is
	// the program span's stretch, then the kernel resumes to the end.
	last := segs[len(segs)-1]
	if last.Name != "kernel" {
		t.Fatalf("last segment = %+v, want the enclosing kernel", last)
	}
	var sawProgram bool
	for _, s := range segs {
		if s.Name == "program" {
			sawProgram = true
			if s.Start != 90_000 || s.End != 1_090_000 {
				t.Fatalf("program segment = %+v", s)
			}
		}
	}
	if !sawProgram {
		t.Fatalf("critical path missed the program span: %+v", segs)
	}
}

func TestCriticalPathIdleGaps(t *testing.T) {
	tr := NewTracer()
	tr.Span("a", "t", "one", 100, 200)
	tr.Span("a", "t", "two", 400, 500)
	segs := tr.CriticalPath(0, 600)
	if got := pathTotal(segs); got != 600 {
		t.Fatalf("path sums to %d, want 600", got)
	}
	// Expected: idle [0,100), one [100,200), idle [200,400), two
	// [400,500), idle [500,600).
	wantIdle := []bool{true, false, true, false, true}
	if len(segs) != len(wantIdle) {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	for i, s := range segs {
		if (s.Proc == "") != wantIdle[i] {
			t.Fatalf("segment %d idle=%v, want %v (%+v)", i, s.Proc == "", wantIdle[i], segs)
		}
	}
}

func TestCriticalPathEmptyAndNil(t *testing.T) {
	var nilTr *Tracer
	segs := nilTr.CriticalPath(10, 20)
	if len(segs) != 1 || segs[0].Proc != "" || segs[0].Dur() != 10 {
		t.Fatalf("nil tracer path = %+v", segs)
	}
	if nilTr.CriticalPath(20, 20) != nil {
		t.Fatal("empty window must return nil")
	}
	tr := NewTracer()
	segs = tr.CriticalPath(0, 5)
	if len(segs) != 1 || segs[0].Dur() != 5 {
		t.Fatalf("empty tracer path = %+v", segs)
	}
}

func TestCriticalPathTieBreaksToLaterRecording(t *testing.T) {
	tr := NewTracer()
	tr.Span("a", "t", "first", 100, 300)
	tr.Span("b", "t", "second", 100, 300) // same interval, recorded later
	segs := tr.CriticalPath(100, 300)
	if len(segs) != 1 || segs[0].Name != "second" {
		t.Fatalf("tie must go to the later-recorded span: %+v", segs)
	}
}

func TestChromeJSONEmitsFlows(t *testing.T) {
	tr := NewTracer()
	tr.Span("system", "run", "load", 0, 100)
	tr.Span("accel", "pe0", "kernel", 100, 200)
	tr.Flow("dispatch", "system", "run", "accel", "pe0", 100)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"s"`, `"ph":"f"`, `"bp":"e"`, `"cat":"flow"`, `"name":"dispatch"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %s:\n%s", want, out)
		}
	}
	// A flow to a track no span used must still register the track.
	tr2 := NewTracer()
	tr2.Flow("only", "p1", "t1", "p2", "t2", 5)
	var buf2 bytes.Buffer
	if err := tr2.WriteChromeJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `"name":"p2"`) {
		t.Fatalf("flow endpoints must register processes:\n%s", buf2.String())
	}
	// Byte-determinism.
	var buf3 bytes.Buffer
	if err := tr.WriteChromeJSON(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf3.Bytes()) {
		t.Fatal("chrome export not byte-deterministic")
	}
}
