package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"dramless/internal/sim"
)

// DefaultSeriesWindow is the simulated-time window series accumulate
// over unless the Observer is built with WithSeriesWindow.
const DefaultSeriesWindow = 10 * sim.Microsecond

// Series accumulates an int64 value per fixed simulated-time window
// (bytes moved, hits, busy picoseconds, ...). Windows are addressed by
// simulated time only — window index = t/window — so the contents are
// byte-deterministic and independent of host timing, worker count or
// recording order: every record is an integer add into the window its
// simulated timestamp selects. All methods are nil-safe; a nil *Series
// is the disabled handle.
type Series struct {
	name   string
	window sim.Duration
	vals   []int64
}

func newSeries(name string, window sim.Duration) *Series {
	if window <= 0 {
		window = DefaultSeriesWindow
	}
	return &Series{name: name, window: window, vals: make([]int64, 0, 64)}
}

// Name returns the instrument name.
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Window returns the accumulation window.
func (s *Series) Window() sim.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// Len returns the number of windows touched so far (index of the last
// written window plus one).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.vals)
}

// At returns window i's accumulated value.
func (s *Series) At(i int) int64 {
	if s == nil || i < 0 || i >= len(s.vals) {
		return 0
	}
	return s.vals[i]
}

// grow extends the window array through index i. Amortized append keeps
// steady-state recording allocation-free once the run's time range has
// been touched.
func (s *Series) grow(i int) {
	for len(s.vals) <= i {
		s.vals = append(s.vals, 0)
	}
}

// Add accumulates v into the window containing simulated time t.
// Negative times clamp to window 0. Nil-safe.
func (s *Series) Add(t sim.Time, v int64) {
	if s == nil {
		return
	}
	i := 0
	if t > 0 {
		i = int(t / sim.Time(s.window))
	}
	s.grow(i)
	s.vals[i] += v
}

// AddSpan distributes the interval [t0, t1) across the windows it
// overlaps, adding the overlap duration (picoseconds) to each — the
// primitive behind busy-fraction and stall-time series. Splitting is
// exact integer arithmetic, so any decomposition of an interval into
// sub-intervals accumulates identical window values (this is what makes
// the batched run-folding path's contiguous spans byte-equivalent to
// op-at-a-time recording). Nil-safe.
func (s *Series) AddSpan(t0, t1 sim.Time) {
	if s == nil || t1 <= t0 {
		return
	}
	if t0 < 0 {
		t0 = 0
	}
	w := sim.Time(s.window)
	for t0 < t1 {
		i := int(t0 / w)
		edge := (sim.Time(i) + 1) * w
		end := t1
		if edge < end {
			end = edge
		}
		s.grow(i)
		s.vals[i] += int64(end - t0)
		t0 = end
	}
}

// Merge accumulates other into s window by window. Both series must use
// the same window; mismatched windows are ignored (they are different
// instruments).
func (s *Series) Merge(other *Series) {
	if s == nil || other == nil || s.window != other.window {
		return
	}
	s.grow(len(other.vals) - 1)
	for i, v := range other.vals {
		s.vals[i] += v
	}
}

// Equal reports whether both series hold identical windows. Trailing
// zero windows are insignificant: a series that never saw a late sample
// equals one that recorded a zero there.
func (s *Series) Equal(other *Series) bool {
	a, b := s.Len(), other.Len()
	n := a
	if b > n {
		n = b
	}
	if s.Window() != other.Window() && a > 0 && b > 0 {
		return false
	}
	for i := 0; i < n; i++ {
		if s.At(i) != other.At(i) {
			return false
		}
	}
	return true
}

// seriesJSON is one series in the JSON export.
type seriesJSON struct {
	Name     string  `json:"name"`
	WindowPS int64   `json:"window_ps"`
	Values   []int64 `json:"values"`
}

// SeriesSet is an ordered registry of named series sharing one window,
// with the same stable-handle contract as HistogramSet.
type SeriesSet struct {
	window sim.Duration
	idx    map[string]int
	list   []*Series
}

// NewSeriesSet returns a set whose series accumulate over window
// (DefaultSeriesWindow when <= 0).
func NewSeriesSet(window sim.Duration) *SeriesSet {
	if window <= 0 {
		window = DefaultSeriesWindow
	}
	return &SeriesSet{window: window}
}

// Window returns the set's accumulation window.
func (s *SeriesSet) Window() sim.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// Get returns the named series, registering it on first use. A nil set
// returns a nil (safely recordable) handle.
func (s *SeriesSet) Get(name string) *Series {
	if s == nil {
		return nil
	}
	if i, ok := s.idx[name]; ok {
		return s.list[i]
	}
	if s.idx == nil {
		s.idx = make(map[string]int)
	}
	sr := newSeries(name, s.window)
	s.idx[name] = len(s.list)
	s.list = append(s.list, sr)
	return sr
}

// Lookup returns the named series without registering it.
func (s *SeriesSet) Lookup(name string) *Series {
	if s == nil {
		return nil
	}
	if i, ok := s.idx[name]; ok {
		return s.list[i]
	}
	return nil
}

// Len returns how many series are registered.
func (s *SeriesSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.list)
}

// Names returns every registered name in registration order.
func (s *SeriesSet) Names() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.list))
	for i, sr := range s.list {
		out[i] = sr.name
	}
	return out
}

// All returns the series in registration order. The slice is shared;
// callers must not mutate it.
func (s *SeriesSet) All() []*Series {
	if s == nil {
		return nil
	}
	return s.list
}

// Merge accumulates other's series into s, registering new names at the
// tail in other's order. Sets must share a window for values to land.
func (s *SeriesSet) Merge(other *SeriesSet) {
	if s == nil || other == nil {
		return
	}
	for _, sr := range other.list {
		s.Get(sr.name).Merge(sr)
	}
}

// Equal reports whether both sets hold the same series in the same
// order with identical windows.
func (s *SeriesSet) Equal(other *SeriesSet) bool {
	if s.Len() != other.Len() {
		return false
	}
	for i, sr := range s.All() {
		o := other.list[i]
		if sr.name != o.name || !sr.Equal(o) {
			return false
		}
	}
	return true
}

// Diff returns a description of the first differences between two sets;
// empty when Equal.
func (s *SeriesSet) Diff(other *SeriesSet) string {
	if s.Len() != other.Len() {
		return fmt.Sprintf("  %d series != %d\n", s.Len(), other.Len())
	}
	for i, sr := range s.All() {
		o := other.list[i]
		if sr.name != o.name {
			return fmt.Sprintf("  position %d: %q != %q\n", i, sr.name, o.name)
		}
		n := sr.Len()
		if o.Len() > n {
			n = o.Len()
		}
		for w := 0; w < n; w++ {
			if sr.At(w) != o.At(w) {
				return fmt.Sprintf("  %s window %d: %d != %d\n", sr.name, w, sr.At(w), o.At(w))
			}
		}
	}
	return ""
}

// MarshalJSON renders the set as an ordered array of series.
func (s *SeriesSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.toJSON())
}

func (s *SeriesSet) toJSON() []seriesJSON {
	out := make([]seriesJSON, 0, s.Len())
	for _, sr := range s.All() {
		vals := sr.vals
		if vals == nil {
			vals = []int64{}
		}
		out = append(out, seriesJSON{Name: sr.name, WindowPS: int64(sr.window), Values: vals})
	}
	return out
}

// WriteJSON writes the set as indented JSON (the `-series file.json`
// format).
func (s *SeriesSet) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s.toJSON(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV writes one table: window_start_ps followed by one column per
// series, rows padded with zeros to the longest series.
func (s *SeriesSet) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "window_start_ps"); err != nil {
		return err
	}
	rows := 0
	for _, sr := range s.All() {
		if _, err := fmt.Fprintf(w, ",%s", sr.name); err != nil {
			return err
		}
		if sr.Len() > rows {
			rows = sr.Len()
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if _, err := fmt.Fprintf(w, "%d", sim.Time(i)*sim.Time(s.Window())); err != nil {
			return err
		}
		for _, sr := range s.All() {
			if _, err := fmt.Fprintf(w, ",%d", sr.At(i)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
