package obs

import "testing"

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"memctrl.ch0.reads", "memctrl.chN.reads"},
		{"memctrl.ch17.bytes_read", "memctrl.chN.bytes_read"},
		{"accel.pe3.l1.hits", "accel.peN.l1.hits"},
		{"accel.pe12.busy_ps", "accel.peN.busy_ps"},
		{"cache.l1.hit_ps", "cache.l1.hit_ps"},       // no index segment
		{"memctrl.ch.reads", "memctrl.ch.reads"},     // bare stem, no digits
		{"memctrl.chx1.reads", "memctrl.chx1.reads"}, // non-digit suffix
		{"pe0", "peN"},
		{"memctrl.reads", "memctrl.reads"},
	}
	for _, c := range cases {
		if got := NormalizeName(c.in); got != c.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCatalogCoversDeclaredInstruments asserts every exported instrument
// constant is cataloged, and that the catalog rejects unknown names (so
// the system-level drift test actually has teeth).
func TestCatalogCoversDeclaredInstruments(t *testing.T) {
	declared := []string{
		HistMemReadRDBHit, HistMemReadRABHit, HistMemReadFull, HistMemReadPaused,
		HistMemWriteFull, HistMemWriteRMW,
		HistCacheL1Hit, HistCacheL1Miss, HistCacheL2Hit, HistCacheL2Miss,
		HistAccelKernel, HistAccelFlush, HistAccelJobWait,
		HistSSDRead, HistSSDWrite, HistSSDFTLProgram,
		HistSystemLoad, HistSystemKernel, HistSystemStore,
		SeriesMemBytesRead, SeriesMemBytesWritten,
		SeriesMemReads, SeriesMemRDBHits, SeriesMemRABHits, SeriesMemWritePause,
		SeriesPEBusy, SeriesPEStall,
	}
	for _, n := range declared {
		if !Cataloged(n) {
			t.Errorf("declared instrument %q is not cataloged", n)
		}
	}
	// Per-instance counter names normalize into the catalog.
	for _, n := range []string{
		"memctrl.ch0.reads", "memctrl.ch7.rdb_hits",
		"accel.pe0.l2.hit_rate", "accel.pe15.instructions",
		"ssd.ext.ftl.gc_runs", "ssd.int.buffer_hits",
	} {
		if !Cataloged(n) {
			t.Errorf("counter name %q must normalize into the catalog", n)
		}
	}
	for _, n := range []string{
		"memctrl.read.rdb_hit", // missing _ps suffix
		"memctl.ch0.reads",     // typo'd subsystem
		"accel.pe0.l3.hits",    // no such level
		"",
	} {
		if Cataloged(n) {
			t.Errorf("unknown name %q must not be cataloged", n)
		}
	}
	if CatalogSize() < len(declared) {
		t.Errorf("catalog size %d smaller than the declared instrument list %d",
			CatalogSize(), len(declared))
	}
}
