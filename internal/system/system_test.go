package system

import (
	"testing"

	"dramless/internal/energy"
	"dramless/internal/memctrl"
	"dramless/internal/sim"
	"dramless/internal/workload"
)

// testConfig shrinks the footprint so the full matrix stays fast.
func testConfig(kind Kind) Config {
	cfg := DefaultConfig(kind)
	cfg.Scale = 256 << 10
	cfg.SSDCapacity = 64 << 20
	return cfg
}

func runOne(t *testing.T, kind Kind, kname string) *Result {
	t.Helper()
	res, err := Run(testConfig(kind), workload.MustByName(kname))
	if err != nil {
		t.Fatalf("%v/%s: %v", kind, kname, err)
	}
	return res
}

func TestKindStringsAndCatalog(t *testing.T) {
	if len(Fig15Kinds()) != 10 {
		t.Fatalf("Fig15 has %d kinds, want 10", len(Fig15Kinds()))
	}
	if DRAMLess.String() != "DRAM-less" || Hetero.String() != "Hetero" {
		t.Fatal("kind names wrong")
	}
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("Table I has %d rows, want 10", len(cat))
	}
	for _, row := range cat {
		if row.Heterogeneous != row.Kind.Heterogeneous() {
			t.Errorf("%v: heterogeneous flag mismatch", row.Kind)
		}
		if row.InternalDRAM != row.Kind.HasInternalDRAM() {
			t.Errorf("%v: internal-DRAM flag mismatch", row.Kind)
		}
	}
	if DRAMLess.HasInternalDRAM() {
		t.Error("DRAM-less must not have internal DRAM - it is the point of the paper")
	}
}

func TestEverySystemRuns(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			res := runOne(t, kind, "jaco1d")
			if res.Total <= 0 {
				t.Fatal("non-positive total time")
			}
			if res.BandwidthMBps() <= 0 {
				t.Fatal("no bandwidth")
			}
			if res.Energy.Total() <= 0 {
				t.Fatal("no energy accounted")
			}
			if res.Report.Instrs <= 0 {
				t.Fatal("no instructions retired")
			}
			if got := res.Time.Total(); got <= 0 {
				t.Fatal("empty time breakdown")
			}
		})
	}
}

func TestDRAMLessBeatsHetero(t *testing.T) {
	// The headline: DRAM-less substantially outperforms the conventional
	// heterogeneous system (the paper reports +93% on average).
	for _, kname := range []string{"gemver", "jaco1d", "doitg"} {
		dl := runOne(t, DRAMLess, kname)
		he := runOne(t, Hetero, kname)
		if dl.Total >= he.Total {
			t.Errorf("%s: DRAM-less (%v) not faster than Hetero (%v)", kname, dl.Total, he.Total)
		}
	}
}

func TestHeterodirectBeatsHetero(t *testing.T) {
	// P2P DMA removes host copies (paper: +25% on average).
	hd := runOne(t, Heterodirect, "gemver")
	he := runOne(t, Hetero, "gemver")
	if hd.Total >= he.Total {
		t.Errorf("Heterodirect (%v) not faster than Hetero (%v)", hd.Total, he.Total)
	}
}

func TestHeteroPRAMWinsOnReadsLosesOnWrites(t *testing.T) {
	// PRAM SSDs beat flash SSDs for read-intensive workloads and lose
	// ground on write-intensive ones (Section VI-A).
	readGain := float64(runOne(t, Hetero, "gemver").Total) / float64(runOne(t, HeteroPRAM, "gemver").Total)
	writeGain := float64(runOne(t, Hetero, "doitg").Total) / float64(runOne(t, HeteroPRAM, "doitg").Total)
	if readGain <= 1 {
		t.Errorf("Hetero-PRAM read-intensive gain = %.2fx, want > 1", readGain)
	}
	if writeGain >= readGain {
		t.Errorf("write gain %.2fx not below read gain %.2fx", writeGain, readGain)
	}
}

func TestDRAMLessBeatsFirmwareManaged(t *testing.T) {
	// Figure 7 / Section VI: hardware automation beats firmware
	// management of the same PRAM.
	dl := runOne(t, DRAMLess, "gemver")
	fw := runOne(t, DRAMLessFirmware, "gemver")
	if dl.Total >= fw.Total {
		t.Errorf("DRAM-less (%v) not faster than firmware-managed (%v)", dl.Total, fw.Total)
	}
}

func TestIdealFastest(t *testing.T) {
	id := runOne(t, Ideal, "jaco2d")
	for _, kind := range []Kind{Hetero, IntegratedSLC, DRAMLess} {
		res := runOne(t, kind, "jaco2d")
		if id.Total > res.Total {
			t.Errorf("Ideal (%v) slower than %v (%v)", id.Total, kind, res.Total)
		}
	}
}

func TestIntegratedOrderSLCFasterThanTLC(t *testing.T) {
	slc := runOne(t, IntegratedSLC, "jaco1d")
	tlc := runOne(t, IntegratedTLC, "jaco1d")
	if slc.Total >= tlc.Total {
		t.Errorf("Integrated-SLC (%v) not faster than TLC (%v)", slc.Total, tlc.Total)
	}
}

func TestDRAMLessEnergyBelowHetero(t *testing.T) {
	// Figure 17: DRAM-less consumes a small fraction of the advanced
	// systems' energy (paper: 19% of Heterodirect's).
	dl := runOne(t, DRAMLess, "gemver")
	he := runOne(t, Heterodirect, "gemver")
	if dl.Energy.Total() >= he.Energy.Total() {
		t.Errorf("DRAM-less energy (%.3g J) not below Heterodirect (%.3g J)",
			dl.Energy.Total(), he.Energy.Total())
	}
	// Host software must dominate the hetero budget, not the DRAM-less one.
	if he.Energy.Breakdown().Get(energy.CompHost) <= dl.Energy.Breakdown().Get(energy.CompHost) {
		t.Error("host energy of Heterodirect not above DRAM-less")
	}
}

func TestHeteroTimeDominatedByStaging(t *testing.T) {
	res := runOne(t, Hetero, "gemver")
	staging := res.Time.Get(TimeLoad) + res.Time.Get(TimeStore)
	if staging <= res.Time.Get(TimeCompute) {
		t.Errorf("Hetero staging %.3g not above compute %.3g - Figure 1's motivation is missing",
			staging, res.Time.Get(TimeCompute))
	}
	// DRAM-less flips this.
	dl := runOne(t, DRAMLess, "gemver")
	dlStaging := dl.Time.Get(TimeLoad) + dl.Time.Get(TimeStore)
	if dlStaging >= dl.Time.Get(TimeCompute)+dl.Time.Get(TimeStall) {
		t.Errorf("DRAM-less staging %.3g not below kernel time", dlStaging)
	}
}

func TestSchedulerAblationOnDRAMLess(t *testing.T) {
	// Figure 13 at system level: Final >= Bare-metal on a
	// write-intensive kernel.
	run := func(s memctrl.Scheduler) sim.Duration {
		cfg := testConfig(DRAMLess)
		cfg.Scheduler = s
		res, err := Run(cfg, workload.MustByName("doitg"))
		if err != nil {
			t.Fatal(err)
		}
		return res.Total
	}
	noop := run(memctrl.Noop)
	final := run(memctrl.Final)
	if final >= noop {
		t.Errorf("Final (%v) not faster than Bare-metal (%v)", final, noop)
	}
}

func TestSampledRunProducesSeries(t *testing.T) {
	cfg := testConfig(DRAMLess)
	cfg.SampleInterval = 20 * sim.Microsecond
	res, err := Run(cfg, workload.MustByName("gemver"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.IPC == nil || res.Report.IPC.Len() == 0 {
		t.Fatal("no IPC series")
	}
	ps := res.Energy.PowerSeries()
	if len(ps) == 0 {
		t.Fatal("no power series")
	}
	var nonzero bool
	for _, v := range ps {
		if v > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("power series all zero")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig(DRAMLess)
	cfg.Scale = 0
	if _, err := Run(cfg, workload.MustByName("lu")); err == nil {
		t.Error("zero scale accepted")
	}
	cfg = testConfig(Kind(99))
	if _, err := Run(cfg, workload.MustByName("lu")); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDRAMLessWithWearLeveling(t *testing.T) {
	cfg := testConfig(DRAMLess)
	cfg.Wear = memctrl.DefaultWear()
	res, err := Run(cfg, workload.MustByName("doitg"))
	if err != nil {
		t.Fatal(err)
	}
	plain := runOne(t, DRAMLess, "doitg")
	if res.Total <= plain.Total {
		t.Fatalf("leveling was free end to end: %v vs %v", res.Total, plain.Total)
	}
	// psi=100 must stay a modest tax.
	if float64(res.Total) > 1.3*float64(plain.Total) {
		t.Fatalf("leveling cost %.0f%% end to end",
			(float64(res.Total)/float64(plain.Total)-1)*100)
	}
}

func TestIntegratedOutputsPersistToMedia(t *testing.T) {
	// The store phase of integrated systems flushes dirty pages; the
	// flash array must have seen programs beyond the setup phase.
	res := runOne(t, IntegratedSLC, "doitg")
	if res.Store <= 0 {
		t.Fatal("integrated system skipped the persistence flush")
	}
}

func TestNORDrainCoversWrites(t *testing.T) {
	res := runOne(t, NORIntf, "doitg")
	// NOR writes are slow and serialized; the kernel phase dominates and
	// nothing may linger past the reported total.
	if res.Kernel <= res.Load+res.Store {
		t.Fatal("NOR kernel phase not dominant")
	}
}
