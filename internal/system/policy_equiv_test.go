package system

import (
	"bytes"
	"reflect"
	"testing"

	"dramless/internal/memctrl"
	"dramless/internal/obs"
	"dramless/internal/workload"
)

// policyEquivKernels keeps the per-policy conformance sweep affordable:
// one dense-read kernel and one write-heavy kernel.
var policyEquivKernels = []string{"gemver", "doitg"}

// policyExports runs kernel kname on a DRAM-less system under the named
// policy and returns the run plus byte exports of its distributions.
func policyExports(t *testing.T, name, kname string, lanes int) (*Result, []byte, []byte) {
	t.Helper()
	k := workload.MustByName(kname)
	cfg := testConfig(DRAMLess)
	cfg.Scale = 128 << 10
	cfg.Policy = name
	cfg.Accel.Lanes = lanes
	cfg.Obs = obs.New()
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatalf("policy %q: %v", name, err)
	}
	var hb, sb bytes.Buffer
	if err := cfg.Obs.Histograms().WriteJSON(&hb); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Series().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return res, hb.Bytes(), sb.Bytes()
}

// TestPolicyConformance is the policy registry's system-level oracle:
// every registered policy must run deterministically — byte-identical
// histogram/series exports and identical phase walls under the legacy
// serial engine, the laned engine at 1 and at 4 goroutines, and a run
// forked from its populate/load checkpoint.
func TestPolicyConformance(t *testing.T) {
	for _, name := range memctrl.PolicyNames() {
		for _, kname := range policyEquivKernels {
			name, kname := name, kname
			t.Run(name+"/"+kname, func(t *testing.T) {
				serial, sh, ss := policyExports(t, name, kname, 0)
				for _, lanes := range []int{1, 4} {
					laned, lh, ls := policyExports(t, name, kname, lanes)
					if laned.Total != serial.Total || laned.Kernel != serial.Kernel {
						t.Errorf("lanes=%d: walls differ: total %v != %v", lanes, laned.Total, serial.Total)
					}
					if !bytes.Equal(lh, sh) {
						t.Errorf("lanes=%d: histogram export not byte-identical", lanes)
					}
					if !bytes.Equal(ls, ss) {
						t.Errorf("lanes=%d: series export not byte-identical", lanes)
					}
				}

				// Forked from the shared checkpoint: identical again.
				k := workload.MustByName(kname)
				cfg := testConfig(DRAMLess)
				cfg.Scale = 128 << 10
				cfg.Policy = name
				cfg.Obs = obs.New()
				cp, err := CapturePrefix(PrefixOf(cfg, k))
				if err != nil {
					t.Fatal(err)
				}
				forked, err := RunForked(cfg, k, cp)
				if err != nil {
					t.Fatal(err)
				}
				cp.Release()
				if forked.Total != serial.Total || forked.Kernel != serial.Kernel {
					t.Errorf("forked walls differ: total %v != %v", forked.Total, serial.Total)
				}
				var fb bytes.Buffer
				if err := cfg.Obs.Histograms().WriteJSON(&fb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fb.Bytes(), sh) {
					t.Error("forked histogram export not byte-identical to cold")
				}
			})
		}
	}
}

// TestEnumAndPolicyNameRunIdentical pins the compatibility contract: a
// legacy Scheduler enum config and its canonical policy name produce the
// same simulation.
func TestEnumAndPolicyNameRunIdentical(t *testing.T) {
	k := workload.MustByName("gemver")
	pairs := []struct {
		s    memctrl.Scheduler
		name string
	}{
		{memctrl.Noop, "bare-metal"},
		{memctrl.Interleave, "interleaving"},
		{memctrl.SelErase, "selective-erasing"},
		{memctrl.Final, "final"},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			byEnum := testConfig(DRAMLess)
			byEnum.Scale = 128 << 10
			byEnum.Scheduler = p.s
			re, err := Run(byEnum, k)
			if err != nil {
				t.Fatal(err)
			}
			byName := testConfig(DRAMLess)
			byName.Scale = 128 << 10
			byName.Policy = p.name
			rn, err := Run(byName, k)
			if err != nil {
				t.Fatal(err)
			}
			if re.Total != rn.Total || re.Kernel != rn.Kernel || re.Load != rn.Load {
				t.Errorf("enum %v vs policy %q: walls differ (total %v vs %v)",
					p.s, p.name, re.Total, rn.Total)
			}
			if !reflect.DeepEqual(re.Energy, rn.Energy) {
				t.Errorf("enum %v vs policy %q: energy differs", p.s, p.name)
			}
		})
	}
}

// TestPrefixOfNormalizesPolicy pins the checkpoint-key rules for the
// scheduling policy: spelling (enum vs canonical name) never splits a
// prefix, a genuinely different policy does, and organizations without
// a PRAM controller ignore the policy entirely.
func TestPrefixOfNormalizesPolicy(t *testing.T) {
	k := workload.MustByName("gemver")

	enum := testConfig(DRAMLess)
	enum.Scheduler = memctrl.Final
	named := testConfig(DRAMLess)
	named.Policy = "final"
	if PrefixOf(enum, k) != PrefixOf(named, k) {
		t.Error("enum Final and policy \"final\" should share a prefix")
	}
	cased := testConfig(DRAMLess)
	cased.Policy = "FINAL"
	if PrefixOf(named, k) != PrefixOf(cased, k) {
		t.Error("policy lookup is case-insensitive; the prefix key must be too")
	}

	palp := testConfig(DRAMLess)
	palp.Policy = "palp"
	if PrefixOf(named, k) == PrefixOf(palp, k) {
		t.Error("different policies must split the prefix key")
	}

	// Non-PRAM organizations have no controller to schedule: the policy
	// must normalize away so they share checkpoints regardless.
	plain := testConfig(Hetero)
	polled := testConfig(Hetero)
	polled.Policy = "palp"
	if PrefixOf(plain, k) != PrefixOf(polled, k) {
		t.Error("policy split a prefix on an organization without a PRAM controller")
	}
}

// TestConfigValidatePolicyName pins the config-level error surface:
// unknown policy names and out-of-range enum values are both rejected.
func TestConfigValidatePolicyName(t *testing.T) {
	cfg := testConfig(DRAMLess)
	cfg.Policy = "round-robin"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown policy name accepted")
	}
	cfg = testConfig(DRAMLess)
	cfg.Scheduler = memctrl.Scheduler(99)
	if _, err := Run(cfg, workload.MustByName("gemver")); err == nil {
		t.Error("out-of-range scheduler enum accepted by Run")
	}
}
