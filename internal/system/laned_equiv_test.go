package system

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dramless/internal/obs"
	"dramless/internal/workload"
)

// laneCounter reports the lane executor's own statistics counters,
// which the legacy serial engine does not emit at all (prefix-origin
// filtering, the house precedent from the prefix-fork counters). They
// are still deterministic: the laned runs compare them against each
// other below.
func laneCounter(name string) bool {
	return strings.HasPrefix(name, "sim.lane.")
}

func lanelessEntries(c *obs.Counters) []obs.Entry {
	out := make([]obs.Entry, 0, c.Len())
	for _, e := range c.Entries() {
		if !laneCounter(e.Name) {
			out = append(out, e)
		}
	}
	return out
}

// TestLanedMatchesSerial is the lane executor's equivalence oracle: for
// every Table I organization x one kernel per workload class, the laned
// run — at one goroutine and at N — must reproduce the legacy serial
// engine exactly: phase walls, time/energy breakdowns, the full kernel
// report including the event-dispatch count (lane-mode bookkeeping
// replicates the legacy count head for head), the counter registry save
// the lane executor's own sim.lane.* statistics, and byte-identical
// histogram JSON and series CSV exports. The two laned runs must also
// agree with each other on the sim.lane.* counters: lane statistics are
// deterministic functions of the simulation, not of the worker count.
func TestLanedMatchesSerial(t *testing.T) {
	for _, kind := range Kinds() {
		for _, kname := range equivKernels {
			t.Run(kind.String()+"/"+kname, func(t *testing.T) {
				k := workload.MustByName(kname)

				run := func(lanes int) *Result {
					cfg := testConfig(kind)
					cfg.Scale = 128 << 10
					cfg.Accel.Lanes = lanes
					cfg.Obs = obs.New()
					res, err := Run(cfg, k)
					if err != nil {
						t.Fatalf("lanes=%d: %v", lanes, err)
					}
					return res
				}
				serial := run(0)
				for _, lanes := range []int{1, 4} {
					laned := run(lanes)

					if laned.Load != serial.Load || laned.Kernel != serial.Kernel ||
						laned.Store != serial.Store || laned.Total != serial.Total {
						t.Errorf("lanes=%d: phase walls differ:\n  laned  load=%v kernel=%v store=%v total=%v\n  serial load=%v kernel=%v store=%v total=%v",
							lanes, laned.Load, laned.Kernel, laned.Store, laned.Total,
							serial.Load, serial.Kernel, serial.Store, serial.Total)
					}
					if laned.Footprint != serial.Footprint {
						t.Errorf("lanes=%d: footprint differs: %d != %d", lanes, laned.Footprint, serial.Footprint)
					}
					if !reflect.DeepEqual(laned.Time, serial.Time) {
						t.Errorf("lanes=%d: time breakdown differs:\n  laned:  %+v\n  serial: %+v", lanes, laned.Time, serial.Time)
					}
					if !reflect.DeepEqual(laned.Energy, serial.Energy) {
						t.Errorf("lanes=%d: energy account differs:\n  laned:  %+v\n  serial: %+v", lanes, laned.Energy, serial.Energy)
					}

					// The report must match including Events: the lane
					// executor counts absorbed heads and exhausted
					// dispatches exactly as the legacy loop dispatches
					// them. Only the lane statistics fields are its own.
					lr, sr := *laned.Report, *serial.Report
					lr.LaneEvents, lr.LaneWindows, lr.LaneBarrierStalls, lr.LaneWorkers = nil, 0, 0, 0
					if !reflect.DeepEqual(lr, sr) {
						t.Errorf("lanes=%d: kernel report differs:\n  laned:  %+v\n  serial: %+v", lanes, lr, sr)
					}

					le := lanelessEntries(&laned.Counters)
					se := lanelessEntries(&serial.Counters)
					if len(le) != len(se) {
						t.Fatalf("lanes=%d: counter registries differ in size: %d != %d", lanes, len(le), len(se))
					}
					for i := range le {
						if le[i] != se[i] {
							t.Errorf("lanes=%d: counter %q: laned %+v != serial %+v", lanes, le[i].Name, le[i], se[i])
						}
					}
				}

				// Lane statistics are worker-count-invariant.
				one, four := run(1), run(4)
				if one.Report.LaneWindows != four.Report.LaneWindows ||
					one.Report.LaneBarrierStalls != four.Report.LaneBarrierStalls ||
					!reflect.DeepEqual(one.Report.LaneEvents, four.Report.LaneEvents) {
					t.Errorf("lane stats depend on worker count:\n  lanes=1: %+v\n  lanes=4: %+v",
						one.Report, four.Report)
				}

				// Exports are byte-identical across engines: rebuild the
				// three runs against fresh observers and diff the bytes.
				if t.Failed() {
					return
				}
				exports := func(lanes int) (hist, series []byte) {
					cfg := testConfig(kind)
					cfg.Scale = 128 << 10
					cfg.Accel.Lanes = lanes
					cfg.Obs = obs.New()
					if _, err := Run(cfg, k); err != nil {
						t.Fatalf("lanes=%d: %v", lanes, err)
					}
					var hb, sb bytes.Buffer
					if err := cfg.Obs.Histograms().WriteJSON(&hb); err != nil {
						t.Fatal(err)
					}
					if err := cfg.Obs.Series().WriteCSV(&sb); err != nil {
						t.Fatal(err)
					}
					return hb.Bytes(), sb.Bytes()
				}
				sh, ss := exports(0)
				for _, lanes := range []int{1, 4} {
					lh, ls := exports(lanes)
					if !bytes.Equal(lh, sh) {
						t.Errorf("lanes=%d: histogram JSON export is not byte-identical to serial", lanes)
					}
					if !bytes.Equal(ls, ss) {
						t.Errorf("lanes=%d: series CSV export is not byte-identical to serial", lanes)
					}
				}
			})
		}
	}
}
