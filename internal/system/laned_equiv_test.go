package system

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dramless/internal/obs"
	"dramless/internal/workload"
)

// laneCounter reports the lane executor's own statistics counters,
// which the legacy serial engine does not emit at all (prefix-origin
// filtering, the house precedent from the prefix-fork counters). They
// are still deterministic: the laned runs compare them against each
// other below.
func laneCounter(name string) bool {
	return strings.HasPrefix(name, "sim.lane.")
}

func lanelessEntries(c *obs.Counters) []obs.Entry {
	out := make([]obs.Entry, 0, c.Len())
	for _, e := range c.Entries() {
		if !laneCounter(e.Name) {
			out = append(out, e)
		}
	}
	return out
}

// TestLanedMatchesSerial is the lane executor's equivalence oracle: for
// every Table I organization x one kernel per workload class, the laned
// run — at one goroutine and at N — must reproduce the legacy serial
// engine exactly: phase walls, time/energy breakdowns, the full kernel
// report including the event-dispatch count (lane-mode bookkeeping
// replicates the legacy count head for head), the counter registry save
// the lane executor's own sim.lane.* statistics, and byte-identical
// histogram JSON and series CSV exports. The two laned runs must also
// agree with each other on the sim.lane.* counters: lane statistics are
// deterministic functions of the simulation, not of the worker count.
func TestLanedMatchesSerial(t *testing.T) {
	for _, kind := range Kinds() {
		for _, kname := range equivKernels {
			t.Run(kind.String()+"/"+kname, func(t *testing.T) {
				k := workload.MustByName(kname)

				run := func(lanes int) *Result {
					cfg := testConfig(kind)
					cfg.Scale = 128 << 10
					cfg.Accel.Lanes = lanes
					cfg.Obs = obs.New()
					res, err := Run(cfg, k)
					if err != nil {
						t.Fatalf("lanes=%d: %v", lanes, err)
					}
					return res
				}
				serial := run(0)
				for _, lanes := range []int{1, 4} {
					laned := run(lanes)

					if laned.Load != serial.Load || laned.Kernel != serial.Kernel ||
						laned.Store != serial.Store || laned.Total != serial.Total {
						t.Errorf("lanes=%d: phase walls differ:\n  laned  load=%v kernel=%v store=%v total=%v\n  serial load=%v kernel=%v store=%v total=%v",
							lanes, laned.Load, laned.Kernel, laned.Store, laned.Total,
							serial.Load, serial.Kernel, serial.Store, serial.Total)
					}
					if laned.Footprint != serial.Footprint {
						t.Errorf("lanes=%d: footprint differs: %d != %d", lanes, laned.Footprint, serial.Footprint)
					}
					if !reflect.DeepEqual(laned.Time, serial.Time) {
						t.Errorf("lanes=%d: time breakdown differs:\n  laned:  %+v\n  serial: %+v", lanes, laned.Time, serial.Time)
					}
					if !reflect.DeepEqual(laned.Energy, serial.Energy) {
						t.Errorf("lanes=%d: energy account differs:\n  laned:  %+v\n  serial: %+v", lanes, laned.Energy, serial.Energy)
					}

					// The report must match including Events: the lane
					// executor counts absorbed heads and exhausted
					// dispatches exactly as the legacy loop dispatches
					// them. Only the lane statistics fields are its own.
					lr, sr := *laned.Report, *serial.Report
					lr.LaneEvents, lr.LaneWindows, lr.LaneBarrierStalls, lr.LaneWorkers = nil, 0, 0, 0
					lr.LaneFolded, lr.LaneParkedWindows = 0, nil
					if !reflect.DeepEqual(lr, sr) {
						t.Errorf("lanes=%d: kernel report differs:\n  laned:  %+v\n  serial: %+v", lanes, lr, sr)
					}

					le := lanelessEntries(&laned.Counters)
					se := lanelessEntries(&serial.Counters)
					if len(le) != len(se) {
						t.Fatalf("lanes=%d: counter registries differ in size: %d != %d", lanes, len(le), len(se))
					}
					for i := range le {
						if le[i] != se[i] {
							t.Errorf("lanes=%d: counter %q: laned %+v != serial %+v", lanes, le[i].Name, le[i], se[i])
						}
					}
				}

				// Lane statistics are worker-count-invariant — including the
				// fold-coverage stats and the full sim.lane.* counter set
				// (which covers the load/store phase lanes and, indirectly,
				// the fold ratio gauge).
				one, four := run(1), run(4)
				if one.Report.LaneWindows != four.Report.LaneWindows ||
					one.Report.LaneBarrierStalls != four.Report.LaneBarrierStalls ||
					one.Report.LaneFolded != four.Report.LaneFolded ||
					!reflect.DeepEqual(one.Report.LaneEvents, four.Report.LaneEvents) ||
					!reflect.DeepEqual(one.Report.LaneParkedWindows, four.Report.LaneParkedWindows) {
					t.Errorf("lane stats depend on worker count:\n  lanes=1: %+v\n  lanes=4: %+v",
						one.Report, four.Report)
				}
				oe, fe := one.Counters.Entries(), four.Counters.Entries()
				if len(oe) != len(fe) {
					t.Fatalf("laned counter registries differ in size: lanes=1 %d != lanes=4 %d", len(oe), len(fe))
				}
				for i := range oe {
					if oe[i] != fe[i] {
						t.Errorf("counter %q differs across worker counts: lanes=1 %+v != lanes=4 %+v",
							oe[i].Name, oe[i], fe[i])
					}
				}

				// Fold coverage: kinds whose store phase runs as a lane
				// absorb every op after the first head inline, so the laned
				// run must report folded storage-phase events the serial
				// engine never could (it has no fold path at all).
				if four.Counters.Has("sim.lane.store.events") {
					if v := four.Counters.Get("sim.lane.store.folded_events"); v <= 0 {
						t.Errorf("sim.lane.store.folded_events = %d, want > 0", v)
					}
				}

				// Exports are byte-identical across engines: rebuild the
				// three runs against fresh observers and diff the bytes.
				if t.Failed() {
					return
				}
				exports := func(lanes int) (hist, series []byte) {
					cfg := testConfig(kind)
					cfg.Scale = 128 << 10
					cfg.Accel.Lanes = lanes
					cfg.Obs = obs.New()
					if _, err := Run(cfg, k); err != nil {
						t.Fatalf("lanes=%d: %v", lanes, err)
					}
					var hb, sb bytes.Buffer
					if err := cfg.Obs.Histograms().WriteJSON(&hb); err != nil {
						t.Fatal(err)
					}
					if err := cfg.Obs.Series().WriteCSV(&sb); err != nil {
						t.Fatal(err)
					}
					return hb.Bytes(), sb.Bytes()
				}
				sh, ss := exports(0)
				for _, lanes := range []int{1, 4} {
					lh, ls := exports(lanes)
					if !bytes.Equal(lh, sh) {
						t.Errorf("lanes=%d: histogram JSON export is not byte-identical to serial", lanes)
					}
					if !bytes.Equal(ls, ss) {
						t.Errorf("lanes=%d: series CSV export is not byte-identical to serial", lanes)
					}
				}
			})
		}
	}
}

// TestLanedForkedMatchesCold crosses the two execution layers: a laned
// run forked from a captured populate/load checkpoint must reproduce the
// cold laned run exactly. Forked runs replay the load phase from
// checkpoint samples instead of executing it, so the load-phase lane
// counters (sim.lane.load.*) exist only on the cold side — they are
// filtered like the other engine-origin counters, everything else must
// match byte for byte.
func TestLanedForkedMatchesCold(t *testing.T) {
	for _, kind := range Kinds() {
		for _, kname := range equivKernels {
			t.Run(kind.String()+"/"+kname, func(t *testing.T) {
				k := workload.MustByName(kname)

				cfg := testConfig(kind)
				cfg.Scale = 128 << 10
				cfg.Accel.Lanes = 4
				cfg.Obs = obs.New()
				cold, err := Run(cfg, k)
				if err != nil {
					t.Fatal(err)
				}

				fcfg := cfg
				fcfg.Obs = obs.New()
				cp, err := CapturePrefix(PrefixOf(fcfg, k))
				if err != nil {
					t.Fatal(err)
				}
				forked, err := RunForked(fcfg, k, cp)
				if err != nil {
					t.Fatal(err)
				}

				if forked.Load != cold.Load || forked.Kernel != cold.Kernel ||
					forked.Store != cold.Store || forked.Total != cold.Total {
					t.Errorf("phase walls differ:\n  forked load=%v kernel=%v store=%v total=%v\n  cold   load=%v kernel=%v store=%v total=%v",
						forked.Load, forked.Kernel, forked.Store, forked.Total,
						cold.Load, cold.Kernel, cold.Store, cold.Total)
				}
				if !reflect.DeepEqual(forked.Time, cold.Time) {
					t.Errorf("time breakdown differs:\n  forked: %+v\n  cold:   %+v", forked.Time, cold.Time)
				}
				if !reflect.DeepEqual(forked.Energy, cold.Energy) {
					t.Errorf("energy account differs:\n  forked: %+v\n  cold:   %+v", forked.Energy, cold.Energy)
				}

				fr, cr := *forked.Report, *cold.Report
				fr.Events, fr.EventsRecycled = 0, 0
				cr.Events, cr.EventsRecycled = 0, 0
				if !reflect.DeepEqual(fr, cr) {
					t.Errorf("kernel report differs:\n  forked: %+v\n  cold:   %+v", fr, cr)
				}

				filter := func(c *obs.Counters) []obs.Entry {
					out := make([]obs.Entry, 0, c.Len())
					for _, e := range c.Entries() {
						if !eventCounter(e.Name) && !prefixCounter(e.Name) &&
							!strings.HasPrefix(e.Name, "sim.lane.load.") {
							out = append(out, e)
						}
					}
					return out
				}
				fe, ce := filter(&forked.Counters), filter(&cold.Counters)
				if len(fe) != len(ce) {
					t.Fatalf("counter registries differ in size: %d != %d", len(fe), len(ce))
				}
				for i := range fe {
					if fe[i] != ce[i] {
						t.Errorf("counter %q: forked %+v != cold %+v", fe[i].Name, fe[i], ce[i])
					}
				}

				var fb, cb bytes.Buffer
				if err := fcfg.Obs.Histograms().WriteJSON(&fb); err != nil {
					t.Fatal(err)
				}
				if err := cfg.Obs.Histograms().WriteJSON(&cb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fb.Bytes(), cb.Bytes()) {
					t.Error("histogram JSON exports are not byte-identical")
				}
				fb.Reset()
				cb.Reset()
				if err := fcfg.Obs.Series().WriteCSV(&fb); err != nil {
					t.Fatal(err)
				}
				if err := cfg.Obs.Series().WriteCSV(&cb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fb.Bytes(), cb.Bytes()) {
					t.Error("series CSV exports are not byte-identical")
				}
			})
		}
	}
}
