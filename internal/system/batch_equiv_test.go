package system

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dramless/internal/obs"
	"dramless/internal/workload"
)

// equivKernels picks one kernel from each workload class (Table III
// taxonomy), so the batched datapath is exercised across read-, write-,
// compute- and memory-bound op mixes.
var equivKernels = []string{"gemver", "doitg", "fdtdap", "jaco1d"}

// eventCounter reports registry names that count simulation-engine
// events. Run coalescing services several ops per engine event by
// design, so dispatch/recycle totals legitimately shrink; every other
// observable must stay byte-identical.
func eventCounter(name string) bool {
	return strings.HasSuffix(name, "events_dispatched") ||
		strings.HasSuffix(name, "events_recycled")
}

func filteredEntries(c *obs.Counters) []obs.Entry {
	out := make([]obs.Entry, 0, c.Len())
	for _, e := range c.Entries() {
		if !eventCounter(e.Name) {
			out = append(out, e)
		}
	}
	return out
}

// TestBatchedMatchesUnbatched is the coalescing datapath's equivalence
// oracle: for every Table I organization x one kernel per workload
// class, a run with the batched front-end must reproduce the op-at-a-
// time run exactly - phase walls, time/energy breakdowns, per-agent
// reports and cache stats, and the full counter registry, save only the
// engine's event-dispatch totals (see eventCounter).
func TestBatchedMatchesUnbatched(t *testing.T) {
	for _, kind := range Kinds() {
		for _, kname := range equivKernels {
			t.Run(kind.String()+"/"+kname, func(t *testing.T) {
				k := workload.MustByName(kname)

				cfg := testConfig(kind)
				cfg.Scale = 128 << 10
				cfg.Obs = obs.New()
				batched, err := Run(cfg, k)
				if err != nil {
					t.Fatal(err)
				}

				ucfg := cfg
				ucfg.Accel.PE.Unbatched = true
				ucfg.Obs = obs.New()
				unbatched, err := Run(ucfg, k)
				if err != nil {
					t.Fatal(err)
				}

				if batched.Load != unbatched.Load ||
					batched.Kernel != unbatched.Kernel ||
					batched.Store != unbatched.Store ||
					batched.Total != unbatched.Total {
					t.Errorf("phase walls differ:\n  batched   load=%v kernel=%v store=%v total=%v\n  unbatched load=%v kernel=%v store=%v total=%v",
						batched.Load, batched.Kernel, batched.Store, batched.Total,
						unbatched.Load, unbatched.Kernel, unbatched.Store, unbatched.Total)
				}
				if batched.Footprint != unbatched.Footprint {
					t.Errorf("footprint differs: %d != %d", batched.Footprint, unbatched.Footprint)
				}
				if !reflect.DeepEqual(batched.Time, unbatched.Time) {
					t.Errorf("time breakdown differs:\n  batched:   %+v\n  unbatched: %+v", batched.Time, unbatched.Time)
				}
				if !reflect.DeepEqual(batched.Energy, unbatched.Energy) {
					t.Errorf("energy account differs:\n  batched:   %+v\n  unbatched: %+v", batched.Energy, unbatched.Energy)
				}

				// Reports match except the engine event totals.
				br, ur := *batched.Report, *unbatched.Report
				br.Events, br.EventsRecycled = 0, 0
				ur.Events, ur.EventsRecycled = 0, 0
				if !reflect.DeepEqual(br, ur) {
					t.Errorf("kernel report differs:\n  batched:   %+v\n  unbatched: %+v", br, ur)
				}

				be := filteredEntries(&batched.Counters)
				ue := filteredEntries(&unbatched.Counters)
				if len(be) != len(ue) {
					t.Fatalf("counter registries differ in size: %d != %d", len(be), len(ue))
				}
				for i := range be {
					if be[i] != ue[i] {
						t.Errorf("counter %q: batched %+v != unbatched %+v", be[i].Name, be[i], ue[i])
					}
				}

				// The latency histograms and windowed series must agree
				// byte for byte: the batched fast paths are required to
				// record every per-access sample the scalar reference
				// loop would (mem.Run.OnOp, cache run fast arms).
				bh, uh := cfg.Obs.Histograms(), ucfg.Obs.Histograms()
				if !bh.Equal(uh) {
					t.Errorf("histograms differ:\n%s", bh.Diff(uh))
				}
				bs, us := cfg.Obs.Series(), ucfg.Obs.Series()
				if !bs.Equal(us) {
					t.Errorf("series differ:\n%s", bs.Diff(us))
				}
				if !t.Failed() {
					var bbuf, ubuf bytes.Buffer
					if err := bh.WriteJSON(&bbuf); err != nil {
						t.Fatal(err)
					}
					if err := uh.WriteJSON(&ubuf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(bbuf.Bytes(), ubuf.Bytes()) {
						t.Error("histogram JSON exports are not byte-identical")
					}
					bbuf.Reset()
					ubuf.Reset()
					if err := bs.WriteCSV(&bbuf); err != nil {
						t.Fatal(err)
					}
					if err := us.WriteCSV(&ubuf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(bbuf.Bytes(), ubuf.Bytes()) {
						t.Error("series CSV exports are not byte-identical")
					}
				}
			})
		}
	}
}
