package system

import (
	"dramless/internal/obs"
	"dramless/internal/sim"
	"dramless/internal/workload"
)

// Prefix-origin counters: every Result carries exactly one of these, at
// the tail of its registry, recording whether its populate/load prefix
// was simulated from scratch or forked from a shared checkpoint.
const (
	CounterPrefixForks    = "system.prefix_forks"
	CounterPrefixColdRuns = "system.prefix_cold_runs"
)

// Prefix identifies one populate/load prefix. Runs whose Prefix compares
// equal traverse a byte- and picosecond-identical simulation up to the
// end of the load phase: the prefix touches the kernel only through its
// input/output byte counts, base address and agent count, and the Config
// only through fields that shape the timed simulation. Observability
// attachments (Obs, SampleInterval) record the timeline without
// perturbing it, so they are normalized away.
//
// Prefix is a comparable value; it is the key of the experiment engine's
// checkpoint cache.
type Prefix struct {
	Cfg    Config
	In     int64
	Out    int64
	Base   uint64
	Agents int
}

// PrefixOf returns the checkpoint key for running kernel k under cfg.
func PrefixOf(cfg Config, k workload.Kernel) Prefix {
	p := workload.Params{Scale: cfg.Scale, Agents: cfg.Accel.NumPEs - 1}
	norm := cfg
	norm.Obs = nil
	norm.SampleInterval = 0
	// The lane knob changes only how the kernel phase executes, never
	// its result (TestLanedMatchesSerial), and the populate/load prefix
	// does not run kernels at all — every lane setting shares one
	// checkpoint.
	norm.Accel.Lanes = 0
	// Scheduler policy: only the DRAM-less kind reads the
	// Scheduler/Policy pair (the firmware-managed build forces
	// bare-metal, every other kind has no PRAM controller), and a legacy
	// enum value builds the identical controller as its canonical
	// registry policy — both spellings share one checkpoint. The policy
	// does shape the prefix itself for DRAM-less (the load phase's
	// PreErase intent declaration), so the canonical name stays in the
	// key there.
	if norm.Kind == DRAMLess {
		if p, err := norm.schedulerPolicy(); err == nil {
			norm.Policy = p.Name()
		}
	} else {
		norm.Policy = ""
	}
	norm.Scheduler = 0
	return Prefix{
		Cfg:    norm,
		In:     k.InputBytes(p),
		Out:    k.OutputBytes(p),
		Base:   p.BaseAddr,
		Agents: p.Agents,
	}
}

// Checkpoint is a captured populate/load prefix: a fully built system
// frozen at the end of its load phase, plus everything a forked run
// needs to continue as if it had simulated the prefix itself — the phase
// timestamps, the post-populate energy baseline, and the histogram and
// series samples the prefix emitted.
//
// After capture the template build is only ever read (CopyFrom sources,
// WriteJSON-style exports never touch it), so any number of forks may
// proceed concurrently from one Checkpoint.
type Checkpoint struct {
	pr       Prefix
	tmpl     *build // frozen at loadEnd; never mutated again
	runStart sim.Time
	loadEnd  sim.Time
	snap     snapshot
	hists    *obs.HistogramSet
	series   *obs.SeriesSet
}

// CapturePrefix simulates the populate and load phases for pr once and
// freezes the result. The capture runs against a private Observer so the
// prefix's histogram and series samples can be replayed into each forked
// run's own Observer later.
func CapturePrefix(pr Prefix) (*Checkpoint, error) {
	cfg := pr.Cfg
	cfg.Obs = obs.New()
	b, err := newBuild(cfg)
	if err != nil {
		return nil, err
	}
	setupEnd, err := b.populate(pr.In+pr.Out, pr.Base)
	if err != nil {
		return nil, err
	}
	runStart := setupEnd + sim.Microsecond
	snap := b.snapshot()
	loadEnd, err := b.loadPhase(runStart, pr.In, pr.Out, pr.Base, pr.Agents)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		pr:       pr,
		tmpl:     b,
		runStart: runStart,
		loadEnd:  loadEnd,
		snap:     snap,
		hists:    cfg.Obs.Histograms(),
		series:   cfg.Obs.Series(),
	}, nil
}

// Prefix returns the key cp was captured for.
func (cp *Checkpoint) Prefix() Prefix { return cp.pr }

// Release returns the checkpoint's frozen template storage (row segments,
// flash page frames, SSD buffer entries, sparse pages) to the package
// pools. The checkpoint is unusable afterwards: call only once no further
// forks will be taken from it. Safe on nil and idempotent.
func (cp *Checkpoint) Release() {
	if cp == nil || cp.tmpl == nil {
		return
	}
	cp.tmpl.release()
	cp.tmpl = nil
}

// RunForked executes kernel k under cfg, forking the populate/load
// prefix from cp instead of simulating it. The result is byte- and
// picosecond-identical to Run(cfg, k) — phase walls, energy, counters,
// histograms and series all match — provided PrefixOf(cfg, k) equals
// cp.Prefix(). Runs that trace spans fall back to a cold Run (the prefix
// spans cannot be replayed into a foreign tracer).
func RunForked(cfg Config, k workload.Kernel, cp *Checkpoint) (*Result, error) {
	if cp == nil || cp.tmpl == nil || cfg.Obs.Tracer().Enabled() {
		return Run(cfg, k)
	}
	b, err := newBuild(cfg)
	if err != nil {
		return nil, err
	}
	p := workload.Params{Scale: cfg.Scale, Agents: cfg.Accel.NumPEs - 1}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b.copyFrom(cp.tmpl)
	// Replay the prefix's observability samples before the kernel phase
	// records anything new: the capture set's registration order is the
	// cold run's, so names land in the same sequence either way.
	cfg.Obs.Histograms().Merge(cp.hists)
	cfg.Obs.Series().Merge(cp.series)
	return b.finish(k, p, cp.runStart, cp.loadEnd, cp.snap, CounterPrefixForks)
}

// copyFrom clones the template's mutable component state into b. Both
// builds come from newBuild with Prefix-equal configs, so the component
// sets match exactly. The accelerator is untouched during the prefix
// (fresh equals frozen-at-loadEnd) and the P2P fabric is stateless.
func (b *build) copyFrom(t *build) {
	b.host.CopyFrom(t.host)
	b.accLink.CopyFrom(t.accLink)
	b.ssdLink.CopyFrom(t.ssdLink)
	if b.extSSD != nil {
		b.extSSD.CopyFrom(t.extSSD)
	}
	if b.intSSD != nil {
		b.intSSD.CopyFrom(t.intSSD)
	}
	if b.sub != nil {
		b.sub.CopyFrom(t.sub)
	}
	if b.fwWrap != nil {
		b.fwWrap.CopyFrom(t.fwWrap)
	}
	if b.nor != nil {
		b.nor.CopyFrom(t.nor)
	}
	if b.dram != nil {
		b.dram.CopyFrom(t.dram)
	}
}
