package system

import (
	"dramless/internal/accel"
	"dramless/internal/energy"
	"dramless/internal/flash"
	"dramless/internal/lpddr"
	"dramless/internal/memctrl"
	"dramless/internal/pram"
	"dramless/internal/sim"
	"dramless/internal/ssd"
)

// snapshot freezes the cumulative counters of every component so the
// measured run can be separated from the untimed setup phase.
type snapshot struct {
	extArr, intArr     flash.Stats
	extFW, intFW       sim.Duration
	extDRAMBytes       int64
	intDRAMBytes       int64
	subStats           pram.Stats
	wrapFW             sim.Duration
	hostBusy           sim.Duration
	hostCopied         int64
	accLinkB, ssdLinkB int64
	norRdB, norWrB     int64
	dramIn, dramOut    int64

	// Blame-weight baselines: the always-on exclusive service-time
	// accounts each component accumulates in simulated picoseconds
	// (blame.go, DESIGN.md §15). Phase deltas between successive
	// snapshots are the apportionment weights.
	extStats, intStats       ssd.Stats
	chPS                     []memctrl.Stats
	wearMovePS               int64
	accLinkBusy, ssdLinkBusy sim.Duration
	queueWait                sim.Duration
}

func (b *build) snapshot() snapshot {
	var s snapshot
	if b.extSSD != nil {
		s.extArr = b.extSSD.ArrayStats()
		s.extFW = b.extSSD.FirmwareBusy()
		s.extDRAMBytes = b.extSSD.DRAMBytes()
		s.extStats = b.extSSD.Stats()
	}
	if b.intSSD != nil {
		s.intArr = b.intSSD.ArrayStats()
		s.intFW = b.intSSD.FirmwareBusy()
		s.intDRAMBytes = b.intSSD.DRAMBytes()
		s.intStats = b.intSSD.Stats()
	}
	if b.sub != nil {
		s.subStats = b.sub.ModuleStats()
		s.chPS = b.sub.ChannelStats()
		s.wearMovePS = b.sub.WearStats().GapMovePS
	}
	s.accLinkBusy = b.accLink.BusyTime()
	s.ssdLinkBusy = b.ssdLink.BusyTime()
	s.queueWait = b.acc.QueueWait()
	if b.fwWrap != nil {
		s.wrapFW = b.fwWrap.Firmware().BusyTime()
	}
	s.hostBusy = b.host.CPUBusy()
	_, _, s.hostCopied = b.host.Stats()
	_, s.accLinkB = statsOf(b.accLink.Stats())
	_, s.ssdLinkB = statsOf(b.ssdLink.Stats())
	if b.nor != nil {
		_, _, s.norRdB, s.norWrB = b.nor.Traffic()
	}
	if b.dram != nil {
		_, _, s.dramIn, s.dramOut = b.dram.Traffic()
	}
	return s
}

func statsOf(dmas, bytes int64) (int64, int64) { return dmas, bytes }

// flashEnergy prices an array-stat delta with the medium-appropriate
// per-op energies: flash ops for NAND, PRAM unit ops for chunked PRAM
// media.
func flashEnergy(par energy.Params, prof flash.Profile, d flash.Stats) float64 {
	if prof.ChunkBytes > 0 {
		chunks := float64((prof.PageBytes + prof.ChunkBytes - 1) / prof.ChunkBytes)
		return float64(d.PageReads)*chunks*par.PRAMActivateJ +
			float64(d.PagePrograms)*chunks*par.PRAMOverwriteJ +
			float64(d.BlockErases)*par.PRAMEraseJ
	}
	return float64(d.PageReads)*par.FlashReadPageJ +
		float64(d.PagePrograms)*par.FlashProgramPageJ +
		float64(d.BlockErases)*par.FlashEraseBlockJ
}

func flashDelta(now, was flash.Stats) flash.Stats {
	return flash.Stats{
		PageReads:    now.PageReads - was.PageReads,
		PagePrograms: now.PagePrograms - was.PagePrograms,
		BlockErases:  now.BlockErases - was.BlockErases,
		BytesMoved:   now.BytesMoved - was.BytesMoved,
	}
}

// pramEnergy prices a module-stat delta.
func pramEnergy(par energy.Params, d pram.Stats) float64 {
	return float64(d.Activates)*par.PRAMActivateJ +
		float64(d.ReadBursts+d.WriteBursts)*par.PRAMBurstJ +
		float64(d.ProgramsBy[lpddr.CellFresh]+d.ProgramsBy[lpddr.CellErased])*par.PRAMProgramJ +
		float64(d.ProgramsBy[lpddr.CellProgrammed])*par.PRAMOverwriteJ +
		float64(d.Erases)*par.PRAMEraseJ
}

func pramDelta(now, was pram.Stats) pram.Stats {
	d := pram.Stats{
		Preactives:  now.Preactives - was.Preactives,
		Activates:   now.Activates - was.Activates,
		WindowAct:   now.WindowAct - was.WindowAct,
		ReadBursts:  now.ReadBursts - was.ReadBursts,
		WriteBursts: now.WriteBursts - was.WriteBursts,
		Programs:    now.Programs - was.Programs,
		Erases:      now.Erases - was.Erases,
	}
	for i := range d.ProgramsBy {
		d.ProgramsBy[i] = now.ProgramsBy[i] - was.ProgramsBy[i]
	}
	return d
}

// accountEnergy builds the Figure 17 energy decomposition (and, when
// sampling is enabled, the Figure 20/21 power series) for one run.
func (b *build) accountEnergy(snap snapshot, rep *accel.Report, runStart, loadEnd, kernelEnd, storeEnd sim.Time) *energy.Account {
	par := b.cfg.Energy
	acct := energy.NewAccount(par)
	shift := runStart // series buckets are relative to the run start
	if b.cfg.SampleInterval > 0 {
		acct.EnableSeries(b.cfg.SampleInterval)
	}
	span := func(comp string, joules float64, t0, t1 sim.Time) {
		if joules == 0 {
			return
		}
		if t1 <= t0 {
			t1 = t0 + 1
		}
		acct.AddSpan(comp, joules, t0-shift, t1-shift)
	}

	total := storeEnd - runStart

	// Host CPU and host DRAM copies.
	span(energy.CompHost, snapDurJ(b.host.CPUBusy()-snap.hostBusy, par.HostActiveWatts), runStart, storeEnd)
	_, _, copied := b.host.Stats()
	span(energy.CompHostDRAM, float64(copied-snap.hostCopied)*par.DRAMPerByteJ, runStart, loadEnd)

	// PCIe links.
	_, accB := statsOf(b.accLink.Stats())
	_, ssdB := statsOf(b.ssdLink.Stats())
	span(energy.CompPCIe,
		float64(accB-snap.accLinkB+ssdB-snap.ssdLinkB)*par.PCIePerByteJ, runStart, storeEnd)

	// External SSD (media + firmware + its internal DRAM traffic).
	if b.extSSD != nil {
		d := flashDelta(b.extSSD.ArrayStats(), snap.extArr)
		j := flashEnergy(par, b.extSSD.Config().Media, d)
		j += (b.extSSD.FirmwareBusy() - snap.extFW).Seconds() * par.FirmwareWatts
		j += float64(b.extSSD.DRAMBytes()-snap.extDRAMBytes) * par.DRAMPerByteJ
		j += total.Seconds() * par.DRAMBackgroundWGB * float64(b.extSSD.Config().BufferBytes) / float64(1<<30)
		span(energy.CompSSD, j, runStart, storeEnd)
	}

	// Integrated storage backend.
	if b.intSSD != nil {
		d := flashDelta(b.intSSD.ArrayStats(), snap.intArr)
		j := flashEnergy(par, b.intSSD.Config().Media, d)
		j += (b.intSSD.FirmwareBusy() - snap.intFW).Seconds() * par.FirmwareWatts
		span(energy.CompFlash, j, loadEnd, kernelEnd)
		dj := float64(b.intSSD.DRAMBytes()-snap.intDRAMBytes) * par.DRAMPerByteJ
		dj += total.Seconds() * par.DRAMBackgroundWGB * float64(b.intSSD.Config().BufferBytes) / float64(1<<30)
		span(energy.CompDRAM, dj, runStart, storeEnd)
	}

	// PRAM subsystem.
	if b.sub != nil {
		d := pramDelta(b.sub.ModuleStats(), snap.subStats)
		span(energy.CompPRAM, pramEnergy(par, d), loadEnd, kernelEnd)
	}
	if b.fwWrap != nil {
		j := (b.fwWrap.Firmware().BusyTime() - snap.wrapFW).Seconds() * par.FirmwareWatts
		span(energy.CompFirmware, j, loadEnd, kernelEnd)
	}

	// NOR-interface PRAM: price per 32 B unit.
	if b.nor != nil {
		_, _, rdB, wrB := b.nor.Traffic()
		j := float64(rdB-snap.norRdB)/32*(par.PRAMActivateJ+par.PRAMBurstJ) +
			float64(wrB-snap.norWrB)/32*par.PRAMOverwriteJ
		span(energy.CompPRAM, j, loadEnd, kernelEnd)
	}

	// Accelerator-internal DRAM (hetero / ideal).
	if b.dram != nil {
		_, _, in, out := b.dram.Traffic()
		j := float64(in-snap.dramIn+out-snap.dramOut) * par.DRAMPerByteJ
		j += total.Seconds() * par.DRAMBackgroundWGB // 1 GB buffer
		span(energy.CompDRAM, j, runStart, storeEnd)
	}

	// PE cores: active spans at active power, the rest of the run idle.
	agents := len(rep.Agents)
	if b.cfg.SampleInterval > 0 && len(rep.Spans) > 0 {
		var active sim.Duration
		for _, s := range rep.Spans {
			if s.Active {
				acct.AddSpan(energy.CompCore,
					(s.T1-s.T0).Seconds()*(par.PEActiveWatts-par.PEIdleWatts),
					s.T0-shift, s.T1-shift)
				active += s.T1 - s.T0
			}
		}
		// Baseline idle power of every PE (the +1 is the server).
		acct.AddPower(energy.CompCore, par.PEIdleWatts*float64(agents+1), 0, total)
	} else {
		j := rep.Compute.Seconds() * (par.PEActiveWatts - par.PEIdleWatts)
		j += total.Seconds() * par.PEIdleWatts * float64(agents+1)
		span(energy.CompCore, j, loadEnd, kernelEnd)
	}
	// The server PE actively manages traffic and scheduling.
	span(energy.CompCore, total.Seconds()*(par.PEActiveWatts-par.PEIdleWatts)*0.5, runStart, storeEnd)

	// On-chip data movement.
	var below int64
	for _, ag := range rep.Agents {
		below += ag.L1.BytesBelow + ag.L2.BytesBelow
	}
	span(energy.CompCache, float64(below)*par.CachePerByteJ, loadEnd, kernelEnd)

	return acct
}

func snapDurJ(d sim.Duration, watts float64) float64 {
	if d < 0 {
		d = 0
	}
	return d.Seconds() * watts
}
