package system

import (
	"fmt"

	"dramless/internal/accel"
	"dramless/internal/obs"
	"dramless/internal/sim"
)

// Critical-path blame attribution (DESIGN.md §15). Every run carries an
// exact hierarchical account of its simulated time: each phase wall is
// apportioned — exactly, in integer picoseconds — over the exclusive
// service-time weights the components accumulated during that phase
// (always-on raw accumulators recorded at the same sites as the latency
// histograms). The invariant, checked by blame_test.go per system kind:
//
//	Sum("<phase>/") == phase wall, to the picosecond.
//
// Weights overlap in simulated time (a wear gap-move copy also runs
// through the channel read/write paths; host CPU overlaps PCIe wire
// occupancy), so shares are proportional attributions of the wall, not
// disjoint wall segments — exactness is the conservation law, overlap
// the acknowledged approximation. When a phase has no weights at all its
// wall lands on "<phase>/unattributed".

// blameWeight is one exclusive cause account with its raw weight in
// picoseconds of simulated component time.
type blameWeight struct {
	name string
	ps   int64
}

// memOutcomeNames orders the per-channel read-outcome accounts by the
// channel's outcome index (memctrl.ReadOut*).
var memOutcomeNames = [4]string{"full_read", "rdb_hit", "rab_hit", "paused_read"}

// deviceWeights collects the device-time deltas between two snapshots in
// fixed code order, skipping zero causes — the simulation is
// deterministic, so every worker count, lane setting and the
// checkpoint-forked path build the identical list.
func deviceWeights(s0, s1 *snapshot) []blameWeight {
	var ws []blameWeight
	add := func(name string, ps int64) {
		if ps > 0 {
			ws = append(ws, blameWeight{name, ps})
		}
	}
	add("host/cpu", int64(s1.hostBusy-s0.hostBusy))
	add("pcie.accel/dma", int64(s1.accLinkBusy-s0.accLinkBusy))
	add("pcie.ssd/dma", int64(s1.ssdLinkBusy-s0.ssdLinkBusy))
	add("ssd.ext/read", s1.extStats.ReadPS-s0.extStats.ReadPS)
	add("ssd.ext/write", s1.extStats.WritePS-s0.extStats.WritePS)
	add("ssd.ext/ftl_program", s1.extStats.ProgramPS-s0.extStats.ProgramPS)
	add("ssd.int/read", s1.intStats.ReadPS-s0.intStats.ReadPS)
	add("ssd.int/write", s1.intStats.WritePS-s0.intStats.WritePS)
	add("ssd.int/ftl_program", s1.intStats.ProgramPS-s0.intStats.ProgramPS)
	for i := range s1.chPS {
		now := &s1.chPS[i]
		was := &s0.chPS[i] // same build, same channel count
		p := fmt.Sprintf("memctrl.ch%d/", i)
		for out, name := range memOutcomeNames {
			add(p+name, now.ReadPS[out]-was.ReadPS[out])
		}
		add(p+"write_full", now.WriteFullPS-was.WriteFullPS)
		add(p+"write_rmw", now.WriteRMWPS-was.WriteRMWPS)
	}
	add("memctrl.wear/gap_move", s1.wearMovePS-s0.wearMovePS)
	return ws
}

// apportionInto splits wall exactly over ws (largest-remainder,
// deterministic ties) and records the shares under prefix; with no
// weights the whole wall lands on prefix+fallback. Zero shares are
// skipped so the registration order is reproducible across runs whose
// small causes round away identically.
func apportionInto(bl *obs.Blame, prefix string, wall int64, ws []blameWeight, fallback string) {
	if wall <= 0 {
		return
	}
	if len(ws) == 0 {
		bl.Add(prefix+fallback, wall)
		return
	}
	weights := make([]int64, len(ws))
	for i := range ws {
		weights[i] = ws[i].ps
	}
	shares := obs.Apportion(wall, weights)
	for i := range ws {
		if shares[i] != 0 {
			bl.Add(prefix+ws[i].name, shares[i])
		}
	}
}

// accountBlame assembles the run's blame account from the phase walls,
// the kernel report and the four phase-boundary snapshots.
func (b *build) accountBlame(rep *accel.Report, runSnap, loadSnap, kernSnap, storeSnap *snapshot, runStart, loadEnd, kernelEnd, storeEnd sim.Time) *obs.Blame {
	bl := obs.NewBlame()
	apportionInto(bl, "load/", int64(loadEnd-runStart), deviceWeights(runSnap, loadSnap), "unattributed")
	b.blameKernel(bl, int64(kernelEnd-loadEnd), rep, loadSnap, kernSnap)
	apportionInto(bl, "store/", int64(storeEnd-kernelEnd), deviceWeights(kernSnap, storeSnap), "unattributed")
	// Cache miss time is inclusive of the lower levels it waited on, so
	// it cannot join the exclusive scaled tree without double counting;
	// it is reported raw instead (unscaled component picoseconds).
	var l1m, l2m int64
	for i := range rep.Agents {
		l1m += rep.Agents[i].L1.MissPS
		l2m += rep.Agents[i].L2.MissPS
	}
	if l1m > 0 {
		bl.Add("raw/cache.l1/miss", l1m)
	}
	if l2m > 0 {
		bl.Add("raw/cache.l2/miss", l2m)
	}
	return bl
}

// blameKernel splits the kernel wall two levels deep: first over the
// agents' aggregate compute vs memory-stall time (plus job-queue wait
// where the RunJobs scheduler contributed any), then the stall share
// over the memory-side causes — cache hit service time per level plus
// the backend device deltas over the kernel phase. A kernel whose stall
// has no recorded memory cause keeps it on kernel/pe/stall.
func (b *build) blameKernel(bl *obs.Blame, wall int64, rep *accel.Report, s0, s1 *snapshot) {
	if wall <= 0 {
		return
	}
	comp, stall := int64(rep.Compute), int64(rep.Stall)
	qw := int64(s1.queueWait - s0.queueWait)
	if qw < 0 {
		qw = 0
	}
	if comp+stall+qw <= 0 {
		bl.Add("kernel/unattributed", wall)
		return
	}
	shares := obs.Apportion(wall, []int64{comp, stall, qw})
	if shares[0] != 0 {
		bl.Add("kernel/pe/compute", shares[0])
	}
	if shares[1] != 0 {
		var ws []blameWeight
		var l1, l2 int64
		for i := range rep.Agents {
			l1 += rep.Agents[i].L1.HitPS
			l2 += rep.Agents[i].L2.HitPS
		}
		if l1 > 0 {
			ws = append(ws, blameWeight{"cache.l1/hit", l1})
		}
		if l2 > 0 {
			ws = append(ws, blameWeight{"cache.l2/hit", l2})
		}
		ws = append(ws, deviceWeights(s0, s1)...)
		apportionInto(bl, "kernel/", shares[1], ws, "pe/stall")
	}
	if shares[2] != 0 {
		bl.Add("kernel/accel/job_queue_wait", shares[2])
	}
}
