package system

import (
	"bytes"
	"reflect"
	"testing"

	"dramless/internal/obs"
	"dramless/internal/sim"
	"dramless/internal/workload"
)

// TestBlameSumsEqualPhaseWalls is the exactness oracle (DESIGN.md §15):
// for every Table I organization, each phase's blame accounts sum to
// that phase's wall to the picosecond, and the whole account to the
// total wall — integer conservation, not float approximation.
func TestBlameSumsEqualPhaseWalls(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := Run(testConfig(kind), workload.MustByName("gemver"))
			if err != nil {
				t.Fatal(err)
			}
			if res.Blame == nil || res.Blame.Len() == 0 {
				t.Fatal("Result.Blame must always be populated")
			}
			checks := []struct {
				prefix string
				wall   sim.Duration
			}{
				{"load/", res.Load},
				{"kernel/", res.Kernel},
				{"store/", res.Store},
			}
			for _, c := range checks {
				if got := res.Blame.Sum(c.prefix); got != int64(c.wall) {
					t.Errorf("%s blame sums to %d ps, wall is %d ps (off by %d)",
						c.prefix, got, int64(c.wall), got-int64(c.wall))
				}
			}
			scaled := res.Blame.Sum("load/") + res.Blame.Sum("kernel/") + res.Blame.Sum("store/")
			if scaled != int64(res.Total) {
				t.Errorf("scaled accounts sum to %d ps, total wall is %d ps", scaled, int64(res.Total))
			}
			for _, e := range res.Blame.Entries() {
				if e.PS < 0 {
					t.Errorf("account %s is negative: %d", e.Name, e.PS)
				}
			}
		})
	}
}

// TestBlameByteDeterministic pins the export contract: serial, laned
// and checkpoint-forked executions of the same cell produce
// byte-identical blame JSON.
func TestBlameByteDeterministic(t *testing.T) {
	for _, kind := range []Kind{DRAMLess, IntegratedMLC, Hetero} {
		t.Run(kind.String(), func(t *testing.T) {
			k := workload.MustByName("gemver")
			export := func(res *Result) []byte {
				var buf bytes.Buffer
				if err := res.Blame.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}

			cfg := testConfig(kind)
			cfg.Scale = 128 << 10
			serial, err := Run(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			ref := export(serial)

			lcfg := cfg
			lcfg.Accel.Lanes = 4
			laned, err := Run(lcfg, k)
			if err != nil {
				t.Fatal(err)
			}
			if got := export(laned); !bytes.Equal(got, ref) {
				t.Errorf("lanes=4 blame differs from serial:\n%s", laned.Blame.Diff(serial.Blame))
			}

			cp, err := CapturePrefix(PrefixOf(cfg, k))
			if err != nil {
				t.Fatal(err)
			}
			defer cp.Release()
			forked, err := RunForked(cfg, k, cp)
			if err != nil {
				t.Fatal(err)
			}
			if got := export(forked); !bytes.Equal(got, ref) {
				t.Errorf("forked blame differs from cold:\n%s", forked.Blame.Diff(serial.Blame))
			}
		})
	}
}

// TestBlameRecordedOnObserver pins the Observer plumbing: runs merge
// their blame into an attached observer like histograms, and repeated
// runs accumulate.
func TestBlameRecordedOnObserver(t *testing.T) {
	cfg := testConfig(DRAMLess)
	cfg.Obs = obs.New()
	k := workload.MustByName("gemver")
	one, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Obs.Blame().Equal(one.Blame) {
		t.Fatalf("observer blame differs from result blame:\n%s", cfg.Obs.Blame().Diff(one.Blame))
	}
	if _, err := Run(cfg, k); err != nil {
		t.Fatal(err)
	}
	if got, want := cfg.Obs.Blame().Sum("kernel/"), 2*one.Blame.Sum("kernel/"); got != want {
		t.Fatalf("second run must accumulate: observer kernel sum %d, want %d", got, want)
	}
	// Runs without an observer still carry their own account.
	bare, err := Run(testConfig(DRAMLess), k)
	if err != nil {
		t.Fatal(err)
	}
	if !bare.Blame.Equal(one.Blame) {
		t.Fatalf("observer attachment must not perturb blame:\n%s", bare.Blame.Diff(one.Blame))
	}
}

// TestTracedRunMatchesUntraced pins the traced-run fallback contract
// (DESIGN.md §9): attaching a tracer disables checkpoint-fork reuse and
// lane parallelism but must not perturb the simulation — walls, energy
// and blame stay byte-equal to the untraced run.
func TestTracedRunMatchesUntraced(t *testing.T) {
	for _, kind := range []Kind{DRAMLess, IntegratedMLC} {
		t.Run(kind.String(), func(t *testing.T) {
			k := workload.MustByName("gemver")
			cfg := testConfig(kind)
			plain, err := Run(cfg, k)
			if err != nil {
				t.Fatal(err)
			}

			tcfg := testConfig(kind)
			tcfg.Obs = obs.New(obs.WithTracing())
			traced, err := Run(tcfg, k)
			if err != nil {
				t.Fatal(err)
			}

			if traced.Load != plain.Load || traced.Kernel != plain.Kernel ||
				traced.Store != plain.Store || traced.Total != plain.Total {
				t.Errorf("phase walls differ:\n  traced load=%v kernel=%v store=%v total=%v\n  plain  load=%v kernel=%v store=%v total=%v",
					traced.Load, traced.Kernel, traced.Store, traced.Total,
					plain.Load, plain.Kernel, plain.Store, plain.Total)
			}
			var tb, pb bytes.Buffer
			if err := traced.Blame.WriteJSON(&tb); err != nil {
				t.Fatal(err)
			}
			if err := plain.Blame.WriteJSON(&pb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tb.Bytes(), pb.Bytes()) {
				t.Errorf("blame differs under tracing:\n%s", traced.Blame.Diff(plain.Blame))
			}
			if !reflect.DeepEqual(traced.Energy, plain.Energy) {
				t.Errorf("energy account differs under tracing:\n  traced: %+v\n  plain:  %+v",
					traced.Energy, plain.Energy)
			}

			// The traced run recorded spans and causal flow edges, and the
			// critical path over the kernel phase tiles its wall exactly.
			tr := tcfg.Obs.Tracer()
			if tr.Len() == 0 {
				t.Fatal("traced run recorded no spans")
			}
			if len(tr.Flows()) == 0 {
				t.Fatal("traced run recorded no flow edges")
			}
			var kernelStart, kernelEnd sim.Time
			for _, e := range tr.Events() {
				if e.Proc == "system" && e.Name == "kernel" {
					kernelStart, kernelEnd = e.Start, e.End
				}
			}
			if kernelEnd <= kernelStart {
				t.Fatal("no system kernel span recorded")
			}
			segs := tr.CriticalPath(kernelStart, kernelEnd)
			var total sim.Duration
			for _, s := range segs {
				total += s.Dur()
			}
			if total != kernelEnd-kernelStart {
				t.Errorf("critical path sums to %v, kernel wall is %v", total, kernelEnd-kernelStart)
			}
		})
	}
}

// TestForkedBlameMatchesCold widens the fork oracle to blame accounts
// for the full kind matrix: the forked run's account must equal the
// cold run's exactly (Equal covers names, order and totals).
func TestForkedBlameMatchesCold(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			k := workload.MustByName("gemver")
			cfg := testConfig(kind)
			cfg.Scale = 128 << 10
			cold, err := Run(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := CapturePrefix(PrefixOf(cfg, k))
			if err != nil {
				t.Fatal(err)
			}
			defer cp.Release()
			forked, err := RunForked(cfg, k, cp)
			if err != nil {
				t.Fatal(err)
			}
			if !forked.Blame.Equal(cold.Blame) {
				t.Errorf("forked blame differs from cold:\n%s", forked.Blame.Diff(cold.Blame))
			}
		})
	}
}
