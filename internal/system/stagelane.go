package system

import "dramless/internal/sim"

// Storage-phase lane models: the load/store phases dispatch their staged
// device traffic through sim.RunLanes (DESIGN.md §13) instead of a
// sequential fold. Each phaseLane wraps one stream of phase operations
// that touches a disjoint device set — e.g. the host stack (submission,
// image DMA, file I/O) versus the external SSD's staged reads — so lanes
// may run tails concurrently while the coordinator dispatches heads in
// global (time, lane) order. Streams that share device state (the SSD's
// FTL/buffer, the host's CPU/DMA pipes, a PCIe link) stay within one
// lane, in their original serial call order, which is what makes every
// tail provably lane-private and the laned execution byte-identical to
// the serial phase at any worker count.

// phaseOp is one timed phase operation. Ops capture their inputs and
// publish results through closed-over variables; the returned time is
// the op's completion, feeding the lane's frontier.
type phaseOp func() (sim.Time, error)

// phaseLane is one device-disjoint operation stream of a storage phase.
type phaseLane struct {
	now sim.Time
	ops []phaseOp
	pos int
}

var _ sim.LaneModel = (*phaseLane)(nil)

func newPhaseLane(at sim.Time, ops ...phaseOp) *phaseLane {
	return &phaseLane{now: at, ops: ops}
}

// step runs the next op, advancing the lane clock monotonically (an op
// may complete before a predecessor that targeted a later device time;
// the published frontier must never move backwards).
func (l *phaseLane) step() (sim.Time, error) {
	t, err := l.ops[l.pos]()
	l.pos++
	if t > l.now {
		l.now = t
	}
	return l.now, err
}

func (l *phaseLane) Now() sim.Time { return l.now }

func (l *phaseLane) StepHead() (bool, error) {
	if l.pos >= len(l.ops) {
		return false, nil
	}
	_, err := l.step()
	return true, err
}

// TailRun absorbs every remaining op inline: by construction the whole
// lane touches only its own device set, so nothing after the first head
// needs coordinated dispatch.
func (l *phaseLane) TailRun(publish func(sim.Time)) (int64, error) {
	var extra int64
	for l.pos < len(l.ops) {
		t, err := l.step()
		if publish != nil {
			publish(t)
		}
		if err != nil {
			return extra, err
		}
		extra++
	}
	return extra, nil
}

// phaseHorizon is the lane executor's lookahead for storage phases: the
// microsecond scale of one host submission round-trip, the fastest any
// cross-stream interaction (host completion vs device staging) resolves.
// Like the kernel phase's horizon it feeds only the deterministic
// window/stall statistics, never dispatch safety.
const phaseHorizon = sim.Microsecond

// runPhase executes the phase's lanes: serially in lane-major order (the
// legacy sequential code path, op for op) when the lane knob is off or a
// tracer is attached (the tracer is a coordinator-owned appender), and
// through sim.RunLanes otherwise, recording the stats into *stat. Both
// modes produce byte-identical device state and timing.
func (b *build) runPhase(stat *sim.LaneStats, on *bool, lanes ...*phaseLane) error {
	workers := b.cfg.Accel.Lanes
	if workers <= 0 || b.cfg.Obs.Tracer().Enabled() {
		for _, l := range lanes {
			for l.pos < len(l.ops) {
				if _, err := l.step(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	models := make([]sim.LaneModel, len(lanes))
	for i, l := range lanes {
		models[i] = l
	}
	st, err := sim.RunLanes(models, workers, phaseHorizon)
	if err != nil {
		return err
	}
	*stat = st
	*on = true
	return nil
}

func sumI64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
