package system

import (
	"fmt"
	"sync"

	"dramless/internal/accel"
	"dramless/internal/energy"
	"dramless/internal/flash"
	"dramless/internal/hostsw"
	"dramless/internal/kernel"
	"dramless/internal/mem"
	"dramless/internal/memctrl"
	"dramless/internal/obs"
	"dramless/internal/pcie"
	"dramless/internal/sim"
	"dramless/internal/ssd"
	"dramless/internal/stats"
	"dramless/internal/workload"
)

// Time-breakdown components (the Figure 16 stack).
const (
	TimeLoad    = "load"     // staging input into the accelerator
	TimeCompute = "compute"  // PE execution (arithmetic)
	TimeStall   = "mem-wait" // PE cycles waiting on memory/storage
	TimeStore   = "store"    // persisting outputs
)

// Result is one system x workload run.
type Result struct {
	Kind     Kind
	Workload string

	// Phase walls.
	Load   sim.Duration
	Kernel sim.Duration
	Store  sim.Duration
	Total  sim.Duration

	// Time is the Figure 16 decomposition: load / compute / mem-wait /
	// store. Compute and mem-wait split the kernel phase by the agents'
	// aggregate activity.
	Time *stats.Breakdown

	// Energy is the Figure 17 decomposition.
	Energy *energy.Account

	// Blame is the exact simulated-time account (DESIGN.md §15):
	// phase/component/cause shares that sum to each phase wall to the
	// picosecond. Always populated, like Counters.
	Blame *obs.Blame

	// Report is the kernel-phase execution report (IPC series, spans).
	Report *accel.Report

	// Counters is the run's observability registry: every subsystem's
	// activity snapshot, collected at end of run in fixed order. Always
	// populated (collection has no hot-path cost), so identical runs
	// yield identical registries whether or not an Observer is attached.
	Counters obs.Counters

	// Footprint is the processed data volume.
	Footprint int64
}

// BandwidthMBps returns data-processing throughput (footprint over total
// time), the Figure 13/15 metric.
func (r *Result) BandwidthMBps() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.Footprint) / r.Total.Seconds() / 1e6
}

// imageBytes is the kernel image size shipped during offload.
const imageBytes = 64 << 10

// build holds the instantiated components of one system.
type build struct {
	cfg Config

	backend mem.Device // what the accelerator computes against
	acc     *accel.Accelerator

	host    *hostsw.Host
	accLink *pcie.Link
	ssdLink *pcie.Link
	p2p     *pcie.P2P

	extSSD *ssd.SSD // heterogeneous external storage
	intSSD *ssd.SSD // integrated / page-buffer storage backend
	sub    *memctrl.Subsystem
	fwWrap *ssd.FirmwareManaged
	nor    *flash.NOR
	dram   *mem.Flat // accelerator-internal DRAM (hetero / ideal)

	// scratch is the read-destination buffer the load/store phases reuse
	// for bulk traffic whose bytes are discarded; zeros is the write
	// source for synthetic staging writes and is never modified, so the
	// bytes landing in the devices stay all-zero as before.
	scratch []byte
	zeros   []byte

	// Storage-phase lane statistics (the On flags are set when the
	// phase ran on the lane executor), exported as sim.lane.load.* and
	// sim.lane.store.* counters. Forked runs never simulate the load
	// phase, so its counters appear only on cold laned runs — the
	// sim.lane.* filtering precedent covers the difference.
	laneLoad    sim.LaneStats
	laneStore   sim.LaneStats
	laneLoadOn  bool
	laneStoreOn bool
}

// bufPool recycles staging buffers across runs. Zeros buffers are never
// written through, so pooled entries keep the all-zero invariant; scratch
// buffers hold discarded read bytes and may return dirty.
var bufPool = struct {
	mu      sync.Mutex
	scratch [][]byte
	zeros   [][]byte
}{}

// pooledBuf pops a pooled buffer of at least n bytes, or nil.
func pooledBuf(list *[][]byte, n int) []byte {
	bufPool.mu.Lock()
	defer bufPool.mu.Unlock()
	for i, buf := range *list {
		if len(buf) >= n {
			last := len(*list) - 1
			(*list)[i] = (*list)[last]
			(*list)[last] = nil
			*list = (*list)[:last]
			return buf
		}
	}
	return nil
}

// stagingBuf returns a reusable n-byte read destination.
func (b *build) stagingBuf(n int) []byte {
	if len(b.scratch) < n {
		if buf := pooledBuf(&bufPool.scratch, n); buf != nil {
			b.scratch = buf
		} else {
			b.scratch = make([]byte, n)
		}
	}
	return b.scratch[:n]
}

// zeroBuf returns n zero bytes for synthetic staging writes.
func (b *build) zeroBuf(n int) []byte {
	if len(b.zeros) < n {
		if buf := pooledBuf(&bufPool.zeros, n); buf != nil {
			b.zeros = buf
		} else {
			b.zeros = make([]byte, n)
		}
	}
	return b.zeros[:n]
}

// stageRead streams total bytes out of dev at addr in step-sized reads
// through the batched read path (buf must hold at least step bytes,
// or total when smaller); the bytes are discarded. Timing matches the
// scalar read loop it replaces access for access.
func stageRead(dev mem.Device, at sim.Time, addr uint64, total, step int64, buf []byte) (sim.Time, error) {
	bt := mem.BatchOf(dev)
	t := at
	if full := total / step; full > 0 {
		run := mem.Run{Addr: addr, Stride: step, Size: int(step), Count: int(full)}
		res, err := bt.ReadRun(t, run, buf)
		if err != nil {
			return 0, err
		}
		t = res.Now
		if res.Done < run.Count { // device yielded early: finish scalar
			rest := run
			rest.Addr = uint64(int64(run.Addr) + int64(res.Done)*run.Stride)
			rest.Count = run.Count - res.Done
			if res, err = mem.ReadRunLoop(dev, t, rest, buf); err != nil {
				return 0, err
			}
			t = res.Now
		}
	}
	if tail := total % step; tail > 0 {
		d, err := mem.ReadIntoOf(dev, t, uint64(int64(addr)+total-tail), buf[:tail])
		if err != nil {
			return 0, err
		}
		if d < t {
			d = t
		}
		t = d
	}
	return t, nil
}

// stageWrite is stageRead for stores: every access stores the leading
// bytes of src.
func stageWrite(dev mem.Device, at sim.Time, addr uint64, total, step int64, src []byte) (sim.Time, error) {
	bt := mem.BatchOf(dev)
	t := at
	if full := total / step; full > 0 {
		run := mem.Run{Addr: addr, Stride: step, Size: int(step), Count: int(full)}
		res, err := bt.WriteRun(t, run, src)
		if err != nil {
			return 0, err
		}
		t = res.Now
		if res.Done < run.Count {
			rest := run
			rest.Addr = uint64(int64(run.Addr) + int64(res.Done)*run.Stride)
			rest.Count = run.Count - res.Done
			if res, err = mem.WriteRunLoop(dev, t, rest, src); err != nil {
				return 0, err
			}
			t = res.Now
		}
	}
	if tail := total % step; tail > 0 {
		d, err := dev.Write(t, uint64(int64(addr)+total-tail), src[:tail])
		if err != nil {
			return 0, err
		}
		if d < t {
			d = t
		}
		t = d
	}
	return t, nil
}

// newBuild constructs the system of cfg.Kind.
func newBuild(cfg Config) (*build, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &build{cfg: cfg}
	var err error
	if b.host, err = hostsw.New(cfg.Host); err != nil {
		return nil, err
	}
	accLinkCfg := cfg.Link
	accLinkCfg.Name = "pcie.accel"
	if b.accLink, err = pcie.NewLink(accLinkCfg); err != nil {
		return nil, err
	}
	ssdLinkCfg := cfg.Link
	ssdLinkCfg.Name = "pcie.ssd"
	if b.ssdLink, err = pcie.NewLink(ssdLinkCfg); err != nil {
		return nil, err
	}
	b.p2p = pcie.NewP2P(b.ssdLink, b.accLink)

	mkSub := func(p memctrl.Policy) (*memctrl.Subsystem, error) {
		mcCfg := memctrl.DefaultPolicyConfig(p)
		mcCfg.Geometry.RowsPerModule = cfg.PRAMRowsPerModule
		mcCfg.Wear = cfg.Wear
		mcCfg.Obs = cfg.Obs
		return memctrl.New(mcCfg)
	}
	mkSSD := func(media flash.Profile, integrated bool, fw ssd.FirmwareConfig) (*ssd.SSD, error) {
		sc := ssd.DefaultConfig(media, cfg.SSDCapacity)
		sc.Firmware = fw
		sc.Integrated = integrated
		// The paper's 1 GB device buffers hold a similar fraction of its
		// >10x-scaled volumes; scale them with the footprint so buffer
		// pressure (and therefore media latency) is preserved.
		sc.BufferBytes = cfg.bufferBytes()
		sc.Obs = cfg.Obs
		return ssd.New(sc)
	}

	switch cfg.Kind {
	case Hetero, Heterodirect:
		if b.extSSD, err = mkSSD(flash.MLC(), false, cfg.Firmware); err != nil {
			return nil, err
		}
		b.dram = mem.NewFlat("accel.dram", 1<<30, sim.Nanoseconds(100), 12.8e9)
		b.backend = b.dram
	case HeteroPRAM, HeterodirectPRAM:
		if b.extSSD, err = mkSSD(flash.PRAMMedia(), false, cfg.Firmware); err != nil {
			return nil, err
		}
		b.dram = mem.NewFlat("accel.dram", 1<<30, sim.Nanoseconds(100), 12.8e9)
		b.backend = b.dram
	case NORIntf:
		b.nor = flash.NewNOR(1 << 30)
		b.backend = b.nor
	case IntegratedSLC, IntegratedMLC, IntegratedTLC:
		media := flash.SLC()
		if cfg.Kind == IntegratedMLC {
			media = flash.MLC()
		} else if cfg.Kind == IntegratedTLC {
			media = flash.TLC()
		}
		if b.intSSD, err = mkSSD(media, true, cfg.Firmware); err != nil {
			return nil, err
		}
		b.backend = b.intSSD
	case PageBuffer:
		// The page interface is managed by lightweight embedded logic,
		// not a full storage firmware.
		fw := cfg.Firmware
		fw.RequestCycles = 250
		if b.intSSD, err = mkSSD(flash.PageBufferPRAM(), true, fw); err != nil {
			return nil, err
		}
		b.backend = b.intSSD
	case DRAMLess:
		pol, perr := cfg.schedulerPolicy()
		if perr != nil {
			return nil, perr
		}
		if b.sub, err = mkSub(pol); err != nil {
			return nil, err
		}
		b.backend = b.sub
	case DRAMLessFirmware:
		// Same PRAM subsystem, but every request is dispatched by
		// traditional SSD firmware and the hardware schedulers are gone.
		if b.sub, err = mkSub(memctrl.PolicyFor(memctrl.Noop)); err != nil {
			return nil, err
		}
		if b.fwWrap, err = ssd.NewFirmwareManaged(cfg.Firmware, b.sub); err != nil {
			return nil, err
		}
		b.backend = b.fwWrap
	case Ideal:
		b.dram = mem.NewFlat("accel.dram", 1<<30, sim.Nanoseconds(100), 12.8e9)
		b.backend = b.dram
	default:
		return nil, fmt.Errorf("system: unhandled kind %v", cfg.Kind)
	}

	acfg := cfg.Accel
	acfg.SampleInterval = cfg.SampleInterval
	acfg.Obs = cfg.Obs
	if b.acc, err = accel.New(acfg, b.backend); err != nil {
		return nil, err
	}
	return b, nil
}

// collectCounters snapshots every built component into one registry, in
// fixed code order so identical runs register identical entry sequences.
func (b *build) collectCounters(rep *accel.Report, c *obs.Counters) {
	rep.CountersInto(c)
	b.acc.CountersInto(c)
	if b.sub != nil {
		b.sub.CountersInto(c)
	}
	if b.extSSD != nil {
		b.extSSD.CountersInto(c, "ssd.ext.")
	}
	if b.intSSD != nil {
		b.intSSD.CountersInto(c, "ssd.int.")
	}
	if b.dram != nil {
		reads, writes, bytesIn, bytesOut := b.dram.Traffic()
		c.Add("dram.reads", reads)
		c.Add("dram.writes", writes)
		c.Add("dram.bytes_written", bytesIn)
		c.Add("dram.bytes_read", bytesOut)
	}
	b.accLink.CountersInto(c)
	b.ssdLink.CountersInto(c)
	if b.laneLoadOn {
		c.Add("sim.lane.load.events", b.laneLoad.Events)
		c.Add("sim.lane.load.folded_events", b.laneLoad.Folded)
		c.Add("sim.lane.load.windows", b.laneLoad.Windows)
		c.Add("sim.lane.load.parked_windows", sumI64(b.laneLoad.LaneParkedWindows))
	}
	if b.laneStoreOn {
		c.Add("sim.lane.store.events", b.laneStore.Events)
		c.Add("sim.lane.store.folded_events", b.laneStore.Folded)
		c.Add("sim.lane.store.windows", b.laneStore.Windows)
		c.Add("sim.lane.store.parked_windows", sumI64(b.laneStore.LaneParkedWindows))
	}
}

// populateBuf returns the shared initial-data pattern block. It is
// immutable after first use (devices copy write sources, never mutate
// them), so every run - including parallel experiment workers - stages
// from the same buffer instead of rebuilding 256 KiB per simulation.
func populateBuf() []byte {
	populateOnce.Do(func() {
		populatePattern = make([]byte, 256<<10)
		for i := range populatePattern {
			populatePattern[i] = byte(i*131 + 7)
		}
	})
	return populatePattern
}

var (
	populateOnce    sync.Once
	populatePattern []byte
)

// populate places input data in the persistent store before measurement
// (offline, untimed where the device allows it) and returns the earliest
// measurable start time. It takes the footprint as scalars rather than a
// kernel so a checkpoint prefix (which has no kernel, only a Prefix key)
// can run it too.
func (b *build) populate(total int64, base uint64) (sim.Time, error) {
	// The input region gets its initial data; the output region gets
	// stale bytes from an earlier job - a long-running accelerator never
	// writes onto pristine cells, which is exactly the overwrite penalty
	// selective erasing attacks.
	buf := populateBuf()
	writeAll := func(dev mem.Device) (sim.Time, error) {
		return stageWrite(dev, 0, base, total, int64(len(buf)), buf)
	}
	switch b.cfg.Kind {
	case Hetero, Heterodirect, HeteroPRAM, HeterodirectPRAM:
		t, err := writeAll(b.extSSD)
		if err != nil {
			return 0, err
		}
		d, err := b.extSSD.Flush(t)
		if err != nil {
			return 0, err
		}
		b.extSSD.DropCaches() // measured run starts with a cold device cache
		return d, nil
	case IntegratedSLC, IntegratedMLC, IntegratedTLC, PageBuffer:
		t, err := writeAll(b.intSSD)
		if err != nil {
			return 0, err
		}
		d, err := b.intSSD.Flush(t)
		if err != nil {
			return 0, err
		}
		b.intSSD.DropCaches()
		return d, nil
	case NORIntf:
		return writeAll(b.nor)
	case DRAMLess, DRAMLessFirmware:
		// Boot the subsystem, then factory-load the input.
		d, err := b.sub.Boot(0)
		if err != nil {
			return 0, err
		}
		for off := int64(0); off < total; off += int64(len(buf)) {
			n := int64(len(buf))
			if n > total-off {
				n = total - off
			}
			if err := b.sub.Populate(base+uint64(off), buf[:n]); err != nil {
				return 0, err
			}
		}
		return d, nil
	case Ideal:
		return writeAll(b.dram)
	}
	return 0, fmt.Errorf("system: unhandled kind %v", b.cfg.Kind)
}

// Run executes kernel k on the system described by cfg and returns the
// full result, simulating the populate/load prefix from scratch. See
// RunForked (fork.go) for the checkpointed path that shares one captured
// prefix across runs.
func Run(cfg Config, k workload.Kernel) (*Result, error) {
	b, err := newBuild(cfg)
	if err != nil {
		return nil, err
	}
	p := workload.Params{Scale: cfg.Scale, Agents: cfg.Accel.NumPEs - 1}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	in, out := k.InputBytes(p), k.OutputBytes(p)
	setupEnd, err := b.populate(in+out, p.BaseAddr)
	if err != nil {
		return nil, err
	}
	runStart := setupEnd + sim.Microsecond
	snap := b.snapshot()

	// ---- Load phase: deliver the kernel image, and for heterogeneous
	// systems stage the input into the accelerator DRAM. ----
	loadEnd, err := b.loadPhase(runStart, in, out, p.BaseAddr, p.Agents)
	if err != nil {
		return nil, err
	}
	return b.finish(k, p, runStart, loadEnd, snap, CounterPrefixColdRuns)
}

// finish runs the kernel and store phases on a build whose prefix
// (populate + load) is already complete, then assembles the result and
// collects observability. prefixCounter names how the prefix came to be
// (cold simulation vs checkpoint fork); it lands at the tail of the
// registry so cold and forked runs stay comparable after filtering it.
func (b *build) finish(k workload.Kernel, p workload.Params, runStart, loadEnd sim.Time, snap snapshot, prefixCounter string) (*Result, error) {
	cfg := b.cfg

	// Blame snapshots bracket each remaining phase. On a cold run the
	// build is sitting exactly at the end of its load phase here; on a
	// forked run copyFrom reproduced the template's loadEnd state — the
	// same accumulator values either way, so cold and forked runs build
	// byte-identical blame accounts.
	loadSnap := b.snapshot()

	// ---- Kernel phase. ----
	rep, err := b.acc.RunKernel(loadEnd, k, p)
	if err != nil {
		return nil, err
	}
	kernelEnd := rep.End
	kernSnap := b.snapshot()

	// ---- Store phase: persist outputs. ----
	storeEnd, err := b.storePhase(kernelEnd, k, p, k.OutputBytes(p))
	if err != nil {
		return nil, err
	}
	storeSnap := b.snapshot()

	res := &Result{
		Kind:      cfg.Kind,
		Workload:  k.Name,
		Load:      loadEnd - runStart,
		Kernel:    kernelEnd - loadEnd,
		Store:     storeEnd - kernelEnd,
		Total:     storeEnd - runStart,
		Report:    rep,
		Footprint: k.FootprintBytes(p),
		Time:      stats.NewBreakdown(),
	}
	res.Time.Add(TimeLoad, (loadEnd - runStart).Seconds())
	// Split the kernel phase into aggregate compute vs memory wait using
	// the agents' activity shares.
	kw := (kernelEnd - loadEnd).Seconds()
	act := rep.Compute.Seconds()
	stl := rep.Stall.Seconds()
	if act+stl > 0 {
		res.Time.Add(TimeCompute, kw*act/(act+stl))
		res.Time.Add(TimeStall, kw*stl/(act+stl))
	} else {
		res.Time.Add(TimeCompute, kw)
	}
	res.Time.Add(TimeStore, (storeEnd - kernelEnd).Seconds())

	res.Energy = b.accountEnergy(snap, rep, runStart, loadEnd, kernelEnd, storeEnd)
	res.Blame = b.accountBlame(rep, &snap, &loadSnap, &kernSnap, &storeSnap, runStart, loadEnd, kernelEnd, storeEnd)

	b.collectCounters(rep, &res.Counters)
	res.Counters.Add(prefixCounter, 1)
	if hs := cfg.Obs.Histograms(); hs != nil {
		hs.Get(obs.HistSystemLoad).Record(int64(loadEnd - runStart))
		hs.Get(obs.HistSystemKernel).Record(int64(kernelEnd - loadEnd))
		hs.Get(obs.HistSystemStore).Record(int64(storeEnd - kernelEnd))
	}
	if tr := cfg.Obs.Tracer(); tr.Enabled() {
		tr.Span("system", "run", TimeLoad, runStart, loadEnd)
		tr.Span("system", "run", "kernel", loadEnd, kernelEnd)
		tr.Span("system", "run", TimeStore, kernelEnd, storeEnd)
		// Phase handoffs as causal flow edges (chrome://tracing arrows).
		tr.Flow("phase", "system", "run", "system", "run", loadEnd)
		tr.Flow("phase", "system", "run", "system", "run", kernelEnd)
	}
	cfg.Obs.Record(&res.Counters)
	cfg.Obs.RecordBlame(res.Blame)
	b.release()
	return res, nil
}

// release returns pooled storage (PRAM row segments, SSD buffer entries,
// flash page frames, sparse memory pages, staging buffers) once the
// run's results are collected. Checkpoint template builds are released
// only through Checkpoint.Release, after the last fork: forks keep
// reading their state for the checkpoint's lifetime.
func (b *build) release() {
	bufPool.mu.Lock()
	if b.scratch != nil {
		bufPool.scratch = append(bufPool.scratch, b.scratch)
		b.scratch = nil
	}
	if b.zeros != nil {
		bufPool.zeros = append(bufPool.zeros, b.zeros)
		b.zeros = nil
	}
	bufPool.mu.Unlock()
	if b.sub != nil {
		b.sub.Release()
	}
	if b.extSSD != nil {
		b.extSSD.Release()
	}
	if b.intSSD != nil {
		b.intSSD.Release()
	}
	if b.nor != nil {
		b.nor.Release()
	}
	if b.dram != nil {
		b.dram.Release()
	}
}

// loadPhase stages inputs and delivers the kernel image. Like populate
// it consumes kernel-derived scalars (input/output bytes, base address,
// agent count) instead of the kernel itself, so a checkpoint prefix can
// replay it from a Prefix key alone.
//
// Storage-bound kinds dispatch through the phase lane models
// (stagelane.go): the host stack's chain (image submission and DMA,
// file I/O) and the external SSD's staged reads touch disjoint devices,
// so they run as two lanes under the frontier-windowed coordinator —
// byte-identical to the sequential fold at every worker count, serial
// included. The dependent suffix (deserialize, DMA, DRAM landing; or
// P2P transfer and completion) joins the lane end times with the same
// Max expressions as before and stays coordinator-serial.
func (b *build) loadPhase(at sim.Time, in, out int64, base uint64, agents int) (sim.Time, error) {
	cfg := b.cfg
	// Kernel image delivery is common to every organization: the host
	// packs and pushes ~64 KiB over PCIe. On laned kinds it is the first
	// op of the host-stack lane.
	imageDelivery := func() sim.Time {
		return b.accLink.DMA(b.host.Submit(at), imageBytes)
	}

	switch cfg.Kind {
	case Hetero, HeteroPRAM:
		// files -> host DRAM -> deserialize -> DMA to accelerator DRAM.
		step := int64(cfg.Host.IOBytes)
		buf := b.stagingBuf(int(step))
		var imgT, stackDone, devDone sim.Time
		hostLane := newPhaseLane(at,
			func() (sim.Time, error) { imgT = imageDelivery(); return imgT, nil },
			func() (sim.Time, error) {
				stackDone, _, _ = b.host.FileIO(at, in)
				return stackDone, nil
			},
		)
		devLane := newPhaseLane(at, func() (sim.Time, error) {
			var err error
			devDone, err = stageRead(b.extSSD, at, base, in, step, buf)
			return devDone, err
		})
		if err := b.runPhase(&b.laneLoad, &b.laneLoadOn, hostLane, devLane); err != nil {
			return 0, err
		}
		t := sim.Max(imgT, sim.Max(stackDone, devDone))
		t = b.host.Deserialize(t, in)
		t = b.accLink.DMA(t, in)
		// Land the data in the accelerator DRAM.
		d, err := b.dram.Write(t, base, b.zeroBuf(int(minI64(in, 1<<20))))
		if err != nil {
			return 0, err
		}
		// Charge the remaining bandwidth time for large inputs.
		if in > 1<<20 {
			d += b.dramWriteTime(in - 1<<20)
		}
		return d, nil
	case Heterodirect, HeterodirectPRAM:
		// Peer-to-peer DMA: the host only submits; data flows
		// SSD -> switch -> accelerator.
		step := int64(cfg.Host.IOBytes)
		buf := b.stagingBuf(int(step))
		var subT, devDone sim.Time
		hostLane := newPhaseLane(at, func() (sim.Time, error) {
			subT = b.host.Submit(imageDelivery())
			return subT, nil
		})
		devLane := newPhaseLane(at, func() (sim.Time, error) {
			var err error
			devDone, err = stageRead(b.extSSD, at, base, in, step, buf)
			return devDone, err
		})
		if err := b.runPhase(&b.laneLoad, &b.laneLoadOn, hostLane, devLane); err != nil {
			return 0, err
		}
		t := sim.Max(subT, devDone)
		t = b.p2p.Transfer(t, in)
		t = b.host.Completion(t)
		d, err := b.dram.Write(t, base, b.zeroBuf(int(minI64(in, 1<<20))))
		if err != nil {
			return 0, err
		}
		if in > 1<<20 {
			d += b.dramWriteTime(in - 1<<20)
		}
		return d, nil
	case DRAMLess, DRAMLessFirmware:
		// Figure 9b: doorbell, image into the PRAM image space, server
		// unpack, and - with selective erasing - pre-RESET the declared
		// output region while the kernel loads. One chain over the link
		// and the PRAM subsystem: a single lane, whose tail absorbs the
		// unpack and pre-RESET ops inline.
		var t sim.Time
		lane := newPhaseLane(at,
			func() (sim.Time, error) {
				t = b.accLink.Message(imageDelivery())
				return t, nil
			},
			func() (sim.Time, error) {
				img := &kernel.Image{
					SharedAddr: b.backend.Size() - 4*imageBytes,
					Shared:     make([]byte, 4<<10),
					Apps:       make([]kernel.App, 0, agents),
				}
				for i := 0; i < agents; i++ {
					img.Apps = append(img.Apps, kernel.App{
						BootAddr: b.backend.Size() - 3*imageBytes + uint64(i*4<<10),
						Code:     make([]byte, 2<<10),
					})
				}
				push := func(at sim.Time, dst uint64, data []byte) (sim.Time, error) {
					d := b.accLink.DMA(at, int64(len(data)))
					return b.backend.Write(d, dst, data)
				}
				_, t2, err := kernel.Offload(t, img, b.backend.Size()-2*imageBytes, push, b.backend)
				if err != nil {
					return 0, err
				}
				t = t2
				return t, nil
			},
			func() (sim.Time, error) {
				if b.sub != nil {
					outAddr := base + uint64(in)
					d, err := b.sub.PreErase(t, outAddr, int(out))
					if err != nil {
						return 0, err
					}
					t = d
				}
				t = sim.Max(t, mem.DrainOf(b.backend, t))
				return t, nil
			},
		)
		if err := b.runPhase(&b.laneLoad, &b.laneLoadOn, lane); err != nil {
			return 0, err
		}
		return t, nil
	default:
		// Integrated systems, PAGE-buffer, NOR-intf and Ideal compute in
		// place; only the image delivery is on the critical path — one
		// op, nothing for a lane model to widen.
		return imageDelivery(), nil
	}
}

// storePhase persists the kernel outputs.
// storePhase drains the kernel's output back to persistent media. The
// drain is one dependent chain — DRAM read-back, transfer, stage-write,
// flush — so laned kinds model it as a single phase lane whose tail
// absorbs everything after the first op inline (each absorbed op is a
// folded event under the coordinator, never a dispatch), while
// in-place kinds stay serial.
func (b *build) storePhase(at sim.Time, k workload.Kernel, p workload.Params, out int64) (sim.Time, error) {
	switch b.cfg.Kind {
	case Hetero, HeteroPRAM:
		// accel DRAM -> DMA -> host stack -> SSD.
		drainBuf := b.stagingBuf(int(minI64(out, 1<<20)))
		step := int64(b.cfg.Host.IOBytes)
		stepBuf := b.zeroBuf(int(step))
		var t sim.Time
		lane := newPhaseLane(at,
			func() (sim.Time, error) {
				d, err := b.dram.ReadInto(at, k.OutputAddr(p), drainBuf)
				if err != nil {
					return 0, err
				}
				if out > 1<<20 {
					d += b.dramWriteTime(out - 1<<20)
				}
				t = b.accLink.DMA(d, out)
				return t, nil
			},
			func() (sim.Time, error) {
				t, _, _ = b.host.FileIO(t, out)
				return t, nil
			},
			func() (sim.Time, error) {
				var err error
				t, err = stageWrite(b.extSSD, t, k.OutputAddr(p), out, step, stepBuf)
				return t, err
			},
			func() (sim.Time, error) {
				var err error
				t, err = b.extSSD.Flush(t)
				return t, err
			},
		)
		if err := b.runPhase(&b.laneStore, &b.laneStoreOn, lane); err != nil {
			return 0, err
		}
		return t, nil
	case Heterodirect, HeterodirectPRAM:
		drainBuf := b.stagingBuf(int(minI64(out, 1<<20)))
		step := int64(b.cfg.Host.IOBytes)
		stepBuf := b.zeroBuf(int(step))
		var t sim.Time
		lane := newPhaseLane(at,
			func() (sim.Time, error) {
				d, err := b.dram.ReadInto(at, k.OutputAddr(p), drainBuf)
				if err != nil {
					return 0, err
				}
				if out > 1<<20 {
					d += b.dramWriteTime(out - 1<<20)
				}
				t = b.host.Submit(d)
				return t, nil
			},
			func() (sim.Time, error) {
				t = b.p2p.Transfer(t, out)
				return t, nil
			},
			func() (sim.Time, error) {
				var err error
				t, err = stageWrite(b.extSSD, t, k.OutputAddr(p), out, step, stepBuf)
				return t, err
			},
			func() (sim.Time, error) {
				d, err := b.extSSD.Flush(t)
				if err != nil {
					return 0, err
				}
				t = b.host.Completion(d)
				return t, nil
			},
		)
		if err := b.runPhase(&b.laneStore, &b.laneStoreOn, lane); err != nil {
			return 0, err
		}
		return t, nil
	case IntegratedSLC, IntegratedMLC, IntegratedTLC, PageBuffer:
		// Dirty buffer pages must reach the medium.
		return b.intSSD.Flush(at)
	case DRAMLess, DRAMLessFirmware:
		// Cache flush happened in RunKernel; wait out the posted
		// programs and notify the host.
		var t sim.Time
		lane := newPhaseLane(at,
			func() (sim.Time, error) {
				t = mem.DrainOf(b.backend, at)
				return t, nil
			},
			func() (sim.Time, error) {
				t = b.accLink.Message(t)
				return t, nil
			},
		)
		if err := b.runPhase(&b.laneStore, &b.laneStoreOn, lane); err != nil {
			return 0, err
		}
		return t, nil
	case NORIntf:
		t := b.nor.Drain()
		return b.accLink.Message(sim.Max(at, t)), nil
	case Ideal:
		return at, nil
	}
	return 0, fmt.Errorf("system: unhandled kind %v", b.cfg.Kind)
}

// dramWriteTime returns pure bandwidth time on the accel DRAM for sizes
// beyond the functionally materialized first megabyte (keeps big staged
// volumes from allocating giant buffers).
func (b *build) dramWriteTime(n int64) sim.Duration {
	return sim.Duration(float64(n) / 12.8e9 * float64(sim.Second))
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
