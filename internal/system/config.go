// Package system wires the substrates into the complete accelerated
// systems of Table I and runs workloads through them end to end: input
// staging, kernel offload, near-data execution and result persistence,
// with execution-time and energy decompositions. It is the engine behind
// every figure reproduction in this repository.
package system

import (
	"fmt"

	"dramless/internal/accel"
	"dramless/internal/energy"
	"dramless/internal/hostsw"
	"dramless/internal/memctrl"
	"dramless/internal/obs"
	"dramless/internal/pcie"
	"dramless/internal/sim"
	"dramless/internal/ssd"
)

// Kind identifies one evaluated system organization.
type Kind int

const (
	// Hetero: conventional heterogeneous system; flash (MLC) SSD reached
	// through the full host software stack (Figure 5a).
	Hetero Kind = iota
	// Heterodirect: same, but with zero-overhead peer-to-peer DMA between
	// the SSD and the accelerator.
	Heterodirect
	// HeteroPRAM: Hetero with an Optane-like PRAM SSD.
	HeteroPRAM
	// HeterodirectPRAM: Heterodirect with the PRAM SSD.
	HeterodirectPRAM
	// NORIntf: 9x nm parallel PRAM with a serial NOR interface inside the
	// accelerator; byte-addressable, 16-bit serialized, no DRAM.
	NORIntf
	// IntegratedSLC embeds an SLC flash SSD (with its 1 GB DRAM buffer)
	// in the accelerator; PEs access pages through the buffer.
	IntegratedSLC
	// IntegratedMLC is the MLC variant.
	IntegratedMLC
	// IntegratedTLC is the TLC variant.
	IntegratedTLC
	// PageBuffer uses the 3x nm PRAM of DRAM-less behind a page interface
	// with an internal DRAM.
	PageBuffer
	// DRAMLess is the paper's system: hardware-automated PRAM subsystem
	// with multi-resource-aware interleaving and selective erasing.
	DRAMLess
	// DRAMLessFirmware replaces the hardware automation with traditional
	// SSD firmware on 3x500 MHz embedded cores.
	DRAMLessFirmware
	// Ideal has all data resident in an in-accelerator DRAM (the Figure 1
	// reference system).
	Ideal

	numKinds
)

// String implements fmt.Stringer with the paper's configuration names.
func (k Kind) String() string {
	switch k {
	case Hetero:
		return "Hetero"
	case Heterodirect:
		return "Heterodirect"
	case HeteroPRAM:
		return "Hetero-PRAM"
	case HeterodirectPRAM:
		return "Heterodirect-PRAM"
	case NORIntf:
		return "NOR-intf"
	case IntegratedSLC:
		return "Integrated-SLC"
	case IntegratedMLC:
		return "Integrated-MLC"
	case IntegratedTLC:
		return "Integrated-TLC"
	case PageBuffer:
		return "PAGE-buffer"
	case DRAMLess:
		return "DRAM-less"
	case DRAMLessFirmware:
		return "DRAM-less (firmware)"
	case Ideal:
		return "Ideal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns every buildable organization.
func Kinds() []Kind {
	out := make([]Kind, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Fig15Kinds returns the ten systems of Figure 15 in presentation order.
func Fig15Kinds() []Kind {
	return []Kind{
		Hetero, Heterodirect, HeteroPRAM, HeterodirectPRAM,
		NORIntf, IntegratedSLC, IntegratedMLC, IntegratedTLC,
		PageBuffer, DRAMLess,
	}
}

// Heterogeneous reports whether the organization keeps storage outside
// the accelerator (Table I row 1).
func (k Kind) Heterogeneous() bool {
	switch k {
	case Hetero, Heterodirect, HeteroPRAM, HeterodirectPRAM:
		return true
	}
	return false
}

// HasInternalDRAM reports Table I row 2.
func (k Kind) HasInternalDRAM() bool {
	switch k {
	case Hetero, Heterodirect, HeteroPRAM, HeterodirectPRAM,
		IntegratedSLC, IntegratedMLC, IntegratedTLC, PageBuffer, Ideal:
		return true
	}
	return false
}

// TableIRow is one column of Table I (per-configuration media behaviour).
type TableIRow struct {
	Kind          Kind
	Heterogeneous bool
	InternalDRAM  bool
	NVMReadUS     float64 // representative media read latency (us)
	NVMWriteUS    string  // media write latency (us; "10/18" for PRAM)
	NVMEraseUS    float64 // 0 = no erase on the data path
}

// Catalog returns Table I.
func Catalog() []TableIRow {
	return []TableIRow{
		{Hetero, true, true, 50, "800", 3500},
		{Heterodirect, true, true, 50, "800", 3500},
		{HeteroPRAM, true, true, 0.1, "10/18", 0},
		{HeterodirectPRAM, true, true, 0.1, "10/18", 0},
		{NORIntf, false, false, 290, "120", 0},
		{IntegratedSLC, false, true, 25, "300", 2000},
		{IntegratedMLC, false, true, 50, "800", 3500},
		{IntegratedTLC, false, true, 80, "1250", 2274},
		{PageBuffer, false, true, 0.1, "10/18", 0},
		{DRAMLess, false, false, 0.1, "10/18", 0},
	}
}

// Config parametrizes one system build + run.
type Config struct {
	Kind  Kind
	Accel accel.Config
	// Scale is the workload base footprint in bytes (the paper runs >10x
	// stock Polybench; benchmarks shrink this for simulation speed - the
	// ratios between systems are scale-stable).
	Scale int64
	// PRAMRowsPerModule sizes the PRAM subsystem (simulation knob).
	PRAMRowsPerModule uint64
	// Scheduler is the PRAM controller policy for DRAM-less builds.
	// Ignored when Policy is set.
	//
	// Deprecated: the enum reaches only the four legacy schedulers;
	// Policy selects from the full registry.
	Scheduler memctrl.Scheduler
	// Policy selects the PRAM controller scheduling policy by registry
	// name ("final", "palp", "pause-aware", ...; see
	// memctrl.PolicyNames). Empty derives the policy from the legacy
	// Scheduler field. It is a string, not a memctrl.Policy, so Config
	// stays comparable (it is the experiment engine's cache key, and
	// the policy name is part of a cell's identity).
	Policy string
	// Wear enables start-gap wear leveling in DRAM-less builds
	// (Section VII extension).
	Wear memctrl.WearConfig
	// SSDCapacity sizes external/integrated SSDs.
	SSDCapacity uint64
	// BufferBytes sizes internal DRAM buffers. Zero picks 4x Scale: the
	// paper's 1 GB buffers hold a similar fraction of its >10x-scaled
	// volumes, so buffer pressure is preserved at simulation scale.
	BufferBytes uint64
	// SampleInterval enables the IPC and power time series.
	SampleInterval sim.Duration
	// Energy is the energy model.
	Energy energy.Params
	// Host is the software-stack cost model for heterogeneous systems.
	Host hostsw.Costs
	// Firmware is the embedded controller of SSDs and DRAM-less(fw).
	Firmware ssd.FirmwareConfig
	// Link is the PCIe slot configuration.
	Link pcie.LinkConfig
	// Obs attaches the observability layer to the whole build: the
	// run's counters merge into its registry, and with tracing enabled
	// every subsystem records simulated-time spans. A pointer so Config
	// stays comparable (it is the experiment engine's cache key); nil
	// disables observation at zero cost. Observers are single-run state:
	// do not share one across concurrently executing runs.
	Obs *obs.Observer
}

// DefaultConfig returns a runnable configuration of the given kind.
func DefaultConfig(kind Kind) Config {
	return Config{
		Kind:              kind,
		Accel:             accel.Default(),
		Scale:             2 << 20,
		PRAMRowsPerModule: 1 << 16,
		Scheduler:         memctrl.Final,
		SSDCapacity:       256 << 20,
		Energy:            energy.Default(),
		Host:              hostsw.DefaultCosts(),
		Firmware:          ssd.DefaultFirmware(),
		Link:              pcie.Gen3x8("pcie"),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Kind < 0 || c.Kind >= numKinds {
		return fmt.Errorf("system: unknown kind %d", int(c.Kind))
	}
	if err := c.Accel.Validate(); err != nil {
		return err
	}
	if c.Scale <= 0 {
		return fmt.Errorf("system: scale must be positive")
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if err := c.Host.Validate(); err != nil {
		return err
	}
	if err := c.Firmware.Validate(); err != nil {
		return err
	}
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.Policy != "" {
		if _, err := memctrl.PolicyByName(c.Policy); err != nil {
			return err
		}
	}
	return nil
}

// schedulerPolicy resolves the DRAM-less controller policy: the Policy
// registry name when set, else the legacy Scheduler enum's canonical
// policy. Out-of-range enum values error exactly as memctrl's own
// validation used to report them.
func (c Config) schedulerPolicy() (memctrl.Policy, error) {
	if c.Policy != "" {
		return memctrl.PolicyByName(c.Policy)
	}
	if p := memctrl.PolicyFor(c.Scheduler); p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("memctrl: unknown scheduler %d", c.Scheduler)
}

// bufferBytes resolves the internal-DRAM buffer size.
func (c Config) bufferBytes() uint64 {
	if c.BufferBytes > 0 {
		return c.BufferBytes
	}
	b := uint64(4 * c.Scale)
	if b < 128<<10 {
		b = 128 << 10
	}
	return b
}
