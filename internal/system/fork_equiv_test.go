package system

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dramless/internal/obs"
	"dramless/internal/workload"
)

// prefixCounter reports the registry name recording how a run's prefix
// came to be. Forked and cold runs differ in this one name by design
// (prefix_forks vs prefix_cold_runs); everything else must match.
func prefixCounter(name string) bool {
	return strings.HasPrefix(name, "system.prefix_")
}

func forkFilteredEntries(c *obs.Counters) []obs.Entry {
	out := make([]obs.Entry, 0, c.Len())
	for _, e := range c.Entries() {
		if !eventCounter(e.Name) && !prefixCounter(e.Name) {
			out = append(out, e)
		}
	}
	return out
}

// TestForkedMatchesCold is the checkpoint/fork layer's equivalence
// oracle: for every Table I organization x one kernel per workload
// class, a run forked from a captured populate/load checkpoint must
// reproduce the cold run exactly - phase walls, time/energy breakdowns,
// per-agent reports, the full counter registry (save the prefix-origin
// counter and engine event totals), and byte-identical histogram and
// series exports.
func TestForkedMatchesCold(t *testing.T) {
	for _, kind := range Kinds() {
		for _, kname := range equivKernels {
			t.Run(kind.String()+"/"+kname, func(t *testing.T) {
				k := workload.MustByName(kname)

				cfg := testConfig(kind)
				cfg.Scale = 128 << 10
				cfg.Obs = obs.New()
				cold, err := Run(cfg, k)
				if err != nil {
					t.Fatal(err)
				}

				fcfg := cfg
				fcfg.Obs = obs.New()
				cp, err := CapturePrefix(PrefixOf(fcfg, k))
				if err != nil {
					t.Fatal(err)
				}
				forked, err := RunForked(fcfg, k, cp)
				if err != nil {
					t.Fatal(err)
				}

				if v := forked.Counters.Get(CounterPrefixForks); v != 1 {
					t.Errorf("forked run: %s = %d, want 1", CounterPrefixForks, v)
				}
				if v := cold.Counters.Get(CounterPrefixColdRuns); v != 1 {
					t.Errorf("cold run: %s = %d, want 1", CounterPrefixColdRuns, v)
				}

				if forked.Load != cold.Load ||
					forked.Kernel != cold.Kernel ||
					forked.Store != cold.Store ||
					forked.Total != cold.Total {
					t.Errorf("phase walls differ:\n  forked load=%v kernel=%v store=%v total=%v\n  cold   load=%v kernel=%v store=%v total=%v",
						forked.Load, forked.Kernel, forked.Store, forked.Total,
						cold.Load, cold.Kernel, cold.Store, cold.Total)
				}
				if forked.Footprint != cold.Footprint {
					t.Errorf("footprint differs: %d != %d", forked.Footprint, cold.Footprint)
				}
				if !reflect.DeepEqual(forked.Time, cold.Time) {
					t.Errorf("time breakdown differs:\n  forked: %+v\n  cold:   %+v", forked.Time, cold.Time)
				}
				if !reflect.DeepEqual(forked.Energy, cold.Energy) {
					t.Errorf("energy account differs:\n  forked: %+v\n  cold:   %+v", forked.Energy, cold.Energy)
				}

				fr, cr := *forked.Report, *cold.Report
				fr.Events, fr.EventsRecycled = 0, 0
				cr.Events, cr.EventsRecycled = 0, 0
				if !reflect.DeepEqual(fr, cr) {
					t.Errorf("kernel report differs:\n  forked: %+v\n  cold:   %+v", fr, cr)
				}

				fe := forkFilteredEntries(&forked.Counters)
				ce := forkFilteredEntries(&cold.Counters)
				if len(fe) != len(ce) {
					t.Fatalf("counter registries differ in size: %d != %d", len(fe), len(ce))
				}
				for i := range fe {
					if fe[i] != ce[i] {
						t.Errorf("counter %q: forked %+v != cold %+v", fe[i].Name, fe[i], ce[i])
					}
				}

				// The replayed prefix samples plus the live kernel/store
				// samples must reproduce the cold run's full distributions,
				// byte for byte in the export formats.
				fh, ch := fcfg.Obs.Histograms(), cfg.Obs.Histograms()
				if !fh.Equal(ch) {
					t.Errorf("histograms differ:\n%s", fh.Diff(ch))
				}
				fs, cs := fcfg.Obs.Series(), cfg.Obs.Series()
				if !fs.Equal(cs) {
					t.Errorf("series differ:\n%s", fs.Diff(cs))
				}
				if !t.Failed() {
					var fbuf, cbuf bytes.Buffer
					if err := fh.WriteJSON(&fbuf); err != nil {
						t.Fatal(err)
					}
					if err := ch.WriteJSON(&cbuf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(fbuf.Bytes(), cbuf.Bytes()) {
						t.Error("histogram JSON exports are not byte-identical")
					}
					fbuf.Reset()
					cbuf.Reset()
					if err := fs.WriteCSV(&fbuf); err != nil {
						t.Fatal(err)
					}
					if err := cs.WriteCSV(&cbuf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(fbuf.Bytes(), cbuf.Bytes()) {
						t.Error("series CSV exports are not byte-identical")
					}
				}
			})
		}
	}
}

// TestPrefixCountersCataloged pins the prefix-origin counters in the
// observability catalog so exports and docs stay in sync.
func TestPrefixCountersCataloged(t *testing.T) {
	for _, name := range []string{CounterPrefixForks, CounterPrefixColdRuns} {
		if !obs.Cataloged(name) {
			t.Errorf("%s is not in the obs name catalog", name)
		}
	}
}

// TestPrefixOfNormalizesObservability pins the key normalization: runs
// that differ only in attached observability share a prefix, runs that
// differ in anything timing-relevant do not.
func TestPrefixOfNormalizesObservability(t *testing.T) {
	k := workload.MustByName("gemver")
	base := testConfig(DRAMLess)

	withObs := base
	withObs.Obs = obs.New()
	withObs.SampleInterval = 100 * 1000 // arbitrary non-zero
	if PrefixOf(base, k) != PrefixOf(withObs, k) {
		t.Error("Obs/SampleInterval should not split the prefix key")
	}

	scaled := base
	scaled.Scale = base.Scale * 2
	if PrefixOf(base, k) == PrefixOf(scaled, k) {
		t.Error("Scale must split the prefix key")
	}
	if PrefixOf(base, k) == PrefixOf(base, workload.MustByName("doitg")) {
		t.Error("kernels with different footprints must split the prefix key")
	}
}
