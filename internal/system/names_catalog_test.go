package system

import (
	"testing"

	"dramless/internal/obs"
	"dramless/internal/workload"
)

// TestEmittedNamesAreCataloged runs every Table I organization with a
// full observer and asserts that every name the stack actually emits —
// counters, latency histograms and windowed series — normalizes into
// the obs catalog. A typo'd or undeclared instrument key fails here as
// drift instead of silently forking a new instrument.
func TestEmittedNamesAreCataloged(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := testConfig(kind)
			cfg.Obs = obs.New()
			if _, err := Run(cfg, workload.MustByName("gemver")); err != nil {
				t.Fatal(err)
			}
			for _, n := range cfg.Obs.Counters().Names() {
				if !obs.Cataloged(n) {
					t.Errorf("counter %q (normalized %q) is not in the catalog",
						n, obs.NormalizeName(n))
				}
			}
			hists := cfg.Obs.Histograms()
			if hists.Len() == 0 {
				t.Error("run with observer emitted no histograms")
			}
			for _, n := range hists.Names() {
				if !obs.Cataloged(n) {
					t.Errorf("histogram %q is not in the catalog", n)
				}
			}
			series := cfg.Obs.Series()
			if series.Len() == 0 {
				t.Error("run with observer emitted no series")
			}
			for _, n := range series.Names() {
				if !obs.Cataloged(n) {
					t.Errorf("series %q is not in the catalog", n)
				}
			}
			blame := cfg.Obs.Blame()
			if blame.Len() == 0 {
				t.Error("run with observer recorded no blame accounts")
			}
			for _, e := range blame.Entries() {
				if !obs.Cataloged(e.Name) {
					t.Errorf("blame account %q (normalized %q) is not in the catalog",
						e.Name, obs.NormalizeName(e.Name))
				}
			}
		})
	}
}
