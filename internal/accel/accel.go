// Package accel composes the DRAM-less accelerator (Figure 6a): eight
// 1 GHz PEs with private L1/L2 caches on a crossbar, one of them acting
// as the server (MCU + power/sleep controller) that owns the memory
// backend, the rest as agents executing kernels. The backend is any
// mem.Device, which is how the Table I systems swap PRAM, flash, DRAM
// and host-attached storage under the same accelerator.
package accel

import (
	"fmt"

	"dramless/internal/cache"
	"dramless/internal/mem"
	"dramless/internal/noc"
	"dramless/internal/obs"
	"dramless/internal/pe"
	"dramless/internal/sim"
	"dramless/internal/stats"
	"dramless/internal/workload"
)

// Config describes the accelerator build.
type Config struct {
	// NumPEs is the total processor count (8); one is the server, the
	// rest are agents.
	NumPEs int
	PE     pe.Config
	L1     cache.Config
	L2     cache.Config
	NoC    noc.Config
	// MCULatency is the server-side request handling overhead per L2
	// miss the MCU takes over.
	MCULatency sim.Duration
	// LaunchOverhead is the PSC sleep -> boot-address store -> wake
	// sequence per agent (Figure 9b steps 3-6).
	LaunchOverhead sim.Duration
	// SampleInterval enables IPC/power series when positive.
	SampleInterval sim.Duration
	// Lanes selects RunKernel's execution kernel: 0 runs the legacy
	// serial min-scan interleave, 1 the single-goroutine lane executor
	// (per-PE event lanes, private heads absorbed inline), and >= 2 the
	// conservative windowed parallel executor with up to Lanes
	// concurrent tail goroutines. Every setting produces byte- and
	// picosecond-identical results; sampled, traced and unbatched runs
	// always fall back to the legacy loop (see DESIGN.md §13).
	Lanes int
	// Obs attaches the observability layer: per-PE kernel/flush spans
	// when its tracer is on, and CountersInto snapshots. Nil disables
	// observation at zero cost.
	Obs *obs.Observer
}

// Default returns the paper's platform.
func Default() Config {
	return Config{
		NumPEs:         8,
		PE:             pe.Default(),
		L1:             cache.L1Data(),
		L2:             cache.L2(),
		NoC:            noc.Default(),
		MCULatency:     sim.Nanoseconds(40),
		LaunchOverhead: sim.Microseconds(5),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumPEs < 2 {
		return fmt.Errorf("accel: need at least a server and one agent, got %d PEs", c.NumPEs)
	}
	if err := c.PE.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.NoC.Validate(); err != nil {
		return err
	}
	if c.NoC.Ports < c.NumPEs+1 {
		return fmt.Errorf("accel: crossbar needs %d ports for %d PEs plus the controller", c.NumPEs+1, c.NumPEs)
	}
	if c.MCULatency < 0 || c.LaunchOverhead < 0 {
		return fmt.Errorf("accel: negative overheads")
	}
	if c.Lanes < 0 {
		return fmt.Errorf("accel: negative lane count %d", c.Lanes)
	}
	return nil
}

// Accelerator is the assembled device.
type Accelerator struct {
	cfg     Config
	backend mem.Device
	xbar    *noc.Crossbar
	mcu     *sim.Resource
	psc     *PSC
	// writeGen invalidates MCU stream buffers on any write through the
	// accelerator, keeping aggregated fetches coherent.
	writeGen int64

	// Event-engine totals accumulated over every runAll on this
	// accelerator, and the summed time job agents spent waiting for a
	// free PE (RunJobs FIFO queue).
	events         int64
	eventsRecycled int64
	queueWait      sim.Duration

	// Lane-executor totals of the RunJobs waves that ran laned
	// (jobLaneWorkers > 0 once any wave did). Wave lane stats are
	// per-wave, not per-job — disjoint jobs interleave in one wave —
	// so they accumulate on the device and export as sim.lane.jobs.*.
	jobLaneEvents  int64
	jobLaneFolded  int64
	jobLaneWindows int64
	jobLaneStalls  int64
	jobLaneWorkers int
}

// mcuFetchBytes is the server's aggregated request size: "512 bytes per
// channel" across the two channels, fetched into a per-agent stream
// buffer when the miss pattern is sequential.
const mcuFetchBytes = 1024

// New assembles an accelerator over backend.
func New(cfg Config, backend mem.Device) (*Accelerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("accel: nil backend")
	}
	xbar, err := noc.New(cfg.NoC)
	if err != nil {
		return nil, err
	}
	return &Accelerator{
		cfg:     cfg,
		backend: backend,
		xbar:    xbar,
		mcu:     sim.NewResource("mcu"),
		psc:     newPSC(cfg.NumPEs - 1),
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, backend mem.Device) *Accelerator {
	a, err := New(cfg, backend)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the build configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// Backend returns the memory backend.
func (a *Accelerator) Backend() mem.Device { return a.backend }

// Agents returns how many PEs execute kernels (all but the server).
func (a *Accelerator) Agents() int { return a.cfg.NumPEs - 1 }

// PSC exposes the power/sleep controller's state and residencies.
func (a *Accelerator) PSC() *PSC { return a.psc }

// QueueWait returns the cumulative job-queue wait across every RunJobs
// call on this device (blame attribution).
func (a *Accelerator) QueueWait() sim.Duration { return a.queueWait }

// serverPort is the crossbar port of the server PE (port 0); agent i uses
// port i+1; the FPGA controller bridge is the last port.
const serverPort = 0

// mcuPath routes an agent's L2 misses through the crossbar to the
// server's MCU and down to the backend ("the MCU takes over the L2 cache
// misses of an agent and administrates all the associated PRAM
// accesses").
type mcuPath struct {
	a    *Accelerator
	port int // the agent's crossbar port

	// Stream buffer: the server aggregates sequential misses into
	// mcuFetchBytes backend reads ("512 bytes per channel ... and tries
	// to prefetch data by using all RDBs across different banks"). buf is
	// allocated once per agent and reused across fetches; bufLen is the
	// number of valid bytes (0 = empty).
	bufAddr  uint64
	buf      []byte
	bufLen   int
	bufReady sim.Time
	bufGen   int64
	prevEnd  uint64 // end of the previous miss, for the sequential detector
}

var (
	_ mem.Device     = (*mcuPath)(nil)
	_ mem.ReaderInto = (*mcuPath)(nil)
)

func (m *mcuPath) Size() uint64 { return m.a.backend.Size() }

func (m *mcuPath) Read(at sim.Time, addr uint64, n int) ([]byte, sim.Time, error) {
	out := make([]byte, n)
	done, err := m.ReadInto(at, addr, out)
	if err != nil {
		return nil, 0, err
	}
	return out, done, nil
}

// ReadInto implements mem.ReaderInto; with a ReaderInto backend the whole
// miss path runs without allocating.
func (m *mcuPath) ReadInto(at sim.Time, addr uint64, dst []byte) (sim.Time, error) {
	n := len(dst)
	// Stream-buffer hit: the aggregated block already holds the line.
	if m.bufLen > 0 && m.bufGen == m.a.writeGen &&
		addr >= m.bufAddr && addr+uint64(n) <= m.bufAddr+uint64(m.bufLen) {
		t := sim.Max(at, m.bufReady)
		t, err := m.a.xbar.Transfer(t, serverPort, m.port, int64(n))
		if err != nil {
			return 0, err
		}
		copy(dst, m.buf[addr-m.bufAddr:])
		return t, nil
	}

	// Request message agent -> server, MCU handling, backend access,
	// data server -> agent.
	t, err := m.a.xbar.Transfer(at, m.port, serverPort, 32)
	if err != nil {
		return 0, err
	}
	t = m.a.mcu.AcquireUntil(t, m.a.cfg.MCULatency)

	sequential := addr == m.prevEnd
	m.prevEnd = addr + uint64(n)
	if !sequential {
		// Isolated miss: fetch exactly the request, straight into dst.
		if t, err = mem.ReadIntoOf(m.a.backend, t, addr, dst); err != nil {
			return 0, err
		}
		return m.a.xbar.Transfer(t, serverPort, m.port, int64(n))
	}

	// Aggregate: fetch the aligned block and keep it for the next misses
	// of this agent's stream.
	base := addr / mcuFetchBytes * mcuFetchBytes
	fetch := mcuFetchBytes
	if base+uint64(fetch) > m.a.backend.Size() {
		fetch = int(m.a.backend.Size() - base)
	}
	if cap(m.buf) < fetch {
		m.buf = make([]byte, mcuFetchBytes)
	}
	buf := m.buf[:fetch]
	m.bufLen = 0 // empty while the fetch is in flight
	if t, err = mem.ReadIntoOf(m.a.backend, t, base, buf); err != nil {
		return 0, err
	}
	m.bufAddr, m.bufLen, m.bufReady, m.bufGen = base, fetch, t, m.a.writeGen
	t, err = m.a.xbar.Transfer(t, serverPort, m.port, int64(n))
	if err != nil {
		return 0, err
	}
	copy(dst, buf[addr-base:int(addr-base)+n])
	return t, nil
}

func (m *mcuPath) Write(at sim.Time, addr uint64, data []byte) (sim.Time, error) {
	m.a.writeGen++ // writes invalidate every agent's stream buffer
	t, err := m.a.xbar.Transfer(at, m.port, serverPort, int64(len(data))+32)
	if err != nil {
		return 0, err
	}
	t = m.a.mcu.AcquireUntil(t, m.a.cfg.MCULatency)
	return m.a.backend.Write(t, addr, data)
}

func (m *mcuPath) Drain() sim.Time { return mem.DrainOf(m.a.backend, 0) }

// AgentRun is the per-agent outcome of a kernel execution.
type AgentRun struct {
	Instructions int64
	Compute      sim.Duration
	Stall        sim.Duration
	Finished     sim.Time
	L1           cache.Stats
	L2           cache.Stats
}

// Report summarizes a kernel execution.
type Report struct {
	Start   sim.Time
	End     sim.Time // last agent finished, caches flushed, backend drained
	Agents  []AgentRun
	IPC     *stats.Series // aggregate instructions per bucket (nil unless sampled)
	Spans   []pe.Span     // busy/stall intervals of every agent (for power plots)
	Instrs  int64
	Compute sim.Duration // summed over agents
	Stall   sim.Duration
	// Events counts interleave steps dispatched for this run; with the
	// batched front-end one step covers a whole coalesced run, so the
	// count shrinking is the coalescer working. EventsRecycled is the
	// engine free-list reuse count where an event engine is involved
	// (the PE interleave no longer is).
	Events         int64
	EventsRecycled int64
	// Lane-executor statistics, populated only when the lane kernel ran
	// (Config.Lanes > 0 and no legacy fallback): per-lane event shares,
	// heads absorbed inline by tails (fold coverage), lookahead windows
	// crossed, cross-lane barrier stalls and per-lane parked windows.
	// All are deterministic functions of the simulation — identical at
	// every worker count — so they export as counters (sim.lane.*).
	LaneEvents        []int64
	LaneFolded        int64
	LaneWindows       int64
	LaneBarrierStalls int64
	LaneParkedWindows []int64
	LaneWorkers       int
}

// ExecTime returns the wall-clock duration of the run.
func (r *Report) ExecTime() sim.Duration { return r.End - r.Start }

// CountersInto writes the run's activity into the registry: per-PE busy
// (compute) and stall time, instruction counts and L1/L2 cache activity,
// plus aggregate totals and event-engine counts.
func (r *Report) CountersInto(c *obs.Counters) {
	if c == nil {
		return
	}
	for i := range r.Agents {
		ag := &r.Agents[i]
		p := fmt.Sprintf("accel.pe%d.", i)
		c.Add(p+"instructions", ag.Instructions)
		c.Add(p+"busy_ps", int64(ag.Compute))
		c.Add(p+"stall_ps", int64(ag.Stall))
		ag.L1.CountersInto(c, p+"l1.")
		ag.L2.CountersInto(c, p+"l2.")
	}
	c.Add("accel.instructions", r.Instrs)
	c.Add("accel.busy_ps", int64(r.Compute))
	c.Add("accel.stall_ps", int64(r.Stall))
	c.Add("sim.events_dispatched", r.Events)
	c.Add("sim.events_recycled", r.EventsRecycled)
	if r.LaneWorkers > 0 {
		for i, n := range r.LaneEvents {
			c.Add(fmt.Sprintf("sim.lane.pe%d.events", i), n)
		}
		for i, n := range r.LaneParkedWindows {
			c.Add(fmt.Sprintf("sim.lane.pe%d.parked_windows", i), n)
		}
		c.Add("sim.lane.windows", r.LaneWindows)
		c.Add("sim.lane.barrier_stalls", r.LaneBarrierStalls)
		c.Add("sim.lane.folded_events", r.LaneFolded)
		if r.Events > 0 {
			c.SetGauge("sim.lane.fold_ratio", float64(r.LaneFolded)/float64(r.Events))
		}
	}
}

// CountersInto writes the accelerator's lifetime activity into the
// registry: PSC reboots and transitions, job queue wait, MCU occupancy
// and event-engine totals across every run on this device.
func (a *Accelerator) CountersInto(c *obs.Counters) {
	if c == nil {
		return
	}
	c.Add("accel.psc.boots", a.psc.Boots())
	c.Add("accel.psc.transitions", int64(a.psc.Transitions()))
	c.Add("accel.job_queue_wait_ps", int64(a.queueWait))
	c.Add("accel.mcu_busy_ps", int64(a.mcu.BusyTime()))
	c.Add("accel.events_dispatched", a.events)
	c.Add("accel.events_recycled", a.eventsRecycled)
	if a.jobLaneWorkers > 0 {
		c.Add("sim.lane.jobs.events", a.jobLaneEvents)
		c.Add("sim.lane.jobs.folded_events", a.jobLaneFolded)
		c.Add("sim.lane.jobs.windows", a.jobLaneWindows)
		c.Add("sim.lane.jobs.barrier_stalls", a.jobLaneStalls)
	}
}

// TotalIPC returns aggregate retired instructions per core cycle across
// agents (the Figure 18/19 metric), using a 1 GHz reference clock.
func (r *Report) TotalIPC(clockHz float64) float64 {
	if r.End <= r.Start {
		return 0
	}
	cycles := r.ExecTime().Seconds() * clockHz
	return float64(r.Instrs) / cycles
}

// runAll interleaves the PEs' execution in simulated-time order: every
// iteration steps the core with the smallest local clock, so shared
// resources (MCU, crossbar, backend) see requests in a globally causal
// arrival order. Equal clocks break by core ID - an explicit rule rather
// than event-schedule order, because the batched front-end covers a
// variable number of ops per step and schedule-order ties would make the
// interleave (and therefore shared-path timing) depend on whether runs
// were folded. With the tie-break pinned, the batched and unbatched
// executions are time-identical.
func runAll(pes []*pe.PE) (processed, recycled int64, err error) {
	active := make([]*pe.PE, len(pes))
	copy(active, pes)
	for len(active) > 0 {
		best := 0
		for i := 1; i < len(active); i++ {
			if active[i].Now() < active[best].Now() ||
				(active[i].Now() == active[best].Now() && active[i].ID < active[best].ID) {
				best = i
			}
		}
		core := active[best]
		ok, err := core.Step()
		processed++
		if err != nil {
			return processed, recycled, err
		}
		if !ok {
			active[best] = active[len(active)-1]
			active = active[:len(active)-1]
		}
	}
	return processed, recycled, nil
}

// laneHorizon returns the conservative lookahead of the windowed lane
// executor: the minimum time any cross-lane interaction can take — a
// 32 B request message on the crossbar wire, one NoC hop, and the MCU's
// handling latency before the shared backend is even reached. It feeds
// only the deterministic window/stall statistics; dispatch safety uses
// exact per-lane frontiers (see internal/sim/lane.go).
func (a *Accelerator) laneHorizon() sim.Duration {
	wire := sim.Duration(32 / a.cfg.NoC.BytesPerSec * float64(sim.Second))
	return wire + a.cfg.NoC.HopLatency + a.cfg.MCULatency
}

// runAllLanes executes the cores as per-PE event lanes on the windowed
// executor. With more than one worker, each lane's caches and series
// record into lane-private shadow instrument sets while tails run
// concurrently; the shadows merge back into the main observer in lane
// order, which — registration order being fixed by construction and
// merges being commutative integer sums — keeps every export
// byte-identical to the serial run.
func (a *Accelerator) runAllLanes(pes []*pe.PE, l1s, l2s []*cache.Cache) (sim.LaneStats, error) {
	workers := a.cfg.Lanes
	if workers > len(pes) {
		workers = len(pes)
	}
	lanes := make([]sim.LaneModel, len(pes))
	for i, core := range pes {
		lanes[i] = core
	}
	var shHists []*obs.HistogramSet
	var shSeries []*obs.SeriesSet
	if workers > 1 {
		if hs := a.cfg.Obs.Histograms(); hs != nil {
			shHists = make([]*obs.HistogramSet, len(pes))
			for i := range pes {
				sh := &obs.HistogramSet{}
				// Rebind in construction order (L2 then L1) so the shadow
				// registers names in the main set's order.
				l2s[i].RebindHists(sh)
				l1s[i].RebindHists(sh)
				shHists[i] = sh
			}
		}
		if ss := a.cfg.Obs.Series(); ss != nil {
			shSeries = make([]*obs.SeriesSet, len(pes))
			for i := range pes {
				sh := obs.NewSeriesSet(ss.Window())
				pes[i].ObserveSeries(sh.Get(obs.SeriesPEBusy), sh.Get(obs.SeriesPEStall))
				shSeries[i] = sh
			}
		}
	}
	st, err := sim.RunLanes(lanes, workers, a.laneHorizon())
	if err != nil {
		return st, err
	}
	if hs := a.cfg.Obs.Histograms(); hs != nil && shHists != nil {
		// Rebind to the main set first: the flush loop after this run
		// records further cache samples, which must not land in shadows
		// that have already been merged.
		for i := range pes {
			l2s[i].RebindHists(hs)
			l1s[i].RebindHists(hs)
		}
		for _, sh := range shHists {
			hs.Merge(sh)
		}
	}
	if ss := a.cfg.Obs.Series(); ss != nil {
		for _, sh := range shSeries {
			ss.Merge(sh)
		}
	}
	return st, nil
}

// RunKernel executes kernel k with params p across the agents, starting
// at `start`. Each agent gets its stream share; the run interleaves agent
// steps in time order so shared resources (MCU, crossbar, backend) see a
// realistic arrival pattern. Returns the execution report.
func (a *Accelerator) RunKernel(start sim.Time, k workload.Kernel, p workload.Params) (*Report, error) {
	nAgents := a.Agents()
	if p.Agents != nAgents {
		p.Agents = nAgents
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	rep := &Report{Start: start}
	collectSpans := a.cfg.SampleInterval > 0
	if collectSpans {
		rep.IPC = stats.NewSeries(a.cfg.SampleInterval)
	}

	pes := make([]*pe.PE, 0, nAgents)
	l1s := make([]*cache.Cache, 0, nAgents)
	l2s := make([]*cache.Cache, 0, nAgents)
	for i := 0; i < nAgents; i++ {
		stream, err := workload.NewStream(k, p, i)
		if err != nil {
			return nil, err
		}
		l2cfg := a.cfg.L2
		l2cfg.Name = fmt.Sprintf("L2.%d", i)
		l2cfg.Obs = a.cfg.Obs
		l2, err := cache.New(l2cfg, &mcuPath{a: a, port: i + 1})
		if err != nil {
			return nil, err
		}
		l1cfg := a.cfg.L1
		l1cfg.Name = fmt.Sprintf("L1.%d", i)
		l1cfg.Obs = a.cfg.Obs
		l1, err := cache.New(l1cfg, l2)
		if err != nil {
			return nil, err
		}
		// PSC launch: the server sleeps the agent, stores the boot
		// address, and wakes it (Figure 9b); agents start staggered by
		// the server's serial launch work.
		bootAt, err := a.psc.Boot(start+sim.Duration(i)*a.cfg.LaunchOverhead, i, a.cfg.LaunchOverhead)
		if err != nil {
			return nil, err
		}
		core, err := pe.New(i, a.cfg.PE, l1, stream, bootAt)
		if err != nil {
			return nil, err
		}
		if collectSpans {
			core.SampleIPC(a.cfg.SampleInterval)
			core.OnSpan(func(s pe.Span) { rep.Spans = append(rep.Spans, s) })
		}
		if ss := a.cfg.Obs.Series(); ss != nil {
			core.ObserveSeries(ss.Get(obs.SeriesPEBusy), ss.Get(obs.SeriesPEStall))
		}
		pes = append(pes, core)
		l1s = append(l1s, l1)
		l2s = append(l2s, l2)
	}

	// Interleave agent execution in time order: per-PE event lanes when
	// enabled, the legacy serial min-scan otherwise. Sampled, traced and
	// unbatched runs stay on the legacy loop — sampling disables run
	// folding (lane tails would absorb nothing) and the tracer is a
	// coordinator-owned appender the equivalence precedent keeps serial.
	useLanes := a.cfg.Lanes > 0 && !collectSpans && !a.cfg.PE.Unbatched &&
		!a.cfg.Obs.Tracer().Enabled()
	if useLanes {
		st, err := a.runAllLanes(pes, l1s, l2s)
		if err != nil {
			return nil, err
		}
		rep.Events = st.Events
		rep.LaneEvents = st.LaneEvents
		rep.LaneFolded = st.Folded
		rep.LaneWindows = st.Windows
		rep.LaneBarrierStalls = st.BarrierStalls
		rep.LaneParkedWindows = st.LaneParkedWindows
		rep.LaneWorkers = st.Workers
	} else {
		processed, recycled, err := runAll(pes)
		if err != nil {
			return nil, err
		}
		rep.Events, rep.EventsRecycled = processed, recycled
	}
	a.events += rep.Events
	a.eventsRecycled += rep.EventsRecycled

	// Flush caches so results persist in the backend, then drain posted
	// work.
	tr := a.cfg.Obs.Tracer()
	var hKernel, hFlush *obs.Histogram
	if hs := a.cfg.Obs.Histograms(); hs != nil {
		hKernel = hs.Get(obs.HistAccelKernel)
		hFlush = hs.Get(obs.HistAccelFlush)
	}
	end := start
	for i, core := range pes {
		fin := core.Now()
		d, err := l1s[i].Flush(fin)
		if err != nil {
			return nil, err
		}
		if d, err = l2s[i].Flush(d); err != nil {
			return nil, err
		}
		hKernel.Record(int64(core.ComputeTime() + core.StallTime()))
		hFlush.Record(int64(d - fin))
		if tr.Enabled() {
			kStart := fin - core.ComputeTime() - core.StallTime()
			track := fmt.Sprintf("pe%d", i)
			tr.Span("accel", track, "kernel", kStart, fin)
			tr.Span("accel", track, "flush", fin, d)
			// Causal flow edges at the handoff points: the system's load
			// phase dispatches each agent, and each agent's flush drains
			// back into the system's store phase.
			tr.Flow("dispatch", "system", "run", "accel", track, kStart)
			tr.Flow("drain", "accel", track, "system", "run", d)
		}
		run := AgentRun{
			Instructions: core.Instructions(),
			Compute:      core.ComputeTime(),
			Stall:        core.StallTime(),
			Finished:     d,
			L1:           l1s[i].Stats(),
			L2:           l2s[i].Stats(),
		}
		rep.Agents = append(rep.Agents, run)
		rep.Instrs += run.Instructions
		rep.Compute += run.Compute
		rep.Stall += run.Stall
		if err := a.psc.Sleep(d, i); err != nil {
			return nil, err
		}
		if collectSpans {
			if ipc := core.IPCSeries(); ipc != nil {
				for b := 0; b < ipc.Len(); b++ {
					rep.IPC.Accumulate(ipc.BucketStart(b), ipc.At(b))
				}
			}
		}
		// Stats are snapshotted; recycle the line storage for the next
		// kernel's cache build.
		l1s[i].Release()
		l2s[i].Release()
		end = sim.Max(end, d)
	}
	rep.End = mem.DrainOf(a.backend, end)
	return rep, nil
}
