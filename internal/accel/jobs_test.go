package accel

import (
	"testing"

	"dramless/internal/sim"
	"dramless/internal/workload"
)

func smallJob(name string, agents int) Job {
	return Job{
		Kernel: workload.MustByName(name),
		Params: workload.Params{Scale: 64 << 10},
		Agents: agents,
	}
}

func TestRunJobsSingle(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	res, err := a.RunJobs(0, []Job{smallJob("trisolv", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Report.Instrs == 0 {
		t.Fatal("job did not run")
	}
	if len(res[0].AgentIDs) != a.Agents() {
		t.Fatalf("default job used %d agents, want all %d", len(res[0].AgentIDs), a.Agents())
	}
}

func TestRunJobsConcurrentDisjointAgents(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	// Two 3-agent jobs fit the 7 agents together: they must overlap in
	// simulated time rather than serialize.
	res, err := a.RunJobs(0, []Job{smallJob("gemver", 3), smallJob("jaco1d", 3)})
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := res[0].Report, res[1].Report
	if r1.Start >= r0.End {
		t.Fatalf("second job started at %v, after the first ended at %v - no concurrency", r1.Start, r0.End)
	}
	// Agent sets must be disjoint.
	seen := map[int]bool{}
	for _, r := range res {
		for _, id := range r.AgentIDs {
			if seen[id] {
				t.Fatalf("agent %d assigned to both jobs", id)
			}
			seen[id] = true
		}
	}
}

func TestRunJobsQueuesWhenAgentsExhausted(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	// Two all-agent jobs must serialize: the second starts after the
	// first's agents free.
	res, err := a.RunJobs(0, []Job{smallJob("trisolv", 0), smallJob("durbin", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Report.Start < res[0].Report.End-sim.Microsecond {
		t.Fatalf("second all-agent job started at %v before the first finished at %v",
			res[1].Report.Start, res[0].Report.End)
	}
}

func TestRunJobsOversizedRequestClamped(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	res, err := a.RunJobs(0, []Job{smallJob("lu", 99)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].AgentIDs) != a.Agents() {
		t.Fatalf("oversized request got %d agents", len(res[0].AgentIDs))
	}
}

func TestRunJobsEmpty(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	res, err := a.RunJobs(0, nil)
	if err != nil || res != nil {
		t.Fatalf("empty job list: %v %v", res, err)
	}
}

func TestRunJobsMatchesRunKernelWork(t *testing.T) {
	// A single all-agent job retires the same instruction count as
	// RunKernel on the same kernel and scale.
	k := workload.MustByName("floyd")
	p := workload.Params{Scale: 64 << 10, Agents: 7}
	a1 := MustNew(Default(), fastBackend())
	rep, err := a1.RunKernel(0, k, p)
	if err != nil {
		t.Fatal(err)
	}
	a2 := MustNew(Default(), fastBackend())
	res, err := a2.RunJobs(0, []Job{{Kernel: k, Params: p}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Report.Instrs != rep.Instrs {
		t.Fatalf("job instrs %d != kernel instrs %d", res[0].Report.Instrs, rep.Instrs)
	}
}

func TestRunJobsManyJobsFIFO(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	var jobs []Job
	names := []string{"trisolv", "durbin", "gemver", "dynpro", "jaco1d", "regd"}
	for _, n := range names {
		jobs = append(jobs, smallJob(n, 2))
	}
	res, err := a.RunJobs(0, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil || r.Report.Instrs == 0 {
			t.Fatalf("job %d missing", i)
		}
		if r.Job.Kernel.Name != names[i] {
			t.Fatalf("result order broken at %d", i)
		}
	}
	// Three 2-agent jobs per wave on 7 agents: at least two jobs overlap.
	if res[1].Report.Start >= res[0].Report.End && res[2].Report.Start >= res[0].Report.End {
		t.Fatal("no overlap among the first wave's jobs")
	}
}
