package accel

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dramless/internal/obs"
	"dramless/internal/sim"
	"dramless/internal/workload"
)

func smallJob(name string, agents int) Job {
	return Job{
		Kernel: workload.MustByName(name),
		Params: workload.Params{Scale: 64 << 10},
		Agents: agents,
	}
}

func TestRunJobsSingle(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	res, err := a.RunJobs(0, []Job{smallJob("trisolv", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Report.Instrs == 0 {
		t.Fatal("job did not run")
	}
	if len(res[0].AgentIDs) != a.Agents() {
		t.Fatalf("default job used %d agents, want all %d", len(res[0].AgentIDs), a.Agents())
	}
}

func TestRunJobsConcurrentDisjointAgents(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	// Two 3-agent jobs fit the 7 agents together: they must overlap in
	// simulated time rather than serialize.
	res, err := a.RunJobs(0, []Job{smallJob("gemver", 3), smallJob("jaco1d", 3)})
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := res[0].Report, res[1].Report
	if r1.Start >= r0.End {
		t.Fatalf("second job started at %v, after the first ended at %v - no concurrency", r1.Start, r0.End)
	}
	// Agent sets must be disjoint.
	seen := map[int]bool{}
	for _, r := range res {
		for _, id := range r.AgentIDs {
			if seen[id] {
				t.Fatalf("agent %d assigned to both jobs", id)
			}
			seen[id] = true
		}
	}
}

func TestRunJobsQueuesWhenAgentsExhausted(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	// Two all-agent jobs must serialize: the second starts after the
	// first's agents free.
	res, err := a.RunJobs(0, []Job{smallJob("trisolv", 0), smallJob("durbin", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Report.Start < res[0].Report.End-sim.Microsecond {
		t.Fatalf("second all-agent job started at %v before the first finished at %v",
			res[1].Report.Start, res[0].Report.End)
	}
}

func TestRunJobsOversizedRequestClamped(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	res, err := a.RunJobs(0, []Job{smallJob("lu", 99)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].AgentIDs) != a.Agents() {
		t.Fatalf("oversized request got %d agents", len(res[0].AgentIDs))
	}
}

func TestRunJobsEmpty(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	res, err := a.RunJobs(0, nil)
	if err != nil || res != nil {
		t.Fatalf("empty job list: %v %v", res, err)
	}
}

func TestRunJobsMatchesRunKernelWork(t *testing.T) {
	// A single all-agent job retires the same instruction count as
	// RunKernel on the same kernel and scale.
	k := workload.MustByName("floyd")
	p := workload.Params{Scale: 64 << 10, Agents: 7}
	a1 := MustNew(Default(), fastBackend())
	rep, err := a1.RunKernel(0, k, p)
	if err != nil {
		t.Fatal(err)
	}
	a2 := MustNew(Default(), fastBackend())
	res, err := a2.RunJobs(0, []Job{{Kernel: k, Params: p}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Report.Instrs != rep.Instrs {
		t.Fatalf("job instrs %d != kernel instrs %d", res[0].Report.Instrs, rep.Instrs)
	}
}

func TestRunJobsManyJobsFIFO(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	var jobs []Job
	names := []string{"trisolv", "durbin", "gemver", "dynpro", "jaco1d", "regd"}
	for _, n := range names {
		jobs = append(jobs, smallJob(n, 2))
	}
	res, err := a.RunJobs(0, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil || r.Report.Instrs == 0 {
			t.Fatalf("job %d missing", i)
		}
		if r.Job.Kernel.Name != names[i] {
			t.Fatalf("result order broken at %d", i)
		}
	}
	// Three 2-agent jobs per wave on 7 agents: at least two jobs overlap.
	if res[1].Report.Start >= res[0].Report.End && res[2].Report.Start >= res[0].Report.End {
		t.Fatal("no overlap among the first wave's jobs")
	}
}

// TestLanedRunJobsMatchesSerial is RunJobs' equivalence oracle for the
// laned wave dispatch: the same FIFO job mix — concurrent disjoint-agent
// waves plus queued waves — run at Lanes 0, 1 and 4 must produce
// identical per-job reports and placements, an identical counter
// registry save the lane executor's own sim.lane.* statistics, and
// byte-identical histogram and series exports. The two laned runs must
// also agree on the sim.lane.jobs.* counters themselves: lane stats are
// worker-count-invariant.
func TestLanedRunJobsMatchesSerial(t *testing.T) {
	names := []string{"trisolv", "durbin", "gemver", "dynpro", "jaco1d", "regd"}
	type outcome struct {
		res      []*JobResult
		counters obs.Counters
		hist     []byte
		series   []byte
	}
	run := func(lanes int) outcome {
		cfg := Default()
		cfg.Lanes = lanes
		cfg.Obs = obs.New()
		a := MustNew(cfg, fastBackend())
		var jobs []Job
		for _, n := range names {
			jobs = append(jobs, smallJob(n, 2))
		}
		res, err := a.RunJobs(0, jobs)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		var o outcome
		o.res = res
		a.CountersInto(&o.counters)
		var hb, sb bytes.Buffer
		if err := cfg.Obs.Histograms().WriteJSON(&hb); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Obs.Series().WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		o.hist, o.series = hb.Bytes(), sb.Bytes()
		return o
	}
	laneless := func(c *obs.Counters) []obs.Entry {
		out := make([]obs.Entry, 0, c.Len())
		for _, e := range c.Entries() {
			if !strings.HasPrefix(e.Name, "sim.lane.") {
				out = append(out, e)
			}
		}
		return out
	}

	serial := run(0)
	byLanes := map[int]outcome{}
	for _, lanes := range []int{1, 4} {
		laned := run(lanes)
		byLanes[lanes] = laned
		if len(laned.res) != len(serial.res) {
			t.Fatalf("lanes=%d: %d results, want %d", lanes, len(laned.res), len(serial.res))
		}
		for i := range laned.res {
			if !reflect.DeepEqual(laned.res[i].AgentIDs, serial.res[i].AgentIDs) {
				t.Errorf("lanes=%d: job %d placement differs: %v != %v",
					lanes, i, laned.res[i].AgentIDs, serial.res[i].AgentIDs)
			}
			if !reflect.DeepEqual(*laned.res[i].Report, *serial.res[i].Report) {
				t.Errorf("lanes=%d: job %d report differs:\n  laned:  %+v\n  serial: %+v",
					lanes, i, *laned.res[i].Report, *serial.res[i].Report)
			}
		}
		le, se := laneless(&laned.counters), laneless(&serial.counters)
		if len(le) != len(se) {
			t.Fatalf("lanes=%d: counter registries differ in size: %d != %d", lanes, len(le), len(se))
		}
		for i := range le {
			if le[i] != se[i] {
				t.Errorf("lanes=%d: counter %q: laned %+v != serial %+v", lanes, le[i].Name, le[i], se[i])
			}
		}
		if !bytes.Equal(laned.hist, serial.hist) {
			t.Errorf("lanes=%d: histogram JSON export is not byte-identical to serial", lanes)
		}
		if !bytes.Equal(laned.series, serial.series) {
			t.Errorf("lanes=%d: series CSV export is not byte-identical to serial", lanes)
		}
	}

	one, four := byLanes[1].counters, byLanes[4].counters
	oe, fe := one.Entries(), four.Entries()
	if len(oe) != len(fe) {
		t.Fatalf("laned counter registries differ in size: lanes=1 %d != lanes=4 %d", len(oe), len(fe))
	}
	for i := range oe {
		if oe[i] != fe[i] {
			t.Errorf("counter %q differs across worker counts: lanes=1 %+v != lanes=4 %+v",
				oe[i].Name, oe[i], fe[i])
		}
	}
	if v := four.Get("sim.lane.jobs.events"); v <= 0 {
		t.Errorf("sim.lane.jobs.events = %d, want > 0", v)
	}
	if v := four.Get("sim.lane.jobs.windows"); v <= 0 {
		t.Errorf("sim.lane.jobs.windows = %d, want > 0", v)
	}
}
