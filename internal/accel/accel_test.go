package accel

import (
	"testing"

	"dramless/internal/mem"
	"dramless/internal/memctrl"
	"dramless/internal/sim"
	"dramless/internal/workload"
)

func fastBackend() mem.Device {
	// Idealized DRAM backend: 100 ns, 25 GB/s.
	return mem.NewFlat("dram", 1<<30, sim.Nanoseconds(100), 25e9)
}

func smallKernelParams() workload.Params {
	return workload.Params{Scale: 256 << 10, Agents: 7}
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.NumPEs = 1
	if err := c.Validate(); err == nil {
		t.Error("single-PE accelerator accepted")
	}
	c = Default()
	c.NoC.Ports = 3
	if err := c.Validate(); err == nil {
		t.Error("undersized crossbar accepted")
	}
	if _, err := New(Default(), nil); err == nil {
		t.Error("nil backend accepted")
	}
}

func TestRunKernelCompletes(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	rep, err := a.RunKernel(0, workload.MustByName("jaco1d"), smallKernelParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecTime() <= 0 {
		t.Fatal("zero execution time")
	}
	if len(rep.Agents) != 7 {
		t.Fatalf("agents = %d, want 7", len(rep.Agents))
	}
	if rep.Instrs <= 0 {
		t.Fatal("no instructions retired")
	}
	for i, ag := range rep.Agents {
		if ag.Instructions == 0 {
			t.Fatalf("agent %d retired nothing", i)
		}
		if ag.L1.Hits+ag.L1.Misses == 0 {
			t.Fatalf("agent %d never touched L1", i)
		}
	}
}

func TestAgentsRunConcurrently(t *testing.T) {
	// Doubling the agent count over the same footprint should cut the
	// execution time substantially on a fast backend.
	k := workload.MustByName("gemver")
	run := func(npes int) sim.Duration {
		cfg := Default()
		cfg.NumPEs = npes
		cfg.NoC.Ports = npes + 2
		a := MustNew(cfg, fastBackend())
		rep, err := a.RunKernel(0, k, workload.Params{Scale: 256 << 10, Agents: npes - 1})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ExecTime()
	}
	t2, t8 := run(2), run(8)
	if t8 >= t2 {
		t.Fatalf("8 PEs (%v) not faster than 2 PEs (%v)", t8, t2)
	}
	if float64(t8) > 0.5*float64(t2) {
		t.Fatalf("7 agents only %.2fx faster than 1", float64(t2)/float64(t8))
	}
}

func TestSlowBackendStallsDominant(t *testing.T) {
	slow := mem.NewFlat("slow", 1<<30, sim.Microseconds(50), 50e6)
	a := MustNew(Default(), slow)
	rep, err := a.RunKernel(0, workload.MustByName("jaco1d"), workload.Params{Scale: 64 << 10, Agents: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stall <= rep.Compute {
		t.Fatalf("slow backend: stall %v not above compute %v", rep.Stall, rep.Compute)
	}
	fast := MustNew(Default(), fastBackend())
	rep2, err := fast.RunKernel(0, workload.MustByName("jaco1d"), workload.Params{Scale: 64 << 10, Agents: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ExecTime() >= rep.ExecTime() {
		t.Fatal("fast backend not faster than slow backend")
	}
}

func TestIPCSampling(t *testing.T) {
	cfg := Default()
	cfg.SampleInterval = 10 * sim.Microsecond
	a := MustNew(cfg, fastBackend())
	rep, err := a.RunKernel(0, workload.MustByName("gemver"), workload.Params{Scale: 128 << 10, Agents: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPC == nil || rep.IPC.Len() == 0 {
		t.Fatal("no IPC series sampled")
	}
	if got, want := rep.IPC.Total(), float64(rep.Instrs); got < want*0.99 || got > want*1.01 {
		t.Fatalf("IPC series mass %v, want ~%v", got, want)
	}
	if len(rep.Spans) == 0 {
		t.Fatal("no power spans collected")
	}
	if rep.TotalIPC(1e9) <= 0 {
		t.Fatal("zero total IPC")
	}
}

func TestRunOnPRAMSubsystemEndToEnd(t *testing.T) {
	// Full DRAM-less stack: PEs -> L1 -> L2 -> MCU -> FPGA -> PRAM.
	cfg := memctrl.DefaultConfig(memctrl.Final)
	cfg.Geometry.RowsPerModule = 1 << 16
	sub := memctrl.MustNew(cfg)
	a := MustNew(Default(), sub)
	rep, err := a.RunKernel(0, workload.MustByName("trisolv"), workload.Params{Scale: 64 << 10, Agents: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecTime() <= 0 {
		t.Fatal("no progress on PRAM backend")
	}
	if sub.Stats().Reads == 0 {
		t.Fatal("PRAM subsystem never read")
	}
	// Write-back caches must have pushed kernel outputs into PRAM rows.
	if sub.Stats().Writes == 0 {
		t.Fatal("PRAM subsystem never written")
	}
}

func TestReportExecTime(t *testing.T) {
	r := &Report{Start: 100, End: 300}
	if r.ExecTime() != 200 {
		t.Fatal("exec time arithmetic wrong")
	}
}

func TestMCUStreamBufferAggregatesSequentialMisses(t *testing.T) {
	// A slow backend makes per-miss costs visible: with the aggregated
	// 1 KiB fetches, 8 sequential 128 B reads cost roughly one backend
	// access, not eight.
	slow := mem.NewFlat("slow", 1<<20, sim.Microseconds(10), 1e9)
	a := MustNew(Default(), slow)
	m := &mcuPath{a: a, port: 1}

	var now sim.Time
	// Prime the sequential detector with two back-to-back misses.
	_, now, err := m.Read(0, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	before := readsOf(slow)
	start := now
	for off := uint64(128); off < 1024; off += 128 {
		_, now, err = m.Read(now, off, 128)
		if err != nil {
			t.Fatal(err)
		}
	}
	backendReads := readsOf(slow) - before
	if backendReads > 2 {
		t.Fatalf("7 sequential line misses issued %d backend reads, want <= 2 (aggregated)", backendReads)
	}
	// Buffer hits are cheap: the whole run of hits must cost far less
	// than one 10 us backend access each.
	if now-start > sim.Microseconds(25) {
		t.Fatalf("aggregated reads took %v", now-start)
	}
}

func TestMCUStreamBufferInvalidatedByWrites(t *testing.T) {
	backing := mem.NewFlat("m", 1<<20, sim.Nanoseconds(100), 1e9)
	a := MustNew(Default(), backing)
	reader := &mcuPath{a: a, port: 1}
	writer := &mcuPath{a: a, port: 2}

	// Fill the stream buffer over [0, 1024).
	if _, _, err := reader.Read(0, 0, 128); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reader.Read(0, 128, 128); err != nil {
		t.Fatal(err)
	}
	// Another agent writes inside the buffered block.
	if _, err := writer.Write(0, 256, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	got, _, err := reader.Read(sim.Microseconds(1), 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatal("stream buffer served stale data after a write")
	}
}

func TestMCUStrideDoesNotAggregate(t *testing.T) {
	slow := mem.NewFlat("slow", 1<<20, sim.Microseconds(10), 1e9)
	a := MustNew(Default(), slow)
	m := &mcuPath{a: a, port: 1}
	before := readsOf(slow)
	now := sim.Time(0)
	var err error
	for i := 0; i < 4; i++ {
		_, now, err = m.Read(now, uint64(i)*8192, 128) // strided: never sequential
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := readsOf(slow) - before; got != 4 {
		t.Fatalf("strided misses issued %d backend reads, want 4 (no useless aggregation)", got)
	}
	_, _, _, out := slow.Traffic()
	if out > 4*1024 {
		t.Fatalf("strided misses moved %d backend bytes, want line-sized fetches", out)
	}
}

func readsOf(f *mem.Flat) int64 {
	r, _, _, _ := f.Traffic()
	return r
}
