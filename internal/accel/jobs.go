package accel

import (
	"fmt"

	"dramless/internal/cache"
	"dramless/internal/obs"
	"dramless/internal/pe"
	"dramless/internal/sim"
	"dramless/internal/stats"
	"dramless/internal/workload"
)

// Job is one kernel execution request for the server's scheduler. The
// Section IV model: a kernel image may carry several applications; the
// server polls for idle agents and dispatches each app to as many as it
// asks for.
type Job struct {
	Kernel workload.Kernel
	Params workload.Params
	// Agents is how many agent PEs the job wants (0 = all of them).
	Agents int
}

// JobResult pairs a job with its execution report.
type JobResult struct {
	Job      Job
	Report   *Report
	AgentIDs []int // which physical agents ran it
}

// agentState is the scheduler's view of one agent PE.
type agentState struct {
	id     int
	freeAt sim.Time
}

// RunJobs executes jobs under the server's FIFO scheduler: each job grabs
// the soonest-free agents it needs (sleeping, boot-address store and
// reboot per agent via the PSC), and jobs whose agent sets are disjoint
// execute concurrently - their PEs interleave in one time-ordered queue,
// contending for the MCU, crossbar and backend exactly as parallel
// kernels would.
func (a *Accelerator) RunJobs(start sim.Time, jobs []Job) ([]*JobResult, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	total := a.Agents()
	agents := make([]agentState, total)
	for i := range agents {
		agents[i] = agentState{id: i, freeAt: start}
	}

	results := make([]*JobResult, len(jobs))
	// Dispatch in FIFO waves: take jobs while agents remain, run the
	// wave's PEs in one interleaved queue, then free the agents.
	next := 0
	for next < len(jobs) {
		var wave []placedJob
		used := 0
		for next < len(jobs) {
			want := jobs[next].Agents
			if want <= 0 || want > total {
				want = total
			}
			if used+want > total {
				break
			}
			// Pick the `want` soonest-free agents.
			ids := soonestFree(agents, want, usedSet(wave))
			wave = append(wave, placedJob{jobIdx: next, agentIDs: ids})
			used += want
			next++
		}
		if len(wave) == 0 {
			return nil, fmt.Errorf("accel: job %d wants %d agents, have %d", next, jobs[next].Agents, total)
		}

		// Build every wave job's PEs, then interleave all of them.
		var cores []*pe.PE
		var l1s, l2s []*cache.Cache
		for w := range wave {
			job := jobs[wave[w].jobIdx]
			p := job.Params
			p.Agents = len(wave[w].agentIDs)
			if err := p.Validate(); err != nil {
				return nil, err
			}
			// Queue wait: how long past submission each placed agent was
			// still busy with earlier jobs (observability counter).
			hWait := a.cfg.Obs.Histograms().Get(obs.HistAccelJobWait)
			for _, id := range wave[w].agentIDs {
				wait := agents[id].freeAt - start
				if wait > 0 {
					a.queueWait += wait
				} else {
					wait = 0
				}
				hWait.Record(int64(wait))
			}
			runners, err := a.buildRunners(job.Kernel, p, wave[w].agentIDs, agents)
			if err != nil {
				return nil, err
			}
			wave[w].runners = runners
			for _, r := range runners {
				cores = append(cores, r.core)
				l1s = append(l1s, r.l1)
				l2s = append(l2s, r.l2)
			}
		}
		// Interleave the wave: per-PE event lanes when enabled (disjoint
		// jobs' PEs run as concurrent lanes in global (time, lane)
		// order), the legacy serial min-scan otherwise. Same gating as
		// RunKernel — sampled and unbatched runs disable folding, the
		// tracer is a coordinator-owned appender.
		if a.cfg.Lanes > 0 && a.cfg.SampleInterval <= 0 && !a.cfg.PE.Unbatched &&
			!a.cfg.Obs.Tracer().Enabled() {
			st, err := a.runAllLanes(cores, l1s, l2s)
			if err != nil {
				return nil, err
			}
			a.events += st.Events
			a.jobLaneEvents += st.Events
			a.jobLaneFolded += st.Folded
			a.jobLaneWindows += st.Windows
			a.jobLaneStalls += st.BarrierStalls
			if st.Workers > a.jobLaneWorkers {
				a.jobLaneWorkers = st.Workers
			}
		} else {
			processed, recycled, err := runAll(cores)
			if err != nil {
				return nil, err
			}
			a.events += processed
			a.eventsRecycled += recycled
		}

		// Collect per-job reports and release the agents.
		for w := range wave {
			rep, err := a.collectReport(wave[w].runners)
			if err != nil {
				return nil, err
			}
			results[wave[w].jobIdx] = &JobResult{
				Job:      jobs[wave[w].jobIdx],
				Report:   rep,
				AgentIDs: wave[w].agentIDs,
			}
			for i, id := range wave[w].agentIDs {
				agents[id].freeAt = wave[w].runners[i].finished
			}
		}
	}
	return results, nil
}

// placedJob is one job placed in the current dispatch wave.
type placedJob struct {
	jobIdx   int
	agentIDs []int
	runners  []*jobRunner
}

// usedSet returns the agent ids already claimed in the wave under
// construction.
func usedSet(wave []placedJob) map[int]bool {
	out := map[int]bool{}
	for _, p := range wave {
		for _, id := range p.agentIDs {
			out[id] = true
		}
	}
	return out
}

// soonestFree picks n unclaimed agents with the earliest free times.
func soonestFree(agents []agentState, n int, claimed map[int]bool) []int {
	type cand struct {
		id     int
		freeAt sim.Time
	}
	var cs []cand
	for _, ag := range agents {
		if !claimed[ag.id] {
			cs = append(cs, cand{ag.id, ag.freeAt})
		}
	}
	// Selection by repeated minimum keeps this dependency-free and the
	// agent counts are tiny.
	out := make([]int, 0, n)
	for len(out) < n && len(cs) > 0 {
		best := 0
		for i := 1; i < len(cs); i++ {
			if cs[i].freeAt < cs[best].freeAt ||
				(cs[i].freeAt == cs[best].freeAt && cs[i].id < cs[best].id) {
				best = i
			}
		}
		out = append(out, cs[best].id)
		cs = append(cs[:best], cs[best+1:]...)
	}
	return out
}

// jobRunner is one agent's execution context within a job.
type jobRunner struct {
	core     *pe.PE
	l1, l2   *cache.Cache
	finished sim.Time
}

// buildRunners creates the PEs, caches and streams for one job on the
// given physical agents, staggering PSC launches after each agent frees.
func (a *Accelerator) buildRunners(k workload.Kernel, p workload.Params, agentIDs []int, agents []agentState) ([]*jobRunner, error) {
	runners := make([]*jobRunner, 0, len(agentIDs))
	for i, id := range agentIDs {
		stream, err := workload.NewStream(k, p, i)
		if err != nil {
			return nil, err
		}
		l2cfg := a.cfg.L2
		l2cfg.Name = fmt.Sprintf("L2.a%d", id)
		l2cfg.Obs = a.cfg.Obs
		l2, err := cache.New(l2cfg, &mcuPath{a: a, port: id + 1})
		if err != nil {
			return nil, err
		}
		l1cfg := a.cfg.L1
		l1cfg.Name = fmt.Sprintf("L1.a%d", id)
		l1cfg.Obs = a.cfg.Obs
		l1, err := cache.New(l1cfg, l2)
		if err != nil {
			return nil, err
		}
		bootAt, err := a.psc.Boot(agents[id].freeAt, id, a.cfg.LaunchOverhead)
		if err != nil {
			return nil, err
		}
		core, err := pe.New(id, a.cfg.PE, l1, stream, bootAt)
		if err != nil {
			return nil, err
		}
		if a.cfg.SampleInterval > 0 {
			core.SampleIPC(a.cfg.SampleInterval)
		}
		if ss := a.cfg.Obs.Series(); ss != nil {
			core.ObserveSeries(ss.Get(obs.SeriesPEBusy), ss.Get(obs.SeriesPEStall))
		}
		runners = append(runners, &jobRunner{core: core, l1: l1, l2: l2})
	}
	return runners, nil
}

// collectReport flushes the runners' caches and assembles a Report.
func (a *Accelerator) collectReport(runners []*jobRunner) (*Report, error) {
	rep := &Report{Start: runners[0].core.Now()} // refined below
	var start sim.Time = 1<<62 - 1
	end := sim.Time(0)
	if a.cfg.SampleInterval > 0 {
		rep.IPC = stats.NewSeries(a.cfg.SampleInterval)
	}
	var hKernel, hFlush *obs.Histogram
	if hs := a.cfg.Obs.Histograms(); hs != nil {
		hKernel = hs.Get(obs.HistAccelKernel)
		hFlush = hs.Get(obs.HistAccelFlush)
	}
	for _, r := range runners {
		fin := r.core.Now()
		d, err := r.l1.Flush(fin)
		if err != nil {
			return nil, err
		}
		if d, err = r.l2.Flush(d); err != nil {
			return nil, err
		}
		r.finished = d
		hKernel.Record(int64(r.core.ComputeTime() + r.core.StallTime()))
		hFlush.Record(int64(d - fin))
		if err := a.psc.Sleep(d, r.core.ID); err != nil {
			return nil, err
		}
		run := AgentRun{
			Instructions: r.core.Instructions(),
			Compute:      r.core.ComputeTime(),
			Stall:        r.core.StallTime(),
			Finished:     d,
			L1:           r.l1.Stats(),
			L2:           r.l2.Stats(),
		}
		rep.Agents = append(rep.Agents, run)
		rep.Instrs += run.Instructions
		rep.Compute += run.Compute
		rep.Stall += run.Stall
		if rep.IPC != nil {
			if ipc := r.core.IPCSeries(); ipc != nil {
				for b := 0; b < ipc.Len(); b++ {
					rep.IPC.Accumulate(ipc.BucketStart(b), ipc.At(b))
				}
			}
		}
		fullStart := r.core.Now() - r.core.ComputeTime() - r.core.StallTime()
		if fullStart < start {
			start = fullStart
		}
		// Stats are snapshotted; recycle the line storage.
		r.l1.Release()
		r.l2.Release()
		end = sim.Max(end, d)
	}
	rep.Start = start
	rep.End = end
	return rep, nil
}
