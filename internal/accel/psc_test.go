package accel

import (
	"testing"

	"dramless/internal/sim"
	"dramless/internal/workload"
)

func TestPSCLifecycle(t *testing.T) {
	p := newPSC(2)
	if p.State(0) != StateSleep {
		t.Fatal("agents must start asleep")
	}
	running, err := p.Boot(sim.Microseconds(10), 0, sim.Microseconds(5))
	if err != nil {
		t.Fatal(err)
	}
	if running != sim.Microseconds(15) {
		t.Fatalf("running at %v, want 15us", running)
	}
	if p.State(0) != StateRunning {
		t.Fatalf("state = %v", p.State(0))
	}
	if err := p.Sleep(sim.Microseconds(40), 0); err != nil {
		t.Fatal(err)
	}
	at := sim.Microseconds(100)
	if got := p.Residency(0, StateSleep, at); got != sim.Microseconds(70) {
		t.Fatalf("sleep residency = %v, want 70us (10 before boot + 60 after)", got)
	}
	if got := p.Residency(0, StateBooting, at); got != sim.Microseconds(5) {
		t.Fatalf("boot residency = %v", got)
	}
	if got := p.Residency(0, StateRunning, at); got != sim.Microseconds(25) {
		t.Fatalf("run residency = %v", got)
	}
	if p.Transitions() != 3 {
		t.Fatalf("transitions = %d", p.Transitions())
	}
}

func TestPSCIllegalTransitions(t *testing.T) {
	p := newPSC(1)
	if err := p.Sleep(0, 0); err == nil {
		t.Error("sleeping a sleeping agent accepted")
	}
	if _, err := p.Boot(0, 5, 1); err == nil {
		t.Error("out-of-range agent accepted")
	}
	if _, err := p.Boot(10, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Boot(20, 0, 1); err == nil {
		t.Error("booting a running agent accepted")
	}
	if err := p.Sleep(5, 0); err == nil {
		t.Error("time travel accepted")
	}
}

func TestPSCDrivenByRunKernel(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	rep, err := a.RunKernel(0, workload.MustByName("trisolv"), workload.Params{Scale: 32 << 10, Agents: 7})
	if err != nil {
		t.Fatal(err)
	}
	psc := a.PSC()
	for i := 0; i < a.Agents(); i++ {
		if psc.State(i) != StateSleep {
			t.Fatalf("agent %d not back asleep after the kernel", i)
		}
		if psc.Residency(i, StateRunning, rep.End) <= 0 {
			t.Fatalf("agent %d recorded no running time", i)
		}
		if psc.Residency(i, StateBooting, rep.End) != a.Config().LaunchOverhead {
			t.Fatalf("agent %d boot residency %v, want one launch",
				i, psc.Residency(i, StateBooting, rep.End))
		}
	}
	// Boot + sleep per agent.
	if psc.Transitions() != 3*a.Agents() {
		t.Fatalf("transitions = %d, want %d", psc.Transitions(), 3*a.Agents())
	}
}

func TestPSCDrivenByRunJobs(t *testing.T) {
	a := MustNew(Default(), fastBackend())
	_, err := a.RunJobs(0, []Job{smallJob("gemver", 3), smallJob("durbin", 3)})
	if err != nil {
		t.Fatal(err)
	}
	psc := a.PSC()
	booted := 0
	for i := 0; i < a.Agents(); i++ {
		if psc.State(i) != StateSleep {
			t.Fatalf("agent %d not asleep", i)
		}
		if psc.Residency(i, StateRunning, sim.Second) > 0 {
			booted++
		}
	}
	if booted != 6 {
		t.Fatalf("%d agents ran, want 6 (two 3-agent jobs)", booted)
	}
}
