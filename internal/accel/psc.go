package accel

import (
	"fmt"

	"dramless/internal/sim"
)

// PEState is one agent's power state under the power/sleep controller
// ("we designate one of PEs as a server to schedule all kernel executions
// on the agents by resuming and suspending them via a power/sleep
// controller (PSC)").
type PEState int

const (
	// StateSleep: clock-gated, waiting for a kernel (Figure 9b step 3).
	StateSleep PEState = iota
	// StateBooting: boot address stored, reboot in flight (steps 4-5).
	StateBooting
	// StateRunning: executing a kernel (step 6).
	StateRunning
)

// String implements fmt.Stringer.
func (s PEState) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateBooting:
		return "booting"
	case StateRunning:
		return "running"
	default:
		return fmt.Sprintf("PEState(%d)", int(s))
	}
}

// pscTransition is one recorded state change.
type pscTransition struct {
	agent int
	state PEState
	at    sim.Time
}

// PSC tracks every agent's power state over time. The server drives it;
// the energy model integrates the per-state residencies.
type PSC struct {
	states []PEState
	since  []sim.Time
	log    []pscTransition
	boots  int64

	// residency[agent][state] accumulates closed spans.
	residency [][3]sim.Duration
}

// newPSC returns a controller with all agents asleep at time zero.
func newPSC(agents int) *PSC {
	return &PSC{
		states:    make([]PEState, agents),
		since:     make([]sim.Time, agents),
		residency: make([][3]sim.Duration, agents),
	}
}

func (p *PSC) checkAgent(agent int) error {
	if agent < 0 || agent >= len(p.states) {
		return fmt.Errorf("accel: PSC agent %d outside 0..%d", agent, len(p.states)-1)
	}
	return nil
}

// transition closes the current span and enters the new state.
func (p *PSC) transition(at sim.Time, agent int, to PEState) error {
	if err := p.checkAgent(agent); err != nil {
		return err
	}
	if at < p.since[agent] {
		return fmt.Errorf("accel: PSC transition for agent %d at %v before %v", agent, at, p.since[agent])
	}
	p.residency[agent][p.states[agent]] += at - p.since[agent]
	p.states[agent] = to
	p.since[agent] = at
	p.log = append(p.log, pscTransition{agent: agent, state: to, at: at})
	return nil
}

// Boot moves a sleeping agent through the reboot sequence: the server has
// stored the kernel's boot entry at the agent's magic address and revokes
// it. It returns when the agent starts running (launch overhead later).
func (p *PSC) Boot(at sim.Time, agent int, launch sim.Duration) (running sim.Time, err error) {
	if err := p.checkAgent(agent); err != nil {
		return 0, err
	}
	if p.states[agent] != StateSleep {
		return 0, fmt.Errorf("accel: PSC boot of agent %d in state %v", agent, p.states[agent])
	}
	if err := p.transition(at, agent, StateBooting); err != nil {
		return 0, err
	}
	running = at + launch
	if err := p.transition(running, agent, StateRunning); err != nil {
		return 0, err
	}
	p.boots++
	return running, nil
}

// Sleep suspends a running agent (kernel complete).
func (p *PSC) Sleep(at sim.Time, agent int) error {
	if err := p.checkAgent(agent); err != nil {
		return err
	}
	if p.states[agent] != StateRunning {
		return fmt.Errorf("accel: PSC sleep of agent %d in state %v", agent, p.states[agent])
	}
	return p.transition(at, agent, StateSleep)
}

// State returns an agent's current power state.
func (p *PSC) State(agent int) PEState { return p.states[agent] }

// Residency returns how long the agent has spent in state, including the
// open span up to `at`.
func (p *PSC) Residency(agent int, state PEState, at sim.Time) sim.Duration {
	d := p.residency[agent][state]
	if p.states[agent] == state && at > p.since[agent] {
		d += at - p.since[agent]
	}
	return d
}

// Transitions returns how many state changes have been recorded.
func (p *PSC) Transitions() int { return len(p.log) }

// Boots returns how many reboot sequences completed (the PSC-reboot
// observability counter: each kernel launch reboots its agents).
func (p *PSC) Boots() int64 { return p.boots }
