package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetMemoizes(t *testing.T) {
	var calls atomic.Int64
	r := New(4, func(k int) (int, error) {
		calls.Add(1)
		return k * 10, nil
	})
	for i := 0; i < 3; i++ {
		v, err := r.Get(7)
		if err != nil {
			t.Fatal(err)
		}
		if v != 70 {
			t.Fatalf("Get(7) = %d, want 70", v)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fn called %d times, want 1", calls.Load())
	}
	st := r.Stats()
	if st.Runs != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want Runs=1 Hits=2", st)
	}
}

func TestConcurrentGetsCoalesce(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	r := New(4, func(k string) (string, error) {
		calls.Add(1)
		<-gate
		return k + "!", nil
	})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := r.Get("x")
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every waiter attach to the in-flight cell, then release it.
	deadline := time.After(5 * time.Second)
	for r.Stats().Coalesced < waiters-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d coalesced, want %d", r.Stats().Coalesced, waiters-1)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn called %d times for one key, want 1", calls.Load())
	}
	for i, v := range results {
		if v != "x!" {
			t.Fatalf("waiter %d got %q", i, v)
		}
	}
	st := r.Stats()
	if st.Runs != 1 || st.Coalesced != waiters-1 {
		t.Fatalf("stats = %+v, want Runs=1 Coalesced=%d", st, waiters-1)
	}
}

func TestErrorPropagatesWithoutWedgingPool(t *testing.T) {
	boom := errors.New("cell failed")
	r := New(2, func(k int) (int, error) {
		if k == 13 {
			return 0, boom
		}
		return k, nil
	})

	// The failing cell reports its error to every requester...
	for i := 0; i < 2; i++ {
		if _, err := r.Get(13); !errors.Is(err, boom) {
			t.Fatalf("Get(13) err = %v, want %v", err, boom)
		}
	}
	// ...and the error is cached, not re-run.
	if st := r.Stats(); st.Runs != 1 || st.Hits != 1 {
		t.Fatalf("stats after failures = %+v, want Runs=1 Hits=1", st)
	}
	// The pool still serves other keys afterwards.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if v, err := r.Get(i); err != nil || v != i {
				t.Errorf("Get(%d) = %d, %v", i, v, err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool wedged after a failing cell")
	}
}

func TestPanicBecomesError(t *testing.T) {
	r := New(2, func(k string) (int, error) {
		panic("kernel exploded")
	})
	r.Prefetch("a") // a panicking prefetch goroutine must not crash the process
	_, err := r.Get("a")
	if err == nil || !strings.Contains(err.Error(), "kernel exploded") {
		t.Fatalf("err = %v, want wrapped panic", err)
	}
	// Other work proceeds.
	r2 := New(2, func(k string) (int, error) { return len(k), nil })
	if v, _ := r2.Get("ok"); v != 2 {
		t.Fatalf("follow-up Get = %d", v)
	}
}

func TestWorkerBoundRespected(t *testing.T) {
	const bound = 2
	var inFlight, peak atomic.Int64
	r := New(bound, func(k int) (int, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		return k, nil
	})
	r.Prefetch(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	for i := 0; i < 10; i++ {
		if _, err := r.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > bound {
		t.Fatalf("observed %d concurrent runs, bound is %d", p, bound)
	}
	if st := r.Stats(); st.Runs != 10 {
		t.Fatalf("stats = %+v, want Runs=10", st)
	}
}

func TestPrefetchDoesNotDoubleCount(t *testing.T) {
	r := New(4, func(k int) (int, error) { return k, nil })
	if _, err := r.Get(1); err != nil {
		t.Fatal(err)
	}
	r.Prefetch(1, 1, 2) // 1 is cached: no hit bump; 2 starts once
	if _, err := r.Get(2); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Runs != 2 || st.Hits > 1 {
		t.Fatalf("stats = %+v, want Runs=2 and at most one hit", st)
	}
}

func TestDefaultWorkersAndString(t *testing.T) {
	r := New[int, int](0, func(k int) (int, error) { return k, nil })
	if r.Workers() < 1 {
		t.Fatalf("Workers() = %d", r.Workers())
	}
	s := Stats{Runs: 3, Hits: 2, Coalesced: 1, Workers: 4}.String()
	want := "3 simulations, 2 cache hits, 1 coalesced, 4 workers"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}

func ExampleRunner_Get() {
	r := New(2, func(k int) (int, error) { return k * k, nil })
	v, _ := r.Get(6)
	fmt.Println(v)
	// Output: 36
}
