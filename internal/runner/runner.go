// Package runner provides the parallel run engine behind the experiment
// harness: a concurrency-safe, deduplicating result cache over a bounded
// worker pool. Each distinct key is computed exactly once
// (singleflight); concurrent requests for an in-flight key coalesce onto
// the same computation, and distinct keys execute on at most Workers
// goroutines at a time.
//
// The runner parallelizes *across* independent computations only - each
// computation itself stays single-goroutine - so a deterministic
// function stays deterministic under any worker count: the cache returns
// the same value for a key no matter which worker produced it or in what
// order requests arrived.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats is the engine's cache and pool accounting.
type Stats struct {
	// Runs counts distinct keys actually computed (cache misses).
	Runs int64
	// Hits counts requests served from an already-completed cell.
	Hits int64
	// Coalesced counts requests that attached to an in-flight
	// computation instead of starting their own.
	Coalesced int64
	// Workers is the pool bound.
	Workers int
}

// cell is one memoized computation.
type cell[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// Runner is a deduplicating cache over a bounded worker pool. The zero
// value is not usable; construct with New.
type Runner[K comparable, V any] struct {
	fn  func(K) (V, error)
	sem chan struct{}

	mu    sync.Mutex
	cells map[K]*cell[V]

	runs      atomic.Int64
	hits      atomic.Int64
	coalesced atomic.Int64
}

// New builds a runner computing values with fn on at most workers
// concurrent goroutines. workers <= 0 selects GOMAXPROCS.
func New[K comparable, V any](workers int, fn func(K) (V, error)) *Runner[K, V] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner[K, V]{
		fn:    fn,
		sem:   make(chan struct{}, workers),
		cells: map[K]*cell[V]{},
	}
}

// Workers returns the pool bound.
func (r *Runner[K, V]) Workers() int { return cap(r.sem) }

// lookup returns the cell for key, creating it if absent. started
// reports whether the caller owns the computation. count selects whether
// a pre-existing cell bumps the hit/coalesced counters (Get) or not
// (Prefetch, which is advisory).
func (r *Runner[K, V]) lookup(key K, count bool) (c *cell[V], started bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cells[key]; ok {
		if count {
			select {
			case <-c.done:
				r.hits.Add(1)
			default:
				r.coalesced.Add(1)
			}
		}
		return c, false
	}
	c = &cell[V]{done: make(chan struct{})}
	r.cells[key] = c
	r.runs.Add(1)
	return c, true
}

// exec computes one owned cell under the pool bound. A panicking fn is
// captured as the cell's error so a bad run cannot wedge the pool or
// kill an unrelated goroutine; the worker slot and the done channel are
// released no matter how fn exits.
func (r *Runner[K, V]) exec(key K, c *cell[V]) {
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	defer close(c.done)
	defer func() {
		if p := recover(); p != nil {
			c.err = fmt.Errorf("runner: panic computing %v: %v", key, p)
		}
	}()
	c.val, c.err = r.fn(key)
}

// Get returns the value for key, computing it at most once across all
// callers. Concurrent Gets of the same key share one computation; the
// calling goroutine counts against the worker bound while it computes.
func (r *Runner[K, V]) Get(key K) (V, error) {
	c, started := r.lookup(key, true)
	if started {
		r.exec(key, c)
	}
	<-c.done
	return c.val, c.err
}

// Prefetch starts computing keys in the background without waiting.
// Keys already cached or in flight are skipped (and not counted as
// hits). A later Get picks up the finished or in-flight result.
func (r *Runner[K, V]) Prefetch(keys ...K) {
	for _, key := range keys {
		if c, started := r.lookup(key, false); started {
			go r.exec(key, c)
		}
	}
}

// Stats returns a snapshot of the cache and pool accounting.
func (r *Runner[K, V]) Stats() Stats {
	return Stats{
		Runs:      r.runs.Load(),
		Hits:      r.hits.Load(),
		Coalesced: r.coalesced.Load(),
		Workers:   r.Workers(),
	}
}

// String renders the snapshot for the CLI's engine report.
func (s Stats) String() string {
	return fmt.Sprintf("%d simulations, %d cache hits, %d coalesced, %d workers",
		s.Runs, s.Hits, s.Coalesced, s.Workers)
}
