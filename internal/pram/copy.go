package pram

import "sync"

// segPool recycles row-segment slabs across simulation runs. Forking a
// checkpointed prefix deep-copies every materialized segment of every
// module; without recycling, each of the suite's hundreds of forked
// cells would re-allocate the full segment population just to drop it at
// the end of the run. Released segments come back stale and are zeroed
// on acquisition (the zero value is "pristine"), so pooled and fresh
// segments are indistinguishable. The mutex makes the pool safe under
// the experiment engine's worker pool.
var segPool = struct {
	mu    sync.Mutex
	byGeo map[Geometry][]*rowSeg
}{byGeo: map[Geometry][]*rowSeg{}}

// pooledSeg returns a recycled segment for geometry g, or nil when the
// pool is empty. The segment's slabs hold stale bytes; callers must zero
// them (newSeg) or overwrite them entirely (Module.CopyFrom).
func pooledSeg(g Geometry) *rowSeg {
	segPool.mu.Lock()
	defer segPool.mu.Unlock()
	list := segPool.byGeo[g]
	n := len(list)
	if n == 0 {
		return nil
	}
	s := list[n-1]
	list[n-1] = nil
	segPool.byGeo[g] = list[:n-1]
	return s
}

// zero restores the pristine zero-value state of every slab.
func (s *rowSeg) zero() {
	for i := range s.data {
		s.data[i] = 0
	}
	for i := range s.state {
		s.state[i] = 0
	}
	for i := range s.written {
		s.written[i] = false
	}
	for i := range s.lastProg {
		s.lastProg[i] = 0
	}
	for i := range s.lastRead {
		s.lastRead[i] = 0
	}
}

// Release returns every materialized segment to the pool and detaches
// them from the module. Call only when the module's contents are no
// longer needed (end of a run whose results have been collected).
func (m *Module) Release() {
	if len(m.segs) == 0 {
		m.memoSeg, m.memoID = nil, 0
		return
	}
	segPool.mu.Lock()
	list := segPool.byGeo[m.geo]
	for id, s := range m.segs {
		list = append(list, s)
		delete(m.segs, id)
	}
	segPool.byGeo[m.geo] = list
	segPool.mu.Unlock()
	m.memoSeg, m.memoID = nil, 0
}

// CopyFrom clones src's complete device state into m: protocol-tracker
// and buffer-pair state, overlay-window registers, array contents (deep
// copies via the segment pool), partition timelines, program-buffer and
// boot state, and activity counters. The DQ bus is NOT copied — packages
// on one channel share the channel's bus resource, which the channel
// copies exactly once. Construction-time wiring (pause hook, pausing
// flag, instruments) is also left to the fresh construction both sides
// went through.
func (m *Module) CopyFrom(src *Module) {
	m.par = src.par // MRW mutates BurstLen during boot
	m.track.CopyFrom(src.track)
	m.rabValid = src.rabValid
	m.rabUpper = src.rabUpper
	m.rdbValid = src.rdbValid
	m.rdbRow = src.rdbRow
	m.rdbWindow = src.rdbWindow
	for i := range m.rdbData {
		copy(m.rdbData[i], src.rdbData[i])
	}
	*m.ow = *src.ow
	m.Release()
	for id, s := range src.segs {
		ns := pooledSeg(m.geo)
		if ns == nil {
			ns = newSeg(m.geo)
		}
		copy(ns.data, s.data)
		copy(ns.state, s.state)
		copy(ns.written, s.written)
		copy(ns.lastProg, s.lastProg)
		copy(ns.lastRead, s.lastRead)
		m.segs[id] = ns
	}
	for i := range m.partitions {
		m.partitions[i].CopyFrom(src.partitions[i])
	}
	m.busyUntil = src.busyUntil
	m.bufFreeAt = src.bufFreeAt
	m.boot = src.boot
	copy(m.progEndPart, src.progEndPart)
	m.pauses = src.pauses
	m.stats = src.stats
}
