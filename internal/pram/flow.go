package pram

import (
	"fmt"

	"dramless/internal/sim"
)

// This file implements the canonical overlay-window command flows the
// FPGA translator performs (Section V-B): every step is a real
// three-phase-addressed burst against the window, so the flows exercise
// exactly the protocol a hardware controller would.

// windowRowFor returns the window-relative row/column of offset off and
// activates the window row on buffer pair ba if it is not already bound.
func (m *Module) activateWindowRow(at sim.Time, ba uint8, off uint64) (done sim.Time, col int, err error) {
	addr := m.ow.base + off
	rowAddr := m.geo.RowOf(addr)
	col = m.geo.ColOf(addr)
	if m.rdbValid[ba] && m.rdbWindow[ba] && m.rdbRow[ba] == rowAddr {
		return at, col, nil // phase skip: window row already bound
	}
	upper, lower := m.geo.SplitRow(rowAddr)
	done = at
	if !m.rabValid[ba] || m.rabUpper[ba] != upper {
		if done, err = m.Preactive(done, ba, upper); err != nil {
			return 0, 0, err
		}
	}
	if done, err = m.Activate(done, ba, lower); err != nil {
		return 0, 0, err
	}
	return done, col, nil
}

// writeWindow writes data at window offset off via write-phase bursts,
// splitting at row boundaries.
func (m *Module) writeWindow(at sim.Time, ba uint8, off uint64, data []byte) (done sim.Time, err error) {
	done = at
	for len(data) > 0 {
		var col int
		done, col, err = m.activateWindowRow(done, ba, off)
		if err != nil {
			return 0, err
		}
		n := m.geo.RowBytes - col
		if n > len(data) {
			n = len(data)
		}
		if done, err = m.WriteBurst(done, ba, col, data[:n]); err != nil {
			return 0, err
		}
		data = data[n:]
		off += uint64(n)
	}
	return done, nil
}

// WindowWrite writes data at overlay-window offset off through the
// regular three-phase protocol (activating window rows on buffer pair ba
// as needed, phase-skipping when the row is already bound). Controllers
// use it to drive custom flows; bursts covering RegExec start the staged
// operation.
func (m *Module) WindowWrite(at sim.Time, ba uint8, off uint64, data []byte) (done sim.Time, err error) {
	return m.writeWindow(at, ba, off, data)
}

// ProgramHeader returns the register-row image a controller bursts to
// OWBA+RegCode to stage a program of n bytes at rowAddr: command code,
// target address and burst size in one write, with reserved gaps zero.
func ProgramHeader(rowAddr uint64, n int) []byte {
	hdr := make([]byte, RegMulti+2-RegCode)
	hdr[0] = CmdProgram
	for i := 0; i < 4; i++ {
		hdr[RegAddr-RegCode+i] = byte(rowAddr >> (8 * i))
	}
	hdr[RegMulti-RegCode] = byte(n)
	hdr[RegMulti-RegCode+1] = byte(n >> 8)
	return hdr
}

// ProgramRow performs the complete overlay-window program flow for one
// row: stage the command code, the target row address and the burst size
// in the window registers, fill the program buffer, then touch the
// execute register. It returns when the execute burst completes; the
// array program itself runs asynchronously (poll BusyUntil / RegStatus).
func (m *Module) ProgramRow(at sim.Time, ba uint8, rowAddr uint64, data []byte) (done sim.Time, err error) {
	if err := m.geo.CheckRow(rowAddr); err != nil {
		return 0, err
	}
	if len(data) == 0 || len(data) > m.geo.RowBytes {
		return 0, fmt.Errorf("pram: program of %d bytes outside 1..%d", len(data), m.geo.RowBytes)
	}
	if len(data)%m.geo.WordBytes != 0 {
		return 0, fmt.Errorf("pram: program size %d not word-aligned", len(data))
	}
	if rowAddr > 0xFFFFFFFF {
		return 0, fmt.Errorf("pram: row %#x exceeds the 32-bit address register", rowAddr)
	}

	// 1. command code, target row address and burst size in one
	//    register-row burst (RegCode..RegMulti share a 32 B row; the
	//    reserved gaps ignore writes).
	done, err = m.writeWindow(at, ba, RegCode, ProgramHeader(rowAddr, len(data)))
	if err != nil {
		return 0, err
	}
	// 2. data -> program buffer (0x800+)
	if done, err = m.writeWindow(done, ba, ProgBufOffset, data); err != nil {
		return 0, err
	}
	// 3. execute -> RegExec (0xC0)
	if done, err = m.writeWindow(done, ba, RegExec, []byte{1}); err != nil {
		return 0, err
	}
	return done, nil
}

// EraseSegment performs the overlay-window erase flow for the segment
// containing rowAddr. The data path never uses this (60 ms block); it
// exists for management operations and tests.
func (m *Module) EraseSegment(at sim.Time, ba uint8, rowAddr uint64) (done sim.Time, err error) {
	if err := m.geo.CheckRow(rowAddr); err != nil {
		return 0, err
	}
	done, err = m.writeWindow(at, ba, RegCode, []byte{CmdErase})
	if err != nil {
		return 0, err
	}
	addrBytes := []byte{byte(rowAddr), byte(rowAddr >> 8), byte(rowAddr >> 16), byte(rowAddr >> 24)}
	if done, err = m.writeWindow(done, ba, RegAddr, addrBytes); err != nil {
		return 0, err
	}
	if done, err = m.writeWindow(done, ba, RegExec, []byte{1}); err != nil {
		return 0, err
	}
	return done, nil
}

// PollStatus reads the status register via the window until it reports
// ready, charging one read burst per poll at the given interval, and
// returns the time the ready value was observed. It gives up after
// maxPolls to keep bugs from hanging a simulation.
func (m *Module) PollStatus(at sim.Time, ba uint8, interval sim.Duration, maxPolls int) (ready sim.Time, err error) {
	if interval <= 0 {
		return 0, fmt.Errorf("pram: poll interval must be positive")
	}
	t := at
	for i := 0; i < maxPolls; i++ {
		done, col, err := m.activateWindowRow(t, ba, RegStatus)
		if err != nil {
			return 0, err
		}
		data, done, err := m.ReadBurst(done, ba, col, 1)
		if err != nil {
			return 0, err
		}
		if data[0] == StatusReady {
			return done, nil
		}
		t = done + interval
	}
	return 0, fmt.Errorf("pram: device still busy after %d status polls", maxPolls)
}
