package pram

import (
	"bytes"
	"testing"
)

// TestCopyFromReusesSegments pins the checkpoint-fork allocation
// contract: once the segment pool is warm, cloning a module's array
// contents draws every row segment from the pool instead of allocating.
// The experiment engine forks hundreds of cells per suite run; a
// regression here silently turns every fork back into a full slab
// re-allocation.
func TestCopyFromReusesSegments(t *testing.T) {
	src := testModule(t)
	row := make([]byte, src.Geometry().RowBytes)
	for i := range row {
		row[i] = byte(i*7 + 1)
	}
	// Materialize several segments' worth of rows in the source.
	for r := uint64(0); r < 4; r++ {
		if err := src.LoadRow(r*segRows, row); err != nil {
			t.Fatal(err)
		}
	}

	dst := testModule(t)
	dst.CopyFrom(src) // warm-up: may allocate segments into the pool cycle

	allocs := testing.AllocsPerRun(20, func() {
		// Each cycle releases dst's segments to the pool and immediately
		// draws them back; steady state must not touch the heap.
		dst.CopyFrom(src)
	})
	if allocs > 0 {
		t.Fatalf("CopyFrom allocated %.1f objects/run with a warm segment pool; want 0", allocs)
	}

	got, _ := readRow(t, dst, 0, 3*segRows)
	if !bytes.Equal(got, row) {
		t.Fatal("CopyFrom did not preserve row contents")
	}
}
