// Package pram models the 3x nm multi-partition phase-change memory
// module at the heart of DRAM-less: real data storage with SET/RESET cell
// state, multiple row-buffer pairs (RAB/RDB), the program buffer reached
// through the overlay-window register file, multi-partition array
// parallelism, and LPDDR2-NVM three-phase addressing with the Table II
// timing. The model is both functional (bytes written are bytes read) and
// timed (every operation reserves the hardware resources it would occupy).
package pram

import (
	"fmt"
	"math/bits"

	"dramless/internal/lpddr"
	"dramless/internal/sim"
)

// Geometry fixes the address layout of one PRAM module.
//
// A module stores RowsPerModule rows of RowBytes bytes. The 256-bit row
// (32 B) is the unit the multi-partition bank senses into an RDB and the
// unit the program buffer writes back. Rows stripe across partitions on
// their low address bits (the dual-wordline block layout of Figure 3b),
// so sequential rows land on different partitions and can be interleaved.
//
// A full row address is delivered in two pieces per three-phase
// addressing: the low LowerBits go with ACTIVATE, the remaining upper
// bits are stored in a RAB by PREACTIVE.
type Geometry struct {
	// RowBytes is the row width: 32 B (256-bit parallel bank I/O).
	RowBytes int
	// RowsPerModule is the number of rows the module stores.
	RowsPerModule uint64
	// Partitions is the array partition count (16).
	Partitions int
	// LowerBits is how many row-address bits ride with the ACTIVATE
	// command; the rest must come from the selected RAB.
	LowerBits int
	// WordBytes is the program unit: selective erasing resets one word at
	// a time (4 B in this model).
	WordBytes int
	// EraseRows is how many rows a bulk erase clears at once. Erase
	// resets "a large number of cells (greater than cells in a program
	// unit)" - we model a 64-row erase segment.
	EraseRows int

	// Sub-partition structure (Figure 3b). These do not change request
	// timing - the 256-bit bank I/O already aggregates them - but fix the
	// physical decomposition a row maps onto.

	// TilesPerPartition is the resistive tile count per partition (64).
	TilesPerPartition int
	// TileBLs and TileWLs are each tile's bitline and wordline counts
	// (2048 x 4096 PRAM cores).
	TileBLs int
	TileWLs int
}

// DefaultGeometry matches the paper's device: 32 B rows, 16 partitions,
// 14 lower row-address bits, 4 M rows (128 MiB) per module so the
// 2-channel x 16-package subsystem totals 4 GiB.
func DefaultGeometry() Geometry {
	return Geometry{
		RowBytes:          32,
		RowsPerModule:     1 << 22,
		Partitions:        16,
		LowerBits:         14,
		WordBytes:         4,
		EraseRows:         64,
		TilesPerPartition: 64,
		TileBLs:           2048,
		TileWLs:           4096,
	}
}

// Validate reports descriptive errors for unusable geometries.
func (g Geometry) Validate() error {
	switch {
	case g.RowBytes <= 0 || g.RowBytes&(g.RowBytes-1) != 0:
		return fmt.Errorf("pram: RowBytes must be a positive power of two, got %d", g.RowBytes)
	case g.RowsPerModule == 0 || g.RowsPerModule&(g.RowsPerModule-1) != 0:
		return fmt.Errorf("pram: RowsPerModule must be a positive power of two, got %d", g.RowsPerModule)
	case g.Partitions <= 0 || g.Partitions&(g.Partitions-1) != 0:
		return fmt.Errorf("pram: Partitions must be a positive power of two, got %d", g.Partitions)
	case g.LowerBits <= 0 || g.LowerBits > 14:
		return fmt.Errorf("pram: LowerBits must be 1..14 (ACTIVATE address field), got %d", g.LowerBits)
	case g.WordBytes <= 0 || g.RowBytes%g.WordBytes != 0:
		return fmt.Errorf("pram: WordBytes %d must divide RowBytes %d", g.WordBytes, g.RowBytes)
	case g.EraseRows <= 0:
		return fmt.Errorf("pram: EraseRows must be positive, got %d", g.EraseRows)
	}
	if upper := g.rowBits() - g.LowerBits; upper > 14 {
		return fmt.Errorf("pram: %d upper row bits exceed the 14-bit RAB field (reduce RowsPerModule)", upper)
	}
	switch {
	case g.TilesPerPartition <= 0 || g.TilesPerPartition%2 != 0:
		return fmt.Errorf("pram: TilesPerPartition must be positive and even (two half partitions), got %d", g.TilesPerPartition)
	case g.TileBLs <= 0 || g.TileWLs <= 0:
		return fmt.Errorf("pram: tile dimensions must be positive (%d x %d)", g.TileBLs, g.TileWLs)
	}
	return nil
}

// TileAddress is the sub-partition decomposition of one row (Figure 3b):
// which partition serves it, which half partition (each with its own
// local Y-decoder), which dual-wordline block and tile within that half,
// and the wordline inside the tile. The 256-bit row senses through both
// halves at once - "64 I/O operations per half partition ... a 128-bit
// parallel data access for each partition" per half.
type TileAddress struct {
	Partition     int
	HalfPartition int // 0 or 1
	Block         int // dual-WL scheme groups every two tiles
	Tile          int // tile within the half partition
	Wordline      int
}

// Decompose maps a row address onto the tile structure. Rows spread over
// the partition's wordlines first (a wordline holds one row slice in
// every tile of the half), then wrap.
func (g Geometry) Decompose(rowAddr uint64) (TileAddress, error) {
	if err := g.CheckRow(rowAddr); err != nil {
		return TileAddress{}, err
	}
	tilesPerHalf := g.TilesPerPartition / 2
	inPart := rowAddr / uint64(g.Partitions) // row index within the partition
	wl := int(inPart % uint64(g.TileWLs))
	beyond := int(inPart / uint64(g.TileWLs))
	tile := beyond % tilesPerHalf
	return TileAddress{
		Partition:     g.PartitionOf(rowAddr),
		HalfPartition: beyond / tilesPerHalf % 2,
		Block:         tile / 2,
		Tile:          tile,
		Wordline:      wl,
	}, nil
}

// CellsPerPartition returns the PRAM core count one partition holds.
func (g Geometry) CellsPerPartition() int64 {
	return int64(g.TilesPerPartition) * int64(g.TileBLs) * int64(g.TileWLs)
}

func (g Geometry) rowBits() int { return bits.Len64(g.RowsPerModule - 1) }

// Size returns the module capacity in bytes.
func (g Geometry) Size() uint64 { return g.RowsPerModule * uint64(g.RowBytes) }

// WordsPerRow returns how many program units one row holds.
func (g Geometry) WordsPerRow() int { return g.RowBytes / g.WordBytes }

// RowOf returns the row address containing byte address addr.
func (g Geometry) RowOf(addr uint64) uint64 { return addr / uint64(g.RowBytes) }

// ColOf returns the byte offset of addr within its row.
func (g Geometry) ColOf(addr uint64) int { return int(addr % uint64(g.RowBytes)) }

// PartitionOf returns the partition serving the given row. Rows stripe
// across partitions on their low bits.
func (g Geometry) PartitionOf(row uint64) int { return int(row % uint64(g.Partitions)) }

// SplitRow splits a full row address into the upper part (stored in a RAB
// by PREACTIVE) and the lower part (delivered with ACTIVATE).
func (g Geometry) SplitRow(row uint64) (upper, lower uint32) {
	return uint32(row >> g.LowerBits), uint32(row & (1<<g.LowerBits - 1))
}

// JoinRow recomposes a full row address from its parts, as the device's
// row decoder does during the activate phase.
func (g Geometry) JoinRow(upper, lower uint32) uint64 {
	return uint64(upper)<<g.LowerBits | uint64(lower)
}

// EraseBase returns the first row of the erase segment containing row.
func (g Geometry) EraseBase(row uint64) uint64 {
	return row - row%uint64(g.EraseRows)
}

// CheckRow returns an error when row is outside the module.
func (g Geometry) CheckRow(row uint64) error {
	if row >= g.RowsPerModule {
		return fmt.Errorf("pram: row %#x outside module (%#x rows)", row, g.RowsPerModule)
	}
	return nil
}

// Row storage is segmented: segRows consecutive rows share one lazily
// allocated rowSeg whose slabs hold data, per-word cell state and the
// per-row program/read timestamps. Keying storage per segment instead of
// per 32 B row keeps the map three orders of magnitude smaller, and the
// module's one-entry segment memo turns the sequential row streams the
// datapath produces into plain array indexing (the per-row map was the
// top non-copy cost of the whole suite once the caches stopped
// allocating).
const (
	segBits = 8 // 256 rows (8 KiB of data) per segment
	segRows = 1 << segBits
	segMask = segRows - 1
)

// rowSeg is the storage of segRows consecutive rows. All slabs use the
// Go zero value as "pristine": data reads back zero and state is
// lpddr.CellFresh until a program or LoadRow marks the row written.
type rowSeg struct {
	data     []byte            // segRows * RowBytes
	state    []lpddr.CellState // segRows * WordsPerRow
	written  []bool            // per row: ever programmed or loaded
	lastProg []sim.Time        // per row: last program completion
	lastRead []sim.Time        // per row: last array activation
}

func newSeg(g Geometry) *rowSeg {
	if s := pooledSeg(g); s != nil {
		s.zero()
		return s
	}
	return &rowSeg{
		data:     make([]byte, segRows*g.RowBytes),
		state:    make([]lpddr.CellState, segRows*g.WordsPerRow()),
		written:  make([]bool, segRows),
		lastProg: make([]sim.Time, segRows),
		lastRead: make([]sim.Time, segRows),
	}
}

// rowData returns the data slab of row idx within the segment.
func (s *rowSeg) rowData(idx, rowBytes int) []byte {
	return s.data[idx*rowBytes : (idx+1)*rowBytes]
}

// rowState returns the per-word cell states of row idx within the segment.
func (s *rowSeg) rowState(idx, wordsPerRow int) []lpddr.CellState {
	return s.state[idx*wordsPerRow : (idx+1)*wordsPerRow]
}
