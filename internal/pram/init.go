package pram

import (
	"fmt"

	"dramless/internal/lpddr"
	"dramless/internal/sim"
)

// Mode registers the initializer programs during boot-up (Section V-B:
// "the initializer handles all PRAMs' boot-up process by enabling auto
// initialization, calibrating on-die impedance tasks and setting up the
// burst length and overlay window address").
const (
	MRAutoInit    = 0x00 // writing 1 starts device auto-initialization
	MRZQCalibrate = 0x01 // on-die impedance calibration
	MRBurstLen    = 0x02 // burst length: 4, 8 or 16
	MROWBA0       = 0x03 // OWBA row address, bits [7:0]
	MROWBA1       = 0x04 // OWBA row address, bits [15:8]
	MROWBA2       = 0x05 // OWBA row address, bits [23:16]
	MROWBA3       = 0x06 // OWBA row address, bits [31:24]
	MRStatus      = 0x07 // MRR: device ready flag
)

// Boot-time latencies. Auto-initialization and ZQ calibration are one-off
// costs during power-up and do not affect steady-state results.
const (
	autoInitTime = 150 * sim.Microsecond
	zqCalTime    = 50 * sim.Microsecond
	mrwTime      = 4 * sim.Nanosecond
)

// initState tracks boot progress for MRR(MRStatus).
type initState struct {
	owbaRow  uint32
	readyAt  sim.Time
	booted   bool
	burstSet bool
}

// ModeRegisterWrite applies an MRW command at time at and returns when the
// register update (or triggered calibration) completes.
func (m *Module) ModeRegisterWrite(at sim.Time, reg uint32, val uint8) (done sim.Time, err error) {
	if err := m.observe(lpddr.Command{Op: lpddr.OpMRW, Addr: reg}); err != nil {
		return 0, err
	}
	switch reg {
	case MRAutoInit:
		m.boot.readyAt = at + autoInitTime
		m.boot.booted = true
		return m.boot.readyAt, nil
	case MRZQCalibrate:
		m.boot.readyAt = sim.Max(m.boot.readyAt, at+zqCalTime)
		return m.boot.readyAt, nil
	case MRBurstLen:
		switch val {
		case 4, 8, 16:
			m.par.BurstLen = int(val)
			m.boot.burstSet = true
		default:
			return 0, fmt.Errorf("pram: MRW burst length %d not in {4,8,16}", val)
		}
	case MROWBA0, MROWBA1, MROWBA2, MROWBA3:
		sh := (reg - MROWBA0) * 8
		m.boot.owbaRow = m.boot.owbaRow&^(0xFF<<sh) | uint32(val)<<sh
		if reg == MROWBA3 {
			base := uint64(m.boot.owbaRow) * uint64(m.geo.RowBytes)
			if err := m.SetOWBA(base); err != nil {
				return 0, err
			}
		}
	default:
		return 0, fmt.Errorf("pram: MRW to unknown mode register %#x", reg)
	}
	return at + mrwTime, nil
}

// ModeRegisterRead returns the value of a mode register at time at.
func (m *Module) ModeRegisterRead(at sim.Time, reg uint32) (val uint8, done sim.Time, err error) {
	if err := m.observe(lpddr.Command{Op: lpddr.OpMRR, Addr: reg}); err != nil {
		return 0, 0, err
	}
	switch reg {
	case MRStatus:
		if m.boot.booted && at >= m.boot.readyAt {
			return StatusReady, at + mrwTime, nil
		}
		return StatusBusy, at + mrwTime, nil
	case MRBurstLen:
		return uint8(m.par.BurstLen), at + mrwTime, nil
	default:
		return 0, 0, fmt.Errorf("pram: MRR from unsupported mode register %#x", reg)
	}
}

// Ready reports whether boot completed by time at.
func (m *Module) Ready(at sim.Time) bool { return m.boot.booted && at >= m.boot.readyAt }
