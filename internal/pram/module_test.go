package pram

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"dramless/internal/lpddr"
	"dramless/internal/sim"
)

func testModule(t *testing.T) *Module {
	t.Helper()
	geo := DefaultGeometry()
	geo.RowsPerModule = 1 << 16 // small module keeps tests fast
	m, err := NewModule(geo, lpddr.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// readRow performs a full three-phase row read at time at.
func readRow(t *testing.T, m *Module, at sim.Time, rowAddr uint64) ([]byte, sim.Time) {
	t.Helper()
	upper, lower := m.Geometry().SplitRow(rowAddr)
	done, err := m.Preactive(at, 0, upper)
	if err != nil {
		t.Fatal(err)
	}
	done, err = m.Activate(done, 0, lower)
	if err != nil {
		t.Fatal(err)
	}
	data, done, err := m.ReadBurst(done, 0, 0, m.Geometry().RowBytes)
	if err != nil {
		t.Fatal(err)
	}
	return data, done
}

// programRow drives the full overlay-window write flow the FPGA
// translator performs: stage registers, fill the program buffer, execute.
func programRow(t *testing.T, m *Module, at sim.Time, rowAddr uint64, data []byte) sim.Time {
	t.Helper()
	done, err := m.ProgramRow(at, 1, rowAddr, data)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := []func(*Geometry){
		func(g *Geometry) { g.RowBytes = 33 },
		func(g *Geometry) { g.RowsPerModule = 3 },
		func(g *Geometry) { g.Partitions = 0 },
		func(g *Geometry) { g.LowerBits = 15 },
		func(g *Geometry) { g.WordBytes = 5 },
		func(g *Geometry) { g.EraseRows = 0 },
		func(g *Geometry) { g.RowsPerModule = 1 << 40 }, // upper bits overflow RAB field
	}
	for i, mutate := range bad {
		g := DefaultGeometry()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: bad geometry accepted", i)
		}
	}
}

func TestGeometrySplitJoinRow(t *testing.T) {
	g := DefaultGeometry()
	f := func(r uint32) bool {
		rowAddr := uint64(r) % g.RowsPerModule
		up, lo := g.SplitRow(rowAddr)
		return g.JoinRow(up, lo) == rowAddr && lo < 1<<g.LowerBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryPartitionStriping(t *testing.T) {
	g := DefaultGeometry()
	// Consecutive rows must land on different partitions so the
	// interleaving scheduler has parallelism to exploit.
	seen := map[int]bool{}
	for rowAddr := uint64(0); rowAddr < uint64(g.Partitions); rowAddr++ {
		seen[g.PartitionOf(rowAddr)] = true
	}
	if len(seen) != g.Partitions {
		t.Fatalf("first %d rows cover %d partitions, want all", g.Partitions, len(seen))
	}
}

func TestWriteThenReadBack(t *testing.T) {
	m := testModule(t)
	want := make([]byte, 32)
	for i := range want {
		want[i] = byte(i*7 + 1)
	}
	done := programRow(t, m, 0, 42, want)
	got, _ := readRow(t, m, done, 42)
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %x, want %x", got, want)
	}
}

func TestUnwrittenRowsReadZero(t *testing.T) {
	m := testModule(t)
	got, _ := readRow(t, m, 0, 100)
	for _, b := range got {
		if b != 0 {
			t.Fatalf("unwritten row returned %x", got)
		}
	}
}

func TestReadLatencyMatchesPaper(t *testing.T) {
	m := testModule(t)
	_, done := readRow(t, m, 0, 7)
	// Three-phase read: tRP + tRCD + RL + tDQSCK + tBURST ~ 126.5 ns with
	// Table II values; the paper rounds this to "around 100 ns".
	if done < sim.Nanoseconds(100) || done > sim.Nanoseconds(150) {
		t.Fatalf("three-phase read latency = %v, want ~100-150ns", done)
	}
	if done != m.Params().RowReadLatency() {
		t.Fatalf("latency %v != derived RowReadLatency %v", done, m.Params().RowReadLatency())
	}
}

func TestFreshWriteLatency(t *testing.T) {
	m := testModule(t)
	data := bytes.Repeat([]byte{0xAB}, 32)
	start := sim.Time(0)
	programRow(t, m, start, 5, data)
	busy := m.BusyUntil()
	// Array program dominates: ~10 us for fresh cells.
	if busy < sim.Microseconds(9) || busy > sim.Microseconds(12) {
		t.Fatalf("fresh program completes at %v, want ~10us", busy)
	}
}

func TestOverwriteCostsResetPlusSet(t *testing.T) {
	m := testModule(t)
	data := bytes.Repeat([]byte{0x11}, 32)
	d1 := programRow(t, m, 0, 9, data)
	firstBusy := m.BusyUntil()
	data2 := bytes.Repeat([]byte{0x22}, 32)
	programRow(t, m, sim.Max(d1, firstBusy), 9, data2)
	overwriteTime := m.BusyUntil() - firstBusy
	// Overwrite = RESET + SET ~ 18 us (plus protocol time).
	if overwriteTime < sim.Microseconds(17) || overwriteTime > sim.Microseconds(20) {
		t.Fatalf("overwrite took %v, want ~18us", overwriteTime)
	}
	got, _ := readRow(t, m, m.BusyUntil(), 9)
	if !bytes.Equal(got, data2) {
		t.Fatalf("overwrite data mismatch: %x", got)
	}
}

func TestSelectiveErasingMakesOverwriteSetOnly(t *testing.T) {
	m := testModule(t)
	// Program real data, then selectively erase (program zeros), then
	// overwrite. The final write must cost the SET-only latency.
	d := programRow(t, m, 0, 3, bytes.Repeat([]byte{0xFF}, 32))
	d = sim.Max(d, m.BusyUntil())
	d = programRow(t, m, d, 3, make([]byte, 32)) // selective erase: all-zero word program
	d = sim.Max(d, m.BusyUntil())
	if st := m.WordState(3 * 32); st != lpddr.CellErased {
		t.Fatalf("after zero-program word state = %v, want erased", st)
	}
	// The array program starts when the execute burst completes (the
	// ProgramRow return time), so opTime = BusyUntil - that.
	execDone := programRow(t, m, d, 3, bytes.Repeat([]byte{0x5A}, 32))
	setOnly := m.BusyUntil() - execDone
	p := m.Params()
	if setOnly != p.CellSetOnly {
		t.Fatalf("erased overwrite took %v, want SET-only %v", setOnly, p.CellSetOnly)
	}
	// 18us -> 10us is the paper's 44% overwrite reduction.
	full := p.CellProgram + p.CellOverwriteExtra
	red := 1 - float64(setOnly)/float64(full)
	if red < 0.40 || red > 0.60 {
		t.Fatalf("selective-erase reduction = %.0f%%, want ~44-55%%", red*100)
	}
}

func TestZeroProgramOnProgrammedCostsResetOnly(t *testing.T) {
	m := testModule(t)
	d := programRow(t, m, 0, 4, bytes.Repeat([]byte{0x77}, 32))
	d = sim.Max(d, m.BusyUntil())
	execDone := programRow(t, m, d, 4, make([]byte, 32))
	resetTime := m.BusyUntil() - execDone
	if want := m.Params().CellOverwriteExtra; resetTime != want {
		t.Fatalf("selective erase of programmed word took %v, want RESET-only %v", resetTime, want)
	}
}

func TestEraseResetsSegmentAndBlocksPartition(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	// Rows 16 and 16+EraseRows*Partitions... pick two rows in the same
	// partition, one inside the erased segment and one outside.
	inRow := uint64(16)
	d := programRow(t, m, 0, inRow, bytes.Repeat([]byte{0xEE}, 32))
	d = sim.Max(d, m.BusyUntil())

	done, err := m.EraseSegment(d, 2, inRow)
	if err != nil {
		t.Fatal(err)
	}
	if dur := m.BusyUntil() - d; dur < m.Params().CellErase {
		t.Fatalf("erase blocked partition for %v, want >= %v", dur, m.Params().CellErase)
	}
	got, _ := readRow(t, m, sim.Max(done, m.BusyUntil()), inRow)
	for _, b := range got {
		if b != 0 {
			t.Fatalf("erased row still holds %x", got)
		}
	}
	if st := m.WordState(inRow * uint64(g.RowBytes)); st != lpddr.CellErased {
		t.Fatalf("word state after erase = %v", st)
	}
}

func TestRABAndRDBHitTracking(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	rowAddr := uint64(321)
	upper, lower := g.SplitRow(rowAddr)
	if _, ok := m.RABHit(upper); ok {
		t.Fatal("RAB hit before any preactive")
	}
	d, err := m.Preactive(0, 2, upper)
	if err != nil {
		t.Fatal(err)
	}
	if ba, ok := m.RABHit(upper); !ok || ba != 2 {
		t.Fatalf("RAB hit = %d,%v, want 2,true", ba, ok)
	}
	if _, ok := m.RDBHit(rowAddr); ok {
		t.Fatal("RDB hit before activate")
	}
	if _, err = m.Activate(d, 2, lower); err != nil {
		t.Fatal(err)
	}
	if ba, ok := m.RDBHit(rowAddr); !ok || ba != 2 {
		t.Fatalf("RDB hit = %d,%v, want 2,true", ba, ok)
	}
	// A new preactive on the same BA invalidates the pairing.
	if _, err = m.Preactive(d, 2, upper+1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.RDBHit(rowAddr); ok {
		t.Fatal("RDB hit survived re-preactive")
	}
}

func TestProgramInvalidatesStaleRDB(t *testing.T) {
	m := testModule(t)
	rowAddr := uint64(11)
	d := programRow(t, m, 0, rowAddr, bytes.Repeat([]byte{0x01}, 32))
	d = sim.Max(d, m.BusyUntil())
	_, d2 := readRow(t, m, d, rowAddr) // RDB 0 now holds the row
	if _, ok := m.RDBHit(rowAddr); !ok {
		t.Fatal("row not in RDB after read")
	}
	programRow(t, m, sim.Max(d2, m.BusyUntil()), rowAddr, bytes.Repeat([]byte{0x02}, 32))
	if _, ok := m.RDBHit(rowAddr); ok {
		t.Fatal("stale RDB still hits after the row was reprogrammed")
	}
}

func TestDirectArrayWriteRejected(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	upper, lower := g.SplitRow(77)
	d, _ := m.Preactive(0, 0, upper)
	d, err := m.Activate(d, 0, lower)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteBurst(d, 0, 0, []byte{1, 2, 3, 4}); err == nil {
		t.Fatal("write-phase to a raw array row was accepted")
	}
}

func TestProtocolViolationsRejected(t *testing.T) {
	m := testModule(t)
	if _, err := m.Activate(0, 0, 1); err == nil {
		t.Fatal("activate without preactive accepted")
	}
	if _, _, err := m.ReadBurst(0, 1, 0, 8); err == nil {
		t.Fatal("read without activation accepted")
	}
	d, _ := m.Preactive(0, 0, 0)
	if _, err := m.Activate(d, 0, 1<<14); err == nil {
		t.Fatal("activate with 15-bit lower address accepted")
	}
}

func TestActivateOutOfRangeRowRejected(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	upper, lower := g.SplitRow(g.RowsPerModule) // one past the end
	d, _ := m.Preactive(0, 0, upper)
	if _, err := m.Activate(d, 0, lower); err == nil {
		t.Fatal("activate outside module accepted")
	}
}

func TestReadBurstBoundsChecked(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	upper, lower := g.SplitRow(1)
	d, _ := m.Preactive(0, 0, upper)
	d, _ = m.Activate(d, 0, lower)
	if _, _, err := m.ReadBurst(d, 0, 30, 8); err == nil {
		t.Fatal("read past row end accepted")
	}
	if _, _, err := m.ReadBurst(d, 0, -1, 4); err == nil {
		t.Fatal("negative column accepted")
	}
}

func TestOverlayWindowMetaReadable(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	winRow := m.OWBA() / uint64(g.RowBytes)
	upper, lower := g.SplitRow(winRow)
	d, _ := m.Preactive(0, 3, upper)
	d, err := m.Activate(d, 3, lower)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := m.ReadBurst(d, 3, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(data[RegWindowSize:]); got != WindowSize {
		t.Fatalf("window size meta = %#x, want %#x", got, WindowSize)
	}
	if got := binary.LittleEndian.Uint32(data[RegBufferOffset:]); got != ProgBufOffset {
		t.Fatalf("buffer offset meta = %#x, want %#x", got, ProgBufOffset)
	}
	if got := binary.LittleEndian.Uint32(data[RegBufferSize:]); got != ProgBufSize {
		t.Fatalf("buffer size meta = %#x, want %#x", got, ProgBufSize)
	}
}

func TestOverlayMetaIsReadOnly(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	winRow := m.OWBA() / uint64(g.RowBytes)
	upper, lower := g.SplitRow(winRow)
	d, _ := m.Preactive(0, 0, upper)
	d, _ = m.Activate(d, 0, lower)
	if _, err := m.WriteBurst(d, 0, 0, []byte{9}); err == nil {
		t.Fatal("write to read-only meta-information accepted")
	}
}

func TestStatusRegisterReflectsProgramProgress(t *testing.T) {
	m := testModule(t)
	d := programRow(t, m, 0, 8, bytes.Repeat([]byte{0xCC}, 32))
	// Immediately after the execute the device must report busy.
	if st := m.statusAt(d); st != StatusBusy {
		t.Fatalf("status right after execute = %#x, want busy", st)
	}
	if st := m.statusAt(m.BusyUntil()); st != StatusReady {
		t.Fatalf("status at completion = %#x, want ready", st)
	}
}

func TestSetOWBARemapsWindow(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	if err := m.SetOWBA(uint64(g.RowBytes)); err != nil { // row 1
		t.Fatal(err)
	}
	if m.OWBA() != uint64(g.RowBytes) {
		t.Fatalf("OWBA = %#x", m.OWBA())
	}
	if err := m.SetOWBA(3); err == nil {
		t.Fatal("unaligned OWBA accepted")
	}
	if err := m.SetOWBA(g.Size()); err == nil {
		t.Fatal("out-of-range OWBA accepted")
	}
}

func TestPartitionParallelism(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	// Two activates to different partitions at the same time must not
	// serialize; to the same partition they must.
	upper0, lower0 := g.SplitRow(0) // partition 0
	upper1, lower1 := g.SplitRow(1) // partition 1
	d0, _ := m.Preactive(0, 0, upper0)
	d1, _ := m.Preactive(0, 1, upper1)
	a0, err := m.Activate(d0, 0, lower0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := m.Activate(d1, 1, lower1)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a0 {
		t.Fatalf("parallel activates to different partitions: %v vs %v", a0, a1)
	}
	// Same partition: row Partitions (= partition 0 again).
	upper2, lower2 := g.SplitRow(uint64(g.Partitions))
	d2, _ := m.Preactive(0, 2, upper2)
	a2, err := m.Activate(d2, 2, lower2)
	if err != nil {
		t.Fatal(err)
	}
	if a2 <= a0 {
		t.Fatalf("same-partition activate did not queue: %v vs %v", a2, a0)
	}
}

func TestBootSequence(t *testing.T) {
	m := testModule(t)
	if m.Ready(0) {
		t.Fatal("module ready before boot")
	}
	d, err := m.ModeRegisterWrite(0, MRAutoInit, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err = m.ModeRegisterWrite(d, MRZQCalibrate, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ModeRegisterWrite(d, MRBurstLen, 8); err != nil {
		t.Fatal(err)
	}
	if m.Params().BurstLen != 8 {
		t.Fatalf("burst length not applied: %d", m.Params().BurstLen)
	}
	// Program the OWBA to row 2 via the four byte registers.
	for i, b := range []uint8{2, 0, 0, 0} {
		if _, err := m.ModeRegisterWrite(d, uint32(MROWBA0+i), b); err != nil {
			t.Fatal(err)
		}
	}
	if m.OWBA() != 2*uint64(m.Geometry().RowBytes) {
		t.Fatalf("OWBA = %#x, want row 2", m.OWBA())
	}
	st, _, err := m.ModeRegisterRead(0, MRStatus)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusBusy {
		t.Fatal("status ready during auto-init window")
	}
	st, _, _ = m.ModeRegisterRead(sim.Milliseconds(1), MRStatus)
	if st != StatusReady {
		t.Fatal("status busy after auto-init window")
	}
	if _, err := m.ModeRegisterWrite(0, MRBurstLen, 5); err == nil {
		t.Fatal("bad burst length accepted")
	}
	if _, err := m.ModeRegisterWrite(0, 0x99, 0); err == nil {
		t.Fatal("unknown mode register accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	m := testModule(t)
	d := programRow(t, m, 0, 1, bytes.Repeat([]byte{1}, 32))
	readRow(t, m, sim.Max(d, m.BusyUntil()), 1)
	s := m.Stats()
	if s.Programs != 1 {
		t.Fatalf("programs = %d, want 1", s.Programs)
	}
	if s.ProgramsBy[lpddr.CellFresh] != 1 {
		t.Fatalf("fresh programs = %d, want 1", s.ProgramsBy[lpddr.CellFresh])
	}
	if s.Activates < 1 || s.ReadBursts < 1 || s.WriteBursts < 1 {
		t.Fatalf("activity counters = %+v", s)
	}
	if s.BytesRead != 32 {
		t.Fatalf("bytes read = %d, want 32", s.BytesRead)
	}
	if s.ProgramTime != m.Params().CellProgram {
		t.Fatalf("program time = %v, want %v", s.ProgramTime, m.Params().CellProgram)
	}
}

// Property: arbitrary program/read sequences always read back the last
// write, regardless of cell-state history.
func TestReadAfterWriteProperty(t *testing.T) {
	m := testModule(t)
	g := m.Geometry()
	now := sim.Time(0)
	shadow := map[uint64][]byte{}
	f := func(rowSel uint16, fill byte, zero bool) bool {
		rowAddr := uint64(rowSel) % (g.RowsPerModule / 2) // keep clear of the window
		data := bytes.Repeat([]byte{fill}, g.RowBytes)
		if zero {
			data = make([]byte, g.RowBytes)
		}
		done, err := m.ProgramRow(now, 0, rowAddr, data)
		if err != nil {
			return false
		}
		now = sim.Max(done, m.BusyUntil())
		shadow[rowAddr] = data
		got, done2 := readRowQuiet(m, now, rowAddr)
		now = done2
		return got != nil && bytes.Equal(got, shadow[rowAddr])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func readRowQuiet(m *Module, at sim.Time, rowAddr uint64) ([]byte, sim.Time) {
	upper, lower := m.Geometry().SplitRow(rowAddr)
	d, err := m.Preactive(at, 0, upper)
	if err != nil {
		return nil, at
	}
	d, err = m.Activate(d, 0, lower)
	if err != nil {
		return nil, at
	}
	data, d, err := m.ReadBurst(d, 0, 0, m.Geometry().RowBytes)
	if err != nil {
		return nil, at
	}
	return data, d
}

func TestTileDecomposition(t *testing.T) {
	g := DefaultGeometry()
	// Row 0: partition 0, half 0, tile 0, wordline 0.
	ta, err := g.Decompose(0)
	if err != nil {
		t.Fatal(err)
	}
	if ta != (TileAddress{}) {
		t.Fatalf("row 0 decomposes to %+v", ta)
	}
	// The next row in partition 0 (row 16) advances the wordline.
	ta, _ = g.Decompose(16)
	if ta.Wordline != 1 || ta.Partition != 0 || ta.Tile != 0 {
		t.Fatalf("row 16 decomposes to %+v", ta)
	}
	// Past a full tile of wordlines the next tile begins.
	rowAddr := uint64(g.TileWLs * g.Partitions)
	ta, _ = g.Decompose(rowAddr)
	if ta.Tile != 1 || ta.Block != 0 || ta.Wordline != 0 {
		t.Fatalf("row %d decomposes to %+v, want tile 1 block 0", rowAddr, ta)
	}
	// Tiles 2,3 form block 1 (the dual-WL scheme).
	ta, _ = g.Decompose(uint64(2 * g.TileWLs * g.Partitions))
	if ta.Block != 1 {
		t.Fatalf("tile 2 in block %d, want 1", ta.Block)
	}
	if _, err := g.Decompose(g.RowsPerModule); err == nil {
		t.Fatal("out-of-range row decomposed")
	}
	// 64 tiles x 2048 BLs x 4096 WLs cells per partition.
	if got := g.CellsPerPartition(); got != 64*2048*4096 {
		t.Fatalf("cells per partition = %d", got)
	}
}

func TestTileDecompositionCoversHalves(t *testing.T) {
	g := DefaultGeometry()
	g.RowsPerModule = 1 << 22
	seen := map[int]bool{}
	// Walk partition 0's rows at tile stride; both halves must appear.
	stride := uint64(g.TileWLs * g.Partitions)
	for rowAddr := uint64(0); rowAddr < g.RowsPerModule; rowAddr += stride {
		ta, err := g.Decompose(rowAddr)
		if err != nil {
			t.Fatal(err)
		}
		if ta.Partition != 0 {
			t.Fatalf("stride left partition 0: %+v", ta)
		}
		seen[ta.HalfPartition] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("halves covered: %v", seen)
	}
}

func TestGeometryValidateTileFields(t *testing.T) {
	g := DefaultGeometry()
	g.TilesPerPartition = 63 // odd: no half partitions
	if err := g.Validate(); err == nil {
		t.Fatal("odd tile count accepted")
	}
	g = DefaultGeometry()
	g.TileBLs = 0
	if err := g.Validate(); err == nil {
		t.Fatal("zero bitlines accepted")
	}
}

func TestWritePausingServesReadsDuringPrograms(t *testing.T) {
	m := testModule(t)
	m.EnableWritePausing(true)
	// Start a 10 us program on partition 0 (row 0), then read another row
	// of the same partition (row 16) mid-program.
	d := programRow(t, m, 0, 0, bytes.Repeat([]byte{0x42}, 32))
	progEnd := m.BusyUntil()
	readAt := d + sim.Microseconds(2) // well inside the program
	upper, lower := m.Geometry().SplitRow(16)
	d2, err := m.Preactive(readAt, 0, upper)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := m.Activate(d2, 0, lower)
	if err != nil {
		t.Fatal(err)
	}
	// The read must complete far before the original program end...
	if d3 >= progEnd {
		t.Fatalf("paused read done at %v, not before program end %v", d3, progEnd)
	}
	// ...and the program must have stretched past it.
	if m.BusyUntil() <= progEnd {
		t.Fatalf("program did not stretch: %v vs %v", m.BusyUntil(), progEnd)
	}
	if m.Pauses() != 1 {
		t.Fatalf("pauses = %d, want 1", m.Pauses())
	}
}

func TestWritePausingOffQueuesReads(t *testing.T) {
	m := testModule(t)
	d := programRow(t, m, 0, 0, bytes.Repeat([]byte{0x42}, 32))
	progEnd := m.BusyUntil()
	upper, lower := m.Geometry().SplitRow(16)
	d2, _ := m.Preactive(d+sim.Microseconds(2), 0, upper)
	d3, err := m.Activate(d2, 0, lower)
	if err != nil {
		t.Fatal(err)
	}
	if d3 < progEnd {
		t.Fatalf("read at %v overtook the program ending %v without pausing", d3, progEnd)
	}
	if m.Pauses() != 0 {
		t.Fatal("pauses counted while disabled")
	}
}

func TestWritePausingPreservesData(t *testing.T) {
	m := testModule(t)
	m.EnableWritePausing(true)
	want := bytes.Repeat([]byte{0x99}, 32)
	d := programRow(t, m, 0, 0, want)
	// Interrupt with a read of the same partition.
	upper, lower := m.Geometry().SplitRow(16)
	d2, _ := m.Preactive(d+sim.Microseconds(1), 1, upper)
	if _, err := m.Activate(d2, 1, lower); err != nil {
		t.Fatal(err)
	}
	got, _ := readRow(t, m, m.BusyUntil(), 0)
	if !bytes.Equal(got, want) {
		t.Fatal("paused program lost its data")
	}
}
