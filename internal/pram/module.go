package pram

import (
	"fmt"

	"dramless/internal/lpddr"
	"dramless/internal/sim"
)

// Stats counts device-level activity for the energy model and the
// experiment reports.
type Stats struct {
	Preactives   int64
	Activates    int64 // array row activations (window accesses excluded)
	WindowAct    int64 // activations routed to the overlay window
	ReadBursts   int64
	WriteBursts  int64
	Programs     int64
	ProgramsBy   [3]int64 // indexed by lpddr.CellState of the slowest word
	Erases       int64
	BytesRead    int64
	BytesWritten int64
	ProgramTime  sim.Duration // cumulative array program time
	Pauses       int64        // programs preempted by reads (write pausing)
}

// Module is one multi-partition PRAM package on an LPDDR2-NVM channel.
//
// The model is functional and timed at once: every method takes the
// simulated time the command reaches the device and returns when its
// effect completes, reserving the array partition and the 16-bit DQ bus
// for the spans they would be occupied on real hardware. An embedded
// lpddr.Tracker rejects command sequences that violate three-phase
// addressing, so controller bugs fail loudly.
type Module struct {
	geo Geometry
	par lpddr.Params

	track *lpddr.Tracker

	rabValid [4]bool
	rabUpper [4]uint32

	rdbValid  [4]bool
	rdbRow    [4]uint64
	rdbWindow [4]bool
	rdbData   [4][]byte

	ow *overlay

	// Array content, segmented (see rowSeg). memoSeg short-circuits the
	// map for the segment the last access touched: the datapath's row
	// streams are sequential, so nearly every lookup repeats the segment.
	segs    map[uint64]*rowSeg
	memoSeg *rowSeg
	memoID  uint64

	partitions []*sim.Resource // one per array partition
	bus        *sim.Resource   // 16-bit DQ bus shared by all bursts

	busyUntil sim.Time // in-flight program/erase completion (RegStatus)
	bufFreeAt sim.Time // program buffer availability: the write drivers
	// latch staged data quickly, so programs to different partitions
	// overlap even though each occupies its array partition fully
	boot initState

	// Write pausing (Qureshi et al., HPCA'10 - the Related Work
	// alternative the paper argues against): when enabled, a read whose
	// partition is mid-program pauses the program, senses the row, and
	// the program resumes with a penalty. Reads stop queueing behind
	// 10-18 us programs at the cost of stretched writes.
	pausing     bool
	progEndPart []sim.Time // per-partition in-flight program end
	pauses      int64
	onPause     func(at sim.Time, stretch sim.Duration)

	stats Stats
}

// Pause/resume costs of an interrupted program: the write circuitry
// drains its current pulse before the sense, and the resumed program
// repeats the interrupted iteration.
const (
	pauseOverhead  = 300 * sim.Nanosecond
	resumeOverhead = 1 * sim.Microsecond
)

// progBufHold is how long the program buffer stays occupied after an
// execute: the time to latch the staged bytes into the write drivers.
const progBufHold = 200 * sim.Nanosecond

// NewModule returns an initialized module. The overlay window is mapped
// to the top WindowSize bytes of the module address space; remap it with
// SetOWBA (the initializer does this during boot).
func NewModule(geo Geometry, par lpddr.Params) (*Module, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := par.Validate(); err != nil {
		return nil, err
	}
	m := &Module{
		geo:   geo,
		par:   par,
		track: lpddr.NewTracker(par.NumRAB),
		segs:  make(map[uint64]*rowSeg),
		bus:   sim.NewResource("pram.dq"),
	}
	for i := 0; i < geo.Partitions; i++ {
		m.partitions = append(m.partitions, sim.NewResource(fmt.Sprintf("pram.part%d", i)))
	}
	m.progEndPart = make([]sim.Time, geo.Partitions)
	m.ow = newOverlay(geo.Size() - WindowSize)
	for i := range m.rdbData {
		m.rdbData[i] = make([]byte, geo.RowBytes)
	}
	return m, nil
}

// MustNewModule is NewModule for known-good configurations.
func MustNewModule(geo Geometry, par lpddr.Params) *Module {
	m, err := NewModule(geo, par)
	if err != nil {
		panic(err)
	}
	return m
}

// seg returns the segment holding rowAddr plus the row's index within
// it, materializing the segment on first touch.
func (m *Module) seg(rowAddr uint64) (*rowSeg, int) {
	id := rowAddr >> segBits
	if m.memoSeg != nil && m.memoID == id {
		return m.memoSeg, int(rowAddr & segMask)
	}
	s := m.segs[id]
	if s == nil {
		s = newSeg(m.geo)
		m.segs[id] = s
	}
	m.memoID, m.memoSeg = id, s
	return s, int(rowAddr & segMask)
}

// peek is seg without materialization: it returns a nil segment when no
// access has touched rowAddr's segment yet.
func (m *Module) peek(rowAddr uint64) (*rowSeg, int) {
	id := rowAddr >> segBits
	if m.memoSeg != nil && m.memoID == id {
		return m.memoSeg, int(rowAddr & segMask)
	}
	s := m.segs[id]
	if s != nil {
		m.memoID, m.memoSeg = id, s
	}
	return s, int(rowAddr & segMask)
}

// EnableWritePausing turns on the write-pause/resume behaviour (the
// Related Work alternative to multi-resource-aware interleaving): reads
// preempt in-flight programs at the cost of stretching them. Off by
// default, matching the paper's device.
func (m *Module) EnableWritePausing(on bool) { m.pausing = on }

// Pauses returns how many programs were interrupted by reads.
func (m *Module) Pauses() int64 { return m.pauses }

// SetPauseHook registers fn to observe every write-pause event: at is
// the pausing read's arrival, stretch the extra time the interrupted
// program pays (pause + sense + resume). The memory controller wires it
// to the observability layer's stall series; nil disables it.
func (m *Module) SetPauseHook(fn func(at sim.Time, stretch sim.Duration)) { m.onPause = fn }

// EnableTrace records every LPDDR2-NVM command the module observes, for
// protocol inspection and debugging. Retrieve with TraceHistory.
func (m *Module) EnableTrace(on bool) { m.track.KeepHistory(on) }

// TraceHistory returns the recorded command stream (empty unless
// EnableTrace was set before the traffic).
func (m *Module) TraceHistory() []lpddr.Command { return m.track.History() }

// ShareBus wires the module's DQ pins to a shared channel bus: all PRAM
// packages on one LPDDR2-NVM channel drive the same dq[15:0] lines
// (Figure 14), so their bursts serialize on it. Call before any traffic.
func (m *Module) ShareBus(bus *sim.Resource) { m.bus = bus }

// Geometry returns the module's address layout.
func (m *Module) Geometry() Geometry { return m.geo }

// Params returns the interface timing.
func (m *Module) Params() lpddr.Params { return m.par }

// Stats returns a snapshot of the activity counters.
func (m *Module) Stats() Stats {
	s := m.stats
	s.Pauses = m.pauses
	return s
}

// OWBA returns the current overlay window base address.
func (m *Module) OWBA() uint64 { return m.ow.base }

// SetOWBA remaps the overlay window. The base must be row-aligned and the
// window must fit in the module.
func (m *Module) SetOWBA(base uint64) error {
	if base%uint64(m.geo.RowBytes) != 0 {
		return fmt.Errorf("pram: OWBA %#x not row-aligned", base)
	}
	if base+WindowSize > m.geo.Size() {
		return fmt.Errorf("pram: overlay window at %#x exceeds module size %#x", base, m.geo.Size())
	}
	m.ow.base = base
	// Remapping invalidates any RDB bound to the old window region.
	for i := range m.rdbValid {
		if m.rdbWindow[i] {
			m.rdbValid[i] = false
			m.rdbWindow[i] = false
		}
	}
	return nil
}

// RABHit returns the buffer pair whose RAB already holds upper, if any.
// The controller uses this to skip the pre-active phase.
func (m *Module) RABHit(upper uint32) (ba uint8, ok bool) {
	for i := 0; i < m.par.NumRAB; i++ {
		if m.rabValid[i] && m.rabUpper[i] == upper {
			return uint8(i), true
		}
	}
	return 0, false
}

// RDBHit returns the buffer pair whose RDB holds row, if any. The
// controller uses this to skip both addressing phases.
func (m *Module) RDBHit(rowAddr uint64) (ba uint8, ok bool) {
	for i := 0; i < m.par.NumRAB; i++ {
		if m.rdbValid[i] && m.rdbRow[i] == rowAddr {
			return uint8(i), true
		}
	}
	return 0, false
}

// RDBValid reports whether buffer pair ba holds a sensed row.
func (m *Module) RDBValid(ba uint8) bool { return int(ba) < len(m.rdbValid) && m.rdbValid[ba] }

// RDBRow returns the row held by buffer pair ba (valid only if RDBValid).
func (m *Module) RDBRow(ba uint8) uint64 { return m.rdbRow[ba] }

// observe routes a command through the protocol tracker.
func (m *Module) observe(c lpddr.Command) error {
	if _, err := lpddr.Encode(c); err != nil {
		return err
	}
	return m.track.Observe(c)
}

// Preactive latches the upper row address into RAB ba (first addressing
// phase). It returns when the RAB update completes (tRP).
func (m *Module) Preactive(at sim.Time, ba uint8, upper uint32) (done sim.Time, err error) {
	if err := m.observe(lpddr.Command{Op: lpddr.OpPreactive, BA: ba, Addr: upper}); err != nil {
		return 0, err
	}
	m.rabValid[ba] = true
	m.rabUpper[ba] = upper
	// A new upper row address unbinds the stale RDB pairing.
	m.rdbValid[ba] = false
	m.rdbWindow[ba] = false
	m.stats.Preactives++
	return at + m.par.TRP(), nil
}

// Activate composes the full row address from RAB ba plus lower, decodes
// it, and senses the row into the paired RDB (second addressing phase).
// Array rows occupy their partition for tRCD; rows falling inside the
// overlay window are served by the register sets and do not touch the
// array. It returns when the RDB holds the row.
func (m *Module) Activate(at sim.Time, ba uint8, lower uint32) (done sim.Time, err error) {
	if err := m.observe(lpddr.Command{Op: lpddr.OpActivate, BA: ba, Addr: lower}); err != nil {
		return 0, err
	}
	rowAddr := m.geo.JoinRow(m.rabUpper[ba], lower)
	if err := m.geo.CheckRow(rowAddr); err != nil {
		return 0, err
	}
	rowBase := rowAddr * uint64(m.geo.RowBytes)
	if m.ow.containsRow(rowBase, m.geo.RowBytes) {
		// Overlay window access: register sets respond within tRCD with
		// no partition involvement.
		m.rdbValid[ba] = true
		m.rdbWindow[ba] = true
		m.rdbRow[ba] = rowAddr
		m.stats.WindowAct++
		return at + m.par.TRCD, nil
	}
	partIdx := m.geo.PartitionOf(rowAddr)
	part := m.partitions[partIdx]
	var done2 sim.Time
	if m.pausing && at < m.progEndPart[partIdx] {
		// Pause the in-flight program: the sense proceeds after the
		// pause overhead, and the program's completion stretches by the
		// interruption plus the resume penalty.
		done2 = at + pauseOverhead + m.par.TRCD
		stretch := pauseOverhead + m.par.TRCD + resumeOverhead
		m.progEndPart[partIdx] += stretch
		if m.progEndPart[partIdx] > m.busyUntil {
			m.busyUntil = m.progEndPart[partIdx]
		}
		m.stats.ProgramTime += stretch // the interrupted program re-pays this
		m.pauses++
		if m.onPause != nil {
			m.onPause(at, stretch)
		}
	} else {
		start := part.Acquire(at, m.par.TRCD)
		done2 = start + m.par.TRCD
	}
	done = done2
	m.rdbValid[ba] = true
	m.rdbWindow[ba] = false
	m.rdbRow[ba] = rowAddr
	seg, idx := m.seg(rowAddr)
	copy(m.rdbData[ba], seg.rowData(idx, m.geo.RowBytes))
	m.stats.Activates++
	seg.lastRead[idx] = done
	return done, nil
}

// ReadBurst pulls n bytes starting at column col out of RDB ba (third
// addressing phase, read flavour). The DQ bus is occupied for the burst
// after the read preamble (RL + tDQSCK). It returns the data and the time
// the last byte is on the bus.
func (m *Module) ReadBurst(at sim.Time, ba uint8, col int, n int) (data []byte, done sim.Time, err error) {
	data = make([]byte, n)
	done, err = m.ReadBurstInto(at, ba, col, data)
	if err != nil {
		return nil, 0, err
	}
	return data, done, nil
}

// ReadBurstInto is ReadBurst into a caller-provided buffer of len(dst)
// bytes — the subsystem's allocation-free burst path.
func (m *Module) ReadBurstInto(at sim.Time, ba uint8, col int, dst []byte) (done sim.Time, err error) {
	n := len(dst)
	data := dst
	if err := m.observe(lpddr.Command{Op: lpddr.OpRead, BA: ba, Addr: uint32(col)}); err != nil {
		return 0, err
	}
	if !m.rdbValid[ba] {
		return 0, fmt.Errorf("pram: read from invalid RDB %d", ba)
	}
	if col < 0 || n <= 0 || col+n > m.geo.RowBytes {
		return 0, fmt.Errorf("pram: read burst [%d,%d) outside %d-byte row", col, col+n, m.geo.RowBytes)
	}
	if m.rdbWindow[ba] {
		base := m.rdbRow[ba]*uint64(m.geo.RowBytes) - m.ow.base
		for i := 0; i < n; i++ {
			off := base + uint64(col+i)
			if off == RegStatus {
				data[i] = m.statusAt(at)
				continue
			}
			b, err := m.ow.read(off)
			if err != nil {
				return 0, err
			}
			data[i] = b
		}
	} else {
		copy(data, m.rdbData[ba][col:col+n])
	}
	busStart := m.bus.Acquire(at+m.par.ReadPreamble(), m.par.TBurst())
	m.stats.ReadBursts++
	m.stats.BytesRead += int64(n)
	return busStart + m.par.TBurst(), nil
}

// WriteBurst pushes data toward the overlay window at column col of the
// row bound to buffer pair ba (third addressing phase, write flavour).
// LPDDR2-NVM forbids writing raw array rows, so the bound row must fall
// inside the overlay window; writes covering RegExec start the queued
// program or erase operation. It returns when write recovery completes.
func (m *Module) WriteBurst(at sim.Time, ba uint8, col int, data []byte) (done sim.Time, err error) {
	if err := m.observe(lpddr.Command{Op: lpddr.OpWrite, BA: ba, Addr: uint32(col)}); err != nil {
		return 0, err
	}
	if !m.rdbValid[ba] {
		return 0, fmt.Errorf("pram: write through invalid RDB %d", ba)
	}
	if !m.rdbWindow[ba] {
		return 0, fmt.Errorf("pram: write-phase to array row %#x (only overlay window rows are writable)", m.rdbRow[ba])
	}
	if col < 0 || len(data) == 0 || col+len(data) > m.geo.RowBytes {
		return 0, fmt.Errorf("pram: write burst [%d,%d) outside %d-byte row", col, col+len(data), m.geo.RowBytes)
	}
	busStart := m.bus.Acquire(at+m.par.WritePreamble(), m.par.TBurst())
	done = busStart + m.par.TBurst() + m.par.TWRA

	base := m.rdbRow[ba]*uint64(m.geo.RowBytes) - m.ow.base
	execTriggered := false
	for i, b := range data {
		off := base + uint64(col+i)
		if off == RegExec {
			execTriggered = true
			continue
		}
		if err := m.ow.write(off, b); err != nil {
			return 0, err
		}
	}
	m.stats.WriteBursts++
	m.stats.BytesWritten += int64(len(data))
	if execTriggered {
		if err := m.execute(done); err != nil {
			return 0, err
		}
	}
	return done, nil
}

// statusAt synthesizes the status register for a read at time at.
func (m *Module) statusAt(at sim.Time) byte {
	if at >= m.busyUntil {
		return StatusReady
	}
	return StatusBusy
}

// BusyUntil returns when the in-flight program or erase completes (zero
// when idle). Controllers poll RegStatus on hardware; the simulation can
// ask directly.
func (m *Module) BusyUntil() sim.Time { return m.busyUntil }

// ProgBufFreeAt returns when the program buffer can accept the next
// staged program. Programs to different partitions overlap: only the
// buffer-latch window and the target partition serialize.
func (m *Module) ProgBufFreeAt() sim.Time { return m.bufFreeAt }

// LastProgramEnd returns when the most recent program of rowAddr
// completed (0 if never programmed on a timed path).
func (m *Module) LastProgramEnd(rowAddr uint64) sim.Time {
	if seg, idx := m.peek(rowAddr); seg != nil {
		return seg.lastProg[idx]
	}
	return 0
}

// PreEraseBackground models the on-line selective-erasing pass: the
// subsystem zero-programs (pure RESET) a dead row during an idle window
// before its next overwrite, off the requester's critical path. The
// partition time is charged from `from` (the previous program's
// completion, or the write-intent declaration for contract-dead rows);
// the row's words become pristine so the next program needs only SET
// pulses. When contractDead is true the caller vouches the old contents
// were declared dead (a write-intent region), so intervening reads - the
// write-allocate fills of a cache - saw garbage either way and do not
// block the erase; otherwise any read since the last program aborts it.
func (m *Module) PreEraseBackground(from sim.Time, rowAddr uint64, contractDead bool) error {
	if err := m.geo.CheckRow(rowAddr); err != nil {
		return err
	}
	seg, idx := m.peek(rowAddr)
	if seg == nil || !seg.written[idx] {
		return nil // never written: already pristine
	}
	state := seg.rowState(idx, m.geo.WordsPerRow())
	needs := false
	for _, st := range state {
		if st == lpddr.CellProgrammed {
			needs = true
			break
		}
	}
	if !needs {
		return nil
	}
	// Safety: the background erase retroactively occupies an idle window
	// in the past. Unless the contents were contract-dead, a read since
	// the last program means the erase would have corrupted that read.
	if !contractDead && seg.lastRead[idx] > seg.lastProg[idx] {
		return nil
	}
	part := m.partitions[m.geo.PartitionOf(rowAddr)]
	start := part.Acquire(sim.Max(from, seg.lastProg[idx]), m.par.CellOverwriteExtra)
	end := start + m.par.CellOverwriteExtra
	if end > m.busyUntil {
		m.busyUntil = end
	}
	data := seg.rowData(idx, m.geo.RowBytes)
	for i := range data {
		data[i] = 0
	}
	for i := range state {
		state[i] = lpddr.CellErased
	}
	seg.lastProg[idx] = end
	for i := range m.rdbValid {
		if m.rdbValid[i] && !m.rdbWindow[i] && m.rdbRow[i] == rowAddr {
			m.rdbValid[i] = false
		}
	}
	return nil
}

// execute runs the operation staged in the overlay window registers,
// starting when the execute-register write completes.
func (m *Module) execute(at sim.Time) error {
	switch m.ow.code {
	case CmdProgram:
		return m.program(at)
	case CmdErase:
		return m.erase(at)
	default:
		return fmt.Errorf("pram: execute with unknown command code %#x", m.ow.code)
	}
}

// program commits ow.multi bytes of the program buffer to the row in
// ow.addr. All write drivers of the 256-bit bank fire in parallel, so the
// array is busy for the slowest word's program time: SET-only for
// selectively-erased words, RESET+SET for overwrites.
func (m *Module) program(at sim.Time) error {
	rowAddr := uint64(m.ow.addr)
	if err := m.geo.CheckRow(rowAddr); err != nil {
		return err
	}
	n := int(m.ow.multi)
	if n <= 0 || n > m.geo.RowBytes || n > ProgBufSize {
		return fmt.Errorf("pram: program size %d outside 1..%d", n, m.geo.RowBytes)
	}
	if n%m.geo.WordBytes != 0 {
		return fmt.Errorf("pram: program size %d not word-aligned (%d-byte words)", n, m.geo.WordBytes)
	}
	rowBase := rowAddr * uint64(m.geo.RowBytes)
	if m.ow.containsRow(rowBase, m.geo.RowBytes) {
		return fmt.Errorf("pram: program targets the overlay window row %#x", rowAddr)
	}

	seg, idx := m.seg(rowAddr)
	seg.written[idx] = true
	state := seg.rowState(idx, m.geo.WordsPerRow())
	data := seg.rowData(idx, m.geo.RowBytes)

	// Determine the op time from the slowest word, then commit data and
	// new cell states.
	var opTime sim.Duration
	slowest := lpddr.CellErased
	wb := m.geo.WordBytes
	for w := 0; w < n/wb; w++ {
		src := m.ow.progBuf[w*wb : (w+1)*wb]
		zero := true
		for _, b := range src {
			if b != 0 {
				zero = false
				break
			}
		}
		st := state[w]
		var wt sim.Duration
		if zero {
			// Programming all-zero data is a pure RESET of the word: the
			// selective-erasing primitive. Cost: the RESET sequence.
			if st == lpddr.CellProgrammed {
				wt = m.par.CellOverwriteExtra
			} else {
				wt = 0 // already pristine; drivers idle for this word
			}
			state[w] = lpddr.CellErased
		} else {
			wt = m.par.ProgramTime(st)
			state[w] = lpddr.CellProgrammed
		}
		if wt > opTime {
			opTime = wt
			if !zero {
				slowest = st
			}
		}
		copy(data[w*wb:], src)
	}
	if opTime == 0 {
		// Writing zeros over pristine cells still costs one driver pulse.
		opTime = m.par.TCK
	}

	partIdx := m.geo.PartitionOf(rowAddr)
	part := m.partitions[partIdx]
	// A new program also waits for the (possibly pause-stretched) program
	// already on this partition.
	start := part.Acquire(sim.Max(at, m.progEndPart[partIdx]), opTime)
	end := start + opTime
	m.progEndPart[partIdx] = end
	if end > m.busyUntil {
		m.busyUntil = end
	}
	if bf := at + progBufHold; bf > m.bufFreeAt {
		m.bufFreeAt = bf
	}
	seg.lastProg[idx] = end
	m.stats.Programs++
	m.stats.ProgramsBy[slowest]++
	m.stats.ProgramTime += opTime

	// The freshly programmed row invalidates any stale RDB snapshot.
	for i := range m.rdbValid {
		if m.rdbValid[i] && !m.rdbWindow[i] && m.rdbRow[i] == rowAddr {
			m.rdbValid[i] = false
		}
	}
	return nil
}

// erase clears the erase segment containing the row in ow.addr, leaving
// every word pristine (CellErased). The partition is blocked for the full
// CellErase latency, which is why the data path never issues one.
func (m *Module) erase(at sim.Time) error {
	rowAddr := uint64(m.ow.addr)
	if err := m.geo.CheckRow(rowAddr); err != nil {
		return err
	}
	base := m.geo.EraseBase(rowAddr)
	part := m.partitions[m.geo.PartitionOf(rowAddr)]
	start := part.Acquire(at, m.par.CellErase)
	end := start + m.par.CellErase
	if end > m.busyUntil {
		m.busyUntil = end
	}
	for rowA := base; rowA < base+uint64(m.geo.EraseRows) && rowA < m.geo.RowsPerModule; rowA++ {
		if seg, idx := m.peek(rowA); seg != nil && seg.written[idx] {
			data := seg.rowData(idx, m.geo.RowBytes)
			for i := range data {
				data[i] = 0
			}
			state := seg.rowState(idx, m.geo.WordsPerRow())
			for i := range state {
				state[i] = lpddr.CellErased
			}
		}
		for i := range m.rdbValid {
			if m.rdbValid[i] && !m.rdbWindow[i] && m.rdbRow[i] == rowA {
				m.rdbValid[i] = false
			}
		}
	}
	m.stats.Erases++
	return nil
}

// WordState returns the cell state of the word containing byte address
// addr, for tests and the selective-erasing scheduler.
func (m *Module) WordState(addr uint64) lpddr.CellState {
	rowAddr := m.geo.RowOf(addr)
	seg, idx := m.peek(rowAddr)
	if seg == nil {
		return lpddr.CellFresh
	}
	return seg.rowState(idx, m.geo.WordsPerRow())[m.geo.ColOf(addr)/m.geo.WordBytes]
}

// LoadRow stores data into a row bypassing protocol and timing, marking
// its words programmed. It models factory/offline initialization ("we
// initialize the data and place it in the persistent storages" before
// measurement) and must not be used on a measured path.
func (m *Module) LoadRow(rowAddr uint64, data []byte) error {
	if err := m.geo.CheckRow(rowAddr); err != nil {
		return err
	}
	if len(data) > m.geo.RowBytes {
		return fmt.Errorf("pram: %d bytes exceed the row", len(data))
	}
	seg, idx := m.seg(rowAddr)
	seg.written[idx] = true
	copy(seg.rowData(idx, m.geo.RowBytes), data)
	state := seg.rowState(idx, m.geo.WordsPerRow())
	wb := m.geo.WordBytes
	for w := 0; w*wb < len(data); w++ {
		state[w] = lpddr.CellProgrammed
	}
	return nil
}

// PeekRow returns a copy of the stored row (zeroes when never written),
// bypassing timing; for tests and debugging only.
func (m *Module) PeekRow(rowAddr uint64) []byte {
	out := make([]byte, m.geo.RowBytes)
	if seg, idx := m.peek(rowAddr); seg != nil {
		copy(out, seg.rowData(idx, m.geo.RowBytes))
	}
	return out
}

// PartitionFreeAt returns when partition p finishes its queued array work.
func (m *Module) PartitionFreeAt(p int) sim.Time { return m.partitions[p].FreeAt() }

// BusFreeAt returns when the DQ bus next becomes free.
func (m *Module) BusFreeAt() sim.Time { return m.bus.FreeAt() }

// BusBusyTime returns cumulative DQ bus occupancy (for utilization and
// the Figure 12 overlap measurements).
func (m *Module) BusBusyTime() sim.Duration { return m.bus.BusyTime() }
