package pram

import (
	"encoding/binary"
	"fmt"
)

// Overlay window register map (Figure 4 and Section V-B of the paper).
// Offsets are bytes from the overlay window base address (OWBA). The
// window occupies WindowSize bytes of the module's address space; the
// program buffer sits at the end of the register region.
const (
	// RegWindowSize..: 128 B of read-only meta-information describing the
	// window (window size, buffer offset, buffer size).
	RegWindowSize   = 0x00 // 4 B: total window size
	RegBufferOffset = 0x04 // 4 B: program buffer offset within the window
	RegBufferSize   = 0x08 // 4 B: program buffer capacity

	// RegCode receives the command code before an execute (OWBA+0x80).
	RegCode = 0x80
	// RegAddr receives the 4-byte target row address (OWBA+0x8B).
	RegAddr = 0x8B
	// RegMulti is the multi-purpose register: burst size in bytes
	// (OWBA+0x93, 2 bytes).
	RegMulti = 0x93
	// RegExec starts the queued operation when written (OWBA+0xC0).
	RegExec = 0xC0
	// RegStatus reads back device progress: StatusReady or StatusBusy
	// (OWBA+0xD0).
	RegStatus = 0xD0

	// ProgBufOffset is where the program buffer begins (OWBA+0x800).
	ProgBufOffset = 0x800
	// ProgBufSize is the program buffer capacity. One row (32 B) is the
	// program unit of the multi-partition bank; we provision 256 B so a
	// controller can stage several rows back to back.
	ProgBufSize = 0x100

	// WindowSize is the total overlay window span.
	WindowSize = ProgBufOffset + ProgBufSize
)

// Command codes written to RegCode.
const (
	// CmdProgram programs the staged program-buffer bytes to the row in
	// RegAddr.
	CmdProgram = 0x41
	// CmdErase bulk-erases the erase segment containing the row in
	// RegAddr (~60 ms; never used on the DRAM-less data path).
	CmdErase = 0x20
)

// Status register values.
const (
	StatusReady = 0x80
	StatusBusy  = 0x00
)

// overlay is the register-file state of one module's overlay window.
type overlay struct {
	base uint64 // OWBA, byte address within the module
	meta [128]byte

	code  uint8
	addr  uint32 // target row address
	multi uint16 // burst size in bytes

	progBuf [ProgBufSize]byte
}

func newOverlay(base uint64) *overlay {
	o := &overlay{base: base}
	binary.LittleEndian.PutUint32(o.meta[RegWindowSize:], WindowSize)
	binary.LittleEndian.PutUint32(o.meta[RegBufferOffset:], ProgBufOffset)
	binary.LittleEndian.PutUint32(o.meta[RegBufferSize:], ProgBufSize)
	return o
}

// contains reports whether module byte address a falls inside the window.
func (o *overlay) contains(a uint64) bool {
	return a >= o.base && a < o.base+WindowSize
}

// containsRow reports whether any byte of the given row falls inside the
// window; the device checks this during tRCD to route the access to the
// register sets instead of the array.
func (o *overlay) containsRow(rowBase uint64, rowBytes int) bool {
	return rowBase+uint64(rowBytes) > o.base && rowBase < o.base+WindowSize
}

// write stores one byte at window offset off, with register side effects
// handled by the module (execute triggers are detected there).
func (o *overlay) write(off uint64, b byte) error {
	switch {
	case off < 128:
		return fmt.Errorf("pram: overlay meta-information at +%#x is read-only", off)
	case off == RegCode:
		o.code = b
	case off >= RegAddr && off < RegAddr+4:
		sh := (off - RegAddr) * 8
		o.addr = o.addr&^(0xFF<<sh) | uint32(b)<<sh
	case off >= RegMulti && off < RegMulti+2:
		sh := (off - RegMulti) * 8
		o.multi = o.multi&^(0xFF<<sh) | uint16(b)<<sh
	case off == RegExec:
		// Value ignored; the act of writing starts the operation. The
		// module intercepts this offset before calling write.
	case off >= ProgBufOffset && off < ProgBufOffset+ProgBufSize:
		o.progBuf[off-ProgBufOffset] = b
	case off > RegCode && off < RegExec:
		// Reserved space between the register fields: real devices
		// ignore writes there, which lets a controller update the whole
		// register row with one burst.
	default:
		return fmt.Errorf("pram: write to unmapped overlay offset +%#x", off)
	}
	return nil
}

// read returns the byte at window offset off. Status is synthesized by
// the module (it depends on simulated time) and must not reach here.
func (o *overlay) read(off uint64) (byte, error) {
	switch {
	case off < 128:
		return o.meta[off], nil
	case off == RegCode:
		return o.code, nil
	case off >= RegAddr && off < RegAddr+4:
		return byte(o.addr >> ((off - RegAddr) * 8)), nil
	case off >= RegMulti && off < RegMulti+2:
		return byte(o.multi >> ((off - RegMulti) * 8)), nil
	case off == RegExec:
		return 0, nil
	case off >= ProgBufOffset && off < ProgBufOffset+ProgBufSize:
		return o.progBuf[off-ProgBufOffset], nil
	case off > RegCode && off < RegExec:
		return 0, nil // reserved register space reads as zero
	default:
		return 0, fmt.Errorf("pram: read from unmapped overlay offset +%#x", off)
	}
}
