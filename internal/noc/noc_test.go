package noc

import (
	"testing"

	"dramless/internal/sim"
)

func TestTransferTiming(t *testing.T) {
	x := MustNew(Default())
	// 32 KiB at 32 GB/s = 1.024 us + 10 ns hop.
	done, err := x.Transfer(0, 0, 1, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if done < sim.Microseconds(1) || done > sim.Microseconds(1.1) {
		t.Fatalf("transfer = %v, want ~1.03us", done)
	}
}

func TestDisjointPairsParallel(t *testing.T) {
	x := MustNew(Default())
	d1, _ := x.Transfer(0, 0, 1, 32<<10)
	d2, _ := x.Transfer(0, 2, 3, 32<<10)
	if d1 != d2 {
		t.Fatalf("disjoint pairs serialized: %v vs %v", d1, d2)
	}
}

func TestSharedDestinationSerializes(t *testing.T) {
	x := MustNew(Default())
	d1, _ := x.Transfer(0, 0, 5, 32<<10)
	d2, _ := x.Transfer(0, 1, 5, 32<<10)
	if d2 <= d1 {
		t.Fatal("shared destination port did not serialize")
	}
}

func TestLocalTransferFree(t *testing.T) {
	x := MustNew(Default())
	done, err := x.Transfer(9, 4, 4, 1<<20)
	if err != nil || done != 9 {
		t.Fatalf("local transfer: done=%v err=%v", done, err)
	}
}

func TestBadPortsRejected(t *testing.T) {
	x := MustNew(Default())
	if _, err := x.Transfer(0, -1, 0, 10); err == nil {
		t.Fatal("negative port accepted")
	}
	if _, err := x.Transfer(0, 0, 10, 10); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestStats(t *testing.T) {
	x := MustNew(Default())
	x.Transfer(0, 0, 1, 100)
	x.Transfer(0, 1, 2, 200)
	n, b := x.Stats()
	if n != 2 || b != 300 {
		t.Fatalf("stats = %d, %d", n, b)
	}
	if x.BusyTime() == 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestConfigValidate(t *testing.T) {
	c := Default()
	c.Ports = 1
	if err := c.Validate(); err == nil {
		t.Fatal("single-port crossbar accepted")
	}
}
