// Package noc models the crossbar network that links the accelerator's
// PEs, the server's MCU, the FPGA memory controllers and the PCIe module
// (Figure 6a). Each port pair owns an independent path (crossbar, not a
// bus), so transfers contend only at their endpoints.
package noc

import (
	"fmt"

	"dramless/internal/sim"
)

// Config describes the crossbar.
type Config struct {
	Ports int
	// BytesPerSec is the per-port bandwidth: the 256-bit connection at
	// the 1 GHz core clock gives 32 GB/s.
	BytesPerSec float64
	// HopLatency is the arbitration + traversal latency per transfer.
	HopLatency sim.Duration
}

// Default returns the paper platform's crossbar: 10 ports (8 PEs, FPGA
// controller pair, PCIe module), 32 GB/s per port, 10 ns hop.
func Default() Config {
	return Config{Ports: 10, BytesPerSec: 32e9, HopLatency: sim.Nanoseconds(10)}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Ports <= 1 || c.BytesPerSec <= 0 || c.HopLatency < 0 {
		return fmt.Errorf("noc: invalid config %+v", c)
	}
	return nil
}

// Crossbar is the switch fabric.
type Crossbar struct {
	cfg Config
	// in/out model each port's master and slave side independently
	// ("connected to the crossbar network via a master port and a slave
	// port").
	in  []*sim.Resource
	out []*sim.Resource

	transfers int64
	bytes     int64
}

// New builds a crossbar.
func New(cfg Config) (*Crossbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	x := &Crossbar{cfg: cfg}
	for p := 0; p < cfg.Ports; p++ {
		x.in = append(x.in, sim.NewResource(fmt.Sprintf("noc.in%d", p)))
		x.out = append(x.out, sim.NewResource(fmt.Sprintf("noc.out%d", p)))
	}
	return x, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Crossbar {
	x, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return x
}

// Config returns the crossbar configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// Transfer moves n bytes from port src to port dst starting no earlier
// than at and returns arrival time. Source egress and destination
// ingress both reserve the wire time; different port pairs proceed in
// parallel.
func (x *Crossbar) Transfer(at sim.Time, src, dst int, n int64) (done sim.Time, err error) {
	if src < 0 || src >= x.cfg.Ports || dst < 0 || dst >= x.cfg.Ports {
		return 0, fmt.Errorf("noc: ports %d->%d outside 0..%d", src, dst, x.cfg.Ports-1)
	}
	if src == dst {
		return at, nil // local: no fabric traversal
	}
	wire := sim.Duration(float64(n) / x.cfg.BytesPerSec * float64(sim.Second))
	start := x.in[src].Acquire(at, wire)
	end := x.out[dst].AcquireUntil(start, wire)
	x.transfers++
	x.bytes += n
	return end + x.cfg.HopLatency, nil
}

// Stats returns (transfers, bytes moved).
func (x *Crossbar) Stats() (transfers, bytes int64) { return x.transfers, x.bytes }

// BusyTime returns total port-busy time across the fabric.
func (x *Crossbar) BusyTime() sim.Duration {
	var t sim.Duration
	for p := 0; p < x.cfg.Ports; p++ {
		t += x.in[p].BusyTime() + x.out[p].BusyTime()
	}
	return t
}
