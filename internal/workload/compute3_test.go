package workload

import (
	"math"
	"testing"
)

// diagDominant builds an n x n diagonally dominant matrix (safe for LU
// without pivoting and, after symmetrization, positive definite).
func diagDominant(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			if i != j {
				a[i*n+j] = float64((i*3+j*7)%5) - 2
				row += math.Abs(a[i*n+j])
			}
		}
		a[i*n+i] = row + 3
	}
	return a
}

func TestLUMatchesReference(t *testing.T) {
	d := dev()
	n := 12
	a := diagDominant(n)
	v, _ := NewVec(d, 0, n*n)
	now, err := v.Fill(0, a)
	if err != nil {
		t.Fatal(err)
	}
	done, err := LU(d, now, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := LURef(a, n)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("LU[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Reconstruction check: L*U must reproduce A.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k <= min(i, j); k++ {
				l := got[i*n+k]
				if k == i {
					l = 1
				}
				if k > i {
					l = 0
				}
				u := got[k*n+j]
				if k > j {
					u = 0
				}
				sum += l * u
			}
			if math.Abs(sum-a[i*n+j]) > 1e-8 {
				t.Fatalf("L*U[%d,%d] = %v, want %v", i, j, sum, a[i*n+j])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCholeskyMatchesReference(t *testing.T) {
	d := dev()
	n := 10
	// Symmetric positive definite: B = M M^T + n*I from a dominant M.
	m0 := diagDominant(n)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m0[i*n+k] * m0[j*n+k]
			}
			a[i*n+j] = s
			if i == j {
				a[i*n+j] += float64(n)
			}
		}
	}
	v, _ := NewVec(d, 0, n*n)
	now, err := v.Fill(0, a)
	if err != nil {
		t.Fatal(err)
	}
	done, err := Cholesky(d, now, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := CholeskyRef(a, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(got[i*n+j]-want[i*n+j]) > 1e-8 {
				t.Fatalf("L[%d,%d] = %v, want %v", i, j, got[i*n+j], want[i*n+j])
			}
		}
	}
	// L L^T must reproduce A's lower triangle.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += got[i*n+k] * got[j*n+k]
			}
			if math.Abs(s-a[i*n+j]) > 1e-6*math.Abs(a[i*n+j]) {
				t.Fatalf("LL^T[%d,%d] = %v, want %v", i, j, s, a[i*n+j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	d := dev()
	n := 4
	a := make([]float64, n*n) // all zeros: not positive definite
	v, _ := NewVec(d, 0, n*n)
	now, _ := v.Fill(0, a)
	if _, err := Cholesky(d, now, 0, n); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestDurbinSolvesYuleWalker(t *testing.T) {
	d := dev()
	n := 9
	r := make([]float64, n-1)
	for i := range r {
		// A decaying autocorrelation keeps the Toeplitz system well
		// conditioned.
		r[i] = 0.5 / float64(i+2)
	}
	rv, _ := NewVec(d, 0, n-1)
	now, err := rv.Fill(0, r)
	if err != nil {
		t.Fatal(err)
	}
	done, err := Durbin(d, now, 0, 4096, n)
	if err != nil {
		t.Fatal(err)
	}
	yv, _ := NewVec(d, 4096, n-1)
	y, _, err := yv.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	// Verify T y = -r where T is the symmetric Toeplitz matrix with
	// first row (1, r[0], ..., r[n-3]).
	toeplitz := func(i, j int) float64 {
		k := i - j
		if k < 0 {
			k = -k
		}
		if k == 0 {
			return 1
		}
		return r[k-1]
	}
	for i := 0; i < n-1; i++ {
		var s float64
		for j := 0; j < n-1; j++ {
			s += toeplitz(i, j) * y[j]
		}
		if math.Abs(s+r[i]) > 1e-9 {
			t.Fatalf("row %d: Ty = %v, want %v", i, s, -r[i])
		}
	}
}

func TestADIMatchesReference(t *testing.T) {
	d := dev()
	n, steps := 14, 3
	grid := fill64(n*n, func(i int) float64 { return math.Sin(float64(i) / 9) })
	v, _ := NewVec(d, 0, n*n)
	now, err := v.Fill(0, grid)
	if err != nil {
		t.Fatal(err)
	}
	done, err := ADI(d, now, 0, n, steps)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := ADIRef(grid, n, steps)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("g[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Smoothing contracts the range.
	var inMax, outMax float64
	for i := range grid {
		inMax = math.Max(inMax, math.Abs(grid[i]))
		outMax = math.Max(outMax, math.Abs(got[i]))
	}
	if outMax > inMax+1e-12 {
		t.Fatal("ADI smoothing expanded the range")
	}
}

func TestCompute3ArgValidation(t *testing.T) {
	d := dev()
	if _, err := LU(d, 0, 0, 0); err == nil {
		t.Error("zero LU size accepted")
	}
	if _, err := Cholesky(d, 0, 0, -1); err == nil {
		t.Error("negative cholesky size accepted")
	}
	if _, err := Durbin(d, 0, 0, 64, 1); err == nil {
		t.Error("size-1 durbin accepted")
	}
	if _, err := ADI(d, 0, 0, 2, 1); err == nil {
		t.Error("tiny ADI grid accepted")
	}
	if _, err := DurbinRef(nil); err == nil {
		t.Error("empty durbin input accepted")
	}
}
