package workload

import (
	"encoding/binary"
	"fmt"
	"math"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

// This file holds functional reference kernels: real floating-point
// computations performed through a mem.Device with load/store semantics,
// exactly how a DRAM-less agent PE touches PRAM. They verify the whole
// stack functionally (PE cache -> MCU -> FPGA controller -> PRAM rows)
// and back the quickstart example. The timed benchmark streams above
// model the same kernels at scale; these run the math for real at small N.

// Vec provides float64 load/store on a device region.
type Vec struct {
	dev  mem.Device
	base uint64
	n    int
	word [8]byte // Get's load destination, reused across calls
}

// NewVec views n float64s at base.
func NewVec(dev mem.Device, base uint64, n int) (*Vec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: vector length %d", n)
	}
	if base+uint64(8*n) > dev.Size() {
		return nil, fmt.Errorf("workload: vector [%#x,+%d*8) outside device", base, n)
	}
	return &Vec{dev: dev, base: base, n: n}, nil
}

// Len returns the element count.
func (v *Vec) Len() int { return v.n }

// Get loads element i at time `at`.
func (v *Vec) Get(at sim.Time, i int) (float64, sim.Time, error) {
	if i < 0 || i >= v.n {
		return 0, 0, fmt.Errorf("workload: index %d outside vector of %d", i, v.n)
	}
	done, err := mem.ReadIntoOf(v.dev, at, v.base+uint64(8*i), v.word[:])
	if err != nil {
		return 0, 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v.word[:])), done, nil
}

// Set stores element i at time `at`.
func (v *Vec) Set(at sim.Time, i int, x float64) (sim.Time, error) {
	if i < 0 || i >= v.n {
		return 0, fmt.Errorf("workload: index %d outside vector of %d", i, v.n)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
	return v.dev.Write(at, v.base+uint64(8*i), b[:])
}

// Fill stores xs starting at element 0 in one bulk write.
func (v *Vec) Fill(at sim.Time, xs []float64) (sim.Time, error) {
	if len(xs) > v.n {
		return 0, fmt.Errorf("workload: %d values exceed vector of %d", len(xs), v.n)
	}
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return v.dev.Write(at, v.base, buf)
}

// Snapshot loads the whole vector in one bulk read.
func (v *Vec) Snapshot(at sim.Time) ([]float64, sim.Time, error) {
	b, done, err := v.dev.Read(at, v.base, 8*v.n)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float64, v.n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, done, nil
}

// Jacobi1D runs `steps` iterations of the 3-point Jacobi stencil over the
// n-element array at aBase, using bBase as the ping-pong buffer, all
// through the device. It returns the completion time; the result is left
// in the aBase region.
func Jacobi1D(dev mem.Device, at sim.Time, aBase, bBase uint64, n, steps int) (sim.Time, error) {
	a, err := NewVec(dev, aBase, n)
	if err != nil {
		return 0, err
	}
	b, err := NewVec(dev, bBase, n)
	if err != nil {
		return 0, err
	}
	src, dst := a, b
	now := at
	for s := 0; s < steps; s++ {
		vals, done, err := src.Snapshot(now)
		if err != nil {
			return 0, err
		}
		now = done
		out := make([]float64, n)
		out[0], out[n-1] = vals[0], vals[n-1]
		for i := 1; i < n-1; i++ {
			out[i] = (vals[i-1] + vals[i] + vals[i+1]) / 3
		}
		if now, err = dst.Fill(now, out); err != nil {
			return 0, err
		}
		src, dst = dst, src
	}
	if src != a {
		vals, done, err := src.Snapshot(now)
		if err != nil {
			return 0, err
		}
		if now, err = a.Fill(done, vals); err != nil {
			return 0, err
		}
	}
	return now, nil
}

// Jacobi1DRef computes the same stencil in plain Go for verification.
func Jacobi1DRef(in []float64, steps int) []float64 {
	cur := append([]float64(nil), in...)
	next := make([]float64, len(in))
	for s := 0; s < steps; s++ {
		copy(next, cur)
		for i := 1; i < len(cur)-1; i++ {
			next[i] = (cur[i-1] + cur[i] + cur[i+1]) / 3
		}
		cur, next = next, cur
	}
	return cur
}

// Trisolv solves L x = b for x where L is the n x n lower-triangular
// matrix at lBase (row-major), b at bBase; x is written to xBase.
func Trisolv(dev mem.Device, at sim.Time, lBase, bBase, xBase uint64, n int) (sim.Time, error) {
	l, err := NewVec(dev, lBase, n*n)
	if err != nil {
		return 0, err
	}
	bv, err := NewVec(dev, bBase, n)
	if err != nil {
		return 0, err
	}
	xv, err := NewVec(dev, xBase, n)
	if err != nil {
		return 0, err
	}
	now := at
	for i := 0; i < n; i++ {
		bi, done, err := bv.Get(now, i)
		if err != nil {
			return 0, err
		}
		now = done
		acc := bi
		for j := 0; j < i; j++ {
			lij, d1, err := l.Get(now, i*n+j)
			if err != nil {
				return 0, err
			}
			xj, d2, err := xv.Get(d1, j)
			if err != nil {
				return 0, err
			}
			now = d2
			acc -= lij * xj
		}
		lii, done2, err := l.Get(now, i*n+i)
		if err != nil {
			return 0, err
		}
		if lii == 0 {
			return 0, fmt.Errorf("workload: singular L at row %d", i)
		}
		if now, err = xv.Set(done2, i, acc/lii); err != nil {
			return 0, err
		}
	}
	return now, nil
}

// TrisolvRef solves the same system in plain Go.
func TrisolvRef(l []float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		acc := b[i]
		for j := 0; j < i; j++ {
			acc -= l[i*n+j] * x[j]
		}
		x[i] = acc / l[i*n+i]
	}
	return x
}

// Gemver computes the core GEMVER update through the device:
//
//	B   = A + u1*v1^T + u2*v2^T
//	x   = beta * B^T * y
//	w   = alpha * B * x
//
// with A at aBase (n x n row-major), the vectors packed consecutively at
// vecBase (u1,v1,u2,v2,y each n elements), and outputs B over A, x and w
// appended after the inputs at vecBase+5n. It returns the completion time.
func Gemver(dev mem.Device, at sim.Time, aBase, vecBase uint64, n int, alpha, beta float64) (sim.Time, error) {
	a, err := NewVec(dev, aBase, n*n)
	if err != nil {
		return 0, err
	}
	vecs, err := NewVec(dev, vecBase, 7*n)
	if err != nil {
		return 0, err
	}
	all, now, err := vecs.Snapshot(at)
	if err != nil {
		return 0, err
	}
	u1, v1 := all[0:n], all[n:2*n]
	u2, v2 := all[2*n:3*n], all[3*n:4*n]
	y := all[4*n : 5*n]

	am, now2, err := a.Snapshot(now)
	if err != nil {
		return 0, err
	}
	now = now2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			am[i*n+j] += u1[i]*v1[j] + u2[i]*v2[j]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x[i] += beta * am[j*n+i] * y[j]
		}
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w[i] += alpha * am[i*n+j] * x[j]
		}
	}
	if now, err = a.Fill(now, am); err != nil {
		return 0, err
	}
	xOut, err := NewVec(dev, vecBase+uint64(8*5*n), n)
	if err != nil {
		return 0, err
	}
	if now, err = xOut.Fill(now, x); err != nil {
		return 0, err
	}
	wOut, err := NewVec(dev, vecBase+uint64(8*6*n), n)
	if err != nil {
		return 0, err
	}
	return wOut.Fill(now, w)
}

// GemverRef computes the same update in plain Go, returning (B, x, w).
func GemverRef(a []float64, u1, v1, u2, v2, y []float64, alpha, beta float64) (bOut, x, w []float64) {
	n := len(u1)
	bOut = append([]float64(nil), a...)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bOut[i*n+j] += u1[i]*v1[j] + u2[i]*v2[j]
		}
	}
	x = make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x[i] += beta * bOut[j*n+i] * y[j]
		}
	}
	w = make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w[i] += alpha * bOut[i*n+j] * x[j]
		}
	}
	return bOut, x, w
}
