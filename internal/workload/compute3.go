package workload

import (
	"fmt"
	"math"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

// Third batch of functional reference kernels (see compute.go): the
// factorization and recurrence workloads of the suite, computed for real
// through a mem.Device.

// LU performs the in-place Doolittle LU decomposition (no pivoting) of
// the n x n matrix at base: afterwards the strict lower triangle holds L
// (unit diagonal implied) and the upper triangle holds U. The matrix must
// be such that no zero pivot arises (diagonally dominant inputs are safe).
func LU(dev mem.Device, at sim.Time, base uint64, n int) (sim.Time, error) {
	if n <= 0 {
		return 0, fmt.Errorf("workload: lu size %d", n)
	}
	m, err := NewVec(dev, base, n*n)
	if err != nil {
		return 0, err
	}
	a, now, err := m.Snapshot(at)
	if err != nil {
		return 0, err
	}
	for k := 0; k < n; k++ {
		if a[k*n+k] == 0 {
			return 0, fmt.Errorf("workload: zero pivot at %d", k)
		}
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= a[i*n+k] * a[k*n+j]
			}
		}
		// The factorization streams back row k and column k as it
		// finalizes them - the in-place write pattern of the lu model.
		rk, err := NewVec(dev, base+uint64(8*k*n), n)
		if err != nil {
			return 0, err
		}
		if now, err = rk.Fill(now, a[k*n:(k+1)*n]); err != nil {
			return 0, err
		}
		for i := k + 1; i < n; i++ {
			if now, err = m.Set(now, i*n+k, a[i*n+k]); err != nil {
				return 0, err
			}
		}
	}
	return m.Fill(now, a)
}

// LURef computes the same decomposition in plain Go.
func LURef(a []float64, n int) []float64 {
	out := append([]float64(nil), a...)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			out[i*n+k] /= out[k*n+k]
			for j := k + 1; j < n; j++ {
				out[i*n+j] -= out[i*n+k] * out[k*n+j]
			}
		}
	}
	return out
}

// Cholesky factors the symmetric positive-definite n x n matrix at base
// into L (lower triangular, L L^T = A), writing L over the lower triangle
// through the device.
func Cholesky(dev mem.Device, at sim.Time, base uint64, n int) (sim.Time, error) {
	if n <= 0 {
		return 0, fmt.Errorf("workload: cholesky size %d", n)
	}
	m, err := NewVec(dev, base, n*n)
	if err != nil {
		return 0, err
	}
	a, now, err := m.Snapshot(at)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= a[i*n+k] * a[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return 0, fmt.Errorf("workload: matrix not positive definite at %d (pivot %g)", i, sum)
				}
				a[i*n+i] = math.Sqrt(sum)
			} else {
				a[i*n+j] = sum / a[j*n+j]
			}
		}
		ri, err := NewVec(dev, base+uint64(8*i*n), i+1)
		if err != nil {
			return 0, err
		}
		if now, err = ri.Fill(now, a[i*n:i*n+i+1]); err != nil {
			return 0, err
		}
	}
	return now, nil
}

// CholeskyRef computes the same factor in plain Go (lower triangle).
func CholeskyRef(a []float64, n int) []float64 {
	out := append([]float64(nil), a...)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := out[i*n+j]
			for k := 0; k < j; k++ {
				sum -= out[i*n+k] * out[j*n+k]
			}
			if i == j {
				out[i*n+i] = math.Sqrt(sum)
			} else {
				out[i*n+j] = sum / out[j*n+j]
			}
		}
	}
	return out
}

// Durbin solves the Yule-Walker system of a symmetric Toeplitz matrix
// with first column (1, r[0], ..., r[n-2]) via Levinson-Durbin recursion:
// the classic Polybench durbin kernel. r (n-1 values) is read from rBase
// and the solution y (n-1 values) is written to yBase.
func Durbin(dev mem.Device, at sim.Time, rBase, yBase uint64, n int) (sim.Time, error) {
	if n < 2 {
		return 0, fmt.Errorf("workload: durbin size %d", n)
	}
	rv, err := NewVec(dev, rBase, n-1)
	if err != nil {
		return 0, err
	}
	r, now, err := rv.Snapshot(at)
	if err != nil {
		return 0, err
	}
	y, err := DurbinRef(r)
	if err != nil {
		return 0, err
	}
	yv, err := NewVec(dev, yBase, n-1)
	if err != nil {
		return 0, err
	}
	return yv.Fill(now, y)
}

// DurbinRef runs the Levinson-Durbin recursion in plain Go.
func DurbinRef(r []float64) ([]float64, error) {
	n := len(r)
	if n == 0 {
		return nil, fmt.Errorf("workload: empty autocorrelation")
	}
	y := make([]float64, n)
	z := make([]float64, n)
	alpha := -r[0]
	beta := 1.0
	y[0] = -r[0]
	for k := 1; k < n; k++ {
		beta *= 1 - alpha*alpha
		if beta == 0 {
			return nil, fmt.Errorf("workload: singular Toeplitz system at step %d", k)
		}
		sum := 0.0
		for i := 0; i < k; i++ {
			sum += r[k-i-1] * y[i]
		}
		alpha = -(r[k] + sum) / beta
		for i := 0; i < k; i++ {
			z[i] = y[i] + alpha*y[k-i-1]
		}
		copy(y[:k], z[:k])
		y[k] = alpha
	}
	return y, nil
}

// ADI runs `steps` iterations of a simplified alternating-direction
// implicit smoother on the n x n grid at base: each step does a row-wise
// tridiagonal relaxation followed by a column-wise one, through the
// device - the alternating traversal directions are exactly what makes
// the timed adi model half strided.
func ADI(dev mem.Device, at sim.Time, base uint64, n, steps int) (sim.Time, error) {
	if n < 3 {
		return 0, fmt.Errorf("workload: adi grid %d too small", n)
	}
	m, err := NewVec(dev, base, n*n)
	if err != nil {
		return 0, err
	}
	now := at
	for s := 0; s < steps; s++ {
		g, d, err := m.Snapshot(now)
		if err != nil {
			return 0, err
		}
		now = d
		adiSweep(g, n)
		if now, err = m.Fill(now, g); err != nil {
			return 0, err
		}
	}
	return now, nil
}

// ADIRef computes the same smoothing in plain Go.
func ADIRef(grid []float64, n, steps int) []float64 {
	out := append([]float64(nil), grid...)
	for s := 0; s < steps; s++ {
		adiSweep(out, n)
	}
	return out
}

func adiSweep(g []float64, n int) {
	// Row-wise pass.
	for i := 0; i < n; i++ {
		for j := 1; j < n-1; j++ {
			g[i*n+j] = (g[i*n+j-1] + 2*g[i*n+j] + g[i*n+j+1]) / 4
		}
	}
	// Column-wise pass (the strided direction).
	for j := 0; j < n; j++ {
		for i := 1; i < n-1; i++ {
			g[i*n+j] = (g[(i-1)*n+j] + 2*g[i*n+j] + g[(i+1)*n+j]) / 4
		}
	}
}
