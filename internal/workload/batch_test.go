package workload

import "testing"

// opaque hides a stream's BatchStream implementation, forcing Coalesce
// to use the generic one-op-lookahead coalescer.
type opaque struct{ s Stream }

func (o opaque) Next() (Op, bool) { return o.s.Next() }

// TestCoalesceMatchesScalarStream is the batching ground-truth check:
// for every suite kernel (plus a WriteEvery=0 kernel, whose outputs only
// appear in a final sweep), expanding the batches must reproduce the
// scalar stream's op sequence exactly, op for op - once through the
// generator's native NextBatch and once through the generic coalescer.
func TestCoalesceMatchesScalarStream(t *testing.T) {
	kernels := Suite()
	kernels = append(kernels, Kernel{
		Name: "finalsweep", Class: WriteIntensive,
		InputFactor: 1, OutputFactor: 1, Sweeps: 2,
		ComputePerChunk: 16, WriteEvery: 0, StridedSweeps: 1,
	})
	p := Params{Scale: 64 << 10, Agents: 3}
	for _, k := range kernels {
		for pe := 0; pe < p.Agents; pe++ {
			scalar, err := NewStream(k, p, pe)
			if err != nil {
				t.Fatalf("%s/pe%d: %v", k.Name, pe, err)
			}
			var want []Op
			for {
				op, ok := scalar.Next()
				if !ok {
					break
				}
				want = append(want, op)
			}

			for _, face := range []struct {
				name string
				wrap func(Stream) Stream
			}{
				{"native", func(s Stream) Stream { return s }},
				{"coalescer", func(s Stream) Stream { return opaque{s} }},
			} {
				fresh, err := NewStream(k, p, pe)
				if err != nil {
					t.Fatalf("%s/pe%d: %v", k.Name, pe, err)
				}
				bs := Coalesce(face.wrap(fresh))
				if face.name == "native" {
					if _, isNative := bs.(*stream); !isNative {
						t.Fatalf("%s/pe%d: Coalesce wrapped a native BatchStream", k.Name, pe)
					}
				}
				var got []Op
				batches := 0
				for {
					b, ok := bs.NextBatch()
					if !ok {
						break
					}
					if b.Count < 1 {
						t.Fatalf("%s/pe%d/%s: empty batch", k.Name, pe, face.name)
					}
					for i := 0; i < b.Count; i++ {
						got = append(got, b.At(i))
					}
					batches++
				}
				if len(got) != len(want) {
					t.Fatalf("%s/pe%d/%s: %d ops from batches, %d from scalar stream",
						k.Name, pe, face.name, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/pe%d/%s: op %d: batch expansion %+v != scalar %+v",
							k.Name, pe, face.name, i, got[i], want[i])
					}
				}
				// WriteEvery=1 kernels alternate load/store every op, so no
				// run exists to fuse; everything else must actually coalesce.
				if k.WriteEvery != 1 && batches >= len(want) && len(want) > 1 {
					t.Errorf("%s/pe%d/%s: %d batches for %d ops (no fusion)",
						k.Name, pe, face.name, batches, len(want))
				}
			}
		}
	}
}

// TestCoalesceMixedNextAndNextBatch checks the documented BatchStream
// contract: interleaving Next with NextBatch still yields the original
// op order (the coalescer's lookahead op must not be lost or reordered).
func TestCoalesceMixedNextAndNextBatch(t *testing.T) {
	k := MustByName("jaco1d")
	p := Params{Scale: 32 << 10, Agents: 2}
	scalar, err := NewStream(k, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []Op
	for {
		op, ok := scalar.Next()
		if !ok {
			break
		}
		want = append(want, op)
	}

	fresh, err := NewStream(k, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	bs := Coalesce(fresh)
	var got []Op
	for turn := 0; ; turn++ {
		if turn%3 == 0 { // every third draw goes through the scalar face
			op, ok := bs.Next()
			if !ok {
				break
			}
			got = append(got, op)
			continue
		}
		b, ok := bs.NextBatch()
		if !ok {
			break
		}
		for i := 0; i < b.Count; i++ {
			got = append(got, b.At(i))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("mixed draw yielded %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], want[i])
		}
	}
}
