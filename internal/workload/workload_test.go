package workload

import (
	"math"
	"testing"
	"testing/quick"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

func TestSuiteCompleteness(t *testing.T) {
	suite := Suite()
	if len(suite) != 16 {
		t.Fatalf("suite has %d kernels, want 16", len(suite))
	}
	seen := map[string]bool{}
	for _, k := range suite {
		if seen[k.Name] {
			t.Fatalf("duplicate kernel %s", k.Name)
		}
		seen[k.Name] = true
		if k.InputFactor <= 0 || k.OutputFactor <= 0 || k.Sweeps <= 0 || k.ComputePerChunk <= 0 {
			t.Fatalf("kernel %s has non-positive structure: %+v", k.Name, k)
		}
	}
	// The figure-18/19 poster children must be present with the right
	// classes.
	if MustByName("gemver").Class != ReadIntensive {
		t.Error("gemver must be read-intensive")
	}
	if MustByName("doitg").Class != WriteIntensive {
		t.Error("doitg must be write-intensive")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestWriteIntensityOrdering(t *testing.T) {
	// Table III: write intensity = output/input. The write-intensive
	// class must exceed the read-intensive class.
	for _, wk := range []string{"chol", "doitg", "lu", "seidel"} {
		for _, rk := range []string{"durbin", "dynpro", "gemver", "trisolv"} {
			w, r := MustByName(wk), MustByName(rk)
			if w.WriteIntensity() <= r.WriteIntensity() {
				t.Errorf("%s intensity %.3f not above %s %.3f",
					wk, w.WriteIntensity(), rk, r.WriteIntensity())
			}
		}
	}
}

func TestWriteRatioMatchesStream(t *testing.T) {
	p := DefaultParams()
	p.Scale = 64 << 10
	p.Agents = 2
	for _, k := range Suite() {
		var reads, writes int64
		for pe := 0; pe < p.Agents; pe++ {
			s := MustStream(k, p, pe)
			for {
				op, ok := s.Next()
				if !ok {
					break
				}
				if op.Size == 0 {
					continue
				}
				if op.Write {
					writes++
				} else {
					reads++
				}
			}
		}
		got := float64(writes) / float64(reads+writes)
		want := k.WriteRatio(p)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%s: stream write ratio %.3f vs metadata %.3f", k.Name, got, want)
		}
	}
}

func TestStreamStaysInFootprint(t *testing.T) {
	p := Params{Scale: 32 << 10, Agents: 3, BaseAddr: 4096}
	for _, k := range Suite() {
		limit := p.BaseAddr + uint64(k.FootprintBytes(p))
		for pe := 0; pe < p.Agents; pe++ {
			s := MustStream(k, p, pe)
			for {
				op, ok := s.Next()
				if !ok {
					break
				}
				if op.Size == 0 {
					continue
				}
				if op.Addr < p.BaseAddr || op.Addr+uint64(op.Size) > limit {
					t.Fatalf("%s agent %d: op at %#x outside [%#x,%#x)", k.Name, pe, op.Addr, p.BaseAddr, limit)
				}
			}
		}
	}
}

func TestAgentsPartitionInput(t *testing.T) {
	// Each input chunk must be read by exactly one agent per sweep.
	k := MustByName("jaco1d")
	p := Params{Scale: 16 << 10, Agents: 3}
	counts := map[uint64]int{}
	for pe := 0; pe < p.Agents; pe++ {
		s := MustStream(k, p, pe)
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if op.Size > 0 && !op.Write {
				counts[op.Addr]++
			}
		}
	}
	inChunks := int(k.InputBytes(p) / ChunkBytes)
	if len(counts) != inChunks {
		t.Fatalf("agents read %d distinct chunks, want %d", len(counts), inChunks)
	}
	for addr, c := range counts {
		if c != k.Sweeps {
			t.Fatalf("chunk %#x read %d times, want %d sweeps", addr, c, k.Sweeps)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	k := MustByName("floyd")
	p := Params{Scale: 8 << 10, Agents: 2}
	s1, s2 := MustStream(k, p, 0), MustStream(k, p, 0)
	for {
		a, okA := s1.Next()
		b, okB := s2.Next()
		if okA != okB || a != b {
			t.Fatal("streams diverged")
		}
		if !okA {
			break
		}
	}
}

func TestInstructionsPositive(t *testing.T) {
	p := DefaultParams()
	for _, k := range Suite() {
		if k.Instructions(p) <= 0 {
			t.Errorf("%s: non-positive instruction count", k.Name)
		}
		if k.FootprintBytes(p) <= 0 {
			t.Errorf("%s: non-positive footprint", k.Name)
		}
	}
}

func TestBadStreamArgs(t *testing.T) {
	k := MustByName("lu")
	if _, err := NewStream(k, Params{Scale: 8 << 10, Agents: 2}, 2); err == nil {
		t.Error("out-of-range agent accepted")
	}
	if _, err := NewStream(k, Params{Scale: 10, Agents: 2}, 0); err == nil {
		t.Error("tiny scale accepted")
	}
	if _, err := NewStream(k, Params{Scale: 8 << 10, Agents: 0}, 0); err == nil {
		t.Error("zero agents accepted")
	}
}

// Property: for any kernel and agent split, total stream ops match the
// closed-form traffic counts used by the experiment metadata.
func TestTrafficClosedFormProperty(t *testing.T) {
	suite := Suite()
	f := func(kSel uint8, agentsSel uint8, scaleSel uint8) bool {
		k := suite[int(kSel)%len(suite)]
		p := Params{
			Scale:  int64(scaleSel%32+16) * 1024,
			Agents: int(agentsSel%7) + 1,
		}
		var reads, writes int64
		for pe := 0; pe < p.Agents; pe++ {
			s := MustStream(k, p, pe)
			for {
				op, ok := s.Next()
				if !ok {
					break
				}
				if op.Size == 0 {
					continue
				}
				if op.Write {
					writes++
				} else {
					reads++
				}
			}
		}
		wantR, wantW := k.trafficChunks(p)
		// Interleaved writes ride on read cadence per agent, so rounding
		// loses at most (Agents * Sweeps) chunks of each kind.
		slack := int64(p.Agents*k.Sweeps) + 2
		return abs64(reads-wantR) <= slack && abs64(writes-wantW) <= slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// ---- functional reference kernels ----

func dev() mem.Device {
	return mem.NewFlat("m", 1<<22, sim.Nanoseconds(100), 1e9)
}

func TestJacobi1DMatchesReference(t *testing.T) {
	d := dev()
	n, steps := 64, 5
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i%7) * 1.5
	}
	v, err := NewVec(d, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	now, err := v.Fill(0, in)
	if err != nil {
		t.Fatal(err)
	}
	done, err := Jacobi1D(d, now, 0, 8*uint64(n), n, steps)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := Jacobi1DRef(in, steps)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("element %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestTrisolvMatchesReference(t *testing.T) {
	d := dev()
	n := 12
	l := make([]float64, n*n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l[i*n+j] = float64(i+j+1) / float64(n)
		}
		l[i*n+i] += 2 // well conditioned
		b[i] = float64(3*i - 5)
	}
	lv, _ := NewVec(d, 0, n*n)
	bv, _ := NewVec(d, uint64(8*n*n), n)
	now, err := lv.Fill(0, l)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = bv.Fill(now, b); err != nil {
		t.Fatal(err)
	}
	xBase := uint64(8 * (n*n + n))
	done, err := Trisolv(d, now, 0, uint64(8*n*n), xBase, n)
	if err != nil {
		t.Fatal(err)
	}
	xv, _ := NewVec(d, xBase, n)
	got, _, err := xv.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := TrisolvRef(l, b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGemverMatchesReference(t *testing.T) {
	d := dev()
	n := 10
	a := make([]float64, n*n)
	vecs := make([]float64, 7*n)
	for i := range a {
		a[i] = float64(i%5) - 2
	}
	for i := 0; i < 5*n; i++ {
		vecs[i] = float64(i%3) + 0.5
	}
	av, _ := NewVec(d, 0, n*n)
	vv, _ := NewVec(d, uint64(8*n*n), 7*n)
	now, err := av.Fill(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = vv.Fill(now, vecs); err != nil {
		t.Fatal(err)
	}
	done, err := Gemver(d, now, 0, uint64(8*n*n), n, 1.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	wantB, wantX, wantW := GemverRef(a,
		vecs[0:n], vecs[n:2*n], vecs[2*n:3*n], vecs[3*n:4*n], vecs[4*n:5*n], 1.25, 0.75)
	gotB, _, _ := av.Snapshot(done)
	all, _, _ := vv.Snapshot(done)
	for i := range wantB {
		if math.Abs(gotB[i]-wantB[i]) > 1e-9 {
			t.Fatalf("B[%d] mismatch", i)
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(all[5*n+i]-wantX[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, all[5*n+i], wantX[i])
		}
		if math.Abs(all[6*n+i]-wantW[i]) > 1e-9 {
			t.Fatalf("w[%d] = %v, want %v", i, all[6*n+i], wantW[i])
		}
	}
}

func TestVecBounds(t *testing.T) {
	d := dev()
	if _, err := NewVec(d, d.Size()-8, 2); err == nil {
		t.Error("oversize vector accepted")
	}
	v, _ := NewVec(d, 0, 4)
	if _, _, err := v.Get(0, 4); err == nil {
		t.Error("out-of-range get accepted")
	}
	if _, err := v.Set(0, -1, 1); err == nil {
		t.Error("negative set accepted")
	}
	if _, err := v.Fill(0, make([]float64, 5)); err == nil {
		t.Error("oversize fill accepted")
	}
}
