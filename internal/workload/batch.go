package workload

// Batch is a run of Count consecutive ops from a Stream that differ only
// in their address, which advances by Stride bytes per op (memory-less
// compute ops coalesce whenever they are identical). A batch is exactly
// equivalent to replaying its ops one at a time: consumers that cannot
// exploit the run structure can iterate At(0..Count-1) and recover the
// original sequence.
type Batch struct {
	Op     Op
	Count  int
	Stride int64
}

// At returns op i of the batch (0 <= i < Count).
func (b Batch) At(i int) Op {
	op := b.Op
	if op.Size > 0 {
		op.Addr = uint64(int64(op.Addr) + int64(i)*b.Stride)
	}
	return op
}

// BatchStream is a Stream that can also hand out run-length-coalesced
// batches. Next and NextBatch draw from the same underlying sequence, so
// callers may mix them; the concatenation of everything returned is the
// original op order.
type BatchStream interface {
	Stream
	// NextBatch returns the longest run of upcoming ops that coalesces
	// into one Batch (at least one op); ok=false when exhausted.
	NextBatch() (b Batch, ok bool)
}

// Coalesce returns a BatchStream over s. Streams that already implement
// BatchStream are returned unchanged; anything else is wrapped in a
// one-op-lookahead coalescer, which makes batching equivalent to the
// scalar op order by construction for every generator, including
// irregular ones.
func Coalesce(s Stream) BatchStream {
	if bs, ok := s.(BatchStream); ok {
		return bs
	}
	return &coalescer{s: s}
}

// coalescer run-length-encodes an op stream with one op of lookahead.
type coalescer struct {
	s       Stream
	pending Op
	has     bool
}

// Next implements Stream.
func (c *coalescer) Next() (Op, bool) {
	if c.has {
		c.has = false
		return c.pending, true
	}
	return c.s.Next()
}

// NextBatch implements BatchStream.
func (c *coalescer) NextBatch() (Batch, bool) {
	first, ok := c.Next()
	if !ok {
		return Batch{}, false
	}
	b := Batch{Op: first, Count: 1}
	last := first
	for {
		nxt, ok := c.s.Next()
		if !ok {
			return b, true
		}
		if !extend(&b, last, nxt) {
			c.pending, c.has = nxt, true
			return b, true
		}
		last = nxt
	}
}

// extend reports whether nxt continues the run ending in last, growing b
// when it does. Memory ops extend when every field but the address
// matches and the address keeps the batch's stride (fixed by the first
// two ops); compute-only ops extend when identical.
func extend(b *Batch, last, nxt Op) bool {
	if nxt.Compute != b.Op.Compute || nxt.Size != b.Op.Size || nxt.Write != b.Op.Write {
		return false
	}
	if b.Op.Size > 0 {
		stride := int64(nxt.Addr) - int64(last.Addr)
		if b.Count == 1 {
			b.Stride = stride
		} else if stride != b.Stride {
			return false
		}
	}
	b.Count++
	return true
}
