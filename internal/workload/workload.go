// Package workload models the Polybench suite the paper evaluates
// (Table III, Figures 13 and 15-21). Each kernel is described by the
// structure of its loop nest - input/output footprints, sweep count,
// arithmetic intensity and write interleaving - and compiled into a
// deterministic per-agent stream of compute/load/store operations, the
// same way the paper splits each workload "into multiple compute kernels,
// which can be simultaneously executed across all different PEs".
//
// Write intensity follows the paper's classification: "the intensiveness
// of writes is classified by the amount of output size per input size".
package workload

import (
	"fmt"
	"sort"
)

// ChunkBytes is the access granularity of the generated streams: one
// 32-byte vector chunk (four doubles), matching the PE's 32-byte
// load/store operand size.
const ChunkBytes = 32

// Op is one step of a kernel on one PE: Compute instructions followed by
// an optional memory reference of Size bytes at Addr.
type Op struct {
	Compute int64
	Addr    uint64
	Size    int
	Write   bool
}

// Stream produces the op sequence of one agent's share of a kernel.
type Stream interface {
	// Next returns the next op; ok=false when the share is exhausted.
	Next() (op Op, ok bool)
}

// Class is the paper's workload taxonomy.
type Class int

const (
	// ReadIntensive workloads (durbin, dynprog, gemver, trisolv) mostly
	// stream inputs and emit small outputs.
	ReadIntensive Class = iota
	// WriteIntensive workloads (chol, doitgen, lu, seidel) emit output
	// volumes comparable to or above their inputs.
	WriteIntensive
	// ComputeIntensive workloads (adi, fdtd-apml, floyd) are bounded by
	// arithmetic more than memory.
	ComputeIntensive
	// MemoryIntensive workloads (jacobi-1D/2D, reg-detect) sweep large
	// data with little arithmetic per byte.
	MemoryIntensive
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ReadIntensive:
		return "read-intensive"
	case WriteIntensive:
		return "write-intensive"
	case ComputeIntensive:
		return "compute-intensive"
	case MemoryIntensive:
		return "memory-intensive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Kernel is one workload's structural description.
type Kernel struct {
	Name  string
	Class Class

	// InputFactor and OutputFactor size the input and output regions as
	// multiples of the base footprint (Scale in Params).
	InputFactor  float64
	OutputFactor float64

	// Sweeps is how many passes the loop nest makes over the input.
	Sweeps int

	// ComputePerChunk is the instruction count executed per 32 B input
	// chunk (DSP-intrinsic vector ops count as single instructions).
	ComputePerChunk int

	// WriteEvery interleaves one output-chunk store per this many input
	// chunk loads (0 = outputs written only in a final sweep).
	WriteEvery int

	// StridedSweeps marks how many of the sweeps traverse the input
	// column-wise (large stride) instead of row-wise. Matrix kernels
	// like gemver (B^T y) and tensor contractions reorder their inner
	// loops this way; strided traversal is what separates byte-granule
	// memories from page-granule ones, because every access lands on a
	// different page while a byte-addressable PRAM still serves it in one
	// row read.
	StridedSweeps int
}

// stridedStrideChunks is the column stride of strided sweeps: 1 KiB + one
// chunk, so consecutive accesses walk across pages instead of within one.
const stridedStrideChunks = 33

// Params configures stream generation.
type Params struct {
	// Scale is the base footprint in bytes; the paper increased volumes
	// >10x over stock Polybench, and benchmarks shrink it to keep
	// simulations fast. Regions are rounded to whole chunks.
	Scale int64
	// Agents is the number of PEs sharing the kernel.
	Agents int
	// BaseAddr places the kernel's data region.
	BaseAddr uint64
}

// DefaultParams returns a 2 MiB footprint split across 7 agents (8 PEs
// minus the server).
func DefaultParams() Params {
	return Params{Scale: 2 << 20, Agents: 7}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Scale < 16*ChunkBytes {
		return fmt.Errorf("workload: scale %d below %d", p.Scale, 16*ChunkBytes)
	}
	if p.Agents <= 0 {
		return fmt.Errorf("workload: agents must be positive, got %d", p.Agents)
	}
	return nil
}

// InputBytes returns the kernel's input region size under params.
func (k Kernel) InputBytes(p Params) int64 { return chunksOf(k.InputFactor, p.Scale) * ChunkBytes }

// OutputBytes returns the kernel's output region size under params.
func (k Kernel) OutputBytes(p Params) int64 { return chunksOf(k.OutputFactor, p.Scale) * ChunkBytes }

// OutputAddr returns where the output region starts.
func (k Kernel) OutputAddr(p Params) uint64 { return p.BaseAddr + uint64(k.InputBytes(p)) }

// FootprintBytes returns the total data volume (Table III's "data
// volume").
func (k Kernel) FootprintBytes(p Params) int64 { return k.InputBytes(p) + k.OutputBytes(p) }

// WriteIntensity returns output/input volume, the paper's write metric.
func (k Kernel) WriteIntensity() float64 { return k.OutputFactor / k.InputFactor }

// WriteRatio estimates the dynamic fraction of referenced bytes that are
// written (the circles in Figure 13).
func (k Kernel) WriteRatio(p Params) float64 {
	reads, writes := k.trafficChunks(p)
	if reads+writes == 0 {
		return 0
	}
	return float64(writes) / float64(reads+writes)
}

func chunksOf(factor float64, scale int64) int64 {
	c := int64(factor * float64(scale) / ChunkBytes)
	if c < 1 {
		c = 1
	}
	return c
}

// trafficChunks returns total (read, write) chunk references per full run.
func (k Kernel) trafficChunks(p Params) (reads, writes int64) {
	in := chunksOf(k.InputFactor, p.Scale)
	out := chunksOf(k.OutputFactor, p.Scale)
	reads = in * int64(k.Sweeps)
	if k.WriteEvery > 0 {
		writes = reads / int64(k.WriteEvery)
	} else {
		writes = out // one final output sweep
	}
	return reads, writes
}

// Instructions returns the total instruction count of a full run
// (compute plus one issue slot per memory reference), used for IPC.
func (k Kernel) Instructions(p Params) int64 {
	reads, writes := k.trafficChunks(p)
	return reads*int64(k.ComputePerChunk) + reads + writes
}

// Suite returns the 16 evaluated kernels in the paper's figure order.
// Factors, sweeps and intensities encode each loop nest's structure:
// e.g. gemver streams four vectors/matrices and emits a small vector
// (read-intensive), doitgen materializes a large intermediate tensor
// (write-intensive), jacobi sweeps repeatedly with little arithmetic
// (memory-intensive).
func Suite() []Kernel {
	return []Kernel{
		{Name: "adi", Class: ComputeIntensive, InputFactor: 2, OutputFactor: 2, Sweeps: 4, ComputePerChunk: 192, WriteEvery: 2, StridedSweeps: 2},
		{Name: "chol", Class: WriteIntensive, InputFactor: 1, OutputFactor: 1.5, Sweeps: 2, ComputePerChunk: 128, WriteEvery: 1, StridedSweeps: 1},
		{Name: "doitg", Class: WriteIntensive, InputFactor: 1, OutputFactor: 3, Sweeps: 2, ComputePerChunk: 64, WriteEvery: 1, StridedSweeps: 1},
		{Name: "durbin", Class: ReadIntensive, InputFactor: 2, OutputFactor: 0.125, Sweeps: 3, ComputePerChunk: 80, WriteEvery: 16, StridedSweeps: 1},
		{Name: "dynpro", Class: ReadIntensive, InputFactor: 2, OutputFactor: 0.125, Sweeps: 3, ComputePerChunk: 96, WriteEvery: 16, StridedSweeps: 1},
		{Name: "fdtd2d", Class: ComputeIntensive, InputFactor: 2, OutputFactor: 1, Sweeps: 3, ComputePerChunk: 160, WriteEvery: 3, StridedSweeps: 1},
		{Name: "fdtdap", Class: ComputeIntensive, InputFactor: 1, OutputFactor: 0.5, Sweeps: 2, ComputePerChunk: 256, WriteEvery: 4},
		{Name: "floyd", Class: ComputeIntensive, InputFactor: 1, OutputFactor: 1, Sweeps: 4, ComputePerChunk: 144, WriteEvery: 2, StridedSweeps: 1},
		{Name: "gemver", Class: ReadIntensive, InputFactor: 4, OutputFactor: 0.25, Sweeps: 2, ComputePerChunk: 32, WriteEvery: 32, StridedSweeps: 1},
		{Name: "jaco1d", Class: MemoryIntensive, InputFactor: 1, OutputFactor: 1, Sweeps: 6, ComputePerChunk: 32, WriteEvery: 2},
		{Name: "jaco2d", Class: MemoryIntensive, InputFactor: 2, OutputFactor: 2, Sweeps: 4, ComputePerChunk: 40, WriteEvery: 2, StridedSweeps: 2},
		{Name: "lu", Class: WriteIntensive, InputFactor: 1, OutputFactor: 1, Sweeps: 3, ComputePerChunk: 80, WriteEvery: 2, StridedSweeps: 1},
		{Name: "regd", Class: MemoryIntensive, InputFactor: 3, OutputFactor: 0.25, Sweeps: 2, ComputePerChunk: 40, WriteEvery: 8},
		{Name: "seidel", Class: WriteIntensive, InputFactor: 1, OutputFactor: 1, Sweeps: 4, ComputePerChunk: 64, WriteEvery: 2, StridedSweeps: 2},
		{Name: "trisolv", Class: ReadIntensive, InputFactor: 2, OutputFactor: 0.0625, Sweeps: 2, ComputePerChunk: 28, WriteEvery: 32, StridedSweeps: 1},
		{Name: "trmm", Class: WriteIntensive, InputFactor: 2, OutputFactor: 1, Sweeps: 2, ComputePerChunk: 72, WriteEvery: 3, StridedSweeps: 1},
	}
}

// ByName returns the named kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range Suite() {
		if k.Name == name {
			return k, nil
		}
	}
	names := make([]string, 0, 16)
	for _, k := range Suite() {
		names = append(names, k.Name)
	}
	sort.Strings(names)
	return Kernel{}, fmt.Errorf("workload: unknown kernel %q (have %v)", name, names)
}

// MustByName is ByName for known-good names.
func MustByName(name string) Kernel {
	k, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return k
}

// stream generates one agent's share: a contiguous slab of the input
// chunk space per sweep, with interleaved output stores.
type stream struct {
	k Kernel
	p Params

	inBase, outBase   uint64
	inChunks          int64 // this agent's input chunks per sweep
	outChunks         int64 // this agent's output chunks
	inStart, outStart int64 // chunk offsets of this agent's slabs
	totalIn           int64 // whole input region in chunks (strided sweeps span it)

	sweep     int
	pos       int64 // chunk position within the sweep
	outPos    int64
	sinceWr   int
	finalOut  int64 // final-sweep output progress (WriteEvery == 0)
	exhausted bool
}

// NewStream returns agent pe's op stream (0 <= pe < p.Agents).
func NewStream(k Kernel, p Params, pe int) (Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pe < 0 || pe >= p.Agents {
		return nil, fmt.Errorf("workload: agent %d outside 0..%d", pe, p.Agents-1)
	}
	totalIn := chunksOf(k.InputFactor, p.Scale)
	totalOut := chunksOf(k.OutputFactor, p.Scale)
	a := int64(p.Agents)
	inPer, inRem := totalIn/a, totalIn%a
	outPer, outRem := totalOut/a, totalOut%a
	s := &stream{
		k: k, p: p,
		inBase:  p.BaseAddr,
		outBase: k.OutputAddr(p),
		totalIn: totalIn,
	}
	s.inStart = int64(pe)*inPer + min64(int64(pe), inRem)
	s.inChunks = inPer
	if int64(pe) < inRem {
		s.inChunks++
	}
	s.outStart = int64(pe)*outPer + min64(int64(pe), outRem)
	s.outChunks = outPer
	if int64(pe) < outRem {
		s.outChunks++
	}
	if s.inChunks == 0 {
		s.exhausted = true
	}
	return s, nil
}

// MustStream is NewStream for known-good arguments.
func MustStream(k Kernel, p Params, pe int) Stream {
	s, err := NewStream(k, p, pe)
	if err != nil {
		panic(err)
	}
	return s
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Next implements Stream.
func (s *stream) Next() (Op, bool) {
	if s.exhausted {
		return Op{}, false
	}
	// Interleaved output store due?
	if s.k.WriteEvery > 0 && s.sinceWr >= s.k.WriteEvery && s.outChunks > 0 {
		s.sinceWr = 0
		addr := s.outBase + uint64((s.outStart+s.outPos%s.outChunks)*ChunkBytes)
		s.outPos++
		return Op{Compute: 2, Addr: addr, Size: ChunkBytes, Write: true}, true
	}
	if s.pos >= s.inChunks {
		// Sweep finished. Only start another input pass when one remains:
		// resetting pos unconditionally used to drop the stream back into
		// input reads between final-sweep stores, re-reading the whole
		// slab once per buffered output chunk.
		if s.sweep+1 < s.k.Sweeps {
			s.pos = 0
			s.sweep++
		} else {
			// Final output sweep for kernels that buffer outputs.
			if s.k.WriteEvery == 0 && s.finalOut < s.outChunks {
				addr := s.outBase + uint64((s.outStart+s.finalOut)*ChunkBytes)
				s.finalOut++
				return Op{Compute: 4, Addr: addr, Size: ChunkBytes, Write: true}, true
			}
			s.exhausted = true
			return Op{}, false
		}
	}
	var chunk int64
	if s.sweep < s.k.StridedSweeps {
		// Column-wise traversal of this agent's tile: successive
		// references jump by the stride (wrapping within the slab), so
		// they land on different pages and different PRAM rows - the
		// access shape that separates byte-granule from page-granule
		// memories while keeping the blocked-kernel working set.
		chunk = s.inStart + (s.pos*stridedStrideChunks)%s.inChunks
	} else {
		chunk = s.inStart + s.pos
	}
	addr := s.inBase + uint64(chunk*ChunkBytes)
	s.pos++
	s.sinceWr++
	return Op{Compute: int64(s.k.ComputePerChunk), Addr: addr, Size: ChunkBytes, Write: false}, true
}

// NextBatch implements BatchStream natively: the generator knows its own
// run structure, so instead of re-discovering runs op by op (the generic
// coalescer) it extends the first op arithmetically - reads up to the
// next due store, sweep end or strided-wrap discontinuity, final-sweep
// stores to the end of the output slab. Interleaved stores stay
// singletons (a read always separates them). The concatenation of the
// batches is exactly the Next() op order; TestCoalesceMatchesScalarStream
// pins that against the scalar stream for every suite kernel.
func (s *stream) NextBatch() (Batch, bool) {
	op, ok := s.Next()
	if !ok {
		return Batch{}, false
	}
	b := Batch{Op: op, Count: 1}
	if op.Write {
		if s.k.WriteEvery == 0 {
			// Final output sweep: the remaining stores walk the slab
			// contiguously.
			rest := s.outChunks - s.finalOut
			if rest > 0 {
				b.Stride = ChunkBytes
				b.Count += int(rest)
				s.finalOut += rest
			}
		}
		return b, true
	}
	// Reads remaining in this sweep; a due store preempts them.
	n := s.inChunks - s.pos
	if s.k.WriteEvery > 0 && s.outChunks > 0 {
		if until := int64(s.k.WriteEvery - s.sinceWr); until < n {
			n = until
		}
	}
	stride := int64(ChunkBytes)
	if s.sweep < s.k.StridedSweeps {
		// Strided traversal: constant stride until the slab wrap.
		stride *= stridedStrideChunks
		at := ((s.pos - 1) * stridedStrideChunks) % s.inChunks
		if until := (s.inChunks - 1 - at) / stridedStrideChunks; until < n {
			n = until
		}
	}
	if n > 0 {
		b.Stride = stride
		b.Count += int(n)
		s.pos += n
		s.sinceWr += int(n)
	}
	return b, true
}
