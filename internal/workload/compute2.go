package workload

import (
	"fmt"

	"dramless/internal/mem"
	"dramless/internal/sim"
)

// Additional functional reference kernels (see compute.go): real
// computations through a mem.Device, verifying the memory stack under the
// access patterns of the timed benchmark models.

// Doitgen computes the Polybench doitgen contraction through the device:
//
//	sum[r][q][p] = Σ_s A[r][q][s] * C4[s][p]
//	A[r][q][p]   = sum[r][q][p]
//
// with A (nr x nq x np) at aBase and C4 (np x np) at cBase, both
// row-major float64. The result overwrites A; the intermediate sum is the
// kernel's write-intensive tensor.
func Doitgen(dev mem.Device, at sim.Time, aBase, cBase uint64, nr, nq, np int) (sim.Time, error) {
	if nr <= 0 || nq <= 0 || np <= 0 {
		return 0, fmt.Errorf("workload: doitgen dims %dx%dx%d", nr, nq, np)
	}
	if _, err := NewVec(dev, aBase, nr*nq*np); err != nil {
		return 0, err // validate the whole tensor region up front
	}
	c, err := NewVec(dev, cBase, np*np)
	if err != nil {
		return 0, err
	}
	c4, now, err := c.Snapshot(at)
	if err != nil {
		return 0, err
	}
	for r := 0; r < nr; r++ {
		for q := 0; q < nq; q++ {
			rowBase := aBase + uint64(8*(r*nq*np+q*np))
			row, err := NewVec(dev, rowBase, np)
			if err != nil {
				return 0, err
			}
			vals, d, err := row.Snapshot(now)
			if err != nil {
				return 0, err
			}
			now = d
			sum := make([]float64, np)
			for p := 0; p < np; p++ {
				for s := 0; s < np; s++ {
					sum[p] += vals[s] * c4[s*np+p]
				}
			}
			if now, err = row.Fill(now, sum); err != nil {
				return 0, err
			}
		}
	}
	return now, nil
}

// DoitgenRef computes the same contraction in plain Go.
func DoitgenRef(a []float64, c4 []float64, nr, nq, np int) []float64 {
	out := append([]float64(nil), a...)
	for r := 0; r < nr; r++ {
		for q := 0; q < nq; q++ {
			base := r*nq*np + q*np
			sum := make([]float64, np)
			for p := 0; p < np; p++ {
				for s := 0; s < np; s++ {
					sum[p] += out[base+s] * c4[s*np+p]
				}
			}
			copy(out[base:base+np], sum)
		}
	}
	return out
}

// Floyd runs the Floyd-Warshall all-pairs shortest paths over the n x n
// distance matrix at base (row-major float64, +Inf for missing edges),
// updating it in place through the device - the k-sweep structure is the
// repeated full-matrix traversal the timed floyd model encodes.
func Floyd(dev mem.Device, at sim.Time, base uint64, n int) (sim.Time, error) {
	if n <= 0 {
		return 0, fmt.Errorf("workload: floyd size %d", n)
	}
	m, err := NewVec(dev, base, n*n)
	if err != nil {
		return 0, err
	}
	now := at
	for k := 0; k < n; k++ {
		// Row k and column k drive this sweep.
		rowK, d, err := rowSnapshot(dev, base, n, k, now)
		if err != nil {
			return 0, err
		}
		now = d
		for i := 0; i < n; i++ {
			dik, d1, err := m.Get(now, i*n+k)
			if err != nil {
				return 0, err
			}
			now = d1
			rowI, d2, err := rowSnapshot(dev, base, n, i, now)
			if err != nil {
				return 0, err
			}
			now = d2
			changed := false
			for j := 0; j < n; j++ {
				if via := dik + rowK[j]; via < rowI[j] {
					rowI[j] = via
					changed = true
				}
			}
			if changed {
				rv, err := NewVec(dev, base+uint64(8*i*n), n)
				if err != nil {
					return 0, err
				}
				if now, err = rv.Fill(now, rowI); err != nil {
					return 0, err
				}
				if i == k {
					rowK = rowI
				}
			}
		}
	}
	return now, nil
}

func rowSnapshot(dev mem.Device, base uint64, n, row int, at sim.Time) ([]float64, sim.Time, error) {
	v, err := NewVec(dev, base+uint64(8*row*n), n)
	if err != nil {
		return nil, 0, err
	}
	return v.Snapshot(at)
}

// FloydRef computes the same shortest paths in plain Go.
func FloydRef(d []float64, n int) []float64 {
	out := append([]float64(nil), d...)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if via := out[i*n+k] + out[k*n+j]; via < out[i*n+j] {
					out[i*n+j] = via
				}
			}
		}
	}
	return out
}

// Seidel runs the Polybench seidel-2d stencil (in-place Gauss-Seidel
// averaging over a n x n grid) for the given steps through the device.
func Seidel(dev mem.Device, at sim.Time, base uint64, n, steps int) (sim.Time, error) {
	if n < 3 {
		return 0, fmt.Errorf("workload: seidel grid %d too small", n)
	}
	m, err := NewVec(dev, base, n*n)
	if err != nil {
		return 0, err
	}
	now := at
	for s := 0; s < steps; s++ {
		grid, d, err := m.Snapshot(now)
		if err != nil {
			return 0, err
		}
		now = d
		seidelSweep(grid, n)
		if now, err = m.Fill(now, grid); err != nil {
			return 0, err
		}
	}
	return now, nil
}

// SeidelRef computes the same relaxation in plain Go.
func SeidelRef(grid []float64, n, steps int) []float64 {
	out := append([]float64(nil), grid...)
	for s := 0; s < steps; s++ {
		seidelSweep(out, n)
	}
	return out
}

func seidelSweep(g []float64, n int) {
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			g[i*n+j] = (g[(i-1)*n+j-1] + g[(i-1)*n+j] + g[(i-1)*n+j+1] +
				g[i*n+j-1] + g[i*n+j] + g[i*n+j+1] +
				g[(i+1)*n+j-1] + g[(i+1)*n+j] + g[(i+1)*n+j+1]) / 9
		}
	}
}
