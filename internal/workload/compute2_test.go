package workload

import (
	"math"
	"testing"

	"dramless/internal/mem"
	"dramless/internal/memctrl"
)

// pramDevice builds a small hardware-automated PRAM subsystem.
func pramDevice(t *testing.T) mem.Device {
	t.Helper()
	cfg := memctrl.DefaultConfig(memctrl.Final)
	cfg.Geometry.RowsPerModule = 1 << 16
	sub, err := memctrl.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func fill64(n int, f func(i int) float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func TestDoitgenMatchesReference(t *testing.T) {
	d := dev()
	nr, nq, np := 3, 4, 6
	a := fill64(nr*nq*np, func(i int) float64 { return float64(i%7) - 2.5 })
	c4 := fill64(np*np, func(i int) float64 { return float64(i%5) * 0.25 })
	av, _ := NewVec(d, 0, nr*nq*np)
	cv, _ := NewVec(d, uint64(8*nr*nq*np), np*np)
	now, err := av.Fill(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = cv.Fill(now, c4); err != nil {
		t.Fatal(err)
	}
	done, err := Doitgen(d, now, 0, uint64(8*nr*nq*np), nr, nq, np)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := av.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := DoitgenRef(a, c4, nr, nq, np)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("A[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFloydMatchesReference(t *testing.T) {
	d := dev()
	n := 10
	inf := math.Inf(1)
	dist := fill64(n*n, func(i int) float64 {
		r, c := i/n, i%n
		switch {
		case r == c:
			return 0
		case (r+c)%3 == 0:
			return float64((r*7+c*3)%11 + 1)
		default:
			return inf
		}
	})
	v, _ := NewVec(d, 0, n*n)
	now, err := v.Fill(0, dist)
	if err != nil {
		t.Fatal(err)
	}
	done, err := Floyd(d, now, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := FloydRef(dist, n)
	for i := range want {
		if math.IsInf(want[i], 1) != math.IsInf(got[i], 1) ||
			(!math.IsInf(want[i], 1) && math.Abs(got[i]-want[i]) > 1e-9) {
			t.Fatalf("d[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Triangle inequality holds everywhere on the result.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if got[i*n+j] > got[i*n+k]+got[k*n+j]+1e-9 {
					t.Fatalf("triangle inequality violated at %d,%d via %d", i, j, k)
				}
			}
		}
	}
}

func TestSeidelMatchesReference(t *testing.T) {
	d := dev()
	n, steps := 12, 4
	grid := fill64(n*n, func(i int) float64 { return math.Cos(float64(i) / 5) })
	v, _ := NewVec(d, 0, n*n)
	now, err := v.Fill(0, grid)
	if err != nil {
		t.Fatal(err)
	}
	done, err := Seidel(d, now, 0, n, steps)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := SeidelRef(grid, n, steps)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("g[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Boundary rows/cols are fixed points of the stencil.
	for j := 0; j < n; j++ {
		if got[j] != grid[j] || got[(n-1)*n+j] != grid[(n-1)*n+j] {
			t.Fatal("boundary mutated")
		}
	}
}

func TestComputeKernelArgValidation(t *testing.T) {
	d := dev()
	if _, err := Doitgen(d, 0, 0, 0, 0, 1, 1); err == nil {
		t.Error("zero doitgen dim accepted")
	}
	if _, err := Floyd(d, 0, 0, 0); err == nil {
		t.Error("zero floyd size accepted")
	}
	if _, err := Seidel(d, 0, 0, 2, 1); err == nil {
		t.Error("tiny seidel grid accepted")
	}
}

func TestFunctionalKernelsOnPRAMStack(t *testing.T) {
	// The same math through the full PRAM subsystem (protocol + timing)
	// must agree with the plain-Go reference - this exercises doitgen on
	// the real controller path end to end.
	sub := pramDevice(t)
	nr, nq, np := 2, 2, 4
	a := fill64(nr*nq*np, func(i int) float64 { return float64(i) * 0.5 })
	c4 := fill64(np*np, func(i int) float64 { return float64((i*3)%4) - 1 })
	av, _ := NewVec(sub, 0, nr*nq*np)
	cv, _ := NewVec(sub, 4096, np*np)
	now, err := av.Fill(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = cv.Fill(now, c4); err != nil {
		t.Fatal(err)
	}
	done, err := Doitgen(sub, now, 0, 4096, nr, nq, np)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := av.Snapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	want := DoitgenRef(a, c4, nr, nq, np)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("PRAM-backed A[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
