package memctrl

import (
	"fmt"

	"dramless/internal/lpddr"
	"dramless/internal/mem"
	"dramless/internal/obs"
	"dramless/internal/pram"
	"dramless/internal/sim"
)

// Subsystem is the complete hardware-automated PRAM subsystem: two
// LPDDR2-NVM channels of sixteen 400 MHz PRAM packages behind the FPGA
// controller. It presents a flat byte-addressable space to the server
// PE's MCU; 32-byte rows stripe across the 16 packages of a channel and
// then across channels, so a 1 KiB request touches every module once
// (the paper's "512 bytes per channel, 32 bytes per bank").
type Subsystem struct {
	cfg Config
	// pol is the scheduling policy flattened at construction; see
	// channel.pol.
	pol      resolved
	channels []*channel

	rowBytes uint64
	pkgs     uint64
	chans    uint64
	size     uint64
	bootedAt sim.Time
	booted   bool

	// intents are the declared write-intent address ranges (selective
	// erasing targets): [addr, addr+n), in logical addresses.
	intents []intentRange

	// wear is the optional start-gap leveler (nil when disabled).
	wear *wearState

	// batches is the per-channel rowReq scratch ReadInto and ReadScatter
	// reuse across calls (the subsystem is single-threaded per
	// simulation, like every timed component); wBatches and progs are
	// Write's equivalents; wearRow is the gap-move copy buffer.
	batches  [][]rowReq
	wBatches [][]writeReq
	progs    []programmed
	wearRow  []byte
}

// programmed records one accepted row program pending wear accounting.
type programmed struct {
	at    sim.Time
	paddr uint64
}

var (
	_ mem.Device     = (*Subsystem)(nil)
	_ mem.ReaderInto = (*Subsystem)(nil)
)

type intentRange struct {
	lo, hi     uint64
	declaredAt sim.Time
}

// intentAt reports whether global address a lies in a declared region and
// when the declaration happened.
func (s *Subsystem) intentAt(a uint64) (sim.Time, bool) {
	for _, r := range s.intents {
		if a >= r.lo && a < r.hi {
			return r.declaredAt, true
		}
	}
	return 0, false
}

// New builds a subsystem from cfg.
func New(cfg Config) (*Subsystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol := resolvePolicy(cfg.policy())
	if pol.wearIdleMoves && !cfg.Wear.Enabled {
		// A wear-aware policy is self-contained: it brings start-gap
		// leveling along when the config leaves it off.
		cfg.Wear = DefaultWear()
	}
	s := &Subsystem{
		cfg:      cfg,
		pol:      pol,
		rowBytes: uint64(cfg.Geometry.RowBytes),
		pkgs:     uint64(cfg.Params.Packages),
		chans:    uint64(cfg.Params.Channels),
	}
	for c := 0; c < cfg.Params.Channels; c++ {
		ch, err := newChannel(c, cfg)
		if err != nil {
			return nil, err
		}
		cIdx := c
		ch.intent = func(mod int, rowAddr uint64) (sim.Time, bool) {
			// Invert the striping (module-local row -> physical global
			// row), then undo wear-leveling to reach the logical address
			// the intent ranges are declared in.
			chunk := rowAddr*s.pkgs*s.chans + uint64(cIdx)*s.pkgs + uint64(mod)
			if s.wear != nil {
				logical, ok := s.wear.unmapRow(chunk)
				if !ok {
					return 0, false // the spare row is never an intent target
				}
				chunk = logical
			}
			return s.intentAt(chunk * s.rowBytes)
		}
		s.channels = append(s.channels, ch)
	}
	// The top window region of each module is reserved for the overlay
	// window; expose only the array space below it.
	usableRows := cfg.Geometry.RowsPerModule - pram.WindowSize/uint64(cfg.Geometry.RowBytes)
	s.size = usableRows * s.rowBytes * s.pkgs * s.chans
	s.batches = make([][]rowReq, cfg.Params.Channels)
	s.wBatches = make([][]writeReq, cfg.Params.Channels)
	for c := range s.batches {
		s.batches[c] = pooledRows()
		s.wBatches[c] = pooledWrites()
	}
	for _, ch := range s.channels {
		ch.rWaves = pooledRWaves()
		ch.wWaves = pooledWWaves()
	}
	s.wearRow = make([]byte, cfg.Geometry.RowBytes)
	s.initWear()
	return s, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Subsystem {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the build configuration.
func (s *Subsystem) Config() Config { return s.cfg }

// Size returns the usable capacity in bytes.
func (s *Subsystem) Size() uint64 { return s.size }

// location maps a global byte address to its channel, package, module row
// and column.
type location struct {
	ch, pkg int
	row     uint64
	col     int
}

func (s *Subsystem) locate(addr uint64) location {
	chunk := addr / s.rowBytes
	return location{
		ch:  int(chunk / s.pkgs % s.chans),
		pkg: int(chunk % s.pkgs),
		row: chunk / (s.pkgs * s.chans),
		col: int(addr % s.rowBytes),
	}
}

// checkRange validates [addr, addr+n). The comparison is against the
// remaining room past addr so addr+n cannot wrap uint64 for addresses
// near the top of the space.
func (s *Subsystem) checkRange(addr uint64, n int) error {
	if n <= 0 {
		return fmt.Errorf("memctrl: non-positive access size %d", n)
	}
	if addr > s.size || uint64(n) > s.size-addr {
		return fmt.Errorf("memctrl: access [%#x,+%#x) outside %#x-byte subsystem", addr, uint64(n), s.size)
	}
	return nil
}

// Boot runs the initializer on every module: auto-initialization, ZQ
// calibration, burst length and overlay window base address. It returns
// when every device reports ready. Boot must complete before traffic.
func (s *Subsystem) Boot(at sim.Time) (done sim.Time, err error) {
	done = at
	winRow := uint32((s.cfg.Geometry.Size() - pram.WindowSize) / s.rowBytes)
	for _, ch := range s.channels {
		for _, m := range ch.modules {
			t, err := m.ModeRegisterWrite(at, pram.MRAutoInit, 1)
			if err != nil {
				return 0, err
			}
			if t, err = m.ModeRegisterWrite(t, pram.MRZQCalibrate, 1); err != nil {
				return 0, err
			}
			if t, err = m.ModeRegisterWrite(t, pram.MRBurstLen, uint8(s.cfg.Params.BurstLen)); err != nil {
				return 0, err
			}
			for i := 0; i < 4; i++ {
				if t, err = m.ModeRegisterWrite(t, uint32(pram.MROWBA0+i), uint8(winRow>>(8*i))); err != nil {
					return 0, err
				}
			}
			// Poll the ready flag once the longest boot step elapses.
			for probe := t; ; probe += 10 * sim.Microsecond {
				st, pt, err := m.ModeRegisterRead(probe, pram.MRStatus)
				if err != nil {
					return 0, err
				}
				if st == pram.StatusReady {
					t = pt
					break
				}
			}
			done = sim.Max(done, t)
		}
	}
	s.booted, s.bootedAt = true, done
	return done, nil
}

// Read fetches n bytes at addr, starting no earlier than at, and returns
// the data and the completion time of the last burst. The request is
// split into row-granule operations that the per-channel scheduler
// processes according to its policy.
func (s *Subsystem) Read(at sim.Time, addr uint64, n int) (data []byte, done sim.Time, err error) {
	if n <= 0 {
		return nil, 0, s.checkRange(addr, n)
	}
	data = make([]byte, n)
	done, err = s.ReadInto(at, addr, data)
	if err != nil {
		return nil, 0, err
	}
	return data, done, nil
}

// ReadInto implements mem.ReaderInto: Read straight into a caller-owned
// buffer. Each row-granule request points at its subslice of dst, so the
// channel bursts land in place and the whole call allocates nothing in
// steady state (the per-channel batch scratch is reused across calls).
func (s *Subsystem) ReadInto(at sim.Time, addr uint64, dst []byte) (done sim.Time, err error) {
	n := len(dst)
	if err := s.checkRange(addr, n); err != nil {
		return 0, err
	}
	done = at

	// Build per-channel batches so each channel's scheduler can interleave
	// the row operations of this request.
	batches := s.batches
	for c := range batches {
		batches[c] = batches[c][:0]
	}
	for off := 0; off < n; {
		loc := s.locate(s.translate(addr + uint64(off)))
		take := int(s.rowBytes) - loc.col
		if take > n-off {
			take = n - off
		}
		batches[loc.ch] = append(batches[loc.ch], rowReq{
			mod: loc.pkg, row: loc.row, col: loc.col,
			dst: dst[off : off+take : off+take],
		})
		off += take
	}
	for c, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if err := s.channels[c].readBatch(at, batch); err != nil {
			return 0, err
		}
		for i := range batch {
			done = sim.Max(done, batch[i].done)
		}
	}
	return done, nil
}

// ReadScatter fetches n bytes at each of several addresses as one
// scheduled batch - the gather shape Figure 12 illustrates: the
// controller sees all requests at once and can interleave their
// addressing phases with each other's data bursts.
func (s *Subsystem) ReadScatter(at sim.Time, addrs []uint64, n int) (data [][]byte, done sim.Time, err error) {
	batches := s.batches
	for c := range batches {
		batches[c] = batches[c][:0]
	}
	data = make([][]byte, len(addrs))
	done = at
	for i, a := range addrs {
		if err := s.checkRange(a, n); err != nil {
			return nil, 0, err
		}
		loc := s.locate(s.translate(a))
		if loc.col+n > int(s.rowBytes) {
			return nil, 0, fmt.Errorf("memctrl: scatter element [%#x,+%d) crosses a row boundary", a, n)
		}
		data[i] = make([]byte, n)
		batches[loc.ch] = append(batches[loc.ch], rowReq{mod: loc.pkg, row: loc.row, col: loc.col, dst: data[i]})
	}
	for c, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if err := s.channels[c].readBatch(at, batch); err != nil {
			return nil, 0, err
		}
		for i := range batch {
			done = sim.Max(done, batch[i].done)
		}
	}
	return data, done, nil
}

// Write stores data at addr, starting no earlier than at, and returns
// when the controller has accepted every row program (the array programs
// themselves are posted behind the per-module program buffers).
func (s *Subsystem) Write(at sim.Time, addr uint64, data []byte) (done sim.Time, err error) {
	if err := s.checkRange(addr, len(data)); err != nil {
		return 0, err
	}
	done = at
	// Full rows batch per channel so their program flows interleave
	// across modules; partial rows at the edges go through the
	// read-modify-write path individually. Wear accounting is deferred
	// until every chunk has executed: a gap move in the middle would
	// invalidate the translations pending chunks were built with.
	batches := s.wBatches
	for c := range batches {
		batches[c] = batches[c][:0]
	}
	progs := s.progs[:0]
	defer func() { s.progs = progs[:0] }()
	for off := 0; off < len(data); {
		paddr := s.translate(addr + uint64(off))
		loc := s.locate(paddr)
		take := int(s.rowBytes) - loc.col
		if take > len(data)-off {
			take = len(data) - off
		}
		if loc.col == 0 && take == int(s.rowBytes) {
			batches[loc.ch] = append(batches[loc.ch],
				writeReq{mod: loc.pkg, row: loc.row, data: data[off : off+take], paddr: paddr})
		} else {
			d, err := s.channels[loc.ch].writeRow(at, loc.pkg, loc.row, loc.col, data[off:off+take])
			if err != nil {
				return 0, err
			}
			progs = append(progs, programmed{at: d, paddr: paddr})
			done = sim.Max(done, d)
		}
		off += take
	}
	for c, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if err := s.channels[c].writeBatch(at, batch); err != nil {
			return 0, err
		}
		for _, r := range batch {
			progs = append(progs, programmed{at: r.done, paddr: r.paddr})
			done = sim.Max(done, r.done)
		}
	}
	for _, pr := range progs {
		if _, err := s.noteProgram(pr.at, pr.paddr); err != nil {
			return 0, err
		}
	}
	return done, nil
}

// PreErase declares [addr, addr+n) as write-intent: its current contents
// are dead and will be overwritten by the running kernel (Section V-A).
// The declaration itself is a register write (cheap); the selective-
// erasing schedulers then zero-program each declared row in background
// idle time before its overwrite arrives, so those programs need only
// SET pulses. A no-op unless the scheduler enables selective erasing,
// letting callers declare intent unconditionally.
func (s *Subsystem) PreErase(at sim.Time, addr uint64, n int) (done sim.Time, err error) {
	if !s.pol.selErase {
		return at, nil
	}
	if err := s.checkRange(addr, n); err != nil {
		return 0, err
	}
	s.intents = append(s.intents, intentRange{lo: addr, hi: addr + uint64(n), declaredAt: at})
	return at + sim.Microsecond, nil // one control-register update
}

// Populate stores data at addr with no protocol or timing cost, marking
// the touched words programmed. It is the offline-initialization path
// experiments use to place inputs in persistent storage before the
// measured run; it must never appear on a measured path.
func (s *Subsystem) Populate(addr uint64, data []byte) error {
	if err := s.checkRange(addr, len(data)); err != nil {
		return err
	}
	for off := 0; off < len(data); {
		loc := s.locate(s.translate(addr + uint64(off)))
		take := int(s.rowBytes) - loc.col
		if take > len(data)-off {
			take = len(data) - off
		}
		m := s.channels[loc.ch].modules[loc.pkg]
		if loc.col == 0 {
			if err := m.LoadRow(loc.row, data[off:off+take]); err != nil {
				return err
			}
		} else {
			row := m.PeekRow(loc.row)
			copy(row[loc.col:], data[off:off+take])
			if err := m.LoadRow(loc.row, row); err != nil {
				return err
			}
		}
		off += take
	}
	return nil
}

// Drain returns when every channel and module has finished all posted
// work; experiment harnesses use it as the end-of-run barrier.
func (s *Subsystem) Drain() sim.Time {
	var t sim.Time
	for _, ch := range s.channels {
		t = sim.Max(t, ch.drain())
	}
	return t
}

// Stats sums controller-level counters over the channels.
func (s *Subsystem) Stats() Stats {
	var out Stats
	for _, ch := range s.channels {
		out.Reads += ch.stats.Reads
		out.Writes += ch.stats.Writes
		out.PreactiveSkips += ch.stats.PreactiveSkips
		out.ActivateSkips += ch.stats.ActivateSkips
		out.FullAccesses += ch.stats.FullAccesses
		out.Prefetches += ch.stats.Prefetches
		out.InterleaveOverlaps += ch.stats.InterleaveOverlaps
		out.PreErasedRows += ch.stats.PreErasedRows
		out.PartitionOverlapWins += ch.stats.PartitionOverlapWins
		out.PausePreemptedReads += ch.stats.PausePreemptedReads
		out.BytesRead += ch.stats.BytesRead
		out.BytesWritten += ch.stats.BytesWritten
		for i := range out.ReadPS {
			out.ReadPS[i] += ch.stats.ReadPS[i]
		}
		out.WriteFullPS += ch.stats.WriteFullPS
		out.WriteRMWPS += ch.stats.WriteRMWPS
	}
	return out
}

// ChannelStats returns each channel's controller-level activity in
// channel order (the blame layer attributes service time per channel).
func (s *Subsystem) ChannelStats() []Stats {
	out := make([]Stats, len(s.channels))
	for i, ch := range s.channels {
		out[i] = ch.stats
	}
	return out
}

// Policy returns the name of the scheduling policy the subsystem was
// built with.
func (s *Subsystem) Policy() string { return s.pol.name }

// ModuleStats sums device-level counters over all modules.
func (s *Subsystem) ModuleStats() pram.Stats {
	var out pram.Stats
	for _, ch := range s.channels {
		for _, m := range ch.modules {
			ms := m.Stats()
			out.Preactives += ms.Preactives
			out.Activates += ms.Activates
			out.WindowAct += ms.WindowAct
			out.ReadBursts += ms.ReadBursts
			out.WriteBursts += ms.WriteBursts
			out.Programs += ms.Programs
			for i := range out.ProgramsBy {
				out.ProgramsBy[i] += ms.ProgramsBy[i]
			}
			out.Erases += ms.Erases
			out.BytesRead += ms.BytesRead
			out.BytesWritten += ms.BytesWritten
			out.ProgramTime += ms.ProgramTime
			out.Pauses += ms.Pauses
		}
	}
	return out
}

// CountersInto snapshots the subsystem's activity into the registry:
// per-channel scheduler counters, aggregate RAB/RDB hit-rate gauges,
// device-level totals and the wear leveler's gap moves. Collection is
// end-of-run only, so instrumented hot paths pay nothing for it.
func (s *Subsystem) CountersInto(c *obs.Counters) {
	if c == nil {
		return
	}
	for i, ch := range s.channels {
		p := fmt.Sprintf("memctrl.ch%d.", i)
		st := ch.stats
		c.Add(p+"reads", st.Reads)
		c.Add(p+"writes", st.Writes)
		c.Add(p+"rab_hits", st.PreactiveSkips)
		c.Add(p+"rdb_hits", st.ActivateSkips)
		c.Add(p+"full_accesses", st.FullAccesses)
		c.Add(p+"prefetches", st.Prefetches)
		c.Add(p+"interleave_overlaps", st.InterleaveOverlaps)
		c.Add(p+"pre_erased_rows", st.PreErasedRows)
		c.Add(p+"partition_overlap_won", st.PartitionOverlapWins)
		c.Add(p+"pause_preempted_reads", st.PausePreemptedReads)
		c.Add(p+"bytes_read", st.BytesRead)
		c.Add(p+"bytes_written", st.BytesWritten)
	}
	st := s.Stats()
	c.Add("memctrl.reads", st.Reads)
	c.Add("memctrl.writes", st.Writes)
	c.Add("memctrl.rab_hits", st.PreactiveSkips)
	c.Add("memctrl.rdb_hits", st.ActivateSkips)
	c.Add("memctrl.full_accesses", st.FullAccesses)
	c.Add("memctrl.prefetches", st.Prefetches)
	c.Add("memctrl.interleave_overlaps", st.InterleaveOverlaps)
	c.Add("memctrl.pre_erased_rows", st.PreErasedRows)
	c.Add("memctrl.partition_overlap_won", st.PartitionOverlapWins)
	c.Add("memctrl.pause_preempted_reads", st.PausePreemptedReads)
	c.Add("memctrl.bytes_read", st.BytesRead)
	c.Add("memctrl.bytes_written", st.BytesWritten)
	if binds := st.PreactiveSkips + st.ActivateSkips + st.FullAccesses; binds > 0 {
		// RDB hit = both phases skipped; RAB hit = at least the
		// pre-active skipped (an RDB hit implies a loaded RAB).
		c.SetGauge("memctrl.rdb_hit_rate", float64(st.ActivateSkips)/float64(binds))
		c.SetGauge("memctrl.rab_hit_rate", float64(st.PreactiveSkips+st.ActivateSkips)/float64(binds))
	}
	ms := s.ModuleStats()
	c.Add("pram.preactives", ms.Preactives)
	c.Add("pram.activates", ms.Activates)
	c.Add("pram.window_activates", ms.WindowAct)
	c.Add("pram.read_bursts", ms.ReadBursts)
	c.Add("pram.write_bursts", ms.WriteBursts)
	c.Add("pram.programs", ms.Programs)
	c.Add("pram.erases", ms.Erases)
	c.Add("pram.program_time_ps", int64(ms.ProgramTime))
	c.Add("pram.write_pauses", ms.Pauses)
	ws := s.WearStats()
	if ws.Enabled {
		c.Add("memctrl.wear.gap_moves", ws.GapMoves)
		c.Add("memctrl.wear.max_wear", ws.MaxWear)
	}
	c.Add("memctrl.bus_busy_ps", int64(s.BusBusyTime()))
}

// BusBusyTime sums DQ-bus occupancy over channels, for utilization
// reporting and the Figure 12 overlap measurement.
func (s *Subsystem) BusBusyTime() sim.Duration {
	var t sim.Duration
	for _, ch := range s.channels {
		t += ch.dataBus.BusyTime()
	}
	return t
}

// Module returns the device at (channel, pkg) for white-box tests.
func (s *Subsystem) Module(ch, pkg int) *pram.Module { return s.channels[ch].modules[pkg] }

// EnableTrace records the LPDDR2-NVM command stream of every module for
// protocol inspection (see Trace).
func (s *Subsystem) EnableTrace(on bool) {
	for _, ch := range s.channels {
		for _, m := range ch.modules {
			m.EnableTrace(on)
		}
	}
}

// Trace returns the recorded command stream of the module at (channel,
// pkg); empty unless EnableTrace preceded the traffic.
func (s *Subsystem) Trace(ch, pkg int) []lpddr.Command {
	return s.channels[ch].modules[pkg].TraceHistory()
}
