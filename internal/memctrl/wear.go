package memctrl

import (
	"fmt"

	"dramless/internal/sim"
)

// Start-gap wear leveling (Qureshi et al., MICRO'09), the scheme Section
// VII says DRAM-less can integrate in its PRAM controller. One spare row
// is kept per leveling region; every GapWritePeriod accepted programs the
// controller moves the gap one row (copying the displaced row into it),
// and once the gap wraps the whole region the start pointer advances -
// over time every logical row visits every physical row, bounding the
// wear of write-hot addresses.
//
// The remapping is purely algebraic:
//
//	p = (logical + start) mod N
//	if p >= gap { p++ }        // skip the gap row in N+1 physical rows
//
// Gap moves are real work: the displaced row is read and reprogrammed
// through the regular channel paths, so leveling costs bandwidth exactly
// as it would on hardware.

// wearState tracks the leveler of one subsystem. The physical row space
// splits into regions of R rows serving R-1 logical rows each (one spare
// per region, the gap); rows past the last whole region map identity.
type wearState struct {
	regionRows uint64 // R
	regions    uint64
	start      []uint64 // per-region start pointer, 0..R-2
	gap        []uint64 // per-region gap position, 0..R-1
	writes     []int64  // per-region programs since the last gap move
	moves      int64
	movePS     int64 // simulated ps spent on gap-move copies (blame)

	// perRow counts physical-row programs for endurance reporting.
	perRow map[uint64]int64
}

// WearConfig enables start-gap leveling in a Config.
type WearConfig struct {
	// Enabled turns the leveler on.
	Enabled bool
	// GapWritePeriod is how many accepted row programs per region trigger
	// one gap move there (psi in the paper; 100 costs ~1% extra writes).
	GapWritePeriod int
	// RegionRows is the leveling region size in rows (R); each region
	// donates one row as its gap, so capacity overhead is 1/R.
	RegionRows int
}

// DefaultWear returns the conventional psi=100 configuration with 512-row
// regions (0.2% capacity overhead).
func DefaultWear() WearConfig {
	return WearConfig{Enabled: true, GapWritePeriod: 100, RegionRows: 512}
}

// Validate reports configuration errors.
func (w WearConfig) Validate() error {
	if !w.Enabled {
		return nil
	}
	if w.GapWritePeriod <= 0 {
		return fmt.Errorf("memctrl: gap write period must be positive, got %d", w.GapWritePeriod)
	}
	if w.RegionRows < 2 {
		return fmt.Errorf("memctrl: leveling regions need at least 2 rows, got %d", w.RegionRows)
	}
	return nil
}

// initWear sets up the leveler over the subsystem's row space; each whole
// region donates one row-stripe as its gap.
func (s *Subsystem) initWear() {
	if !s.cfg.Wear.Enabled {
		return
	}
	totalRows := s.size / s.rowBytes
	r := uint64(s.cfg.Wear.RegionRows)
	regions := totalRows / r
	w := &wearState{
		regionRows: r,
		regions:    regions,
		start:      make([]uint64, regions),
		gap:        make([]uint64, regions),
		writes:     make([]int64, regions),
		perRow:     map[uint64]int64{},
	}
	for i := range w.gap {
		w.gap[i] = r - 1 // spare starts at the top of each region
	}
	s.wear = w
	// The exposed space shrinks by one row per region.
	s.size -= regions * s.rowBytes
}

// mapRow translates a logical global row index to its physical index.
func (w *wearState) mapRow(logical uint64) uint64 {
	perRegion := w.regionRows - 1
	region := logical / perRegion
	if region >= w.regions {
		// Identity tail past the last whole region, shifted by the
		// spares the regions consumed.
		return logical + w.regions
	}
	local := logical % perRegion
	p := (local + w.start[region]) % perRegion
	if p >= w.gap[region] {
		p++
	}
	return region*w.regionRows + p
}

// unmapRow inverts mapRow; ok=false for a spare (gap) row.
func (w *wearState) unmapRow(physical uint64) (uint64, bool) {
	region := physical / w.regionRows
	if region >= w.regions {
		return physical - w.regions, true // identity tail
	}
	local := physical % w.regionRows
	if local == w.gap[region] {
		return 0, false
	}
	if local > w.gap[region] {
		local--
	}
	perRegion := w.regionRows - 1
	l := (local + perRegion - w.start[region]%perRegion) % perRegion
	return region*perRegion + l, true
}

// locatePhysical maps a physical byte address to its channel/package/row,
// bypassing wear translation (used by the leveler's own copies).
func (s *Subsystem) locatePhysical(addr uint64) location { return s.locate(addr) }

// translate rewrites a byte address through the leveler (identity when
// leveling is off). Only same-row spans may be translated.
func (s *Subsystem) translate(addr uint64) uint64 {
	if s.wear == nil {
		return addr
	}
	row := addr / s.rowBytes
	return s.wear.mapRow(row)*s.rowBytes + addr%s.rowBytes
}

// noteProgram counts a program against physical row p and moves the gap
// when the period elapses. It returns the time the (posted) gap move
// settles, or `at` when none happened.
func (s *Subsystem) noteProgram(at sim.Time, paddr uint64) (sim.Time, error) {
	if s.wear == nil {
		return at, nil
	}
	w := s.wear
	prow := paddr / s.rowBytes
	w.perRow[prow]++
	region := prow / w.regionRows
	if region >= w.regions {
		return at, nil // identity tail is not leveled
	}
	w.writes[region]++
	if w.writes[region] < int64(s.cfg.Wear.GapWritePeriod) {
		return at, nil
	}
	w.writes[region] = 0
	w.moves++
	// Move the region's gap down one row: the row above it relocates in.
	// When the gap reaches 0 it wraps to the top and start advances, so
	// every logical row slowly rotates through every physical row.
	if w.gap[region] == 0 {
		w.gap[region] = w.regionRows - 1
		w.start[region] = (w.start[region] + 1) % (w.regionRows - 1)
		return at, nil
	}
	base := region * w.regionRows
	src := base + w.gap[region] - 1
	dst := base + w.gap[region]
	// The copy is real traffic through the regular channel paths. A
	// wear-aware policy defers it to the subsystem's idle window - after
	// every posted program and bus transfer settles - so leveling never
	// contends with the foreground request that triggered it (and never
	// pushes the shared bus frontiers into the in-flight programs'
	// shadow; see readBatch on partition overlap).
	if s.pol.wearIdleMoves {
		at = sim.Max(at, s.Drain())
	}
	data, d, err := s.readPhysicalRow(at, src)
	if err != nil {
		return 0, err
	}
	d, err = s.writePhysicalRow(d, dst, data)
	if err != nil {
		return 0, err
	}
	w.movePS += int64(d - at)
	w.gap[region]--
	w.perRow[dst]++
	return d, nil
}

// readPhysicalRow and writePhysicalRow access one global row by physical
// index, bypassing translation (the leveler's own copies).
func (s *Subsystem) readPhysicalRow(at sim.Time, row uint64) ([]byte, sim.Time, error) {
	loc := s.locatePhysical(row * s.rowBytes)
	done, err := s.channels[loc.ch].readRowInto(at, loc.pkg, loc.row, 0, s.wearRow)
	if err != nil {
		return nil, 0, err
	}
	return s.wearRow, done, nil
}

func (s *Subsystem) writePhysicalRow(at sim.Time, row uint64, data []byte) (sim.Time, error) {
	loc := s.locatePhysical(row * s.rowBytes)
	return s.channels[loc.ch].writeRow(at, loc.pkg, loc.row, 0, data)
}

// Wear reporting ------------------------------------------------------

// WearStats summarizes physical-row program counts.
type WearStats struct {
	Enabled   bool
	GapMoves  int64
	GapMovePS int64   // simulated ps spent on gap-move copies
	MaxWear   int64   // programs on the hottest physical row
	Rows      int     // physical rows ever programmed
	MeanWear  float64 // programs per touched row
}

// WearStats returns the current endurance picture.
func (s *Subsystem) WearStats() WearStats {
	out := WearStats{Enabled: s.wear != nil}
	if s.wear == nil {
		return out
	}
	out.GapMoves = s.wear.moves
	out.GapMovePS = s.wear.movePS
	var total int64
	for _, c := range s.wear.perRow {
		total += c
		if c > out.MaxWear {
			out.MaxWear = c
		}
	}
	out.Rows = len(s.wear.perRow)
	if out.Rows > 0 {
		out.MeanWear = float64(total) / float64(out.Rows)
	}
	return out
}
