package memctrl

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"dramless/internal/sim"
)

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	want := []string{"bare-metal", "interleaving", "selective-erasing", "final",
		"palp", "pause-aware", "wear-aware"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("policy %q not registered (have %v)", w, names)
		}
	}
	if len(Policies()) != len(names) {
		t.Errorf("Policies/PolicyNames length mismatch")
	}
	for _, p := range Policies() {
		if p.Description() == "" {
			t.Errorf("policy %q has no description", p.Name())
		}
	}
}

func TestPolicyByNameCaseInsensitive(t *testing.T) {
	for _, name := range []string{"final", "Final", "FINAL", "PaLP", "Pause-Aware"} {
		if _, err := PolicyByName(name); err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
	}
	// The legacy enum display names resolve to the canonical policies.
	for s := Noop; s <= Final; s++ {
		p, err := PolicyByName(s.String())
		if err != nil {
			t.Fatalf("enum display name %q not resolvable: %v", s.String(), err)
		}
		if p != PolicyFor(s) {
			t.Errorf("PolicyByName(%q) != PolicyFor(%v)", s.String(), s)
		}
	}
	_, err := PolicyByName("round-robin")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "known:") || !strings.Contains(err.Error(), "palp") {
		t.Errorf("unknown-policy error should list the registry: %v", err)
	}
}

func TestPolicyForMatchesEnumFlags(t *testing.T) {
	for s := Noop; s <= Final; s++ {
		p := PolicyFor(s)
		if p == nil {
			t.Fatalf("PolicyFor(%v) = nil", s)
		}
		caps := p.Capabilities()
		if caps.Interleave != s.Interleaving() || caps.SelectiveErase != s.SelectiveErasing() {
			t.Errorf("%v: policy caps %+v disagree with enum flags", s, caps)
		}
	}
	if PolicyFor(Scheduler(99)) != nil {
		t.Error("out-of-range scheduler adapted to a policy")
	}
}

func TestCapabilitiesValidate(t *testing.T) {
	if err := (Capabilities{PartitionOverlap: true, Interleave: true}).Validate(); err != nil {
		t.Errorf("valid capability vector rejected: %v", err)
	}
	if err := (Capabilities{PartitionOverlap: true}).Validate(); err == nil {
		t.Error("partition overlap without interleaving accepted")
	}
	cfg := DefaultPolicyConfig(&builtinPolicy{name: "broken", caps: Capabilities{PartitionOverlap: true}})
	if err := cfg.Validate(); err == nil {
		t.Error("config with invalid policy capabilities accepted")
	}
}

func TestRegisterPolicyRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterPolicy(&builtinPolicy{name: "FINAL"}) // case-insensitive collision
}

// Enum configs and their canonical named policies must build
// byte-and-time-identical subsystems.
func TestEnumAndNamedPolicyEquivalent(t *testing.T) {
	for s := Noop; s <= Final; s++ {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			byEnum := mustSubsystem(t, s)
			cfg := testConfig(s)
			cfg.Scheduler = 0
			cfg.Policy = PolicyFor(s)
			byName := MustNew(cfg)
			if byName.Policy() != byEnum.Policy() {
				t.Fatalf("policy names differ: %q vs %q", byName.Policy(), byEnum.Policy())
			}
			payload := bytes.Repeat([]byte{0x5A}, 512)
			for _, sub := range []*Subsystem{byEnum, byName} {
				if _, err := sub.Write(0, 4096, payload); err != nil {
					t.Fatal(err)
				}
			}
			dE, dN := byEnum.Drain(), byName.Drain()
			if dE != dN {
				t.Fatalf("write drain differs: %v vs %v", dE, dN)
			}
			_, e1, err := byEnum.Read(dE, 4096, 512)
			if err != nil {
				t.Fatal(err)
			}
			_, n1, err := byName.Read(dN, 4096, 512)
			if err != nil {
				t.Fatal(err)
			}
			if e1 != n1 {
				t.Fatalf("read completion differs: %v vs %v", e1, n1)
			}
		})
	}
}

// Property: the new policies preserve data correctness — any sequence of
// writes then reads matches a shadow buffer, exactly like the legacy
// schedulers in TestFunctionalEquivalenceProperty.
func TestNewPolicyFunctionalEquivalence(t *testing.T) {
	for _, name := range []string{"palp", "pause-aware", "wear-aware"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig(Noop)
			cfg.Policy = p
			sub := MustNew(cfg)
			shadow := make([]byte, 4096)
			now := sim.Time(0)
			f := func(off uint16, n uint8, fill byte, write bool) bool {
				addr := uint64(off) % 4000
				size := int(n)%96 + 1
				if addr+uint64(size) > 4096 {
					size = int(4096 - addr)
				}
				if write {
					data := bytes.Repeat([]byte{fill}, size)
					done, err := sub.Write(now, addr, data)
					if err != nil {
						return false
					}
					copy(shadow[addr:], data)
					now = sim.Max(done, sub.Drain())
					return true
				}
				got, done, err := sub.Read(now, addr, size)
				if err != nil {
					return false
				}
				now = done
				return bytes.Equal(got, shadow[addr:addr+uint64(size)])
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// mustPolicySubsystem builds a test subsystem running the named policy.
func mustPolicySubsystem(t *testing.T, name string) *Subsystem {
	t.Helper()
	p, err := PolicyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(Noop)
	cfg.Policy = p
	return MustNew(cfg)
}

// PALP: reads into a partition with an in-flight program are deferred to
// the batch tail, so mixed batches finish no later than under final, and
// the deferral counter records the reordering.
func TestPALPDefersBusyPartitionReads(t *testing.T) {
	elapsed := func(name string) (sim.Duration, Stats) {
		sub := mustPolicySubsystem(t, name)
		// Warm both rows so the reads below are pure array+bus work.
		buf := bytes.Repeat([]byte{0xC3}, 1024)
		if _, err := sub.Write(0, 0, buf); err != nil { // partition 0 rows
			t.Fatal(err)
		}
		start := sub.Drain()
		// Kick off a program into partition 0 of every module, then read a
		// window covering partition-0 and partition-1 rows while it runs.
		if _, err := sub.Write(start, 0, buf[:64]); err != nil {
			t.Fatal(err)
		}
		_, done, err := sub.Read(start+sim.Nanoseconds(100), 0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		return done - start, sub.Stats()
	}
	dFinal, _ := elapsed("final")
	dPALP, st := elapsed("palp")
	if dPALP > dFinal {
		t.Fatalf("palp mixed batch (%v) slower than final (%v)", dPALP, dFinal)
	}
	if st.PartitionOverlapWins == 0 {
		t.Fatal("palp never deferred a busy-partition read")
	}
}

// Pause-aware: a demand read behind an in-flight program pauses it
// instead of waiting ~10us for it to finish, and the preemption counter
// records the pause.
func TestPauseAwareReadsPreemptPrograms(t *testing.T) {
	readBehindWrite := func(name string) (sim.Duration, Stats) {
		sub := mustPolicySubsystem(t, name)
		buf := bytes.Repeat([]byte{7}, 32)
		if _, err := sub.Write(0, 0, buf); err != nil {
			t.Fatal(err)
		}
		start := sub.Drain()
		if _, err := sub.Write(start, 0, buf); err != nil { // re-program row 0
			t.Fatal(err)
		}
		_, done, err := sub.Read(start+sim.Nanoseconds(200), 0, 32)
		if err != nil {
			t.Fatal(err)
		}
		return done - start, sub.Stats()
	}
	dFinal, stF := readBehindWrite("final")
	dPause, stP := readBehindWrite("pause-aware")
	if dPause >= dFinal {
		t.Fatalf("pause-aware read behind program (%v) not faster than final (%v)", dPause, dFinal)
	}
	if stP.PausePreemptedReads == 0 {
		t.Fatal("pause-aware recorded no preempted reads")
	}
	if stF.PausePreemptedReads != 0 {
		t.Fatalf("final recorded %d preempted reads", stF.PausePreemptedReads)
	}
}

// Wear-aware: the policy force-enables start-gap leveling and defers the
// gap-move copy to the drain window.
func TestWearAwareEnablesLeveling(t *testing.T) {
	sub := mustPolicySubsystem(t, "wear-aware")
	if !sub.Config().Wear.Enabled {
		t.Fatal("wear-aware subsystem has wear leveling off")
	}
	buf := bytes.Repeat([]byte{1}, 32)
	interval := sub.Config().Wear.GapWritePeriod
	now := sim.Time(0)
	for i := 0; i < interval+1; i++ {
		done, err := sub.Write(now, 0, buf)
		if err != nil {
			t.Fatal(err)
		}
		now = sim.Max(done, sub.Drain())
	}
	if sub.WearStats().GapMoves == 0 {
		t.Fatal("no gap moves after exceeding the move interval")
	}
	// Data stays correct across the remap.
	got, _, err := sub.Read(sub.Drain(), 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("data lost across wear-aware gap move")
	}
}
