package memctrl

import "sync"

// scratchPool recycles the per-channel batch and wave scratch slices
// across subsystem lifetimes. Every forked experiment cell builds a
// fresh Subsystem whose scratch would otherwise re-grow from zero
// capacity over the run's thousands of batched requests; recycling keeps
// the grown capacity. Contents are garbage between uses (every consumer
// resets to [:0] before appending).
var scratchPool = struct {
	mu     sync.Mutex
	rows   [][]rowReq
	writes [][]writeReq
	rWaves [][][]*rowReq
	wWaves [][][]*writeReq
}{}

func pooledRows() []rowReq {
	scratchPool.mu.Lock()
	defer scratchPool.mu.Unlock()
	n := len(scratchPool.rows)
	if n == 0 {
		return nil
	}
	s := scratchPool.rows[n-1]
	scratchPool.rows[n-1] = nil
	scratchPool.rows = scratchPool.rows[:n-1]
	return s[:0]
}

func pooledWrites() []writeReq {
	scratchPool.mu.Lock()
	defer scratchPool.mu.Unlock()
	n := len(scratchPool.writes)
	if n == 0 {
		return nil
	}
	s := scratchPool.writes[n-1]
	scratchPool.writes[n-1] = nil
	scratchPool.writes = scratchPool.writes[:n-1]
	return s[:0]
}

func pooledRWaves() [][]*rowReq {
	scratchPool.mu.Lock()
	defer scratchPool.mu.Unlock()
	n := len(scratchPool.rWaves)
	if n == 0 {
		return nil
	}
	s := scratchPool.rWaves[n-1]
	scratchPool.rWaves[n-1] = nil
	scratchPool.rWaves = scratchPool.rWaves[:n-1]
	return s
}

func pooledWWaves() [][]*writeReq {
	scratchPool.mu.Lock()
	defer scratchPool.mu.Unlock()
	n := len(scratchPool.wWaves)
	if n == 0 {
		return nil
	}
	s := scratchPool.wWaves[n-1]
	scratchPool.wWaves[n-1] = nil
	scratchPool.wWaves = scratchPool.wWaves[:n-1]
	return s
}

// CopyFrom clones src's complete subsystem state into s: boot status,
// declared write-intent ranges, wear-leveler position, and every
// channel's scheduler and device state. Both subsystems must have been
// built from the same Config; construction-time wiring (intent closures,
// instruments, scratch buffers, the resolved scheduling policy - which
// holds no mutable state, its counters live in channel.stats) is left
// to the fresh construction.
func (s *Subsystem) CopyFrom(src *Subsystem) {
	s.bootedAt = src.bootedAt
	s.booted = src.booted
	s.intents = append(s.intents[:0], src.intents...)
	if s.wear != nil {
		s.wear.CopyFrom(src.wear)
	}
	for i, ch := range s.channels {
		ch.copyFrom(src.channels[i])
	}
}

// Release returns every module's row segments to the package-level
// segment pool and the batch/wave scratch to the scratch pool. Call only
// once the run's results have been collected.
func (s *Subsystem) Release() {
	scratchPool.mu.Lock()
	for c := range s.batches {
		if s.batches[c] != nil {
			scratchPool.rows = append(scratchPool.rows, s.batches[c])
			s.batches[c] = nil
		}
		if s.wBatches[c] != nil {
			scratchPool.writes = append(scratchPool.writes, s.wBatches[c])
			s.wBatches[c] = nil
		}
	}
	for _, ch := range s.channels {
		if ch.rWaves != nil {
			scratchPool.rWaves = append(scratchPool.rWaves, ch.rWaves)
			ch.rWaves = nil
		}
		if ch.wWaves != nil {
			scratchPool.wWaves = append(scratchPool.wWaves, ch.wWaves)
			ch.wWaves = nil
		}
	}
	scratchPool.mu.Unlock()
	for _, ch := range s.channels {
		for _, m := range ch.modules {
			m.Release()
		}
	}
}

func (w *wearState) CopyFrom(src *wearState) {
	copy(w.start, src.start)
	copy(w.gap, src.gap)
	copy(w.writes, src.writes)
	w.moves = src.moves
	w.movePS = src.movePS
	w.perRow = make(map[uint64]int64, len(src.perRow))
	for row, c := range src.perRow {
		w.perRow[row] = c
	}
}

func (ch *channel) copyFrom(src *channel) {
	ch.cmdBus.CopyFrom(src.cmdBus)
	// The data bus is shared by every module on the channel (ShareBus),
	// so it is copied exactly once here, never per module.
	ch.dataBus.CopyFrom(src.dataBus)
	for i, m := range ch.modules {
		m.CopyFrom(src.modules[i])
	}
	copy(ch.modLastDone, src.modLastDone)
	ch.lastDone = src.lastDone
	copy(ch.nextBA, src.nextBA)
	ch.stats = src.stats
}
