package memctrl

import (
	"dramless/internal/mem"
	"dramless/internal/sim"
)

var _ mem.Batcher = (*Subsystem)(nil)

// ReadRun implements mem.BatchReader. The subsystem always completes the
// whole run: unlike a private cache it has no shared level above it to
// yield to. Execution stays access by access because the channel
// protocol state (RAB/RDB residency, wave interleaving, wear pointers)
// advances per request; the batch entry gives run-shaped callers one
// call per coalesced run and a place to exploit same-row structure
// without touching the scalar path's timing.
func (s *Subsystem) ReadRun(now sim.Time, r mem.Run, dst []byte) (mem.RunResult, error) {
	return mem.ReadRunLoop(s, now, r, dst)
}

// WriteRun implements mem.BatchWriter (see ReadRun).
func (s *Subsystem) WriteRun(now sim.Time, r mem.Run, src []byte) (mem.RunResult, error) {
	return mem.WriteRunLoop(s, now, r, src)
}
