package memctrl

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Policy is a pluggable request scheduling policy for the PRAM
// controller. A policy declares its capabilities once; the channel and
// subsystem resolve them into plain booleans at construction time, so
// dispatch adds no per-request interface calls or allocations to the
// hot path (the zero-allocation datapath contract of DESIGN.md §8).
//
// The four legacy Scheduler enum values are registered as canonical
// policies ("bare-metal", "interleaving", "selective-erasing",
// "final"); PolicyFor adapts the enum onto them, so old call sites
// keep compiling and behave identically. New policies register through
// RegisterPolicy and become visible to the CLI, the experiment
// harness and the `dramless arena` tournament by name.
type Policy interface {
	// Name identifies the policy in the registry, in system.Config and
	// in rendered tables. Lookup is case-insensitive.
	Name() string
	// Description is a one-line summary for CLI listings.
	Description() string
	// Capabilities declares which scheduling behaviors the policy
	// enables. It is read once per subsystem build.
	Capabilities() Capabilities
}

// Capabilities is the capability vector of a scheduling policy: each
// field enables one behavior of the channel/subsystem scheduling
// machinery. The four legacy schedulers are points in this space; new
// policies compose the same axes.
type Capabilities struct {
	// Interleave overlaps one partition's array access with another
	// row's bus transfer (multi-resource-aware interleaving,
	// Figure 12). Without it every chip operation runs to completion
	// before the chip's next one starts.
	Interleave bool
	// SelectiveErase pre-programs declared write-intent rows with
	// all-zero words in background idle time, so later real writes
	// need only SET pulses (Section V-A).
	SelectiveErase bool
	// PartitionOverlap enables PALP-style partition-aware read
	// ordering: within an interleaved read batch, reads whose target
	// partition still has in-flight array work are deferred to the
	// tail waves, and sequential prefetches skip busy partitions.
	// Keeping busy-partition reads out of the early waves stops them
	// from stalling the shared command/DQ bus frontier for every
	// later wave. Requires Interleave.
	PartitionOverlap bool
	// PauseReads enables device-level write pausing for demand reads:
	// a read targeting a partition with an in-flight program pauses
	// the program, senses, and resumes it (pause overhead charged by
	// the device model). Speculative prefetches never pause.
	PauseReads bool
	// WearLeveling makes the policy wear-aware: start-gap leveling is
	// enabled (with DefaultWear when the config leaves it off) and the
	// leveler's gap-move copies are deferred to the subsystem's idle
	// window instead of contending with the foreground request.
	WearLeveling bool
}

// builtinPolicy is the concrete type behind every registered built-in.
type builtinPolicy struct {
	name string
	desc string
	caps Capabilities
}

func (p *builtinPolicy) Name() string               { return p.name }
func (p *builtinPolicy) Description() string        { return p.desc }
func (p *builtinPolicy) Capabilities() Capabilities { return p.caps }
func (p *builtinPolicy) String() string             { return p.name }

// The canonical policies. The first four reproduce the legacy
// Scheduler enum values exactly; the rest are the new schedulers the
// arena tournament compares against them.
var (
	policyBareMetal = &builtinPolicy{
		name: "bare-metal",
		desc: "strict in-order, no phase overlap (legacy Noop)",
	}
	policyInterleave = &builtinPolicy{
		name: "interleaving",
		desc: "multi-resource-aware interleaving, Figure 12 (legacy Interleave)",
		caps: Capabilities{Interleave: true},
	}
	policySelErase = &builtinPolicy{
		name: "selective-erasing",
		desc: "pre-RESET of declared write-intent rows, Section V-A (legacy SelErase)",
		caps: Capabilities{SelectiveErase: true},
	}
	policyFinal = &builtinPolicy{
		name: "final",
		desc: "interleaving + selective erasing, the paper's DRAM-less default",
		caps: Capabilities{Interleave: true, SelectiveErase: true},
	}
	policyPALP = &builtinPolicy{
		name: "palp",
		desc: "final + PALP-inspired partition read/write overlap (busy-partition reads deferred)",
		caps: Capabilities{Interleave: true, SelectiveErase: true, PartitionOverlap: true},
	}
	policyPauseAware = &builtinPolicy{
		name: "pause-aware",
		desc: "final + write pausing: demand reads preempt in-flight programs",
		caps: Capabilities{Interleave: true, SelectiveErase: true, PauseReads: true},
	}
	policyWearAware = &builtinPolicy{
		name: "wear-aware",
		desc: "final + start-gap leveling with gap moves deferred to idle windows",
		caps: Capabilities{Interleave: true, SelectiveErase: true, WearLeveling: true},
	}
)

// registry holds the registered policies in registration order. The
// mutex only matters for late RegisterPolicy calls racing readers;
// built-ins register before main.
var (
	registryMu sync.RWMutex
	registry   []Policy
)

func init() {
	for _, p := range []Policy{
		policyBareMetal, policyInterleave, policySelErase, policyFinal,
		policyPALP, policyPauseAware, policyWearAware,
	} {
		RegisterPolicy(p)
	}
}

// RegisterPolicy adds a policy to the registry. It panics on a nil
// policy, an empty name, a name that collides (case-insensitively)
// with a registered one, or a capability vector that fails Validate —
// registration is a programming act, like http.Handle.
func RegisterPolicy(p Policy) {
	if p == nil || p.Name() == "" {
		panic("memctrl: RegisterPolicy needs a named policy")
	}
	if err := p.Capabilities().Validate(); err != nil {
		panic(fmt.Sprintf("memctrl: policy %q: %v", p.Name(), err))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, q := range registry {
		if strings.EqualFold(q.Name(), p.Name()) {
			panic(fmt.Sprintf("memctrl: policy %q already registered", p.Name()))
		}
	}
	registry = append(registry, p)
}

// Validate reports capability combinations the scheduling machinery
// cannot honor.
func (c Capabilities) Validate() error {
	if c.PartitionOverlap && !c.Interleave {
		return fmt.Errorf("partition overlap requires interleaving (there are no waves to reorder)")
	}
	return nil
}

// Policies returns the registered policies in registration order.
func Policies() []Policy {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Policy, len(registry))
	copy(out, registry)
	return out
}

// PolicyNames returns the registered policy names in registration
// order.
func PolicyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name()
	}
	return out
}

// PolicyByName resolves a policy by registry name, case-insensitively.
// The legacy enum display names ("Bare-metal", "Interleaving",
// "Selective-erasing", "Final") resolve to their canonical policies.
// Unknown names return an error listing what is registered.
func PolicyByName(name string) (Policy, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	for _, p := range registry {
		if strings.EqualFold(p.Name(), name) {
			return p, nil
		}
	}
	known := make([]string, len(registry))
	for i, p := range registry {
		known[i] = p.Name()
	}
	sort.Strings(known)
	return nil, fmt.Errorf("memctrl: unknown scheduling policy %q (known: %s)",
		name, strings.Join(known, ", "))
}

// PolicyFor adapts a legacy Scheduler enum value onto its canonical
// registered policy; nil for out-of-range values (Config.Validate
// rejects those first).
func PolicyFor(s Scheduler) Policy {
	switch s {
	case Noop:
		return policyBareMetal
	case Interleave:
		return policyInterleave
	case SelErase:
		return policySelErase
	case Final:
		return policyFinal
	default:
		return nil
	}
}

// policy resolves the configured policy: the explicit Policy field
// when set, else the legacy Scheduler enum's canonical policy.
func (c Config) policy() Policy {
	if c.Policy != nil {
		return c.Policy
	}
	if p := PolicyFor(c.Scheduler); p != nil {
		return p
	}
	return policyBareMetal // unreachable after Validate
}

// resolved is the construction-time flattening of a Policy: the
// channel and subsystem hot paths read plain booleans instead of
// calling through the interface, keeping scheduling dispatch off the
// per-request cost model entirely.
type resolved struct {
	name             string
	interleave       bool
	selErase         bool
	partitionOverlap bool
	pauseReads       bool
	wearIdleMoves    bool
	// avoidBusyPrefetch suppresses speculative prefetches into busy
	// partitions: PALP keeps them from extending the partition
	// frontier behind an in-flight program, and pause-aware keeps a
	// speculative sense from pausing a real program.
	avoidBusyPrefetch bool
}

func resolvePolicy(p Policy) resolved {
	caps := p.Capabilities()
	return resolved{
		name:              p.Name(),
		interleave:        caps.Interleave,
		selErase:          caps.SelectiveErase,
		partitionOverlap:  caps.PartitionOverlap,
		pauseReads:        caps.PauseReads,
		wearIdleMoves:     caps.WearLeveling,
		avoidBusyPrefetch: caps.PartitionOverlap || caps.PauseReads,
	}
}
