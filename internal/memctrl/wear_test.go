package memctrl

import (
	"bytes"
	"testing"
	"testing/quick"

	"dramless/internal/sim"
)

func wearSubsystem(t *testing.T, period int) *Subsystem {
	t.Helper()
	cfg := testConfig(Final)
	cfg.Wear = WearConfig{Enabled: true, GapWritePeriod: period, RegionRows: 64}
	sub, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestWearConfigValidate(t *testing.T) {
	if err := DefaultWear().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (WearConfig{Enabled: true, GapWritePeriod: 0, RegionRows: 64}).Validate(); err == nil {
		t.Fatal("zero period accepted")
	}
	if err := (WearConfig{Enabled: true, GapWritePeriod: 10, RegionRows: 1}).Validate(); err == nil {
		t.Fatal("one-row region accepted")
	}
	if err := (WearConfig{}).Validate(); err != nil {
		t.Fatal("disabled config rejected")
	}
}

func TestWearReservesSpareRows(t *testing.T) {
	plain := mustSubsystem(t, Final)
	leveled := wearSubsystem(t, 100)
	regions := plain.Size() / 32 / 64
	if leveled.Size() != plain.Size()-regions*32 {
		t.Fatalf("leveled size %d, want %d (one spare row per 64-row region)",
			leveled.Size(), plain.Size()-regions*32)
	}
}

func TestWearMapUnmapInverse(t *testing.T) {
	// 5 regions of 16 rows + a 7-row identity tail.
	w := &wearState{
		regionRows: 16, regions: 5,
		start:  make([]uint64, 5),
		gap:    []uint64{15, 15, 15, 15, 15},
		writes: make([]int64, 5),
		perRow: map[uint64]int64{},
	}
	logicalRows := uint64(5*15 + 7)
	check := func() {
		t.Helper()
		f := func(l uint32) bool {
			logical := uint64(l) % logicalRows
			p := w.mapRow(logical)
			back, ok := w.unmapRow(p)
			return ok && back == logical
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("starts=%v gaps=%v: %v", w.start, w.gap, err)
		}
	}
	check()
	w.gap = []uint64{7, 0, 15, 3, 9}
	w.start = []uint64{3, 14, 0, 7, 1}
	check()
	for r := 0; r < 5; r++ {
		if _, ok := w.unmapRow(uint64(r)*16 + w.gap[r]); ok {
			t.Fatalf("region %d spare row unmapped to a logical row", r)
		}
	}
	// Identity tail round trip.
	if p := w.mapRow(5 * 15); p != 5*16 {
		t.Fatalf("tail mapping = %d, want %d", p, 5*16)
	}
}

func TestWearFunctionalRoundTrip(t *testing.T) {
	// With an aggressive period, the gap crosses live data repeatedly;
	// everything must still read back correctly.
	sub := wearSubsystem(t, 3)
	shadow := make([]byte, 4096)
	now := sim.Time(0)
	f := func(off uint16, fill byte, sz uint8) bool {
		addr := uint64(off) % 3800
		n := int(sz)%200 + 1
		data := bytes.Repeat([]byte{fill}, n)
		done, err := sub.Write(now, addr, data)
		if err != nil {
			return false
		}
		copy(shadow[addr:], data)
		now = sim.Max(done, sub.Drain())
		got, done2, err := sub.Read(now, 0, 3800)
		if err != nil {
			return false
		}
		now = done2
		return bytes.Equal(got[:3800], shadow[:3800])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if sub.WearStats().GapMoves == 0 {
		t.Fatal("gap never moved despite period 3")
	}
}

func TestWearSpreadsHotRow(t *testing.T) {
	// Hammer one logical row; with leveling the hottest physical row must
	// see far fewer programs than the total.
	const hammers = 600
	run := func(enabled bool) WearStats {
		cfg := testConfig(Final)
		cfg.Wear = WearConfig{Enabled: enabled, GapWritePeriod: 10, RegionRows: 8}
		sub := MustNew(cfg)
		buf := bytes.Repeat([]byte{0xAB}, 32)
		now := sim.Time(0)
		for i := 0; i < hammers; i++ {
			d, err := sub.Write(now, 64, buf)
			if err != nil {
				t.Fatal(err)
			}
			now = sim.Max(d, sub.Drain())
		}
		return sub.WearStats()
	}
	leveled := run(true)
	if !leveled.Enabled {
		t.Fatal("stats say leveling disabled")
	}
	if leveled.GapMoves < hammers/10-2 {
		t.Fatalf("gap moves = %d, want ~%d", leveled.GapMoves, hammers/10)
	}
	// Start-gap bounds per-row wear to roughly period x rows-visited; the
	// hot row's writes must be spread across many physical rows.
	if leveled.MaxWear >= hammers/2 {
		t.Fatalf("max wear %d out of %d writes: leveling ineffective", leveled.MaxWear, hammers)
	}
	// The hot row rotates within its 8-row region: all of it gets used.
	if leveled.Rows < 8 {
		t.Fatalf("only %d physical rows touched, want the whole region", leveled.Rows)
	}
	plain := run(false)
	if plain.Enabled || plain.GapMoves != 0 {
		t.Fatalf("disabled run recorded leveling: %+v", plain)
	}
}

func TestWearLevelingCostsBandwidth(t *testing.T) {
	// Gap moves are real copies: the leveled run must be slower on a
	// write-heavy stream than the plain one, but not wildly (psi=100
	// should cost a few percent).
	stream := func(wear WearConfig) sim.Duration {
		cfg := testConfig(Final)
		cfg.Wear = wear
		sub := MustNew(cfg)
		buf := bytes.Repeat([]byte{1}, 128)
		now := sim.Time(0)
		for i := 0; i < 500; i++ {
			d, err := sub.Write(now, uint64(i%64)*128, buf)
			if err != nil {
				t.Fatal(err)
			}
			now = d
		}
		return sub.Drain()
	}
	plain := stream(WearConfig{})
	leveled := stream(DefaultWear())
	if leveled <= plain {
		t.Fatalf("leveling was free: %v vs %v", leveled, plain)
	}
	if float64(leveled) > 1.5*float64(plain) {
		t.Fatalf("psi=100 leveling cost %.0f%%, want modest",
			(float64(leveled)/float64(plain)-1)*100)
	}
}

func TestWearWithSelectiveErasing(t *testing.T) {
	// Intent ranges are logical; the unmap path must keep selective
	// erasing working under an active leveler.
	sub := wearSubsystem(t, 5)
	buf := bytes.Repeat([]byte{0x77}, 32)
	d, err := sub.Write(0, 96, buf)
	if err != nil {
		t.Fatal(err)
	}
	d = sim.Max(d, sub.Drain())
	d2, err := sub.PreErase(d, 96, 32)
	if err != nil {
		t.Fatal(err)
	}
	start := sim.Max(d2, sub.Drain()) + sim.Milliseconds(1)
	if _, err := sub.Write(start, 96, buf); err != nil {
		t.Fatal(err)
	}
	if sub.Stats().PreErasedRows == 0 {
		t.Fatal("selective erasing inert under wear leveling")
	}
	got, _, err := sub.Read(sub.Drain(), 96, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("data corrupted")
	}
}
