package memctrl

import (
	"testing"

	"dramless/internal/obs"
	"dramless/internal/sim"
)

// TestObservedReadAllocationFree pins the instrumented memctrl hot path:
// with an observer attached, the steady-state read records its latency
// histogram sample and series points without allocating. The series
// window is stretched so window growth (amortized append, exercised
// elsewhere) stays out of the measurement; the Noop scheduler keeps the
// wave-building batcher (which allocates per call by design) off the
// path.
func TestObservedReadAllocationFree(t *testing.T) {
	cfg := testConfig(Noop)
	cfg.Obs = obs.New(obs.WithSeriesWindow(sim.Duration(1) << 60))
	sub := MustNew(cfg)

	dst := make([]byte, cfg.ChannelRequestBytes)
	// Warm: first read activates the row and registers every window.
	if _, err := sub.ReadInto(0, 0, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sub.ReadInto(sim.Microsecond, 0, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("observed ReadInto allocates %.1f objects per call, want 0", allocs)
	}
}

// TestNilObserverReadAllocationFree pins the disabled state at the new
// call sites: the nil-handle chain (nil set -> nil histogram/series ->
// no-op Record) must not cost an allocation either.
func TestNilObserverReadAllocationFree(t *testing.T) {
	cfg := testConfig(Noop)
	sub := MustNew(cfg)

	dst := make([]byte, cfg.ChannelRequestBytes)
	if _, err := sub.ReadInto(0, 0, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sub.ReadInto(sim.Microsecond, 0, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("unobserved ReadInto allocates %.1f objects per call, want 0", allocs)
	}
}
