package memctrl

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"dramless/internal/pram"
	"dramless/internal/sim"
)

// testConfig returns a small subsystem (64 Ki rows per module) so tests
// stay fast while keeping the full 2x16 topology.
func testConfig(s Scheduler) Config {
	cfg := DefaultConfig(s)
	cfg.Geometry.RowsPerModule = 1 << 16
	return cfg
}

func mustSubsystem(t *testing.T, s Scheduler) *Subsystem {
	t.Helper()
	sub, err := New(testConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig(Final).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cfg := DefaultConfig(Final)
	cfg.ChannelRequestBytes = 100 // not a row multiple
	if err := cfg.Validate(); err == nil {
		t.Error("bad channel request size accepted")
	}
	cfg = DefaultConfig(Final)
	cfg.Scheduler = Scheduler(99)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestSchedulerFlags(t *testing.T) {
	if Noop.Interleaving() || Noop.SelectiveErasing() {
		t.Error("Noop claims optimizations")
	}
	if !Interleave.Interleaving() || Interleave.SelectiveErasing() {
		t.Error("Interleave flags wrong")
	}
	if SelErase.Interleaving() || !SelErase.SelectiveErasing() {
		t.Error("SelErase flags wrong")
	}
	if !Final.Interleaving() || !Final.SelectiveErasing() {
		t.Error("Final flags wrong")
	}
	if Noop.String() != "Bare-metal" || Final.String() != "Final" {
		t.Error("scheduler names wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	sub := mustSubsystem(t, Final)
	payload := make([]byte, 1024) // one full stripe: every module once
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	done, err := sub.Write(0, 4096, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sub.Read(sub.Drain(), 4096, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
	if done <= 0 {
		t.Fatal("write completed at time zero")
	}
}

func TestUnalignedAccessRoundTrip(t *testing.T) {
	sub := mustSubsystem(t, Final)
	payload := []byte("dramless: near-data processing with new memory!")
	addr := uint64(1000) // crosses row and module boundaries, offset 8 in row
	if _, err := sub.Write(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := sub.Read(sub.Drain(), addr, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestStripingCoversAllModules(t *testing.T) {
	sub := mustSubsystem(t, Final)
	// 1 KiB from address 0 must touch all 32 modules exactly once.
	seen := map[[2]int]int{}
	for off := uint64(0); off < 1024; off += 32 {
		loc := sub.locate(off)
		seen[[2]int{loc.ch, loc.pkg}]++
	}
	if len(seen) != 32 {
		t.Fatalf("stripe touched %d modules, want 32", len(seen))
	}
	for k, v := range seen {
		if v != 1 {
			t.Fatalf("module %v touched %d times", k, v)
		}
	}
	// Consecutive stripes advance the module-local row.
	l0, l1 := sub.locate(0), sub.locate(1024)
	if l0.ch != l1.ch || l0.pkg != l1.pkg || l1.row != l0.row+1 {
		t.Fatalf("stripe advance wrong: %+v -> %+v", l0, l1)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	sub := mustSubsystem(t, Final)
	if _, _, err := sub.Read(0, sub.Size(), 1); err == nil {
		t.Error("read past end accepted")
	}
	if _, err := sub.Write(0, sub.Size()-1, []byte{1, 2}); err == nil {
		t.Error("write past end accepted")
	}
	if _, _, err := sub.Read(0, 0, 0); err == nil {
		t.Error("zero-size read accepted")
	}
}

func TestPhaseSkippingStats(t *testing.T) {
	sub := mustSubsystem(t, Final)
	// Re-reading the same 32 B row must skip both phases after the first
	// access.
	if _, _, err := sub.Read(0, 0, 32); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sub.Read(sim.Microseconds(1), 0, 32); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.FullAccesses == 0 {
		t.Error("first access not counted as full")
	}
	if st.ActivateSkips == 0 {
		t.Errorf("second access did not skip phases: %+v", st)
	}
}

func TestPhaseSkippingDisabled(t *testing.T) {
	cfg := testConfig(Final)
	cfg.PhaseSkipping = false
	cfg.Prefetch = false
	sub := MustNew(cfg)
	for i := 0; i < 3; i++ {
		if _, _, err := sub.Read(sim.Time(i)*sim.Microsecond, 0, 32); err != nil {
			t.Fatal(err)
		}
	}
	st := sub.Stats()
	if st.ActivateSkips != 0 || st.PreactiveSkips != 0 {
		t.Fatalf("phase skips recorded while disabled: %+v", st)
	}
	if st.FullAccesses != 3 {
		t.Fatalf("full accesses = %d, want 3", st.FullAccesses)
	}
}

func TestRereadLatencyDropsWithPhaseSkipping(t *testing.T) {
	sub := mustSubsystem(t, Noop) // no prefetch/interleave noise
	_, d1, err := sub.Read(0, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	start2 := d1 + sim.Microsecond
	_, d2, err := sub.Read(start2, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	first, second := d1, d2-start2
	if second >= first {
		t.Fatalf("RDB-hit read (%v) not faster than cold read (%v)", second, first)
	}
	// Skipping both phases removes tRP + tRCD (~87.5 ns of ~126.5 ns).
	if second > first/2 {
		t.Fatalf("RDB-hit read %v, want well under half of %v", second, first)
	}
}

func TestInterleavingBeatsBareMetalOnStreamingReads(t *testing.T) {
	read512 := func(s Scheduler) sim.Duration {
		cfg := testConfig(s)
		cfg.Prefetch = false
		sub := MustNew(cfg)
		_, done, err := sub.Read(0, 0, 512)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	noop := read512(Noop)
	inter := read512(Interleave)
	if inter >= noop {
		t.Fatalf("interleave (%v) not faster than bare-metal (%v)", inter, noop)
	}
	// The paper reports interleaving hides array access behind transfer
	// by ~40%; at the controller microbenchmark level the win on a
	// 16-row streaming read should be at least that.
	if float64(inter) > 0.6*float64(noop) {
		t.Fatalf("interleave %v vs noop %v: less than 40%% hiding", inter, noop)
	}
}

func TestFig12TwoRequestOverlap(t *testing.T) {
	// Figure 12: req-0 and req-1 target different partitions of the same
	// chip. With interleaving, req-1's tRP+tRCD overlaps req-0's data
	// burst, so the pair completes sooner than serial processing.
	elapsed := func(s Scheduler) sim.Duration {
		cfg := testConfig(s)
		cfg.Prefetch = false
		sub := MustNew(cfg)
		// Module-local rows 0 and 1 are partitions 0 and 1 of (ch0, pkg0):
		// global addresses 0 and 1024.
		_, d0, err := sub.Read(0, 0, 32)
		if err != nil {
			t.Fatal(err)
		}
		_, d1, err := sub.Read(0, 1024, 32)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Max(d0, d1)
	}
	serial := elapsed(Noop)
	overlapped := elapsed(Interleave)
	if overlapped >= serial {
		t.Fatalf("interleaved pair (%v) not faster than serial (%v)", overlapped, serial)
	}
}

func TestSelectiveErasingSpeedsOverwrites(t *testing.T) {
	overwriteTime := func(s Scheduler) sim.Duration {
		sub := mustSubsystem(t, s)
		buf := bytes.Repeat([]byte{0xA5}, 32)
		// Stale contents, then declare write intent; once the background
		// pass has had time to run, the overwrite is SET-only.
		d, err := sub.Write(0, 64, buf)
		if err != nil {
			t.Fatal(err)
		}
		d = sim.Max(d, sub.Drain())
		d2, err := sub.PreErase(d, 64, 32)
		if err != nil {
			t.Fatal(err)
		}
		start := sim.Max(d2, sub.Drain()) + sim.Milliseconds(1) // idle window for the pre-RESET
		if _, err = sub.Write(start, 64, buf); err != nil {
			t.Fatal(err)
		}
		return sub.Drain() - start
	}
	plain := overwriteTime(Interleave) // PreErase is a no-op here
	erased := overwriteTime(Final)
	if erased >= plain {
		t.Fatalf("pre-erased overwrite (%v) not faster than plain (%v)", erased, plain)
	}
	red := 1 - float64(erased)/float64(plain)
	if red < 0.30 || red > 0.60 {
		t.Fatalf("selective-erase reduction = %.0f%%, want ~44%%", red*100)
	}
}

func TestPreEraseNoopWithoutSelErase(t *testing.T) {
	sub := mustSubsystem(t, Interleave)
	done, err := sub.PreErase(5, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if done != 5 {
		t.Fatalf("no-op PreErase returned %v, want the start time", done)
	}
	if st := sub.Stats(); st.PreErasedRows != 0 {
		t.Fatalf("rows pre-erased despite policy: %+v", st)
	}
}

func TestPreEraseSkipsPartialRows(t *testing.T) {
	sub := mustSubsystem(t, Final)
	// Live data around the intent region must survive.
	live := bytes.Repeat([]byte{0x77}, 96)
	if _, err := sub.Write(0, 0, live); err != nil {
		t.Fatal(err)
	}
	d := sub.Drain()
	// Intent [40, 88): only row [64,96) is fully covered... no wait,
	// rows are 32 B: [32,64) is partially covered (40..64), [64,88)
	// partially. Only full rows inside the range may be zeroed; here
	// none are full, so nothing may be erased.
	if _, err := sub.PreErase(d, 40, 48); err != nil {
		t.Fatal(err)
	}
	got, _, err := sub.Read(sub.Drain(), 0, 96)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, live) {
		t.Fatal("PreErase destroyed live data in partial rows")
	}
}

func TestBootInitializesAllModules(t *testing.T) {
	sub := mustSubsystem(t, Final)
	done, err := sub.Boot(0)
	if err != nil {
		t.Fatal(err)
	}
	if done < 150*sim.Microsecond {
		t.Fatalf("boot completed at %v, before auto-init time", done)
	}
	for c := 0; c < 2; c++ {
		for p := 0; p < 16; p++ {
			if !sub.Module(c, p).Ready(done) {
				t.Fatalf("module %d/%d not ready after boot", c, p)
			}
		}
	}
}

func TestPrefetchPopulatesNextRow(t *testing.T) {
	cfg := testConfig(Final)
	sub := MustNew(cfg)
	if _, _, err := sub.Read(0, 0, 32); err != nil { // module (0,0) row 0
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.Prefetches == 0 {
		t.Fatal("no prefetch issued on streaming read")
	}
	// The next stripe's same-module row (global addr 1024) should now be
	// a phase-skip hit.
	if _, ok := sub.Module(0, 0).RDBHit(1); !ok {
		t.Fatal("prefetched row not in an RDB")
	}
}

func TestWritesArePostedBehindProgramBuffer(t *testing.T) {
	sub := mustSubsystem(t, Final)
	buf := bytes.Repeat([]byte{1}, 32)
	done, err := sub.Write(0, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	// The controller accepts the write long before the ~10 us array
	// program finishes.
	if done >= sim.Microseconds(5) {
		t.Fatalf("write acceptance took %v, want < 5us (posted)", done)
	}
	if drain := sub.Drain(); drain < sim.Microseconds(10) {
		t.Fatalf("array program finished at %v, want >= 10us", drain)
	}
}

func TestModuleStatsAggregate(t *testing.T) {
	sub := mustSubsystem(t, Final)
	if _, err := sub.Write(0, 0, bytes.Repeat([]byte{3}, 64)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sub.Read(sub.Drain(), 0, 64); err != nil {
		t.Fatal(err)
	}
	ms := sub.ModuleStats()
	if ms.Programs != 2 {
		t.Fatalf("programs = %d, want 2 (two rows)", ms.Programs)
	}
	if ms.BytesRead < 64 {
		t.Fatalf("bytes read = %d", ms.BytesRead)
	}
	cs := sub.Stats()
	if cs.BytesWritten != 64 || cs.BytesRead != 64 {
		t.Fatalf("controller stats = %+v", cs)
	}
}

// Property: any sequence of writes then reads over a 4 KiB region matches
// a shadow buffer, across all schedulers.
func TestFunctionalEquivalenceProperty(t *testing.T) {
	for _, sched := range []Scheduler{Noop, Interleave, SelErase, Final} {
		sched := sched
		t.Run(sched.String(), func(t *testing.T) {
			sub := mustSubsystem(t, sched)
			shadow := make([]byte, 4096)
			now := sim.Time(0)
			f := func(off uint16, n uint8, fill byte, write bool) bool {
				addr := uint64(off) % 4000
				size := int(n)%96 + 1
				if addr+uint64(size) > 4096 {
					size = int(4096 - addr)
				}
				if write {
					data := bytes.Repeat([]byte{fill}, size)
					done, err := sub.Write(now, addr, data)
					if err != nil {
						return false
					}
					copy(shadow[addr:], data)
					now = sim.Max(done, sub.Drain())
					return true
				}
				got, done, err := sub.Read(now, addr, size)
				if err != nil {
					return false
				}
				now = done
				return bytes.Equal(got, shadow[addr:addr+uint64(size)])
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSubsystemSizeExcludesOverlayWindow(t *testing.T) {
	sub := mustSubsystem(t, Final)
	g := sub.Config().Geometry
	perModule := g.Size() - pram.WindowSize
	if want := perModule * 32; sub.Size() != want {
		t.Fatalf("size = %d, want %d", sub.Size(), want)
	}
	// The last addressable byte must be usable.
	if _, err := sub.Write(0, sub.Size()-32, bytes.Repeat([]byte{9}, 32)); err != nil {
		t.Fatalf("write at top of space failed: %v", err)
	}
}

func TestCommandTrace(t *testing.T) {
	sub := mustSubsystem(t, Final)
	sub.EnableTrace(true)
	if _, _, err := sub.Read(0, 0, 32); err != nil { // (ch0, pkg0) row 0
		t.Fatal(err)
	}
	trace := sub.Trace(0, 0)
	if len(trace) < 3 {
		t.Fatalf("trace has %d commands, want a full three-phase sequence", len(trace))
	}
	// The cold read must show PREACTIVE -> ACTIVATE -> READ in order.
	var ops []string
	for _, c := range trace {
		ops = append(ops, c.Op.String())
	}
	joined := strings.Join(ops, " ")
	if !strings.Contains(joined, "PREACTIVE") || !strings.Contains(joined, "ACTIVATE") || !strings.Contains(joined, "READ") {
		t.Fatalf("trace %v missing a phase", joined)
	}
	// Untraced module stays empty.
	if got := sub.Trace(1, 3); len(got) != 0 {
		t.Fatalf("idle module has %d commands", len(got))
	}
}
