package memctrl

import (
	"fmt"

	"dramless/internal/obs"
	"dramless/internal/pram"
	"dramless/internal/sim"
)

// channel is one LPDDR2-NVM channel: a command/address bus and a 16-bit
// data bus shared by all packages on the channel (Figure 14), plus the
// per-module controller state of the command generator.
type channel struct {
	cfg Config
	// pol is the configured scheduling policy flattened to booleans at
	// construction (resolvePolicy): the hot path never calls through
	// the Policy interface.
	pol     resolved
	cmdBus  *sim.Resource // CA bus: one command packet per tCK
	dataBus *sim.Resource // shared dq[15:0]: one 32 B burst per tBURST
	modules []*pram.Module

	// modLastDone serializes operations per chip for the bare-metal
	// (Noop) policy: a chip's next operation may not begin before its
	// previous one fully completed (Figure 12's non-interleaved case).
	// Different chips still proceed in parallel - that is the device's
	// bank-level parallelism, not a scheduler optimization.
	modLastDone []sim.Time
	lastDone    sim.Time // channel-wide completion frontier (drain)

	// nextBA is the round-robin RAB/RDB victim pointer per module.
	nextBA []uint8

	// intent reports whether a module-local row is inside a declared
	// write-intent region and when the declaration was made (set by the
	// subsystem for selective erasing).
	intent func(mod int, rowAddr uint64) (declaredAt sim.Time, ok bool)

	// zeroRow is the all-zero row image every selective-erase pre-RESET
	// programs; rmwRow is the scratch row the read-modify-write path
	// merges into. Both are safe to reuse: ProgramRow copies bytes into
	// the overlay window store and never retains its argument.
	zeroRow []byte
	rmwRow  []byte
	execBuf [1]byte // the 1-byte RegExec touch, hoisted off writeWave

	// Batch scratch, reused across calls (the channel is single-threaded
	// per simulation): per-module wave counters, the wave tables of the
	// read and write batch paths, and readWave's per-module buffer-pair
	// claim masks. Reuse keeps the kernel phase's per-request cost free
	// of map and slice churn.
	seenScratch []int
	rWaves      [][]*rowReq
	wWaves      [][]*writeReq
	claimed     []uint8

	// tr records per-channel timeline spans when tracing is on; proc is
	// the channel's trace process name and tracks the per-package thread
	// names, precomputed so recording a span allocates nothing. tr is nil
	// when observation is off (the nil Tracer no-ops).
	tr     *obs.Tracer
	proc   string
	tracks []string

	// Latency/series instruments, resolved once at construction and
	// shared across channels (one distribution per instrument name).
	// hRead is indexed by read outcome; all nil when observation is off,
	// checked once per access.
	hRead         [4]*obs.Histogram
	hWriteFull    *obs.Histogram
	hWriteRMW     *obs.Histogram
	sBytesRead    *obs.Series
	sBytesWritten *obs.Series
	sReads        *obs.Series
	sRDBHits      *obs.Series
	sRABHits      *obs.Series

	stats Stats
}

// Read outcomes (hRead indices): full three-phase access, both phases
// skipped (RDB hit), pre-active skipped (RAB hit), and reads that
// paused an in-flight program (write pausing; overrides the others).
const (
	outFull = iota
	outRDB
	outRAB
	outPaused
)

// Exported aliases of the read outcomes, the indices of Stats.ReadPS.
const (
	ReadOutFull   = outFull
	ReadOutRDB    = outRDB
	ReadOutRAB    = outRAB
	ReadOutPaused = outPaused
)

func newChannel(idx int, cfg Config) (*channel, error) {
	ch := &channel{
		cfg:         cfg,
		pol:         resolvePolicy(cfg.policy()),
		cmdBus:      sim.NewResource(fmt.Sprintf("ch%d.ca", idx)),
		dataBus:     sim.NewResource(fmt.Sprintf("ch%d.dq", idx)),
		nextBA:      make([]uint8, cfg.Params.Packages),
		modLastDone: make([]sim.Time, cfg.Params.Packages),
		zeroRow:     make([]byte, cfg.Geometry.RowBytes),
		rmwRow:      make([]byte, cfg.Geometry.RowBytes),
		seenScratch: make([]int, cfg.Params.Packages),
		claimed:     make([]uint8, cfg.Params.Packages),
	}
	ch.execBuf[0] = 1
	ch.tr = cfg.Obs.Tracer()
	ch.proc = fmt.Sprintf("pram.ch%d", idx)
	ch.tracks = make([]string, cfg.Params.Packages)
	for p := range ch.tracks {
		ch.tracks[p] = fmt.Sprintf("pkg%d", p)
	}
	for p := 0; p < cfg.Params.Packages; p++ {
		m, err := pram.NewModule(cfg.Geometry, cfg.Params)
		if err != nil {
			return nil, err
		}
		m.ShareBus(ch.dataBus)
		m.EnableWritePausing(cfg.WritePausing || ch.pol.pauseReads)
		ch.modules = append(ch.modules, m)
	}
	if hs := cfg.Obs.Histograms(); hs != nil {
		ch.hRead[outFull] = hs.Get(obs.HistMemReadFull)
		ch.hRead[outRDB] = hs.Get(obs.HistMemReadRDBHit)
		ch.hRead[outRAB] = hs.Get(obs.HistMemReadRABHit)
		ch.hRead[outPaused] = hs.Get(obs.HistMemReadPaused)
		ch.hWriteFull = hs.Get(obs.HistMemWriteFull)
		ch.hWriteRMW = hs.Get(obs.HistMemWriteRMW)
	}
	if ss := cfg.Obs.Series(); ss != nil {
		ch.sBytesRead = ss.Get(obs.SeriesMemBytesRead)
		ch.sBytesWritten = ss.Get(obs.SeriesMemBytesWritten)
		ch.sReads = ss.Get(obs.SeriesMemReads)
		ch.sRDBHits = ss.Get(obs.SeriesMemRDBHits)
		ch.sRABHits = ss.Get(obs.SeriesMemRABHits)
		pauseS := ss.Get(obs.SeriesMemWritePause)
		for _, m := range ch.modules {
			m.SetPauseHook(func(at sim.Time, stretch sim.Duration) {
				pauseS.Add(at, int64(stretch))
			})
		}
	}
	return ch, nil
}

// recordRead feeds one completed demand read into the latency and
// series instruments. Call sites guard on ch.hRead[outFull] != nil:
// the method is beyond the inlining budget, so the guard keeps the
// observation-off hot path free of the call.
func (ch *channel) recordRead(out uint8, at, done sim.Time, n int) {
	ch.hRead[out].Record(int64(done - at))
	ch.sReads.Add(at, 1)
	switch out {
	case outRDB:
		ch.sRDBHits.Add(at, 1)
	case outRAB:
		ch.sRABHits.Add(at, 1)
	}
	ch.sBytesRead.Add(done, int64(n))
}

// recordWrite feeds one accepted write into the instruments. Call
// sites guard on ch.hWriteFull != nil (see recordRead).
func (ch *channel) recordWrite(fullRow bool, at, done sim.Time, n int) {
	if fullRow {
		ch.hWriteFull.Record(int64(done - at))
	} else {
		ch.hWriteRMW.Record(int64(done - at))
	}
	ch.sBytesWritten.Add(done, int64(n))
}

// issue charges one command packet on the CA bus and returns when the
// device sees it.
func (ch *channel) issue(at sim.Time) sim.Time {
	start := ch.cmdBus.Acquire(at, ch.cfg.Params.TCK)
	return start + ch.cfg.Params.TCK
}

// gate applies the scheduling policy's ordering constraint to an
// operation on module mod that wants to start at `at`.
func (ch *channel) gate(at sim.Time, mod int) sim.Time {
	if !ch.pol.interleave {
		return sim.Max(at, ch.modLastDone[mod])
	}
	return at
}

// complete records an operation completion for the Noop ordering.
func (ch *channel) complete(done sim.Time, mod int) {
	if done > ch.modLastDone[mod] {
		ch.modLastDone[mod] = done
	}
	if done > ch.lastDone {
		ch.lastDone = done
	}
}

// windowBA returns the RAB/RDB pair reserved for overlay-window flows, so
// write flows keep their window row bound and phase-skip every step.
func (ch *channel) windowBA() uint8 { return uint8(ch.cfg.Params.NumRAB - 1) }

// victimBA picks the next RAB/RDB pair for array reads, rotating over the
// pairs not reserved for the overlay window.
func (ch *channel) victimBA(mod int) uint8 {
	n := uint8(ch.cfg.Params.NumRAB - 1)
	if n == 0 {
		return 0
	}
	ba := ch.nextBA[mod] % n
	ch.nextBA[mod] = (ba + 1) % n
	return ba
}

// bindRow makes module mod's RDB hold rowAddr, skipping whatever phases
// the buffered state allows, and returns the buffer pair, the time the
// row data is available, and the access outcome for the latency
// instruments (which phases were skipped, or outPaused when the
// activate had to pause an in-flight program).
func (ch *channel) bindRow(at sim.Time, mod int, rowAddr uint64) (ba uint8, done sim.Time, out uint8, err error) {
	m := ch.modules[mod]
	upper, lower := ch.cfg.Geometry.SplitRow(rowAddr)

	if ch.cfg.PhaseSkipping {
		if hit, ok := m.RDBHit(rowAddr); ok {
			// Both addressing phases skipped: data is already sensed.
			ch.stats.ActivateSkips++
			return hit, at, outRDB, nil
		}
		if hit, ok := m.RABHit(upper); ok {
			// Pre-active phase skipped: reuse the loaded RAB.
			ch.stats.PreactiveSkips++
			devAt := ch.issue(at)
			p0 := m.Pauses()
			done, err = m.Activate(devAt, hit, lower)
			out = outRAB
			if m.Pauses() != p0 {
				out = outPaused
			}
			return hit, done, out, err
		}
	}
	ch.stats.FullAccesses++
	ba = ch.victimBA(mod)
	devAt := ch.issue(at)
	done, err = m.Preactive(devAt, ba, upper)
	if err != nil {
		return 0, 0, 0, err
	}
	devAt = ch.issue(done)
	p0 := m.Pauses()
	done, err = m.Activate(devAt, ba, lower)
	out = outFull
	if m.Pauses() != p0 {
		out = outPaused
	}
	return ba, done, out, err
}

// rowReq is one row-granule read within a batch. dst is the
// caller-provided destination the burst lands in (usually a subslice of
// the subsystem-level output buffer), so a batch completes with the
// bytes already in place and no copy-back stage.
type rowReq struct {
	mod  int
	row  uint64
	col  int
	dst  []byte
	done sim.Time

	ba       uint8
	out      uint8    // read outcome for the latency instruments
	preDone  sim.Time // pre-active complete (phase 1)
	rowReady sim.Time // activate complete (phase 2)
	needAct  bool
}

// readRowInto reads len(dst) bytes at column col of module-local row
// rowAddr on module mod into dst, starting no earlier than at.
func (ch *channel) readRowInto(at sim.Time, mod int, rowAddr uint64, col int, dst []byte) (done sim.Time, err error) {
	reqs := [1]rowReq{{mod: mod, row: rowAddr, col: col, dst: dst}}
	if err := ch.readBatch(at, reqs[:]); err != nil {
		return 0, err
	}
	return reqs[0].done, nil
}

// readBatch processes a set of row reads. With an interleaving scheduler
// the batch is issued phase by phase in waves of at most one row per
// module, so one partition's tRP+tRCD overlaps another row's data burst
// exactly as in Figure 12. Without interleaving each request runs to
// completion before the next starts (bare-metal ordering).
func (ch *channel) readBatch(at sim.Time, reqs []rowReq) error {
	if !ch.pol.interleave {
		for i := range reqs {
			if err := ch.readOne(&reqs[i], ch.gate(at, reqs[i].mod)); err != nil {
				return err
			}
			ch.complete(reqs[i].done, reqs[i].mod)
		}
		return nil
	}
	// Split into waves: at most NumRAB-1 outstanding rows per module per
	// wave (one pair stays reserved for the overlay window), so a wave
	// can bind each of its rows to a distinct RDB. Requests land in
	// waves round-robin per module; waves pipeline through the
	// partition/bus timelines, so later sensing overlaps earlier bursts
	// both across modules and across this module's own buffer pairs
	// (Figure 12).
	//
	// Partition overlap (PALP): a read whose target partition still has
	// in-flight array work (typically a posted program, 10-18us) cannot
	// sense until the partition frees, and issuing it early pushes the
	// shared command/DQ bus frontier past that wait for every later
	// wave. With the PartitionOverlap capability the batch is assigned
	// in two passes - conflict-free reads first, busy-partition reads
	// appended to the tail waves - so the free partitions' senses and
	// bursts overlap the busy partitions' writes instead of queuing
	// behind them.
	perMod := ch.cfg.Params.NumRAB - 1
	if perMod < 1 {
		perMod = 1
	}
	seen := ch.resetSeen()
	waves, used := ch.rWaves, 0
	deferring := ch.pol.partitionOverlap
	for pass := 0; pass < 2; pass++ {
		for i := range reqs {
			if deferring {
				busy := ch.partitionBusy(at, reqs[i].mod, reqs[i].row)
				if busy != (pass == 1) {
					continue
				}
				if busy {
					ch.stats.PartitionOverlapWins++
				}
			}
			w := seen[reqs[i].mod] / perMod
			seen[reqs[i].mod]++
			for used <= w {
				if used == len(waves) {
					waves = append(waves, nil)
				}
				waves[used] = waves[used][:0]
				used++
			}
			waves[w] = append(waves[w], &reqs[i])
		}
		if !deferring {
			break
		}
	}
	ch.rWaves = waves
	for _, wave := range waves[:used] {
		if err := ch.readWave(at, wave); err != nil {
			return err
		}
	}
	return nil
}

// partitionBusy reports whether the partition holding module-local row
// rowAddr on module mod still has in-flight array work at `at` (an
// outstanding program, or a sense that has not settled). It reads the
// device's partition frontier, so the answer is exact for the
// simulated device state at assignment time.
func (ch *channel) partitionBusy(at sim.Time, mod int, rowAddr uint64) bool {
	return ch.modules[mod].PartitionFreeAt(ch.cfg.Geometry.PartitionOf(rowAddr)) > at
}

// resetSeen returns the per-module wave counter scratch, zeroed.
func (ch *channel) resetSeen() []int {
	for i := range ch.seenScratch {
		ch.seenScratch[i] = 0
	}
	return ch.seenScratch
}

// readOne runs all three phases of a single request back to back.
func (ch *channel) readOne(r *rowReq, at sim.Time) error {
	m := ch.modules[r.mod]
	ba, rowReady, out, err := ch.bindRow(at, r.mod, r.row)
	if err != nil {
		return err
	}
	devAt := ch.issue(rowReady)
	r.done, err = m.ReadBurstInto(devAt, ba, r.col, r.dst)
	if err != nil {
		return err
	}
	ch.stats.Reads++
	ch.stats.BytesRead += int64(len(r.dst))
	ch.stats.ReadPS[out] += int64(r.done - at)
	if out == outPaused {
		ch.stats.PausePreemptedReads++
	}
	if ch.hRead[outFull] != nil {
		ch.recordRead(out, at, r.done, len(r.dst))
	}
	if ch.tr != nil {
		ch.tr.Span(ch.proc, ch.tracks[r.mod], "read", at, r.done)
	}
	if ch.cfg.Prefetch && ch.pol.interleave {
		ch.prefetch(rowReady, r.mod, r.row+1)
	}
	return nil
}

// readWave issues one wave phase by phase. A wave may carry several rows
// of one module (bound to distinct buffer pairs); the claimed mask keeps
// one request's activation from rebinding a pair another request in the
// wave is still going to burst from.
func (ch *channel) readWave(at sim.Time, wave []*rowReq) error {
	if len(wave) > 1 {
		// Every row past the first overlaps its array access with
		// another row's activity in this wave (Figure 12).
		ch.stats.InterleaveOverlaps += int64(len(wave) - 1)
	}
	claimed := ch.claimed
	for _, r := range wave {
		claimed[r.mod] = 0
	}
	// Phase 1: pre-active (or skip via RAB/RDB state).
	for _, r := range wave {
		m := ch.modules[r.mod]
		upper, _ := ch.cfg.Geometry.SplitRow(r.row)
		if ch.cfg.PhaseSkipping {
			if ba, ok := m.RDBHit(r.row); ok && claimed[r.mod]&(1<<ba) == 0 {
				ch.stats.ActivateSkips++
				r.ba, r.rowReady, r.needAct = ba, at, false
				r.out = outRDB
				claimed[r.mod] |= 1 << ba
				continue
			}
			if ba, ok := m.RABHit(upper); ok && claimed[r.mod]&(1<<ba) == 0 {
				ch.stats.PreactiveSkips++
				r.ba, r.preDone, r.needAct = ba, at, true
				r.out = outRAB
				claimed[r.mod] |= 1 << ba
				continue
			}
		}
		ch.stats.FullAccesses++
		r.out = outFull
		r.ba = ch.victimBA(r.mod)
		for i := 0; claimed[r.mod]&(1<<r.ba) != 0 && i < ch.cfg.Params.NumRAB; i++ {
			r.ba = ch.victimBA(r.mod)
		}
		claimed[r.mod] |= 1 << r.ba
		r.needAct = true
		devAt := ch.issue(at)
		done, err := m.Preactive(devAt, r.ba, upper)
		if err != nil {
			return err
		}
		r.preDone = done
	}
	// Phase 2: activate (array sensing, parallel across partitions).
	for _, r := range wave {
		if !r.needAct {
			continue
		}
		_, lower := ch.cfg.Geometry.SplitRow(r.row)
		devAt := ch.issue(r.preDone)
		m := ch.modules[r.mod]
		p0 := m.Pauses()
		done, err := m.Activate(devAt, r.ba, lower)
		if err != nil {
			return err
		}
		if m.Pauses() != p0 {
			r.out = outPaused
			ch.stats.PausePreemptedReads++
		}
		r.rowReady = done
	}
	// Phase 3: read bursts, serialized on the shared DQ bus while later
	// waves' sensing proceeds underneath.
	for _, r := range wave {
		devAt := ch.issue(r.rowReady)
		done, err := ch.modules[r.mod].ReadBurstInto(devAt, r.ba, r.col, r.dst)
		if err != nil {
			return err
		}
		r.done = done
		ch.stats.Reads++
		ch.stats.BytesRead += int64(len(r.dst))
		ch.stats.ReadPS[r.out] += int64(r.done - at)
		if ch.hRead[outFull] != nil {
			ch.recordRead(r.out, at, r.done, len(r.dst))
		}
		if ch.tr != nil {
			if r.needAct {
				ch.tr.Span(ch.proc, ch.tracks[r.mod], "sense", at, r.rowReady)
			}
			ch.tr.Span(ch.proc, ch.tracks[r.mod], "burst", r.rowReady, r.done)
		}
	}
	// Background: sequential next-row prefetch into spare RDBs.
	if ch.cfg.Prefetch {
		for _, r := range wave {
			ch.prefetch(r.rowReady, r.mod, r.row+1)
		}
	}
	return nil
}

// prefetch speculatively senses the next sequential module-local row into
// a spare RDB while the current burst occupies the bus. It always uses a
// fresh victim pair (reusing a RAB-hit pair would evict the row a demand
// read just bound). It is fire and forget: failures (e.g. end of module)
// are ignored and nothing blocks on its completion.
func (ch *channel) prefetch(at sim.Time, mod int, rowAddr uint64) {
	m := ch.modules[mod]
	if ch.cfg.Geometry.CheckRow(rowAddr) != nil {
		return
	}
	if _, ok := m.RDBHit(rowAddr); ok {
		return
	}
	// Partition-aware policies never prefetch into a busy partition: a
	// speculative sense behind an in-flight program would extend the
	// partition frontier (PALP) or pause a real program for data nobody
	// asked for (pause-aware).
	if ch.pol.avoidBusyPrefetch && ch.partitionBusy(at, mod, rowAddr) {
		if ch.pol.partitionOverlap {
			ch.stats.PartitionOverlapWins++
		}
		return
	}
	upper, lower := ch.cfg.Geometry.SplitRow(rowAddr)
	ba := ch.victimBA(mod)
	devAt := ch.issue(at)
	done, err := m.Preactive(devAt, ba, upper)
	if err != nil {
		return
	}
	devAt = ch.issue(done)
	if _, err = m.Activate(devAt, ba, lower); err != nil {
		return
	}
	ch.stats.Prefetches++
}

// writeRow programs data (a full row or a row prefix ending the request)
// to module-local row rowAddr. Writes narrower than the row trigger a
// charged read-modify-write, since the program unit granularity is the
// word but the program buffer commits from the row start. The returned
// time is when the controller accepts the write (the execute burst
// completes); the array program itself is posted and tracked by the
// module's program-buffer availability.
func (ch *channel) writeRow(at sim.Time, mod int, rowAddr uint64, col int, data []byte) (done sim.Time, err error) {
	at = ch.gate(at, mod)
	entry := at
	m := ch.modules[mod]
	rb := ch.cfg.Geometry.RowBytes

	full := data
	fullRow := col == 0 && len(data) == rb
	if !fullRow {
		// Read-modify-write: fetch the row through the regular protocol
		// into the channel's scratch row, merge, program whole.
		readDone, err := ch.readRowInto(at, mod, rowAddr, 0, ch.rmwRow)
		if err != nil {
			return 0, err
		}
		copy(ch.rmwRow[col:], data)
		full = ch.rmwRow
		at = readDone
	}

	// On-line selective erasing (Section V-A): a full-row overwrite of a
	// declared write-intent row whose previous program left a long-enough
	// idle gap was pre-RESET in the background, so this program is
	// SET-only. Partial rows are excluded (their RMW read needs the old
	// data).
	if fullRow {
		ch.maybePreErase(at, mod, rowAddr)
	}

	// The program buffer must be free; array programs themselves overlap
	// across partitions.
	at = sim.Max(at, m.ProgBufFreeAt())
	done, err = m.ProgramRow(at, ch.windowBA(), rowAddr, full)
	if err != nil {
		return 0, err
	}
	ch.stats.Writes++
	ch.stats.BytesWritten += int64(len(data))
	if fullRow {
		ch.stats.WriteFullPS += int64(done - entry)
	} else {
		ch.stats.WriteRMWPS += int64(done - entry)
	}
	if ch.hWriteFull != nil {
		ch.recordWrite(fullRow, entry, done, len(data))
	}
	if ch.tr != nil {
		ch.tr.Span(ch.proc, ch.tracks[mod], "program", at, done)
	}

	if !ch.pol.interleave {
		// Bare-metal and selective-erasing do not overlap the chip's next
		// operation with this program flow's bus activity, but the array
		// program itself is posted on every policy (the program buffer
		// decouples it).
		ch.complete(done, mod)
	}
	return done, nil
}

// writeReq is one full-row program within a batch.
type writeReq struct {
	mod   int
	row   uint64
	data  []byte
	paddr uint64 // physical byte address (wear accounting)
	done  sim.Time
	t     sim.Time // per-request flow progress
}

// writeBatch programs a set of full rows. With an interleaving scheduler
// the three flow steps (register-row burst, program-buffer burst,
// execute) issue wave by wave across modules, so flows to different
// packages pipeline on the shared channel buses; without interleaving
// each flow runs to completion before the next starts.
func (ch *channel) writeBatch(at sim.Time, reqs []writeReq) error {
	if !ch.pol.interleave {
		for i := range reqs {
			d, err := ch.writeRow(at, reqs[i].mod, reqs[i].row, 0, reqs[i].data)
			if err != nil {
				return err
			}
			reqs[i].done = d
		}
		return nil
	}
	// Waves: at most one row per module per wave.
	seen := ch.resetSeen()
	waves, used := ch.wWaves, 0
	for i := range reqs {
		w := seen[reqs[i].mod]
		seen[reqs[i].mod] = w + 1
		for used <= w {
			if used == len(waves) {
				waves = append(waves, nil)
			}
			waves[used] = waves[used][:0]
			used++
		}
		waves[w] = append(waves[w], &reqs[i])
	}
	ch.wWaves = waves
	for _, wave := range waves[:used] {
		if err := ch.writeWave(at, wave); err != nil {
			return err
		}
	}
	return nil
}

// writeWave issues one wave's program flows step by step.
func (ch *channel) writeWave(at sim.Time, wave []*writeReq) error {
	if len(wave) > 1 {
		ch.stats.InterleaveOverlaps += int64(len(wave) - 1)
	}
	ba := ch.windowBA()
	// Selective erasing decisions first (no bus activity).
	for _, r := range wave {
		ch.maybePreErase(at, r.mod, r.row)
	}
	// Step 1: register-row burst per module (cmd + data bus interleave).
	for _, r := range wave {
		m := ch.modules[r.mod]
		start := sim.Max(at, m.ProgBufFreeAt())
		d, err := m.WindowWrite(ch.issue(start), ba, pram.RegCode, pram.ProgramHeader(r.row, len(r.data)))
		if err != nil {
			return err
		}
		r.t = d
	}
	// Step 2: program-buffer burst per module.
	for _, r := range wave {
		d, err := ch.modules[r.mod].WindowWrite(ch.issue(r.t), ba, pram.ProgBufOffset, r.data)
		if err != nil {
			return err
		}
		r.t = d
	}
	// Step 3: execute per module; the array program is posted.
	for _, r := range wave {
		d, err := ch.modules[r.mod].WindowWrite(ch.issue(r.t), ba, pram.RegExec, ch.execBuf[:])
		if err != nil {
			return err
		}
		r.done = d
		ch.stats.Writes++
		ch.stats.BytesWritten += int64(len(r.data))
		ch.stats.WriteFullPS += int64(r.done - at)
		if ch.hWriteFull != nil {
			ch.recordWrite(true, at, r.done, len(r.data))
		}
		if ch.tr != nil {
			ch.tr.Span(ch.proc, ch.tracks[r.mod], "program", at, r.done)
		}
	}
	return nil
}

// maybePreErase applies the selective-erasing decision for a full-row
// overwrite of a declared write-intent row (Section V-A). Two cases:
//
//   - contract-dead: the row was last programmed before the intent was
//     declared (stale data from an earlier job), so the subsystem
//     zero-programmed it in the background any time after the kernel
//     load - the first overwrite of every output row is SET-only;
//   - repeat overwrite within the run: only erased when the idle gap
//     since the previous program sufficed and nothing sensed the row in
//     between.
func (ch *channel) maybePreErase(at sim.Time, mod int, rowAddr uint64) {
	if !ch.pol.selErase || ch.intent == nil {
		return
	}
	declared, ok := ch.intent(mod, rowAddr)
	if !ok {
		return
	}
	m := ch.modules[mod]
	gap := ch.cfg.Params.CellOverwriteExtra
	last := m.LastProgramEnd(rowAddr)
	var err error
	switch {
	case last <= declared && at-declared >= gap:
		err = m.PreEraseBackground(declared, rowAddr, true)
	case last > declared && at-last >= gap:
		err = m.PreEraseBackground(last, rowAddr, false)
	default:
		return
	}
	if err == nil {
		ch.stats.PreErasedRows++
	}
}

// preEraseRow zero-programs one row so a later overwrite needs only SET
// pulses. Used by the selective-erasing policies for declared
// write-intent regions.
func (ch *channel) preEraseRow(at sim.Time, mod int, rowAddr uint64) (done sim.Time, err error) {
	m := ch.modules[mod]
	at = sim.Max(ch.gate(at, mod), m.ProgBufFreeAt())
	done, err = m.ProgramRow(at, ch.windowBA(), rowAddr, ch.zeroRow)
	if err != nil {
		return 0, err
	}
	ch.stats.PreErasedRows++
	if !ch.pol.interleave {
		ch.complete(done, mod)
	}
	return done, nil
}

// drain returns when every module on the channel has finished its posted
// array work.
func (ch *channel) drain() sim.Time {
	var t sim.Time
	for _, m := range ch.modules {
		t = sim.Max(t, m.BusyUntil())
	}
	t = sim.Max(t, ch.cmdBus.FreeAt())
	t = sim.Max(t, ch.dataBus.FreeAt())
	return sim.Max(t, ch.lastDone)
}
