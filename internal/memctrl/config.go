// Package memctrl implements the hardware-automated FPGA PRAM controller
// of DRAM-less (Section V): the translator that drives overlay-window
// write flows, the command generator that emits three-phase addressing
// sequences with RAB/RDB-aware phase skipping, the initializer that boots
// the modules, and the two PRAM-aware scheduling optimizations the paper
// proposes - multi-resource-aware interleaving and selective erasing.
//
// A Subsystem exposes the two LPDDR2-NVM channels (16 packages each) as a
// flat byte-addressable space, exactly what the server PE's MCU sees.
package memctrl

import (
	"fmt"

	"dramless/internal/lpddr"
	"dramless/internal/obs"
	"dramless/internal/pram"
)

// Scheduler selects the request scheduling policy of the controller,
// matching the four configurations of Figure 13.
//
// Deprecated: the enum remains as a compatibility shim over the policy
// registry — each value adapts onto its canonical registered Policy
// (see PolicyFor). New code should set Config.Policy (or a policy name
// at the system/experiments layer) instead; the registry also carries
// schedulers the enum cannot name ("palp", "pause-aware",
// "wear-aware").
type Scheduler int

const (
	// Noop is the bare-metal baseline: requests are processed strictly in
	// order and a read's addressing phases never overlap another read's
	// data burst.
	Noop Scheduler = iota
	// Interleave is multi-resource-aware interleaving (Figure 12): while
	// one partition senses a row (tRCD), the data burst of another
	// already-sensed row proceeds on the bus, hiding array access behind
	// transfer time.
	Interleave
	// SelErase is selective erasing (Section V-A): rows declared as
	// write-intent are pre-programmed with all-zero words, so the later
	// real writes need only SET pulses.
	SelErase
	// Final combines Interleave and SelErase; the paper applies this to
	// DRAM-less by default.
	Final
)

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	switch s {
	case Noop:
		return "Bare-metal"
	case Interleave:
		return "Interleaving"
	case SelErase:
		return "Selective-erasing"
	case Final:
		return "Final"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Interleaving reports whether the policy overlaps array access with data
// transfer.
func (s Scheduler) Interleaving() bool { return s == Interleave || s == Final }

// SelectiveErasing reports whether the policy pre-erases write-intent rows.
func (s Scheduler) SelectiveErasing() bool { return s == SelErase || s == Final }

// Config describes one PRAM subsystem build.
type Config struct {
	// Params is the LPDDR2-NVM interface timing (Table II).
	Params lpddr.Params
	// Geometry is the per-module address layout.
	Geometry pram.Geometry
	// Scheduler is the legacy request scheduling policy selector.
	// Ignored when Policy is non-nil.
	//
	// Deprecated: set Policy instead; the enum only reaches the four
	// legacy schedulers.
	Scheduler Scheduler
	// Policy is the scheduling policy. Nil (the default) derives the
	// policy from the legacy Scheduler enum, so existing
	// DefaultConfig(s Scheduler) call sites behave exactly as before.
	// The policy's capability vector is resolved once at construction
	// (see resolvePolicy); per-request scheduling decisions stay
	// allocation-free.
	Policy Policy
	// PhaseSkipping enables skipping pre-active/activate phases when the
	// target's upper row address or row data is already buffered. On by
	// default; an ablation knob for the benchmarks.
	PhaseSkipping bool
	// Prefetch enables sequential next-row RDB prefetch ("tries to
	// prefetch data by using all RDBs across different banks"). Only
	// effective with an interleaving scheduler, which has the idle array
	// time to spend.
	Prefetch bool
	// ChannelRequestBytes is the server's request granularity per channel
	// (512 B, i.e. 32 B per package).
	ChannelRequestBytes int
	// Wear configures optional start-gap wear leveling (Section VII).
	Wear WearConfig
	// WritePausing enables the device-level pause/resume of in-flight
	// programs on a read (the Related Work alternative [66] the paper
	// argues against); off on the paper's device.
	WritePausing bool
	// Obs attaches the observability layer: counters snapshot into its
	// registry via CountersInto and, when its tracer is enabled, every
	// read burst and program flow records a per-channel span. Nil (the
	// default) disables observation at zero cost.
	Obs *obs.Observer
}

// DefaultConfig returns the paper's DRAM-less controller configuration
// with the given legacy scheduler. To select a registry policy
// instead, set Policy on the returned Config (or use
// DefaultPolicyConfig).
func DefaultConfig(s Scheduler) Config {
	return Config{
		Params:              lpddr.Default(),
		Geometry:            pram.DefaultGeometry(),
		Scheduler:           s,
		PhaseSkipping:       true,
		Prefetch:            true,
		ChannelRequestBytes: 512,
	}
}

// DefaultPolicyConfig is DefaultConfig for a registry policy.
func DefaultPolicyConfig(p Policy) Config {
	cfg := DefaultConfig(Noop)
	cfg.Policy = p
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		if c.Scheduler < Noop || c.Scheduler > Final {
			return fmt.Errorf("memctrl: unknown scheduler %d", c.Scheduler)
		}
	} else if err := c.Policy.Capabilities().Validate(); err != nil {
		return fmt.Errorf("memctrl: policy %q: %w", c.Policy.Name(), err)
	}
	perBank := c.Geometry.RowBytes
	if c.ChannelRequestBytes <= 0 || c.ChannelRequestBytes%perBank != 0 {
		return fmt.Errorf("memctrl: channel request size %d must be a positive multiple of the %d-byte row",
			c.ChannelRequestBytes, perBank)
	}
	if err := c.Wear.Validate(); err != nil {
		return err
	}
	return nil
}

// Stats aggregates controller-level activity. Module-level device stats
// are available per module via ModuleStats.
type Stats struct {
	Reads  int64 // row-granule read operations issued
	Writes int64 // row-granule program flows issued

	// Phase skipping effectiveness (Section III-B).
	PreactiveSkips int64 // RAB already held the upper row address
	ActivateSkips  int64 // RDB already held the row (both phases skipped)
	FullAccesses   int64 // all three phases required

	Prefetches int64 // speculative activates issued

	// InterleaveOverlaps counts the overlaps the multi-resource-aware
	// scheduler won: row operations that shared a wave with at least one
	// other operation, so their array access hid behind another row's
	// bus transfer (Figure 12). Structurally zero without interleaving.
	InterleaveOverlaps int64

	PreErasedRows int64 // rows zero-programmed by selective erasing

	// PartitionOverlapWins counts the partition-overlap (PALP) policy's
	// scheduling decisions: demand reads steered to the tail of their
	// batch because their target partition still had in-flight array
	// work, plus prefetches withheld for the same reason. Structurally
	// zero without the PartitionOverlap capability.
	PartitionOverlapWins int64

	// PausePreemptedReads counts demand reads whose activate paused an
	// in-flight program (write pausing). Nonzero under the pause-aware
	// policy or an explicit WritePausing config.
	PausePreemptedReads int64

	BytesRead    int64
	BytesWritten int64

	// Service-time accounts in picoseconds of simulated time,
	// accumulated always-on at the same sites as the latency histograms
	// (blame attribution, DESIGN.md §15): per-outcome read service time
	// (indexed by the outFull/outRDB/outRAB/outPaused read outcomes)
	// and write service time split full-row vs read-modify-write.
	ReadPS      [4]int64
	WriteFullPS int64
	WriteRMWPS  int64
}
