// Package pcie models the PCIe interconnect of the evaluated systems: a
// bandwidth-limited link with per-transaction latency, a DMA engine with
// descriptor/doorbell setup costs, and the peer-to-peer DMA path that the
// Heterodirect configurations use to move data between an SSD and the
// accelerator without bouncing through host DRAM.
package pcie

import (
	"fmt"

	"dramless/internal/obs"
	"dramless/internal/sim"
)

// LinkConfig describes one PCIe endpoint link.
type LinkConfig struct {
	Name string
	// BytesPerSec is the sustained payload bandwidth. A Gen3 x8 slot
	// delivers ~7.9 GB/s raw; ~6.5 GB/s of payload after TLP overheads.
	BytesPerSec float64
	// Latency is the one-way transaction latency (flight + switch).
	Latency sim.Duration
	// DMASetup is the driver-visible cost of one DMA: building the
	// descriptor, ringing the doorbell, and the completion interrupt at
	// the device end.
	DMASetup sim.Duration
	// MaxPayload splits large DMAs into chunks (descriptor ring limit).
	MaxPayload int
}

// Gen3x8 returns the slot configuration both the accelerator and the SSD
// use in the paper's testbed.
func Gen3x8(name string) LinkConfig {
	return LinkConfig{
		Name:        name,
		BytesPerSec: 6.5e9,
		Latency:     sim.Nanoseconds(500),
		DMASetup:    sim.Microseconds(1),
		MaxPayload:  128 << 10,
	}
}

// Validate reports configuration errors.
func (c LinkConfig) Validate() error {
	if c.BytesPerSec <= 0 || c.Latency < 0 || c.DMASetup < 0 || c.MaxPayload <= 0 {
		return fmt.Errorf("pcie %s: invalid link config %+v", c.Name, c)
	}
	return nil
}

// Link is one PCIe link with an attached DMA engine.
type Link struct {
	cfg  LinkConfig
	wire *sim.Pipe

	dmas       int64
	bytesMoved int64
}

// NewLink builds a link from cfg.
func NewLink(cfg LinkConfig) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{cfg: cfg, wire: sim.NewPipe(cfg.Name, cfg.BytesPerSec, cfg.Latency)}, nil
}

// MustNewLink is NewLink for known-good configurations.
func MustNewLink(cfg LinkConfig) *Link {
	l, err := NewLink(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// DMA moves n bytes across the link starting no earlier than at and
// returns when the final completion lands. Large transfers split into
// MaxPayload descriptors that pipeline on the wire; the setup cost is
// paid once per DMA.
func (l *Link) DMA(at sim.Time, n int64) (done sim.Time) {
	if n <= 0 {
		return at
	}
	done = at + l.cfg.DMASetup
	for moved := int64(0); moved < n; {
		chunk := int64(l.cfg.MaxPayload)
		if chunk > n-moved {
			chunk = n - moved
		}
		done = l.wire.Transfer(done, chunk)
		moved += chunk
	}
	l.dmas++
	l.bytesMoved += n
	return done
}

// Message sends a short control message (a PCIe interrupt or doorbell,
// e.g. the host kicking the DRAM-less server) and returns its arrival.
func (l *Link) Message(at sim.Time) sim.Time {
	return l.wire.Transfer(at, 64) // one TLP worth of payload
}

// Stats returns (DMA count, payload bytes moved).
func (l *Link) Stats() (dmas, bytes int64) { return l.dmas, l.bytesMoved }

// CountersInto writes the link's activity into the registry under the
// link's configured name ("pcie.accel.dmas", ...).
func (l *Link) CountersInto(c *obs.Counters) {
	if c == nil {
		return
	}
	p := l.cfg.Name + "."
	c.Add(p+"dmas", l.dmas)
	c.Add(p+"bytes", l.bytesMoved)
	c.Add(p+"busy_ps", int64(l.BusyTime()))
}

// BusyTime returns cumulative wire occupancy, for energy accounting.
func (l *Link) BusyTime() sim.Duration { return l.wire.BusyTime() }

// FreeAt returns when the wire next idles.
func (l *Link) FreeAt() sim.Time { return l.wire.FreeAt() }

// P2P is the peer-to-peer DMA fabric of the Heterodirect configurations:
// data flows SSD -> switch -> accelerator, crossing both endpoint links
// but never touching host DRAM and never waking the host CPU beyond the
// initial submission.
type P2P struct {
	src, dst *Link
}

// NewP2P connects two endpoint links through a switch.
func NewP2P(src, dst *Link) *P2P { return &P2P{src: src, dst: dst} }

// Transfer moves n bytes from the src endpoint to the dst endpoint. The
// transfer occupies both wires (store-and-forward at the switch is
// pipelined per MaxPayload chunk, approximated by charging the slower
// leg after the faster).
func (p *P2P) Transfer(at sim.Time, n int64) (done sim.Time) {
	mid := p.src.DMA(at, n)
	// The downstream leg starts once the first chunk is through; with
	// chunked pipelining the end-to-end finish is one chunk behind the
	// upstream finish plus the downstream wire time of the last chunk.
	lastChunk := int64(p.dst.cfg.MaxPayload)
	if lastChunk > n {
		lastChunk = n
	}
	start := mid - p.dst.wire.TransferTime(n-lastChunk)
	if start < at {
		start = at
	}
	return p.dst.DMA(start, n)
}
