package pcie

import (
	"testing"

	"dramless/internal/sim"
)

func TestLinkDMA(t *testing.T) {
	l := MustNewLink(Gen3x8("x"))
	// 64 KiB at 6.5 GB/s ~ 10.08 us wire + 1 us setup + 0.5 us latency.
	done := l.DMA(0, 64<<10)
	if done < sim.Microseconds(10) || done > sim.Microseconds(14) {
		t.Fatalf("64KiB DMA took %v, want ~11.6us", done)
	}
	dmas, bytes := l.Stats()
	if dmas != 1 || bytes != 64<<10 {
		t.Fatalf("stats = %d dmas, %d bytes", dmas, bytes)
	}
}

func TestLinkDMAChunksLargeTransfers(t *testing.T) {
	cfg := Gen3x8("x")
	cfg.MaxPayload = 4 << 10
	l := MustNewLink(cfg)
	done := l.DMA(0, 16<<10) // 4 chunks, latency paid per chunk arrival
	single := MustNewLink(Gen3x8("y")).DMA(0, 16<<10)
	if done <= single {
		t.Fatalf("chunked DMA (%v) not slower than single (%v)", done, single)
	}
}

func TestZeroDMA(t *testing.T) {
	l := MustNewLink(Gen3x8("x"))
	if done := l.DMA(7, 0); done != 7 {
		t.Fatalf("zero-byte DMA took time: %v", done)
	}
}

func TestMessageIsCheap(t *testing.T) {
	l := MustNewLink(Gen3x8("x"))
	done := l.Message(0)
	if done > sim.Microseconds(1) {
		t.Fatalf("doorbell message took %v", done)
	}
}

func TestP2PAvoidsNothingButIsPipelined(t *testing.T) {
	ssd := MustNewLink(Gen3x8("ssd"))
	acc := MustNewLink(Gen3x8("acc"))
	p := NewP2P(ssd, acc)
	n := int64(1 << 20)
	done := p.Transfer(0, n)
	// Pipelined two-leg transfer: must cost roughly one leg (plus a
	// chunk), not two full legs.
	oneLeg := MustNewLink(Gen3x8("z")).DMA(0, n)
	if done > oneLeg*3/2 {
		t.Fatalf("P2P %v vs single leg %v: not pipelined", done, oneLeg)
	}
	if done < oneLeg {
		t.Fatalf("P2P %v faster than a single leg %v", done, oneLeg)
	}
}

func TestLinkValidation(t *testing.T) {
	cfg := Gen3x8("x")
	cfg.BytesPerSec = 0
	if _, err := NewLink(cfg); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	cfg = Gen3x8("x")
	cfg.MaxPayload = 0
	if _, err := NewLink(cfg); err == nil {
		t.Fatal("zero payload accepted")
	}
}

func TestSerializationOnWire(t *testing.T) {
	l := MustNewLink(Gen3x8("x"))
	d1 := l.DMA(0, 1<<20)
	d2 := l.DMA(0, 1<<20)
	if d2 <= d1 {
		t.Fatal("concurrent DMAs did not serialize on the wire")
	}
}
