package pcie

// CopyFrom clones src's wire occupancy and DMA totals into l. Both links
// must have been built from the same LinkConfig; checkpoint forks
// construct a fresh link and then copy the mutable state across.
func (l *Link) CopyFrom(src *Link) {
	l.wire.CopyFrom(src.wire)
	l.dmas = src.dmas
	l.bytesMoved = src.bytesMoved
}
