package experiments

import (
	"fmt"

	"dramless/internal/lpddr"
	"dramless/internal/memctrl"
	"dramless/internal/pram"
	"dramless/internal/sim"
	"dramless/internal/system"
	"dramless/internal/workload"
)

// Table1 renders Table I: the important configuration parameters of all
// evaluated accelerated systems, straight from the catalog the builders
// use.
func Table1(Options) (*Table, error) {
	t := &Table{ID: "table1", Title: "configuration parameters of the evaluated systems"}
	for _, row := range system.Catalog() {
		r := newRow(row.Kind.String())
		r.set("heterogeneous", b2f(row.Heterogeneous))
		r.set("internal-dram", b2f(row.InternalDRAM))
		r.set("nvm-read-us", row.NVMReadUS)
		r.set("nvm-erase-us", row.NVMEraseUS)
		t.Rows = append(t.Rows, r)
	}
	t.Notes = append(t.Notes, "nvm-write: PRAM rows are 10/18 us (fresh/overwrite); flash rows per Table I")
	return t, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Table2 renders the characterized PRAM parameters and self-checks the
// derived latencies against the paper's headline numbers (~100 ns reads,
// 10-18 us writes).
func Table2(Options) (*Table, error) {
	t := &Table{ID: "table2", Title: "characterized PRAM parameters"}
	p := lpddr.Default()
	r := newRow("value")
	r.set("RL-cycles", float64(p.RLCycles))
	r.set("WL-cycles", float64(p.WLCycles))
	r.set("tCK-ns", p.TCK.Nanos())
	r.set("tRP-cycles", float64(p.TRPCycles))
	r.set("tRCD-ns", p.TRCD.Nanos())
	r.set("tDQSCK-ns", p.TDQSCK.Nanos())
	r.set("tDQSS-ns", p.TDQSS.Nanos())
	r.set("tWRA-ns", p.TWRA.Nanos())
	r.set("burst", float64(p.BurstLen))
	r.set("RAB", float64(p.NumRAB))
	r.set("RDB-bytes", float64(p.RDBBytes))
	r.set("channels", float64(p.Channels))
	r.set("packages", float64(p.Packages))
	r.set("partitions", float64(p.Partitions))
	t.Rows = append(t.Rows, r)

	read := p.RowReadLatency()
	wFresh := p.ProgramTime(lpddr.CellFresh)
	wOver := p.ProgramTime(lpddr.CellProgrammed)
	if read > sim.Nanoseconds(150) {
		return nil, fmt.Errorf("table2 self-check: read latency %v not ~100ns", read)
	}
	if wFresh != sim.Microseconds(10) || wOver != sim.Microseconds(18) {
		return nil, fmt.Errorf("table2 self-check: writes %v/%v not 10/18us", wFresh, wOver)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"derived: three-phase read %.0fns, write %v fresh / %v overwrite, erase %v",
		read.Nanos(), wFresh, wOver, p.CellErase))
	return t, nil
}

// Table3 renders the workload characteristics: write intensity (output
// per input volume), data volume and class for every kernel.
func Table3(o Options) (*Table, error) {
	t := &Table{ID: "table3", Title: "workload characteristics"}
	p := workload.Params{Scale: o.Scale, Agents: 7}
	for _, k := range o.kernels() {
		r := newRow(k.Name)
		r.set("write-intensity", k.WriteIntensity())
		r.set("write-ratio", k.WriteRatio(p))
		r.set("volume-KiB", float64(k.FootprintBytes(p))/1024)
		r.set("instructions", float64(k.Instructions(p)))
		r.set("class", float64(k.Class))
		t.Rows = append(t.Rows, r)
	}
	t.Notes = append(t.Notes, "class: 0=read-intensive 1=write-intensive 2=compute-intensive 3=memory-intensive")
	return t, nil
}

// Sec5Interleave measures the Section V claim that multi-resource-aware
// interleaving hides memory access latency behind transfer time (~40%)
// on a streaming 512 B channel read.
func Sec5Interleave(Options) (*Table, error) {
	t := &Table{ID: "sec5-interleave", Title: "interleaving latency hiding on a 512B channel read"}
	elapsed := func(s memctrl.Scheduler) (sim.Duration, error) {
		cfg := memctrl.DefaultConfig(s)
		cfg.Geometry.RowsPerModule = 1 << 16
		cfg.Prefetch = false
		sub, err := memctrl.New(cfg)
		if err != nil {
			return 0, err
		}
		_, done, err := sub.Read(0, 0, 512)
		return done, err
	}
	serial, err := elapsed(memctrl.Noop)
	if err != nil {
		return nil, err
	}
	over, err := elapsed(memctrl.Interleave)
	if err != nil {
		return nil, err
	}
	r := newRow("512B read")
	r.set("bare-metal-ns", serial.Nanos())
	r.set("interleaved-ns", over.Nanos())
	hidden := 1 - float64(over)/float64(serial)
	r.set("hidden-frac", hidden)
	t.Rows = append(t.Rows, r)
	if hidden < 0.40 {
		return nil, fmt.Errorf("sec5 self-check: interleaving hides only %.0f%%, paper claims ~40%%", hidden*100)
	}
	t.Notes = append(t.Notes, "paper: hides the memory access latency behind data transfer time by 40%")
	return t, nil
}

// Sec5SelErase measures the selective-erasing overwrite reduction on the
// PRAM module (paper: 44-55%).
func Sec5SelErase(Options) (*Table, error) {
	t := &Table{ID: "sec5-selerase", Title: "selective erasing overwrite latency"}
	geo := pram.DefaultGeometry()
	geo.RowsPerModule = 1 << 16
	m, err := pram.NewModule(geo, lpddr.Default())
	if err != nil {
		return nil, err
	}
	data := make([]byte, 32)
	for i := range data {
		data[i] = 0xA5
	}
	// Plain overwrite.
	d, err := m.ProgramRow(0, 0, 5, data)
	if err != nil {
		return nil, err
	}
	d = sim.Max(d, m.BusyUntil())
	execDone, err := m.ProgramRow(d, 0, 5, data)
	if err != nil {
		return nil, err
	}
	overwrite := m.BusyUntil() - execDone

	// Selectively erased overwrite.
	d = sim.Max(d, m.BusyUntil())
	zero := make([]byte, 32)
	if d, err = m.ProgramRow(d, 0, 5, zero); err != nil {
		return nil, err
	}
	d = sim.Max(d, m.BusyUntil())
	execDone, err = m.ProgramRow(d, 0, 5, data)
	if err != nil {
		return nil, err
	}
	erased := m.BusyUntil() - execDone

	r := newRow("32B overwrite")
	r.set("plain-us", overwrite.Micros())
	r.set("pre-erased-us", erased.Micros())
	red := 1 - float64(erased)/float64(overwrite)
	r.set("reduction", red)
	t.Rows = append(t.Rows, r)
	if red < 0.40 || red > 0.60 {
		return nil, fmt.Errorf("sec5 self-check: reduction %.0f%% outside the paper's 44-55%%", red*100)
	}
	t.Notes = append(t.Notes, "paper: selective erasing reduces overwrite latency by 44-55%")
	return t, nil
}

// optionsOnly adapts a generator that runs no full-system simulations
// (device-level measurements and static tables) to the engine registry.
func optionsOnly(gen func(Options) (*Table, error)) func(*Engine) (*Table, error) {
	return func(e *Engine) (*Table, error) { return gen(e.o) }
}

// Experiment pairs an experiment id with its generator over a shared
// engine.
type Experiment struct {
	ID  string
	Gen func(*Engine) (*Table, error)
}

// Registry returns every experiment in paper order. Generators that run
// full-system simulations share the engine's result cache and worker
// pool; the rest (device-level measurements, static tables) only read
// the engine's options.
func Registry() []Experiment {
	return []Experiment{
		{"fig01", (*Engine).Fig01},
		{"fig07", (*Engine).Fig07},
		{"fig12", optionsOnly(Fig12)},
		{"fig13", (*Engine).Fig13},
		{"fig15", (*Engine).Fig15},
		{"fig16", (*Engine).Fig16},
		{"fig17", (*Engine).Fig17},
		{"fig18", (*Engine).Fig18},
		{"fig19", (*Engine).Fig19},
		{"fig20", (*Engine).Fig20},
		{"fig21", (*Engine).Fig21},
		{"table1", optionsOnly(Table1)},
		{"table2", optionsOnly(Table2)},
		{"table3", optionsOnly(Table3)},
		{"sec5-interleave", optionsOnly(Sec5Interleave)},
		{"sec5-selerase", optionsOnly(Sec5SelErase)},
	}
}

// All returns every experiment generator keyed by id, in paper order.
// Each Gen call builds a private engine; share one engine (NewEngine +
// Table/Tables) to reuse simulations across experiments.
func All() []struct {
	ID  string
	Gen func(Options) (*Table, error)
} {
	reg := Registry()
	out := make([]struct {
		ID  string
		Gen func(Options) (*Table, error)
	}, 0, len(reg))
	for _, x := range reg {
		gen := x.Gen
		out = append(out, struct {
			ID  string
			Gen func(Options) (*Table, error)
		}{x.ID, func(o Options) (*Table, error) { return gen(NewEngine(o)) }})
	}
	return out
}
