package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dramless/internal/system"
	"dramless/internal/workload"
)

// TestParallelByteIdenticalToSerial is the determinism regression test:
// the full experiment set rendered serially and with Parallelism=8 must
// produce byte-identical Table.JSON() documents. Parallelism is across
// simulations only - each sim.Engine stays single-goroutine - so any
// divergence here means shared state leaked between runs.
func TestParallelByteIdenticalToSerial(t *testing.T) {
	serialOpts := quickOpts()
	serialOpts.Parallelism = 1
	serialTabs, err := NewEngine(serialOpts).Tables()
	if err != nil {
		t.Fatal(err)
	}

	parOpts := quickOpts()
	parOpts.Parallelism = 8
	parTabs, err := NewEngine(parOpts).Tables()
	if err != nil {
		t.Fatal(err)
	}

	if len(serialTabs) != len(parTabs) || len(serialTabs) != len(Registry()) {
		t.Fatalf("table counts: serial %d, parallel %d, registry %d",
			len(serialTabs), len(parTabs), len(Registry()))
	}
	for i, st := range serialTabs {
		pt := parTabs[i]
		if st.ID != pt.ID {
			t.Fatalf("table %d: serial id %q, parallel id %q", i, st.ID, pt.ID)
		}
		sj, err := st.JSON()
		if err != nil {
			t.Fatal(err)
		}
		pj, err := pt.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, pj) {
			t.Errorf("%s: parallel JSON differs from serial\nserial:\n%s\nparallel:\n%s", st.ID, sj, pj)
		}
	}
}

// TestSharedCacheAcrossExperiments pins the satellite fix: fig15, fig16
// and fig17 walk the same ten-system x kernel matrix, so after fig15 has
// populated the shared cache the other two must not run a single new
// simulation.
func TestSharedCacheAcrossExperiments(t *testing.T) {
	o := quickOpts()
	o.Parallelism = 2
	e := NewEngine(o)
	if _, err := e.Table("fig15"); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if want := int64(len(o.kernels()) * 10); st.Runs != want {
		t.Fatalf("fig15 ran %d simulations, want %d (ten systems x kernels)", st.Runs, want)
	}
	for _, id := range []string{"fig16", "fig17"} {
		if _, err := e.Table(id); err != nil {
			t.Fatal(err)
		}
		if got := e.Stats().Runs; got != st.Runs {
			t.Errorf("%s re-ran simulations: runs %d -> %d", id, st.Runs, got)
		}
	}
	if hits := e.Stats().Hits; hits == 0 {
		t.Error("fig16/fig17 produced no cache hits")
	}
}

// TestEngineSharedWithFig01 checks cross-family sharing: fig01 needs
// Hetero cells that fig15 already ran, plus only the Ideal ones.
func TestEngineSharedWithFig01(t *testing.T) {
	o := quickOpts()
	e := NewEngine(o)
	if _, err := e.Table("fig15"); err != nil {
		t.Fatal(err)
	}
	before := e.Stats().Runs
	if _, err := e.Table("fig01"); err != nil {
		t.Fatal(err)
	}
	added := e.Stats().Runs - before
	if want := int64(len(o.kernels())); added != want {
		t.Errorf("fig01 after fig15 ran %d new simulations, want %d (Ideal only)", added, want)
	}
}

func TestEngineUnknownExperiment(t *testing.T) {
	e := NewEngine(quickOpts())
	if _, err := e.Table("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want unknown-experiment error naming the id", err)
	}
	if _, err := e.Tables("fig12", "nope"); err == nil {
		t.Fatal("Tables with an unknown id did not fail")
	}
}

// TestTablesDefaultOrder checks that Tables() with no ids covers the
// registry in paper order.
func TestTablesDefaultOrder(t *testing.T) {
	o := quickOpts()
	o.Parallelism = 4
	tabs, err := NewEngine(o).Tables()
	if err != nil {
		t.Fatal(err)
	}
	reg := Registry()
	if len(tabs) != len(reg) {
		t.Fatalf("got %d tables, want %d", len(tabs), len(reg))
	}
	for i, x := range reg {
		if tabs[i].ID != x.ID {
			t.Errorf("table %d: id %q, want %q", i, tabs[i].ID, x.ID)
		}
	}
}

// TestCountersDeterministicAcrossParallelism pins the observability
// determinism guarantee: every simulation cell's hardware-counter
// registry must be identical whether the engine ran serially or over an
// 8-worker pool. Counter collection walks per-run state in fixed code
// order, so any divergence means instrumentation leaked state between
// concurrently executing simulations.
func TestCountersDeterministicAcrossParallelism(t *testing.T) {
	kinds := system.Fig15Kinds()
	kernels := []workload.Kernel{
		workload.MustByName("gemver"),
		workload.MustByName("doitg"),
	}

	serialOpts := quickOpts()
	serialOpts.Parallelism = 1
	serial := NewEngine(serialOpts)

	parOpts := quickOpts()
	parOpts.Parallelism = 8
	par := NewEngine(parOpts)
	par.prefetch(kinds, kernels) // force concurrent execution

	for _, kind := range kinds {
		for _, k := range kernels {
			sres, err := serial.get(kind, k)
			if err != nil {
				t.Fatal(err)
			}
			pres, err := par.get(kind, k)
			if err != nil {
				t.Fatal(err)
			}
			if sres.Counters.Len() == 0 {
				t.Fatalf("%s/%s: serial run produced no counters", kind, k.Name)
			}
			if !sres.Counters.Equal(&pres.Counters) {
				t.Errorf("%s/%s: counters diverge between serial and parallel engines:\n%s",
					kind, k.Name, sres.Counters.Diff(&pres.Counters))
			}
		}
	}
	if st := par.Stats(); st.Workers != 8 {
		t.Fatalf("parallel engine ran %d workers, want 8", st.Workers)
	}
}
