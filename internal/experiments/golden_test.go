package experiments

import (
	"math"
	"testing"
)

// The simulation is fully deterministic, so key derived quantities are
// exact. These golden values pin down the timing model: any change that
// shifts them is either a deliberate recalibration (update the values and
// EXPERIMENTS.md together) or a regression.

func golden(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestGoldenFig12(t *testing.T) {
	tab, err := Fig12(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	golden(t, r.Values["bare-metal-ns"], 258, 0.5, "fig12 bare-metal")
	golden(t, r.Values["interleaved-ns"], 154, 0.5, "fig12 interleaved")
	golden(t, r.Values["hidden-frac"], 0.4031, 0.001, "fig12 hidden fraction")
}

func TestGoldenSec5Interleave(t *testing.T) {
	tab, err := Sec5Interleave(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	golden(t, r.Values["bare-metal-ns"], 1559, 1, "512B bare-metal read")
	golden(t, r.Values["interleaved-ns"], 464, 1, "512B interleaved read")
	golden(t, r.Values["hidden-frac"], 0.7024, 0.001, "hiding fraction")
}

func TestGoldenSec5SelErase(t *testing.T) {
	tab, err := Sec5SelErase(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	golden(t, r.Values["plain-us"], 18, 1e-9, "plain overwrite")
	golden(t, r.Values["pre-erased-us"], 10, 1e-9, "pre-erased overwrite")
	golden(t, r.Values["reduction"], 1.0-10.0/18.0, 1e-9, "reduction")
}

func TestGoldenTable2Derived(t *testing.T) {
	tab, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := tab.Rows[0].Values
	golden(t, v["tCK-ns"], 2.5, 0, "tCK")
	golden(t, v["tRCD-ns"], 80, 0, "tRCD")
	golden(t, v["RL-cycles"], 6, 0, "RL")
	golden(t, v["partitions"], 16, 0, "partitions")
	golden(t, v["RAB"], 4, 0, "RABs")
}
