// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) from the simulation models: the motivation
// study (Figure 1), the firmware-vs-oracle comparison (Figure 7), the
// controller scheduling studies (Figures 12 and 13, Section V claims),
// the ten-system bandwidth/time/energy comparisons (Figures 15-17), the
// IPC and power time series (Figures 18-21), and Tables I-III. Each
// experiment returns printable rows; the benchmark harness and the CLI
// both drive these entry points.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"dramless/internal/stats"
	"dramless/internal/system"
	"dramless/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Scale is the workload base footprint (bytes).
	Scale int64
	// Kernels restricts the workload set (nil = full suite).
	Kernels []string
	// Parallelism bounds the run engine's worker pool: distinct
	// system x kernel simulations execute on up to this many goroutines.
	// 0 selects GOMAXPROCS; 1 forces serial execution. Rendered tables
	// are byte-identical at any setting.
	Parallelism int
	// Lanes bounds lane parallelism *inside* each simulation
	// (system.Config.Accel.Lanes). 0 is automatic: the host is divided
	// between the worker pool and intra-simulation lanes
	// (GOMAXPROCS/workers), falling back to the legacy serial engine
	// when the pool already covers every core. -1 forces the legacy
	// engine; >= 1 sets the lane goroutine bound exactly. The lane
	// executor is deterministic, so rendered tables are byte-identical
	// at any setting.
	Lanes int
	// Policy overrides the DRAM-less PRAM scheduling policy by registry
	// name ("palp", "pause-aware", ...; see memctrl.PolicyNames).
	// Empty keeps the config default (the legacy Final scheduler). The
	// policy name is part of every cell's cache key, so engines with
	// different policies never share results.
	Policy string
}

// Fast returns options sized for quick benchmark runs.
func Fast() Options { return Options{Scale: 128 << 10} }

// Full returns options sized closer to the paper's volumes.
func Full() Options { return Options{Scale: 2 << 20} }

func (o Options) kernels() []workload.Kernel {
	if len(o.Kernels) == 0 {
		return workload.Suite()
	}
	out := make([]workload.Kernel, 0, len(o.Kernels))
	for _, n := range o.Kernels {
		out = append(out, workload.MustByName(n))
	}
	return out
}

func (o Options) config(kind system.Kind) system.Config {
	cfg := system.DefaultConfig(kind)
	cfg.Scale = o.Scale
	cfg.SSDCapacity = 64 << 20
	for cfg.SSDCapacity < uint64(6*o.Scale) {
		cfg.SSDCapacity *= 2
	}
	cfg.Accel.Lanes = o.laneBudget()
	cfg.Policy = o.Policy
	return cfg
}

// workers resolves Options.Parallelism the way the runner pool does.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// laneBudget resolves Options.Lanes into the per-simulation
// Accel.Lanes setting, sharing the host budget with the worker pool in
// automatic mode: cores not claimed by cross-cell workers become
// intra-cell lanes, and when the pool already covers the host the
// legacy engine runs exactly as before (at the fast suite scale the
// lane executor's per-dispatch classification only pays for itself
// once it buys real parallelism).
func (o Options) laneBudget() int {
	switch {
	case o.Lanes > 0:
		return o.Lanes
	case o.Lanes < 0:
		return 0 // forced legacy
	}
	if n := runtime.GOMAXPROCS(0) / o.workers(); n >= 2 {
		return n
	}
	return 0
}

// Row is one printable result row.
type Row struct {
	Label  string
	Values map[string]float64
	Order  []string
}

func newRow(label string) *Row {
	return &Row{Label: label, Values: map[string]float64{}}
}

func (r *Row) set(key string, v float64) {
	if _, ok := r.Values[key]; !ok {
		r.Order = append(r.Order, key)
	}
	r.Values[key] = v
}

// Table is a named experiment result.
type Table struct {
	ID    string // "fig15", "table2", ...
	Title string
	Rows  []*Row
	Notes []string
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if len(t.Rows) > 0 {
		cols := t.Rows[0].Order
		fmt.Fprintf(w, "%-22s", "")
		for _, c := range cols {
			fmt.Fprintf(w, " %14s", c)
		}
		fmt.Fprintln(w)
		for _, r := range t.Rows {
			fmt.Fprintf(w, "%-22s", r.Label)
			for _, c := range cols {
				fmt.Fprintf(w, " %14.4g", r.Values[c])
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// JSON renders the table as a stable machine-readable document: id,
// title, ordered column names, per-row label/value maps and the notes.
func (t *Table) JSON() ([]byte, error) {
	type jsonRow struct {
		Label  string             `json:"label"`
		Values map[string]float64 `json:"values"`
	}
	doc := struct {
		ID      string    `json:"id"`
		Title   string    `json:"title"`
		Columns []string  `json:"columns"`
		Rows    []jsonRow `json:"rows"`
		Notes   []string  `json:"notes,omitempty"`
	}{ID: t.ID, Title: t.Title, Notes: t.Notes}
	if len(t.Rows) > 0 {
		doc.Columns = t.Rows[0].Order
	}
	for _, r := range t.Rows {
		doc.Rows = append(doc.Rows, jsonRow{Label: r.Label, Values: r.Values})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Summary returns a one-line digest (means over rows of each column).
func (t *Table) Summary() string {
	if len(t.Rows) == 0 {
		return t.ID + ": empty"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:", t.ID)
	for _, c := range t.Rows[0].Order {
		var vs []float64
		for _, r := range t.Rows {
			vs = append(vs, r.Values[c])
		}
		fmt.Fprintf(&sb, " %s=%.3g", c, stats.Mean(vs))
	}
	return sb.String()
}

// sortedKeys helps deterministic notes.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
