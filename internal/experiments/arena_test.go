package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dramless/internal/memctrl"
	"dramless/internal/system"
)

// arenaTable renders the tournament at the quick test scale.
func arenaTable(t *testing.T, o Options, pols []string, kinds []system.Kind) *Table {
	t.Helper()
	eng := NewEngine(o)
	tab, err := eng.Arena(pols, kinds)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestArenaByteIdenticalAcrossParallelism is the tournament's
// determinism oracle: serial and 8-way-parallel engines must render the
// exact same table bytes — cell results, merged histograms, ranking and
// notes included.
func TestArenaByteIdenticalAcrossParallelism(t *testing.T) {
	render := func(par int) []byte {
		o := quickOpts()
		o.Parallelism = par
		var buf bytes.Buffer
		arenaTable(t, o, nil, nil).Print(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("arena table differs across parallelism:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestArenaStructure pins the tournament's shape: one row per
// registered policy, the baseline normalized to exactly 1.0 with zero
// Δp99, descending geomean order, and a populated latency column set.
func TestArenaStructure(t *testing.T) {
	tab := arenaTable(t, quickOpts(), nil, nil)
	if len(tab.Rows) != len(memctrl.PolicyNames()) {
		t.Fatalf("%d rows, want one per registered policy (%d)", len(tab.Rows), len(memctrl.PolicyNames()))
	}
	prev := math.Inf(1)
	sawBase := false
	for _, r := range tab.Rows {
		gm := r.Values["geomean-x"]
		if gm > prev {
			t.Errorf("row %q breaks descending geomean order (%g after %g)", r.Label, gm, prev)
		}
		prev = gm
		if r.Values["mean-rd-ns"] <= 0 || r.Values["p99-rd-ns"] <= 0 {
			t.Errorf("row %q has empty latency columns: %+v", r.Label, r.Values)
		}
		if r.Label == BaselinePolicy {
			sawBase = true
			for _, k := range quickOpts().Kernels {
				if r.Values[k] != 1 {
					t.Errorf("baseline row %s column = %g, want exactly 1", k, r.Values[k])
				}
			}
			if r.Values["d-p99-ns"] != 0 {
				t.Errorf("baseline d-p99-ns = %g, want 0", r.Values["d-p99-ns"])
			}
		}
	}
	if !sawBase {
		t.Fatalf("no %q baseline row in the table", BaselinePolicy)
	}
	if len(tab.Notes) < 3 {
		t.Errorf("want normalization + histogram + verdict notes, got %v", tab.Notes)
	}
}

// TestArenaSubsetAndErrors covers the request surface: a policy subset
// always gains the baseline reference row, and unknown names fail with
// the registry listing.
func TestArenaSubsetAndErrors(t *testing.T) {
	tab := arenaTable(t, quickOpts(), []string{"palp"}, nil)
	if len(tab.Rows) != 2 {
		t.Fatalf("subset run has %d rows, want palp + implicit baseline", len(tab.Rows))
	}
	labels := map[string]bool{}
	for _, r := range tab.Rows {
		labels[r.Label] = true
	}
	if !labels["palp"] || !labels[BaselinePolicy] {
		t.Errorf("subset rows = %v", labels)
	}

	if _, err := NewEngine(quickOpts()).Arena([]string{"fifo"}, nil); err == nil ||
		!strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown policy error should list the registry, got %v", err)
	}
}
