package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"dramless/internal/system"
)

// quickOpts keeps per-test cost low: two contrasting kernels.
func quickOpts() Options {
	return Options{Scale: 96 << 10, Kernels: []string{"gemver", "doitg"}}
}

func TestAllExperimentsGenerate(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Gen(quickOpts())
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != e.ID {
				t.Fatalf("table id %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			var sb strings.Builder
			tab.Print(&sb)
			if !strings.Contains(sb.String(), tab.ID) {
				t.Fatal("Print lost the id")
			}
			if sum := tab.Summary(); !strings.HasPrefix(sum, tab.ID+":") {
				t.Fatalf("summary = %q", sum)
			}
		})
	}
}

func TestFig01Shape(t *testing.T) {
	tab, err := Fig01(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if p := r.Values["norm-perf"]; p <= 0 || p >= 1 {
			t.Errorf("%s: normalized perf %v, want in (0,1) - the real system must lose to ideal", r.Label, p)
		}
		if e := r.Values["norm-energy"]; e <= 1 {
			t.Errorf("%s: normalized energy %v, want > 1", r.Label, e)
		}
	}
}

func TestFig07Shape(t *testing.T) {
	tab, err := Fig07(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if d := r.Values["degradation"]; d <= 0.3 || d >= 1 {
			t.Errorf("%s: degradation %v, want substantial (firmware is the bottleneck)", r.Label, d)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tab, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	h := tab.Rows[0].Values["hidden-frac"]
	if h < 0.30 || h > 0.60 {
		t.Fatalf("hidden fraction %v, want ~40%% per the paper", h)
	}
}

func TestFig15Shape(t *testing.T) {
	tab, err := Fig15(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		dl := r.Values[system.DRAMLess.String()]
		if dl <= 1 {
			t.Errorf("%s: DRAM-less %vx, must beat Hetero on every workload", r.Label, dl)
		}
		if pb := r.Values[system.PageBuffer.String()]; dl <= pb {
			t.Errorf("%s: DRAM-less %v not above PAGE-buffer %v", r.Label, dl, pb)
		}
		if hd := r.Values[system.Heterodirect.String()]; hd <= 1 {
			t.Errorf("%s: Heterodirect %v not above Hetero", r.Label, hd)
		}
		slc := r.Values[system.IntegratedSLC.String()]
		mlc := r.Values[system.IntegratedMLC.String()]
		tlc := r.Values[system.IntegratedTLC.String()]
		if !(slc > mlc && mlc > tlc) {
			t.Errorf("%s: integrated ordering broken: %v %v %v", r.Label, slc, mlc, tlc)
		}
	}
	// PRAM SSD beats flash SSD on the read-intensive kernel, loses on the
	// write-intensive one.
	for _, r := range tab.Rows {
		hp := r.Values[system.HeteroPRAM.String()]
		switch r.Label {
		case "gemver":
			if hp <= 1 {
				t.Errorf("Hetero-PRAM %v on gemver, want > 1", hp)
			}
		case "doitg":
			if hp >= 1 {
				t.Errorf("Hetero-PRAM %v on doitg, want < 1", hp)
			}
		}
	}
}

func TestFig16Shape(t *testing.T) {
	tab, err := Fig16(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]*Row{}
	for _, r := range tab.Rows {
		byLabel[r.Label] = r
	}
	he := byLabel[system.Hetero.String()]
	if he.Values[system.TimeLoad]+he.Values[system.TimeStore] < 0.5 {
		t.Errorf("Hetero staging share %v, want dominant",
			he.Values[system.TimeLoad]+he.Values[system.TimeStore])
	}
	dl := byLabel[system.DRAMLess.String()]
	if dl.Values[system.TimeLoad]+dl.Values[system.TimeStore] > 0.25 {
		t.Errorf("DRAM-less staging share %v, want small",
			dl.Values[system.TimeLoad]+dl.Values[system.TimeStore])
	}
	if dl.Values[system.TimeCompute] <= he.Values[system.TimeCompute] {
		t.Error("DRAM-less compute share not above Hetero's")
	}
}

func TestFig17Shape(t *testing.T) {
	tab, err := Fig17(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var dl, he float64
	for _, r := range tab.Rows {
		switch r.Label {
		case system.DRAMLess.String():
			dl = r.Values["norm-total"]
		case system.Hetero.String():
			he = r.Values["norm-total"]
		}
	}
	if he != 1 {
		t.Fatalf("Hetero normalization broken: %v", he)
	}
	if dl <= 0 || dl >= 0.5 {
		t.Fatalf("DRAM-less normalized energy %v, want well below half (paper: 19%%)", dl)
	}
}

func TestFig18Fig19Shape(t *testing.T) {
	for _, gen := range []func(Options) (*Table, error){Fig18, Fig19} {
		tab, err := gen(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		var dlIPC, bestOther float64
		var dlIdle float64
		for _, r := range tab.Rows {
			if r.Label == system.DRAMLess.String() {
				dlIPC = r.Values["mean-ipc"]
				dlIdle = r.Values["idle-frac"]
				continue
			}
			if v := r.Values["mean-ipc"]; v > bestOther {
				bestOther = v
			}
		}
		if dlIPC <= bestOther {
			t.Errorf("%s: DRAM-less IPC %v not above the best alternative %v", tab.ID, dlIPC, bestOther)
		}
		if dlIdle >= 0.9 {
			t.Errorf("%s: DRAM-less idle fraction %v, want sustained execution", tab.ID, dlIdle)
		}
	}
}

func TestFig20Fig21Shape(t *testing.T) {
	for _, gen := range []func(Options) (*Table, error){Fig20, Fig21} {
		tab, err := gen(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		var dlDone, worstDone float64
		var dlEnergy, norEnergy, norPower float64
		minPower := 1e18
		for _, r := range tab.Rows {
			if r.Values["mean-power-w"] < minPower {
				minPower = r.Values["mean-power-w"]
			}
			switch r.Label {
			case system.DRAMLess.String():
				dlDone = r.Values["completion-us"]
				dlEnergy = r.Values["total-energy-uj"]
			case system.NORIntf.String():
				norEnergy = r.Values["total-energy-uj"]
				norPower = r.Values["mean-power-w"]
			}
			if r.Values["completion-us"] > worstDone {
				worstDone = r.Values["completion-us"]
			}
		}
		if dlDone*1.5 > worstDone {
			t.Errorf("%s: DRAM-less completion %v not clearly ahead of worst %v", tab.ID, dlDone, worstDone)
		}
		// NOR: low power, high energy (the paper's point).
		if norPower > minPower*1.25 {
			t.Errorf("%s: NOR power %v not near the minimum %v", tab.ID, norPower, minPower)
		}
		if norEnergy <= dlEnergy {
			t.Errorf("%s: NOR energy %v not above DRAM-less %v", tab.ID, norEnergy, dlEnergy)
		}
	}
}

func TestUnknownKernelPanicsInOptions(t *testing.T) {
	o := quickOpts()
	o.Kernels = []string{"nope"}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kernel did not panic via MustByName")
		}
	}()
	o.kernels()
}

func TestTableJSON(t *testing.T) {
	tab, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		ID      string   `json:"id"`
		Columns []string `json:"columns"`
		Rows    []struct {
			Label  string             `json:"label"`
			Values map[string]float64 `json:"values"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.ID != "table2" || len(parsed.Rows) == 0 || len(parsed.Columns) == 0 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed.Rows[0].Values["tRCD-ns"] != 80 {
		t.Fatalf("tRCD = %v", parsed.Rows[0].Values["tRCD-ns"])
	}
}
