package experiments

import (
	"os"
	"testing"
)

func TestFig15Full(t *testing.T) {
	tab, err := Fig15(Fast())
	if err != nil {
		t.Fatal(err)
	}
	tab.Print(os.Stdout)
}
