package experiments

import (
	"fmt"
	"sync"

	"dramless/internal/runner"
	"dramless/internal/system"
	"dramless/internal/workload"
)

// runKey identifies one simulation cell: the full system configuration
// plus the kernel name. system.Config is a comparable value type, so two
// experiments that need the same cell - fig15, fig16 and fig17 all walk
// the same ten systems - share one cached system.Run result.
type runKey struct {
	cfg    system.Config
	kernel string
}

// Engine is the parallel run engine behind the experiment harness. It
// owns a single cross-experiment result cache over a bounded worker
// pool: every distinct (config, kernel) simulation executes exactly once
// per engine, concurrent requests for the same cell coalesce, and
// distinct cells run on up to Options.Parallelism goroutines.
//
// Parallelism is across simulations only. Each simulation keeps its own
// single-goroutine sim.Engine, so results - and therefore every rendered
// table - are byte-identical to a serial run at any worker count.
type Engine struct {
	o Options
	r *runner.Runner[runKey, *system.Result]
}

// NewEngine builds an engine for one experiment invocation. Experiments
// regenerated through the same engine share its result cache.
func NewEngine(o Options) *Engine {
	return &Engine{
		o: o,
		r: runner.New(o.Parallelism, func(k runKey) (*system.Result, error) {
			res, err := system.Run(k.cfg, workload.MustByName(k.kernel))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", k.cfg.Kind, k.kernel, err)
			}
			return res, nil
		}),
	}
}

// Options returns the engine's scaling options.
func (e *Engine) Options() Options { return e.o }

// Stats reports the engine's cache and pool accounting.
func (e *Engine) Stats() runner.Stats { return e.r.Stats() }

// get returns the default-config cell for kind x kernel, running it if
// no experiment has needed it yet.
func (e *Engine) get(kind system.Kind, k workload.Kernel) (*system.Result, error) {
	return e.getCfg(e.o.config(kind), k)
}

// getCfg is get for a custom configuration (scheduler sweeps, sampling
// time series, shrunk footprints).
func (e *Engine) getCfg(cfg system.Config, k workload.Kernel) (*system.Result, error) {
	return e.r.Get(runKey{cfg: cfg, kernel: k.Name})
}

// prefetch enqueues the kinds x kernels product on the worker pool so
// the serial assembly loop that follows finds its cells finished or in
// flight. Cells another experiment already ran are skipped.
func (e *Engine) prefetch(kinds []system.Kind, kernels []workload.Kernel) {
	keys := make([]runKey, 0, len(kinds)*len(kernels))
	for _, kind := range kinds {
		cfg := e.o.config(kind)
		for _, k := range kernels {
			keys = append(keys, runKey{cfg: cfg, kernel: k.Name})
		}
	}
	e.r.Prefetch(keys...)
}

// prefetchCfg enqueues custom-configuration cells.
func (e *Engine) prefetchCfg(cfg system.Config, kernels ...workload.Kernel) {
	keys := make([]runKey, 0, len(kernels))
	for _, k := range kernels {
		keys = append(keys, runKey{cfg: cfg, kernel: k.Name})
	}
	e.r.Prefetch(keys...)
}

// Table regenerates one experiment by id through the shared cache.
func (e *Engine) Table(id string) (*Table, error) {
	for _, x := range Registry() {
		if x.ID == id {
			return x.Gen(e)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Tables regenerates the identified experiments - all of them, in paper
// order, when ids is empty - and returns the tables in request order.
//
// With one worker the experiments run serially in order. Otherwise each
// experiment runs on its own goroutine over the shared pool-bounded
// cache; assembly order is fixed by the ids slice, so the output is
// byte-identical to the serial run. The first error in request order is
// returned; a panicking generator re-panics on the calling goroutine,
// matching serial behaviour.
func (e *Engine) Tables(ids ...string) ([]*Table, error) {
	if len(ids) == 0 {
		for _, x := range Registry() {
			ids = append(ids, x.ID)
		}
	}
	tabs := make([]*Table, len(ids))
	if e.r.Workers() == 1 {
		for i, id := range ids {
			t, err := e.Table(id)
			if err != nil {
				return nil, err
			}
			tabs[i] = t
		}
		return tabs, nil
	}
	errs := make([]error, len(ids))
	panics := make([]any, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			tabs[i], errs[i] = e.Table(id)
		}(i, id)
	}
	wg.Wait()
	for i := range ids {
		if panics[i] != nil {
			panic(panics[i])
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return tabs, nil
}
