package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dramless/internal/runner"
	"dramless/internal/system"
	"dramless/internal/workload"
)

// runKey identifies one simulation cell: the full system configuration
// plus the kernel name. system.Config is a comparable value type, so two
// experiments that need the same cell - fig15, fig16 and fig17 all walk
// the same ten systems - share one cached system.Run result.
type runKey struct {
	cfg    system.Config
	kernel string
}

// Engine is the parallel run engine behind the experiment harness. It
// owns a single cross-experiment result cache over a bounded worker
// pool: every distinct (config, kernel) simulation executes exactly once
// per engine, concurrent requests for the same cell coalesce, and
// distinct cells run on up to Options.Parallelism goroutines.
//
// Parallelism is across simulations only. Each simulation keeps its own
// single-goroutine sim.Engine, so results - and therefore every rendered
// table - are byte-identical to a serial run at any worker count.
type Engine struct {
	o Options
	r *runner.Runner[runKey, *system.Result]

	// pr is the second-level cache: one captured populate/load
	// checkpoint per distinct system.Prefix. Many cells share a prefix
	// (every kernel with the same footprint class under one config), so
	// each prefix simulates once and every cell forks from it. The
	// runner's singleflight makes concurrent captures of one prefix
	// coalesce; forks only read the frozen template, so any number may
	// proceed at once.
	pr *runner.Runner[system.Prefix, *system.Checkpoint]

	mu      sync.Mutex
	seen    map[system.Prefix]bool
	timings []CellTiming
	cps     []*system.Checkpoint

	// events totals the kernel-phase simulation events dispatched by
	// the cells this engine actually ran (cache hits re-dispatch
	// nothing) — the numerator of the benchmark harness's events/sec
	// dispatch-throughput metric.
	events atomic.Int64
}

// CellTiming is the host-side wall-clock accounting of one simulation
// cell, for the engine's -slowest report.
type CellTiming struct {
	Kind      system.Kind
	Kernel    string
	Wall      time.Duration
	PrefixHit bool // the cell forked an already-captured checkpoint
	// Lane fold coverage of the cell's kernel and storage phases:
	// total dispatched events and the share absorbed inline by lane
	// tails. Zero events means the cell ran the legacy serial engine
	// (no lane stats).
	LaneEvents int64
	LaneFolded int64
	// Blame summary from the run's always-on time account: the largest
	// kernel-phase account (phase prefix stripped) and its share of the
	// kernel wall in parts per thousand.
	BlameTop      string
	BlameTopMille int64
}

// NewEngine builds an engine for one experiment invocation. Experiments
// regenerated through the same engine share its result cache.
func NewEngine(o Options) *Engine {
	e := &Engine{
		o:    o,
		seen: map[system.Prefix]bool{},
	}
	e.pr = runner.New(o.Parallelism, func(pr system.Prefix) (*system.Checkpoint, error) {
		cp, err := system.CapturePrefix(pr)
		if err != nil {
			return nil, fmt.Errorf("%s prefix: %w", pr.Cfg.Kind, err)
		}
		e.mu.Lock()
		e.cps = append(e.cps, cp)
		e.mu.Unlock()
		return cp, nil
	})
	e.r = runner.New(o.Parallelism, func(k runKey) (*system.Result, error) {
		kern := workload.MustByName(k.kernel)
		prefix := system.PrefixOf(k.cfg, kern)
		e.mu.Lock()
		hit := e.seen[prefix]
		e.seen[prefix] = true
		e.mu.Unlock()
		start := time.Now()
		cp, err := e.pr.Get(prefix)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", k.cfg.Kind, k.kernel, err)
		}
		res, err := system.RunForked(k.cfg, kern, cp)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", k.cfg.Kind, k.kernel, err)
		}
		if res.Report != nil {
			e.events.Add(res.Report.Events)
		}
		ct := CellTiming{
			Kind:      k.cfg.Kind,
			Kernel:    k.kernel,
			Wall:      time.Since(start),
			PrefixHit: hit,
		}
		if res.Report != nil && res.Report.LaneWorkers > 0 {
			ct.LaneEvents = res.Report.Events
			ct.LaneFolded = res.Report.LaneFolded
		}
		// Storage-phase lanes fold dependent drain ops the kernel
		// report never sees; forked cells only ever have the store
		// side (the load phase lives in the shared prefix).
		for _, ph := range []string{"sim.lane.load.", "sim.lane.store."} {
			ct.LaneEvents += res.Counters.Get(ph + "events")
			ct.LaneFolded += res.Counters.Get(ph + "folded_events")
		}
		if top := res.Blame.TopShares("kernel/", 1); len(top) == 1 {
			ct.BlameTop = strings.TrimPrefix(top[0].Name, "kernel/")
			ct.BlameTopMille = top[0].Permille
		}
		e.mu.Lock()
		e.timings = append(e.timings, ct)
		e.mu.Unlock()
		return res, nil
	})
	return e
}

// Options returns the engine's scaling options.
func (e *Engine) Options() Options { return e.o }

// Release returns the engine's captured checkpoint templates - the
// dominant retained allocation of a full regeneration - to the component
// storage pools, where the next engine's captures reuse them. Call once
// every table the engine will produce has been assembled; tables and
// results stay valid (they own their data), but further cell runs
// through a released engine fall back to cold simulations.
func (e *Engine) Release() {
	e.mu.Lock()
	cps := e.cps
	e.cps = nil
	e.mu.Unlock()
	for _, cp := range cps {
		cp.Release()
	}
}

// Stats reports the engine's cache and pool accounting (simulation
// cells; checkpoint captures are accounted under PrefixStats).
func (e *Engine) Stats() runner.Stats { return e.r.Stats() }

// PrefixStats reports the checkpoint cache's accounting: Runs is the
// number of distinct prefixes captured, Coalesced the cells that waited
// on an in-flight capture.
func (e *Engine) PrefixStats() runner.Stats { return e.pr.Stats() }

// Events returns the total kernel-phase simulation events dispatched by
// the cells this engine ran. Dividing by host wall-clock gives the
// dispatch throughput (events/sec) the benchmark harness reports, which
// attributes suite speedups to the event kernel rather than to caching.
func (e *Engine) Events() int64 { return e.events.Load() }

// SlowestCells returns the n largest simulation cells by host
// wall-clock, slowest first, each tagged with whether its prefix
// checkpoint already existed when the cell started.
func (e *Engine) SlowestCells(n int) []CellTiming {
	e.mu.Lock()
	out := make([]CellTiming, len(e.timings))
	copy(out, e.timings)
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Kernel < out[j].Kernel
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// get returns the default-config cell for kind x kernel, running it if
// no experiment has needed it yet.
func (e *Engine) get(kind system.Kind, k workload.Kernel) (*system.Result, error) {
	return e.getCfg(e.o.config(kind), k)
}

// getCfg is get for a custom configuration (scheduler sweeps, sampling
// time series, shrunk footprints).
func (e *Engine) getCfg(cfg system.Config, k workload.Kernel) (*system.Result, error) {
	return e.r.Get(runKey{cfg: cfg, kernel: k.Name})
}

// prefetch enqueues the kinds x kernels product on the worker pool so
// the serial assembly loop that follows finds its cells finished or in
// flight. Cells another experiment already ran are skipped.
func (e *Engine) prefetch(kinds []system.Kind, kernels []workload.Kernel) {
	keys := make([]runKey, 0, len(kinds)*len(kernels))
	for _, kind := range kinds {
		cfg := e.o.config(kind)
		for _, k := range kernels {
			keys = append(keys, runKey{cfg: cfg, kernel: k.Name})
		}
	}
	e.r.Prefetch(keys...)
}

// prefetchCfg enqueues custom-configuration cells.
func (e *Engine) prefetchCfg(cfg system.Config, kernels ...workload.Kernel) {
	keys := make([]runKey, 0, len(kernels))
	for _, k := range kernels {
		keys = append(keys, runKey{cfg: cfg, kernel: k.Name})
	}
	e.r.Prefetch(keys...)
}

// Table regenerates one experiment by id through the shared cache.
func (e *Engine) Table(id string) (*Table, error) {
	for _, x := range Registry() {
		if x.ID == id {
			return x.Gen(e)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Tables regenerates the identified experiments - all of them, in paper
// order, when ids is empty - and returns the tables in request order.
//
// With one worker the experiments run serially in order. Otherwise each
// experiment runs on its own goroutine over the shared pool-bounded
// cache; assembly order is fixed by the ids slice, so the output is
// byte-identical to the serial run. The first error in request order is
// returned; a panicking generator re-panics on the calling goroutine,
// matching serial behaviour.
func (e *Engine) Tables(ids ...string) ([]*Table, error) {
	if len(ids) == 0 {
		for _, x := range Registry() {
			ids = append(ids, x.ID)
		}
	}
	tabs := make([]*Table, len(ids))
	if e.r.Workers() == 1 {
		for i, id := range ids {
			t, err := e.Table(id)
			if err != nil {
				return nil, err
			}
			tabs[i] = t
		}
		return tabs, nil
	}
	errs := make([]error, len(ids))
	panics := make([]any, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			tabs[i], errs[i] = e.Table(id)
		}(i, id)
	}
	wg.Wait()
	for i := range ids {
		if panics[i] != nil {
			panic(panics[i])
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return tabs, nil
}
