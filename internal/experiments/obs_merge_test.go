package experiments

import (
	"bytes"
	"testing"

	"dramless/internal/obs"
	"dramless/internal/runner"
	"dramless/internal/system"
	"dramless/internal/workload"
)

type obsCell struct {
	kind   system.Kind
	kernel string
}

// collectObserved runs every cell on a pool of the given width with a
// fresh per-cell Observer (an Observer is single-run state and must not
// be shared across pooled simulations), then merges the per-cell
// registries in fixed cell order.
func collectObserved(t *testing.T, workers int, cells []obsCell) (*obs.HistogramSet, *obs.SeriesSet) {
	t.Helper()
	r := runner.New(workers, func(c obsCell) (*obs.Observer, error) {
		cfg := system.DefaultConfig(c.kind)
		cfg.Scale = 128 << 10
		cfg.SSDCapacity = 64 << 20
		cfg.Obs = obs.New()
		if _, err := system.Run(cfg, workload.MustByName(c.kernel)); err != nil {
			return nil, err
		}
		return cfg.Obs, nil
	})
	keys := make([]obsCell, len(cells))
	copy(keys, cells)
	r.Prefetch(keys...)

	hists := &obs.HistogramSet{}
	series := obs.NewSeriesSet(obs.DefaultSeriesWindow)
	for _, c := range cells {
		o, err := r.Get(c)
		if err != nil {
			t.Fatalf("%v/%s: %v", c.kind, c.kernel, err)
		}
		hists.Merge(o.Histograms())
		series.Merge(o.Series())
	}
	return hists, series
}

// TestObservedMergeSerialMatchesParallel pins the acceptance property
// for observed fleets: a serial pool and an 8-worker pool over the same
// cells produce byte-identical merged histogram and series exports.
// Each simulation is single-goroutine deterministic and the merge order
// is the fixed cell order, so worker count must be invisible.
func TestObservedMergeSerialMatchesParallel(t *testing.T) {
	var cells []obsCell
	for _, kind := range system.Kinds() {
		cells = append(cells,
			obsCell{kind: kind, kernel: "gemver"},
			obsCell{kind: kind, kernel: "jaco1d"},
		)
	}

	sh, ss := collectObserved(t, 1, cells)
	ph, ps := collectObserved(t, 8, cells)

	if !sh.Equal(ph) {
		t.Errorf("merged histograms differ:\n%s", sh.Diff(ph))
	}
	if !ss.Equal(ps) {
		t.Errorf("merged series differ:\n%s", ss.Diff(ps))
	}

	var sb, pb bytes.Buffer
	if err := sh.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := ph.WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Error("merged histogram JSON exports are not byte-identical")
	}
	sb.Reset()
	pb.Reset()
	if err := ss.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if err := ps.WriteCSV(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Error("merged series CSV exports are not byte-identical")
	}
}
