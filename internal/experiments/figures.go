package experiments

import (
	"fmt"

	"dramless/internal/energy"
	"dramless/internal/memctrl"
	"dramless/internal/sim"
	"dramless/internal/stats"
	"dramless/internal/system"
	"dramless/internal/workload"
)

// The figure generators run as methods on a shared *Engine so every
// system x kernel simulation is computed once per invocation no matter
// how many figures need it, and so distinct cells execute on the
// engine's worker pool. Each generator first prefetches the cells it
// will read, then assembles its rows in a fixed serial order - the
// rendered tables are byte-identical at any parallelism. The package
// also keeps an Options-level function per figure (Fig01, Fig15, ...)
// that runs on a private engine, for one-off use.

// Fig01 reproduces the motivation study: application performance and
// energy of a real accelerated system (Hetero) normalized to an ideal
// system whose accelerator memory already holds all data. The paper
// reports up to 74% performance degradation and ~9x energy.
func Fig01(o Options) (*Table, error) { return NewEngine(o).Fig01() }

// Fig01 generates Figure 1 through the engine's shared cache.
func (e *Engine) Fig01() (*Table, error) {
	o := e.o
	t := &Table{ID: "fig01", Title: "accelerated system vs ideal (normalized)"}
	e.prefetch([]system.Kind{system.Hetero, system.Ideal}, o.kernels())
	var perf, en []float64
	for _, k := range o.kernels() {
		real, err := e.get(system.Hetero, k)
		if err != nil {
			return nil, err
		}
		ideal, err := e.get(system.Ideal, k)
		if err != nil {
			return nil, err
		}
		r := newRow(k.Name)
		p := ideal.Total.Seconds() / real.Total.Seconds() // normalized perf
		e2 := real.Energy.Total() / ideal.Energy.Total()  // normalized energy
		r.set("norm-perf", p)
		r.set("norm-energy", e2)
		t.Rows = append(t.Rows, r)
		perf = append(perf, p)
		en = append(en, e2)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean normalized performance %.2f (degradation %.0f%%), mean normalized energy %.1fx (paper: up to 74%% degradation, ~9x energy)",
			stats.Mean(perf), (1-stats.Mean(perf))*100, stats.Mean(en)))
	return t, nil
}

// Fig07 reproduces the firmware study: performance degradation of
// managing the PRAM subsystem with traditional SSD firmware versus the
// oracle hardware-automated controller (the paper reports up to 80%).
func Fig07(o Options) (*Table, error) { return NewEngine(o).Fig07() }

// Fig07 generates Figure 7 through the engine's shared cache.
func (e *Engine) Fig07() (*Table, error) {
	o := e.o
	t := &Table{ID: "fig07", Title: "firmware-managed PRAM vs oracle controller"}
	e.prefetch([]system.Kind{system.DRAMLessFirmware, system.DRAMLess}, o.kernels())
	var degr []float64
	for _, k := range o.kernels() {
		fw, err := e.get(system.DRAMLessFirmware, k)
		if err != nil {
			return nil, err
		}
		oracle, err := e.get(system.DRAMLess, k)
		if err != nil {
			return nil, err
		}
		r := newRow(k.Name)
		d := 1 - oracle.Total.Seconds()/fw.Total.Seconds()
		r.set("degradation", d)
		t.Rows = append(t.Rows, r)
		degr = append(degr, d)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("mean degradation %.0f%%, max %.0f%% (paper: up to 80%%)",
		stats.Mean(degr)*100, stats.Percentile(degr, 1)*100))
	return t, nil
}

// Fig12 reproduces the multi-resource-aware interleaving timing diagram
// as a measurement: two requests to different partitions of the same
// chip, bare-metal versus interleaved.
func Fig12(Options) (*Table, error) {
	t := &Table{ID: "fig12", Title: "two-request overlap on one chip (ns)"}
	elapsed := func(s memctrl.Scheduler) (sim.Duration, error) {
		cfg := memctrl.DefaultConfig(s)
		cfg.Geometry.RowsPerModule = 1 << 16
		cfg.Prefetch = false
		sub, err := memctrl.New(cfg)
		if err != nil {
			return 0, err
		}
		// Module-local rows 0 and 1 of (ch0, pkg0): partitions 0 and 1,
		// queued together as the controller would see them.
		_, done, err := sub.ReadScatter(0, []uint64{0, 1024}, 32)
		return done, err
	}
	serial, err := elapsed(memctrl.Noop)
	if err != nil {
		return nil, err
	}
	over, err := elapsed(memctrl.Interleave)
	if err != nil {
		return nil, err
	}
	r := newRow("req0+req1")
	r.set("bare-metal-ns", serial.Nanos())
	r.set("interleaved-ns", over.Nanos())
	r.set("hidden-frac", 1-float64(over)/float64(serial))
	t.Rows = append(t.Rows, r)
	t.Notes = append(t.Notes, "paper: interleaving hides array access behind transfer, ~40% of the memory access latency")
	return t, nil
}

// Fig13 reproduces the scheduler study: data-processing bandwidth of the
// DRAM-less subsystem under Bare-metal / Interleaving / Selective-erasing
// / Final, plus each workload's write ratio (the circles).
func Fig13(o Options) (*Table, error) { return NewEngine(o).Fig13() }

// Fig13 generates Figure 13 through the engine's shared cache.
func (e *Engine) Fig13() (*Table, error) {
	o := e.o
	t := &Table{ID: "fig13", Title: "scheduler bandwidth, normalized to Bare-metal"}
	scheds := []memctrl.Scheduler{memctrl.Noop, memctrl.Interleave, memctrl.SelErase, memctrl.Final}
	cfgs := make(map[memctrl.Scheduler]system.Config, len(scheds))
	for _, s := range scheds {
		cfg := o.config(system.DRAMLess)
		cfg.Scheduler = s
		cfgs[s] = cfg
		e.prefetchCfg(cfg, o.kernels()...)
	}
	gains := map[memctrl.Scheduler][]float64{}
	for _, k := range o.kernels() {
		row := newRow(k.Name)
		var base float64
		for _, s := range scheds {
			res, err := e.getCfg(cfgs[s], k)
			if err != nil {
				return nil, err
			}
			bw := res.BandwidthMBps()
			if s == memctrl.Noop {
				base = bw
			}
			norm := bw / base
			row.set(s.String(), norm)
			gains[s] = append(gains[s], norm)
		}
		p := workload.Params{Scale: o.Scale, Agents: 7}
		row.set("write-ratio", k.WriteRatio(p))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"mean gain over Bare-metal: Interleaving %.0f%%, Selective-erasing %.0f%%, Final %.0f%% (paper: 54%% max / 57%% / 77%%)",
		(stats.Mean(gains[memctrl.Interleave])-1)*100,
		(stats.Mean(gains[memctrl.SelErase])-1)*100,
		(stats.Mean(gains[memctrl.Final])-1)*100))
	return t, nil
}

// Fig15 reproduces the headline throughput comparison: the ten systems'
// data-processing bandwidth normalized to Hetero.
func Fig15(o Options) (*Table, error) { return NewEngine(o).Fig15() }

// Fig15 generates Figure 15 through the engine's shared cache.
func (e *Engine) Fig15() (*Table, error) {
	o := e.o
	t := &Table{ID: "fig15", Title: "throughput normalized to Hetero"}
	kinds := system.Fig15Kinds()
	e.prefetch(kinds, o.kernels())
	norm := map[system.Kind][]float64{}
	for _, k := range o.kernels() {
		base, err := e.get(system.Hetero, k)
		if err != nil {
			return nil, err
		}
		row := newRow(k.Name)
		for _, kind := range kinds {
			res, err := e.get(kind, k)
			if err != nil {
				return nil, err
			}
			v := res.BandwidthMBps() / base.BandwidthMBps()
			row.set(kind.String(), v)
			norm[kind] = append(norm[kind], v)
		}
		t.Rows = append(t.Rows, row)
	}
	dl := stats.Mean(norm[system.DRAMLess])
	hd := stats.Mean(norm[system.Heterodirect])
	t.Notes = append(t.Notes, fmt.Sprintf(
		"DRAM-less vs Hetero %.0f%%, vs Heterodirect %.0f%% (paper: +93%% and +47%%)",
		(dl-1)*100, (dl/hd-1)*100))
	return t, nil
}

// Fig16 reproduces the execution-time decomposition.
func Fig16(o Options) (*Table, error) { return NewEngine(o).Fig16() }

// Fig16 generates Figure 16 through the engine's shared cache.
func (e *Engine) Fig16() (*Table, error) {
	o := e.o
	t := &Table{ID: "fig16", Title: "execution time decomposition (fraction of total)"}
	e.prefetch(system.Fig15Kinds(), o.kernels())
	comps := []string{system.TimeLoad, system.TimeCompute, system.TimeStall, system.TimeStore}
	for _, kind := range system.Fig15Kinds() {
		agg := stats.NewBreakdown()
		for _, k := range o.kernels() {
			res, err := e.get(kind, k)
			if err != nil {
				return nil, err
			}
			agg.AddAll(res.Time)
		}
		row := newRow(kind.String())
		for _, c := range comps {
			row.set(c, agg.Share(c))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: heterogeneous systems spend most time in data movement; DRAM-less spends it computing")
	return t, nil
}

// Fig17 reproduces the energy decomposition, normalized to Hetero.
func Fig17(o Options) (*Table, error) { return NewEngine(o).Fig17() }

// Fig17 generates Figure 17 through the engine's shared cache.
func (e *Engine) Fig17() (*Table, error) {
	o := e.o
	t := &Table{ID: "fig17", Title: "energy decomposition (J, plus total normalized to Hetero)"}
	e.prefetch(system.Fig15Kinds(), o.kernels())
	comps := []string{
		energy.CompHost, energy.CompHostDRAM, energy.CompPCIe, energy.CompSSD,
		energy.CompCore, energy.CompCache, energy.CompDRAM, energy.CompFlash,
		energy.CompPRAM, energy.CompFirmware,
	}
	baseTotals := map[string]float64{}
	for _, k := range o.kernels() {
		res, err := e.get(system.Hetero, k)
		if err != nil {
			return nil, err
		}
		baseTotals[k.Name] = res.Energy.Total()
	}
	var dlNorm, hdNorm []float64
	for _, kind := range system.Fig15Kinds() {
		row := newRow(kind.String())
		agg := stats.NewBreakdown()
		var norms []float64
		for _, k := range o.kernels() {
			res, err := e.get(kind, k)
			if err != nil {
				return nil, err
			}
			agg.AddAll(res.Energy.Breakdown())
			norms = append(norms, res.Energy.Total()/baseTotals[k.Name])
		}
		for _, c := range comps {
			row.set(c, agg.Get(c))
		}
		row.set("norm-total", stats.Mean(norms))
		t.Rows = append(t.Rows, row)
		if kind == system.DRAMLess {
			dlNorm = norms
		}
		if kind == system.Heterodirect {
			hdNorm = norms
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"DRAM-less energy = %.0f%% of Hetero, %.0f%% of Heterodirect (paper: 19%% of the advanced accelerated systems)",
		stats.Mean(dlNorm)*100, stats.Mean(dlNorm)/stats.Mean(hdNorm)*100))
	return t, nil
}

// timeSeriesKinds are the systems shown in the Figure 18-21 time series.
func timeSeriesKinds() []system.Kind {
	return []system.Kind{
		system.IntegratedSLC, system.IntegratedMLC, system.IntegratedTLC,
		system.PageBuffer, system.NORIntf, system.DRAMLess,
	}
}

// ipcConfig is the sampling configuration of the Figure 18/19 series.
func (e *Engine) ipcConfig(kind system.Kind) system.Config {
	cfg := e.o.config(kind)
	cfg.SampleInterval = 50 * sim.Microsecond
	return cfg
}

// figIPC builds an IPC time-series table for one workload.
func (e *Engine) figIPC(id, kname string) (*Table, error) {
	t := &Table{ID: id, Title: "total IPC over time, " + kname}
	k := workload.MustByName(kname)
	for _, kind := range timeSeriesKinds() {
		e.prefetchCfg(e.ipcConfig(kind), k)
	}
	for _, kind := range timeSeriesKinds() {
		cfg := e.ipcConfig(kind)
		res, err := e.getCfg(cfg, k)
		if err != nil {
			return nil, err
		}
		row := newRow(kind.String())
		// Mean IPC, sustained (p50) and the stall fraction (zero-IPC buckets).
		cycles := cfg.SampleInterval.Seconds() * 1e9
		vals := res.Report.IPC.Values()
		ipc := make([]float64, len(vals))
		zero := 0
		for i, v := range vals {
			ipc[i] = v / cycles
			if ipc[i] < 0.05 {
				zero++
			}
		}
		row.set("mean-ipc", stats.Mean(ipc))
		row.set("p50-ipc", stats.Percentile(ipc, 0.5))
		row.set("idle-frac", float64(zero)/float64(max(1, len(ipc))))
		row.set("samples", float64(len(ipc)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: page-granule systems stall on storage (zero-IPC periods); DRAM-less sustains ~2 total IPC")
	return t, nil
}

// Fig18 reproduces the read-intensive IPC time series (gemver).
func Fig18(o Options) (*Table, error) { return NewEngine(o).Fig18() }

// Fig18 generates Figure 18 through the engine's shared cache.
func (e *Engine) Fig18() (*Table, error) { return e.figIPC("fig18", "gemver") }

// Fig19 reproduces the write-intensive IPC time series (doitg).
func Fig19(o Options) (*Table, error) { return NewEngine(o).Fig19() }

// Fig19 generates Figure 19 through the engine's shared cache.
func (e *Engine) Fig19() (*Table, error) { return e.figIPC("fig19", "doitg") }

// powerConfig is the capture configuration of the Figure 20/21 series:
// the paper captures the first 16 KB of processing.
func (e *Engine) powerConfig(kind system.Kind) system.Config {
	cfg := e.o.config(kind)
	cfg.Scale = 16 << 10
	cfg.SampleInterval = 10 * sim.Microsecond
	return cfg
}

// figPower builds the power / cumulative-energy capture for one workload
// over a small (16 KiB-class) footprint, as in Figures 20/21.
func (e *Engine) figPower(id, kname string) (*Table, error) {
	t := &Table{ID: id, Title: "core power and total energy, " + kname + " (16KB-class capture)"}
	k := workload.MustByName(kname)
	for _, kind := range timeSeriesKinds() {
		e.prefetchCfg(e.powerConfig(kind), k)
	}
	for _, kind := range timeSeriesKinds() {
		res, err := e.getCfg(e.powerConfig(kind), k)
		if err != nil {
			return nil, err
		}
		row := newRow(kind.String())
		ps := res.Energy.PowerSeries()
		row.set("mean-power-w", stats.Mean(ps))
		row.set("peak-power-w", stats.Percentile(ps, 1))
		row.set("total-energy-uj", res.Energy.Total()*1e6)
		row.set("completion-us", res.Total.Micros())
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: NOR-intf draws the least power but burns more energy via longer runtime; DRAM-less completes 50-88% sooner")
	return t, nil
}

// Fig20 reproduces the read-intensive power/energy capture (gemver).
func Fig20(o Options) (*Table, error) { return NewEngine(o).Fig20() }

// Fig20 generates Figure 20 through the engine's shared cache.
func (e *Engine) Fig20() (*Table, error) { return e.figPower("fig20", "gemver") }

// Fig21 reproduces the write-intensive power/energy capture (doitg).
func Fig21(o Options) (*Table, error) { return NewEngine(o).Fig21() }

// Fig21 generates Figure 21 through the engine's shared cache.
func (e *Engine) Fig21() (*Table, error) { return e.figPower("fig21", "doitg") }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
