package experiments

import (
	"fmt"

	"dramless/internal/energy"
	"dramless/internal/memctrl"
	"dramless/internal/sim"
	"dramless/internal/stats"
	"dramless/internal/system"
	"dramless/internal/workload"
)

// Fig01 reproduces the motivation study: application performance and
// energy of a real accelerated system (Hetero) normalized to an ideal
// system whose accelerator memory already holds all data. The paper
// reports up to 74% performance degradation and ~9x energy.
func Fig01(o Options) (*Table, error) {
	t := &Table{ID: "fig01", Title: "accelerated system vs ideal (normalized)"}
	m := newMatrix(o)
	var perf, en []float64
	for _, k := range o.kernels() {
		real, err := m.get(system.Hetero, k)
		if err != nil {
			return nil, err
		}
		ideal, err := m.get(system.Ideal, k)
		if err != nil {
			return nil, err
		}
		r := newRow(k.Name)
		p := ideal.Total.Seconds() / real.Total.Seconds() // normalized perf
		e := real.Energy.Total() / ideal.Energy.Total()   // normalized energy
		r.set("norm-perf", p)
		r.set("norm-energy", e)
		t.Rows = append(t.Rows, r)
		perf = append(perf, p)
		en = append(en, e)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean normalized performance %.2f (degradation %.0f%%), mean normalized energy %.1fx (paper: up to 74%% degradation, ~9x energy)",
			stats.Mean(perf), (1-stats.Mean(perf))*100, stats.Mean(en)))
	return t, nil
}

// Fig07 reproduces the firmware study: performance degradation of
// managing the PRAM subsystem with traditional SSD firmware versus the
// oracle hardware-automated controller (the paper reports up to 80%).
func Fig07(o Options) (*Table, error) {
	t := &Table{ID: "fig07", Title: "firmware-managed PRAM vs oracle controller"}
	m := newMatrix(o)
	var degr []float64
	for _, k := range o.kernels() {
		fw, err := m.get(system.DRAMLessFirmware, k)
		if err != nil {
			return nil, err
		}
		oracle, err := m.get(system.DRAMLess, k)
		if err != nil {
			return nil, err
		}
		r := newRow(k.Name)
		d := 1 - oracle.Total.Seconds()/fw.Total.Seconds()
		r.set("degradation", d)
		t.Rows = append(t.Rows, r)
		degr = append(degr, d)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("mean degradation %.0f%%, max %.0f%% (paper: up to 80%%)",
		stats.Mean(degr)*100, stats.Percentile(degr, 1)*100))
	return t, nil
}

// Fig12 reproduces the multi-resource-aware interleaving timing diagram
// as a measurement: two requests to different partitions of the same
// chip, bare-metal versus interleaved.
func Fig12(Options) (*Table, error) {
	t := &Table{ID: "fig12", Title: "two-request overlap on one chip (ns)"}
	elapsed := func(s memctrl.Scheduler) (sim.Duration, error) {
		cfg := memctrl.DefaultConfig(s)
		cfg.Geometry.RowsPerModule = 1 << 16
		cfg.Prefetch = false
		sub, err := memctrl.New(cfg)
		if err != nil {
			return 0, err
		}
		// Module-local rows 0 and 1 of (ch0, pkg0): partitions 0 and 1,
		// queued together as the controller would see them.
		_, done, err := sub.ReadScatter(0, []uint64{0, 1024}, 32)
		return done, err
	}
	serial, err := elapsed(memctrl.Noop)
	if err != nil {
		return nil, err
	}
	over, err := elapsed(memctrl.Interleave)
	if err != nil {
		return nil, err
	}
	r := newRow("req0+req1")
	r.set("bare-metal-ns", serial.Nanos())
	r.set("interleaved-ns", over.Nanos())
	r.set("hidden-frac", 1-float64(over)/float64(serial))
	t.Rows = append(t.Rows, r)
	t.Notes = append(t.Notes, "paper: interleaving hides array access behind transfer, ~40% of the memory access latency")
	return t, nil
}

// Fig13 reproduces the scheduler study: data-processing bandwidth of the
// DRAM-less subsystem under Bare-metal / Interleaving / Selective-erasing
// / Final, plus each workload's write ratio (the circles).
func Fig13(o Options) (*Table, error) {
	t := &Table{ID: "fig13", Title: "scheduler bandwidth, normalized to Bare-metal"}
	scheds := []memctrl.Scheduler{memctrl.Noop, memctrl.Interleave, memctrl.SelErase, memctrl.Final}
	gains := map[memctrl.Scheduler][]float64{}
	for _, k := range o.kernels() {
		row := newRow(k.Name)
		var base float64
		for _, s := range scheds {
			cfg := o.config(system.DRAMLess)
			cfg.Scheduler = s
			res, err := system.Run(cfg, k)
			if err != nil {
				return nil, err
			}
			bw := res.BandwidthMBps()
			if s == memctrl.Noop {
				base = bw
			}
			norm := bw / base
			row.set(s.String(), norm)
			gains[s] = append(gains[s], norm)
		}
		p := workload.Params{Scale: o.Scale, Agents: 7}
		row.set("write-ratio", k.WriteRatio(p))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"mean gain over Bare-metal: Interleaving %.0f%%, Selective-erasing %.0f%%, Final %.0f%% (paper: 54%% max / 57%% / 77%%)",
		(stats.Mean(gains[memctrl.Interleave])-1)*100,
		(stats.Mean(gains[memctrl.SelErase])-1)*100,
		(stats.Mean(gains[memctrl.Final])-1)*100))
	return t, nil
}

// Fig15 reproduces the headline throughput comparison: the ten systems'
// data-processing bandwidth normalized to Hetero.
func Fig15(o Options) (*Table, error) {
	t := &Table{ID: "fig15", Title: "throughput normalized to Hetero"}
	m := newMatrix(o)
	kinds := system.Fig15Kinds()
	norm := map[system.Kind][]float64{}
	for _, k := range o.kernels() {
		base, err := m.get(system.Hetero, k)
		if err != nil {
			return nil, err
		}
		row := newRow(k.Name)
		for _, kind := range kinds {
			res, err := m.get(kind, k)
			if err != nil {
				return nil, err
			}
			v := res.BandwidthMBps() / base.BandwidthMBps()
			row.set(kind.String(), v)
			norm[kind] = append(norm[kind], v)
		}
		t.Rows = append(t.Rows, row)
	}
	dl := stats.Mean(norm[system.DRAMLess])
	hd := stats.Mean(norm[system.Heterodirect])
	t.Notes = append(t.Notes, fmt.Sprintf(
		"DRAM-less vs Hetero %.0f%%, vs Heterodirect %.0f%% (paper: +93%% and +47%%)",
		(dl-1)*100, (dl/hd-1)*100))
	return t, nil
}

// Fig16 reproduces the execution-time decomposition.
func Fig16(o Options) (*Table, error) {
	t := &Table{ID: "fig16", Title: "execution time decomposition (fraction of total)"}
	m := newMatrix(o)
	comps := []string{system.TimeLoad, system.TimeCompute, system.TimeStall, system.TimeStore}
	for _, kind := range system.Fig15Kinds() {
		agg := stats.NewBreakdown()
		for _, k := range o.kernels() {
			res, err := m.get(kind, k)
			if err != nil {
				return nil, err
			}
			agg.AddAll(res.Time)
		}
		row := newRow(kind.String())
		for _, c := range comps {
			row.set(c, agg.Share(c))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: heterogeneous systems spend most time in data movement; DRAM-less spends it computing")
	return t, nil
}

// Fig17 reproduces the energy decomposition, normalized to Hetero.
func Fig17(o Options) (*Table, error) {
	t := &Table{ID: "fig17", Title: "energy decomposition (J, plus total normalized to Hetero)"}
	m := newMatrix(o)
	comps := []string{
		energy.CompHost, energy.CompHostDRAM, energy.CompPCIe, energy.CompSSD,
		energy.CompCore, energy.CompCache, energy.CompDRAM, energy.CompFlash,
		energy.CompPRAM, energy.CompFirmware,
	}
	baseTotals := map[string]float64{}
	for _, k := range o.kernels() {
		res, err := m.get(system.Hetero, k)
		if err != nil {
			return nil, err
		}
		baseTotals[k.Name] = res.Energy.Total()
	}
	var dlNorm, hdNorm []float64
	for _, kind := range system.Fig15Kinds() {
		row := newRow(kind.String())
		agg := stats.NewBreakdown()
		var norms []float64
		for _, k := range o.kernels() {
			res, err := m.get(kind, k)
			if err != nil {
				return nil, err
			}
			agg.AddAll(res.Energy.Breakdown())
			norms = append(norms, res.Energy.Total()/baseTotals[k.Name])
		}
		for _, c := range comps {
			row.set(c, agg.Get(c))
		}
		row.set("norm-total", stats.Mean(norms))
		t.Rows = append(t.Rows, row)
		if kind == system.DRAMLess {
			dlNorm = norms
		}
		if kind == system.Heterodirect {
			hdNorm = norms
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"DRAM-less energy = %.0f%% of Hetero, %.0f%% of Heterodirect (paper: 19%% of the advanced accelerated systems)",
		stats.Mean(dlNorm)*100, stats.Mean(dlNorm)/stats.Mean(hdNorm)*100))
	return t, nil
}

// timeSeriesKinds are the systems shown in the Figure 18-21 time series.
func timeSeriesKinds() []system.Kind {
	return []system.Kind{
		system.IntegratedSLC, system.IntegratedMLC, system.IntegratedTLC,
		system.PageBuffer, system.NORIntf, system.DRAMLess,
	}
}

// figIPC builds an IPC time-series table for one workload.
func figIPC(id, kname string, o Options) (*Table, error) {
	t := &Table{ID: id, Title: "total IPC over time, " + kname}
	k := workload.MustByName(kname)
	for _, kind := range timeSeriesKinds() {
		cfg := o.config(kind)
		cfg.SampleInterval = 50 * sim.Microsecond
		res, err := system.Run(cfg, k)
		if err != nil {
			return nil, err
		}
		row := newRow(kind.String())
		// Mean IPC, sustained (p50) and the stall fraction (zero-IPC buckets).
		cycles := cfg.SampleInterval.Seconds() * 1e9
		vals := res.Report.IPC.Values()
		ipc := make([]float64, len(vals))
		zero := 0
		for i, v := range vals {
			ipc[i] = v / cycles
			if ipc[i] < 0.05 {
				zero++
			}
		}
		row.set("mean-ipc", stats.Mean(ipc))
		row.set("p50-ipc", stats.Percentile(ipc, 0.5))
		row.set("idle-frac", float64(zero)/float64(max(1, len(ipc))))
		row.set("samples", float64(len(ipc)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: page-granule systems stall on storage (zero-IPC periods); DRAM-less sustains ~2 total IPC")
	return t, nil
}

// Fig18 reproduces the read-intensive IPC time series (gemver).
func Fig18(o Options) (*Table, error) { return figIPC("fig18", "gemver", o) }

// Fig19 reproduces the write-intensive IPC time series (doitg).
func Fig19(o Options) (*Table, error) { return figIPC("fig19", "doitg", o) }

// figPower builds the power / cumulative-energy capture for one workload
// over a small (16 KiB-class) footprint, as in Figures 20/21.
func figPower(id, kname string, o Options) (*Table, error) {
	t := &Table{ID: id, Title: "core power and total energy, " + kname + " (16KB-class capture)"}
	k := workload.MustByName(kname)
	for _, kind := range timeSeriesKinds() {
		cfg := o.config(kind)
		cfg.Scale = 16 << 10 // the paper captures the first 16 KB of processing
		cfg.SampleInterval = 10 * sim.Microsecond
		res, err := system.Run(cfg, k)
		if err != nil {
			return nil, err
		}
		row := newRow(kind.String())
		ps := res.Energy.PowerSeries()
		row.set("mean-power-w", stats.Mean(ps))
		row.set("peak-power-w", stats.Percentile(ps, 1))
		row.set("total-energy-uj", res.Energy.Total()*1e6)
		row.set("completion-us", res.Total.Micros())
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: NOR-intf draws the least power but burns more energy via longer runtime; DRAM-less completes 50-88% sooner")
	return t, nil
}

// Fig20 reproduces the read-intensive power/energy capture (gemver).
func Fig20(o Options) (*Table, error) { return figPower("fig20", "gemver", o) }

// Fig21 reproduces the write-intensive power/energy capture (doitg).
func Fig21(o Options) (*Table, error) { return figPower("fig21", "doitg", o) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
