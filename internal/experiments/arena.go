package experiments

import (
	"fmt"
	"math"
	"sort"

	"dramless/internal/memctrl"
	"dramless/internal/obs"
	"dramless/internal/system"
	"dramless/internal/workload"
)

// BaselinePolicy is the arena's ranking reference: the paper's Final
// scheduler (interleaving + selective erasing, the DRAM-less default).
const BaselinePolicy = "final"

// arenaCell is one tournament simulation: a policy on an organization
// running one kernel, with a private Observer so the cell's latency
// histograms can be read back independently of every other cell.
type arenaCell struct {
	policy string
	kind   system.Kind
	kern   workload.Kernel
	cfg    system.Config
	ob     *obs.Observer
	res    *system.Result
}

// readHist merges the cell's four demand-read latency instruments
// (full / RAB-hit / RDB-hit / paused) into dst: the policy's complete
// read latency distribution.
func (c *arenaCell) readHist(dst *obs.Histogram) {
	hs := c.ob.Histograms()
	dst.Merge(hs.Lookup(obs.HistMemReadFull))
	dst.Merge(hs.Lookup(obs.HistMemReadRABHit))
	dst.Merge(hs.Lookup(obs.HistMemReadRDBHit))
	dst.Merge(hs.Lookup(obs.HistMemReadPaused))
}

// Arena runs the scheduler tournament: every requested policy x every
// kernel on the requested organizations, rendered as one ranked table.
//
// Per-kernel columns are data-processing throughput normalized to the
// BaselinePolicy ("final") cell of the same organization and kernel
// (>1 is faster than the paper's scheduler). Rows are ranked by the
// geometric mean of those ratios; the mean / p99 / Δp99 columns come
// from the merged demand-read latency histograms of the row's cells.
//
// policies nil selects every registered policy (memctrl.PolicyNames
// order); kinds nil selects the PRAM-backed DRAM-less organization.
// The baseline policy always runs (it is the normalization reference)
// and is appended to the row set if absent from the request. Policy
// capabilities only reach the controller on PRAM-backed kinds, so
// non-PRAM organizations show no spread across rows.
//
// Every cell runs through the engine's shared result cache under its
// worker pool; assembly order is fixed, so the table is byte-identical
// at any parallelism.
func (e *Engine) Arena(policies []string, kinds []system.Kind) (*Table, error) {
	if len(policies) == 0 {
		policies = memctrl.PolicyNames()
	}
	canon := make([]string, 0, len(policies)+1)
	hasBase := false
	for _, name := range policies {
		p, err := memctrl.PolicyByName(name)
		if err != nil {
			return nil, err
		}
		canon = append(canon, p.Name())
		if p.Name() == BaselinePolicy {
			hasBase = true
		}
	}
	if !hasBase {
		canon = append(canon, BaselinePolicy)
	}
	if len(kinds) == 0 {
		kinds = []system.Kind{system.DRAMLess}
	}
	kernels := e.o.kernels()

	// Build every cell up front and enqueue it on the worker pool; the
	// serial assembly below then finds its cells finished or in flight.
	// Each cell gets a private Observer: distinct Obs pointers make
	// distinct cache keys (arena cells are unique to this sweep), while
	// PrefixOf normalizes Obs away, so cells still share populate/load
	// checkpoints per (kind, policy, footprint).
	cells := make([]*arenaCell, 0, len(kinds)*len(canon)*len(kernels))
	for _, kind := range kinds {
		for _, pol := range canon {
			for _, k := range kernels {
				cfg := e.o.config(kind)
				cfg.Policy = pol
				ob := obs.New()
				cfg.Obs = ob
				cells = append(cells, &arenaCell{policy: pol, kind: kind, kern: k, cfg: cfg, ob: ob})
				e.prefetchCfg(cfg, k)
			}
		}
	}
	byCell := make(map[[3]string]*arenaCell, len(cells))
	for _, c := range cells {
		res, err := e.getCfg(c.cfg, c.kern)
		if err != nil {
			return nil, err
		}
		c.res = res
		byCell[[3]string{c.kind.String(), c.policy, c.kern.Name}] = c
	}

	// Scratch observer: its HistogramSet mints the merged per-row
	// distributions without exposing the unexported histogram
	// constructor. Memoized — Get returns the same named histogram, so
	// a second merge pass would double-count.
	scratch := obs.New().Histograms()
	merged := map[[2]string]*obs.Histogram{}
	mergedOf := func(kind system.Kind, pol string) *obs.Histogram {
		key := [2]string{kind.String(), pol}
		if h, ok := merged[key]; ok {
			return h
		}
		h := scratch.Get(fmt.Sprintf("arena.%s.%s", kind, pol))
		for _, k := range kernels {
			byCell[[3]string{kind.String(), pol, k.Name}].readHist(h)
		}
		merged[key] = h
		return h
	}

	type rowData struct {
		label   string
		kind    system.Kind
		policy  string
		geomean float64
		row     *Row
	}
	var rows []*rowData
	type bestCell struct {
		policy, kernel string
		kind           system.Kind
		gain           float64 // throughput ratio vs final
	}
	var best *bestCell
	legacy := map[string]bool{"bare-metal": true, "interleaving": true, "selective-erasing": true, BaselinePolicy: true}

	for _, kind := range kinds {
		baseP99 := mergedOf(kind, BaselinePolicy).Percentile(99)
		for _, pol := range canon {
			label := pol
			if len(kinds) > 1 {
				label = fmt.Sprintf("%s @ %s", pol, kind)
			}
			r := newRow(label)
			logSum, n := 0.0, 0
			for _, k := range kernels {
				cell := byCell[[3]string{kind.String(), pol, k.Name}]
				base := byCell[[3]string{kind.String(), BaselinePolicy, k.Name}]
				norm := cell.res.BandwidthMBps() / base.res.BandwidthMBps()
				r.set(k.Name, norm)
				logSum += math.Log(norm)
				n++
				if !legacy[pol] && (best == nil || norm > best.gain) {
					best = &bestCell{policy: pol, kernel: k.Name, kind: kind, gain: norm}
				}
			}
			gm := math.Exp(logSum / float64(n))
			dist := mergedOf(kind, pol)
			r.set("geomean-x", gm)
			r.set("mean-rd-ns", dist.Mean()/1e3)
			r.set("p99-rd-ns", float64(dist.Percentile(99))/1e3)
			r.set("d-p99-ns", float64(dist.Percentile(99)-baseP99)/1e3)
			rows = append(rows, &rowData{label: label, kind: kind, policy: pol, geomean: gm, row: r})
		}
	}

	// Rank: best geometric-mean speedup first, name breaking ties — a
	// deterministic order at any parallelism.
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].geomean != rows[j].geomean {
			return rows[i].geomean > rows[j].geomean
		}
		return rows[i].label < rows[j].label
	})

	tab := &Table{
		ID:    "arena",
		Title: "scheduler tournament: policy x kernel, ranked vs the final scheduler",
	}
	for _, rd := range rows {
		tab.Rows = append(tab.Rows, rd.row)
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf(
		"throughput per kernel normalized to the %q policy on the same organization; ranked by geomean", BaselinePolicy))
	tab.Notes = append(tab.Notes,
		"mean/p99 from the merged demand-read latency histograms; d-p99 vs the same-organization baseline")
	if best != nil {
		verdict := "no new policy beat the baseline on throughput"
		if best.gain > 1 {
			verdict = fmt.Sprintf("best new-policy cell: %s on %s @ %s, %+.2f%% throughput vs %q",
				best.policy, best.kernel, best.kind, (best.gain-1)*100, BaselinePolicy)
		}
		tab.Notes = append(tab.Notes, verdict)
	}
	return tab, nil
}
