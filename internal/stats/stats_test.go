package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dramless/internal/sim"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("sd = %v, want 2", got)
	}
}

func TestSeriesAccumulate(t *testing.T) {
	ts := NewSeries(10 * sim.Nanosecond)
	ts.Accumulate(5*sim.Nanosecond, 1)
	ts.Accumulate(9*sim.Nanosecond, 2)
	ts.Accumulate(10*sim.Nanosecond, 4)
	if ts.Len() != 2 {
		t.Fatalf("len = %d, want 2", ts.Len())
	}
	if ts.At(0) != 3 || ts.At(1) != 4 {
		t.Fatalf("buckets = %v %v, want 3 4", ts.At(0), ts.At(1))
	}
	if ts.Total() != 7 {
		t.Fatalf("total = %v, want 7", ts.Total())
	}
}

func TestSeriesSpread(t *testing.T) {
	ts := NewSeries(10 * sim.Nanosecond)
	// 30 units over [5ns, 35ns): bucket0 gets 5/30, bucket1 10/30, ...
	ts.Spread(5*sim.Nanosecond, 35*sim.Nanosecond, 30)
	want := []float64{5, 10, 10, 5}
	for i, w := range want {
		if math.Abs(ts.At(i)-w) > 1e-9 {
			t.Fatalf("bucket %d = %v, want %v", i, ts.At(i), w)
		}
	}
	if math.Abs(ts.Total()-30) > 1e-9 {
		t.Fatalf("total = %v, want 30", ts.Total())
	}
}

func TestSeriesCumulativeAndRate(t *testing.T) {
	ts := NewSeries(sim.Microsecond)
	ts.Accumulate(0, 2) // 2 J in 1 us -> 2 MW (rate check)
	ts.Accumulate(sim.Microsecond, 3)
	cum := ts.Cumulative()
	if cum[0] != 2 || cum[1] != 5 {
		t.Fatalf("cumulative = %v", cum)
	}
	rate := ts.Rate()
	if math.Abs(rate[0]-2e6) > 1 {
		t.Fatalf("rate[0] = %v, want 2e6", rate[0])
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("compute", 3)
	b.Add("storage", 6)
	b.Add("compute", 1)
	if got := b.Get("compute"); got != 4 {
		t.Fatalf("compute = %v, want 4", got)
	}
	if got := b.Total(); got != 10 {
		t.Fatalf("total = %v, want 10", got)
	}
	if got := b.Share("storage"); got != 0.6 {
		t.Fatalf("share = %v, want 0.6", got)
	}
	keys := b.Keys()
	if len(keys) != 2 || keys[0] != "compute" || keys[1] != "storage" {
		t.Fatalf("keys = %v", keys)
	}
	b2 := NewBreakdown()
	b2.Add("pcie", 5)
	b.AddAll(b2)
	if b.Total() != 15 {
		t.Fatalf("after merge total = %v", b.Total())
	}
	b.Scale(2)
	if b.Get("pcie") != 10 {
		t.Fatalf("after scale pcie = %v", b.Get("pcie"))
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("geomean(nil) = %v", got)
	}
	// Non-positive values are skipped, not poisonous.
	if got := GeoMean([]float64{0, 4, 4}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean with zero = %v, want 4", got)
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{9, 1, 5, 3, 7}
	if got := Percentile(vs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(vs, 1); got != 9 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(vs, 0.5); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	// Input must not be mutated.
	if vs[0] != 9 {
		t.Fatal("Percentile sorted its input in place")
	}
}

// Property: Spread conserves mass for arbitrary windows.
func TestSpreadConservesMassProperty(t *testing.T) {
	f := func(start uint16, length uint16, v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		ts := NewSeries(7 * sim.Nanosecond)
		t0 := sim.Time(start)
		t1 := t0 + sim.Time(length)
		ts.Spread(t0, t1, v)
		return math.Abs(ts.Total()-v) <= 1e-9*math.Max(1, math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summary mean always lies within [min, max].
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(vs []float64) bool {
		var s Summary
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // avoid float overflow in sum-of-squares
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
