// Package stats provides lightweight metric containers used by the
// dramless models: counters, scalar summaries, time-series samplers for
// the paper's IPC/power plots, and small formatting helpers for the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dramless/internal/sim"
)

// Summary accumulates scalar observations and reports the usual moments.
type Summary struct {
	n        int64
	sum, sq  float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the average (0 with no observations).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (0 with no observations).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with no observations).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g", s.n, s.Mean(), s.min, s.max, s.StdDev())
}

// Series is a fixed-interval time series used for the paper's IPC and
// power plots (Figures 18-21). Values land in the bucket covering their
// timestamp; buckets grow on demand.
type Series struct {
	Interval sim.Duration
	buckets  []float64
	counts   []int64
}

// NewSeries returns a series with the given sampling interval.
func NewSeries(interval sim.Duration) *Series {
	if interval <= 0 {
		panic("stats: series interval must be positive")
	}
	return &Series{Interval: interval}
}

func (ts *Series) grow(idx int) {
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, 0)
		ts.counts = append(ts.counts, 0)
	}
}

// Accumulate adds v into the bucket containing t (used for additive
// quantities such as instructions retired or joules).
func (ts *Series) Accumulate(t sim.Time, v float64) {
	if t < 0 {
		return
	}
	idx := int(t / ts.Interval)
	ts.grow(idx)
	ts.buckets[idx] += v
	ts.counts[idx]++
}

// Spread distributes v uniformly over [t0, t1) across buckets, which is
// the right treatment for energy of an operation spanning many intervals.
func (ts *Series) Spread(t0, t1 sim.Time, v float64) {
	if t1 <= t0 || v == 0 {
		if t1 == t0 {
			ts.Accumulate(t0, v)
		}
		return
	}
	total := float64(t1 - t0)
	first := int(t0 / ts.Interval)
	last := int((t1 - 1) / ts.Interval)
	ts.grow(last)
	for i := first; i <= last; i++ {
		bs := sim.Time(i) * ts.Interval
		be := bs + ts.Interval
		lo, hi := sim.Max(bs, t0), sim.Min(be, t1)
		if hi > lo {
			ts.buckets[i] += v * (float64(hi-lo) / total) // fraction first: v may be near MaxFloat64
			ts.counts[i]++
		}
	}
}

// Len returns the number of buckets.
func (ts *Series) Len() int { return len(ts.buckets) }

// At returns the accumulated value of bucket i.
func (ts *Series) At(i int) float64 { return ts.buckets[i] }

// BucketStart returns the start time of bucket i.
func (ts *Series) BucketStart(i int) sim.Time { return sim.Time(i) * ts.Interval }

// Values returns a copy of the bucket values.
func (ts *Series) Values() []float64 {
	out := make([]float64, len(ts.buckets))
	copy(out, ts.buckets)
	return out
}

// Rate returns bucket values divided by the interval in seconds
// (e.g. joules per bucket -> watts).
func (ts *Series) Rate() []float64 {
	sec := ts.Interval.Seconds()
	out := make([]float64, len(ts.buckets))
	for i, v := range ts.buckets {
		out[i] = v / sec
	}
	return out
}

// Cumulative returns the running sum of bucket values.
func (ts *Series) Cumulative() []float64 {
	out := make([]float64, len(ts.buckets))
	var run float64
	for i, v := range ts.buckets {
		run += v
		out[i] = run
	}
	return out
}

// Total returns the sum over all buckets.
func (ts *Series) Total() float64 {
	var run float64
	for _, v := range ts.buckets {
		run += v
	}
	return run
}

// Mean returns the mean bucket value (0 when empty).
func (ts *Series) Mean() float64 {
	if len(ts.buckets) == 0 {
		return 0
	}
	return ts.Total() / float64(len(ts.buckets))
}

// Breakdown is an ordered map from component name to a scalar, used for
// the execution-time and energy decomposition figures. Insertion order is
// preserved so tables print in a stable, meaningful order.
type Breakdown struct {
	keys []string
	vals map[string]float64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown { return &Breakdown{vals: map[string]float64{}} }

// Add accumulates v into component key.
func (b *Breakdown) Add(key string, v float64) {
	if _, ok := b.vals[key]; !ok {
		b.keys = append(b.keys, key)
	}
	b.vals[key] += v
}

// Get returns the value for key (0 when absent).
func (b *Breakdown) Get(key string) float64 { return b.vals[key] }

// Keys returns the component names in insertion order.
func (b *Breakdown) Keys() []string { return append([]string(nil), b.keys...) }

// Total returns the sum over all components. Summation follows
// insertion order, not map order: float addition is not associative, so
// iterating the map would make the low bits of the total vary from run
// to run and break the simulator's determinism guarantee.
func (b *Breakdown) Total() float64 {
	var t float64
	for _, k := range b.keys {
		t += b.vals[k]
	}
	return t
}

// Share returns key's fraction of the total (0 when the total is 0).
func (b *Breakdown) Share(key string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.vals[key] / t
}

// AddAll merges other into b.
func (b *Breakdown) AddAll(other *Breakdown) {
	for _, k := range other.keys {
		b.Add(k, other.vals[k])
	}
}

// Scale multiplies every component by f.
func (b *Breakdown) Scale(f float64) {
	for k := range b.vals {
		b.vals[k] *= f
	}
}

// String formats the breakdown as "a=1 b=2 (total 3)".
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, k := range b.keys {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%.4g", k, b.vals[k])
	}
	fmt.Fprintf(&sb, " (total %.4g)", b.Total())
	return sb.String()
}

// GeoMean returns the geometric mean of vs, skipping non-positive values;
// it is the conventional way to average normalized performance across
// workloads.
func GeoMean(vs []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of vs (0 when empty).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Percentile returns the p-quantile (0..1) of vs by nearest-rank on a
// sorted copy. It returns 0 for empty input.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	c := append([]float64(nil), vs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 1 {
		return c[len(c)-1]
	}
	idx := int(math.Ceil(p*float64(len(c)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c[idx]
}
