// Package dramless is a simulation library reproducing "DRAM-less:
// Hardware Acceleration of Data Processing with New Memory" (Zhang et
// al., HPCA 2020): a multi-core accelerator whose internal DRAM is
// replaced by a hardware-automated multi-partition PRAM subsystem, plus
// every baseline system the paper compares against.
//
// The public API has three layers:
//
//   - Device level: NewPRAM builds the hardware-automated PRAM subsystem
//     (FPGA controller, LPDDR2-NVM three-phase addressing, interleaving
//     and selective-erasing schedulers) as a byte-addressable Memory.
//   - Accelerator level: NewAccelerator assembles the 8-PE platform over
//     any Memory and executes kernels near the data; OffloadImage drives
//     the paper's packData/pushData/unpackData programming model.
//   - System level: RunSystem executes a workload end to end on any of
//     the Table I organizations (Hetero, Heterodirect, Integrated-*,
//     PAGE-buffer, NOR-intf, DRAM-less, ...), returning time and energy
//     decompositions; Experiment regenerates any of the paper's tables
//     and figures.
//
// All simulation is deterministic: identical inputs produce identical
// schedules, timings and energies.
package dramless

import (
	"fmt"
	"io"
	"sync"

	"dramless/internal/accel"
	"dramless/internal/experiments"
	"dramless/internal/kernel"
	"dramless/internal/mem"
	"dramless/internal/memctrl"
	"dramless/internal/obs"
	"dramless/internal/runner"
	"dramless/internal/sim"
	"dramless/internal/system"
	"dramless/internal/workload"
)

// Time is a simulated instant (picoseconds since simulation start).
type Time = sim.Time

// Duration is a simulated time span.
type Duration = sim.Duration

// Common duration units re-exported for callers.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Memory is a timed, functional byte-addressable device: reads return
// previously written bytes and every operation reports its simulated
// completion time.
type Memory = mem.Device

// Scheduler selects the PRAM controller policy (Figure 13).
type Scheduler = memctrl.Scheduler

// Controller scheduling policies.
const (
	BareMetal        = memctrl.Noop
	Interleaving     = memctrl.Interleave
	SelectiveErasing = memctrl.SelErase
	Final            = memctrl.Final
)

// PRAM is the hardware-automated PRAM subsystem: two LPDDR2-NVM channels
// of sixteen multi-partition PRAM packages behind the FPGA controller.
type PRAM = memctrl.Subsystem

// Observability ------------------------------------------------------

// Observer collects hardware counters - and, with tracing enabled,
// a simulated-time span timeline - from every layer it is attached to
// via WithObserver. A nil *Observer is the disabled state: every
// instrumented path degrades to one nil check, and all PR 2
// zero-allocation pins stay at zero.
//
// An Observer accumulates across the runs it observes but is not safe
// for concurrent use; attach it to runs that execute one at a time.
type Observer = obs.Observer

// ObserverOption customizes NewObserver.
type ObserverOption = obs.Option

// Counters is an ordered registry of named counters and gauges
// ("memctrl.rdb_hits", "accel.pe0.busy_ps", ...). SystemResult.Counters
// carries one per run; identical runs produce identical registries.
type Counters = obs.Counters

// Tracer records simulated-time spans and exports them as Chrome
// chrome://tracing JSON (Tracer.WriteChromeJSON / Observer.WriteTrace).
type Tracer = obs.Tracer

// TraceEvent is one completed simulated-time span.
type TraceEvent = obs.TraceEvent

// Histogram is one latency distribution: int64 picosecond samples in
// fixed log-linear buckets (see DESIGN.md §11). Obtain handles from
// Observer.Histograms(); a nil *Histogram records as a no-op.
type Histogram = obs.Histogram

// HistogramSet is an Observer's ordered registry of latency histograms;
// it exports deterministically as JSON or CSV.
type HistogramSet = obs.HistogramSet

// HistogramBucket is one non-empty bucket of an exported Histogram.
type HistogramBucket = obs.Bucket

// Series is one per-simulated-time-window accumulation (bytes moved, PE
// busy picoseconds, ... per window). Obtain handles from
// Observer.Series().
type Series = obs.Series

// SeriesSet is an Observer's ordered registry of time series.
type SeriesSet = obs.SeriesSet

// Blame is a hierarchical exact-integer simulated-time account
// (phase/component/cause). SystemResult.Blame carries one per run; for
// every phase its accounts sum to the phase wall to the picosecond.
type Blame = obs.Blame

// BlameEntry is one blame account: slash-separated name + picoseconds.
type BlameEntry = obs.BlameEntry

// BlameShare is one ranked blame account with its share of the ranked
// scope in parts per thousand.
type BlameShare = obs.BlameShare

// PathSeg is one segment of a Tracer.CriticalPath extraction: the
// latest-started span covering a stretch of simulated time, or an idle
// gap (empty Proc). Segments tile the queried window exactly.
type PathSeg = obs.PathSeg

// FlowEdge is one causal handoff recorded by a traced run.
type FlowEdge = obs.FlowEdge

// NewObserver builds an Observer; pass WithTracing to record timelines.
func NewObserver(opts ...ObserverOption) *Observer { return obs.New(opts...) }

// WithTracing enables span recording on a NewObserver.
func WithTracing() ObserverOption { return obs.WithTracing() }

// WithSeriesWindow sets the simulated-time window the observer's series
// accumulate over (default 10 µs). Must be positive.
func WithSeriesWindow(window Duration) ObserverOption { return obs.WithSeriesWindow(window) }

// ReadHistograms parses a HistogramSet.WriteJSON export (the `dramless
// run -hist` output) back into a set for reporting and comparison.
func ReadHistograms(r io.Reader) (*HistogramSet, error) { return obs.ReadHistogramsJSON(r) }

// ReadBlame parses a Blame.WriteJSON export (the `dramless blame
// -json` output) back into an account set for reporting and diffing.
func ReadBlame(r io.Reader) (*Blame, error) { return obs.ReadBlameJSON(r) }

// Construction options ------------------------------------------------
//
// All three build layers configure the same way: functional options with
// one interface per layer (PRAMOption, AcceleratorOption, SystemOption).
// Options meaningful at every layer - WithObserver today - implement all
// three interfaces (CommonOption), so one value threads the whole stack:
//
//	o := dramless.NewObserver(dramless.WithTracing())
//	cfg := dramless.NewSystemConfig(dramless.DRAMLess, dramless.WithObserver(o))

// PRAMOption customizes NewPRAM.
type PRAMOption interface{ applyPRAM(*memctrl.Config) }

// AcceleratorOption customizes NewAccelerator.
type AcceleratorOption interface{ applyAccel(*accel.Config) }

// SystemOption customizes NewSystemConfig.
type SystemOption interface{ applySystem(*system.Config) }

// CommonOption is an option valid at every construction layer.
type CommonOption interface {
	PRAMOption
	AcceleratorOption
	SystemOption
}

// pramOptionFunc adapts a function to PRAMOption (the pre-redesign
// option shape; every With* PRAM option wraps one).
type pramOptionFunc func(*memctrl.Config)

func (f pramOptionFunc) applyPRAM(c *memctrl.Config) { f(c) }

// observerOption is WithObserver's implementation: the one option that
// applies at every layer.
type observerOption struct{ o *obs.Observer }

func (w observerOption) applyPRAM(c *memctrl.Config) { c.Obs = w.o }
func (w observerOption) applyAccel(c *accel.Config)  { c.Obs = w.o }
func (w observerOption) applySystem(c *system.Config) {
	c.Obs = w.o
}

// WithObserver attaches an Observer to the layer under construction: on
// a PRAM it instruments the controller's channels, on an accelerator the
// PEs and PSC, and on a SystemConfig the whole build (the run's counters
// merge into the observer and every subsystem records trace spans).
func WithObserver(o *Observer) CommonOption { return observerOption{o: o} }

// WithScheduler selects the controller scheduling policy (default Final).
//
// Deprecated: the enum reaches only the four legacy schedulers; use
// WithPolicy with a registry policy (SchedulerPolicies lists them).
func WithScheduler(s Scheduler) PRAMOption {
	return pramOptionFunc(func(c *memctrl.Config) {
		c.Scheduler = s
		c.Policy = nil
	})
}

// SchedulerPolicy is a pluggable controller scheduling policy: a named
// capability vector the channel machinery resolves at construction
// (memctrl.Policy). The four legacy Scheduler values map onto the
// canonical registered policies; the registry also carries schedulers
// the enum cannot name ("palp", "pause-aware", "wear-aware").
type SchedulerPolicy = memctrl.Policy

// SchedulerPolicies returns every registered scheduling policy in
// registration order.
func SchedulerPolicies() []SchedulerPolicy { return memctrl.Policies() }

// SchedulerPolicyNames returns the registered policy names in
// registration order.
func SchedulerPolicyNames() []string { return memctrl.PolicyNames() }

// PolicyByName resolves a scheduling policy by registry name,
// case-insensitively; legacy enum display names ("Bare-metal", ...)
// resolve to their canonical policies. Unknown names error with the
// registered list.
func PolicyByName(name string) (SchedulerPolicy, error) { return memctrl.PolicyByName(name) }

// WithPolicy selects the controller scheduling policy from the registry
// (default Final). It supersedes any WithScheduler option.
func WithPolicy(p SchedulerPolicy) PRAMOption {
	return pramOptionFunc(func(c *memctrl.Config) { c.Policy = p })
}

// WithCapacityRows sets rows per module (capacity = rows x 32 B x 32
// modules, minus the overlay windows). Must be a power of two.
func WithCapacityRows(rows uint64) PRAMOption {
	return pramOptionFunc(func(c *memctrl.Config) { c.Geometry.RowsPerModule = rows })
}

// WithoutPhaseSkipping disables RAB/RDB-aware phase skipping (ablation).
func WithoutPhaseSkipping() PRAMOption {
	return pramOptionFunc(func(c *memctrl.Config) { c.PhaseSkipping = false })
}

// WithoutPrefetch disables sequential RDB prefetch (ablation).
func WithoutPrefetch() PRAMOption {
	return pramOptionFunc(func(c *memctrl.Config) { c.Prefetch = false })
}

// WithWearLeveling enables start-gap wear leveling in the controller
// (Section VII: "DRAM-less can integrate traditional wear levellers in
// our PRAM controller, such as start-gap"). Every gapWritePeriod row
// programs per region move that region's gap one row; regionRows sets the
// leveling region size (capacity overhead 1/regionRows). Pass 0,0 for the
// conventional psi=100, 512-row-region configuration.
func WithWearLeveling(gapWritePeriod, regionRows int) PRAMOption {
	return pramOptionFunc(func(c *memctrl.Config) {
		w := memctrl.DefaultWear()
		if gapWritePeriod > 0 {
			w.GapWritePeriod = gapWritePeriod
		}
		if regionRows > 0 {
			w.RegionRows = regionRows
		}
		c.Wear = w
	})
}

// WearStats is the controller's endurance picture under wear leveling.
type WearStats = memctrl.WearStats

// WithWritePausing enables device-level write pause/resume: reads preempt
// in-flight programs at the cost of stretching them - the Related Work
// alternative the paper compares its interleaving against.
func WithWritePausing() PRAMOption {
	return pramOptionFunc(func(c *memctrl.Config) { c.WritePausing = true })
}

// NewPRAM builds a booted DRAM-less PRAM subsystem. The returned Memory
// is ready for traffic at the returned time.
func NewPRAM(opts ...PRAMOption) (*PRAM, Time, error) {
	cfg := memctrl.DefaultConfig(memctrl.Final)
	cfg.Geometry.RowsPerModule = 1 << 18 // 256 MiB usable by default
	for _, o := range opts {
		o.applyPRAM(&cfg)
	}
	sub, err := memctrl.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	ready, err := sub.Boot(0)
	if err != nil {
		return nil, 0, err
	}
	return sub, ready, nil
}

// Accelerator is the 8-PE near-data processing platform (Figure 6).
type Accelerator = accel.Accelerator

// Report is a kernel execution report.
type Report = accel.Report

// NewAccelerator assembles the paper's accelerator over any Memory
// backend (the DRAM-less composition uses a *PRAM). Options customize
// the build; pre-redesign zero-option call sites are unchanged.
func NewAccelerator(backend Memory, opts ...AcceleratorOption) (*Accelerator, error) {
	cfg := accel.Default()
	for _, o := range opts {
		o.applyAccel(&cfg)
	}
	return accel.New(cfg, backend)
}

// Job is one kernel execution request for the server's multi-kernel
// scheduler (Section IV); run batches with Accelerator.RunJobs.
type Job = accel.Job

// JobResult pairs a scheduled job with its execution report.
type JobResult = accel.JobResult

// Workload is one Polybench kernel model.
type Workload = workload.Kernel

// WorkloadParams scales and places a workload.
type WorkloadParams = workload.Params

// Workloads returns the 16-kernel evaluation suite (Table III).
func Workloads() []Workload { return workload.Suite() }

// WorkloadByName returns the named kernel.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// KernelImage is a packed multi-app kernel image (Figure 10).
type KernelImage = kernel.Image

// KernelApp is one application inside an image.
type KernelApp = kernel.App

// PackImage serializes an image (the host-side packData interface).
func PackImage(img *KernelImage) ([]byte, error) { return kernel.Pack(img) }

// UnpackImage parses a packed image (the server-side unpackData).
func UnpackImage(data []byte) (*KernelImage, error) { return kernel.Unpack(data) }

// OffloadImage performs the Figure 9b flow: ship the packed image into
// the device at imageAddr, unpack it server-side and load the code
// segments to their boot addresses. push delivers host bytes into device
// memory (e.g. a PCIe DMA); it may be nil to use plain device writes.
func OffloadImage(at Time, img *KernelImage, imageAddr uint64, dev Memory,
	push func(at Time, dst uint64, data []byte) (Time, error)) (*KernelImage, Time, error) {
	p := kernel.Pusher(push)
	if push == nil {
		p = dev.Write
	}
	return kernel.Offload(at, img, imageAddr, p, dev)
}

// SystemKind identifies one Table I organization.
type SystemKind = system.Kind

// The evaluated system organizations.
const (
	Hetero           = system.Hetero
	Heterodirect     = system.Heterodirect
	HeteroPRAM       = system.HeteroPRAM
	HeterodirectPRAM = system.HeterodirectPRAM
	NORIntf          = system.NORIntf
	IntegratedSLC    = system.IntegratedSLC
	IntegratedMLC    = system.IntegratedMLC
	IntegratedTLC    = system.IntegratedTLC
	PageBuffer       = system.PageBuffer
	DRAMLess         = system.DRAMLess
	DRAMLessFirmware = system.DRAMLessFirmware
	Ideal            = system.Ideal
)

// SystemKinds returns every organization; Figure15Kinds the ten compared
// in the headline figure.
func SystemKinds() []SystemKind   { return system.Kinds() }
func Figure15Kinds() []SystemKind { return system.Fig15Kinds() }

// SystemConfig parametrizes a full-system run.
type SystemConfig = system.Config

// SystemResult is an end-to-end run outcome with time and energy
// decompositions.
type SystemResult = system.Result

// NewSystemConfig returns a runnable configuration of the given kind.
// Options customize it at construction - WithObserver(o) attaches the
// observability layer to the whole build; pre-redesign zero-option call
// sites are unchanged. The returned value stays a plain struct whose
// fields remain settable afterwards.
func NewSystemConfig(kind SystemKind, opts ...SystemOption) SystemConfig {
	cfg := system.DefaultConfig(kind)
	for _, o := range opts {
		o.applySystem(&cfg)
	}
	return cfg
}

// RunSystem executes the workload on the configured system end to end:
// input staging, kernel offload, near-data execution, result persistence.
func RunSystem(cfg SystemConfig, w Workload) (*SystemResult, error) {
	return system.Run(cfg, w)
}

// ExperimentTable is a printable experiment result.
type ExperimentTable = experiments.Table

// ExperimentOptions scales the experiment harness. Parallelism bounds
// the run engine's worker pool (0 = GOMAXPROCS, 1 = serial) and Lanes
// the deterministic lane parallelism inside each simulation (0 = share
// the remaining cores with the pool, -1 = legacy serial engine);
// rendered tables are byte-identical at any setting of either.
type ExperimentOptions = experiments.Options

// ExperimentEngine is the parallel experiment run engine: one shared,
// deduplicating simulation cache over a bounded worker pool. Every
// distinct (system configuration, kernel) simulation executes exactly
// once per engine no matter how many experiments need it; distinct
// simulations run on up to ExperimentOptions.Parallelism goroutines,
// while each simulation stays single-goroutine and deterministic.
type ExperimentEngine = experiments.Engine

// ExperimentRunStats is the engine's cache and pool accounting
// (simulations run, cache hits, coalesced requests, worker bound).
type ExperimentRunStats = runner.Stats

// ExperimentCellTiming is the host wall-clock accounting of one
// simulation cell, as returned by ExperimentEngine.SlowestCells.
type ExperimentCellTiming = experiments.CellTiming

// NewExperimentEngine builds a run engine. Experiments regenerated
// through the same engine (Table, Tables) share its result cache.
func NewExperimentEngine(o ExperimentOptions) *ExperimentEngine {
	return experiments.NewEngine(o)
}

// defaultEngines shares one engine per distinct ExperimentOptions among
// the deprecated free functions, so repeated Experiment calls in one
// process hit the engine's simulation cache instead of re-simulating.
// Options holds a slice (Kernels) and so is not comparable; the map
// keys on a canonical rendering instead.
var defaultEngines struct {
	sync.Mutex
	m map[string]*ExperimentEngine
}

// defaultEngine returns the process-wide engine for o, building it on
// first use.
func defaultEngine(o ExperimentOptions) *ExperimentEngine {
	key := fmt.Sprintf("%d|%q|%d|%d|%q", o.Scale, o.Kernels, o.Parallelism, o.Lanes, o.Policy)
	defaultEngines.Lock()
	defer defaultEngines.Unlock()
	if defaultEngines.m == nil {
		defaultEngines.m = make(map[string]*ExperimentEngine)
	}
	eng, ok := defaultEngines.m[key]
	if !ok {
		eng = experiments.NewEngine(o)
		defaultEngines.m[key] = eng
	}
	return eng
}

// Experiments regenerates the identified tables and figures - all of
// them, in paper order, when ids is empty - through one shared engine,
// so common simulations run once and independent ones run in parallel.
//
// Deprecated: use NewExperimentEngine(o).Tables(ids...). The engine
// form makes the simulation cache's lifetime explicit and lets several
// regenerations share one cache; this function delegates to a
// process-wide engine keyed by o.
func Experiments(o ExperimentOptions, ids ...string) ([]*ExperimentTable, error) {
	return defaultEngine(o).Tables(ids...)
}

// ExperimentIDs lists every reproducible table and figure.
func ExperimentIDs() []string {
	all := experiments.All()
	out := make([]string, 0, len(all))
	for _, e := range all {
		out = append(out, e.ID)
	}
	return out
}

// Experiment regenerates the identified table or figure ("fig15",
// "table2", "sec5-selerase", ...) at the given options.
//
// Deprecated: use NewExperimentEngine(o).Table(id). This function
// delegates to a process-wide engine keyed by o, so repeated ids reuse
// cached simulations, but the engine form makes that sharing explicit.
func Experiment(id string, o ExperimentOptions) (*ExperimentTable, error) {
	known := false
	for _, e := range experiments.All() {
		if e.ID == id {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("dramless: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return defaultEngine(o).Table(id)
}

// FastExperiments returns options sized for quick runs; FullExperiments
// options sized closer to the paper's volumes.
func FastExperiments() ExperimentOptions { return experiments.Fast() }
func FullExperiments() ExperimentOptions { return experiments.Full() }
