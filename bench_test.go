// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section VI), plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark regenerates its experiment
// through the same engine the CLI uses, reports the headline quantities
// as custom metrics, and (with -v via b.Log) records the full rows.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiments run at a reduced footprint (the models' ratios are
// scale-stable); EXPERIMENTS.md records paper-vs-measured per figure.
package dramless_test

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"dramless"
)

// runExperiment drives one experiment per benchmark iteration and reports
// selected row values as metrics. Each iteration builds a fresh engine so
// the measured cost is a real regeneration, not a result-cache hit (the
// deprecated free-function Experiment now shares a process-wide cache).
func runExperiment(b *testing.B, id string, o dramless.ExperimentOptions, metrics func(*dramless.ExperimentTable, *testing.B)) {
	b.Helper()
	var tab *dramless.ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		eng := dramless.NewExperimentEngine(o)
		tab, err = eng.Table(id)
		eng.Release()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	tab.Print(&sb)
	b.Log("\n" + sb.String())
	if metrics != nil {
		metrics(tab, b)
	}
}

// meanOf returns the mean of column key over the table rows.
func meanOf(tab *dramless.ExperimentTable, key string) float64 {
	var s float64
	n := 0
	for _, r := range tab.Rows {
		if v, ok := r.Values[key]; ok {
			s += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// fastOpts keeps the per-iteration cost of the heavyweight experiments
// reasonable while covering the full workload suite.
func fastOpts() dramless.ExperimentOptions { return dramless.FastExperiments() }

// ---- Full suite ----

// BenchmarkAllExperiments regenerates every table and figure through one
// shared engine, serial versus pool-parallel versus lane-parallel - the
// top-level numbers to track across PRs. All variants share the same
// cross-experiment result cache, so the ratios isolate the worker pool
// and the intra-simulation lane executor; sims/cache-hits metrics expose
// the dedup itself, and events/sec is the dispatch throughput of the
// event kernel (total kernel-phase events over host wall-clock), which
// attributes suite speedups to the kernel rather than to caching.
//
// Worker counts are sized from the benchmark's visible GOMAXPROCS: a
// parallel pool wider than the host only adds scheduling overhead (the
// committed BENCH_suite.json once recorded "parallel" at two forced
// workers on a single-CPU runner losing to serial, 1.42s vs 1.28s). On
// such hosts the serial/parallel comparison is a no-op; that degenerate
// case is reported as a metric instead of failed, because the host -
// not the harness - decides the core count. The serial and parallel
// variants pin the legacy engine (Lanes: -1) so their numbers stay
// comparable across PRs; the laned variant gives every core to the lane
// executor instead of the pool.
func BenchmarkAllExperiments(b *testing.B) {
	parallel := runtime.GOMAXPROCS(0)
	for _, bc := range []struct {
		name       string
		par, lanes int
	}{
		{"serial", 1, -1},
		{"parallel", parallel, -1},
		{"laned", 1, parallel},
	} {
		b.Run(bc.name, func(b *testing.B) {
			o := fastOpts()
			o.Parallelism = bc.par
			o.Lanes = bc.lanes
			var st dramless.ExperimentRunStats
			var events int64
			for i := 0; i < b.N; i++ {
				eng := dramless.NewExperimentEngine(o)
				tabs, err := eng.Tables()
				if err != nil {
					b.Fatal(err)
				}
				if len(tabs) != len(dramless.ExperimentIDs()) {
					b.Fatalf("got %d tables, want %d", len(tabs), len(dramless.ExperimentIDs()))
				}
				st = eng.Stats()
				events += eng.Events()
				eng.Release()
			}
			if st.Workers != bc.par {
				b.Fatalf("engine ran with %d workers, requested %d", st.Workers, bc.par)
			}
			if bc.name == "parallel" && runtime.GOMAXPROCS(0) < 2 {
				b.Logf("single-CPU host (GOMAXPROCS=%d): the serial/parallel comparison is a no-op", runtime.GOMAXPROCS(0))
				b.ReportMetric(1, "degenerate")
			}
			b.ReportMetric(float64(st.Runs), "sims")
			b.ReportMetric(float64(st.Hits), "cache-hits")
			b.ReportMetric(float64(st.Workers), "workers")
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)/sec, "events/sec")
			}
		})
	}
}

// BenchmarkLaneEngine pins the lane executor against the legacy serial
// loop on the suite's heaviest cell (DRAM-less x adi, per -slowest): one
// full end-to-end run per iteration at each engine setting, same
// simulated result by the TestLanedMatchesSerial gate. events/sec is the
// kernel-phase dispatch throughput; on multi-core hosts the laned4
// variant is the number that should pull ahead, on a single-CPU runner
// it only measures coordination overhead.
func BenchmarkLaneEngine(b *testing.B) {
	w, err := dramless.WorkloadByName("adi")
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name  string
		lanes int
	}{
		{"legacy", 0},
		{"laned-serial", 1},
		{"laned4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var events int64
			for i := 0; i < b.N; i++ {
				cfg := dramless.NewSystemConfig(dramless.DRAMLess)
				cfg.Scale = 512 << 10
				cfg.Accel.Lanes = bc.lanes
				res, err := dramless.RunSystem(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Report.Events
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)/sec, "events/sec")
			}
		})
	}
}

// ---- Figures ----

func BenchmarkFig01_MotivationIdealVsReal(b *testing.B) {
	runExperiment(b, "fig01", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		b.ReportMetric(meanOf(t, "norm-perf"), "norm-perf")
		b.ReportMetric(meanOf(t, "norm-energy"), "norm-energy-x")
	})
}

func BenchmarkFig07_FirmwareVsOracle(b *testing.B) {
	runExperiment(b, "fig07", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		b.ReportMetric(meanOf(t, "degradation")*100, "degradation-%")
	})
}

func BenchmarkFig12_InterleavingOverlap(b *testing.B) {
	runExperiment(b, "fig12", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		b.ReportMetric(meanOf(t, "hidden-frac")*100, "hidden-%")
	})
}

func BenchmarkFig13_SchedulerBandwidth(b *testing.B) {
	o := fastOpts()
	o.Scale = 1 << 20 // eviction pressure makes the overwrite path visible
	runExperiment(b, "fig13", o, func(t *dramless.ExperimentTable, b *testing.B) {
		b.ReportMetric((meanOf(t, "Interleaving")-1)*100, "interleave-gain-%")
		b.ReportMetric((meanOf(t, "Selective-erasing")-1)*100, "selerase-gain-%")
		b.ReportMetric((meanOf(t, "Final")-1)*100, "final-gain-%")
	})
}

func BenchmarkFig15_Throughput(b *testing.B) {
	runExperiment(b, "fig15", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		b.ReportMetric(meanOf(t, "DRAM-less"), "dramless-vs-hetero-x")
		b.ReportMetric(meanOf(t, "Heterodirect"), "heterodirect-x")
		b.ReportMetric(meanOf(t, "PAGE-buffer"), "pagebuffer-x")
	})
}

func BenchmarkFig16_ExecTimeBreakdown(b *testing.B) {
	runExperiment(b, "fig16", fastOpts(), nil)
}

func BenchmarkFig17_EnergyBreakdown(b *testing.B) {
	runExperiment(b, "fig17", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		for _, r := range t.Rows {
			if r.Label == "DRAM-less" {
				b.ReportMetric(r.Values["norm-total"]*100, "dramless-energy-%of-hetero")
			}
		}
	})
}

func BenchmarkFig18_IPCTimeSeriesGemver(b *testing.B) {
	runExperiment(b, "fig18", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		for _, r := range t.Rows {
			if r.Label == "DRAM-less" {
				b.ReportMetric(r.Values["mean-ipc"], "dramless-ipc")
			}
		}
	})
}

func BenchmarkFig19_IPCTimeSeriesDoitgen(b *testing.B) {
	runExperiment(b, "fig19", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		for _, r := range t.Rows {
			if r.Label == "DRAM-less" {
				b.ReportMetric(r.Values["mean-ipc"], "dramless-ipc")
			}
		}
	})
}

func BenchmarkFig20_PowerEnergyGemver(b *testing.B) {
	runExperiment(b, "fig20", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		for _, r := range t.Rows {
			if r.Label == "DRAM-less" {
				b.ReportMetric(r.Values["total-energy-uj"], "dramless-uJ")
			}
		}
	})
}

func BenchmarkFig21_PowerEnergyDoitgen(b *testing.B) {
	runExperiment(b, "fig21", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		for _, r := range t.Rows {
			if r.Label == "DRAM-less" {
				b.ReportMetric(r.Values["completion-us"], "dramless-us")
			}
		}
	})
}

// ---- Tables ----

func BenchmarkTable1_Catalog(b *testing.B) {
	runExperiment(b, "table1", fastOpts(), nil)
}

func BenchmarkTable2_PRAMParams(b *testing.B) {
	runExperiment(b, "table2", fastOpts(), nil)
}

func BenchmarkTable3_WorkloadCharacteristics(b *testing.B) {
	runExperiment(b, "table3", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		b.ReportMetric(float64(len(t.Rows)), "kernels")
	})
}

// ---- Section V claims ----

func BenchmarkSec5_InterleaveHiding(b *testing.B) {
	runExperiment(b, "sec5-interleave", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		b.ReportMetric(meanOf(t, "hidden-frac")*100, "hidden-%")
	})
}

func BenchmarkSec5_SelectiveErase(b *testing.B) {
	runExperiment(b, "sec5-selerase", fastOpts(), func(t *dramless.ExperimentTable, b *testing.B) {
		b.ReportMetric(meanOf(t, "reduction")*100, "reduction-%")
	})
}

// ---- Microbenchmarks of the subsystem itself ----

func BenchmarkPRAMReadRow(b *testing.B) {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		b.Fatal(err)
	}
	now := ready
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, done, err := pram.Read(now, uint64(i%1024)*32, 32)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
	b.ReportMetric(float64(now-ready)/float64(b.N), "sim-ps/op")
}

func BenchmarkPRAMWriteRow(b *testing.B) {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		b.Fatal(err)
	}
	buf := bytes.Repeat([]byte{0x3C}, 32)
	now := ready
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := pram.Write(now, uint64(i%1024)*32, buf)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
	b.ReportMetric(float64(now-ready)/float64(b.N), "sim-ps/op")
}

// ---- Ablations (DESIGN.md section 5) ----

// ablationRun measures a 64 KiB streaming read under a PRAM option set.
func ablationRun(b *testing.B, opts ...dramless.PRAMOption) float64 {
	b.Helper()
	opts = append(opts, dramless.WithCapacityRows(1<<16))
	pram, ready, err := dramless.NewPRAM(opts...)
	if err != nil {
		b.Fatal(err)
	}
	now := ready
	for off := uint64(0); off < 64<<10; off += 1024 {
		_, done, err := pram.Read(now, off, 1024)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
	return float64(now - ready)
}

func BenchmarkAblation_PhaseSkipping(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationRun(b)
		without = ablationRun(b, dramless.WithoutPhaseSkipping())
	}
	b.ReportMetric((without/with-1)*100, "skip-benefit-%")
}

func BenchmarkAblation_Prefetch(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationRun(b)
		without = ablationRun(b, dramless.WithoutPrefetch())
	}
	b.ReportMetric((without/with-1)*100, "prefetch-benefit-%")
}

func BenchmarkAblation_Scheduler(b *testing.B) {
	results := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, s := range []dramless.Scheduler{dramless.BareMetal, dramless.Interleaving, dramless.Final} {
			results[fmt.Sprint(s)] = ablationRun(b, dramless.WithScheduler(s))
		}
	}
	base := results[fmt.Sprint(dramless.BareMetal)]
	b.ReportMetric((base/results[fmt.Sprint(dramless.Interleaving)]-1)*100, "interleave-benefit-%")
	b.ReportMetric((base/results[fmt.Sprint(dramless.Final)]-1)*100, "final-benefit-%")
}

// BenchmarkAblation_DSPIntrinsics quantifies the paper's kernel
// optimization ("embedding DSP intrinsic ... into the benchmark"):
// end-to-end DRAM-less runtime with and without the intrinsics.
func BenchmarkAblation_DSPIntrinsics(b *testing.B) {
	w, err := dramless.WorkloadByName("fdtdap") // compute-intensive: the intrinsics matter most
	if err != nil {
		b.Fatal(err)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		for _, dsp := range []bool{true, false} {
			cfg := dramless.NewSystemConfig(dramless.DRAMLess)
			cfg.Scale = 128 << 10
			cfg.Accel.PE.DSPIntrinsics = dsp
			res, err := dramless.RunSystem(cfg, w)
			if err != nil {
				b.Fatal(err)
			}
			if dsp {
				with = res.Total.Seconds()
			} else {
				without = res.Total.Seconds()
			}
		}
	}
	b.ReportMetric((without/with-1)*100, "intrinsics-speedup-%")
}

// BenchmarkAblation_StartGapWearLeveling measures the bandwidth cost of
// the Section VII start-gap extension and the wear spreading it buys on a
// write-hot stream.
func BenchmarkAblation_StartGapWearLeveling(b *testing.B) {
	hammer := func(opts ...dramless.PRAMOption) (float64, dramless.WearStats) {
		opts = append(opts, dramless.WithCapacityRows(1<<16))
		pram, ready, err := dramless.NewPRAM(opts...)
		if err != nil {
			b.Fatal(err)
		}
		buf := bytes.Repeat([]byte{0x5A}, 32)
		now := ready
		for i := 0; i < 1000; i++ {
			d, err := pram.Write(now, uint64(i%8)*32, buf)
			if err != nil {
				b.Fatal(err)
			}
			now = d
		}
		return float64(pram.Drain() - ready), pram.WearStats()
	}
	var plainT, levT float64
	var lev dramless.WearStats
	for i := 0; i < b.N; i++ {
		plainT, _ = hammer()
		levT, lev = hammer(dramless.WithWearLeveling(10, 64))
	}
	b.ReportMetric((levT/plainT-1)*100, "leveling-cost-%")
	b.ReportMetric(float64(lev.MaxWear), "max-wear-writes")
	b.ReportMetric(float64(lev.GapMoves), "gap-moves")
}

// BenchmarkAblation_FirmwareCores sweeps the firmware core count of the
// DRAM-less (firmware) configuration to show the serialization bottleneck
// no core count removes (Figure 7's lesson).
func BenchmarkAblation_FirmwareCores(b *testing.B) {
	w, err := dramless.WorkloadByName("gemver")
	if err != nil {
		b.Fatal(err)
	}
	var r1, r8 float64
	for i := 0; i < b.N; i++ {
		for _, cores := range []int{1, 3, 8} {
			cfg := dramless.NewSystemConfig(dramless.DRAMLessFirmware)
			cfg.Scale = 96 << 10
			cfg.Firmware.Cores = cores
			res, err := dramless.RunSystem(cfg, w)
			if err != nil {
				b.Fatal(err)
			}
			switch cores {
			case 1:
				r1 = res.Total.Seconds()
			case 8:
				r8 = res.Total.Seconds()
			}
		}
		cfg := dramless.NewSystemConfig(dramless.DRAMLess)
		cfg.Scale = 96 << 10
		res, err := dramless.RunSystem(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r8/res.Total.Seconds(), "8core-fw-vs-hw-x")
	}
	b.ReportMetric(r1/r8, "1core-vs-8core-x")
}

// BenchmarkAblation_WritePausing compares the Related Work alternative
// (pause in-flight programs for reads) against the paper's bare-metal and
// Final schedulers on a mixed read/write stream: pausing recovers read
// latency but stretches programs, while interleaving + selective erasing
// wins without touching the writes.
func BenchmarkAblation_WritePausing(b *testing.B) {
	mixed := func(opts ...dramless.PRAMOption) (readLatency, programTime float64) {
		opts = append(opts, dramless.WithCapacityRows(1<<16), dramless.WithoutPrefetch())
		pram, ready, err := dramless.NewPRAM(opts...)
		if err != nil {
			b.Fatal(err)
		}
		buf := bytes.Repeat([]byte{0x6B}, 32)
		now := ready
		var reads int
		var readTotal float64
		// Each read targets the most recently written row, so it lands on
		// a partition whose program is still in flight.
		for i := 0; i < 400; i++ {
			if i%4 == 0 {
				d, err := pram.Write(now, uint64(i%32)*32, buf)
				if err != nil {
					b.Fatal(err)
				}
				now = d
				continue
			}
			start := now
			_, d, err := pram.Read(now, uint64(i/4*4%32)*32, 32)
			if err != nil {
				b.Fatal(err)
			}
			readTotal += float64(d - start)
			reads++
			now = d
		}
		return readTotal / float64(reads), float64(pram.ModuleStats().ProgramTime)
	}
	var base, paused, final float64
	var basePT, pausedPT float64
	for i := 0; i < b.N; i++ {
		base, basePT = mixed(dramless.WithScheduler(dramless.BareMetal))
		paused, pausedPT = mixed(dramless.WithScheduler(dramless.BareMetal), dramless.WithWritePausing())
		final, _ = mixed(dramless.WithScheduler(dramless.Final))
	}
	// Pausing preempts: reads get dramatically faster, but every pause
	// re-pays program iterations (cumulative array program time grows).
	b.ReportMetric((base/paused-1)*100, "pause-read-gain-%")
	b.ReportMetric((pausedPT/basePT-1)*100, "pause-program-stretch-%")
	// Interleaving alone does not preempt programs - its read gain on
	// this collision pattern is ~0; the paper attacks writes with
	// selective erasing and posted program buffers instead.
	b.ReportMetric((base/final-1)*100, "interleave-read-gain-%")
}
