# Tier-1 verification: build + test must stay green on every PR.
# `make race` additionally runs the race detector over the whole module;
# the experiments layer executes simulations on a worker pool, so race
# coverage is part of the concurrency contract (see DESIGN.md §"Concurrency
# model").

GO ?= go

.PHONY: build test race race-experiments race-sim bench bench-json bench-compare hist-json hist-compare arena-smoke blame-smoke profile trace vet fmt-check ci ci-full verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass on the experiments layer: the prefix checkpoint
# cache is shared mutable state handed between worker goroutines mid-run
# (capture once, fork concurrently), so this package keeps an explicit
# race gate of its own even if the full-module sweep is ever trimmed.
race-experiments:
	$(GO) test -race -count 1 ./internal/experiments/...

# Focused race pass on the event kernel and the windowed lane executor:
# lane workers publish frontiers through atomics and hand heads back to
# the coordinator over channels, so the lane tests (including the
# cross-engine equivalence suites — kernel lanes, RunJobs wave lanes and
# the laned load/store phases, each running four lane goroutines per
# simulation — plus the AccessPrivate classifier oracles backing tail
# absorption) stay under the race detector even if the full-module sweep
# is ever trimmed (see DESIGN.md §13).
race-sim:
	$(GO) test -race -count 1 ./internal/sim/... ./internal/accel/... ./internal/cache/...
	$(GO) test -race -count 1 -run 'Laned' ./internal/system/...

# Full benchmark sweep; BenchmarkAllExperiments is the top-level number
# to track (serial vs parallel over the shared result cache).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Benchmark trajectory: every figure/table benchmark, recorded as
# BENCH_suite.json (ns/op + B/op + allocs/op per benchmark). Commit the
# file so perf changes stay visible PR over PR. -benchtime 5x averages
# out GC ticks that dominate the sub-millisecond table benchmarks;
# -count 5 lets benchjson keep the fastest repetition (host load spikes
# only ever slow a deterministic benchmark, so min-of-means is the
# noise-robust estimator where the old single shot flapped ±20%).
bench-json:
	$(GO) test -run '^$$' -bench '^(BenchmarkAllExperiments|BenchmarkLaneEngine|BenchmarkFig|BenchmarkTable|BenchmarkSec5)' \
		-benchmem -benchtime 5x -count 5 . | $(GO) run ./tools/benchjson -out BENCH_suite.json

# Perf regression gate: rerun the suite benchmarks (same min-of-means
# treatment as bench-json) and diff ns/op against the committed
# BENCH_suite.json; fails when any benchmark slowed down by more than
# 10%. Host timings are still noisy, so this is an optional CI target
# (ci-full), not part of the default `make ci` gate.
bench-compare:
	$(GO) test -run '^$$' -bench '^(BenchmarkAllExperiments|BenchmarkLaneEngine|BenchmarkFig|BenchmarkTable|BenchmarkSec5)' \
		-benchmem -benchtime 5x -count 5 . | $(GO) run ./tools/benchjson -compare BENCH_suite.json

# Latency distribution baseline: the reference run's full histogram
# export (every instrument, sparse buckets). Commit the file so latency
# drift stays visible PR over PR; regenerate after intended model changes.
hist-json:
	$(GO) run ./cmd/dramless run -system DRAM-less -kernel gemver \
		-hist HIST_baseline.json > /dev/null

# Latency regression gate: rerun the reference configuration and diff
# per-instrument p99 against the committed baseline. The simulator is
# deterministic, so any drift is a real behavioral change; the 10%
# threshold only absorbs intended tuning.
hist-compare:
	@mkdir -p prof
	$(GO) run ./cmd/dramless run -system DRAM-less -kernel gemver \
		-hist prof/hist.current.json > /dev/null
	$(GO) run ./tools/benchjson -hist prof/hist.current.json -hist-base HIST_baseline.json

# Scheduler tournament smoke: every registered policy on one kernel.
# Exercises the policy registry, the per-cell private observers and the
# ranked-table assembly end to end; output is discarded (the arena tests
# pin the table's structure and determinism).
arena-smoke:
	$(GO) run ./cmd/dramless arena -kernels gemver > /dev/null

# Blame attribution smoke: run the paper's two headline organizations
# through `dramless blame` (tracing forced on, so the critical path is
# exercised too), export both accounts and render the diff that
# explains the DRAM-less vs Integrated-MLC gap — the diff step parses
# both exports back, so the JSON round-trip is asserted at the CLI
# surface. The focused test run then asserts the exactness invariant
# (phase blame sums == phase walls to the picosecond, every kind) and
# the export round-trip at the library surface.
blame-smoke:
	@mkdir -p prof
	$(GO) run ./cmd/dramless blame -system DRAM-less -kernel gemver \
		-o prof/blame.dramless.json > /dev/null
	$(GO) run ./cmd/dramless blame -system Integrated-MLC -kernel gemver \
		-o prof/blame.mlc.json > /dev/null
	$(GO) run ./cmd/dramless blame prof/blame.dramless.json prof/blame.mlc.json
	$(GO) test -count 1 -run 'TestBlameSumsEqualPhaseWalls' ./internal/system/
	$(GO) test -count 1 -run 'TestBlameJSONRoundTrip' ./internal/obs/

# CPU + heap profiles of the Figure 15 sweep (the allocation-heaviest
# experiment) into ./prof/; inspect with `go tool pprof prof/fig15.cpu`.
# Profiles are scratch output (gitignored), regenerated on demand here.
profile:
	mkdir -p prof
	$(GO) run ./cmd/dramless experiments \
		-cpuprofile prof/fig15.cpu -memprofile prof/fig15.mem fig15 > /dev/null
	@echo "profiles: prof/fig15.cpu prof/fig15.mem"

# Observability demo: one DRAM-less end-to-end run with hardware
# counters on stdout and a simulated-time timeline in trace.json -
# open it in chrome://tracing or https://ui.perfetto.dev (DESIGN.md §9).
trace:
	$(GO) run ./cmd/dramless run -system DRAM-less -kernel gemver \
		-trace trace.json -counters
	@echo "timeline written to trace.json"

vet:
	$(GO) vet ./...

fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

# Pre-merge gate: everything a PR must pass before landing - build,
# tests, race detector, go vet and gofmt. `make verify` is its alias.
ci: test race race-experiments race-sim vet fmt-check

# ci plus the perf and latency regression gates against the committed
# baselines and the scheduler tournament smoke run.
ci-full: ci bench-compare hist-compare arena-smoke blame-smoke

verify: ci
