# Tier-1 verification: build + test must stay green on every PR.
# `make race` additionally runs the race detector over the whole module;
# the experiments layer executes simulations on a worker pool, so race
# coverage is part of the concurrency contract (see DESIGN.md §"Concurrency
# model").

GO ?= go

.PHONY: build test race bench verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep; BenchmarkAllExperiments is the top-level number
# to track (serial vs parallel over the shared result cache).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

verify: test race
