package dramless

import "testing"

// TestExperimentSharesDefaultEngine pins the satellite fix: the
// deprecated free function Experiment must route through the shared
// process-wide engine, so repeating an id in one process reuses cached
// simulations instead of re-running them.
func TestExperimentSharesDefaultEngine(t *testing.T) {
	o := FastExperiments()
	o.Scale = 96 << 10
	o.Kernels = []string{"gemver"}
	o.Parallelism = 1

	if _, err := Experiment("fig15", o); err != nil {
		t.Fatal(err)
	}
	eng := defaultEngine(o)
	first := eng.Stats()
	if first.Runs == 0 {
		t.Fatal("first Experiment call ran no simulations")
	}

	if _, err := Experiment("fig15", o); err != nil {
		t.Fatal(err)
	}
	second := eng.Stats()
	if second.Runs != first.Runs {
		t.Fatalf("repeated Experiment re-simulated: %d runs, then %d", first.Runs, second.Runs)
	}
	if second.Hits <= first.Hits {
		t.Fatalf("repeated Experiment missed the cache: hits %d -> %d", first.Hits, second.Hits)
	}

	// Experiments shares the same engine; fig16 walks fig15's matrix so
	// it must not add a single simulation either.
	if _, err := Experiments(o, "fig16"); err != nil {
		t.Fatal(err)
	}
	if third := eng.Stats(); third.Runs != second.Runs {
		t.Fatalf("Experiments used a different cache: %d runs, then %d", second.Runs, third.Runs)
	}
}
