module dramless

go 1.22
