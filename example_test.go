package dramless_test

import (
	"fmt"
	"log"

	"dramless"
)

// Build the hardware-automated PRAM subsystem, write persistent data and
// read it back through the full LPDDR2-NVM protocol.
func ExampleNewPRAM() {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		log.Fatal(err)
	}
	payload := []byte("near-data processing")
	if _, err := pram.Write(ready, 0, payload); err != nil {
		log.Fatal(err)
	}
	got, _, err := pram.Read(pram.Drain(), 0, len(payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", got)
	fmt.Printf("capacity %d MiB, scheduler %v\n", pram.Size()>>20, pram.Config().Scheduler)
	// Output:
	// near-data processing
	// capacity 63 MiB, scheduler Final
}

// Execute a Polybench kernel near the data on the 8-PE accelerator.
func ExampleAccelerator_RunKernel() {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		log.Fatal(err)
	}
	acc, err := dramless.NewAccelerator(pram)
	if err != nil {
		log.Fatal(err)
	}
	w, _ := dramless.WorkloadByName("trisolv")
	rep, err := acc.RunKernel(ready, w, dramless.WorkloadParams{Scale: 64 << 10, Agents: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d agents retired %d instructions\n", len(rep.Agents), rep.Instrs)
	// Output:
	// 7 agents retired 238324 instructions
}

// Compare the DRAM-less organization against the conventional
// heterogeneous system end to end.
func ExampleRunSystem() {
	w, _ := dramless.WorkloadByName("gemver")
	var bw [2]float64
	for i, kind := range []dramless.SystemKind{dramless.Hetero, dramless.DRAMLess} {
		cfg := dramless.NewSystemConfig(kind)
		cfg.Scale = 128 << 10
		res, err := dramless.RunSystem(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		bw[i] = res.BandwidthMBps()
	}
	fmt.Printf("DRAM-less beats Hetero: %v\n", bw[1] > bw[0])
	// Output:
	// DRAM-less beats Hetero: true
}

// Regenerate one of the paper's tables.
func ExampleExperiment() {
	tab, err := dramless.Experiment("table2", dramless.FastExperiments())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.Title)
	fmt.Printf("tRCD = %v ns\n", tab.Rows[0].Values["tRCD-ns"])
	// Output:
	// characterized PRAM parameters
	// tRCD = 80 ns
}
