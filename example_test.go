package dramless_test

import (
	"fmt"
	"log"

	"dramless"
)

// Build the hardware-automated PRAM subsystem, write persistent data and
// read it back through the full LPDDR2-NVM protocol.
func ExampleNewPRAM() {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		log.Fatal(err)
	}
	payload := []byte("near-data processing")
	if _, err := pram.Write(ready, 0, payload); err != nil {
		log.Fatal(err)
	}
	got, _, err := pram.Read(pram.Drain(), 0, len(payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", got)
	fmt.Printf("capacity %d MiB, scheduler %v\n", pram.Size()>>20, pram.Config().Scheduler)
	// Output:
	// near-data processing
	// capacity 63 MiB, scheduler Final
}

// Execute a Polybench kernel near the data on the 8-PE accelerator.
func ExampleAccelerator_RunKernel() {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		log.Fatal(err)
	}
	acc, err := dramless.NewAccelerator(pram)
	if err != nil {
		log.Fatal(err)
	}
	w, _ := dramless.WorkloadByName("trisolv")
	rep, err := acc.RunKernel(ready, w, dramless.WorkloadParams{Scale: 64 << 10, Agents: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d agents retired %d instructions\n", len(rep.Agents), rep.Instrs)
	// Output:
	// 7 agents retired 238324 instructions
}

// Compare the DRAM-less organization against the conventional
// heterogeneous system end to end.
func ExampleRunSystem() {
	w, _ := dramless.WorkloadByName("gemver")
	var bw [2]float64
	for i, kind := range []dramless.SystemKind{dramless.Hetero, dramless.DRAMLess} {
		cfg := dramless.NewSystemConfig(kind)
		cfg.Scale = 128 << 10
		res, err := dramless.RunSystem(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		bw[i] = res.BandwidthMBps()
	}
	fmt.Printf("DRAM-less beats Hetero: %v\n", bw[1] > bw[0])
	// Output:
	// DRAM-less beats Hetero: true
}

// Regenerate one of the paper's tables. Experiments regenerated through
// the same engine share one simulation cache, so related figures (fig15,
// fig16, fig17 walk the same system x kernel matrix) cost one sweep.
func ExampleNewExperimentEngine() {
	eng := dramless.NewExperimentEngine(dramless.FastExperiments())
	tab, err := eng.Table("table2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.Title)
	fmt.Printf("tRCD = %v ns\n", tab.Rows[0].Values["tRCD-ns"])
	// Output:
	// characterized PRAM parameters
	// tRCD = 80 ns
}

// Observe a run: attach one Observer to the whole build and read the
// hardware counters the paper's mechanisms produce. With WithTracing the
// observer also records a simulated-time timeline for chrome://tracing
// (Observer.WriteTrace).
func ExampleWithObserver() {
	o := dramless.NewObserver()
	cfg := dramless.NewSystemConfig(dramless.DRAMLess, dramless.WithObserver(o))
	cfg.Scale = 128 << 10
	w, _ := dramless.WorkloadByName("gemver")
	res, err := dramless.RunSystem(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	c := &res.Counters
	fmt.Printf("row-buffer hits seen: %v\n", c.Get("memctrl.rdb_hits") > 0)
	fmt.Printf("interleave overlaps won: %v\n", c.Get("memctrl.interleave_overlaps") > 0)
	fmt.Printf("PSC reboots: %d\n", c.Get("accel.psc.boots"))
	// Output:
	// row-buffer hits seen: true
	// interleave overlaps won: true
	// PSC reboots: 7
}
