package main

import (
	"bytes"
	"testing"

	"dramless"
)

// goldenSet builds a small deterministic histogram set: fixed samples,
// so bucket boundaries, percentiles and the CDF are pinned exactly.
func goldenSet() *dramless.HistogramSet {
	s := &dramless.HistogramSet{}
	read := s.Get("pram.read")
	for i := int64(1); i <= 100; i++ {
		read.Record(i * 1000) // 1ns..100ns ladder
	}
	write := s.Get("pram.write")
	for i := int64(0); i < 10; i++ {
		write.Record(500_000) // flat 500ns
	}
	s.Get("pram.empty") // zero-count instruments are skipped in tables
	return s
}

// TestReportGolden pins the `dramless report` percentile table byte for
// byte. A diff here means the human-facing report format changed;
// update the golden deliberately or fix the regression.
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := report(&buf, []string{"golden.json"}, []*dramless.HistogramSet{goldenSet()}, "", false); err != nil {
		t.Fatal(err)
	}
	const want = "" +
		"instrument                          count          p50          p90          p99         p999          max\n" +
		"pram.read                             100       50.2ns       90.1ns        100ns        100ns        100ns\n" +
		"pram.write                             10        500ns        500ns        500ns        500ns        500ns\n"
	if got := buf.String(); got != want {
		t.Errorf("percentile table drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestReportCDFGolden pins the text CDF rendering (the diffable
// per-bucket cumulative view).
func TestReportCDFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := report(&buf, []string{"golden.json"}, []*dramless.HistogramSet{goldenSet()}, "pram.write", false); err != nil {
		t.Fatal(err)
	}
	const want = "" +
		"# pram.write: 10 samples, min 500ns, max 500ns\n" +
		"        507903 ps   1.000000  ########################################\n"
	if got := buf.String(); got != want {
		t.Errorf("CDF output drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestReportJSON exercises the -json view: byte-deterministic, integer
// picoseconds, zero-count instruments skipped.
func TestReportJSON(t *testing.T) {
	var a, b bytes.Buffer
	sets := []*dramless.HistogramSet{goldenSet()}
	if err := report(&a, []string{"golden.json"}, sets, "", true); err != nil {
		t.Fatal(err)
	}
	if err := report(&b, []string{"golden.json"}, sets, "", true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("-json output not byte-deterministic")
	}
	for _, want := range []string{`"instrument": "pram.read"`, `"count": 100`, `"max_ps":`} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Errorf("-json output missing %s:\n%s", want, a.String())
		}
	}
	if bytes.Contains(a.Bytes(), []byte("pram.empty")) {
		t.Errorf("-json output must skip zero-count instruments:\n%s", a.String())
	}
}

// TestReportComparison smoke-tests the two-file side-by-side view
// through the same writer-based entry point the golden tests use.
func TestReportComparison(t *testing.T) {
	var buf bytes.Buffer
	sets := []*dramless.HistogramSet{goldenSet(), goldenSet()}
	if err := report(&buf, []string{"a.json", "b.json"}, sets, "", false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A = a.json", "B = b.json", "pram.read", "+0.0%"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("comparison output missing %q:\n%s", want, buf.String())
		}
	}
}
