package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dramless"
)

// cmdBlame answers "where did the time go": it simulates one system x
// kernel cell with tracing forced on, prints the hierarchical blame
// tree (phase -> component -> cause, exact to the picosecond) and the
// kernel phase's critical path. With one file argument it renders a
// previously exported account instead of simulating; with two it
// explains the delta between two exports.
func cmdBlame(args []string) {
	fs := flag.NewFlagSet("blame", flag.ExitOnError)
	sysName := fs.String("system", "DRAM-less", "system organization (see list)")
	kernelName := fs.String("kernel", "gemver", "workload (see list)")
	scale := fs.Int64("scale", 256<<10, "footprint scale in bytes")
	schedName := fs.String("scheduler", "", "override PRAM controller policy (any registry name)")
	top := fs.Int("top", 10, "rows in the critical-path and diff tables (0 = all)")
	asJSON := fs.Bool("json", false, "emit the blame account as JSON instead of the text report")
	out := fs.String("o", "", "also export the blame account JSON to this file")
	fs.Parse(args)

	switch paths := fs.Args(); len(paths) {
	case 0:
		// Simulate below.
	case 1:
		b := readBlameFile(paths[0])
		if *asJSON {
			if err := b.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Printf("blame account from %s (wall %s):\n\n", paths[0], fmtPS(blameWall(b)))
		if err := b.WriteTree(os.Stdout, fmtPS); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case 2:
		diffBlameFiles(os.Stdout, paths, readBlameFile(paths[0]), readBlameFile(paths[1]), *top)
		return
	default:
		fmt.Fprintln(os.Stderr, "usage: dramless blame [flags] [blame.json [other-blame.json]]")
		os.Exit(2)
	}

	var kind dramless.SystemKind
	found := false
	for _, k := range dramless.SystemKinds() {
		if strings.EqualFold(k.String(), *sysName) {
			kind, found = k, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown system %q (see `dramless list`)\n", *sysName)
		os.Exit(2)
	}
	w, err := dramless.WorkloadByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Tracing is forced on: the blame tree is always-on accounting, but
	// the critical path needs the span forest.
	observer := dramless.NewObserver(dramless.WithTracing())
	cfg := dramless.NewSystemConfig(kind, dramless.WithObserver(observer))
	cfg.Scale = *scale
	if *schedName != "" {
		p, err := dramless.PolicyByName(*schedName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Policy = p.Name()
	}
	res, err := dramless.RunSystem(cfg, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.Blame.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *asJSON {
		if err := res.Blame.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%s running %s (%s), footprint %d KiB\n", kind, w.Name, w.Class, res.Footprint>>10)
	fmt.Printf("total %v   (load %v | kernel %v | store %v)\n\n", res.Total, res.Load, res.Kernel, res.Store)

	fmt.Println("blame (simulated time, exact to the picosecond):")
	if err := res.Blame.WriteTree(os.Stdout, fmtPS); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	printCriticalPath(os.Stdout, observer.Tracer(), *top)
	if *out != "" {
		fmt.Printf("\nblame account exported to %s (diff two runs with `dramless blame a.json b.json`)\n", *out)
	}
}

// printCriticalPath extracts the kernel phase's critical path from the
// traced span forest and prints the top rows grouped by span identity.
// The segment durations tile the kernel wall exactly, so the printed
// total always equals the wall.
func printCriticalPath(w io.Writer, tr *dramless.Tracer, top int) {
	var kStart, kEnd dramless.Time
	for _, e := range tr.Events() {
		if e.Proc == "system" && e.Name == "kernel" {
			kStart, kEnd = e.Start, e.End
		}
	}
	if kEnd <= kStart {
		fmt.Fprintln(w, "\nno kernel span recorded; critical path unavailable")
		return
	}
	segs := tr.CriticalPath(kStart, kEnd)

	type groupKey struct{ proc, track, name string }
	totals := map[groupKey]dramless.Duration{}
	counts := map[groupKey]int{}
	var order []groupKey
	var total dramless.Duration
	for _, s := range segs {
		total += s.Dur()
		k := groupKey{s.Proc, s.Track, s.Name}
		if _, seen := totals[k]; !seen {
			order = append(order, k)
		}
		totals[k] += s.Dur()
		counts[k]++
	}
	sort.SliceStable(order, func(i, j int) bool { return totals[order[i]] > totals[order[j]] })
	shown := len(order)
	if top > 0 && top < shown {
		shown = top
	}

	fmt.Fprintf(w, "\ncritical path over the kernel phase (%d segments, path total %v = kernel wall):\n",
		len(segs), total)
	fmt.Fprintf(w, "  %-12s %-10s %-22s %6s %12s\n", "proc", "track", "span", "segs", "blocking")
	for _, k := range order[:shown] {
		proc, track, name := k.proc, k.track, k.name
		if proc == "" {
			proc, track, name = "(idle)", "-", "no recorded span active"
		}
		fmt.Fprintf(w, "  %-12s %-10s %-22s %6d %12v  %5.1f%%\n",
			proc, track, name, counts[k], totals[k], 100*float64(totals[k])/float64(total))
	}
	if shown < len(order) {
		var rest dramless.Duration
		for _, k := range order[shown:] {
			rest += totals[k]
		}
		fmt.Fprintf(w, "  %-12s %-10s %-22s %6s %12v  %5.1f%%\n",
			"...", "", fmt.Sprintf("(%d more)", len(order)-shown), "", rest, 100*float64(rest)/float64(total))
	}
}

// readBlameFile parses one `dramless blame -o` / `-json` export.
func readBlameFile(path string) *dramless.Blame {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	b, err := dramless.ReadBlame(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	return b
}

// diffBlameFiles explains the wall-time delta between two exported
// accounts: phase totals first, then the individual accounts ranked by
// absolute delta (A's registration order breaks ties deterministically).
func diffBlameFiles(w io.Writer, paths []string, a, b *dramless.Blame, top int) {
	fmt.Fprintf(w, "A = %s (wall %s)\nB = %s (wall %s)\n\n",
		paths[0], fmtPS(blameWall(a)), paths[1], fmtPS(blameWall(b)))

	fmt.Fprintf(w, "%-36s %14s %14s %14s\n", "phase", "A", "B", "Δ")
	for _, ph := range []string{"load/", "kernel/", "store/"} {
		av, bv := a.Sum(ph), b.Sum(ph)
		fmt.Fprintf(w, "%-36s %14s %14s %14s\n",
			strings.TrimSuffix(ph, "/"), fmtPS(av), fmtPS(bv), fmtSignedPS(bv-av))
	}

	// Union of account names: A's registration order, then B-only names.
	var names []string
	seen := map[string]bool{}
	for _, e := range a.Entries() {
		names, seen[e.Name] = append(names, e.Name), true
	}
	for _, e := range b.Entries() {
		if !seen[e.Name] {
			names = append(names, e.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		di, dj := b.Get(names[i])-a.Get(names[i]), b.Get(names[j])-a.Get(names[j])
		return abs64(di) > abs64(dj)
	})
	shown := len(names)
	if top > 0 && top < shown {
		shown = top
	}
	fmt.Fprintf(w, "\n%-36s %14s %14s %14s\n", "account (by |Δ|)", "A", "B", "Δ")
	for _, n := range names[:shown] {
		av, bv := a.Get(n), b.Get(n)
		if av == 0 && bv == 0 {
			continue
		}
		fmt.Fprintf(w, "%-36s %14s %14s %14s\n", n, fmtPS(av), fmtPS(bv), fmtSignedPS(bv-av))
	}
	if shown < len(names) {
		fmt.Fprintf(w, "(%d more accounts; rerun with -top 0 for all)\n", len(names)-shown)
	}
}

// blameWall sums an account's three phase scopes — the run's total wall.
// (Sum("") would also pick up the informational raw/ accounts, which are
// inclusive and would double-count.)
func blameWall(b *dramless.Blame) int64 {
	return b.Sum("load/") + b.Sum("kernel/") + b.Sum("store/")
}

// fmtSignedPS renders a picosecond delta with an explicit sign.
func fmtSignedPS(ps int64) string {
	if ps < 0 {
		return "-" + fmtPS(-ps)
	}
	return "+" + fmtPS(ps)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
