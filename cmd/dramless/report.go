package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dramless"
)

// writeExport writes one observability export to path, choosing CSV when
// the extension is .csv and JSON otherwise.
func writeExport(path string, asJSON, asCSV func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := asJSON
	if strings.HasSuffix(path, ".csv") {
		write = asCSV
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cmdReport renders percentile tables and text CDFs from `run -hist`
// JSON exports, and diffs two exports side by side.
func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	cdf := fs.String("cdf", "", "print the named instrument's text CDF instead of the percentile table")
	asJSON := fs.Bool("json", false, "emit the table as machine-readable JSON instead of text")
	fs.Parse(args)

	paths := fs.Args()
	if len(paths) < 1 || len(paths) > 2 {
		fmt.Fprintln(os.Stderr, "usage: dramless report [-json] [-cdf instrument] <hist.json> [other-hist.json]")
		os.Exit(2)
	}
	sets := make([]*dramless.HistogramSet, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sets[i], err = dramless.ReadHistograms(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p, err)
			os.Exit(1)
		}
	}

	if err := report(os.Stdout, paths, sets, *cdf, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// report renders the requested view of one or two histogram exports to
// w. Split from cmdReport (and given an explicit writer) so the golden
// tests can pin the output byte for byte.
func report(w io.Writer, paths []string, sets []*dramless.HistogramSet, cdf string, asJSON bool) error {
	if cdf != "" {
		for i, s := range sets {
			h := s.Lookup(cdf)
			if h == nil {
				return fmt.Errorf("%s: no instrument %q (have %s)",
					paths[i], cdf, strings.Join(s.Names(), ", "))
			}
			if asJSON {
				if err := printCDFJSON(w, h); err != nil {
					return err
				}
				continue
			}
			if len(sets) > 1 {
				fmt.Fprintf(w, "# %s\n", paths[i])
			}
			printCDF(w, h)
		}
		return nil
	}

	if asJSON {
		return printPercentilesJSON(w, paths, sets)
	}
	if len(sets) == 1 {
		printPercentiles(w, sets[0])
		return nil
	}
	printComparison(w, paths, sets[0], sets[1])
	return nil
}

// reportPercentiles is the rendered percentile ladder.
var reportPercentiles = []float64{50, 90, 99, 99.9}

// printPercentiles renders one percentile table in registration order.
func printPercentiles(w io.Writer, s *dramless.HistogramSet) {
	fmt.Fprintf(w, "%-28s %12s %12s %12s %12s %12s %12s\n",
		"instrument", "count", "p50", "p90", "p99", "p999", "max")
	for _, h := range s.All() {
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "%-28s %12d", h.Name(), h.Count())
		for _, p := range reportPercentiles {
			fmt.Fprintf(w, " %12s", fmtPS(h.Percentile(p)))
		}
		fmt.Fprintf(w, " %12s\n", fmtPS(h.Max()))
	}
}

// printPercentilesJSON emits the percentile table as a JSON array, one
// record per non-empty instrument per file, all values in integer
// picoseconds. Hand-rendered so the output is byte-deterministic.
func printPercentilesJSON(w io.Writer, paths []string, sets []*dramless.HistogramSet) error {
	bw := &strings.Builder{}
	bw.WriteString("[")
	first := true
	for i, s := range sets {
		for _, h := range s.All() {
			if h.Count() == 0 {
				continue
			}
			if !first {
				bw.WriteString(",")
			}
			first = false
			fmt.Fprintf(bw, "\n  {\"file\": %q, \"instrument\": %q, \"count\": %d", paths[i], h.Name(), h.Count())
			labels := []string{"p50", "p90", "p99", "p999"}
			for j, p := range reportPercentiles {
				fmt.Fprintf(bw, ", %q: %d", labels[j], h.Percentile(p))
			}
			fmt.Fprintf(bw, ", \"max_ps\": %d}", h.Max())
		}
	}
	bw.WriteString("\n]\n")
	_, err := io.WriteString(w, bw.String())
	return err
}

// printComparison renders two exports' percentiles side by side with the
// p99 delta, pairing instruments by name in the first file's order.
func printComparison(w io.Writer, paths []string, a, b *dramless.HistogramSet) {
	fmt.Fprintf(w, "A = %s\nB = %s\n\n", paths[0], paths[1])
	fmt.Fprintf(w, "%-28s %12s %12s %12s %12s %8s\n",
		"instrument", "A.p50", "B.p50", "A.p99", "B.p99", "Δp99")
	for _, ha := range a.All() {
		hb := b.Lookup(ha.Name())
		if ha.Count() == 0 && hb.Count() == 0 {
			continue
		}
		delta := "n/a"
		if ap99 := ha.Percentile(99); ap99 > 0 && hb != nil {
			delta = fmt.Sprintf("%+.1f%%", 100*float64(hb.Percentile(99)-ap99)/float64(ap99))
		}
		fmt.Fprintf(w, "%-28s %12s %12s %12s %12s %8s\n", ha.Name(),
			fmtPS(ha.Percentile(50)), fmtPS(hb.Percentile(50)),
			fmtPS(ha.Percentile(99)), fmtPS(hb.Percentile(99)), delta)
	}
	for _, hb := range b.All() {
		if a.Lookup(hb.Name()) == nil {
			fmt.Fprintf(w, "%-28s only in B (count %d)\n", hb.Name(), hb.Count())
		}
	}
}

// printCDF renders one instrument's cumulative distribution as text:
// one line per non-empty bucket, upper bound then cumulative fraction.
// The format is plain enough to diff two runs' outputs directly.
func printCDF(w io.Writer, h *dramless.Histogram) {
	fmt.Fprintf(w, "# %s: %d samples, min %s, max %s\n", h.Name(), h.Count(), fmtPS(h.Min()), fmtPS(h.Max()))
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		frac := float64(cum) / float64(h.Count())
		fmt.Fprintf(w, "%14d ps  %9.6f  %s\n", b.High-1, frac, cdfBar(frac))
	}
}

// printCDFJSON emits one instrument's CDF as a JSON array of
// (bucket upper bound, cumulative count) pairs — integers only, so the
// export is byte-deterministic and exact.
func printCDFJSON(w io.Writer, h *dramless.Histogram) error {
	bw := &strings.Builder{}
	fmt.Fprintf(bw, "{\"instrument\": %q, \"count\": %d, \"min_ps\": %d, \"max_ps\": %d, \"cdf\": [",
		h.Name(), h.Count(), h.Min(), h.Max())
	var cum int64
	for i, b := range h.Buckets() {
		if i > 0 {
			bw.WriteString(",")
		}
		cum += b.Count
		fmt.Fprintf(bw, "\n  {\"high_ps\": %d, \"cum\": %d}", b.High-1, cum)
	}
	bw.WriteString("\n]}\n")
	_, err := io.WriteString(w, bw.String())
	return err
}

// cdfBar renders a 40-column fill bar for a cumulative fraction.
func cdfBar(frac float64) string {
	n := int(frac * 40)
	return strings.Repeat("#", n) + strings.Repeat(".", 40-n)
}

// fmtPS renders a picosecond quantity with a human unit.
func fmtPS(ps int64) string {
	return dramless.Duration(ps).String()
}
