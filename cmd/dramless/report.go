package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dramless"
)

// writeExport writes one observability export to path, choosing CSV when
// the extension is .csv and JSON otherwise.
func writeExport(path string, asJSON, asCSV func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := asJSON
	if strings.HasSuffix(path, ".csv") {
		write = asCSV
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cmdReport renders percentile tables and text CDFs from `run -hist`
// JSON exports, and diffs two exports side by side.
func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	cdf := fs.String("cdf", "", "print the named instrument's text CDF instead of the percentile table")
	fs.Parse(args)

	paths := fs.Args()
	if len(paths) < 1 || len(paths) > 2 {
		fmt.Fprintln(os.Stderr, "usage: dramless report [-cdf instrument] <hist.json> [other-hist.json]")
		os.Exit(2)
	}
	sets := make([]*dramless.HistogramSet, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sets[i], err = dramless.ReadHistograms(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p, err)
			os.Exit(1)
		}
	}

	if *cdf != "" {
		for i, s := range sets {
			h := s.Lookup(*cdf)
			if h == nil {
				fmt.Fprintf(os.Stderr, "%s: no instrument %q (have %s)\n",
					paths[i], *cdf, strings.Join(s.Names(), ", "))
				os.Exit(1)
			}
			if len(sets) > 1 {
				fmt.Printf("# %s\n", paths[i])
			}
			printCDF(h)
		}
		return
	}

	if len(sets) == 1 {
		printPercentiles(sets[0])
		return
	}
	printComparison(paths, sets[0], sets[1])
}

// reportPercentiles is the rendered percentile ladder.
var reportPercentiles = []float64{50, 90, 99, 99.9}

// printPercentiles renders one percentile table in registration order.
func printPercentiles(s *dramless.HistogramSet) {
	fmt.Printf("%-28s %12s %12s %12s %12s %12s %12s\n",
		"instrument", "count", "p50", "p90", "p99", "p999", "max")
	for _, h := range s.All() {
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("%-28s %12d", h.Name(), h.Count())
		for _, p := range reportPercentiles {
			fmt.Printf(" %12s", fmtPS(h.Percentile(p)))
		}
		fmt.Printf(" %12s\n", fmtPS(h.Max()))
	}
}

// printComparison renders two exports' percentiles side by side with the
// p99 delta, pairing instruments by name in the first file's order.
func printComparison(paths []string, a, b *dramless.HistogramSet) {
	fmt.Printf("A = %s\nB = %s\n\n", paths[0], paths[1])
	fmt.Printf("%-28s %12s %12s %12s %12s %8s\n",
		"instrument", "A.p50", "B.p50", "A.p99", "B.p99", "Δp99")
	for _, ha := range a.All() {
		hb := b.Lookup(ha.Name())
		if ha.Count() == 0 && hb.Count() == 0 {
			continue
		}
		delta := "n/a"
		if ap99 := ha.Percentile(99); ap99 > 0 && hb != nil {
			delta = fmt.Sprintf("%+.1f%%", 100*float64(hb.Percentile(99)-ap99)/float64(ap99))
		}
		fmt.Printf("%-28s %12s %12s %12s %12s %8s\n", ha.Name(),
			fmtPS(ha.Percentile(50)), fmtPS(hb.Percentile(50)),
			fmtPS(ha.Percentile(99)), fmtPS(hb.Percentile(99)), delta)
	}
	for _, hb := range b.All() {
		if a.Lookup(hb.Name()) == nil {
			fmt.Printf("%-28s only in B (count %d)\n", hb.Name(), hb.Count())
		}
	}
}

// printCDF renders one instrument's cumulative distribution as text:
// one line per non-empty bucket, upper bound then cumulative fraction.
// The format is plain enough to diff two runs' outputs directly.
func printCDF(h *dramless.Histogram) {
	fmt.Printf("# %s: %d samples, min %s, max %s\n", h.Name(), h.Count(), fmtPS(h.Min()), fmtPS(h.Max()))
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		frac := float64(cum) / float64(h.Count())
		fmt.Printf("%14d ps  %9.6f  %s\n", b.High-1, frac, cdfBar(frac))
	}
}

// cdfBar renders a 40-column fill bar for a cumulative fraction.
func cdfBar(frac float64) string {
	n := int(frac * 40)
	return strings.Repeat("#", n) + strings.Repeat(".", 40-n)
}

// fmtPS renders a picosecond quantity with a human unit.
func fmtPS(ps int64) string {
	return dramless.Duration(ps).String()
}
