// Command dramless regenerates the paper's tables and figures and runs
// individual system x workload simulations.
//
// Usage:
//
//	dramless experiments [-full] [-scale N] [-kernels a,b,c] [-parallel N] [-lanes N] [id ...]
//	dramless run -system DRAM-less -kernel gemver [-scale N]
//	dramless blame -system DRAM-less -kernel gemver [-top N]
//	dramless arena [-policies a,b] [-systems x,y] [-kernels a,b,c]
//	dramless list
//
// With no experiment ids, every table and figure is regenerated in paper
// order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dramless"
)

// profileFlags registers -cpuprofile/-memprofile on fs. Call the returned
// start function after fs.Parse; it begins CPU profiling and returns the
// stop function that finishes the CPU profile and writes the heap profile
// (run it before exiting, including error exits).
func profileFlags(fs *flag.FlagSet) (start func() func()) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memp := fs.String("memprofile", "", "write a heap profile to this file on exit")
	return func() func() {
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return func() {
			if *cpu != "" {
				pprof.StopCPUProfile()
			}
			if *memp != "" {
				f, err := os.Create(*memp)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				runtime.GC() // materialize the final live set
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				f.Close()
			}
		}
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "experiments":
		cmdExperiments(os.Args[2:])
	case "arena":
		cmdArena(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "trace":
		cmdTrace(os.Args[2:])
	case "report":
		cmdReport(os.Args[2:])
	case "blame":
		cmdBlame(os.Args[2:])
	case "list":
		cmdList()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `dramless - HPCA'20 "DRAM-less" reproduction harness

commands:
  experiments [-full] [-scale bytes] [-kernels a,b,c] [-parallel N]
        [-lanes N] [-scheduler name] [-slowest N] [id ...]
        regenerate the paper's tables/figures (default: all of them);
        -scheduler overrides the DRAM-less PRAM scheduling policy for
        every cell (any registered policy name);
        -parallel bounds the simulation worker pool (0 = GOMAXPROCS,
        1 = serial) and -lanes the deterministic event lanes inside
        each simulation (0 = share leftover cores with the pool,
        -1 = legacy engine) - output is byte-identical at any setting
        of either; -slowest lists the N slowest cells by host
        wall-clock, each tagged with whether it forked a cached
        populate/load prefix checkpoint or simulated it cold
  arena [-full] [-scale bytes] [-kernels a,b,c] [-policies a,b]
        [-systems x,y] [-parallel N] [-lanes N] [-json]
        scheduler tournament: run every registered scheduling policy
        (or the -policies subset) x every kernel on the -systems
        organizations (default DRAM-less) and rank them against the
        paper's final scheduler, with mean/p99/d-p99 read latency
        from the histogram layer; byte-identical at any -parallel
  run   -system <name> -kernel <name> [-scale bytes] [-scheduler name]
        [-trace out.json] [-hist out.json] [-series out.json] [-counters]
        [-lanes N]
        one end-to-end system simulation with full breakdowns;
        -trace records a simulated-time timeline (open the JSON in
        chrome://tracing), -hist exports per-instrument latency
        histograms and -series windowed time series (.csv extension
        selects CSV, anything else JSON), -counters prints the hardware
        counters, -scheduler selects any registered PRAM scheduling
        policy by name (bare-metal, interleaving, selective-erasing,
        final, palp, pause-aware, wear-aware, ...)
  report [-json] [-cdf instrument] <hist.json> [other-hist.json]
        render percentile tables (p50/p90/p99/p999/max) from a -hist
        export; with two files, compare them side by side; -cdf prints
        the named instrument's text CDF (diffable across runs); -json
        emits the table (or CDF) as machine-readable JSON
  blame [-system name] [-kernel name] [-scale bytes] [-scheduler name]
        [-top N] [-json] [-o blame.json] [blame.json [other.json]]
        answer "where did the time go": simulate one cell with tracing
        forced on, print the exact phase->component->cause blame tree
        (accounts sum to each phase wall to the picosecond) and the
        kernel phase's critical path; -o exports the account as JSON;
        with one file argument render a previous export instead of
        simulating, with two explain the delta between two exports

  experiments and run both take -cpuprofile / -memprofile <file> to
  capture pprof profiles of the simulation (see DESIGN.md §8).
  trace [-addr N] [-n bytes] [-write] [-scheduler name]
        dump the LPDDR2-NVM command stream one access produces
  list  show experiment ids, system names and workloads`)
}

func cmdList() {
	fmt.Println("experiments:")
	for _, id := range dramless.ExperimentIDs() {
		fmt.Printf("  %s\n", id)
	}
	fmt.Println("systems:")
	for _, k := range dramless.SystemKinds() {
		fmt.Printf("  %s\n", k)
	}
	fmt.Println("workloads:")
	for _, w := range dramless.Workloads() {
		fmt.Printf("  %-8s %s\n", w.Name, w.Class)
	}
}

func cmdExperiments(args []string) {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	full := fs.Bool("full", false, "paper-scale footprints (slow)")
	asJSON := fs.Bool("json", false, "emit JSON instead of tables")
	scale := fs.Int64("scale", 0, "override footprint scale in bytes")
	kernels := fs.String("kernels", "", "comma-separated kernel subset")
	parallel := fs.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
	lanes := fs.Int("lanes", 0, "event lanes inside each simulation (0 = share cores with the pool, -1 = legacy engine)")
	schedName := fs.String("scheduler", "", "override the DRAM-less PRAM scheduling policy for every cell (registry name)")
	slowest := fs.Int("slowest", 0, "report the N slowest simulation cells with prefix cache hit/miss")
	startProf := profileFlags(fs)
	fs.Parse(args)
	stopProf := startProf()
	defer stopProf()

	o := dramless.FastExperiments()
	if *full {
		o = dramless.FullExperiments()
	}
	if *scale > 0 {
		o.Scale = *scale
	}
	if *kernels != "" {
		o.Kernels = strings.Split(*kernels, ",")
	}
	o.Parallelism = *parallel
	o.Lanes = *lanes
	if *schedName != "" {
		p, err := dramless.PolicyByName(*schedName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		o.Policy = p.Name()
	}

	ids := fs.Args()
	if len(ids) == 0 {
		ids = dramless.ExperimentIDs()
	}
	// One engine for the whole invocation: experiments share a result
	// cache (fig15/16/17 walk the same system x kernel matrix) and
	// distinct simulations spread over the worker pool.
	eng := dramless.NewExperimentEngine(o)
	wall := time.Now()
	for _, id := range ids {
		start := time.Now()
		tab, err := eng.Table(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			stopProf()
			os.Exit(1)
		}
		if *asJSON {
			doc, err := tab.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Stdout.Write(doc)
			fmt.Println()
		} else {
			tab.Print(os.Stdout)
			fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if !*asJSON {
		fmt.Printf("engine: %s; prefixes: %s; wall %v\n",
			eng.Stats(), eng.PrefixStats(), time.Since(wall).Round(time.Millisecond))
	}
	if *slowest > 0 {
		fmt.Printf("slowest %d cells (host wall-clock):\n", *slowest)
		for _, ct := range eng.SlowestCells(*slowest) {
			tag := "prefix-cold"
			if ct.PrefixHit {
				tag = "prefix-fork"
			}
			// Laned cells append their kernel-phase fold coverage: the
			// share of dispatched events lane tails absorbed inline.
			fold := ""
			if ct.LaneEvents > 0 {
				fold = fmt.Sprintf("  fold %4.1f%%", 100*float64(ct.LaneFolded)/float64(ct.LaneEvents))
			}
			// The blame column names where the cell's kernel wall went:
			// its largest kernel-phase account and that account's share.
			blame := ""
			if ct.BlameTop != "" {
				blame = fmt.Sprintf("  kernel: %s %.1f%%", ct.BlameTop, float64(ct.BlameTopMille)/10)
			}
			fmt.Printf("  %-10v %-22s %-8s %s%s%s\n", ct.Wall.Round(time.Microsecond), ct.Kind, ct.Kernel, tag, fold, blame)
		}
	}
}

func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.Uint64("addr", 0, "target byte address")
	n := fs.Int("n", 128, "access size in bytes")
	write := fs.Bool("write", false, "trace a write instead of a read")
	schedName := fs.String("scheduler", "final", "scheduling policy (any registry name, e.g. final, palp, pause-aware)")
	fs.Parse(args)

	sched, err := dramless.PolicyByName(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	pram, ready, err := dramless.NewPRAM(
		dramless.WithCapacityRows(1<<16),
		dramless.WithPolicy(sched))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pram.EnableTrace(true)
	op := "read"
	var done dramless.Time
	if *write {
		op = "write"
		done, err = pram.Write(ready, *addr, make([]byte, *n))
	} else {
		_, done, err = pram.Read(ready, *addr, *n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s of %d B at %#x under %s: accepted after %v (drain %v)\n\n",
		op, *n, *addr, sched.Name(), done-ready, pram.Drain()-ready)
	for ch := 0; ch < 2; ch++ {
		for pkg := 0; pkg < 16; pkg++ {
			cmds := pram.Trace(ch, pkg)
			if len(cmds) == 0 {
				continue
			}
			fmt.Printf("channel %d, package %d:\n", ch, pkg)
			for i, c := range cmds {
				fmt.Printf("  %2d: %v\n", i, c)
			}
		}
	}
}

// cmdArena runs the scheduler tournament: every registered policy (or
// the -policies subset) x every kernel on the -systems organizations,
// ranked against the paper's final scheduler.
func cmdArena(args []string) {
	fs := flag.NewFlagSet("arena", flag.ExitOnError)
	full := fs.Bool("full", false, "paper-scale footprints (slow)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	scale := fs.Int64("scale", 0, "override footprint scale in bytes")
	kernels := fs.String("kernels", "", "comma-separated kernel subset")
	parallel := fs.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
	lanes := fs.Int("lanes", 0, "event lanes inside each simulation (0 = share cores with the pool, -1 = legacy engine)")
	policies := fs.String("policies", "", "comma-separated policy subset (default: every registered policy)")
	systems := fs.String("systems", "", "comma-separated organizations (default: DRAM-less)")
	startProf := profileFlags(fs)
	fs.Parse(args)
	stopProf := startProf()
	defer stopProf()

	o := dramless.FastExperiments()
	if *full {
		o = dramless.FullExperiments()
	}
	if *scale > 0 {
		o.Scale = *scale
	}
	if *kernels != "" {
		o.Kernels = strings.Split(*kernels, ",")
	}
	o.Parallelism = *parallel
	o.Lanes = *lanes

	var pols []string
	if *policies != "" {
		for _, name := range strings.Split(*policies, ",") {
			p, err := dramless.PolicyByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			pols = append(pols, p.Name())
		}
	}
	var kinds []dramless.SystemKind
	if *systems != "" {
		for _, name := range strings.Split(*systems, ",") {
			found := false
			for _, k := range dramless.SystemKinds() {
				if strings.EqualFold(k.String(), strings.TrimSpace(name)) {
					kinds, found = append(kinds, k), true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown system %q (see `dramless list`)\n", name)
				os.Exit(2)
			}
		}
	}

	eng := dramless.NewExperimentEngine(o)
	wall := time.Now()
	tab, err := eng.Arena(pols, kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		stopProf()
		os.Exit(1)
	}
	if *asJSON {
		doc, err := tab.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Stdout.Write(doc)
		fmt.Println()
		return
	}
	tab.Print(os.Stdout)
	fmt.Printf("engine: %s; prefixes: %s; wall %v\n",
		eng.Stats(), eng.PrefixStats(), time.Since(wall).Round(time.Millisecond))
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	sysName := fs.String("system", "DRAM-less", "system organization (see list)")
	kernelName := fs.String("kernel", "gemver", "workload (see list)")
	scale := fs.Int64("scale", 256<<10, "footprint scale in bytes")
	schedName := fs.String("scheduler", "", "override PRAM controller policy (any registry name, e.g. final, palp, pause-aware)")
	traceOut := fs.String("trace", "", "record a simulated-time timeline to this file (chrome://tracing JSON)")
	histOut := fs.String("hist", "", "export latency histograms to this file (.csv for CSV, else JSON)")
	seriesOut := fs.String("series", "", "export simulated-time series to this file (.csv for CSV, else JSON)")
	counters := fs.Bool("counters", false, "print the run's hardware counters")
	lanes := fs.Int("lanes", 0, "event lanes inside the simulation (0 = legacy engine, 1 = laned serial, N = windowed parallel)")
	startProf := profileFlags(fs)
	fs.Parse(args)
	stopProf := startProf()
	defer stopProf()

	var kind dramless.SystemKind
	found := false
	for _, k := range dramless.SystemKinds() {
		if strings.EqualFold(k.String(), *sysName) {
			kind, found = k, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown system %q (see `dramless list`)\n", *sysName)
		os.Exit(2)
	}
	w, err := dramless.WorkloadByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var obsOpts []dramless.ObserverOption
	if *traceOut != "" {
		obsOpts = append(obsOpts, dramless.WithTracing())
	}
	observer := dramless.NewObserver(obsOpts...)
	cfg := dramless.NewSystemConfig(kind, dramless.WithObserver(observer))
	cfg.Scale = *scale
	cfg.Accel.Lanes = *lanes
	if *schedName != "" {
		p, err := dramless.PolicyByName(*schedName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Policy = p.Name()
	}
	res, err := dramless.RunSystem(cfg, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := observer.WriteTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("timeline: %s (open in chrome://tracing or https://ui.perfetto.dev)\n\n", *traceOut)
	}
	if *histOut != "" {
		if err := writeExport(*histOut, observer.Histograms().WriteJSON, observer.Histograms().WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("latency histograms: %s (render with `dramless report %s`)\n", *histOut, *histOut)
	}
	if *seriesOut != "" {
		if err := writeExport(*seriesOut, observer.Series().WriteJSON, observer.Series().WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("time series: %s\n", *seriesOut)
	}

	fmt.Printf("%s running %s (%s), footprint %d KiB\n\n", kind, w.Name, w.Class, res.Footprint>>10)
	fmt.Printf("total %v   (load %v | kernel %v | store %v)\n", res.Total, res.Load, res.Kernel, res.Store)
	fmt.Printf("throughput %.1f MB/s\n\n", res.BandwidthMBps())

	fmt.Println("time decomposition:")
	for _, k := range res.Time.Keys() {
		fmt.Printf("  %-10s %6.1f%%\n", k, res.Time.Share(k)*100)
	}
	fmt.Println("energy decomposition:")
	bd := res.Energy.Breakdown()
	for _, k := range bd.Keys() {
		if bd.Get(k) == 0 {
			continue
		}
		fmt.Printf("  %-12s %10.4g J  (%4.1f%%)\n", k, bd.Get(k), bd.Share(k)*100)
	}
	fmt.Printf("total energy %.4g J\n\n", res.Energy.Total())

	rep := res.Report
	fmt.Printf("kernel phase: %d instructions on %d agents, aggregate IPC %.2f\n",
		rep.Instrs, len(rep.Agents), rep.TotalIPC(1e9))
	var l1, l2 float64
	for _, ag := range rep.Agents {
		l1 += ag.L1.HitRate()
		l2 += ag.L2.HitRate()
	}
	n := float64(len(rep.Agents))
	fmt.Printf("cache hit rates: L1 %.0f%%  L2 %.0f%%\n", 100*l1/n, 100*l2/n)

	if *counters {
		fmt.Println("\nhardware counters:")
		if _, err := res.Counters.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
