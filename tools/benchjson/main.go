// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark-trajectory document. Every metric pair of each result
// line is kept (ns/op, B/op, allocs/op and any custom b.ReportMetric
// units), so the emitted file pins the per-figure wall-clock and
// allocation counts the repo tracks across PRs:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH_suite.json
//
// Input lines are echoed to stdout, so the tool tees transparently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// document is the emitted file.
type document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_suite.json", "output JSON file")
	flag.Parse()

	doc := document{Benchmarks: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseLine decodes one result line:
//
//	BenchmarkFig15_Throughput-8  1  3228537278 ns/op  218 B/op  28 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
