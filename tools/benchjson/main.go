// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark-trajectory document. Every metric pair of each result
// line is kept (ns/op, B/op, allocs/op and any custom b.ReportMetric
// unit — e.g. BenchmarkAllExperiments' events/sec dispatch throughput,
// which attributes suite speedups to the event kernel rather than to
// caching), so the emitted file pins the per-figure wall-clock and
// allocation counts the repo tracks across PRs:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH_suite.json
//
// Repeated results for one benchmark (`go test -count N`) collapse to
// the repetition with the lowest ns/op. Host load spikes only ever slow
// a deterministic benchmark down, so min-of-N is the noise-robust
// estimator; record and compare with the same -count so both sides get
// the same treatment.
//
// With -compare, the parsed results are instead diffed against a
// committed baseline document and nothing is written: per-benchmark
// ns/op deltas go to stderr and the exit status is 1 when any benchmark
// regressed by more than -threshold (fractional, default 0.10):
//
//	go test -run '^$' -bench . . | benchjson -compare BENCH_suite.json
//
// Input lines are echoed to stdout, so the tool tees transparently.
//
// With -hist and -hist-base, the tool instead diffs two `dramless run
// -hist` JSON exports: per-instrument p99 latency deltas go to stderr
// and the exit status is 1 when any instrument's p99 regressed by more
// than -hist-threshold. Stdin is not read in this mode:
//
//	benchjson -hist current.json -hist-base HIST_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"

	"dramless/internal/obs"
)

// result is one benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// document is the emitted file. GOMAXPROCS and NumCPU pin the host
// shape the numbers were recorded on: min-of-N ns/op is only comparable
// between runs with the same available parallelism (the laned-serial
// executors and the experiment engine's worker pool both scale with
// it), so -compare warns when they differ instead of silently flapping.
type document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"numcpu,omitempty"`
	Commit     string   `json:"commit,omitempty"`
	Dirty      bool     `json:"dirty,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

// gitCommit stamps the recorded numbers with the code they measured:
// the current HEAD hash plus a dirty marker when the working tree has
// uncommitted changes. Best-effort — outside a git checkout (or without
// a git binary) both stay zero and the fields are omitted.
func gitCommit() (commit string, dirty bool) {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	commit = strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
		dirty = len(strings.TrimSpace(string(status))) > 0
	}
	return commit, dirty
}

func main() {
	out := flag.String("out", "BENCH_suite.json", "output JSON file")
	compare := flag.String("compare", "", "baseline JSON file: diff ns/op against it instead of writing")
	threshold := flag.Float64("threshold", 0.10, "with -compare, fail on ns/op regressions above this fraction")
	hist := flag.String("hist", "", "current `dramless run -hist` JSON export (requires -hist-base)")
	histBase := flag.String("hist-base", "", "baseline histogram export: diff per-instrument p99 against it")
	histThreshold := flag.Float64("hist-threshold", 0.10, "with -hist, fail on p99 latency regressions above this fraction")
	flag.Parse()

	if *hist != "" || *histBase != "" {
		if *hist == "" || *histBase == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -hist and -hist-base must be given together")
			os.Exit(2)
		}
		ok, err := compareHistograms(*hist, *histBase, *histThreshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	doc := document{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Benchmarks: []result{},
	}
	doc.Commit, doc.Dirty = gitCommit()
	byName := map[string]int{} // first-seen order, min ns/op wins
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseLine(line)
			if !ok {
				continue
			}
			i, seen := byName[r.Name]
			switch {
			case !seen:
				byName[r.Name] = len(doc.Benchmarks)
				doc.Benchmarks = append(doc.Benchmarks, r)
			case r.Metrics["ns/op"] < doc.Benchmarks[i].Metrics["ns/op"]:
				// Keep the whole fastest repetition, not a per-metric
				// mix, so B/op and allocs/op stay from one coherent run.
				doc.Benchmarks[i] = r
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *compare != "" {
		ok, err := compareBaseline(doc, *compare, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// compareBaseline diffs ns/op of the parsed results against the
// baseline document at path, printing one line per benchmark to stderr.
// It reports false when any benchmark shared with the baseline slowed
// down by more than threshold (fractional).
func compareBaseline(doc document, path string, threshold float64) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("benchjson: read baseline: %w", err)
	}
	var base document
	if err := json.Unmarshal(raw, &base); err != nil {
		return false, fmt.Errorf("benchjson: parse baseline %s: %w", path, err)
	}
	// Host-shape mismatch is a warning, not a failure: the deltas still
	// print, but they are not apples to apples. Baselines recorded before
	// the fields existed (both zero) skip the check.
	if base.GoMaxProcs != 0 || base.NumCPU != 0 {
		if base.GoMaxProcs != doc.GoMaxProcs || base.NumCPU != doc.NumCPU {
			fmt.Fprintf(os.Stderr,
				"benchjson: WARNING: host shape differs from baseline %s: GOMAXPROCS %d vs %d, NumCPU %d vs %d — ns/op deltas are not comparable\n",
				path, doc.GoMaxProcs, base.GoMaxProcs, doc.NumCPU, base.NumCPU)
		}
	}
	if base.Commit != "" && base.Commit != doc.Commit {
		dirty := ""
		if base.Dirty {
			dirty = " (dirty tree)"
		}
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s was recorded at commit %.12s%s\n",
			path, base.Commit, dirty)
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			baseNs[b.Name] = ns
		}
	}
	if len(doc.Benchmarks) == 0 {
		return false, fmt.Errorf("benchjson: no benchmark results on stdin to compare")
	}
	regressions, compared := 0, 0
	for _, b := range doc.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		old, ok := baseNs[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %-45s %14.0f ns/op  (new, no baseline)\n", b.Name, ns)
			continue
		}
		compared++
		delta := ns/old - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-45s %14.0f ns/op  vs %14.0f  %+7.1f%%%s\n",
			b.Name, ns, old, delta*100, mark)
	}
	if compared == 0 {
		return false, fmt.Errorf("benchjson: no benchmarks in common with baseline %s", path)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% vs %s\n",
			regressions, threshold*100, path)
		return false, nil
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within %.0f%% of %s\n",
		compared, threshold*100, path)
	return true, nil
}

// readHistograms loads one `dramless run -hist` JSON export.
func readHistograms(path string) (*obs.HistogramSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	defer f.Close()
	s, err := obs.ReadHistogramsJSON(f)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return s, nil
}

// compareHistograms diffs per-instrument p99 latency between two
// histogram exports, printing one line per instrument to stderr. It
// reports false when any instrument shared with the baseline regressed
// by more than threshold (fractional). The simulator is deterministic,
// so unlike wall-clock benchmarks any p99 drift here is a real
// behavioral change; the threshold only absorbs intended model tuning.
func compareHistograms(curPath, basePath string, threshold float64) (bool, error) {
	cur, err := readHistograms(curPath)
	if err != nil {
		return false, err
	}
	base, err := readHistograms(basePath)
	if err != nil {
		return false, err
	}
	regressions, compared := 0, 0
	for _, h := range cur.All() {
		if h.Count() == 0 {
			continue
		}
		p99 := h.Percentile(99)
		b := base.Lookup(h.Name())
		if b == nil || b.Count() == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %-30s p99 %14d ps  (new, no baseline)\n", h.Name(), p99)
			continue
		}
		compared++
		old := b.Percentile(99)
		delta := 0.0
		if old > 0 {
			delta = float64(p99)/float64(old) - 1
		}
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-30s p99 %14d ps  vs %14d  %+7.1f%%%s\n",
			h.Name(), p99, old, delta*100, mark)
	}
	if compared == 0 {
		return false, fmt.Errorf("benchjson: no instruments in common between %s and %s", curPath, basePath)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d instrument(s) regressed p99 more than %.0f%% vs %s\n",
			regressions, threshold*100, basePath)
		return false, nil
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d instrument(s) within %.0f%% of %s\n",
		compared, threshold*100, basePath)
	return true, nil
}

// parseLine decodes one result line:
//
//	BenchmarkFig15_Throughput-8  1  3228537278 ns/op  218 B/op  28 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
