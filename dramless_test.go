package dramless_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"dramless"
)

func TestNewPRAMRoundTrip(t *testing.T) {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	if ready <= 0 {
		t.Fatal("boot took no time")
	}
	payload := []byte("persistent bytes in phase-change memory")
	done, err := pram.Write(ready, 4096, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pram.Read(pram.Drain(), 4096, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip failed")
	}
	if done <= ready {
		t.Fatal("write completed before it started")
	}
}

func TestPRAMOptions(t *testing.T) {
	pram, _, err := dramless.NewPRAM(
		dramless.WithCapacityRows(1<<16),
		dramless.WithScheduler(dramless.BareMetal),
		dramless.WithoutPhaseSkipping(),
		dramless.WithoutPrefetch(),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pram.Config()
	if cfg.Scheduler != dramless.BareMetal || cfg.PhaseSkipping || cfg.Prefetch {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

func TestAcceleratorRunsWorkload(t *testing.T) {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := dramless.NewAccelerator(pram)
	if err != nil {
		t.Fatal(err)
	}
	w, err := dramless.WorkloadByName("trisolv")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.RunKernel(ready, w, dramless.WorkloadParams{Scale: 64 << 10, Agents: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecTime() <= 0 || rep.Instrs == 0 {
		t.Fatal("kernel made no progress")
	}
}

func TestOffloadImageViaPublicAPI(t *testing.T) {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	img := &dramless.KernelImage{
		SharedAddr: 0x8000,
		Shared:     bytes.Repeat([]byte{0xCD}, 128),
		Apps: []dramless.KernelApp{
			{BootAddr: 0x10000, Code: bytes.Repeat([]byte{0x42}, 256)},
		},
	}
	parsed, done, err := dramless.OffloadImage(ready, img, 0x1000, pram, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Apps) != 1 || done <= ready {
		t.Fatal("offload incomplete")
	}
	code, _, err := pram.Read(pram.Drain(), 0x10000, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(code, img.Apps[0].Code) {
		t.Fatal("kernel code not loaded at boot address")
	}
}

func TestRunSystemAndWorkloads(t *testing.T) {
	if got := len(dramless.Workloads()); got != 16 {
		t.Fatalf("suite = %d kernels, want 16", got)
	}
	cfg := dramless.NewSystemConfig(dramless.DRAMLess)
	cfg.Scale = 128 << 10
	w, _ := dramless.WorkloadByName("gemver")
	res, err := dramless.RunSystem(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || res.BandwidthMBps() <= 0 || res.Energy.Total() <= 0 {
		t.Fatal("empty system result")
	}
	if len(dramless.Figure15Kinds()) != 10 || len(dramless.SystemKinds()) != 12 {
		t.Fatal("system kind lists wrong")
	}
}

func TestObserverThroughPublicAPI(t *testing.T) {
	o := dramless.NewObserver(dramless.WithTracing())
	cfg := dramless.NewSystemConfig(dramless.DRAMLess, dramless.WithObserver(o))
	cfg.Scale = 128 << 10
	w, _ := dramless.WorkloadByName("gemver")
	res, err := dramless.RunSystem(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Len() == 0 {
		t.Fatal("run produced no counters")
	}
	for _, name := range []string{
		"memctrl.rab_hits", "memctrl.rdb_hits", "memctrl.interleave_overlaps",
		"pram.programs", "accel.psc.boots", "sim.events_dispatched",
	} {
		if res.Counters.Get(name) <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, res.Counters.Get(name))
		}
	}
	// The observer accumulated the run's counters and recorded spans.
	if got, want := o.Counters().Get("accel.psc.boots"), res.Counters.Get("accel.psc.boots"); got != want {
		t.Fatalf("observer counters = %d boots, result has %d", got, want)
	}
	if o.Tracer().Len() == 0 {
		t.Fatal("tracing enabled but no spans recorded")
	}
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				procs[fmt.Sprint(args["name"])] = true
			}
		}
	}
	for _, p := range []string{"accel", "pram.ch0", "pram.ch1", "system"} {
		if !procs[p] {
			t.Errorf("trace missing process %q (have %v)", p, procs)
		}
	}
}

func TestExperimentDispatch(t *testing.T) {
	ids := dramless.ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("%d experiments, want 16", len(ids))
	}
	tab, err := dramless.Experiment("table2", dramless.FastExperiments())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "table2" || len(tab.Rows) == 0 {
		t.Fatal("table2 empty")
	}
	if _, err := dramless.Experiment("nope", dramless.FastExperiments()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
