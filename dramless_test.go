package dramless_test

import (
	"bytes"
	"testing"

	"dramless"
)

func TestNewPRAMRoundTrip(t *testing.T) {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	if ready <= 0 {
		t.Fatal("boot took no time")
	}
	payload := []byte("persistent bytes in phase-change memory")
	done, err := pram.Write(ready, 4096, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pram.Read(pram.Drain(), 4096, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip failed")
	}
	if done <= ready {
		t.Fatal("write completed before it started")
	}
}

func TestPRAMOptions(t *testing.T) {
	pram, _, err := dramless.NewPRAM(
		dramless.WithCapacityRows(1<<16),
		dramless.WithScheduler(dramless.BareMetal),
		dramless.WithoutPhaseSkipping(),
		dramless.WithoutPrefetch(),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pram.Config()
	if cfg.Scheduler != dramless.BareMetal || cfg.PhaseSkipping || cfg.Prefetch {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

func TestAcceleratorRunsWorkload(t *testing.T) {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := dramless.NewAccelerator(pram)
	if err != nil {
		t.Fatal(err)
	}
	w, err := dramless.WorkloadByName("trisolv")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.RunKernel(ready, w, dramless.WorkloadParams{Scale: 64 << 10, Agents: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecTime() <= 0 || rep.Instrs == 0 {
		t.Fatal("kernel made no progress")
	}
}

func TestOffloadImageViaPublicAPI(t *testing.T) {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	img := &dramless.KernelImage{
		SharedAddr: 0x8000,
		Shared:     bytes.Repeat([]byte{0xCD}, 128),
		Apps: []dramless.KernelApp{
			{BootAddr: 0x10000, Code: bytes.Repeat([]byte{0x42}, 256)},
		},
	}
	parsed, done, err := dramless.OffloadImage(ready, img, 0x1000, pram, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Apps) != 1 || done <= ready {
		t.Fatal("offload incomplete")
	}
	code, _, err := pram.Read(pram.Drain(), 0x10000, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(code, img.Apps[0].Code) {
		t.Fatal("kernel code not loaded at boot address")
	}
}

func TestRunSystemAndWorkloads(t *testing.T) {
	if got := len(dramless.Workloads()); got != 16 {
		t.Fatalf("suite = %d kernels, want 16", got)
	}
	cfg := dramless.NewSystemConfig(dramless.DRAMLess)
	cfg.Scale = 128 << 10
	w, _ := dramless.WorkloadByName("gemver")
	res, err := dramless.RunSystem(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || res.BandwidthMBps() <= 0 || res.Energy.Total() <= 0 {
		t.Fatal("empty system result")
	}
	if len(dramless.Figure15Kinds()) != 10 || len(dramless.SystemKinds()) != 12 {
		t.Fatal("system kind lists wrong")
	}
}

func TestExperimentDispatch(t *testing.T) {
	ids := dramless.ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("%d experiments, want 16", len(ids))
	}
	tab, err := dramless.Experiment("table2", dramless.FastExperiments())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "table2" || len(tab.Rows) == 0 {
		t.Fatal("table2 empty")
	}
	if _, err := dramless.Experiment("nope", dramless.FastExperiments()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
