// Timing: explore the PRAM device protocol at cycle level - three-phase
// addressing, RAB/RDB phase skipping, the overlay-window program flow,
// selective erasing, and the Figure 12 interleaving overlap.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dramless"
	"dramless/internal/lpddr"
	"dramless/internal/pram"
	"dramless/internal/sim"
)

func main() {
	par := lpddr.Default()
	fmt.Println("-- Table II timing (LPDDR2-NVM, 400 MHz) --")
	fmt.Printf("tRP=%v  tRCD=%v  RL=%v  tBURST=%v  -> three-phase row read %v\n",
		par.TRP(), par.TRCD, par.RL(), par.TBurst(), par.RowReadLatency())
	fmt.Printf("program: fresh %v, overwrite %v, selectively erased %v, bulk erase %v\n\n",
		par.ProgramTime(lpddr.CellFresh), par.ProgramTime(lpddr.CellProgrammed),
		par.ProgramTime(lpddr.CellErased), par.CellErase)

	geo := pram.DefaultGeometry()
	geo.RowsPerModule = 1 << 16
	m, err := pram.NewModule(geo, par)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- three-phase addressing, command by command --")
	row := uint64(42)
	upper, lower := geo.SplitRow(row)
	t0 := sim.Time(0)
	t1, _ := m.Preactive(t0, 0, upper)
	fmt.Printf("PREACTIVE ba=0 upper=%#x   %v -> %v (tRP)\n", upper, t0, t1)
	t2, _ := m.Activate(t1, 0, lower)
	fmt.Printf("ACTIVATE  ba=0 lower=%#x   %v -> %v (tRCD, partition %d)\n", lower, t1, t2, geo.PartitionOf(row))
	_, t3, _ := m.ReadBurst(t2, 0, 0, 32)
	fmt.Printf("READ      ba=0 col=0       %v -> %v (RL+tDQSCK+tBURST)\n", t2, t3)
	fmt.Printf("cold row read total: %v\n\n", t3-t0)

	fmt.Println("-- phase skipping: the RDB still holds the row --")
	start := t3 + sim.Microsecond
	_, t4, _ := m.ReadBurst(start, 0, 8, 8)
	fmt.Printf("re-read from RDB: %v (%.0f%% of the cold read)\n\n",
		t4-start, 100*float64(t4-start)/float64(t3-t0))

	fmt.Println("-- overlay-window program flow (Section V-B) --")
	data := bytes.Repeat([]byte{0xAA}, 32)
	w0 := t4 + sim.Microsecond
	w1, err := m.ProgramRow(w0, 1, 99, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("register burst + program buffer + execute: %v (controller-visible)\n", w1-w0)
	fmt.Printf("array program completes at +%v (posted, partition busy)\n", m.BusyUntil()-w1)
	ready, _ := m.PollStatus(w1, 1, 2*sim.Microsecond, 100)
	fmt.Printf("status register reports ready at %v\n\n", ready)

	fmt.Println("-- selective erasing (Section V-A) --")
	w2 := sim.Max(ready, m.BusyUntil())
	e1, _ := m.ProgramRow(w2, 1, 99, data) // plain overwrite
	plain := m.BusyUntil() - e1
	w3 := m.BusyUntil()
	zero := make([]byte, 32)
	z, _ := m.ProgramRow(w3, 1, 99, zero) // pre-RESET (all-zero program)
	w4 := sim.Max(z, m.BusyUntil())
	e2, _ := m.ProgramRow(w4, 1, 99, data) // SET-only
	erased := m.BusyUntil() - e2
	fmt.Printf("overwrite %v -> pre-erased overwrite %v (%.0f%% reduction)\n\n",
		plain, erased, 100*(1-float64(erased)/float64(plain)))

	fmt.Println("-- Figure 12: multi-resource-aware interleaving --")
	for _, sched := range []dramless.Scheduler{dramless.BareMetal, dramless.Interleaving} {
		sub, ready, err := dramless.NewPRAM(
			dramless.WithCapacityRows(1<<16),
			dramless.WithScheduler(sched),
			dramless.WithoutPrefetch())
		if err != nil {
			log.Fatal(err)
		}
		// Two 32 B requests on the same chip, different partitions.
		_, done, err := sub.ReadScatter(ready, []uint64{0, 1024}, 32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s two requests, one chip: %v\n", sched, done-ready)
	}

	fmt.Println("\n-- LPDDR2-NVM command trace of one write through the controller --")
	sub, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		log.Fatal(err)
	}
	sub.EnableTrace(true)
	if _, err := sub.Write(ready, 0, bytes.Repeat([]byte{0xEE}, 32)); err != nil {
		log.Fatal(err)
	}
	for i, c := range sub.Trace(0, 0) {
		fmt.Printf("  %2d: %v\n", i, c)
	}
	fmt.Println("  (register-row burst, program-buffer burst, execute burst -")
	fmt.Println("   every step a real three-phase-addressed window access)")
}
