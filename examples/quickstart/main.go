// Quickstart: build a DRAM-less accelerator, put real data in its PRAM,
// run a functional kernel near the data over plain load/store semantics,
// and read the verified result back - no host staging, no filesystem.
package main

import (
	"fmt"
	"log"
	"math"

	"dramless"
	"dramless/internal/workload"
)

func main() {
	// 1. Build the hardware-automated PRAM subsystem and boot it.
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PRAM subsystem: %d MiB usable, booted at %v\n", pram.Size()>>20, ready)

	// 2. Place a Jacobi-1D problem directly in persistent PRAM.
	const n, steps = 256, 8
	in := make([]float64, n)
	for i := range in {
		in[i] = math.Sin(float64(i) / 7)
	}
	vec, err := workload.NewVec(pram, 0, n)
	if err != nil {
		log.Fatal(err)
	}
	now, err := vec.Fill(ready, in)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the stencil through the memory subsystem (every element
	// access is a timed PRAM row operation).
	done, err := workload.Jacobi1D(pram, now, 0, 8*n, n, steps)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Read back and verify against a pure-Go reference.
	got, _, err := vec.Snapshot(pram.Drain())
	if err != nil {
		log.Fatal(err)
	}
	want := workload.Jacobi1DRef(in, steps)
	var maxErr float64
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("jacobi-1d: n=%d steps=%d finished at %v (kernel time %v)\n", n, steps, done, done-now)
	fmt.Printf("max abs error vs reference: %.3g\n", maxErr)
	if maxErr > 1e-12 {
		log.Fatal("verification FAILED")
	}

	// 5. Controller statistics show the protocol work that happened.
	st := pram.Stats()
	fmt.Printf("controller: %d row reads, %d row programs, %d phase skips (%d full accesses)\n",
		st.Reads, st.Writes, st.PreactiveSkips+st.ActivateSkips, st.FullAccesses)
	ms := pram.ModuleStats()
	fmt.Printf("devices: %d activates, %d programs (%v array time)\n",
		ms.Activates, ms.Programs, ms.ProgramTime)
	fmt.Println("OK")
}
