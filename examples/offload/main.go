// Offload: walk through the DRAM-less programming model of Section IV -
// pack a multi-app kernel image on the host (packData), push it over
// PCIe into the PRAM image space (pushData), let the server unpack and
// load the code segments (unpackData), then execute the kernels on the
// agents and collect per-agent results.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dramless"
)

func main() {
	pram, ready, err := dramless.NewPRAM(dramless.WithCapacityRows(1 << 16))
	if err != nil {
		log.Fatal(err)
	}
	acc, err := dramless.NewAccelerator(pram)
	if err != nil {
		log.Fatal(err)
	}

	// Host side: pack one kernel per agent plus a shared runtime segment
	// (Figure 10's packData).
	const agents = 7
	img := &dramless.KernelImage{
		SharedAddr: pram.Size() - 1<<20,
		Shared:     bytes.Repeat([]byte{0xB0}, 8<<10), // shared runtime/libm
	}
	for i := 0; i < agents; i++ {
		img.Apps = append(img.Apps, dramless.KernelApp{
			BootAddr: pram.Size() - 1<<20 + uint64((i+1)*64<<10),
			Code:     bytes.Repeat([]byte{byte(0x10 + i)}, 4<<10),
		})
	}
	packed, err := dramless.PackImage(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed image: %d apps + %d B shared = %d B\n", len(img.Apps), len(img.Shared), len(packed))

	// pushData + server-side unpackData + segment loading (Figure 9b
	// steps 1-2). The nil pusher uses direct device writes; a real host
	// would wire a PCIe DMA here.
	parsed, done, err := dramless.OffloadImage(ready, img, pram.Size()-2<<20, pram, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offload + unpack + load completed at %v\n", done)

	// Verify each agent's boot address holds its kernel (the "magic
	// address" the PSC reboot jumps to).
	settle := pram.Drain()
	for i, app := range parsed.Apps {
		code, _, err := pram.Read(settle, app.BootAddr, 64)
		if err != nil {
			log.Fatal(err)
		}
		if code[0] != byte(0x10+i) {
			log.Fatalf("agent %d boot code wrong: %#x", i, code[0])
		}
	}
	fmt.Printf("all %d boot addresses verified\n", len(parsed.Apps))

	// Figure 9b steps 3-6: the server sleeps each agent via the PSC,
	// stores its boot address, revokes it, and the agents execute near
	// the data. RunKernel models exactly that launch + execution.
	w, _ := dramless.WorkloadByName("doitg")
	rep, err := acc.RunKernel(done, w, dramless.WorkloadParams{Scale: 128 << 10, Agents: agents})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkernel %s executed on %d agents in %v\n", w.Name, agents, rep.ExecTime())
	for i, ag := range rep.Agents {
		fmt.Printf("  agent %d: %7d instrs, compute %v, memory wait %v, L2 hit %.0f%%\n",
			i, ag.Instructions, ag.Compute, ag.Stall, ag.L2.HitRate()*100)
	}
	fmt.Printf("aggregate IPC %.2f; results persistent in PRAM at completion\n", rep.TotalIPC(1e9))

	// Multi-app images: the server schedules several kernels at once,
	// each on its own agent subset (Section IV: it polls for idle PEs and
	// dispatches apps as they free).
	gem, _ := dramless.WorkloadByName("gemver")
	tri, _ := dramless.WorkloadByName("trisolv")
	jobs := []dramless.Job{
		{Kernel: gem, Params: dramless.WorkloadParams{Scale: 64 << 10}, Agents: 3},
		{Kernel: tri, Params: dramless.WorkloadParams{Scale: 64 << 10}, Agents: 3},
		{Kernel: w, Params: dramless.WorkloadParams{Scale: 64 << 10}, Agents: 7},
	}
	results, err := acc.RunJobs(rep.End, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmulti-kernel schedule (FIFO over 7 agents):")
	for _, r := range results {
		fmt.Printf("  %-8s on agents %v: [%v, %v]\n",
			r.Job.Kernel.Name, r.AgentIDs, r.Report.Start, r.Report.End)
	}
	fmt.Println("  (the first two run concurrently; the third picks up each agent as it frees)")
}
