// Compare: run one workload end to end on all ten Table I system
// organizations and print the Figure 15-style comparison - throughput
// normalized to the conventional heterogeneous system, plus the time and
// energy split of each.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dramless"
)

func main() {
	kernelName := flag.String("kernel", "gemver", "workload to run (see -list)")
	scale := flag.Int64("scale", 256<<10, "base footprint in bytes")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range dramless.Workloads() {
			fmt.Printf("%-8s %s\n", w.Name, w.Class)
		}
		return
	}

	w, err := dramless.WorkloadByName(*kernelName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s (%s), footprint scale %d KiB\n\n", w.Name, w.Class, *scale>>10)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\ttotal\tbandwidth\tnorm\tload\tkernel\tstore\tenergy")
	var base float64
	for _, kind := range dramless.Figure15Kinds() {
		cfg := dramless.NewSystemConfig(kind)
		cfg.Scale = *scale
		res, err := dramless.RunSystem(cfg, w)
		if err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		bw := res.BandwidthMBps()
		if base == 0 {
			base = bw
		}
		fmt.Fprintf(tw, "%s\t%v\t%.1f MB/s\t%.2fx\t%v\t%v\t%v\t%.3g J\n",
			kind, res.Total, bw, bw/base, res.Load, res.Kernel, res.Store, res.Energy.Total())
	}
	tw.Flush()
	fmt.Println("\nnorm = throughput normalized to Hetero (the paper's Figure 15 metric)")
}
