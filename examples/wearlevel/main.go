// Wearlevel: demonstrate the Section VII endurance extension - start-gap
// wear leveling inside the DRAM-less PRAM controller. A write-hot kernel
// hammers a few rows; with leveling the hot rows rotate through their
// region, bounding per-cell wear at a small bandwidth cost.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dramless"
)

func main() {
	const (
		hammers = 4000
		hotRows = 4
	)
	buf := bytes.Repeat([]byte{0x5A}, 32)

	run := func(opts ...dramless.PRAMOption) (dramless.Duration, dramless.WearStats) {
		opts = append(opts, dramless.WithCapacityRows(1<<16))
		pram, ready, err := dramless.NewPRAM(opts...)
		if err != nil {
			log.Fatal(err)
		}
		now := ready
		for i := 0; i < hammers; i++ {
			d, err := pram.Write(now, uint64(i%hotRows)*32, buf)
			if err != nil {
				log.Fatal(err)
			}
			now = d
		}
		return pram.Drain() - ready, pram.WearStats()
	}

	plainT, _ := run()
	levT, lev := run(dramless.WithWearLeveling(10, 16))

	fmt.Printf("workload: %d row programs hammering %d logical rows\n\n", hammers, hotRows)
	fmt.Printf("%-22s %12s %12s %10s %10s\n", "", "time", "max wear", "rows", "gap moves")
	fmt.Printf("%-22s %12v %12d %10d %10s\n", "no leveling", plainT, hammers/hotRows, hotRows, "-")
	fmt.Printf("%-22s %12v %12d %10d %10d\n", "start-gap psi=10 R=16", levT, lev.MaxWear, lev.Rows, lev.GapMoves)

	fmt.Printf("\nbandwidth cost: %.1f%%\n", (float64(levT)/float64(plainT)-1)*100)
	fmt.Printf("wear reduction: hottest cell sees %.1fx fewer programs\n",
		float64(hammers/hotRows)/float64(lev.MaxWear))
	fmt.Println("\n(the paper, Section VII: \"DRAM-less can integrate traditional wear")
	fmt.Println(" levellers in our PRAM controller, such as start-gap\")")
}
